(* Performance-aware routing: the paper's §7 extension.

   Run with:  dune exec examples/perf_aware.exe

   Runs the alternate-path measurement pipeline for a simulated hour —
   a sliver of flows per prefix is pinned to 2nd/3rd/4th-preference
   routes via DSCP marking — then asks the performance policy which
   prefixes would be better off somewhere other than where BGP puts
   them, and prints the evidence. *)

module Bgp = Ef_bgp
module N = Ef_netsim
module C = Ef_collector
module Ef = Edge_fabric
module A = Ef_altpath
module S = Ef_sim

let scenario = N.Scenario.pop_a

let () =
  let config =
    S.Engine.make_config ~cycle_s:60 ~duration_s:3600 ~start_s:(20 * 3600)
      ~use_sampling:false ~measure_altpaths:true ~seed:9 ()
  in
  let engine = S.Engine.create ~config scenario in
  Printf.printf "Measuring alternate paths for an hour at %s...\n%!"
    scenario.N.Scenario.scenario_name;
  ignore (S.Engine.run engine);

  let measurer = Option.get (S.Engine.measurer engine) in
  let store = A.Measurer.store measurer in
  let snapshot = S.Engine.snapshot_now engine in
  Printf.printf "paths with samples: %d\n\n" (A.Path_store.paths_measured store);

  (* Figure-10 style summary: how do best alternates compare? *)
  let comparisons = A.Measurer.comparisons measurer snapshot in
  let n = List.length comparisons in
  let count pred = List.length (List.filter pred comparisons) in
  Printf.printf "prefixes compared: %d\n" n;
  Printf.printf "  best alternate >5ms better: %d (%.1f%%)\n"
    (count (fun c -> c.A.Path_store.delta_ms < -5.0))
    (100.0 *. float_of_int (count (fun c -> c.A.Path_store.delta_ms < -5.0)) /. float_of_int n);
  Printf.printf "  within 5ms:                 %d (%.1f%%)\n"
    (count (fun c -> Float.abs c.A.Path_store.delta_ms <= 5.0))
    (100.0 *. float_of_int (count (fun c -> Float.abs c.A.Path_store.delta_ms <= 5.0)) /. float_of_int n);
  Printf.printf "  >5ms worse:                 %d (%.1f%%)\n\n"
    (count (fun c -> c.A.Path_store.delta_ms > 5.0))
    (100.0 *. float_of_int (count (fun c -> c.A.Path_store.delta_ms > 5.0)) /. float_of_int n);

  (* the policy layer: what should actually move? *)
  let projection = Ef.Projection.project snapshot in
  let suggestions = A.Perf_policy.suggest store snapshot ~projection in
  Printf.printf "performance suggestions (capacity-guarded, >=10ms, top %d):\n"
    (List.length suggestions);
  List.iteri
    (fun i s ->
      if i < 10 then
        Format.printf "  %a: %.0fms faster via %a (%s)@."
          Bgp.Prefix.pp s.A.Perf_policy.sug_prefix s.A.Perf_policy.improvement_ms
          Bgp.Peer.pp
          (Bgp.Route.peer s.A.Perf_policy.sug_target)
          (Ef_util.Units.rate_to_string s.A.Perf_policy.rate_bps))
    suggestions;

  (* they convert into the same override machinery capacity uses *)
  let overrides = A.Perf_policy.to_overrides suggestions ~snapshot ~projection in
  Printf.printf "\nas overrides: %d (enforced exactly like capacity detours)\n"
    (List.length overrides);
  match overrides with
  | o :: _ -> Format.printf "  e.g. %a@." Ef.Override.pp o
  | [] -> ()
