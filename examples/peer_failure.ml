(* Peer failure drill: a private interconnect dies mid-peak.

   Run with:  dune exec examples/peer_failure.exe

   At 20:10 the busiest private peer's BGP session drops for 20 minutes.
   BGP itself fails the traffic over to the next-best routes (that part
   needs no controller); what the controller adds is keeping the
   {e failover targets} under their thresholds while absorbing the extra
   load, and cleanly releasing/re-installing overrides around the
   topology change — including discarding any override that pointed at
   the dead peer (a stale target). *)

module Bgp = Ef_bgp
module N = Ef_netsim
module S = Ef_sim
module Units = Ef_util.Units

let scenario = N.Scenario.pop_a

let () =
  let world = N.Topo_gen.generate scenario.N.Scenario.topo in
  let pop = world.N.Topo_gen.pop in
  (* the busiest private peer = the one whose interface carries the most
     preferred traffic at peak; weight of its own AS is a good proxy *)
  let victim =
    List.find
      (fun p -> Bgp.Peer.kind p = Bgp.Peer.Private_peer)
      (N.Pop.peers pop)
  in
  let victim_iface = N.Pop.iface_of_peer pop ~peer_id:(Bgp.Peer.id victim) in
  Format.printf "Victim: %a on %s (%s)@." Bgp.Peer.pp victim
    (N.Iface.name victim_iface)
    (Units.rate_to_string (N.Iface.capacity_bps victim_iface));

  let start = 20 * 3600 in
  let down_at = start + 600 and up_at = start + 1800 in
  let config =
    S.Engine.make_config ~cycle_s:60 ~duration_s:3600 ~start_s:start ~seed:21
      ~peer_events:
        [ { S.Engine.event_peer_id = Bgp.Peer.id victim; down_at_s = down_at; up_at_s = up_at } ]
      ()
  in
  let engine = S.Engine.create ~config scenario in
  Printf.printf "%-7s %-14s %-11s %-10s %-9s %s\n" "time" "victim-load"
    "max-util" "overrides" "dropped" "note";
  for _ = 1 to 60 do
    let row = S.Engine.step engine in
    let t = row.S.Metrics.row_time_s in
    let victim_load, max_util =
      List.fold_left
        (fun (vl, mx) u ->
          let util = u.S.Metrics.actual_bps /. u.S.Metrics.capacity_bps in
          ( (if u.S.Metrics.u_iface_id = N.Iface.id victim_iface then
               u.S.Metrics.actual_bps
             else vl),
            Float.max mx util ))
        (0.0, 0.0) row.S.Metrics.ifaces
    in
    let note =
      if t = down_at then "<- session DOWN"
      else if t = up_at then "<- session UP"
      else ""
    in
    if t mod 300 = 0 || note <> "" || (t > down_at && t < down_at + 240) then
      Printf.printf "%-7s %-14s %-11.2f %-10d %-9s %s\n"
        (Format.asprintf "%a" Units.pp_time_of_day t)
        (Units.rate_to_string victim_load)
        max_util row.S.Metrics.overrides_active
        (Units.rate_to_string row.S.Metrics.dropped_bps)
        note
  done;
  let m = S.Engine.metrics engine in
  Printf.printf
    "\nthrough the outage: %s dropped in total; peak interface utilization %.2f\n"
    (Units.rate_to_string
       (S.Metrics.total_dropped m `Actual /. float_of_int (S.Metrics.cycle_count m)))
    (List.fold_left
       (fun acc (_, u) -> Float.max acc u)
       0.0
       (S.Metrics.peak_utilization m `Actual))
