(* Flash crowd: watch the controller react, cycle by cycle.

   Run with:  dune exec examples/flash_crowd.exe

   At 19:10 the most popular prefix behind a private interconnect gets a
   12x surge for half an hour (a live event starting). The timeline shows
   the controller noticing the overload within a cycle or two (its view
   is smoothed sFlow estimates, so it lags slightly), detouring the
   excess, and releasing the overrides after demand subsides. *)

module Bgp = Ef_bgp
module N = Ef_netsim
module S = Ef_sim
module T = Ef_traffic
module Units = Ef_util.Units

let scenario = N.Scenario.pop_a

let () =
  (* find the biggest prefix whose best route is a private interconnect *)
  let world = N.Topo_gen.generate scenario.N.Scenario.topo in
  let rib = N.Pop.rib world.N.Topo_gen.pop in
  let victim =
    world.N.Topo_gen.all_prefixes
    |> List.filter (fun p ->
           match Bgp.Rib.best rib p with
           | Some r -> Bgp.Route.peer_kind r = Bgp.Peer.Private_peer
           | None -> false)
    |> List.sort (fun a b ->
           compare (world.N.Topo_gen.prefix_weight b) (world.N.Topo_gen.prefix_weight a))
    |> List.hd
  in
  let victim_iface =
    match Bgp.Rib.best rib victim with
    | Some r ->
        N.Pop.iface_of_peer world.N.Topo_gen.pop ~peer_id:(Bgp.Route.peer_id r)
    | None -> assert false
  in
  Format.printf "Victim prefix: %a (normally on %s)@." Bgp.Prefix.pp victim
    (N.Iface.name victim_iface);

  let event =
    {
      T.Demand.event_prefix = victim;
      start_s = (19 * 3600) + 600;
      duration_s = 1800;
      multiplier = 12.0;
    }
  in
  let config =
    S.Engine.make_config ~cycle_s:60 ~duration_s:(2 * 3600)
      ~start_s:(19 * 3600) ~seed:7 ~events:[ event ] ()
  in
  let engine = S.Engine.create ~config scenario in

  Printf.printf "%-7s %-12s %-10s %-11s %-9s %s\n" "time" "victim-iface" "overrides"
    "detoured" "dropped" "note";
  for _ = 1 to 2 * 3600 / 60 do
    let row = S.Engine.step engine in
    let t = row.S.Metrics.row_time_s in
    let util =
      match
        List.find_opt
          (fun u -> u.S.Metrics.u_iface_id = N.Iface.id victim_iface)
          row.S.Metrics.ifaces
      with
      | Some u -> u.S.Metrics.actual_bps /. u.S.Metrics.capacity_bps
      | None -> 0.0
    in
    let in_event = t >= event.T.Demand.start_s && t < event.T.Demand.start_s + event.T.Demand.duration_s in
    let note =
      if t = event.T.Demand.start_s then "<- surge starts"
      else if t = event.T.Demand.start_s + event.T.Demand.duration_s then "<- surge ends"
      else if in_event && row.S.Metrics.overrides_added > 0 then "controller reacts"
      else if (not in_event) && row.S.Metrics.overrides_removed > 0 then "releases"
      else ""
    in
    (* print only the interesting window plus a sparse backdrop *)
    if t mod 600 = 0 || in_event || note <> "" || row.S.Metrics.overrides_removed > 0
    then
      Printf.printf "%-7s %-12.2f %-10d %-11s %-9s %s\n"
        (Format.asprintf "%a" Units.pp_time_of_day t)
        util row.S.Metrics.overrides_active
        (Format.asprintf "%a" Units.pp_percent
           (if row.S.Metrics.offered_bps > 0.0 then
              row.S.Metrics.detoured_bps /. row.S.Metrics.offered_bps
            else 0.0))
        (Units.rate_to_string row.S.Metrics.dropped_bps)
        note
  done
