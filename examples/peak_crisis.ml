(* Peak crisis: the paper's headline experiment on one PoP.

   Run with:  dune exec examples/peak_crisis.exe

   Simulates the evening peak at the large NA-East PoP twice — once with
   BGP deciding alone, once with Edge Fabric — and prints the interface
   utilizations side by side. BGP alone drives a third of the peering
   interfaces over capacity; the controller keeps everything under its
   95 % threshold by detouring a few percent of traffic. *)

module N = Ef_netsim
module S = Ef_sim
module Units = Ef_util.Units

let scenario = N.Scenario.pop_a

let evening controller =
  let config =
    S.Engine.make_config ~cycle_s:120 ~duration_s:(6 * 3600)
      ~start_s:(17 * 3600) ~controller_enabled:controller ~seed:42 ()
  in
  let engine = S.Engine.create ~config scenario in
  (S.Engine.run engine, S.Engine.world engine)

let () =
  Printf.printf "Simulating 17:00-23:00 at %s, twice...\n%!"
    scenario.N.Scenario.scenario_name;
  let bgp_only, world = evening false in
  let with_ef, _ = evening true in

  let pop = world.N.Topo_gen.pop in
  let peaks metrics mode =
    let l = S.Metrics.peak_utilization metrics mode in
    fun id -> Option.value (List.assoc_opt id l) ~default:0.0
  in
  let bgp_peak = peaks bgp_only `Preferred in
  let ef_peak = peaks with_ef `Actual in

  let table =
    Ef_stats.Table.create [ "interface"; "capacity"; "BGP-only peak"; "Edge Fabric peak" ]
  in
  List.iter
    (fun iface ->
      let id = N.Iface.id iface in
      let mark u = if u > 1.0 then Printf.sprintf "%.2f  OVERLOAD" u else Printf.sprintf "%.2f" u in
      Ef_stats.Table.add_row table
        [
          N.Iface.name iface;
          Units.rate_to_string (N.Iface.capacity_bps iface);
          mark (bgp_peak id);
          mark (ef_peak id);
        ])
    (N.Pop.interfaces pop);
  Ef_stats.Table.print ~title:"Peak interface utilization, 17:00-23:00" table;

  let cycles m = max 1 (S.Metrics.cycle_count m) in
  Printf.printf "BGP alone would have dropped %s on average; Edge Fabric dropped %s.\n"
    (Units.rate_to_string
       (S.Metrics.total_dropped bgp_only `Preferred /. float_of_int (cycles bgp_only)))
    (Units.rate_to_string
       (S.Metrics.total_dropped with_ef `Actual /. float_of_int (cycles with_ef)));
  Printf.printf "Cost: %s of traffic detoured on average (peak %s).\n"
    (Format.asprintf "%a" Units.pp_percent (S.Metrics.mean_detour_fraction with_ef))
    (Format.asprintf "%a" Units.pp_percent
       (List.fold_left
          (fun acc (_, f) -> Float.max acc f)
          0.0
          (S.Metrics.detour_fraction_series with_ef)))
