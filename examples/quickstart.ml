(* Quickstart: the whole Edge Fabric loop on a PoP you build by hand.

   Run with:  dune exec examples/quickstart.exe

   We construct a PoP with three egress options, feed it routes, offer it
   more traffic than the preferred interface can carry, and run one
   controller cycle. The controller detours just enough traffic, and the
   enforcement is plain BGP: an UPDATE with a high LOCAL_PREF. *)

module Bgp = Ef_bgp
module N = Ef_netsim
module C = Ef_collector
module Ef = Edge_fabric

let () =
  (* 1. A PoP with a private interconnect (10G), a shared IXP port (10G)
     and a transit provider (100G). *)
  let pop =
    N.Pop.create ~name:"demo" ~region:N.Region.Na_east
      ~asn:(Bgp.Asn.of_int 64500) ()
  in
  let policy = Ef_policy.standard_import_map ~self_asn:(Bgp.Asn.of_int 64500) in
  let pni = N.Pop.add_interface pop ~name:"pni-eyeball" ~capacity_bps:10e9 ~shared:false in
  let ixp = N.Pop.add_interface pop ~name:"ixp-port" ~capacity_bps:10e9 ~shared:true in
  let transit = N.Pop.add_interface pop ~name:"transit" ~capacity_bps:100e9 ~shared:false in

  let mk_peer id name kind asn =
    Bgp.Peer.make ~id ~name ~asn:(Bgp.Asn.of_int asn) ~kind
      ~router_id:(Bgp.Ipv4.of_octets 10 0 0 id)
      ~session_addr:(Bgp.Ipv4.of_octets 172 16 0 id)
  in
  let eyeball = mk_peer 0 "eyeball-isp" Bgp.Peer.Private_peer 100 in
  let ixp_peer = mk_peer 1 "regional-isp" Bgp.Peer.Public_peer 200 in
  let transit_peer = mk_peer 2 "transit-isp" Bgp.Peer.Transit 10 in
  N.Pop.add_peer pop eyeball ~iface:pni ~policy;
  N.Pop.add_peer pop ixp_peer ~iface:ixp ~policy;
  N.Pop.add_peer pop transit_peer ~iface:transit ~policy;

  (* 2. Routes: the eyeball's prefix is reachable via all three neighbors.
     The ingest policy prefers the private peer over public over transit. *)
  let prefix = Bgp.Prefix.v "203.0.113.0/24" in
  let announce peer path =
    let attrs =
      Bgp.Attrs.make
        ~as_path:(Bgp.As_path.of_list (List.map Bgp.Asn.of_int path))
        ~next_hop:peer.Bgp.Peer.session_addr ()
    in
    ignore (N.Pop.announce pop ~peer_id:(Bgp.Peer.id peer) prefix attrs)
  in
  announce eyeball [ 100 ];
  announce ixp_peer [ 200; 100 ];
  announce transit_peer [ 10; 100 ];

  Format.printf "Candidate routes for %a (decision order):@." Bgp.Prefix.pp prefix;
  List.iteri
    (fun i r -> Format.printf "  #%d via %a@." i Bgp.Peer.pp (Bgp.Route.peer r))
    (Bgp.Rib.ranked (N.Pop.rib pop) prefix);

  (* 3. Offered load: 12 Gbps of demand to a 10G preferred interface. *)
  let snapshot = C.Snapshot.of_pop pop ~prefix_rates:[ (prefix, 12e9) ] ~time_s:0 in
  let controller = Ef.Controller.create ~name:"demo" () in
  let stats = Ef.Controller.cycle controller snapshot in

  Format.printf "@.Projected BGP-only utilization: pni %.2f@."
    (Ef.Projection.utilization (Ef.Controller.preferred stats) pni);
  Format.printf "After Edge Fabric:               pni %.2f  ixp %.2f  transit %.2f@."
    (Ef.Projection.utilization (Ef.Controller.enforced stats) pni)
    (Ef.Projection.utilization (Ef.Controller.enforced stats) ixp)
    (Ef.Projection.utilization (Ef.Controller.enforced stats) transit);

  Format.printf "@.Overrides:@.";
  List.iter
    (fun o -> Format.printf "  %a@." Ef.Override.pp o)
    (Ef.Controller.overrides_enforced stats);

  Format.printf "@.The BGP message that enforces it:@.";
  List.iter
    (fun u -> Format.printf "  %a@." Bgp.Msg.pp (Bgp.Msg.Update u))
    (Ef.Controller.bgp_updates controller stats);

  (* 4. And the wire bytes are real: encode and decode them. *)
  match Ef.Controller.bgp_updates controller stats with
  | [] -> ()
  | u :: _ ->
      let wire = Bgp.Codec.encode (Bgp.Msg.Update u) in
      Format.printf "@.On the wire: %d bytes; decodes back: %b@."
        (String.length wire)
        (match Bgp.Codec.decode wire with
        | Ok (Bgp.Msg.Update u', _) -> Bgp.Msg.equal (Bgp.Msg.Update u) (Bgp.Msg.Update u')
        | Ok _ | Error _ -> false)
