(** Dense mutable bitsets over small non-negative integers.

    The allocator's per-cycle interface flags (overloaded, gave-up,
    initially-over) are sets over dense interface ids; a bitset makes
    membership O(1) and iteration O(universe/word) with zero allocation
    on the hot path, replacing the [List.mem] scans the loop used to do
    per move. *)

type t

val create : int -> t
(** [create n] is the empty set over the universe [0 .. n-1]. [n] may be
    0 (the empty universe). Raises [Invalid_argument] on negative [n]. *)

val capacity : t -> int

val mem : t -> int -> bool
(** Out-of-universe ids are simply absent (no exception): the allocator
    probes with raw interface ids and treats unknown as unset. *)

val add : t -> int -> unit
(** Raises [Invalid_argument] if the id is outside the universe. *)

val remove : t -> int -> unit
val set : t -> int -> bool -> unit

val cardinal : t -> int
val is_empty : t -> bool

val iter : (int -> unit) -> t -> unit
(** Ascending id order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Ascending id order. *)

val to_list : t -> int list
(** Ascending. *)

val clear : t -> unit
