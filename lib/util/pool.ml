type task = unit -> unit
type wrap = lane:int -> task -> unit

type t = {
  pool_jobs : int;
  wrap : wrap;
  mutex : Mutex.t;
  work : Condition.t; (* work queued, or shutdown *)
  idle : Condition.t; (* a map batch finished draining *)
  queue : task Queue.t;
  mutable live : bool;
  mutable workers : unit Domain.t list;
}

let jobs t = t.pool_jobs

(* Workers loop forever: sleep until a task (or shutdown) appears, run the
   task outside the lock, repeat. Tasks never raise — map wraps user code
   in a result. [lane] identifies the executing lane (0 = the caller,
   1..jobs-1 = spawned workers) for the wrap hook's attribution. *)
let rec worker_loop t ~lane =
  Mutex.lock t.mutex;
  let rec next () =
    match Queue.take_opt t.queue with
    | Some task -> Some task
    | None ->
        if not t.live then None
        else begin
          Condition.wait t.work t.mutex;
          next ()
        end
  in
  let task = next () in
  Mutex.unlock t.mutex;
  match task with
  | None -> ()
  | Some task ->
      t.wrap ~lane task;
      worker_loop t ~lane

let create ?(wrap = fun ~lane:_ task -> task ()) ~jobs () =
  if jobs < 1 || jobs > 128 then
    invalid_arg (Printf.sprintf "Pool.create: jobs %d not in [1, 128]" jobs);
  let t =
    {
      pool_jobs = jobs;
      wrap;
      mutex = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      queue = Queue.create ();
      live = true;
      workers = [];
    }
  in
  t.workers <-
    List.init (jobs - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop t ~lane:(i + 1)));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.live <- false;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ?wrap ~jobs f =
  let t = create ?wrap ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map t f items =
  if t.pool_jobs <= 1 then
    List.map
      (fun item ->
        let r = ref None in
        t.wrap ~lane:0 (fun () -> r := Some (f item));
        match !r with
        | Some v -> v
        | None ->
            invalid_arg "Pool.map: wrap hook did not run its task")
      items
  else begin
    let arr = Array.of_list items in
    let n = Array.length arr in
    if n = 0 then []
    else begin
      (* results.(i) is written by exactly one task; the write is
         published to the caller through the mutex-guarded [remaining]
         decrement, so no per-slot synchronization is needed *)
      let results = Array.make n None in
      let remaining = ref n in
      let run_one i =
        let r = try Ok (f arr.(i)) with e -> Error e in
        results.(i) <- Some r;
        Mutex.lock t.mutex;
        decr remaining;
        if !remaining = 0 then Condition.broadcast t.idle;
        Mutex.unlock t.mutex
      in
      Mutex.lock t.mutex;
      for i = 0 to n - 1 do
        Queue.add (fun () -> run_one i) t.queue
      done;
      Condition.broadcast t.work;
      Mutex.unlock t.mutex;
      (* the calling domain is a lane too: drain the queue alongside the
         workers, then wait out the stragglers *)
      let rec drive () =
        Mutex.lock t.mutex;
        if !remaining = 0 then Mutex.unlock t.mutex
        else
          match Queue.take_opt t.queue with
          | Some task ->
              Mutex.unlock t.mutex;
              t.wrap ~lane:0 task;
              drive ()
          | None ->
              Condition.wait t.idle t.mutex;
              Mutex.unlock t.mutex;
              drive ()
      in
      drive ();
      Array.to_list
        (Array.map
           (function
             | Some (Ok v) -> v
             | Some (Error e) -> raise e
             | None -> assert false)
           results)
    end
  end
