type task = unit -> unit

type t = {
  pool_jobs : int;
  mutex : Mutex.t;
  work : Condition.t; (* work queued, or shutdown *)
  idle : Condition.t; (* a map batch finished draining *)
  queue : task Queue.t;
  mutable live : bool;
  mutable workers : unit Domain.t list;
}

let jobs t = t.pool_jobs

(* Workers loop forever: sleep until a task (or shutdown) appears, run the
   task outside the lock, repeat. Tasks never raise — map wraps user code
   in a result. *)
let rec worker_loop t =
  Mutex.lock t.mutex;
  let rec next () =
    match Queue.take_opt t.queue with
    | Some task -> Some task
    | None ->
        if not t.live then None
        else begin
          Condition.wait t.work t.mutex;
          next ()
        end
  in
  let task = next () in
  Mutex.unlock t.mutex;
  match task with
  | None -> ()
  | Some task ->
      task ();
      worker_loop t

let create ~jobs =
  if jobs < 1 || jobs > 128 then
    invalid_arg (Printf.sprintf "Pool.create: jobs %d not in [1, 128]" jobs);
  let t =
    {
      pool_jobs = jobs;
      mutex = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      queue = Queue.create ();
      live = true;
      workers = [];
    }
  in
  t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.live <- false;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map t f items =
  if t.pool_jobs <= 1 then List.map f items
  else begin
    let arr = Array.of_list items in
    let n = Array.length arr in
    if n = 0 then []
    else begin
      (* results.(i) is written by exactly one task; the write is
         published to the caller through the mutex-guarded [remaining]
         decrement, so no per-slot synchronization is needed *)
      let results = Array.make n None in
      let remaining = ref n in
      let run_one i =
        let r = try Ok (f arr.(i)) with e -> Error e in
        results.(i) <- Some r;
        Mutex.lock t.mutex;
        decr remaining;
        if !remaining = 0 then Condition.broadcast t.idle;
        Mutex.unlock t.mutex
      in
      Mutex.lock t.mutex;
      for i = 0 to n - 1 do
        Queue.add (fun () -> run_one i) t.queue
      done;
      Condition.broadcast t.work;
      Mutex.unlock t.mutex;
      (* the calling domain is a lane too: drain the queue alongside the
         workers, then wait out the stragglers *)
      let rec drive () =
        Mutex.lock t.mutex;
        if !remaining = 0 then Mutex.unlock t.mutex
        else
          match Queue.take_opt t.queue with
          | Some task ->
              Mutex.unlock t.mutex;
              task ();
              drive ()
          | None ->
              Condition.wait t.idle t.mutex;
              Mutex.unlock t.mutex;
              drive ()
      in
      drive ();
      Array.to_list
        (Array.map
           (function
             | Some (Ok v) -> v
             | Some (Error e) -> raise e
             | None -> assert false)
           results)
    end
  end
