type task = unit -> unit
type wrap = lane:int -> task -> unit

type gc_tune = { minor_heap_words : int; space_overhead : int }

(* A worker domain's default minor heap (256k words) thrashes under the
   allocation pressure of projection/allocation tasks: most of a task's
   garbage is short-lived scratch that a bigger nursery reclaims for
   free, and a higher space_overhead keeps the shared major GC from
   stealing slices mid-task. ~32 MB of nursery per domain is cheap next
   to a million-prefix table. *)
let default_gc_tune = { minor_heap_words = 1 lsl 22; space_overhead = 200 }

let apply_gc_tune tune =
  let g = Gc.get () in
  Gc.set
    {
      g with
      Gc.minor_heap_size = tune.minor_heap_words;
      space_overhead = tune.space_overhead;
    }

(* Tasks running inside a map must never drive another map: every lane of
   the inner map could be parked inside the outer one, and the two would
   deadlock waiting for each other. The flag travels with the domain —
   workers set it for life at birth, the caller sets it only while it is
   executing tasks — and [map_lane] checks it to degrade gracefully to
   sequential execution instead. *)
let in_task_key = Domain.DLS.new_key (fun () -> false)
let in_task () = Domain.DLS.get in_task_key

(* queued tasks carry their own wrap (it can differ per [map] call), so
   the worker just needs to tell them which lane is running them *)
type lane_task = int -> unit

type t = {
  pool_jobs : int;
  wrap : wrap;
  gc : gc_tune option;
  mutex : Mutex.t;
  work : Condition.t; (* work queued, or shutdown *)
  idle : Condition.t; (* a map batch finished draining *)
  queue : lane_task Queue.t;
  mutable live : bool;
  mutable workers : unit Domain.t list;
}

let jobs t = t.pool_jobs

(* Workers loop forever: sleep until a task (or shutdown) appears, run the
   task outside the lock, repeat. Tasks never raise — map wraps user code
   in a result. [lane] identifies the executing lane (0 = the caller,
   1..jobs-1 = spawned workers) for the wrap hook's attribution. *)
let rec worker_loop t ~lane =
  Mutex.lock t.mutex;
  let rec next () =
    match Queue.take_opt t.queue with
    | Some task -> Some task
    | None ->
        if not t.live then None
        else begin
          Condition.wait t.work t.mutex;
          next ()
        end
  in
  let task = next () in
  Mutex.unlock t.mutex;
  match task with
  | None -> ()
  | Some task ->
      task lane;
      worker_loop t ~lane

let create ?(gc = Some default_gc_tune) ?(wrap = fun ~lane:_ task -> task ())
    ~jobs () =
  if jobs < 1 || jobs > 128 then
    invalid_arg (Printf.sprintf "Pool.create: jobs %d not in [1, 128]" jobs);
  let t =
    {
      pool_jobs = jobs;
      wrap;
      gc;
      mutex = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      queue = Queue.create ();
      live = true;
      workers = [];
    }
  in
  t.workers <-
    List.init (jobs - 1) (fun i ->
        Domain.spawn (fun () ->
            (* per-domain tuning at worker birth: each domain owns its
               minor heap, so the resize applies to this worker alone *)
            Option.iter apply_gc_tune t.gc;
            Domain.DLS.set in_task_key true;
            worker_loop t ~lane:(i + 1)));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.live <- false;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ?wrap ~jobs f =
  let t = create ?wrap ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map_lane ?wrap t f items =
  let wrap = Option.value wrap ~default:t.wrap in
  if in_task () then
    (* nested call from inside some pool task: run sequentially on this
       lane, without the wrap hook (the enclosing task is already inside
       its own wrap span) *)
    List.map (fun item -> f ~lane:0 item) items
  else if t.pool_jobs <= 1 then
    List.map
      (fun item ->
        let r = ref None in
        wrap ~lane:0 (fun () -> r := Some (f ~lane:0 item));
        match !r with
        | Some v -> v
        | None -> invalid_arg "Pool.map: wrap hook did not run its task")
      items
  else begin
    let arr = Array.of_list items in
    let n = Array.length arr in
    if n = 0 then []
    else begin
      (* results.(i) is written by exactly one task; the write is
         published to the caller through the mutex-guarded [remaining]
         decrement, so no per-slot synchronization is needed *)
      let results = Array.make n None in
      let remaining = ref n in
      let run_one lane i =
        let r = try Ok (f ~lane arr.(i)) with e -> Error e in
        results.(i) <- Some r;
        Mutex.lock t.mutex;
        decr remaining;
        if !remaining = 0 then Condition.broadcast t.idle;
        Mutex.unlock t.mutex
      in
      Mutex.lock t.mutex;
      for i = 0 to n - 1 do
        Queue.add (fun lane -> wrap ~lane (fun () -> run_one lane i)) t.queue
      done;
      Condition.broadcast t.work;
      Mutex.unlock t.mutex;
      (* the calling domain is a lane too: drain the queue alongside the
         workers, then wait out the stragglers *)
      let rec drive () =
        Mutex.lock t.mutex;
        if !remaining = 0 then Mutex.unlock t.mutex
        else
          match Queue.take_opt t.queue with
          | Some task ->
              Mutex.unlock t.mutex;
              Domain.DLS.set in_task_key true;
              Fun.protect
                ~finally:(fun () -> Domain.DLS.set in_task_key false)
                (fun () -> task 0);
              drive ()
          | None ->
              Condition.wait t.idle t.mutex;
              Mutex.unlock t.mutex;
              drive ()
      in
      drive ();
      Array.to_list
        (Array.map
           (function
             | Some (Ok v) -> v
             | Some (Error e) -> raise e
             | None -> assert false)
           results)
    end
  end

let map ?wrap t f items = map_lane ?wrap t (fun ~lane:_ item -> f item) items

(* [k] contiguous [lo, hi) ranges covering [0, n), sizes within one of
   each other — the canonical way shard tasks partition an index space *)
let chunk_ranges ~n ~k =
  let k = max 1 (min k n) in
  let base = n / k and extra = n mod k in
  let rec go i lo acc =
    if i >= k then List.rev acc
    else
      let len = base + if i < extra then 1 else 0 in
      go (i + 1) (lo + len) ((lo, lo + len) :: acc)
  in
  go 0 0 []

(* --- the process-wide shared pool ------------------------------------ *)

(* One long-lived pool reused across Fleet.run calls, controller shards
   and bench iterations: domains spawn once per size, not per call. The
   cell is guarded so the size-change path (shutdown + respawn) is safe
   even if two entry points race, but the intended discipline is
   main-domain use — code running inside a pool task checks {!in_task}
   and never reaches here. *)
let global_mutex = Mutex.create ()
let global_cell = ref None

let global ?gc ~jobs () =
  Mutex.lock global_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock global_mutex)
    (fun () ->
      match !global_cell with
      | Some t when t.pool_jobs = jobs && t.live -> t
      | prev ->
          (match prev with Some t -> shutdown t | None -> ());
          let t = create ?gc ~jobs () in
          global_cell := Some t;
          t)

let shutdown_global () =
  Mutex.lock global_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock global_mutex)
    (fun () ->
      match !global_cell with
      | None -> ()
      | Some t ->
          shutdown t;
          global_cell := None)
