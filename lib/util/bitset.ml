type t = { words : Bytes.t; universe : int; mutable count : int }

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { words = Bytes.make ((n + 7) / 8) '\000'; universe = n; count = 0 }

let capacity t = t.universe

let mem t i =
  i >= 0 && i < t.universe
  && Char.code (Bytes.unsafe_get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let check t i =
  if i < 0 || i >= t.universe then invalid_arg "Bitset: id outside universe"

let add t i =
  check t i;
  if not (mem t i) then begin
    let b = Char.code (Bytes.unsafe_get t.words (i lsr 3)) in
    Bytes.unsafe_set t.words (i lsr 3) (Char.chr (b lor (1 lsl (i land 7))));
    t.count <- t.count + 1
  end

let remove t i =
  check t i;
  if mem t i then begin
    let b = Char.code (Bytes.unsafe_get t.words (i lsr 3)) in
    Bytes.unsafe_set t.words (i lsr 3)
      (Char.chr (b land lnot (1 lsl (i land 7)) land 0xFF));
    t.count <- t.count - 1
  end

let set t i v = if v then add t i else remove t i
let cardinal t = t.count
let is_empty t = t.count = 0

let iter f t =
  for i = 0 to t.universe - 1 do
    if mem t i then f i
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let clear t =
  Bytes.fill t.words 0 (Bytes.length t.words) '\000';
  t.count <- 0
