(** A small fixed-size work pool over OCaml 5 domains.

    [create ~jobs] spawns [jobs - 1] worker domains; the caller domain is
    the remaining lane, so a pool of [jobs] runs at most [jobs] tasks at
    once without oversubscribing. A pool of size 1 spawns nothing and
    {!map} degenerates to [List.map] on the calling domain — the
    sequential path, byte-identical to not having a pool at all.

    Results are collected by submission index: [map pool f items] always
    returns results in the order of [items], whatever order the workers
    finished in, so parallelism can never reorder (and therefore never
    change) a deterministic computation's output.

    The pool is intended for coarse tasks (a whole PoP-day simulation per
    task); tasks must not themselves call {!map} on the same pool. One
    [map] may be in flight at a time per pool. *)

type t

type wrap = lane:int -> (unit -> unit) -> unit
(** Execution hook: called for every task with the lane that runs it
    (0 = the calling domain, 1..jobs-1 = spawned workers) and the task
    itself, which it must run exactly once (before returning). The hook
    is how callers attribute per-domain/per-lane time (e.g. wrap each
    task in a profiler span) without this module depending on the
    telemetry stack. The default just runs the task. *)

val create : ?wrap:wrap -> jobs:int -> unit -> t
(** Raises [Invalid_argument] if [jobs < 1] or [jobs > 128]. *)

val jobs : t -> int

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Run [f] on every item, up to [jobs] at a time (the caller works too),
    and return the results in submission order. If any task raised, the
    remaining tasks still run to completion, then the exception of the
    lowest-indexed failed task is re-raised on the calling domain. *)

val shutdown : t -> unit
(** Join the worker domains. Idempotent; the pool must not be used
    afterwards. *)

val with_pool : ?wrap:wrap -> jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] — create, run [f], and shut down even if [f]
    raises. *)
