(** A fixed-size work pool over OCaml 5 domains.

    [create ~jobs] spawns [jobs - 1] worker domains; the caller domain is
    the remaining lane, so a pool of [jobs] runs at most [jobs] tasks at
    once without oversubscribing. A pool of size 1 spawns nothing and
    {!map} degenerates to [List.map] on the calling domain — the
    sequential path, byte-identical to not having a pool at all.

    Workers are long-lived: they spawn at {!create} and persist until
    {!shutdown}, so a pool can (and should) be reused across many {!map}
    calls — repeated [Fleet.run]s, sharded controller cycles and bench
    iterations all share the same domains instead of paying a
    spawn/join per call. {!global} provides the process-wide instance
    most steady-state callers want.

    Results are collected by submission index: [map pool f items] always
    returns results in the order of [items], whatever order the workers
    finished in, so parallelism can never reorder (and therefore never
    change) a deterministic computation's output. *)

type task = unit -> unit

type wrap = lane:int -> task -> unit
(** Execution hook: called for every task with the lane that runs it
    (0 = the calling domain, 1..jobs-1 = spawned workers) and the task
    itself, which it must run exactly once (before returning). The hook
    is how callers attribute per-domain/per-lane time (e.g. wrap each
    task in a profiler span) without this module depending on the
    telemetry stack. The default just runs the task. *)

type gc_tune = { minor_heap_words : int; space_overhead : int }
(** Per-domain GC tuning applied inside each worker domain at birth. In
    OCaml 5 the minor heap is per-domain, so sizing it from within the
    worker is the only way to give workers a bigger nursery than the
    main domain's default. *)

val default_gc_tune : gc_tune
(** 4M words (~32 MB on 64-bit) minor heap, [space_overhead = 200] —
    sized for allocation-heavy projection/assemble shard tasks, where
    most garbage is short-lived scratch that a big nursery reclaims for
    free. *)

type t

val create : ?gc:gc_tune option -> ?wrap:wrap -> jobs:int -> unit -> t
(** [gc] defaults to [Some default_gc_tune]; pass [~gc:None] to leave
    worker domains at stock GC settings. [wrap] is the pool's default
    per-task hook, overridable per {!map} call. Raises
    [Invalid_argument] if [jobs < 1] or [jobs > 128]. *)

val jobs : t -> int

val map : ?wrap:wrap -> t -> ('a -> 'b) -> 'a list -> 'b list
(** Run [f] on every item, up to [jobs] at a time (the caller works too),
    and return the results in submission order. If any task raised, the
    remaining tasks still run to completion, then the exception of the
    lowest-indexed failed task is re-raised on the calling domain — the
    pool stays usable afterwards.

    Nested calls are safe but sequential: a [map] invoked from inside a
    pool task (any pool's — see {!in_task}) runs [f] sequentially on the
    calling lane instead of deadlocking the lanes against each other;
    the wrap hook is skipped on that fallback path. One non-nested [map]
    may be in flight at a time per pool. *)

val map_lane : ?wrap:wrap -> t -> (lane:int -> 'a -> 'b) -> 'a list -> 'b list
(** Like {!map} but [f] also receives the executing lane index, for
    callers that keep per-lane scratch (a lane runs one task at a time,
    so lane-indexed arrays need no locking). Lane indices lie in
    [0, jobs); on the sequential paths every task reports lane 0. *)

val shutdown : t -> unit
(** Join the worker domains. Idempotent; the pool must not be used
    afterwards. *)

val with_pool : ?wrap:wrap -> jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] — create, run [f], and shut down even if [f]
    raises. Prefer {!global} in steady-state code paths; [with_pool]
    pays a domain spawn/join per call. *)

val in_task : unit -> bool
(** True iff the current domain is executing inside some pool task (a
    spawned worker, or the caller lane while it drives a parallel map).
    Shard entry points check this to avoid re-entering the pool
    machinery from within it. *)

val global : ?gc:gc_tune option -> jobs:int -> unit -> t
(** [global ~jobs ()] returns the process-wide shared pool, creating it
    on first use. A live global pool of the same size is returned as-is
    (its workers persist across calls); a size change shuts the old pool
    down and spawns a fresh one. Do not call from inside a pool task
    (check {!in_task} first) and do not {!shutdown} the returned pool
    directly — use {!shutdown_global}. *)

val shutdown_global : unit -> unit
(** Shut down and forget the global pool, if any. The next {!global}
    call respawns it. *)

val chunk_ranges : n:int -> k:int -> (int * int) list
(** [k] contiguous [lo, hi) ranges covering [0, n), sizes within one of
    each other (fewer ranges when [n < k]; a single [(0, n)] range — or
    [(0, 0)] when [n = 0] — when [k <= 1]). Shard tasks use this to
    partition an index space deterministically. *)
