(** Fixed-bucket histograms.

    Used for "how long do overrides last" / "how many routes per prefix"
    style counts where the bucket structure is known up front. *)

type t

val create : lo:float -> hi:float -> buckets:int -> t
(** Evenly spaced buckets over [\[lo, hi)]; samples outside the range land
    in saturating under/overflow buckets. *)

val create_edges : float array -> t
(** Custom (strictly increasing) bucket edges. [n+1] edges make [n]
    buckets. *)

val observe : t -> float -> unit
val observe_weighted : t -> float -> float -> unit
(** [observe_weighted t x w] adds weight [w] at value [x] (e.g. traffic
    volume rather than a count). Both raise [Invalid_argument] on a NaN
    value or weight (a NaN fails every edge comparison and would be
    silently credited to the first bucket). *)

val count : t -> int
val total_weight : t -> float
val underflow : t -> float
val overflow : t -> float

val buckets : t -> (float * float * float) list
(** [(lo, hi, weight)] per bucket, in order. *)

val fraction_in : t -> int -> float
(** Fraction of total weight in bucket [i] (0-based, in-range buckets
    only). *)

val pp : Format.formatter -> t -> unit
