type t = { sorted : float array }

let of_array arr =
  if Array.length arr = 0 then invalid_arg "Cdf.of_array: empty";
  (* NaN is not totally ordered: one NaN sample silently corrupts the
     sort and every quantile after it, so reject it at the door *)
  Array.iter
    (fun x -> if Float.is_nan x then invalid_arg "Cdf.of_array: NaN sample")
    arr;
  let sorted = Array.copy arr in
  Array.sort Float.compare sorted;
  { sorted }

let of_samples l = of_array (Array.of_list l)

let count t = Array.length t.sorted
let min t = t.sorted.(0)
let max t = t.sorted.(Array.length t.sorted - 1)

let quantile t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Cdf.quantile: q out of [0,1]";
  let n = Array.length t.sorted in
  if n = 1 then t.sorted.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    t.sorted.(lo) +. (frac *. (t.sorted.(hi) -. t.sorted.(lo)))
  end

let median t = quantile t 0.5

let fraction_below t x =
  (* count of samples <= x, via binary search for upper bound *)
  let n = Array.length t.sorted in
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.sorted.(mid) <= x then search (mid + 1) hi else search lo mid
  in
  float_of_int (search 0 n) /. float_of_int n

let fraction_at_least t x =
  let n = Array.length t.sorted in
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.sorted.(mid) < x then search (mid + 1) hi else search lo mid
  in
  float_of_int (n - search 0 n) /. float_of_int n

let series t ~points =
  if points < 2 then invalid_arg "Cdf.series: need at least 2 points";
  List.init points (fun i ->
      let q = float_of_int i /. float_of_int (points - 1) in
      (quantile t q, q))

let pp_series ?(points = 20) fmt t =
  List.iter
    (fun (x, q) -> Format.fprintf fmt "%12.4f  %6.3f@." x q)
    (series t ~points)
