(** Empirical cumulative distribution functions.

    Every "CDF over interfaces/prefixes/overrides" figure in the paper is
    regenerated from one of these: collect samples, then query fractions or
    print evenly-spaced series rows. *)

type t

val of_samples : float list -> t
(** Build from raw samples. Raises [Invalid_argument] on the empty list
    or on a NaN sample (NaN is not totally ordered — it would silently
    corrupt the sort and every quantile after it). *)

val of_array : float array -> t
(** Build from raw samples (the array is copied before sorting). Same
    [Invalid_argument] cases as {!of_samples}. *)

val count : t -> int
val min : t -> float
val max : t -> float

val quantile : t -> float -> float
(** [quantile t q] with [0 <= q <= 1]: linear interpolation between order
    statistics (type-7, the common default). *)

val median : t -> float

val fraction_below : t -> float -> float
(** [fraction_below t x] is the empirical P(sample <= x). *)

val fraction_at_least : t -> float -> float

val series : t -> points:int -> (float * float) list
(** [series t ~points] returns [(x, P(sample <= x))] rows at [points]
    evenly spaced quantiles — ready to print or plot. *)

val pp_series : ?points:int -> Format.formatter -> t -> unit
(** Print the series one row per line as ["x\tP"]. Default 20 points. *)
