type t = {
  edges : float array; (* length n+1, strictly increasing *)
  weights : float array; (* length n *)
  mutable underflow : float;
  mutable overflow : float;
  mutable count : int;
}

let create_edges edges =
  let n = Array.length edges - 1 in
  if n < 1 then invalid_arg "Histogram.create_edges: need >= 2 edges";
  for i = 0 to n - 1 do
    if edges.(i) >= edges.(i + 1) then
      invalid_arg "Histogram.create_edges: edges must increase strictly"
  done;
  {
    edges = Array.copy edges;
    weights = Array.make n 0.0;
    underflow = 0.0;
    overflow = 0.0;
    count = 0;
  }

let create ~lo ~hi ~buckets =
  if buckets < 1 then invalid_arg "Histogram.create: buckets must be >= 1";
  if lo >= hi then invalid_arg "Histogram.create: lo must be < hi";
  let width = (hi -. lo) /. float_of_int buckets in
  create_edges
    (Array.init (buckets + 1) (fun i -> lo +. (float_of_int i *. width)))

let observe_weighted t x w =
  (* a NaN value fails every edge comparison, so the binary search would
     silently credit it to the first bucket; a NaN weight poisons totals *)
  if Float.is_nan x then invalid_arg "Histogram.observe: NaN value";
  if Float.is_nan w then invalid_arg "Histogram.observe: NaN weight";
  t.count <- t.count + 1;
  let n = Array.length t.weights in
  if x < t.edges.(0) then t.underflow <- t.underflow +. w
  else if x >= t.edges.(n) then t.overflow <- t.overflow +. w
  else begin
    (* binary search: last edge <= x *)
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi + 1) / 2 in
        if t.edges.(mid) <= x then search mid hi else search lo (mid - 1)
    in
    let i = search 0 (n - 1) in
    t.weights.(i) <- t.weights.(i) +. w
  end

let observe t x = observe_weighted t x 1.0

let count t = t.count

let total_weight t =
  Array.fold_left ( +. ) (t.underflow +. t.overflow) t.weights

let underflow t = t.underflow
let overflow t = t.overflow

let buckets t =
  List.init (Array.length t.weights) (fun i ->
      (t.edges.(i), t.edges.(i + 1), t.weights.(i)))

let fraction_in t i =
  if i < 0 || i >= Array.length t.weights then
    invalid_arg "Histogram.fraction_in: bucket index out of range";
  let total = total_weight t in
  if total = 0.0 then 0.0 else t.weights.(i) /. total

let pp fmt t =
  List.iter
    (fun (lo, hi, w) -> Format.fprintf fmt "[%g, %g): %g@." lo hi w)
    (buckets t)
