type t = {
  mutable count : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  mutable total : float;
}

let create () =
  { count = 0; mean = 0.0; m2 = 0.0; min = nan; max = nan; total = 0.0 }

let observe t x =
  (* same hazard as Cdf: a NaN silently poisons mean/m2 and falls through
     every min/max comparison *)
  if Float.is_nan x then invalid_arg "Summary.observe: NaN sample";
  t.count <- t.count + 1;
  t.total <- t.total +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.count);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if t.count = 1 then begin
    t.min <- x;
    t.max <- x
  end else begin
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x
  end

let count t = t.count
let mean t = if t.count = 0 then nan else t.mean
let variance t = if t.count < 2 then 0.0 else t.m2 /. float_of_int (t.count - 1)
let stddev t = sqrt (variance t)
let min t = t.min
let max t = t.max
let total t = t.total

let merge a b =
  if a.count = 0 then { b with count = b.count }
  else if b.count = 0 then { a with count = a.count }
  else begin
    let count = a.count + b.count in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. float_of_int b.count /. float_of_int count) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.count *. float_of_int b.count
          /. float_of_int count)
    in
    {
      count;
      mean;
      m2;
      min = Float.min a.min b.min;
      max = Float.max a.max b.max;
      total = a.total +. b.total;
    }
  end

let pp fmt t =
  Format.fprintf fmt "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f" t.count
    (mean t) (stddev t) t.min t.max
