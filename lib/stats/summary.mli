(** Streaming numeric summaries (Welford's online algorithm).

    Used by the metrics recorder: cheap to update every simulation cycle,
    no sample retention needed for mean/stddev/min/max. *)

type t

val create : unit -> t

val observe : t -> float -> unit
(** Raises [Invalid_argument] on NaN (it would silently poison the
    running mean and fall through every min/max comparison). *)

val count : t -> int
val mean : t -> float
(** Mean of the observations; [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [0.] with fewer than two observations. *)

val stddev : t -> float
val min : t -> float
(** Minimum; [nan] when empty. *)

val max : t -> float
(** Maximum; [nan] when empty. *)

val total : t -> float
val merge : t -> t -> t
(** Combine two summaries as if all observations had gone to one. *)

val pp : Format.formatter -> t -> unit
