module Bgp = Ef_bgp

type pred =
  | True
  | False
  | Prefix_in of Bgp.Prefix.t list
  | Prefix_exact of Bgp.Prefix.t
  | Prefix_len_at_least of int
  | Has_community of Bgp.Community.t
  | Peer_kind of Bgp.Peer.kind
  | Peer_asn of Bgp.Asn.t
  | Path_contains of Bgp.Asn.t
  | In_region of string
  | Shared_port
  | And of pred list
  | Or of pred list
  | Not of pred

type action =
  | Set_local_pref of int
  | Set_med of int option
  | Add_community of Bgp.Community.t
  | Remove_community of Bgp.Community.t
  | Prepend of Bgp.Asn.t * int
  | Set_overload_threshold of float
  | Set_detour_budget of float
  | Set_max_overrides of int
  | Set_min_improvement_ms of float
  | Set_perf_guard of float
  | Set_max_suggestions of int

type verdict = Bgp.Policy.verdict = Accept | Reject

type rule = {
  rule_name : string;
  rule_pred : pred;
  rule_actions : action list;
  rule_verdict : verdict;
}

type t =
  | Rule of rule
  | Union of t * t
  | Seq of t * t

type program = {
  program_name : string;
  program_default : verdict;
  program_policy : t;
}

(* builders *)

let rule ?(verdict = Accept) ~name pred actions =
  Rule
    { rule_name = name; rule_pred = pred; rule_actions = actions; rule_verdict = verdict }

let deny ~name pred = rule ~verdict:Reject ~name pred []
let params ?(name = "params") actions = rule ~name True actions
let ( <+> ) p q = Union (p, q)
let ( >> ) p q = Seq (p, q)

let union = function
  | [] -> invalid_arg "Ef_policy.union: empty"
  | p :: ps -> List.fold_left ( <+> ) p ps

let program ?(default = Reject) ~name policy =
  { program_name = name; program_default = default; program_policy = policy }

let any = True
let never = False
let prefix_in ps = Prefix_in ps
let prefix_exact p = Prefix_exact p
let prefix_len_at_least n = Prefix_len_at_least n
let has_community c = Has_community c
let peer_kind k = Peer_kind k
let peer_asn a = Peer_asn a
let path_contains a = Path_contains a
let in_region r = In_region r
let shared_port = Shared_port
let all_of ps = And ps
let any_of ps = Or ps
let not_ p = Not p

(* environment *)

type iface_info = {
  if_id : int;
  if_name : string;
  if_shared : bool;
  if_region : string;
  if_peer_kinds : Bgp.Peer.kind list;
  if_peer_asns : Bgp.Asn.t list;
}

type env = {
  env_self_asn : Bgp.Asn.t;
  env_regions : (string * Bgp.Prefix.t list) list;
  env_ifaces : iface_info list;
}

let env ?(regions = []) ?(ifaces = []) ~self_asn () =
  { env_self_asn = self_asn; env_regions = regions; env_ifaces = ifaces }

let region_blocks env r =
  match List.assoc_opt r env.env_regions with Some bs -> bs | None -> []

(* route scope.

   These cases must mirror what Compile.lower_pred produces: e.g.
   [Prefix_in] is "any block subsumes the route's prefix" exactly
   because it lowers to [Match_or (List.map Match_prefix blocks)]. *)

let rec pred_matches_route env p (r : Bgp.Route.t) =
  match p with
  | True -> true
  | False -> false
  | Prefix_in blocks ->
      List.exists (fun b -> Bgp.Prefix.subsumes b (Bgp.Route.prefix r)) blocks
  | Prefix_exact p -> Bgp.Prefix.equal p (Bgp.Route.prefix r)
  | Prefix_len_at_least n -> Bgp.Prefix.length (Bgp.Route.prefix r) >= n
  | Has_community c -> Bgp.Route.has_community c r
  | Peer_kind k -> Bgp.Route.peer_kind r = k
  | Peer_asn a -> Bgp.Asn.equal (Bgp.Peer.asn (Bgp.Route.peer r)) a
  | Path_contains a -> Bgp.As_path.mem a (Bgp.Route.attrs r).Bgp.Attrs.as_path
  | In_region reg ->
      List.exists
        (fun b -> Bgp.Prefix.subsumes b (Bgp.Route.prefix r))
        (region_blocks env reg)
  | Shared_port -> false
  | And ps -> List.for_all (fun p -> pred_matches_route env p r) ps
  | Or ps -> List.exists (fun p -> pred_matches_route env p r) ps
  | Not p -> not (pred_matches_route env p r)

(* Parameter actions leave route attributes alone; the attribute subset
   applies exactly as Ef_bgp.Policy.apply_action would. *)
let apply_route_action attrs = function
  | Set_local_pref lp -> Bgp.Attrs.with_local_pref lp attrs
  | Set_med med -> Bgp.Attrs.with_med med attrs
  | Add_community c -> Bgp.Attrs.add_community c attrs
  | Remove_community c -> Bgp.Attrs.remove_community c attrs
  | Prepend (asn, n) -> Bgp.Attrs.prepend_path asn n attrs
  | Set_overload_threshold _ | Set_detour_budget _ | Set_max_overrides _
  | Set_min_improvement_ms _ | Set_perf_guard _ | Set_max_suggestions _ ->
      attrs

type outcome =
  | No_match
  | Accepted of Bgp.Route.t
  | Rejected

let rec eval env t (r : Bgp.Route.t) =
  match t with
  | Rule rl ->
      if pred_matches_route env rl.rule_pred r then
        match rl.rule_verdict with
        | Reject -> Rejected
        | Accept ->
            let attrs =
              List.fold_left apply_route_action (Bgp.Route.attrs r) rl.rule_actions
            in
            Accepted (Bgp.Route.with_attrs attrs r)
      else No_match
  | Union (p, q) -> ( match eval env p r with No_match -> eval env q r | o -> o)
  | Seq (p, q) -> (
      match eval env p r with
      | Rejected -> Rejected
      | No_match -> eval env q r
      | Accepted r' -> (
          match eval env q r' with No_match -> Accepted r' | o -> o))

let apply ?(default = Reject) env t r =
  match eval env t r with
  | Accepted r' -> Some r'
  | Rejected -> None
  | No_match -> ( match default with Accept -> Some r | Reject -> None)

(* iface and global scope *)

let rec pred_matches_iface env p (i : iface_info) =
  match p with
  | True -> true
  | False -> false
  | Peer_kind k -> List.mem k i.if_peer_kinds
  | Peer_asn a -> List.exists (Bgp.Asn.equal a) i.if_peer_asns
  | In_region r -> String.equal r i.if_region
  | Shared_port -> i.if_shared
  | Prefix_in _ | Prefix_exact _ | Prefix_len_at_least _ | Has_community _
  | Path_contains _ ->
      false
  | And ps -> List.for_all (fun p -> pred_matches_iface env p i) ps
  | Or ps -> List.exists (fun p -> pred_matches_iface env p i) ps
  | Not p -> not (pred_matches_iface env p i)

(* global scope: only predicates with no atomic constraint match *)
let rec pred_matches_global = function
  | True -> true
  | False -> false
  | Prefix_in _ | Prefix_exact _ | Prefix_len_at_least _ | Has_community _
  | Peer_kind _ | Peer_asn _ | Path_contains _ | In_region _ | Shared_port ->
      false
  | And ps -> List.for_all pred_matches_global ps
  | Or ps -> List.exists pred_matches_global ps
  | Not p -> not (pred_matches_global p)

(* the last matching action within one rule wins *)
let knob_value proj actions =
  List.fold_left
    (fun acc a -> match proj a with Some _ as v -> v | None -> acc)
    None actions

(* first rule (priority order; Seq: right side runs later so it wins)
   that matches the subject and sets the knob *)
let rec first_param matches proj = function
  | Rule r ->
      if r.rule_verdict = Accept && matches r.rule_pred then
        knob_value proj r.rule_actions
      else None
  | Union (p, q) -> (
      match first_param matches proj p with
      | Some _ as v -> v
      | None -> first_param matches proj q)
  | Seq (p, q) -> (
      match first_param matches proj q with
      | Some _ as v -> v
      | None -> first_param matches proj p)

let knob_threshold = function Set_overload_threshold v -> Some v | _ -> None
let knob_detour = function Set_detour_budget v -> Some v | _ -> None
let knob_max_overrides = function Set_max_overrides v -> Some v | _ -> None

let knob_min_improvement = function
  | Set_min_improvement_ms v -> Some v
  | _ -> None

let knob_perf_guard = function Set_perf_guard v -> Some v | _ -> None
let knob_max_suggestions = function Set_max_suggestions v -> Some v | _ -> None

let iface_threshold env t i =
  first_param (fun p -> pred_matches_iface env p i) knob_threshold t

type alloc_params = {
  ap_overload_threshold : float option;
  ap_iface_thresholds : (int * float) list;
  ap_detour_budget : float option;
  ap_max_overrides : int option;
  ap_min_improvement_ms : float option;
  ap_perf_guard : float option;
  ap_max_suggestions : int option;
}

let alloc_params env t =
  let glob proj = first_param pred_matches_global proj t in
  let global_threshold = glob knob_threshold in
  let iface_thresholds =
    List.filter_map
      (fun i ->
        match iface_threshold env t i with
        | Some v when global_threshold <> Some v -> Some (i.if_id, v)
        | _ -> None)
      env.env_ifaces
  in
  {
    ap_overload_threshold = global_threshold;
    ap_iface_thresholds = iface_thresholds;
    ap_detour_budget = glob knob_detour;
    ap_max_overrides = glob knob_max_overrides;
    ap_min_improvement_ms = glob knob_min_improvement;
    ap_perf_guard = glob knob_perf_guard;
    ap_max_suggestions = glob knob_max_suggestions;
  }

(* the standard import policy, derived from Policy.local_pref_table *)

let standard_guards ~self_asn =
  deny ~name:"deny-own-asn" (Path_contains self_asn)
  <+> deny ~name:"deny-too-specific" (Prefix_len_at_least 25)
  <+> deny ~name:"deny-default-route" (Prefix_exact Bgp.Prefix.default)

let standard_tiers =
  union
    (List.map
       (fun kind ->
         rule
           ~name:("ingest-" ^ Bgp.Peer.kind_to_string kind)
           (Peer_kind kind)
           [
             Set_local_pref (List.assoc kind Bgp.Policy.local_pref_table);
             Add_community (Bgp.Policy.ingest_community kind);
           ])
       Bgp.Peer.all_kinds)

let standard_import ~self_asn = standard_guards ~self_asn <+> standard_tiers

(* validation *)

let validate t =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let check_action name = function
    | Set_overload_threshold v when not (v > 0. && v <= 1.) ->
        err "rule %S: overload threshold %g outside (0, 1]" name v
    | Set_detour_budget v when not (v >= 0. && v <= 1.) ->
        err "rule %S: detour budget %g outside [0, 1]" name v
    | Set_perf_guard v when not (v > 0. && v <= 1.) ->
        err "rule %S: perf guard %g outside (0, 1]" name v
    | Set_max_overrides n when n < 0 ->
        err "rule %S: negative max-overrides %d" name n
    | Set_max_suggestions n when n < 0 ->
        err "rule %S: negative max-suggestions %d" name n
    | Set_min_improvement_ms v when not (v >= 0.) ->
        err "rule %S: negative min-improvement %g" name v
    | Set_local_pref n when n < 0 -> err "rule %S: negative local-pref %d" name n
    | Prepend (_, n) when n < 0 -> err "rule %S: negative prepend count %d" name n
    | _ -> Ok ()
  in
  let rec go = function
    | Rule r ->
        if String.length r.rule_name = 0 then err "rule with empty name"
        else
          List.fold_left
            (fun acc a -> match acc with Error _ -> acc | Ok () -> check_action r.rule_name a)
            (Ok ()) r.rule_actions
    | Union (p, q) | Seq (p, q) -> ( match go p with Error _ as e -> e | Ok () -> go q)
  in
  go t

(* equality and printing *)

let equal (a : t) (b : t) = a = b
let equal_program (a : program) (b : program) = a = b

let rec pp_pred fmt = function
  | True -> Format.pp_print_string fmt "any"
  | False -> Format.pp_print_string fmt "never"
  | Prefix_in ps ->
      Format.fprintf fmt "prefix-in(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
           Bgp.Prefix.pp)
        ps
  | Prefix_exact p -> Format.fprintf fmt "prefix=%a" Bgp.Prefix.pp p
  | Prefix_len_at_least n -> Format.fprintf fmt "len>=%d" n
  | Has_community c -> Format.fprintf fmt "community:%a" Bgp.Community.pp c
  | Peer_kind k -> Format.fprintf fmt "peer-kind:%a" Bgp.Peer.pp_kind k
  | Peer_asn a -> Format.fprintf fmt "peer-as%a" Bgp.Asn.pp a
  | Path_contains a -> Format.fprintf fmt "path~as%a" Bgp.Asn.pp a
  | In_region r -> Format.fprintf fmt "region:%s" r
  | Shared_port -> Format.pp_print_string fmt "shared-port"
  | And ps ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " & ")
           pp_pred)
        ps
  | Or ps ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " | ")
           pp_pred)
        ps
  | Not p -> Format.fprintf fmt "!%a" pp_pred p

let pp_action fmt = function
  | Set_local_pref lp -> Format.fprintf fmt "local-pref=%d" lp
  | Set_med (Some m) -> Format.fprintf fmt "med=%d" m
  | Set_med None -> Format.pp_print_string fmt "med=none"
  | Add_community c -> Format.fprintf fmt "+community:%a" Bgp.Community.pp c
  | Remove_community c -> Format.fprintf fmt "-community:%a" Bgp.Community.pp c
  | Prepend (a, n) -> Format.fprintf fmt "prepend:as%a*%d" Bgp.Asn.pp a n
  | Set_overload_threshold v -> Format.fprintf fmt "overload-threshold=%g" v
  | Set_detour_budget v -> Format.fprintf fmt "detour-budget=%g" v
  | Set_max_overrides n -> Format.fprintf fmt "max-overrides=%d" n
  | Set_min_improvement_ms v -> Format.fprintf fmt "min-improvement=%gms" v
  | Set_perf_guard v -> Format.fprintf fmt "perf-guard=%g" v
  | Set_max_suggestions n -> Format.fprintf fmt "max-suggestions=%d" n

let pp_verdict fmt = function
  | Accept -> Format.pp_print_string fmt "accept"
  | Reject -> Format.pp_print_string fmt "reject"

let rec pp fmt = function
  | Rule r ->
      Format.fprintf fmt "@[<h>rule %-24s if %a -> %a%a@]" r.rule_name pp_pred
        r.rule_pred pp_verdict r.rule_verdict
        (fun fmt actions ->
          List.iter (fun a -> Format.fprintf fmt " %a" pp_action a) actions)
        r.rule_actions
  | Union (p, q) -> Format.fprintf fmt "@[<v>%a@,%a@]" pp p pp q
  | Seq (p, q) -> Format.fprintf fmt "@[<v>%a@,>>@,%a@]" pp p pp q

let pp_program fmt p =
  Format.fprintf fmt "@[<v>policy %S (default %a)@,%a@]" p.program_name
    pp_verdict p.program_default pp p.program_policy

let pp_alloc_params fmt a =
  let opt pp_v fmt = function
    | None -> Format.pp_print_string fmt "-"
    | Some v -> pp_v fmt v
  in
  let f = Format.pp_print_float and i = Format.pp_print_int in
  Format.fprintf fmt
    "@[<v>overload-threshold: %a@,iface-thresholds: %a@,detour-budget: \
     %a@,max-overrides: %a@,min-improvement-ms: %a@,perf-guard: \
     %a@,max-suggestions: %a@]"
    (opt f) a.ap_overload_threshold
    (fun fmt -> function
      | [] -> Format.pp_print_string fmt "-"
      | l ->
          Format.pp_print_list
            ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ")
            (fun fmt (id, v) -> Format.fprintf fmt "if%d=%g" id v)
            fmt l)
    a.ap_iface_thresholds (opt f) a.ap_detour_budget (opt i) a.ap_max_overrides
    (opt f) a.ap_min_improvement_ms (opt f) a.ap_perf_guard (opt i)
    a.ap_max_suggestions
