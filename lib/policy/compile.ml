(* The compiler is the one sanctioned caller of the deprecated raw
   route-map constructors — everything else goes through the DSL. *)
[@@@alert "-deprecated"]

module Bgp = Ef_bgp
module P = Bgp.Policy

let mfalse = P.Match_not P.Match_any
let is_false = function P.Match_not P.Match_any -> true | _ -> false
let is_true = function P.Match_any -> true | _ -> false

(* Constant folding over the matcher algebra, so lowered guards stay
   readable and statically-dead Seq combinations are dropped. *)
let rec simplify (m : P.matcher) =
  match m with
  | P.Match_all ms -> (
      let ms = List.map simplify ms in
      if List.exists is_false ms then mfalse
      else
        match List.filter (fun m -> not (is_true m)) ms with
        | [] -> P.Match_any
        | [ m ] -> m
        | ms -> P.Match_all ms)
  | P.Match_or ms -> (
      let ms = List.map simplify ms in
      if List.exists is_true ms then P.Match_any
      else
        match List.filter (fun m -> not (is_false m)) ms with
        | [] -> mfalse
        | [ m ] -> m
        | ms -> P.Match_or ms)
  | P.Match_not m -> (
      match simplify m with
      | P.Match_any -> mfalse
      | P.Match_not P.Match_any -> P.Match_any
      | m -> P.Match_not m)
  | m -> m

let rec lower_pred env (p : Dsl.pred) : P.matcher =
  match p with
  | Dsl.True -> P.Match_any
  | Dsl.False -> mfalse
  | Dsl.Prefix_in blocks ->
      simplify (P.Match_or (List.map (fun b -> P.Match_prefix b) blocks))
  | Dsl.Prefix_exact p -> P.Match_prefix_exact p
  | Dsl.Prefix_len_at_least n -> P.Match_prefix_len_at_least n
  | Dsl.Has_community c -> P.Match_community c
  | Dsl.Peer_kind k -> P.Match_peer_kind k
  | Dsl.Peer_asn a -> P.Match_peer_asn a
  | Dsl.Path_contains a -> P.Match_path_contains a
  | Dsl.In_region r ->
      simplify
        (P.Match_or
           (List.map (fun b -> P.Match_prefix b) (Dsl.region_blocks env r)))
  | Dsl.Shared_port -> mfalse
  | Dsl.And ps -> simplify (P.Match_all (List.map (lower_pred env) ps))
  | Dsl.Or ps -> simplify (P.Match_or (List.map (lower_pred env) ps))
  | Dsl.Not p -> simplify (P.Match_not (lower_pred env p))

let lower_actions actions =
  List.filter_map
    (function
      | Dsl.Set_local_pref n -> Some (P.Set_local_pref n)
      | Dsl.Set_med m -> Some (P.Set_med m)
      | Dsl.Add_community c -> Some (P.Add_community c)
      | Dsl.Remove_community c -> Some (P.Remove_community c)
      | Dsl.Prepend (a, n) -> Some (P.Prepend (a, n))
      | Dsl.Set_overload_threshold _ | Dsl.Set_detour_budget _
      | Dsl.Set_max_overrides _ | Dsl.Set_min_improvement_ms _
      | Dsl.Set_perf_guard _ | Dsl.Set_max_suggestions _ ->
          None)
    actions

(* wp_one a m: the matcher that holds before action [a] iff [m] holds
   after it. Actions only ever touch communities and the AS path among
   the matchable attributes, so this is exact, not an approximation. *)
let rec wp_one (a : P.action) (m : P.matcher) =
  match m with
  | P.Match_community c -> (
      match a with
      | P.Add_community c' when Bgp.Community.equal c c' -> P.Match_any
      | P.Remove_community c' when Bgp.Community.equal c c' -> mfalse
      | _ -> m)
  | P.Match_path_contains asn -> (
      match a with
      | P.Prepend (asn', n) when n > 0 && Bgp.Asn.equal asn asn' -> P.Match_any
      | _ -> m)
  | P.Match_all ms -> P.Match_all (List.map (wp_one a) ms)
  | P.Match_or ms -> P.Match_or (List.map (wp_one a) ms)
  | P.Match_not m -> P.Match_not (wp_one a m)
  | m -> m

(* wp of an action sequence: transform through the last action first *)
let wp actions m = simplify (List.fold_right wp_one actions m)

let rec clause_list env (t : Dsl.t) : P.clause list =
  match t with
  | Dsl.Rule r ->
      let guard = lower_pred env r.Dsl.rule_pred in
      if is_false guard then []
      else
        [
          {
            P.clause_name = r.Dsl.rule_name;
            guard;
            actions = lower_actions r.Dsl.rule_actions;
            verdict = r.Dsl.rule_verdict;
          };
        ]
  | Dsl.Union (p, q) -> clause_list env p @ clause_list env q
  | Dsl.Seq (p, q) ->
      let cp = clause_list env p and cq = clause_list env q in
      let expand (c : P.clause) =
        match c.P.verdict with
        | P.Reject -> [ c ]
        | P.Accept ->
            let merged =
              List.filter_map
                (fun (d : P.clause) ->
                  let g = simplify (P.Match_all [ c.P.guard; wp c.P.actions d.P.guard ]) in
                  if is_false g then None
                  else
                    Some
                      {
                        P.clause_name = c.P.clause_name ^ ">" ^ d.P.clause_name;
                        guard = g;
                        actions =
                          (match d.P.verdict with
                          | P.Accept -> c.P.actions @ d.P.actions
                          | P.Reject -> []);
                        verdict = d.P.verdict;
                      })
                cq
            in
            (* catch-all: p matched and acted, q matched nothing *)
            merged @ [ c ]
      in
      List.concat_map expand cp @ cq

let route_map ?(default = Dsl.Reject) env t = P.make ~default (clause_list env t)

let program_route_map env (p : Dsl.program) =
  route_map ~default:p.Dsl.program_default env p.Dsl.program_policy

let standard_import_map ~self_asn =
  route_map (Dsl.env ~self_asn ()) (Dsl.standard_import ~self_asn)
