(** The policy language: typed predicates and actions with combinators.

    A policy is a tree of named rules composed with [<+>] (union:
    first-match-wins priority, like vendor route-map ordering) and [>>]
    (sequencing: the right side runs on the left side's output). Rules
    are plain data — scenarios declare them, the JSON codec loads them,
    and two backends consume them:

    - the {e interpreter} here ({!eval}, {!alloc_params}), the executable
      specification; and
    - the {e compiler} ({!Compile.route_map}), which lowers the same tree
      to flat [Ef_bgp.Policy] clauses and per-iface allocator parameters
      so the hot path never sees the DSL.

    Property tests pin the two backends to byte-identical decisions.

    One rule can speak to both backends at once: a predicate such as
    [peer_kind Public_peer] selects routes in a route-map {e and} the
    interfaces carrying public peers in the allocator — so "demote IXP
    routes and tighten the shared port's threshold" is a single rule.

    Evaluation scopes:
    - {e route scope} ({!eval}): all predicates are meaningful except
      {!Shared_port}, which is false for routes.
    - {e iface scope} ({!iface_threshold}): peer-kind/ASN predicates ask
      "is such a peer attached to this interface?", {!In_region} compares
      the PoP's region, {!Shared_port} picks the shared IXP port;
      route-only predicates (prefix, community, AS-path) are false.
    - {e global scope}: only predicates that are trivially true (no
      atomic constraint) match — global knobs come from unconditional
      rules, conventionally placed last (route matching is first-match,
      so a leading [True] rule would shadow everything after it). *)

(** {1 Types} *)

type pred =
  | True
  | False
  | Prefix_in of Ef_bgp.Prefix.t list  (** inside any of these blocks *)
  | Prefix_exact of Ef_bgp.Prefix.t
  | Prefix_len_at_least of int
  | Has_community of Ef_bgp.Community.t
  | Peer_kind of Ef_bgp.Peer.kind
  | Peer_asn of Ef_bgp.Asn.t
  | Path_contains of Ef_bgp.Asn.t
  | In_region of string
      (** route scope: the route's prefix lies in the named region's
          origin blocks (resolved via {!env}); iface scope: the PoP is in
          that region. Unknown region names match nothing. *)
  | Shared_port  (** iface scope only: the shared IXP port *)
  | And of pred list
  | Or of pred list
  | Not of pred

type action =
  (* route attribute actions — compile to Ef_bgp.Policy actions *)
  | Set_local_pref of int
  | Set_med of int option
  | Add_community of Ef_bgp.Community.t
  | Remove_community of Ef_bgp.Community.t
  | Prepend of Ef_bgp.Asn.t * int
  (* allocator / perf parameter actions — compile to engine config *)
  | Set_overload_threshold of float
      (** per-iface when the rule's predicate is iface-scoped, global
          when unconditional *)
  | Set_detour_budget of float  (** Guard.max_detour_fraction *)
  | Set_max_overrides of int  (** Guard.max_overrides *)
  | Set_min_improvement_ms of float  (** Perf_policy.min_improvement_ms *)
  | Set_perf_guard of float  (** Perf_policy.capacity_guard *)
  | Set_max_suggestions of int  (** Perf_policy.max_suggestions *)

type verdict = Ef_bgp.Policy.verdict = Accept | Reject

type rule = {
  rule_name : string;
  rule_pred : pred;
  rule_actions : action list;
  rule_verdict : verdict;
}

type t =
  | Rule of rule
  | Union of t * t  (** first-match-wins priority *)
  | Seq of t * t  (** right side runs on the left side's output *)

type program = {
  program_name : string;
  program_default : verdict;  (** when no rule matches a route *)
  program_policy : t;
}

(** {1 Builders} *)

val rule : ?verdict:verdict -> name:string -> pred -> action list -> t
(** A single named rule; [verdict] defaults to [Accept]. *)

val deny : name:string -> pred -> t
(** [rule ~verdict:Reject ~name pred []]. *)

val params : ?name:string -> action list -> t
(** An unconditional [Accept] rule carrying parameter actions — the way
    to set global knobs. Place it {e last} (see scope notes above). *)

val ( <+> ) : t -> t -> t
val ( >> ) : t -> t -> t

val union : t list -> t
(** Right fold of [<+>]. Raises [Invalid_argument] on []. *)

val program : ?default:verdict -> name:string -> t -> program
(** [default] defaults to [Reject] (vendor-style deny). *)

(* Predicate shorthands, for reading policies aloud. *)

val any : pred
val never : pred
val prefix_in : Ef_bgp.Prefix.t list -> pred
val prefix_exact : Ef_bgp.Prefix.t -> pred
val prefix_len_at_least : int -> pred
val has_community : Ef_bgp.Community.t -> pred
val peer_kind : Ef_bgp.Peer.kind -> pred
val peer_asn : Ef_bgp.Asn.t -> pred
val path_contains : Ef_bgp.Asn.t -> pred
val in_region : string -> pred
val shared_port : pred
val all_of : pred list -> pred
val any_of : pred list -> pred
val not_ : pred -> pred

(** {1 Environment} *)

type iface_info = {
  if_id : int;
  if_name : string;
  if_shared : bool;
  if_region : string;  (** the PoP's region *)
  if_peer_kinds : Ef_bgp.Peer.kind list;  (** kinds of attached peers *)
  if_peer_asns : Ef_bgp.Asn.t list;
}

type env = {
  env_self_asn : Ef_bgp.Asn.t;
  env_regions : (string * Ef_bgp.Prefix.t list) list;
      (** region name -> origin prefix blocks, resolves {!In_region} *)
  env_ifaces : iface_info list;
}

val env :
  ?regions:(string * Ef_bgp.Prefix.t list) list ->
  ?ifaces:iface_info list ->
  self_asn:Ef_bgp.Asn.t ->
  unit ->
  env

val region_blocks : env -> string -> Ef_bgp.Prefix.t list
(** [] for unknown regions. *)

(** {1 The interpreter (route scope)} *)

val pred_matches_route : env -> pred -> Ef_bgp.Route.t -> bool

type outcome =
  | No_match
  | Accepted of Ef_bgp.Route.t
  | Rejected

val eval : env -> t -> Ef_bgp.Route.t -> outcome
(** [Union p q]: [p]'s outcome unless [No_match], then [q]. [Seq p q]:
    reject in [p] is final; a route accepted by [p] is re-evaluated by
    [q] (which sees the modified attributes; [No_match] in [q] keeps
    [p]'s acceptance); a route unmatched by [p] falls through to [q]
    unmodified. Parameter actions do not modify routes. *)

val apply : ?default:verdict -> env -> t -> Ef_bgp.Route.t -> Ef_bgp.Route.t option
(** [eval] with [No_match] resolved by [default] (default [Reject]);
    [None] when rejected — same shape as [Ef_bgp.Policy.apply]. *)

(** {1 The interpreter (iface and global scope)} *)

val pred_matches_iface : env -> pred -> iface_info -> bool

val iface_threshold : env -> t -> iface_info -> float option
(** The first rule (in priority order; for [Seq], the right side wins —
    it runs later) that matches the interface and sets
    [Set_overload_threshold]. Within one rule the last such action
    wins. *)

type alloc_params = {
  ap_overload_threshold : float option;  (** global, from unconditional rules *)
  ap_iface_thresholds : (int * float) list;
      (** iface id -> threshold, only where it differs from the global *)
  ap_detour_budget : float option;
  ap_max_overrides : int option;
  ap_min_improvement_ms : float option;
  ap_perf_guard : float option;
  ap_max_suggestions : int option;
}

val alloc_params : env -> t -> alloc_params
(** The allocator-side denotation of a policy — what the engine merges
    into its controller / perf config. *)

(** {1 The standard import policy} *)

val standard_guards : self_asn:Ef_bgp.Asn.t -> t
(** Loop prevention (own ASN in path), too-specific (/25+) and
    default-route denies — the safety prelude of every import policy. *)

val standard_tiers : t
(** One accept rule per neighbor kind setting the LOCAL_PREF tier from
    {!Ef_bgp.Policy.local_pref_table} and tagging the ingest community —
    derived from that one table so code and docs cannot drift. *)

val standard_import : self_asn:Ef_bgp.Asn.t -> t
(** [standard_guards <+> standard_tiers] — compiles to exactly the
    clauses of the legacy [Ef_bgp.Policy.default_ingest] (pinned by
    test). *)

(** {1 Validation, equality, printing} *)

val validate : t -> (unit, string) result
(** Range checks: thresholds and guards in (0, 1], budgets in [0, 1],
    counts non-negative, prepend counts non-negative, rule names
    non-empty. *)

val equal : t -> t -> bool
(** Structural. *)

val equal_program : program -> program -> bool

val pp_pred : Format.formatter -> pred -> unit
val pp_action : Format.formatter -> action -> unit
val pp : Format.formatter -> t -> unit
val pp_program : Format.formatter -> program -> unit
val pp_alloc_params : Format.formatter -> alloc_params -> unit
