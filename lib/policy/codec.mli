(** JSON codec for policy programs — the `efctl run --policy FILE`
    wire format, in the style of [Ef_fault.Plan]'s codec.

    A program file is
    {v
    { "name": "remote-peering",
      "default": "reject",
      "policy":
        { "op": "union",
          "of": [ { "op": "rule", "name": "demote-ixp",
                    "if":   { "pred": "peer-kind", "kind": "public" },
                    "then": [ { "act": "local-pref", "value": 210 } ],
                    "verdict": "accept" },
                  ... ] } }
    v}
    [union]/[seq] nodes flatten right-nested chains on save and rebuild
    them right-associated on load, so load → save → load is a fixpoint
    (pinned by test, along with golden files under test/golden/). *)

val pred_to_json : Dsl.pred -> Ef_obs.Json.t
val pred_of_json : Ef_obs.Json.t -> (Dsl.pred, string) result
val action_to_json : Dsl.action -> Ef_obs.Json.t
val action_of_json : Ef_obs.Json.t -> (Dsl.action, string) result
val policy_to_json : Dsl.t -> Ef_obs.Json.t
val policy_of_json : Ef_obs.Json.t -> (Dsl.t, string) result
val to_json : Dsl.program -> Ef_obs.Json.t
val of_json : Ef_obs.Json.t -> (Dsl.program, string) result

val to_string : Dsl.program -> string
(** Compact one-line JSON (deterministic field order). *)

val of_string : string -> (Dsl.program, string) result
(** Parses, then {!Dsl.validate}s. *)

val save : string -> Dsl.program -> unit
(** Write to a file, with a trailing newline. *)

val load : string -> (Dsl.program, string) result
