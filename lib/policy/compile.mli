(** The compiler backend: lower a policy tree to a flat first-match
    [Ef_bgp.Policy] route-map.

    [Union] concatenates clause lists (first-match priority is exactly
    route-map order). [Seq p q] is flattened by a weakest-precondition
    transformation: for every accepting clause [(g, A)] of [p] and every
    clause [(h, B, v)] of [q] we emit [(g ∧ wp_A(h), A @ B, v)] — where
    [wp_A(h)] is the guard that holds {e before} [A] iff [h] holds
    {e after} (adding a community makes [Match_community] of it true,
    removing makes it false, prepending an ASN makes
    [Match_path_contains] of it true; everything else is untouched by
    actions) — followed by a catch-all [(g, A, Accept)] for routes [q]
    does not match, with [q]'s own clauses appended for routes [p] does
    not match. Rejecting clauses pass through unchanged.

    Property tests pin this against the {!Dsl.eval} interpreter:
    byte-identical decisions on every route of hundreds of seeded
    worlds. *)

val lower_pred : Dsl.env -> Dsl.pred -> Ef_bgp.Policy.matcher
(** Statically-false predicates (e.g. {!Dsl.Shared_port} at route scope,
    unknown regions) lower to [Match_not Match_any]. *)

val lower_actions : Dsl.action list -> Ef_bgp.Policy.action list
(** Route-attribute actions only; parameter actions are dropped (they
    compile through {!Dsl.alloc_params} instead). *)

val clause_list : Dsl.env -> Dsl.t -> Ef_bgp.Policy.clause list

val route_map : ?default:Dsl.verdict -> Dsl.env -> Dsl.t -> Ef_bgp.Policy.t
(** [default] defaults to [Reject], matching {!Dsl.apply}. *)

val program_route_map : Dsl.env -> Dsl.program -> Ef_bgp.Policy.t
(** [route_map] with the program's declared default. *)

val standard_import_map : self_asn:Ef_bgp.Asn.t -> Ef_bgp.Policy.t
(** {!Dsl.standard_import} compiled with an empty environment — the
    drop-in replacement for the deprecated
    [Ef_bgp.Policy.default_ingest], producing identical clauses. *)
