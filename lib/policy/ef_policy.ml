(** Ef_policy: a compositional egress-policy DSL.

    Policies are typed combinator trees — predicates over prefix set /
    community / peer kind / region / AS path, actions setting LOCAL_PREF
    / prepends / allocator thresholds / detour budgets — composed with
    [<+>] (union, first-match-wins) and [>>] (sequencing). Two backends
    consume the same tree and are pinned to agree byte-for-byte:

    - {!Dsl.eval} / {!Dsl.alloc_params}: the direct interpreter, the
      executable specification;
    - {!Compile.route_map}: the compiler to flat [Ef_bgp.Policy]
      route-maps and per-iface allocator parameters, so the simulator's
      hot path never executes DSL trees.

    {!Codec} gives policies a JSON file format (`efctl run --policy`).

    The DSL's combinators are in the NetCore / Frenetic tradition; the
    policies they express are Edge Fabric's (kind-tier LOCAL_PREF,
    ingest tagging) plus the per-peer-class refinements the related
    work calls for — remote-peering demotion (O Peer, Where Art Thou?)
    and community-driven steering. *)

include Dsl
module Compile = Compile
module Codec = Codec

let standard_import_map = Compile.standard_import_map
