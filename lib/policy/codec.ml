module Bgp = Ef_bgp
module J = Ef_obs.Json

let ( let* ) = Result.bind
let err fmt = Format.kasprintf (fun s -> Error s) fmt

let field name json =
  match J.member name json with
  | Some v -> Ok v
  | None -> err "missing field %S in %s" name (J.to_string json)

let string_field name json =
  let* v = field name json in
  match J.to_string_opt v with
  | Some s -> Ok s
  | None -> err "field %S: expected a string" name

let int_field name json =
  let* v = field name json in
  match J.to_int_opt v with
  | Some n -> Ok n
  | None -> err "field %S: expected an integer" name

let float_field name json =
  let* v = field name json in
  match J.to_float_opt v with
  | Some f -> Ok f
  | None -> err "field %S: expected a number" name

let list_field name json =
  let* v = field name json in
  match J.to_list_opt v with
  | Some l -> Ok l
  | None -> err "field %S: expected a list" name

let map_result f l =
  List.fold_right
    (fun x acc ->
      let* acc = acc in
      let* y = f x in
      Ok (y :: acc))
    l (Ok [])

let prefix_of_string s =
  match Bgp.Prefix.of_string_opt s with
  | Some p -> Ok p
  | None -> err "malformed prefix %S" s

let community_of_string s =
  match Bgp.Community.of_string s with
  | c -> Ok c
  | exception Invalid_argument m -> err "malformed community %S (%s)" s m

(* predicates *)

let rec pred_to_json (p : Dsl.pred) =
  match p with
  | Dsl.True -> J.Obj [ ("pred", J.String "any") ]
  | Dsl.False -> J.Obj [ ("pred", J.String "never") ]
  | Dsl.Prefix_in ps ->
      J.Obj
        [
          ("pred", J.String "prefix-in");
          ("prefixes", J.List (List.map (fun p -> J.String (Bgp.Prefix.to_string p)) ps));
        ]
  | Dsl.Prefix_exact p ->
      J.Obj
        [ ("pred", J.String "prefix-exact"); ("prefix", J.String (Bgp.Prefix.to_string p)) ]
  | Dsl.Prefix_len_at_least n ->
      J.Obj [ ("pred", J.String "prefix-len-at-least"); ("len", J.Int n) ]
  | Dsl.Has_community c ->
      J.Obj
        [ ("pred", J.String "community"); ("community", J.String (Bgp.Community.to_string c)) ]
  | Dsl.Peer_kind k ->
      J.Obj [ ("pred", J.String "peer-kind"); ("kind", J.String (Bgp.Peer.kind_to_string k)) ]
  | Dsl.Peer_asn a -> J.Obj [ ("pred", J.String "peer-asn"); ("asn", J.Int (Bgp.Asn.to_int a)) ]
  | Dsl.Path_contains a ->
      J.Obj [ ("pred", J.String "path-contains"); ("asn", J.Int (Bgp.Asn.to_int a)) ]
  | Dsl.In_region r -> J.Obj [ ("pred", J.String "region"); ("region", J.String r) ]
  | Dsl.Shared_port -> J.Obj [ ("pred", J.String "shared-port") ]
  | Dsl.And ps -> J.Obj [ ("pred", J.String "all"); ("of", J.List (List.map pred_to_json ps)) ]
  | Dsl.Or ps ->
      J.Obj [ ("pred", J.String "any-of"); ("of", J.List (List.map pred_to_json ps)) ]
  | Dsl.Not p -> J.Obj [ ("pred", J.String "not"); ("of", pred_to_json p) ]

let rec pred_of_json json =
  let* tag = string_field "pred" json in
  match tag with
  | "any" -> Ok Dsl.True
  | "never" -> Ok Dsl.False
  | "prefix-in" ->
      let* l = list_field "prefixes" json in
      let* ps =
        map_result
          (fun j ->
            match J.to_string_opt j with
            | Some s -> prefix_of_string s
            | None -> err "prefix-in: expected prefix strings")
          l
      in
      Ok (Dsl.Prefix_in ps)
  | "prefix-exact" ->
      let* s = string_field "prefix" json in
      let* p = prefix_of_string s in
      Ok (Dsl.Prefix_exact p)
  | "prefix-len-at-least" ->
      let* n = int_field "len" json in
      Ok (Dsl.Prefix_len_at_least n)
  | "community" ->
      let* s = string_field "community" json in
      let* c = community_of_string s in
      Ok (Dsl.Has_community c)
  | "peer-kind" -> (
      let* s = string_field "kind" json in
      match Bgp.Peer.kind_of_string s with
      | Some k -> Ok (Dsl.Peer_kind k)
      | None -> err "unknown peer kind %S" s)
  | "peer-asn" ->
      let* n = int_field "asn" json in
      Ok (Dsl.Peer_asn (Bgp.Asn.of_int n))
  | "path-contains" ->
      let* n = int_field "asn" json in
      Ok (Dsl.Path_contains (Bgp.Asn.of_int n))
  | "region" ->
      let* r = string_field "region" json in
      Ok (Dsl.In_region r)
  | "shared-port" -> Ok Dsl.Shared_port
  | "all" ->
      let* l = list_field "of" json in
      let* ps = map_result pred_of_json l in
      Ok (Dsl.And ps)
  | "any-of" ->
      let* l = list_field "of" json in
      let* ps = map_result pred_of_json l in
      Ok (Dsl.Or ps)
  | "not" ->
      let* j = field "of" json in
      let* p = pred_of_json j in
      Ok (Dsl.Not p)
  | other -> err "unknown predicate %S" other

(* actions *)

let action_to_json (a : Dsl.action) =
  match a with
  | Dsl.Set_local_pref n -> J.Obj [ ("act", J.String "local-pref"); ("value", J.Int n) ]
  | Dsl.Set_med (Some m) -> J.Obj [ ("act", J.String "med"); ("value", J.Int m) ]
  | Dsl.Set_med None -> J.Obj [ ("act", J.String "med"); ("value", J.Null) ]
  | Dsl.Add_community c ->
      J.Obj
        [ ("act", J.String "add-community"); ("community", J.String (Bgp.Community.to_string c)) ]
  | Dsl.Remove_community c ->
      J.Obj
        [
          ("act", J.String "remove-community");
          ("community", J.String (Bgp.Community.to_string c));
        ]
  | Dsl.Prepend (a, n) ->
      J.Obj [ ("act", J.String "prepend"); ("asn", J.Int (Bgp.Asn.to_int a)); ("count", J.Int n) ]
  | Dsl.Set_overload_threshold v ->
      J.Obj [ ("act", J.String "overload-threshold"); ("value", J.Float v) ]
  | Dsl.Set_detour_budget v -> J.Obj [ ("act", J.String "detour-budget"); ("value", J.Float v) ]
  | Dsl.Set_max_overrides n -> J.Obj [ ("act", J.String "max-overrides"); ("value", J.Int n) ]
  | Dsl.Set_min_improvement_ms v ->
      J.Obj [ ("act", J.String "min-improvement-ms"); ("value", J.Float v) ]
  | Dsl.Set_perf_guard v -> J.Obj [ ("act", J.String "perf-guard"); ("value", J.Float v) ]
  | Dsl.Set_max_suggestions n ->
      J.Obj [ ("act", J.String "max-suggestions"); ("value", J.Int n) ]

let action_of_json json =
  let* tag = string_field "act" json in
  match tag with
  | "local-pref" ->
      let* n = int_field "value" json in
      Ok (Dsl.Set_local_pref n)
  | "med" -> (
      let* v = field "value" json in
      match v with
      | J.Null -> Ok (Dsl.Set_med None)
      | v -> (
          match J.to_int_opt v with
          | Some m -> Ok (Dsl.Set_med (Some m))
          | None -> err "med: expected an integer or null"))
  | "add-community" ->
      let* s = string_field "community" json in
      let* c = community_of_string s in
      Ok (Dsl.Add_community c)
  | "remove-community" ->
      let* s = string_field "community" json in
      let* c = community_of_string s in
      Ok (Dsl.Remove_community c)
  | "prepend" ->
      let* a = int_field "asn" json in
      let* n = int_field "count" json in
      Ok (Dsl.Prepend (Bgp.Asn.of_int a, n))
  | "overload-threshold" ->
      let* v = float_field "value" json in
      Ok (Dsl.Set_overload_threshold v)
  | "detour-budget" ->
      let* v = float_field "value" json in
      Ok (Dsl.Set_detour_budget v)
  | "max-overrides" ->
      let* n = int_field "value" json in
      Ok (Dsl.Set_max_overrides n)
  | "min-improvement-ms" ->
      let* v = float_field "value" json in
      Ok (Dsl.Set_min_improvement_ms v)
  | "perf-guard" ->
      let* v = float_field "value" json in
      Ok (Dsl.Set_perf_guard v)
  | "max-suggestions" ->
      let* n = int_field "value" json in
      Ok (Dsl.Set_max_suggestions n)
  | other -> err "unknown action %S" other

(* policies *)

let verdict_to_json (v : Dsl.verdict) =
  J.String (match v with Dsl.Accept -> "accept" | Dsl.Reject -> "reject")

let verdict_of_json = function
  | J.String "accept" -> Ok Dsl.Accept
  | J.String "reject" -> Ok Dsl.Reject
  | j -> err "expected \"accept\" or \"reject\", got %s" (J.to_string j)

(* flatten right-nested chains for readable files *)
let rec union_spine = function
  | Dsl.Union (p, q) -> p :: union_spine q
  | t -> [ t ]

let rec seq_spine = function Dsl.Seq (p, q) -> p :: seq_spine q | t -> [ t ]

let rec policy_to_json (t : Dsl.t) =
  match t with
  | Dsl.Rule r ->
      J.Obj
        [
          ("op", J.String "rule");
          ("name", J.String r.Dsl.rule_name);
          ("if", pred_to_json r.Dsl.rule_pred);
          ("then", J.List (List.map action_to_json r.Dsl.rule_actions));
          ("verdict", verdict_to_json r.Dsl.rule_verdict);
        ]
  | Dsl.Union _ as t ->
      J.Obj
        [ ("op", J.String "union"); ("of", J.List (List.map policy_to_json (union_spine t))) ]
  | Dsl.Seq _ as t ->
      J.Obj [ ("op", J.String "seq"); ("of", J.List (List.map policy_to_json (seq_spine t))) ]

let rec policy_of_json json =
  let* op = string_field "op" json in
  match op with
  | "rule" ->
      let* name = string_field "name" json in
      let* pj = field "if" json in
      let* pred = pred_of_json pj in
      let* actions_json = list_field "then" json in
      let* actions = map_result action_of_json actions_json in
      let* vj = field "verdict" json in
      let* verdict = verdict_of_json vj in
      Ok
        (Dsl.Rule
           {
             Dsl.rule_name = name;
             rule_pred = pred;
             rule_actions = actions;
             rule_verdict = verdict;
           })
  | "union" | "seq" -> (
      let* l = list_field "of" json in
      let* parts = map_result policy_of_json l in
      let join = if op = "union" then Dsl.( <+> ) else Dsl.( >> ) in
      match List.rev parts with
      | [] -> err "%s: empty \"of\" list" op
      | last :: rev_init -> Ok (List.fold_left (fun acc p -> join p acc) last rev_init))
  | other -> err "unknown policy op %S" other

(* programs *)

let to_json (p : Dsl.program) =
  J.Obj
    [
      ("name", J.String p.Dsl.program_name);
      ("default", verdict_to_json p.Dsl.program_default);
      ("policy", policy_to_json p.Dsl.program_policy);
    ]

let of_json json =
  let* name = string_field "name" json in
  let* vj = field "default" json in
  let* default = verdict_of_json vj in
  let* pj = field "policy" json in
  let* policy = policy_of_json pj in
  Ok { Dsl.program_name = name; program_default = default; program_policy = policy }

let to_string p = J.to_string (to_json p)

let of_string s =
  let* json = J.parse s in
  let* p = of_json json in
  let* () = Dsl.validate p.Dsl.program_policy in
  Ok p

let save path p =
  let oc = open_out path in
  output_string oc (to_string p);
  output_char oc '\n';
  close_out oc

let load path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      let contents = really_input_string ic (in_channel_length ic) in
      close_in ic;
      of_string contents
