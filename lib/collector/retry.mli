(** Bounded retry-with-backoff for collector sessions.

    When a feed session (BMP, sFlow) fails, the collector must not
    hot-loop reconnecting into a struggling router — it backs off
    exponentially, and after a bounded number of attempts it gives up and
    leaves recovery to an operator. The state machine is driven by the
    caller's clock (simulated seconds here), so it is fully deterministic
    and testable.

    States: [Healthy] → (failure) → [Backing_off] → (failure ×
    [max_attempts]) → [Gave_up]. [on_success] from any non-gave-up state
    returns to [Healthy] and counts a reconnect. *)

type config = {
  base_delay_s : int;   (** first retry delay *)
  max_delay_s : int;    (** backoff cap *)
  max_attempts : int;   (** consecutive failures before giving up *)
}

val default_config : config
(** 30 s base, 480 s cap, 8 attempts — a patient production profile. *)

type state =
  | Healthy
  | Backing_off of { attempt : int; retry_at_s : int }
  | Gave_up

type t

val create : ?config:config -> unit -> t
(** Raises [Invalid_argument] on non-positive base delay or attempts. *)

val state : t -> state
val healthy : t -> bool

val on_failure : t -> time_s:int -> unit
(** Record a session failure at [time_s]: schedules the next retry with
    exponential backoff (base·2ⁿ⁻¹, capped), or moves to [Gave_up] once
    [max_attempts] consecutive failures have accumulated. A no-op in
    [Gave_up] — the machine has stopped retrying, so the failure counter
    freezes at what it took to give up. *)

val should_retry : t -> time_s:int -> bool
(** True when backing off and the retry deadline has passed. *)

val on_success : t -> unit
(** Back to [Healthy]; counted as a reconnect if the session was not
    already healthy. *)

val attempt : t -> int
(** Current consecutive-failure count (0 when healthy). *)

val failures : t -> int
(** Lifetime failure count; frozen once the machine gives up. *)

val reconnects : t -> int
(** Lifetime successful recoveries. *)

val pp : Format.formatter -> t -> unit
