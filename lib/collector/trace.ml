module Bgp = Ef_bgp

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

let kind_to_token = function
  | Bgp.Peer.Transit -> "transit"
  | Bgp.Peer.Private_peer -> "private"
  | Bgp.Peer.Public_peer -> "public"
  | Bgp.Peer.Route_server -> "route-server"

let kind_of_token = function
  | "transit" -> Some Bgp.Peer.Transit
  | "private" -> Some Bgp.Peer.Private_peer
  | "public" -> Some Bgp.Peer.Public_peer
  | "route-server" -> Some Bgp.Peer.Route_server
  | _ -> None

let origin_to_token = function
  | Bgp.Attrs.Igp -> "IGP"
  | Bgp.Attrs.Egp -> "EGP"
  | Bgp.Attrs.Incomplete -> "INCOMPLETE"

let origin_of_token = function
  | "IGP" -> Some Bgp.Attrs.Igp
  | "EGP" -> Some Bgp.Attrs.Egp
  | "INCOMPLETE" -> Some Bgp.Attrs.Incomplete
  | _ -> None

let opt_int_to_token = function
  | None -> "-"
  | Some v -> string_of_int v

let record_route buf (r : Bgp.Route.t) =
  let a = Bgp.Route.attrs r in
  let path =
    String.concat ","
      (List.map
         (fun asn -> string_of_int (Bgp.Asn.to_int asn))
         (Bgp.As_path.to_list a.Bgp.Attrs.as_path))
  in
  let comms =
    match a.Bgp.Attrs.communities with
    | [] -> "-"
    | cs -> String.concat "," (List.map Bgp.Community.to_string cs)
  in
  Buffer.add_string buf
    (Printf.sprintf "ROUTE %s peer=%d origin=%s path=%s nh=%s med=%s lp=%s comms=%s\n"
       (Bgp.Prefix.to_string (Bgp.Route.prefix r))
       (Bgp.Route.peer_id r)
       (origin_to_token a.Bgp.Attrs.origin)
       (if path = "" then "-" else path)
       (Bgp.Ipv4.to_string a.Bgp.Attrs.next_hop)
       (opt_int_to_token a.Bgp.Attrs.med)
       (opt_int_to_token a.Bgp.Attrs.local_pref)
       comms)

let record snapshot =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "SNAPSHOT time=%d\n" (Snapshot.time_s snapshot));
  List.iter
    (fun iface ->
      Buffer.add_string buf
        (Printf.sprintf "IFACE id=%d name=%s capacity=%.0f shared=%b\n"
           (Ef_netsim.Iface.id iface)
           (Ef_netsim.Iface.name iface)
           (Ef_netsim.Iface.capacity_bps iface)
           (Ef_netsim.Iface.shared iface)))
    (Snapshot.ifaces snapshot);
  (* peers: collected from the routes of rated prefixes *)
  let peers = Hashtbl.create 32 in
  List.iter
    (fun (prefix, _) ->
      List.iter
        (fun r ->
          let peer = Bgp.Route.peer r in
          if not (Hashtbl.mem peers (Bgp.Peer.id peer)) then
            Hashtbl.replace peers (Bgp.Peer.id peer) peer)
        (Snapshot.routes snapshot prefix))
    (Snapshot.prefix_rates snapshot);
  Hashtbl.fold (fun id peer acc -> (id, peer) :: acc) peers []
  |> List.sort compare
  |> List.iter (fun (id, peer) ->
         let iface =
           match Snapshot.iface_of_peer snapshot ~peer_id:id with
           | Some i -> Ef_netsim.Iface.id i
           | None -> -1
         in
         Buffer.add_string buf
           (Printf.sprintf
              "PEER id=%d name=%s asn=%d kind=%s router-id=%s addr=%s iface=%d\n"
              id peer.Bgp.Peer.name
              (Bgp.Asn.to_int (Bgp.Peer.asn peer))
              (kind_to_token (Bgp.Peer.kind peer))
              (Bgp.Ipv4.to_string peer.Bgp.Peer.router_id)
              (Bgp.Ipv4.to_string peer.Bgp.Peer.session_addr)
              iface));
  List.iter
    (fun (prefix, rate) ->
      Buffer.add_string buf
        (Printf.sprintf "RATE %s %.3f\n" (Bgp.Prefix.to_string prefix) rate);
      List.iter (record_route buf) (Snapshot.routes snapshot prefix))
    (Snapshot.prefix_rates snapshot);
  Buffer.add_string buf "END\n";
  Buffer.contents buf

let record_many snapshots = String.concat "" (List.map record snapshots)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let failf fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

(* "key=value" fields on a line *)
let fields_of tokens =
  List.filter_map
    (fun tok ->
      match String.index_opt tok '=' with
      | None -> None
      | Some i ->
          Some (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1)))
    tokens

let field fields key ~line =
  match List.assoc_opt key fields with
  | Some v -> v
  | None -> failf "line %d: missing field %s" line key

let int_field fields key ~line =
  match int_of_string_opt (field fields key ~line) with
  | Some v -> v
  | None -> failf "line %d: field %s is not an integer" line key

type builder = {
  mutable b_time : int;
  mutable b_ifaces : Ef_netsim.Iface.t list; (* reversed *)
  b_peers : (int, Bgp.Peer.t) Hashtbl.t;
  b_peer_iface : (int, int) Hashtbl.t;
  mutable b_rates : (Bgp.Prefix.t * float) list; (* reversed *)
  b_routes : (string, Bgp.Route.t list) Hashtbl.t; (* prefix string -> reversed *)
}

let new_builder time =
  {
    b_time = time;
    b_ifaces = [];
    b_peers = Hashtbl.create 32;
    b_peer_iface = Hashtbl.create 32;
    b_rates = [];
    b_routes = Hashtbl.create 256;
  }

let finish b =
  let ifaces = List.rev b.b_ifaces in
  let routes_tbl = Hashtbl.create (Hashtbl.length b.b_routes) in
  Hashtbl.iter
    (fun k v -> Hashtbl.replace routes_tbl k (List.rev v))
    b.b_routes;
  Snapshot.assemble
    ~routes:(fun p ->
      Option.value (Hashtbl.find_opt routes_tbl (Bgp.Prefix.to_string p)) ~default:[])
    ~iface_of_peer:(fun peer_id ->
      match Hashtbl.find_opt b.b_peer_iface peer_id with
      | None -> None
      | Some iface_id ->
          List.find_opt (fun i -> Ef_netsim.Iface.id i = iface_id) ifaces)
    ~ifaces
    ~prefix_rates:(List.rev b.b_rates)
    ~time_s:b.b_time ()

let parse_ip ~line s =
  match Bgp.Ipv4.of_string_opt s with
  | Some ip -> ip
  | None -> failf "line %d: bad address %S" line s

let parse_prefix ~line s =
  match Bgp.Prefix.of_string_opt s with
  | Some p -> p
  | None -> failf "line %d: bad prefix %S" line s

let parse_opt_int ~line key s =
  if s = "-" then None
  else
    match int_of_string_opt s with
    | Some v -> Some v
    | None -> failf "line %d: bad %s %S" line key s

let parse_route b ~line tokens =
  match tokens with
  | prefix_s :: rest ->
      let prefix = parse_prefix ~line prefix_s in
      let fields = fields_of rest in
      let peer_id = int_field fields "peer" ~line in
      let peer =
        match Hashtbl.find_opt b.b_peers peer_id with
        | Some p -> p
        | None -> failf "line %d: ROUTE references unknown peer %d" line peer_id
      in
      let origin =
        match origin_of_token (field fields "origin" ~line) with
        | Some o -> o
        | None -> failf "line %d: bad origin" line
      in
      let path =
        match field fields "path" ~line with
        | "-" -> []
        | s ->
            List.map
              (fun t ->
                match int_of_string_opt t with
                | Some v -> Bgp.Asn.of_int v
                | None -> failf "line %d: bad path element %S" line t)
              (String.split_on_char ',' s)
      in
      let communities =
        match field fields "comms" ~line with
        | "-" -> []
        | s ->
            List.map
              (fun t ->
                try Bgp.Community.of_string t
                with Invalid_argument _ -> failf "line %d: bad community %S" line t)
              (String.split_on_char ',' s)
      in
      let attrs =
        Bgp.Attrs.make ~origin
          ~med:(parse_opt_int ~line "med" (field fields "med" ~line))
          ~local_pref:(parse_opt_int ~line "lp" (field fields "lp" ~line))
          ~communities
          ~as_path:(Bgp.As_path.of_list path)
          ~next_hop:(parse_ip ~line (field fields "nh" ~line))
          ()
      in
      let route = Bgp.Route.make ~prefix ~attrs ~peer in
      let key = Bgp.Prefix.to_string prefix in
      Hashtbl.replace b.b_routes key
        (route :: Option.value (Hashtbl.find_opt b.b_routes key) ~default:[])
  | [] -> failf "line %d: empty ROUTE" line

let parse_lines lines =
  let snapshots = ref [] in
  let current = ref None in
  List.iteri
    (fun i raw ->
      let line = i + 1 in
      let trimmed = String.trim raw in
      if trimmed = "" || trimmed.[0] = '#' then ()
      else
        match String.split_on_char ' ' trimmed with
        | "SNAPSHOT" :: rest ->
            if !current <> None then failf "line %d: nested SNAPSHOT" line;
            let fields = fields_of rest in
            current := Some (new_builder (int_field fields "time" ~line))
        | "END" :: _ -> (
            match !current with
            | None -> failf "line %d: END without SNAPSHOT" line
            | Some b ->
                snapshots := finish b :: !snapshots;
                current := None)
        | keyword :: rest -> (
            let b =
              match !current with
              | Some b -> b
              | None -> failf "line %d: %s outside SNAPSHOT" line keyword
            in
            match keyword with
            | "IFACE" ->
                let fields = fields_of rest in
                let iface =
                  Ef_netsim.Iface.make
                    ~id:(int_field fields "id" ~line)
                    ~name:(field fields "name" ~line)
                    ~capacity_bps:(float_of_string (field fields "capacity" ~line))
                    ~shared:(bool_of_string (field fields "shared" ~line))
                in
                b.b_ifaces <- iface :: b.b_ifaces
            | "PEER" ->
                let fields = fields_of rest in
                let id = int_field fields "id" ~line in
                let kind =
                  match kind_of_token (field fields "kind" ~line) with
                  | Some k -> k
                  | None -> failf "line %d: bad peer kind" line
                in
                let peer =
                  Bgp.Peer.make ~id
                    ~name:(field fields "name" ~line)
                    ~asn:(Bgp.Asn.of_int (int_field fields "asn" ~line))
                    ~kind
                    ~router_id:(parse_ip ~line (field fields "router-id" ~line))
                    ~session_addr:(parse_ip ~line (field fields "addr" ~line))
                in
                Hashtbl.replace b.b_peers id peer;
                Hashtbl.replace b.b_peer_iface id (int_field fields "iface" ~line)
            | "RATE" -> (
                match rest with
                | [ prefix_s; rate_s ] -> (
                    let prefix = parse_prefix ~line prefix_s in
                    match float_of_string_opt rate_s with
                    | Some rate -> b.b_rates <- (prefix, rate) :: b.b_rates
                    | None -> failf "line %d: bad rate %S" line rate_s)
                | _ -> failf "line %d: RATE wants <prefix> <bps>" line)
            | "ROUTE" -> parse_route b ~line rest
            | kw -> failf "line %d: unknown keyword %S" line kw)
        | [] -> ())
    lines;
  if !current <> None then failf "unterminated SNAPSHOT block";
  List.rev !snapshots

let parse_many text =
  match parse_lines (String.split_on_char '\n' text) with
  | snapshots -> Ok snapshots
  | exception Bad msg -> Error msg
  | exception (Failure _ | Invalid_argument _) -> Error "malformed trace"

let parse text =
  match parse_many text with
  | Ok [ s ] -> Ok s
  | Ok l -> Error (Printf.sprintf "expected one snapshot, found %d" (List.length l))
  | Error _ as e -> e

let save path snapshots =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (record_many snapshots))

let load path =
  match open_in path with
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> parse_many (In_channel.input_all ic))
  | exception Sys_error msg -> Error msg
