(** The controller-side BMP consumer.

    Reconstructs every peer's Adj-RIB-In from a BMP byte stream, applying
    the same import policy the peering router uses, so the controller's
    view of candidate routes matches the router's Loc-RIB. Fed either
    from raw bytes (the wire path, exercised in tests) or from decoded
    messages (the fast path the simulator uses). *)

type t

val create :
  ?decision:Ef_bgp.Decision.config ->
  peer_directory:(int -> Ef_bgp.Peer.t option) ->
  policy:Ef_bgp.Policy.t ->
  unit ->
  t
(** [peer_directory] resolves the dense peer ids carried in BMP headers
    to full peer records (the controller knows the PoP's configuration). *)

val feed_msg : t -> Bmp.msg -> unit
(** Peer Up registers a neighbor, Route Monitoring applies the UPDATE,
    Peer Down flushes the neighbor's routes. Messages for unknown peer
    ids are counted and otherwise ignored. *)

val feed_bytes : t -> string -> (unit, Bmp.error) result
(** Decode a buffer of concatenated BMP messages and feed each one. *)

val rib : t -> Ef_bgp.Rib.t
(** The reconstructed view: candidates/ranked per prefix, as
    {!Ef_bgp.Rib}. *)

val peers_seen : t -> int list
val msgs_processed : t -> int
val msgs_ignored : t -> int

val last_seen_s : t -> int option
(** Latest per-peer header timestamp fed so far — the freshness mark a
    staleness guard compares against; [None] before any message. *)

val stale : t -> now_s:int -> max_age_s:int -> bool
(** True when no message has arrived within [max_age_s] of [now_s] — the
    reconstructed Adj-RIB-In may no longer reflect the router (a stalled
    or reset session) and should not drive new overrides. *)

val session : t -> Retry.t
(** The retry-with-backoff state machine for this monitor's transport
    session; drivers feed it failures/successes as the connection flaps. *)

val mirror_of_pop : Ef_netsim.Pop.t -> time_s:int -> Bmp.msg list
(** Serialise a PoP's current per-peer routes as the BMP message stream a
    router would emit: one Peer Up plus one Route Monitoring per route.
    Feeding the result into a fresh monitor reproduces the PoP's RIB —
    the property the tests check. *)
