module Bgp = Ef_bgp

type t = {
  time_s : int;
  prefix_rates : (Bgp.Prefix.t * float) list;
  rate_trie : float Bgp.Ptrie.t;
  routes : Bgp.Prefix.t -> Bgp.Route.t list;
  routes_memo : (Bgp.Prefix.t, Bgp.Route.t list) Hashtbl.t;
  ifaces : Ef_netsim.Iface.t list;
  iface_index : Ef_netsim.Iface.t option array; (* indexed by iface id *)
  iface_of_peer : int -> Ef_netsim.Iface.t option;
  total_rate_bps : float;
  prefix_count : int;
}

let index_ifaces ifaces =
  let max_id =
    List.fold_left (fun acc i -> max acc (Ef_netsim.Iface.id i)) (-1) ifaces
  in
  let index = Array.make (max_id + 1) None in
  List.iter (fun i -> index.(Ef_netsim.Iface.id i) <- Some i) ifaces;
  index

let assemble ?obs ~routes ~iface_of_peer ~ifaces ~prefix_rates ~time_s () =
  let obs = match obs with Some r -> r | None -> Ef_obs.Registry.default () in
  Ef_obs.Span.time ~registry:obs "collector.assemble" @@ fun () ->
  let prefix_rates =
    prefix_rates
    |> List.filter (fun (_, r) -> r > 0.0)
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  let rate_trie, total_rate_bps, prefix_count =
    List.fold_left
      (fun (trie, total, n) (p, r) -> (Bgp.Ptrie.add p r trie, total +. r, n + 1))
      (Bgp.Ptrie.empty, 0.0, 0) prefix_rates
  in
  Ef_obs.Counter.inc (Ef_obs.Registry.counter obs "collector.snapshots");
  Ef_obs.Gauge.set
    (Ef_obs.Registry.gauge obs "collector.snapshot.prefixes")
    (float_of_int prefix_count);
  {
    time_s;
    prefix_rates;
    rate_trie;
    routes;
    routes_memo = Hashtbl.create 256;
    ifaces;
    iface_index = index_ifaces ifaces;
    iface_of_peer;
    total_rate_bps;
    prefix_count;
  }

let of_pop ?obs ?ifaces pop ~prefix_rates ~time_s =
  let rib = Ef_netsim.Pop.rib pop in
  let pop_ifaces =
    match ifaces with Some l -> l | None -> Ef_netsim.Pop.interfaces pop
  in
  let index = index_ifaces pop_ifaces in
  let iface_by_id id =
    if id < 0 || id >= Array.length index then None else index.(id)
  in
  assemble ?obs
    ~routes:(fun p -> Bgp.Rib.ranked rib p)
    ~iface_of_peer:(fun peer_id ->
      match Ef_netsim.Pop.peer pop peer_id with
      | None -> None
      | Some _ ->
          iface_by_id
            (Ef_netsim.Iface.id (Ef_netsim.Pop.iface_of_peer pop ~peer_id)))
    ~ifaces:pop_ifaces ~prefix_rates ~time_s ()

let time_s t = t.time_s
let prefix_rates t = t.prefix_rates

let rate_of t prefix =
  Option.value (Bgp.Ptrie.find prefix t.rate_trie) ~default:0.0

(* Candidate sets are memoized per snapshot: the allocator asks for the
   same prefix's routes on every relief attempt (and the guard again
   after that), and re-ranking the Loc-RIB each time dominated the cycle.
   A snapshot is one coherent view, so first answer wins — this also
   pins the view against later RIB churn when [routes] closes over a
   live RIB. *)
let routes t prefix =
  match Hashtbl.find_opt t.routes_memo prefix with
  | Some rs -> rs
  | None ->
      let rs = t.routes prefix in
      Hashtbl.add t.routes_memo prefix rs;
      rs

let preferred_route t prefix =
  match routes t prefix with [] -> None | r :: _ -> Some r

let ifaces t = t.ifaces

let iface_by_id t id =
  if id < 0 || id >= Array.length t.iface_index then None else t.iface_index.(id)

let max_iface_id t = Array.length t.iface_index - 1
let iface_of_peer t ~peer_id = t.iface_of_peer peer_id
let iface_of_route t route = t.iface_of_peer (Bgp.Route.peer_id route)
let total_rate_bps t = t.total_rate_bps
let prefix_count t = t.prefix_count
