module Bgp = Ef_bgp

(* Rated prefixes in the canonical consideration order: rate descending,
   prefix ascending. A total order (no ties), so every consumer that
   iterates rates — projection, allocator, trace — sees one byte-stable
   sequence however the snapshot was built (fresh assembly or a chain of
   patches). *)
module RSet = Set.Make (struct
  type t = Bgp.Prefix.t * float

  let compare (pa, ra) (pb, rb) =
    let c = Float.compare rb ra in
    if c <> 0 then c else Bgp.Prefix.compare pa pb
end)

type change = {
  ch_prefix : Bgp.Prefix.t;
  ch_old_rate : float option;
  ch_new_rate : float option;
  ch_routes : bool;
}

type iface_change = {
  ic_id : int;
  ic_old_capacity : float option;
  ic_new_capacity : float option;
}

type diff = {
  changes : change list;
  iface_changes : iface_change list;
  linked : bool;
}

type t = {
  time_s : int;
  prefix_rates : (Bgp.Prefix.t * float) list Lazy.t;
  rate_set : RSet.t;
  rate_trie : float Bgp.Ptrie.t;
  routes : Bgp.Prefix.t -> Bgp.Route.t list;
  routes_memo : (Bgp.Prefix.t, Bgp.Route.t list) Hashtbl.t;
  ifaces : Ef_netsim.Iface.t list;
  iface_index : Ef_netsim.Iface.t option array; (* indexed by iface id *)
  iface_id_of_peer : int -> int option;
  total_rate_bps : float;
  prefix_count : int;
  stamp : int; (* unique per snapshot; parent links are by stamp *)
  parent : (int * change list * iface_change list) option;
      (* parent stamp + recorded dirty set + recorded iface delta *)
}

let stamps = Atomic.make 0
let next_stamp () = Atomic.fetch_and_add stamps 1

let index_ifaces ifaces =
  let max_id =
    List.fold_left (fun acc i -> max acc (Ef_netsim.Iface.id i)) (-1) ifaces
  in
  let index = Array.make (max_id + 1) None in
  List.iter (fun i -> index.(Ef_netsim.Iface.id i) <- Some i) ifaces;
  index

let compare_rated (pa, ra) (pb, rb) =
  let c = Float.compare rb ra in
  if c <> 0 then c else Bgp.Prefix.compare pa pb

(* Interface-set delta between two indexes, ascending id order (the one
   deterministic order both sides of a diff agree on). Identity is
   (id, capacity): a re-made interface with the same id and capacity is
   not a change — placement resolves by id and thresholds re-derive from
   capacity every run, so nothing downstream can observe it. *)
let iface_delta prev_index next_index =
  let cap a i =
    if i >= Array.length a then None
    else Option.map Ef_netsim.Iface.capacity_bps a.(i)
  in
  let width = max (Array.length prev_index) (Array.length next_index) in
  let acc = ref [] in
  for id = width - 1 downto 0 do
    let o = cap prev_index id and n = cap next_index id in
    if o <> n then
      acc := { ic_id = id; ic_old_capacity = o; ic_new_capacity = n } :: !acc
  done;
  !acc

(* --- parallel table build ---------------------------------------------

   The cold 1M-prefix assemble is dominated by the sort and the
   set/trie folds, all of which shard cleanly: chunks of the input are
   filtered + sorted per domain and merged pairwise (stable, left-first
   on ties — but compare_rated ties are structurally equal pairs, so tie
   order cannot be observed); then contiguous ranges of the *sorted*
   order build RSet / Ptrie shards that union cheaply, because a
   contiguous range is a separated interval in the set's comparator and
   the trie is canonical (same bindings ⇒ same structure, whatever the
   insertion order). Duplicated prefixes keep their serial last-add-wins
   semantics: chunk tries are unioned left to right with the right side
   winning, which is the same winner as the serial fold over the sorted
   list. The float total is re-folded serially over the merged array —
   the exact addition sequence the serial path performs. *)

let par_threshold = 8192

let merge_rated a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 then b
  else if lb = 0 then a
  else begin
    let out = Array.make (la + lb) a.(0) in
    let i = ref 0 and j = ref 0 in
    for k = 0 to la + lb - 1 do
      if !i < la && (!j >= lb || compare_rated a.(!i) b.(!j) <= 0) then begin
        out.(k) <- a.(!i);
        incr i
      end
      else begin
        out.(k) <- b.(!j);
        incr j
      end
    done;
    out
  end

let rec merge_runs = function
  | [] -> [||]
  | [ a ] -> a
  | runs ->
      let rec pair = function
        | a :: b :: rest -> merge_rated a b :: pair rest
        | tail -> tail
      in
      merge_runs (pair runs)

let chunk_ranges = Ef_util.Pool.chunk_ranges

let assemble ?obs ?pool ~routes ~iface_of_peer ~ifaces ~prefix_rates ~time_s ()
    =
  let obs = match obs with Some r -> r | None -> Ef_obs.Registry.default () in
  Ef_obs.Span.time ~registry:obs "collector.assemble" @@ fun () ->
  let pool =
    match pool with
    | Some p
      when Ef_util.Pool.jobs p > 1
           && (not (Ef_util.Pool.in_task ()))
           && List.length prefix_rates >= par_threshold ->
        Some p
    | _ -> None
  in
  let prefix_rates, rate_set, rate_trie, total_rate_bps, prefix_count =
    match pool with
    | None ->
        let prefix_rates =
          prefix_rates
          |> List.filter (fun (_, r) -> r > 0.0)
          |> List.sort compare_rated
        in
        let rate_set =
          List.fold_left (fun s pr -> RSet.add pr s) RSet.empty prefix_rates
        in
        let rate_trie, total, count =
          List.fold_left
            (fun (trie, total, n) (p, r) ->
              (Bgp.Ptrie.add p r trie, total +. r, n + 1))
            (Bgp.Ptrie.empty, 0.0, 0) prefix_rates
        in
        (prefix_rates, rate_set, rate_trie, total, count)
    | Some pool ->
        let raw = Array.of_list prefix_rates in
        let n = Array.length raw in
        let k = Ef_util.Pool.jobs pool in
        let runs =
          Ef_util.Pool.map pool
            (fun (lo, hi) ->
              let kept = ref [] in
              for i = hi - 1 downto lo do
                let (_, r) as pr = raw.(i) in
                if r > 0.0 then kept := pr :: !kept
              done;
              let a = Array.of_list !kept in
              Array.sort compare_rated a;
              a)
            (chunk_ranges ~n ~k)
        in
        let sorted = merge_runs runs in
        let m = Array.length sorted in
        let parts =
          Ef_util.Pool.map pool
            (fun (lo, hi) ->
              let set = ref RSet.empty and trie = ref Bgp.Ptrie.empty in
              for i = lo to hi - 1 do
                let (p, r) as pr = sorted.(i) in
                set := RSet.add pr !set;
                trie := Bgp.Ptrie.add p r !trie
              done;
              (!set, !trie))
            (chunk_ranges ~n:m ~k)
        in
        let rate_set =
          List.fold_left (fun acc (s, _) -> RSet.union acc s) RSet.empty parts
        in
        let rate_trie =
          List.fold_left
            (fun acc (_, t) -> Bgp.Ptrie.union (fun _ b -> b) acc t)
            Bgp.Ptrie.empty parts
        in
        let total = ref 0.0 in
        Array.iter (fun (_, r) -> total := !total +. r) sorted;
        (Array.to_list sorted, rate_set, rate_trie, !total, m)
  in
  Ef_obs.Counter.inc (Ef_obs.Registry.counter obs "collector.snapshots");
  Ef_obs.Gauge.set
    (Ef_obs.Registry.gauge obs "collector.snapshot.prefixes")
    (float_of_int prefix_count);
  {
    time_s;
    prefix_rates = Lazy.from_val prefix_rates;
    rate_set;
    rate_trie;
    routes;
    routes_memo = Hashtbl.create 256;
    ifaces;
    iface_index = index_ifaces ifaces;
    iface_id_of_peer =
      (fun peer_id -> Option.map Ef_netsim.Iface.id (iface_of_peer peer_id));
    total_rate_bps;
    prefix_count;
    stamp = next_stamp ();
    parent = None;
  }

let of_pop ?obs ?ifaces pop ~prefix_rates ~time_s =
  let rib = Ef_netsim.Pop.rib pop in
  let pop_ifaces =
    match ifaces with Some l -> l | None -> Ef_netsim.Pop.interfaces pop
  in
  let index = index_ifaces pop_ifaces in
  let iface_by_id id =
    if id < 0 || id >= Array.length index then None else index.(id)
  in
  assemble ?obs
    ~routes:(fun p -> Bgp.Rib.ranked rib p)
    ~iface_of_peer:(fun peer_id ->
      match Ef_netsim.Pop.peer pop peer_id with
      | None -> None
      | Some _ ->
          iface_by_id
            (Ef_netsim.Iface.id (Ef_netsim.Pop.iface_of_peer pop ~peer_id)))
    ~ifaces:pop_ifaces ~prefix_rates ~time_s ()

(* Delta construction: [prev] with some rates replaced and some prefixes'
   candidate routes invalidated. All unchanged structure — the rate trie,
   the rated set, every clean prefix's entry — is shared with [prev]
   (persistent structures), so a 1%-churn patch over a million prefixes
   allocates proportionally to the churn, not the table.

   The one O(n) pass left is the total: it is re-folded over the rated
   set in canonical order, which is the exact float-addition sequence a
   fresh [assemble] of the same content performs — so a patched snapshot
   is byte-identical to an assembled one, not merely close. *)
let patch ?obs ~prev ?routes ?ifaces ?(routes_changed = []) ~rate_updates
    ~time_s () =
  let obs = match obs with Some r -> r | None -> Ef_obs.Registry.default () in
  Ef_obs.Span.time ~registry:obs "collector.patch" @@ fun () ->
  let rate_set = ref prev.rate_set in
  let rate_trie = ref prev.rate_trie in
  let count = ref prev.prefix_count in
  let changes = ref [] in
  let changed = Hashtbl.create (List.length rate_updates + 8) in
  List.iter
    (fun (p, rate) ->
      let old = Bgp.Ptrie.find p !rate_trie in
      let fresh = if rate > 0.0 then Some rate else None in
      if old <> fresh && not (Hashtbl.mem changed p) then begin
        (match old with
        | Some r ->
            rate_set := RSet.remove (p, r) !rate_set;
            decr count
        | None -> ());
        (match fresh with
        | Some r ->
            rate_set := RSet.add (p, r) !rate_set;
            rate_trie := Bgp.Ptrie.add p r !rate_trie;
            incr count
        | None -> rate_trie := Bgp.Ptrie.remove p !rate_trie);
        Hashtbl.replace changed p ();
        changes :=
          { ch_prefix = p; ch_old_rate = old; ch_new_rate = fresh;
            ch_routes = false }
          :: !changes
      end)
    rate_updates;
  let changes =
    List.fold_left
      (fun acc p ->
        if Hashtbl.mem changed p then
          (* already rate-dirty: flip the routes flag on its record *)
          List.map
            (fun c ->
              if Bgp.Prefix.equal c.ch_prefix p then { c with ch_routes = true }
              else c)
            acc
        else begin
          Hashtbl.replace changed p ();
          let r = Bgp.Ptrie.find p !rate_trie in
          { ch_prefix = p; ch_old_rate = r; ch_new_rate = r; ch_routes = true }
          :: acc
        end)
      (List.rev !changes) routes_changed
  in
  let rate_set = !rate_set in
  let total =
    let acc = [| 0.0 |] in
    RSet.iter (fun (_, r) -> acc.(0) <- acc.(0) +. r) rate_set;
    acc.(0)
  in
  (* the iface delta is recorded content-based, not identity-based: a
     caller re-passing an equal interface list records no change, so a
     derate-aware caller can pass [ifaces] every cycle without cost *)
  let ifaces, iface_index, iface_changes =
    match ifaces with
    | None -> (prev.ifaces, prev.iface_index, [])
    | Some l ->
        let index = index_ifaces l in
        (l, index, iface_delta prev.iface_index index)
  in
  Ef_obs.Counter.inc (Ef_obs.Registry.counter obs "collector.patches");
  {
    time_s;
    prefix_rates = lazy (RSet.elements rate_set);
    rate_set;
    rate_trie = !rate_trie;
    routes = Option.value routes ~default:prev.routes;
    routes_memo = Hashtbl.create 256;
    ifaces;
    iface_index;
    iface_id_of_peer = prev.iface_id_of_peer;
    total_rate_bps = total;
    prefix_count = !count;
    stamp = next_stamp ();
    parent = Some (prev.stamp, changes, iface_changes);
  }

let linked prev next =
  prev == next
  ||
  match next.parent with
  | Some (stamp, _, _) -> stamp = prev.stamp
  | None -> false

let diff prev next =
  if prev == next then { changes = []; iface_changes = []; linked = true }
  else
    match next.parent with
    | Some (stamp, changes, iface_changes) when stamp = prev.stamp ->
        { changes; iface_changes; linked = true }
    | _ ->
        (* Unlinked pair: recover the exact rate difference by merge-walking
           the two tries (physical sharing prunes common structure). Route
           changes are unknowable from the outside, so every changed prefix
           is conservatively flagged and [linked] is false — consumers that
           need route stability for *clean* prefixes must fall back to a
           full recompute. The iface delta, by contrast, is exact either
           way: both indexes are at hand. *)
        let changes =
          Bgp.Ptrie.fold2
            ~eq:(fun (a : float) b -> a = b)
            (fun p o n acc ->
              { ch_prefix = p; ch_old_rate = o; ch_new_rate = n;
                ch_routes = true }
              :: acc)
            prev.rate_trie next.rate_trie []
        in
        {
          changes;
          iface_changes = iface_delta prev.iface_index next.iface_index;
          linked = false;
        }

let time_s t = t.time_s
let prefix_rates t = Lazy.force t.prefix_rates

let iter_rates t f = RSet.iter (fun (p, r) -> f p r) t.rate_set

let rate_of t prefix =
  Option.value (Bgp.Ptrie.find prefix t.rate_trie) ~default:0.0

(* Candidate sets are memoized per snapshot: the allocator asks for the
   same prefix's routes on every relief attempt (and the guard again
   after that), and re-ranking the Loc-RIB each time dominated the cycle.
   A snapshot is one coherent view, so first answer wins — this also
   pins the view against later RIB churn when [routes] closes over a
   live RIB. *)
let routes t prefix =
  match Hashtbl.find_opt t.routes_memo prefix with
  | Some rs -> rs
  | None ->
      let rs = t.routes prefix in
      Hashtbl.add t.routes_memo prefix rs;
      rs

(* The memo Hashtbl is not safe for concurrent mutation, so sharded
   consumers rank through the raw closure on the worker domains and the
   coordinating domain primes the memo with their answers afterwards —
   same cache content as if [routes] had been called serially. *)
let routes_uncached t prefix =
  match Hashtbl.find_opt t.routes_memo prefix with
  | Some rs -> rs
  | None -> t.routes prefix

let prime_route t prefix rs =
  if not (Hashtbl.mem t.routes_memo prefix) then
    Hashtbl.add t.routes_memo prefix rs

let preferred_route t prefix =
  match routes t prefix with [] -> None | r :: _ -> Some r

let ifaces t = t.ifaces

let iface_by_id t id =
  if id < 0 || id >= Array.length t.iface_index then None else t.iface_index.(id)

let max_iface_id t = Array.length t.iface_index - 1

let iface_of_peer t ~peer_id =
  match t.iface_id_of_peer peer_id with
  | None -> None
  | Some id -> iface_by_id t id

let iface_of_route t route = iface_of_peer t ~peer_id:(Bgp.Route.peer_id route)
let total_rate_bps t = t.total_rate_bps
let prefix_count t = t.prefix_count
