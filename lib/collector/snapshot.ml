module Bgp = Ef_bgp

type t = {
  time_s : int;
  prefix_rates : (Bgp.Prefix.t * float) list;
  rate_trie : float Bgp.Ptrie.t;
  routes : Bgp.Prefix.t -> Bgp.Route.t list;
  ifaces : Ef_netsim.Iface.t list;
  iface_of_peer : int -> Ef_netsim.Iface.t option;
}

let assemble ?obs ~routes ~iface_of_peer ~ifaces ~prefix_rates ~time_s () =
  let obs = match obs with Some r -> r | None -> Ef_obs.Registry.default () in
  Ef_obs.Span.time ~registry:obs "collector.assemble" @@ fun () ->
  let prefix_rates =
    prefix_rates
    |> List.filter (fun (_, r) -> r > 0.0)
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  let rate_trie =
    List.fold_left
      (fun trie (p, r) -> Bgp.Ptrie.add p r trie)
      Bgp.Ptrie.empty prefix_rates
  in
  Ef_obs.Counter.inc (Ef_obs.Registry.counter obs "collector.snapshots");
  Ef_obs.Gauge.set
    (Ef_obs.Registry.gauge obs "collector.snapshot.prefixes")
    (float_of_int (List.length prefix_rates));
  { time_s; prefix_rates; rate_trie; routes; ifaces; iface_of_peer }

let of_pop ?obs ?ifaces pop ~prefix_rates ~time_s =
  let rib = Ef_netsim.Pop.rib pop in
  let pop_ifaces =
    match ifaces with Some l -> l | None -> Ef_netsim.Pop.interfaces pop
  in
  let iface_by_id id = List.find_opt (fun i -> Ef_netsim.Iface.id i = id) pop_ifaces in
  assemble ?obs
    ~routes:(fun p -> Bgp.Rib.ranked rib p)
    ~iface_of_peer:(fun peer_id ->
      match Ef_netsim.Pop.peer pop peer_id with
      | None -> None
      | Some _ ->
          iface_by_id
            (Ef_netsim.Iface.id (Ef_netsim.Pop.iface_of_peer pop ~peer_id)))
    ~ifaces:pop_ifaces ~prefix_rates ~time_s ()

let time_s t = t.time_s
let prefix_rates t = t.prefix_rates

let rate_of t prefix =
  Option.value (Bgp.Ptrie.find prefix t.rate_trie) ~default:0.0

let routes t prefix = t.routes prefix

let preferred_route t prefix =
  match t.routes prefix with
  | [] -> None
  | r :: _ -> Some r

let ifaces t = t.ifaces
let iface_of_peer t ~peer_id = t.iface_of_peer peer_id

let iface_of_route t route = t.iface_of_peer (Bgp.Route.peer_id route)

let total_rate_bps t =
  List.fold_left (fun acc (_, r) -> acc +. r) 0.0 t.prefix_rates

let prefix_count t = List.length t.prefix_rates
