(** The controller's input: one coherent view per cycle.

    Every allocator run starts from a snapshot combining the three feeds —
    candidate routes per prefix (BMP), estimated per-prefix rates (sFlow),
    and interface capacities (SNMP/config). The allocator never touches
    live router state; it recomputes from the snapshot alone, which is
    what makes the controller stateless and restartable (§5 of the
    paper). *)

type t

val assemble :
  ?obs:Ef_obs.Registry.t ->
  routes:(Ef_bgp.Prefix.t -> Ef_bgp.Route.t list) ->
  iface_of_peer:(int -> Ef_netsim.Iface.t option) ->
  ifaces:Ef_netsim.Iface.t list ->
  prefix_rates:(Ef_bgp.Prefix.t * float) list ->
  time_s:int ->
  unit ->
  t
(** [routes] must return candidates in decision-ranked order (head =
    BGP-preferred). Rates at or below zero are dropped.

    Assembly is instrumented: the [collector.assemble] span and the
    [collector.snapshots] counter (plus a [collector.snapshot.prefixes]
    gauge) land in [obs], defaulting to {!Ef_obs.Registry.default}. *)

val of_pop :
  ?obs:Ef_obs.Registry.t ->
  ?ifaces:Ef_netsim.Iface.t list ->
  Ef_netsim.Pop.t ->
  prefix_rates:(Ef_bgp.Prefix.t * float) list ->
  time_s:int ->
  t
(** Assemble directly from a PoP (simulator fast path — identical content
    to the BMP-reconstructed view, which tests verify). [ifaces]
    substitutes the PoP's interface list — the fault injector passes
    capacity-derated copies so the controller sees degraded links the way
    SNMP would report them; [iface_of_peer] resolves into the substituted
    list by id. Defaults to the PoP's own interfaces. *)

val time_s : t -> int
val prefix_rates : t -> (Ef_bgp.Prefix.t * float) list
(** Descending by rate — the order the allocator considers prefixes. *)

val rate_of : t -> Ef_bgp.Prefix.t -> float

val routes : t -> Ef_bgp.Prefix.t -> Ef_bgp.Route.t list
(** Memoized per snapshot: the first call for a prefix runs the supplied
    [routes] function, later calls return the cached candidate list. One
    snapshot therefore ranks each prefix at most once per cycle, however
    many times the allocator and guard revisit it. *)

val preferred_route : t -> Ef_bgp.Prefix.t -> Ef_bgp.Route.t option
val ifaces : t -> Ef_netsim.Iface.t list

val iface_by_id : t -> int -> Ef_netsim.Iface.t option
(** O(1) (array-indexed) lookup by interface id; [None] for ids no
    interface carries. *)

val max_iface_id : t -> int
(** Largest interface id in the snapshot; [-1] when there are none.
    Sizes the allocator's dense per-interface tables. *)

val iface_of_peer : t -> peer_id:int -> Ef_netsim.Iface.t option
val iface_of_route : t -> Ef_bgp.Route.t -> Ef_netsim.Iface.t option

val total_rate_bps : t -> float
(** Precomputed at assembly (not re-folded per call). *)

val prefix_count : t -> int
(** Precomputed at assembly. *)
