(** The controller's input: one coherent view per cycle.

    Every allocator run starts from a snapshot combining the three feeds —
    candidate routes per prefix (BMP), estimated per-prefix rates (sFlow),
    and interface capacities (SNMP/config). The allocator never touches
    live router state; it recomputes from the snapshot alone, which is
    what makes the controller stateless and restartable (§5 of the
    paper). *)

type t

type change = {
  ch_prefix : Ef_bgp.Prefix.t;
  ch_old_rate : float option;  (** rate in the older snapshot, if rated *)
  ch_new_rate : float option;  (** rate in the newer snapshot, if rated *)
  ch_routes : bool;  (** candidate routes may differ between the two *)
}
(** One dirty prefix in a snapshot-to-snapshot delta. *)

type iface_change = {
  ic_id : int;  (** the interface id the change is about *)
  ic_old_capacity : float option;
      (** capacity in the older snapshot; [None] = the id carried no
          interface there (the change is an addition) *)
  ic_new_capacity : float option;
      (** capacity in the newer snapshot; [None] = removed *)
}
(** One interface-set difference in a snapshot-to-snapshot delta.
    Identity is [(id, capacity)]: an interface re-made with the same id
    and capacity is not a change (placement resolves by id; thresholds
    re-derive from capacity every allocator run), so a caller may pass
    a freshly built but equal interface list to {!patch} every cycle
    without recording spurious deltas. *)

type diff = {
  changes : change list;
  iface_changes : iface_change list;
      (** interface-set delta, ascending id order. Exact whether or not
          the pair is [linked] — both interface indexes are at hand. *)
  linked : bool;
      (** [true] when the delta was recorded by {!patch} (exact, including
          route invalidations); [false] when reconstructed from two
          unrelated snapshots, where rate changes are exact but route
          changes are unknowable and conservatively flagged on every
          changed prefix. Clean prefixes of an unlinked pair may still
          have changed routes — incremental consumers must treat
          [linked = false] as "recompute from scratch". *)
}

val assemble :
  ?obs:Ef_obs.Registry.t ->
  ?pool:Ef_util.Pool.t ->
  routes:(Ef_bgp.Prefix.t -> Ef_bgp.Route.t list) ->
  iface_of_peer:(int -> Ef_netsim.Iface.t option) ->
  ifaces:Ef_netsim.Iface.t list ->
  prefix_rates:(Ef_bgp.Prefix.t * float) list ->
  time_s:int ->
  unit ->
  t
(** [routes] must return candidates in decision-ranked order (head =
    BGP-preferred). Rates at or below zero are dropped.

    [pool] shards the table build (filter/sort/set/trie) across the
    pool's domains — a pure throughput knob: the result is byte-identical
    to the serial build at any pool size (tables below a few thousand
    prefixes, a 1-lane pool, or a call from inside a pool task silently
    take the serial path).

    Assembly is instrumented: the [collector.assemble] span and the
    [collector.snapshots] counter (plus a [collector.snapshot.prefixes]
    gauge) land in [obs], defaulting to {!Ef_obs.Registry.default}. *)

val of_pop :
  ?obs:Ef_obs.Registry.t ->
  ?ifaces:Ef_netsim.Iface.t list ->
  Ef_netsim.Pop.t ->
  prefix_rates:(Ef_bgp.Prefix.t * float) list ->
  time_s:int ->
  t
(** Assemble directly from a PoP (simulator fast path — identical content
    to the BMP-reconstructed view, which tests verify). [ifaces]
    substitutes the PoP's interface list — the fault injector passes
    capacity-derated copies so the controller sees degraded links the way
    SNMP would report them; [iface_of_peer] resolves into the substituted
    list by id. Defaults to the PoP's own interfaces. *)

val patch :
  ?obs:Ef_obs.Registry.t ->
  prev:t ->
  ?routes:(Ef_bgp.Prefix.t -> Ef_bgp.Route.t list) ->
  ?ifaces:Ef_netsim.Iface.t list ->
  ?routes_changed:Ef_bgp.Prefix.t list ->
  rate_updates:(Ef_bgp.Prefix.t * float) list ->
  time_s:int ->
  unit ->
  t
(** Delta construction: [prev] with the given absolute rates applied
    (a rate at or below zero, or NaN, withdraws the prefix; a no-op
    update — same rate, not in [routes_changed] — is dropped from the
    recorded delta) and the [routes_changed] prefixes' candidate lists
    invalidated. All unchanged structure is shared with [prev], so cost
    is proportional to the churn plus one O(n) float re-fold for the
    total. The result is byte-identical to a fresh {!assemble} of the
    same content, and remembers its delta so {!diff} [prev] the-result
    is exact and [linked].

    [routes] must agree with [prev]'s closure on every prefix outside
    [routes_changed] (clean prefixes keep their meaning); omitting it
    reuses [prev]'s closure (whose memo is per-snapshot, so invalidated
    prefixes are re-asked). [ifaces] substitutes the interface list the
    way {!of_pop}'s [ifaces] does — peer resolution is by stable
    interface id, so derated copies are picked up. Added, removed and
    capacity-changed interfaces are recorded as the delta's
    {!iface_change} list (content-based: re-passing an equal list
    records nothing), which is what lets the allocator's warm path
    survive interface-set churn instead of recomputing cold. *)

val linked : t -> t -> bool
(** [linked prev next]: [next] is [prev] itself or was built from it by
    {!patch} — i.e. {!diff} would be exact and cheap. O(1); incremental
    consumers use it to decide warm vs cold without paying the
    merge-walk an unlinked {!diff} performs. *)

val diff : t -> t -> diff
(** [diff prev next]: the prefixes whose rates or candidate routes
    differ. When [next] was built by {!patch} from [prev] this returns
    the recorded delta ([linked = true]); otherwise it merge-walks the
    two rate tries — cost proportional to the structural difference —
    and conservatively flags routes on every changed prefix
    ([linked = false]). *)

val time_s : t -> int
val prefix_rates : t -> (Ef_bgp.Prefix.t * float) list
(** Descending by rate, prefix-ascending within a rate tie — the order
    the allocator considers prefixes. Materialized lazily on patched
    snapshots; prefer {!iter_rates} on the million-prefix path. *)

val iter_rates : t -> (Ef_bgp.Prefix.t -> float -> unit) -> unit
(** Iterate rated prefixes in the {!prefix_rates} order without
    materializing the list. *)

val rate_of : t -> Ef_bgp.Prefix.t -> float

val routes : t -> Ef_bgp.Prefix.t -> Ef_bgp.Route.t list
(** Memoized per snapshot: the first call for a prefix runs the supplied
    [routes] function, later calls return the cached candidate list. One
    snapshot therefore ranks each prefix at most once per cycle, however
    many times the allocator and guard revisit it. *)

val routes_uncached : t -> Ef_bgp.Prefix.t -> Ef_bgp.Route.t list
(** Like {!routes} but never writes the memo: a hit is answered from the
    cache, a miss runs the closure without recording the answer. Safe to
    call concurrently from several domains (sharded projection ranks
    through this on workers, then {!prime_route}s the memo serially). *)

val prime_route : t -> Ef_bgp.Prefix.t -> Ef_bgp.Route.t list -> unit
(** Seed the memo with a candidate list obtained via {!routes_uncached};
    first answer wins, exactly as {!routes} would have cached it. Not
    thread-safe — call from one domain only. *)

val preferred_route : t -> Ef_bgp.Prefix.t -> Ef_bgp.Route.t option
val ifaces : t -> Ef_netsim.Iface.t list

val iface_by_id : t -> int -> Ef_netsim.Iface.t option
(** O(1) (array-indexed) lookup by interface id; [None] for ids no
    interface carries. *)

val max_iface_id : t -> int
(** Largest interface id in the snapshot; [-1] when there are none.
    Sizes the allocator's dense per-interface tables. *)

val iface_of_peer : t -> peer_id:int -> Ef_netsim.Iface.t option
val iface_of_route : t -> Ef_bgp.Route.t -> Ef_netsim.Iface.t option

val total_rate_bps : t -> float
(** Precomputed at assembly (not re-folded per call). *)

val prefix_count : t -> int
(** Precomputed at assembly. *)
