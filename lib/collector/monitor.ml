module Bgp = Ef_bgp

type t = {
  rib : Bgp.Rib.t;
  policy : Bgp.Policy.t;
  peer_directory : int -> Bgp.Peer.t option;
  mutable processed : int;
  mutable ignored : int;
  mutable seen : int list;
  mutable last_seen_s : int option;
  session : Retry.t;
}

let create ?decision ~peer_directory ~policy () =
  {
    rib = Bgp.Rib.create ?decision ();
    policy;
    peer_directory;
    processed = 0;
    ignored = 0;
    seen = [];
    last_seen_s = None;
    session = Retry.create ();
  }

let register_peer t peer_id =
  if not (List.mem peer_id t.seen) then
    match t.peer_directory peer_id with
    | None -> false
    | Some peer ->
        Bgp.Rib.add_peer t.rib peer ~policy:t.policy;
        t.seen <- peer_id :: t.seen;
        true
  else true

let touch t header =
  let ts = header.Bmp.timestamp_s in
  match t.last_seen_s with
  | Some prev when prev >= ts -> ()
  | _ -> t.last_seen_s <- Some ts

let feed_msg t msg =
  t.processed <- t.processed + 1;
  (match msg with
  | Bmp.Peer_up { header; _ }
  | Bmp.Peer_down { header; _ }
  | Bmp.Route_monitoring { header; _ } ->
      touch t header
  | Bmp.Initiation _ | Bmp.Termination _ | Bmp.Stats_report _ -> ());
  match msg with
  | Bmp.Initiation _ | Bmp.Termination _ | Bmp.Stats_report _ -> ()
  | Bmp.Peer_up { header; _ } ->
      if not (register_peer t header.Bmp.peer_id) then t.ignored <- t.ignored + 1
  | Bmp.Peer_down { header; _ } ->
      if List.mem header.Bmp.peer_id t.seen then
        ignore (Bgp.Rib.drop_peer t.rib ~peer_id:header.Bmp.peer_id)
      else t.ignored <- t.ignored + 1
  | Bmp.Route_monitoring { header; update } ->
      if register_peer t header.Bmp.peer_id then
        ignore (Bgp.Rib.apply_update t.rib ~peer_id:header.Bmp.peer_id update)
      else t.ignored <- t.ignored + 1

let feed_bytes t buf =
  match Bmp.decode_all buf with
  | Error e -> Error e
  | Ok msgs ->
      List.iter (feed_msg t) msgs;
      Ok ()

let rib t = t.rib
let peers_seen t = List.sort compare t.seen
let msgs_processed t = t.processed
let msgs_ignored t = t.ignored
let last_seen_s t = t.last_seen_s
let session t = t.session

let stale t ~now_s ~max_age_s =
  match t.last_seen_s with
  | None -> true
  | Some ts -> now_s - ts > max_age_s

let mirror_of_pop pop ~time_s =
  let rib = Ef_netsim.Pop.rib pop in
  List.concat_map
    (fun peer ->
      let peer_id = Bgp.Peer.id peer in
      let header =
        {
          Bmp.peer_id;
          peer_addr = peer.Bgp.Peer.session_addr;
          peer_asn = Bgp.Peer.asn peer;
          peer_bgp_id = peer.Bgp.Peer.router_id;
          timestamp_s = time_s;
        }
      in
      let up =
        Bmp.Peer_up
          {
            header;
            local_addr = Bgp.Ipv4.of_octets 10 0 0 1;
            local_port = 179;
            remote_port = 40000 + peer_id;
          }
      in
      let routes =
        List.map
          (fun (prefix, attrs) ->
            Bmp.Route_monitoring
              {
                header;
                update = { Bgp.Msg.withdrawn = []; attrs = Some attrs; nlri = [ prefix ] };
              })
          (Bgp.Rib.adj_rib_in rib ~peer_id)
      in
      up :: routes)
    (Ef_netsim.Pop.peers pop)
