type config = {
  base_delay_s : int;
  max_delay_s : int;
  max_attempts : int;
}

let default_config = { base_delay_s = 30; max_delay_s = 480; max_attempts = 8 }

type state =
  | Healthy
  | Backing_off of { attempt : int; retry_at_s : int }
  | Gave_up

type t = {
  config : config;
  mutable state : state;
  mutable failures : int;
  mutable reconnects : int;
}

let create ?(config = default_config) () =
  if config.base_delay_s <= 0 then invalid_arg "Retry.create: base_delay_s <= 0";
  if config.max_attempts <= 0 then invalid_arg "Retry.create: max_attempts <= 0";
  { config; state = Healthy; failures = 0; reconnects = 0 }

let state t = t.state
let healthy t = t.state = Healthy
let failures t = t.failures
let reconnects t = t.reconnects

(* exponential backoff, capped: base * 2^(attempt-1), attempt counted from 1 *)
let delay_for config attempt =
  let exp = min 30 (attempt - 1) in
  min config.max_delay_s (config.base_delay_s * (1 lsl exp))

let on_failure t ~time_s =
  match t.state with
  | Gave_up ->
      (* the machine has stopped retrying: freeze the counter too, so
         [failures] (and [pp]) keep reporting what it took to give up
         instead of drifting while nobody is retrying *)
      ()
  | Healthy ->
      t.failures <- t.failures + 1;
      t.state <-
        Backing_off { attempt = 1; retry_at_s = time_s + delay_for t.config 1 }
  | Backing_off { attempt; _ } ->
      t.failures <- t.failures + 1;
      let attempt = attempt + 1 in
      if attempt > t.config.max_attempts then t.state <- Gave_up
      else
        t.state <-
          Backing_off { attempt; retry_at_s = time_s + delay_for t.config attempt }

let should_retry t ~time_s =
  match t.state with
  | Healthy | Gave_up -> false
  | Backing_off { retry_at_s; _ } -> time_s >= retry_at_s

let on_success t =
  (match t.state with Healthy -> () | _ -> t.reconnects <- t.reconnects + 1);
  t.state <- Healthy

let attempt t =
  match t.state with
  | Healthy -> 0
  | Gave_up -> t.config.max_attempts
  | Backing_off { attempt; _ } -> attempt

let pp fmt t =
  match t.state with
  | Healthy -> Format.fprintf fmt "healthy (%d reconnects)" t.reconnects
  | Gave_up -> Format.fprintf fmt "gave up after %d failures" t.failures
  | Backing_off { attempt; retry_at_s } ->
      Format.fprintf fmt "backing off (attempt %d, retry at t=%d)" attempt
        retry_at_s
