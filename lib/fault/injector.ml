open Ef_util

type expanded = {
  fault : Plan.fault;
  windows : (int * int) list;
      (* active intervals, half-open; literal for most kinds, one per
         outage for flaps *)
}

type t = {
  plan : Plan.t;
  expanded : expanded list;
  consumer_rng : Rng.t;
}

(* flap onsets: start every [period_s] from [from_s], each onset jittered
   by up to a quarter period so flaps across interfaces do not align *)
let expand_flap rng ~from_s ~until_s ~period_s ~down_s =
  let jitter = max 1 (period_s / 4) in
  let rec loop t acc =
    if t >= until_s then List.rev acc
    else
      let start = t + Rng.int rng jitter in
      if start >= until_s then List.rev acc
      else
        let stop = min until_s (start + down_s) in
        loop (start + down_s + period_s) ((start, stop) :: acc)
  in
  loop from_s []

let expand_fault rng (f : Plan.fault) =
  let windows =
    match f with
    | Plan.Link_flap { from_s; until_s; period_s; down_s; _ } ->
        expand_flap rng ~from_s ~until_s ~period_s ~down_s
    | f -> [ Plan.window f ]
  in
  { fault = f; windows }

let create plan =
  (match Plan.validate plan with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Injector.create: invalid plan: " ^ msg));
  (* one private stream per concern, all derived from the plan seed *)
  let expansion_rng = Rng.create ((plan.Plan.plan_seed * 2654435761) lxor 0x5f) in
  {
    plan;
    expanded = List.map (expand_fault expansion_rng) plan.Plan.faults;
    consumer_rng = Rng.create ((plan.Plan.plan_seed * 40503) lxor 0xfa17) ;
  }

let plan t = t.plan
let rng t = t.consumer_rng

let in_window time_s (from_s, until_s) = time_s >= from_s && time_s < until_s

let active_in e ~time_s = List.exists (in_window time_s) e.windows

let fold_active t ~time_s f init =
  List.fold_left
    (fun acc e -> if active_in e ~time_s then f acc e.fault else acc)
    init t.expanded

let link_down t ~iface_id ~time_s =
  fold_active t ~time_s
    (fun acc fault ->
      acc
      ||
      match fault with
      | Plan.Link_flap { iface_id = id; _ } -> id = iface_id
      | _ -> false)
    false

let capacity_factor t ~iface_id ~time_s =
  if link_down t ~iface_id ~time_s then 0.0
  else
    fold_active t ~time_s
      (fun acc fault ->
        match fault with
        | Plan.Capacity_degradation { iface_id = id; factor; _ } when id = iface_id
          ->
            acc *. factor
        | _ -> acc)
      1.0

let bmp_stalled t ~time_s =
  fold_active t ~time_s
    (fun acc fault ->
      acc || match fault with Plan.Bmp_stall _ -> true | _ -> false)
    false

let sflow_drop_fraction t ~time_s =
  fold_active t ~time_s
    (fun acc fault ->
      match fault with
      | Plan.Sflow_loss { drop_fraction; _ } -> Float.max acc drop_fraction
      | _ -> acc)
    0.0

let sflow_burst_multiplier t ~time_s =
  fold_active t ~time_s
    (fun acc fault ->
      match fault with
      | Plan.Sflow_burst { multiplier; _ } -> acc *. multiplier
      | _ -> acc)
    1.0

let cycle_skipped t ~time_s =
  fold_active t ~time_s
    (fun acc fault ->
      acc || match fault with Plan.Cycle_skip _ -> true | _ -> false)
    false

let cycle_delay_s t ~time_s =
  fold_active t ~time_s
    (fun acc fault ->
      match fault with
      | Plan.Cycle_delay { delay_s; _ } -> max acc delay_s
      | _ -> acc)
    0

let active_labels t ~time_s =
  fold_active t ~time_s (fun acc fault -> Plan.label fault :: acc) []
  |> List.sort_uniq compare

let flap_windows t ~iface_id =
  List.concat_map
    (fun e ->
      match e.fault with
      | Plan.Link_flap { iface_id = id; _ } when id = iface_id -> e.windows
      | _ -> [])
    t.expanded
  |> List.sort compare
