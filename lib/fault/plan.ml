module Json = Ef_obs.Json

type fault =
  | Link_flap of {
      iface_id : int;
      from_s : int;
      until_s : int;
      period_s : int;
      down_s : int;
    }
  | Capacity_degradation of {
      iface_id : int;
      from_s : int;
      until_s : int;
      factor : float;
    }
  | Bmp_stall of { from_s : int; until_s : int }
  | Sflow_loss of { from_s : int; until_s : int; drop_fraction : float }
  | Sflow_burst of { from_s : int; until_s : int; multiplier : float }
  | Cycle_skip of { from_s : int; until_s : int }
  | Cycle_delay of { from_s : int; until_s : int; delay_s : int }

type t = {
  plan_seed : int;
  faults : fault list;
}

let make ?(seed = 1) faults = { plan_seed = seed; faults }
let empty = { plan_seed = 1; faults = [] }

let label = function
  | Link_flap _ -> "link_flap"
  | Capacity_degradation _ -> "capacity_degradation"
  | Bmp_stall _ -> "bmp_stall"
  | Sflow_loss _ -> "sflow_loss"
  | Sflow_burst _ -> "sflow_burst"
  | Cycle_skip _ -> "cycle_skip"
  | Cycle_delay _ -> "cycle_delay"

let window = function
  | Link_flap { from_s; until_s; _ }
  | Capacity_degradation { from_s; until_s; _ }
  | Bmp_stall { from_s; until_s }
  | Sflow_loss { from_s; until_s; _ }
  | Sflow_burst { from_s; until_s; _ }
  | Cycle_skip { from_s; until_s }
  | Cycle_delay { from_s; until_s; _ } ->
      (from_s, until_s)

let validate_fault f =
  let from_s, until_s = window f in
  if until_s <= from_s then
    Error (Printf.sprintf "%s: empty window [%d, %d)" (label f) from_s until_s)
  else
    match f with
    | Link_flap { period_s; down_s; _ } ->
        if period_s <= 0 then Error "link_flap: period_s must be positive"
        else if down_s <= 0 then Error "link_flap: down_s must be positive"
        else Ok ()
    | Capacity_degradation { factor; _ } ->
        if factor <= 0.0 || factor > 1.0 then
          Error "capacity_degradation: factor must be in (0, 1]"
        else Ok ()
    | Sflow_loss { drop_fraction; _ } ->
        if drop_fraction < 0.0 || drop_fraction > 1.0 then
          Error "sflow_loss: drop_fraction must be in [0, 1]"
        else Ok ()
    | Sflow_burst { multiplier; _ } ->
        if multiplier <= 0.0 then Error "sflow_burst: multiplier must be positive"
        else Ok ()
    | Cycle_delay { delay_s; _ } ->
        if delay_s <= 0 then Error "cycle_delay: delay_s must be positive"
        else Ok ()
    | Bmp_stall _ | Cycle_skip _ -> Ok ()

let validate t =
  List.fold_left
    (fun acc f -> match acc with Error _ -> acc | Ok () -> validate_fault f)
    (Ok ()) t.faults

let equal a b = a = b

let pp_fault fmt f =
  let from_s, until_s = window f in
  Format.fprintf fmt "%s[%d,%d)" (label f) from_s until_s;
  match f with
  | Link_flap { iface_id; period_s; down_s; _ } ->
      Format.fprintf fmt " iface=%d period=%ds down=%ds" iface_id period_s down_s
  | Capacity_degradation { iface_id; factor; _ } ->
      Format.fprintf fmt " iface=%d factor=%.2f" iface_id factor
  | Sflow_loss { drop_fraction; _ } -> Format.fprintf fmt " drop=%.2f" drop_fraction
  | Sflow_burst { multiplier; _ } -> Format.fprintf fmt " x%.2f" multiplier
  | Cycle_delay { delay_s; _ } -> Format.fprintf fmt " delay=%ds" delay_s
  | Bmp_stall _ | Cycle_skip _ -> ()

let pp fmt t =
  Format.fprintf fmt "plan(seed=%d:" t.plan_seed;
  List.iter (fun f -> Format.fprintf fmt " %a" pp_fault f) t.faults;
  Format.fprintf fmt ")"

(* --- JSON ------------------------------------------------------------- *)

let fault_to_json f =
  let from_s, until_s = window f in
  let base = [ ("kind", Json.String (label f)) ] in
  let tail =
    match f with
    | Link_flap { iface_id; period_s; down_s; _ } ->
        [
          ("iface_id", Json.Int iface_id);
          ("period_s", Json.Int period_s);
          ("down_s", Json.Int down_s);
        ]
    | Capacity_degradation { iface_id; factor; _ } ->
        [ ("iface_id", Json.Int iface_id); ("factor", Json.Float factor) ]
    | Sflow_loss { drop_fraction; _ } ->
        [ ("drop_fraction", Json.Float drop_fraction) ]
    | Sflow_burst { multiplier; _ } -> [ ("multiplier", Json.Float multiplier) ]
    | Cycle_delay { delay_s; _ } -> [ ("delay_s", Json.Int delay_s) ]
    | Bmp_stall _ | Cycle_skip _ -> []
  in
  Json.Obj
    (base
    @ [ ("from_s", Json.Int from_s); ("until_s", Json.Int until_s) ]
    @ tail)

let to_json t =
  Json.Obj
    [
      ("seed", Json.Int t.plan_seed);
      ("faults", Json.List (List.map fault_to_json t.faults));
    ]

let ( let* ) = Result.bind

let field name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)

let fault_of_json j =
  let* kind = field "kind" Json.to_string_opt j in
  let* from_s = field "from_s" Json.to_int_opt j in
  let* until_s = field "until_s" Json.to_int_opt j in
  match kind with
  | "link_flap" ->
      let* iface_id = field "iface_id" Json.to_int_opt j in
      let* period_s = field "period_s" Json.to_int_opt j in
      let* down_s = field "down_s" Json.to_int_opt j in
      Ok (Link_flap { iface_id; from_s; until_s; period_s; down_s })
  | "capacity_degradation" ->
      let* iface_id = field "iface_id" Json.to_int_opt j in
      let* factor = field "factor" Json.to_float_opt j in
      Ok (Capacity_degradation { iface_id; from_s; until_s; factor })
  | "bmp_stall" -> Ok (Bmp_stall { from_s; until_s })
  | "sflow_loss" ->
      let* drop_fraction = field "drop_fraction" Json.to_float_opt j in
      Ok (Sflow_loss { from_s; until_s; drop_fraction })
  | "sflow_burst" ->
      let* multiplier = field "multiplier" Json.to_float_opt j in
      Ok (Sflow_burst { from_s; until_s; multiplier })
  | "cycle_skip" -> Ok (Cycle_skip { from_s; until_s })
  | "cycle_delay" ->
      let* delay_s = field "delay_s" Json.to_int_opt j in
      Ok (Cycle_delay { from_s; until_s; delay_s })
  | k -> Error (Printf.sprintf "unknown fault kind %S" k)

let of_json j =
  let* seed = field "seed" Json.to_int_opt j in
  let* faults_json = field "faults" Json.to_list_opt j in
  let* faults =
    List.fold_left
      (fun acc fj ->
        let* acc = acc in
        let* f = fault_of_json fj in
        Ok (f :: acc))
      (Ok []) faults_json
  in
  let t = { plan_seed = seed; faults = List.rev faults } in
  let* () = validate t in
  Ok t

let to_string t = Json.to_string (to_json t)

let of_string s =
  let* j = Json.parse s in
  of_json j

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string t);
      output_char oc '\n')

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> of_string contents
  | exception Sys_error msg -> Error msg
