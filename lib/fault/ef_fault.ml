(** Ef_fault: deterministic fault injection.

    {!Plan} is the declarative, JSON-serialisable chaos DSL; {!Injector}
    compiles a plan into per-cycle queries the simulation layers poll.
    See [DESIGN.md] ("Fault injection and graceful degradation") for the
    fault model and how the controller degrades under each fault. *)

module Plan = Plan
module Injector = Injector
