(** The fault injector: a compiled, queryable {!Plan}.

    [create] deterministically expands the plan — link-flap onsets get
    seed-derived jitter, everything else is literal windows — so two
    injectors built from the same plan answer every query identically.
    The simulation layers (engine, collector session model) poll the
    injector against simulated time; the injector never calls back into
    them.

    The injector also carries a consumer RNG ({!rng}) split off the plan
    seed: probabilistic faults (sFlow sample drops) draw from it so fault
    randomness never perturbs the workload's own streams. *)

type t

val create : Plan.t -> t
(** Raises [Invalid_argument] if {!Plan.validate} rejects the plan. *)

val plan : t -> Plan.t

val rng : t -> Ef_util.Rng.t
(** Seed-derived generator for consumers applying probabilistic faults
    (sample-drop coin flips). Deterministic given the plan seed and the
    caller's draw sequence. *)

(** {2 Per-cycle queries} — all pure in [time_s] except noted. *)

val link_down : t -> iface_id:int -> time_s:int -> bool
(** Inside an expanded flap outage window. *)

val capacity_factor : t -> iface_id:int -> time_s:int -> float
(** Remaining capacity fraction in [\[0, 1\]]: 0 while the link is down,
    otherwise the product of active degradations (1.0 = healthy). *)

val bmp_stalled : t -> time_s:int -> bool

val sflow_drop_fraction : t -> time_s:int -> float
(** Max over active [Sflow_loss] windows; 0 when none. *)

val sflow_burst_multiplier : t -> time_s:int -> float
(** Product of active [Sflow_burst] windows; 1 when none. *)

val cycle_skipped : t -> time_s:int -> bool

val cycle_delay_s : t -> time_s:int -> int
(** Max over active [Cycle_delay] windows; 0 when none. *)

val active_labels : t -> time_s:int -> string list
(** Labels of every fault active at [time_s] (flap faults count as active
    only inside an actual outage window), sorted, duplicates removed —
    what the engine stamps into journal events. *)

val flap_windows : t -> iface_id:int -> (int * int) list
(** The expanded outage windows for an interface (for tests and
    inspection), in chronological order. *)
