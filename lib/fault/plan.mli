(** Fault plans: the chaos DSL.

    A plan is a seed plus a list of declarative faults scheduled against
    simulated time. Plans are pure data — they do nothing until an
    {!Injector} expands them (deterministically, from the seed) and the
    simulation layers query the injector each cycle. Plans serialise to
    JSON so canned scenarios can be committed, shipped to
    [efctl run --faults], and diffed.

    Every fault is active over a half-open window [\[from_s, until_s)] of
    simulated seconds. The kinds cover the failure modes the paper's
    deployment defends against: flapping peering links, degraded (shared
    IXP) port capacity, BMP session resets leaving the controller a stale
    Adj-RIB-In, sFlow sample loss and bursts, and controller cycles that
    are skipped or run late. *)

type fault =
  | Link_flap of {
      iface_id : int;
      from_s : int;
      until_s : int;
      period_s : int;  (** mean seconds between flap onsets *)
      down_s : int;    (** seconds each outage lasts *)
    }
      (** The interface repeatedly goes down (sessions flushed, capacity 0)
          and comes back. Onset jitter is drawn from the plan seed. *)
  | Capacity_degradation of {
      iface_id : int;
      from_s : int;
      until_s : int;
      factor : float;  (** remaining fraction of capacity, in (0, 1] *)
    }
      (** The interface keeps its sessions but loses capacity — the
          remote-peering / congested-IXP-fabric case. *)
  | Bmp_stall of { from_s : int; until_s : int }
      (** The BMP feed stops: the controller's snapshot (routes and rates)
          freezes at its last-good contents until the session recovers. *)
  | Sflow_loss of { from_s : int; until_s : int; drop_fraction : float }
      (** Each sFlow sample is independently dropped with this
          probability (collector overload, UDP loss). *)
  | Sflow_burst of { from_s : int; until_s : int; multiplier : float }
      (** Sampled counts are inflated by this factor (duplicated
          datagrams, a misconfigured sampling rate). *)
  | Cycle_skip of { from_s : int; until_s : int }
      (** The controller does not run at all during the window (crashed
          or wedged); the last-installed overrides stay enforced. *)
  | Cycle_delay of { from_s : int; until_s : int; delay_s : int }
      (** Controller cycles run late: each cycle in the window sees the
          previous snapshot, so input age grows by [delay_s]. *)

type t = {
  plan_seed : int;
  faults : fault list;
}

val make : ?seed:int -> fault list -> t
(** [seed] defaults to 1. *)

val empty : t

val label : fault -> string
(** Short stable tag: ["link_flap"], ["bmp_stall"], ... — the [kind]
    field of the JSON form and the label journal events carry. *)

val window : fault -> int * int
(** [(from_s, until_s)] of any fault. *)

val validate : t -> (unit, string) result
(** Windows must be non-empty, fractions/factors in range, periods and
    delays positive. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

(** {2 JSON round-trip}

    The wire shape is [{"seed": N, "faults": [{"kind": "...", ...}]}]. *)

val to_json : t -> Ef_obs.Json.t
val of_json : Ef_obs.Json.t -> (t, string) result
val to_string : t -> string
val of_string : string -> (t, string) result

val save : string -> t -> unit
val load : string -> (t, string) result
(** File variants of the above; [load] reports I/O problems as [Error]. *)
