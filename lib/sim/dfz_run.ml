module Snapshot = Ef_collector.Snapshot
module Controller = Edge_fabric.Controller
module Config = Edge_fabric.Config
module Projection = Edge_fabric.Projection
module Dfz = Ef_netsim.Dfz
module Clock = Ef_obs.Clock
module Json = Ef_obs.Json

type config = {
  cycles : int;
  cycle_s : int;
  verify : bool;
  faults : Ef_fault.Plan.t option;
  controller : Config.t;
}

let config ?(cycles = 30) ?(cycle_s = 30) ?(verify = false) ?faults
    ?(controller = Config.default) () =
  if cycles < 1 then invalid_arg "Dfz_run.config: cycles must be positive";
  if cycle_s < 1 then invalid_arg "Dfz_run.config: cycle_s must be positive";
  { cycles; cycle_s; verify; faults; controller }

type report = {
  prefix_count : int;
  cycles_run : int;
  incremental_hits : int;
  dirty_total : int;
  iface_event_cycles : int list;
  cycle_seconds : float array;
  verified_cycles : int;
  mismatches : string list;
}

(* nearest-rank percentile over the recorded wall times *)
let percentile times q =
  let n = Array.length times in
  if n = 0 then 0.0
  else begin
    let sorted = Array.copy times in
    Array.sort Float.compare sorted;
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

(* Cycle 0 assembles the whole table cold; every later cycle is an
   incremental patch. Mixing the two regimes into one distribution made
   the headline p99 just "the cold build, again", so the headline
   percentiles cover the steady-state cycles only and the cold build is
   reported on its own. A single-cycle run has no steady state — its one
   (cold) cycle is the whole distribution. *)
let cold_s r = if Array.length r.cycle_seconds = 0 then 0.0 else r.cycle_seconds.(0)

let steady_times r =
  let n = Array.length r.cycle_seconds in
  if n <= 1 then r.cycle_seconds else Array.sub r.cycle_seconds 1 (n - 1)

let p50_s r = percentile (steady_times r) 0.50
let p99_s r = percentile (steady_times r) 0.99
let steady_p99_s = p99_s
let max_s r = Array.fold_left Float.max 0.0 (steady_times r)

let mean_s r =
  let times = steady_times r in
  let n = Array.length times in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 times /. float_of_int n

(* --- differential check against the cold pipeline --------------------

   The reference side replays an identical generator (same config, pure
   hash schedules) but assembles every snapshot from scratch — unlinked
   snapshots plus [incremental = false] force the cold path end to end.
   Equality is exact, floats included: the incremental path is built to
   reproduce the cold path's accumulation order, not approximate it. *)

let check_cycle ~cycle ~stats ~ref_stats =
  let buf = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> buf := s :: !buf) fmt in
  let say what = fail "cycle %d: %s differ" cycle what in
  if Controller.overrides_enforced stats <> Controller.overrides_enforced ref_stats
  then say "enforced overrides";
  if Controller.total_bps stats <> Controller.total_bps ref_stats then
    say "total_bps";
  if Controller.detoured_bps stats <> Controller.detoured_bps ref_stats then
    say "detoured_bps";
  if Controller.residual_overloads stats <> Controller.residual_overloads ref_stats
  then say "residual overloads";
  let enf = Controller.enforced stats
  and ref_enf = Controller.enforced ref_stats in
  if Projection.stale_overrides enf <> Projection.stale_overrides ref_enf then
    say "stale overrides";
  List.iter
    (fun iface ->
      let id = Ef_netsim.Iface.id iface in
      let a = Projection.load_bps enf ~iface_id:id
      and b = Projection.load_bps ref_enf ~iface_id:id in
      if a <> b then
        fail "cycle %d: enforced load on iface %d: %.17g <> %.17g" cycle id a b)
    (Projection.ifaces enf);
  List.rev !buf

let snapshot_of_gen ?obs ?pool ?ifaces gen ~time_s =
  Snapshot.assemble ?obs ?pool
    ~routes:(Dfz.routes gen)
    ~iface_of_peer:(Dfz.iface_of_peer gen)
    ~ifaces:(Option.value ifaces ~default:(Dfz.ifaces gen))
    ~prefix_rates:(Dfz.current_rates gen)
    ~time_s ()

(* The interface set the fault plan leaves standing at [time_s]: downed
   links disappear (their sessions are flushed, so the warm path must
   re-place every prefix that egressed there), degraded links keep their
   id with a scaled capacity. Both the incremental and the reference
   side derive their list from the same injector — queries are pure in
   [time_s], so the two worlds see byte-identical interface sets. *)
let faulted_ifaces inj ifaces ~time_s =
  List.filter_map
    (fun ifc ->
      let id = Ef_netsim.Iface.id ifc in
      if Ef_fault.Injector.link_down inj ~iface_id:id ~time_s then None
      else
        let f = Ef_fault.Injector.capacity_factor inj ~iface_id:id ~time_s in
        if f >= 1.0 then Some ifc
        else
          Some
            (Ef_netsim.Iface.make ~id
               ~name:(Ef_netsim.Iface.name ifc)
               ~capacity_bps:
                 (Float.max 1.0 (f *. Ef_netsim.Iface.capacity_bps ifc))
               ~shared:(Ef_netsim.Iface.shared ifc)))
    ifaces

(* the cold table build shards across the same pool the controller's
   [shards] knob uses; a 1-shard config (or a call from inside a pool
   task) stays serial *)
let shard_pool controller =
  let shards = controller.Config.shards in
  if shards <= 1 || Ef_util.Pool.in_task () then None
  else Some (Ef_util.Pool.global ~jobs:shards ())

(* One health observation per timed cycle: the dfz driver has no fault
   injection or feed retry machinery, so staleness/skips are always
   false here — the tracker still sees deadline overruns, guard
   violations and residual overloads. *)
let observe_health health ~cycle ~cycle_s ~duration_s
    (stats : Controller.cycle_stats) =
  if Ef_health.Tracker.enabled health then
    ignore
      (Ef_health.Tracker.observe_cycle health
         {
           Ef_health.Tracker.time_s = cycle * cycle_s;
           duration_s;
           degraded = Controller.degraded stats <> None;
           skipped = false;
           stale = false;
           violations = List.length (Controller.guard_violations stats);
           residual = List.length (Controller.residual_overloads stats);
         })

let run ?obs ?(health = Ef_health.Tracker.noop) ?(config = config ()) dfz_cfg =
  let gen = Dfz.create dfz_cfg in
  let ctl = Controller.create ~config:config.controller ?obs ~name:"dfz" () in
  (* the cold twin: own generator, own controller, no shared state *)
  let reference =
    if config.verify then
      Some
        ( Dfz.create dfz_cfg,
          Controller.create
            ~config:(Config.with_incremental false config.controller)
            ~name:"dfz-ref" () )
    else None
  in
  let injector = Option.map Ef_fault.Injector.create config.faults in
  (* [None] when no plan: patch then reuses the parent's interface set
     for free instead of re-diffing an identical list every cycle *)
  let ifaces_at ~time_s =
    match injector with
    | None -> None
    | Some inj -> Some (faulted_ifaces inj (Dfz.ifaces gen) ~time_s)
  in
  let times = Array.make config.cycles 0.0 in
  let dirty_total = ref 0 in
  let iface_event_cycles = ref [] in
  let verified = ref 0 in
  let mismatches = ref [] in
  let pool = shard_pool config.controller in
  let snap =
    ref (snapshot_of_gen ?obs ?pool ?ifaces:(ifaces_at ~time_s:0) gen ~time_s:0)
  in
  for cycle = 0 to config.cycles - 1 do
    let time_s = cycle * config.cycle_s in
    let t0 = Clock.now_ns () in
    if cycle > 0 then begin
      (* advance the world and thread the delta through the snapshot
         chain — this, not just the controller call, is the end-to-end
         incremental cycle the acceptance clock covers *)
      let ev = Dfz.churn gen ~cycle in
      dirty_total :=
        !dirty_total
        + List.length ev.Dfz.rate_updates
        + List.length ev.Dfz.routes_changed;
      let prev = !snap in
      snap :=
        Snapshot.patch ?obs ~prev
          ?ifaces:(ifaces_at ~time_s)
          ~routes_changed:ev.Dfz.routes_changed
          ~rate_updates:ev.Dfz.rate_updates
          ~time_s ();
      (* linked diff is O(1): the patch recorded its own delta *)
      if (Snapshot.diff prev !snap).Snapshot.iface_changes <> [] then
        iface_event_cycles := cycle :: !iface_event_cycles
    end;
    let stats = Controller.cycle ctl !snap in
    times.(cycle) <- Clock.elapsed_s t0;
    observe_health health ~cycle ~cycle_s:config.cycle_s
      ~duration_s:times.(cycle) stats;
    (match reference with
    | None -> ()
    | Some (ref_gen, ref_ctl) ->
        if cycle > 0 then ignore (Dfz.churn ref_gen ~cycle : Dfz.churn_event);
        let ref_ifaces =
          match injector with
          | None -> None
          | Some inj -> Some (faulted_ifaces inj (Dfz.ifaces ref_gen) ~time_s)
        in
        let ref_snap = snapshot_of_gen ?ifaces:ref_ifaces ref_gen ~time_s in
        let ref_stats = Controller.cycle ref_ctl ref_snap in
        incr verified;
        mismatches := !mismatches @ check_cycle ~cycle ~stats ~ref_stats)
  done;
  {
    prefix_count = Snapshot.prefix_count !snap;
    cycles_run = config.cycles;
    incremental_hits = Controller.incremental_hits ctl;
    dirty_total = !dirty_total;
    iface_event_cycles = List.rev !iface_event_cycles;
    cycle_seconds = times;
    verified_cycles = !verified;
    mismatches = !mismatches;
  }

let report_to_json r =
  Json.Obj
    [
      ("prefix_count", Json.Int r.prefix_count);
      ("cycles_run", Json.Int r.cycles_run);
      ("incremental_hits", Json.Int r.incremental_hits);
      ("dirty_total", Json.Int r.dirty_total);
      ( "iface_event_cycles",
        Json.List (List.map (fun c -> Json.Int c) r.iface_event_cycles) );
      ("cold_s", Json.Float (cold_s r));
      ("p50_s", Json.Float (p50_s r));
      ("p99_s", Json.Float (p99_s r));
      ("steady_p99_s", Json.Float (steady_p99_s r));
      ("max_s", Json.Float (max_s r));
      ("mean_s", Json.Float (mean_s r));
      ("verified_cycles", Json.Int r.verified_cycles);
      ("mismatches", Json.List (List.map (fun m -> Json.String m) r.mismatches));
    ]

let pp_report ppf r =
  Format.fprintf ppf
    "dfz: %d prefixes, %d cycles (%d incremental), %d dirty events%s, cold \
     %.3fs, steady p50 %.3fs p99 %.3fs max %.3fs%s"
    r.prefix_count r.cycles_run r.incremental_hits r.dirty_total
    (match List.length r.iface_event_cycles with
    | 0 -> ""
    | n -> Printf.sprintf ", %d iface-churn cycles" n)
    (cold_s r) (p50_s r) (p99_s r) (max_s r)
    (if r.verified_cycles = 0 then ""
     else
       Printf.sprintf ", verified %d cycles (%d mismatches)" r.verified_cycles
         (List.length r.mismatches))

(* --- MRT-seeded runs --------------------------------------------------

   A RouteViews dump carries routes but no demand and no capacities, so
   both are synthesized: Zipf rates over the dump's prefixes (rank
   permutation seeded like Dfz's) and one interface per dump peer sized
   so the busiest interface needs relief. Cycles then drift rates
   deterministically through the patch chain — the dump seeds the RIB,
   the incremental machinery does the rest. *)

type mrt_world = {
  mrt_rib : Ef_bgp.Rib.t;
  mrt_prefixes : Ef_bgp.Prefix.t array;
  mrt_base_rates : float array;
  mrt_ifaces : Ef_netsim.Iface.t array;
}

let mrt_world ?(total_bps = 40e9) ?(zipf_s = 1.0) ?(seed = 7) dump =
  match Ef_bgp.Mrt.to_rib dump with
  | Error e -> Error e
  | Ok rib ->
      let prefixes =
        Ef_bgp.Rib.fold (fun p _ acc -> p :: acc) rib []
        |> List.rev |> Array.of_list
      in
      let n = Array.length prefixes in
      if n = 0 then Error (Ef_bgp.Mrt.Malformed "dump has no routed prefixes")
      else begin
        let zipf = Ef_util.Zipf.create ~n ~s:zipf_s in
        let probs = Ef_util.Zipf.weights zipf in
        let perm = Array.init n Fun.id in
        Ef_util.Rng.shuffle (Ef_util.Rng.create (seed lxor 0x317)) perm;
        let base_rates =
          Array.init n (fun i -> total_bps *. probs.(perm.(i)))
        in
        let peer_ids = Ef_bgp.Rib.peer_ids rib in
        (* a dump with routes but no resolvable peers would otherwise
           produce an all-unroutable world that runs "successfully" —
           the old [max 1 n] here hid exactly that case *)
        match peer_ids with
        | [] -> Error (Ef_bgp.Mrt.Malformed "dump has no usable peer interfaces")
        | _ :: _ ->
        let n_ifaces = List.length peer_ids in
        let fair = total_bps /. float_of_int n_ifaces in
        let ifaces =
          Array.of_list
            (List.mapi
               (fun i peer_id ->
                 Ef_netsim.Iface.make ~id:peer_id
                   ~name:(Printf.sprintf "mrt-if%d" peer_id)
                   ~capacity_bps:(if i = 0 then 0.8 *. fair else 1.4 *. fair)
                   ~shared:false)
               peer_ids)
        in
        Ok { mrt_rib = rib; mrt_prefixes = prefixes; mrt_base_rates = base_rates; mrt_ifaces = ifaces }
      end

let mrt_snapshot ?obs w ~rates ~time_s =
  let prefix_rates = ref [] in
  for i = Array.length w.mrt_prefixes - 1 downto 0 do
    if rates.(i) > 0.0 then
      prefix_rates := (w.mrt_prefixes.(i), rates.(i)) :: !prefix_rates
  done;
  let by_id = Hashtbl.create (Array.length w.mrt_ifaces) in
  Array.iter
    (fun ifc -> Hashtbl.replace by_id (Ef_netsim.Iface.id ifc) ifc)
    w.mrt_ifaces;
  Snapshot.assemble ?obs
    ~routes:(Ef_bgp.Rib.ranked w.mrt_rib)
    ~iface_of_peer:(Hashtbl.find_opt by_id)
    ~ifaces:(Array.to_list w.mrt_ifaces)
    ~prefix_rates:!prefix_rates ~time_s ()

let run_mrt ?obs ?(health = Ef_health.Tracker.noop) ?(config = config ())
    ?total_bps ?zipf_s ?(seed = 7) dump =
  match mrt_world ?total_bps ?zipf_s ~seed dump with
  | Error e -> Error e
  | Ok w ->
      let n = Array.length w.mrt_prefixes in
      let rates = Array.copy w.mrt_base_rates in
      let ctl =
        Controller.create ~config:config.controller ?obs ~name:"mrt" ()
      in
      let times = Array.make config.cycles 0.0 in
      let dirty_total = ref 0 in
      let snap = ref (mrt_snapshot ?obs w ~rates ~time_s:0) in
      for cycle = 0 to config.cycles - 1 do
        let t0 = Clock.now_ns () in
        if cycle > 0 then begin
          (* ~1% of prefixes drift per cycle, deterministic in (seed, cycle) *)
          let rng = Ef_util.Rng.create ((seed * 0x9E37) lxor cycle) in
          let n_events = max 1 (n / 100) in
          let touched = Hashtbl.create (2 * n_events) in
          let updates = ref [] in
          for _ = 1 to n_events do
            let i = Ef_util.Rng.int rng n in
            if not (Hashtbl.mem touched i) then begin
              Hashtbl.replace touched i ();
              let r = w.mrt_base_rates.(i) *. (0.5 +. Ef_util.Rng.float rng 1.0) in
              rates.(i) <- r;
              updates := (w.mrt_prefixes.(i), r) :: !updates
            end
          done;
          dirty_total := !dirty_total + List.length !updates;
          snap :=
            Snapshot.patch ?obs ~prev:!snap ~rate_updates:!updates
              ~time_s:(cycle * config.cycle_s) ()
        end;
        let stats = Controller.cycle ctl !snap in
        times.(cycle) <- Clock.elapsed_s t0;
        observe_health health ~cycle ~cycle_s:config.cycle_s
          ~duration_s:times.(cycle) stats
      done;
      Ok
        {
          prefix_count = n;
          cycles_run = config.cycles;
          incremental_hits = Controller.incremental_hits ctl;
          dirty_total = !dirty_total;
          iface_event_cycles = [];
          cycle_seconds = times;
          verified_cycles = 0;
          mismatches = [];
        }
