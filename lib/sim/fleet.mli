(** Fleet view: every PoP's controller, side by side.

    Edge Fabric runs one controller per PoP with no cross-PoP
    coordination (that independence is a design point of the paper); the
    fleet layer exists for what the operators' dashboards do — running
    all the PoPs over the same simulated day and aggregating outcomes. *)

type t

val create :
  ?config:Engine.config -> ?obs:Ef_obs.Registry.t -> Ef_netsim.Scenario.t list -> t
(** One engine per scenario, sharing the engine configuration (each world
    still derives from its own scenario seed). When [obs] is given every
    engine reports into it; {!run} additionally records a [fleet.pop_run]
    span and bumps [fleet.pops_run] per completed PoP. *)

val of_paper_pops : ?config:Engine.config -> ?obs:Ef_obs.Registry.t -> unit -> t

val engines : t -> (string * Engine.t) list

val run : t -> (string * Metrics.t) list
(** Run every PoP to completion (a PoP's day is independent of the
    others', so order does not matter). *)

type summary = {
  pops : int;
  offered_peak_bps : float;    (** sum of per-PoP peak offered traffic *)
  mean_detour_fraction : float; (** traffic-weighted across PoPs *)
  overloaded_ifaces : int;     (** interfaces that ever exceeded capacity *)
  overloaded_ifaces_bgp_only : int; (** same, had BGP alone decided *)
  total_overrides_installed : int;
}

val summarize : (string * Metrics.t) list -> summary
val summary_table : (string * Metrics.t) list -> Ef_stats.Table.t
(** Per-PoP rows plus a fleet totals row. *)
