(** Fleet view: every PoP's controller, side by side.

    Edge Fabric runs one controller per PoP with no cross-PoP
    coordination (that independence is a design point of the paper); the
    fleet layer exists for what the operators' dashboards do — running
    all the PoPs over the same simulated day and aggregating outcomes.

    That independence also makes the fleet embarrassingly parallel:
    {!run} can shard the PoPs across OCaml domains ([?jobs]). Each engine
    owns a private {!Ef_obs.Registry.t} (the process-wide registry is
    unsynchronized mutable state, unsafe to share across domains); after
    the barrier the per-PoP registries are folded into the fleet registry
    with {!Ef_obs.Registry.merge}, in engine order, on the calling
    domain. Results, merged telemetry and replayed journals are therefore
    byte-identical for every [jobs] value — parallelism can never change
    a routing decision (pinned by test). *)

type t

val create :
  ?config:Engine.config ->
  ?config_of:(Ef_netsim.Scenario.t -> Engine.config) ->
  ?obs:Ef_obs.Registry.t ->
  ?profiler:Ef_health.Profiler.t ->
  Ef_netsim.Scenario.t list ->
  t
(** One engine per scenario, sharing the engine configuration (each world
    still derives from its own scenario seed); [config_of], when given,
    overrides [config] per scenario — the way to give each engine its own
    trace recorder, which must not be shared across domains. Every engine
    reports into a private registry; {!run} merges them into [obs] (the
    process-wide default when omitted) and additionally records a
    [fleet.pop_run] span and bumps [fleet.pops_run] per completed PoP.
    An enabled [profiler] (default {!Ef_health.Profiler.noop}) is
    attached to every per-engine registry and the fleet registry, so a
    parallel run exports a Chrome trace with one row per domain: every
    engine/controller stage span, each pool task tagged with its lane,
    and the post-barrier [fleet.merge]. *)

val of_paper_pops :
  ?config:Engine.config ->
  ?config_of:(Ef_netsim.Scenario.t -> Engine.config) ->
  ?obs:Ef_obs.Registry.t ->
  ?profiler:Ef_health.Profiler.t ->
  unit ->
  t

val engines : t -> (string * Engine.t) list

val registries : t -> (string * Ef_obs.Registry.t) list
(** The per-engine registries, in engine order. *)

val registry : t -> Ef_obs.Registry.t
(** The fleet registry that {!run} merges into. *)

val run : ?jobs:int -> t -> (string * Metrics.t) list
(** Run every PoP to completion, [jobs] at a time ([jobs <= 1], the
    default, is the plain sequential path — no domain is spawned).
    Results keep scenario order regardless of [jobs]. If the fleet
    registry has journal sinks when [run] starts, engine events are
    buffered during the run and replayed into those sinks after the
    barrier, in engine order, with their original timestamps. [run] is
    intended to be called once per fleet: a second call would simulate a
    further day and merge the (cumulative) per-engine telemetry again.
    With an enabled profiler, per-lane busy seconds also land in the
    fleet registry as [pool.laneN.busy_s] gauges after the barrier. *)

type summary = {
  pops : int;
  offered_peak_bps : float;    (** sum of per-PoP peak offered traffic *)
  mean_detour_fraction : float; (** traffic-weighted across PoPs *)
  overloaded_ifaces : int;     (** interfaces that ever exceeded capacity *)
  overloaded_ifaces_bgp_only : int; (** same, had BGP alone decided *)
  total_overrides_installed : int;
}

val summarize : (string * Metrics.t) list -> summary
val summary_table : (string * Metrics.t) list -> Ef_stats.Table.t
(** Per-PoP rows plus a fleet totals row. *)
