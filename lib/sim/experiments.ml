module Bgp = Ef_bgp
module Ef = Edge_fabric
module Table = Ef_stats.Table
module Cdf = Ef_stats.Cdf
module Scenario = Ef_netsim.Scenario
module Topo_gen = Ef_netsim.Topo_gen
module Pop = Ef_netsim.Pop
module Iface = Ef_netsim.Iface
module Peer = Bgp.Peer

type run_params = {
  cycle_s : int;
  duration_s : int;
  seed : int;
  jobs : int;
}

let default_params =
  { cycle_s = 120; duration_s = Ef_util.Units.seconds_per_day; seed = 11; jobs = 1 }

let pct x = Printf.sprintf "%.1f%%" (100.0 *. x)
let gbps x = Printf.sprintf "%.1f" (Ef_util.Units.to_gbps x)

(* ------------------------------------------------------------------ *)
(* Cached worlds and daily runs                                        *)
(* ------------------------------------------------------------------ *)

let world_cache : (string, Topo_gen.world) Hashtbl.t = Hashtbl.create 8
let run_cache : (string, Metrics.t) Hashtbl.t = Hashtbl.create 8

let clear_cache () =
  Hashtbl.reset world_cache;
  Hashtbl.reset run_cache

let world_of scenario =
  let key = scenario.Scenario.scenario_name in
  match Hashtbl.find_opt world_cache key with
  | Some w -> w
  | None ->
      let w = Topo_gen.generate scenario.Scenario.topo in
      Hashtbl.replace world_cache key w;
      w

let engine_config ~params ~controller ?(controller_config = Ef.Config.default)
    ?(measure = false) () =
  Engine.make_config ~cycle_s:params.cycle_s ~duration_s:params.duration_s
    ~controller_enabled:controller ~controller_config ~measure_altpaths:measure
    ~seed:params.seed ()

(* cache key: everything that determines a run's result — note [jobs] is
   deliberately absent, results are jobs-invariant *)
let run_key ~controller ~controller_config ~params scenario =
  let cfg_tag =
    match controller_config with
    | None -> "default"
    | Some c -> Format.asprintf "%a" Ef.Config.pp c
  in
  Printf.sprintf "%s/ctrl=%b/%d/%d/%d/%s" scenario.Scenario.scenario_name
    controller params.cycle_s params.duration_s params.seed cfg_tag

let daily_run ?(controller = true) ?controller_config ~params scenario =
  let key = run_key ~controller ~controller_config ~params scenario in
  match Hashtbl.find_opt run_cache key with
  | Some m -> m
  | None ->
      let engine =
        Engine.create
          ~config:(engine_config ~params ~controller ?controller_config ())
          scenario
      in
      let m = Engine.run engine in
      Hashtbl.replace run_cache key m;
      m

(* Fill the run cache for a set of (controller, config, scenario) specs,
   [params.jobs] at a time. A no-op at jobs <= 1: the sequential path is
   exactly the lazy daily_run of old. Parallel runs give each engine a
   private registry (the shared one is unsafe across domains) and fold
   results and telemetry back on the calling domain in spec order, so
   cache contents and the default registry are independent of [jobs]. *)
let prewarm ~params specs =
  if params.jobs > 1 then begin
    let seen = Hashtbl.create 8 in
    let missing =
      List.filter
        (fun (controller, controller_config, scenario) ->
          let key = run_key ~controller ~controller_config ~params scenario in
          if Hashtbl.mem run_cache key || Hashtbl.mem seen key then false
          else begin
            Hashtbl.replace seen key ();
            true
          end)
        specs
    in
    if missing <> [] then begin
      let computed =
        Ef_util.Pool.with_pool ~jobs:params.jobs (fun pool ->
            Ef_util.Pool.map pool
              (fun (controller, controller_config, scenario) ->
                let reg = Ef_obs.Registry.create () in
                let engine =
                  Engine.create ~obs:reg
                    ~config:
                      (engine_config ~params ~controller ?controller_config ())
                    scenario
                in
                let m = Engine.run engine in
                ( run_key ~controller ~controller_config ~params scenario,
                  m,
                  reg ))
              missing)
      in
      List.iter
        (fun (key, m, reg) ->
          Hashtbl.replace run_cache key m;
          Ef_obs.Registry.merge ~into:(Ef_obs.Registry.default ()) reg)
        computed
    end
  end

(* ------------------------------------------------------------------ *)
(* E1: peering characterization (Table 1)                              *)
(* ------------------------------------------------------------------ *)

(* traffic share whose preferred route uses each neighbor kind *)
let preferred_kind_shares world =
  let rib = Pop.rib world.Topo_gen.pop in
  let shares = Hashtbl.create 4 in
  let total = ref 0.0 in
  List.iter
    (fun prefix ->
      let w = world.Topo_gen.prefix_weight prefix in
      total := !total +. w;
      match Bgp.Rib.best rib prefix with
      | None -> ()
      | Some route ->
          let kind = Bgp.Route.peer_kind route in
          let prev = Option.value (Hashtbl.find_opt shares kind) ~default:0.0 in
          Hashtbl.replace shares kind (prev +. w))
    world.Topo_gen.all_prefixes;
  fun kind ->
    if !total <= 0.0 then 0.0
    else Option.value (Hashtbl.find_opt shares kind) ~default:0.0 /. !total

let e1_peering () =
  let table =
    Table.create
      [ "pop"; "kind"; "peers"; "ifaces"; "capacity(Gbps)"; "traffic-share" ]
  in
  List.iter
    (fun scenario ->
      let world = world_of scenario in
      let pop = world.Topo_gen.pop in
      let share_of = preferred_kind_shares world in
      List.iter
        (fun kind ->
          let peers =
            List.filter (fun p -> Peer.kind p = kind) (Pop.peers pop)
          in
          let iface_ids =
            List.sort_uniq compare
              (List.map
                 (fun p -> Iface.id (Pop.iface_of_peer pop ~peer_id:(Peer.id p)))
                 peers)
          in
          let capacity =
            List.fold_left
              (fun acc id ->
                match Pop.interface pop id with
                | None -> acc
                | Some i -> acc +. Iface.capacity_bps i)
              0.0 iface_ids
          in
          Table.add_row table
            [
              Pop.name pop;
              Peer.kind_to_string kind;
              string_of_int (List.length peers);
              string_of_int (List.length iface_ids);
              gbps capacity;
              pct (share_of kind);
            ])
        Peer.all_kinds)
    Scenario.paper_pops;
  table

(* ------------------------------------------------------------------ *)
(* E2: route diversity (Fig. 2)                                        *)
(* ------------------------------------------------------------------ *)

let e2_route_diversity () =
  let table =
    Table.create [ "pop"; ">=1 route"; ">=2 routes"; ">=3 routes"; ">=4 routes" ]
  in
  List.iter
    (fun scenario ->
      let world = world_of scenario in
      let rib = Pop.rib world.Topo_gen.pop in
      let total = ref 0.0 in
      let at_least = Array.make 5 0.0 in
      List.iter
        (fun prefix ->
          let w = world.Topo_gen.prefix_weight prefix in
          total := !total +. w;
          let n = List.length (Bgp.Rib.ranked rib prefix) in
          for k = 1 to min n 4 do
            at_least.(k) <- at_least.(k) +. w
          done)
        world.Topo_gen.all_prefixes;
      Table.add_row table
        (Pop.name world.Topo_gen.pop
        :: List.map
             (fun k -> pct (if !total > 0.0 then at_least.(k) /. !total else 0.0))
             [ 1; 2; 3; 4 ]))
    Scenario.paper_pops;
  table

(* ------------------------------------------------------------------ *)
(* E3: preference mix (Fig. 3)                                         *)
(* ------------------------------------------------------------------ *)

let e3_preference_mix () =
  let table =
    Table.create [ "pop"; "private"; "public"; "route-server"; "transit"; "peer-total" ]
  in
  List.iter
    (fun scenario ->
      let world = world_of scenario in
      let share_of = preferred_kind_shares world in
      let p = share_of Peer.Private_peer
      and pub = share_of Peer.Public_peer
      and rs = share_of Peer.Route_server
      and tr = share_of Peer.Transit in
      Table.add_row table
        [
          Pop.name world.Topo_gen.pop;
          pct p;
          pct pub;
          pct rs;
          pct tr;
          pct (p +. pub +. rs);
        ])
    Scenario.paper_pops;
  table

(* ------------------------------------------------------------------ *)
(* E4: BGP-only overload (Fig. 4)                                      *)
(* ------------------------------------------------------------------ *)

let e4_bgp_only_overload ?(params = default_params) () =
  let table =
    Table.create
      [
        "pop";
        "ifaces";
        "peak-util p50";
        "peak-util p90";
        "peak-util max";
        "ifaces>100%";
        "ifaces>95%";
        "overflow avg(Gbps)";
      ]
  in
  prewarm ~params
    (List.map (fun s -> (false, None, s)) Scenario.paper_pops);
  List.iter
    (fun scenario ->
      let metrics = daily_run ~controller:false ~params scenario in
      let peaks = Metrics.peak_utilization metrics `Preferred in
      let cdf = Cdf.of_samples (List.map snd peaks) in
      let dropped =
        Metrics.total_dropped metrics `Preferred
        /. float_of_int (max 1 (Metrics.cycle_count metrics))
        /. 1e9
      in
      Table.add_row table
        [
          scenario.Scenario.scenario_name;
          string_of_int (List.length peaks);
          Printf.sprintf "%.2f" (Cdf.quantile cdf 0.5);
          Printf.sprintf "%.2f" (Cdf.quantile cdf 0.9);
          Printf.sprintf "%.2f" (Cdf.max cdf);
          pct (Metrics.overloaded_iface_fraction metrics `Preferred ~threshold:1.0);
          pct (Metrics.overloaded_iface_fraction metrics `Preferred ~threshold:0.95);
          Printf.sprintf "%.1f" dropped;
        ])
    Scenario.paper_pops;
  table

(* ------------------------------------------------------------------ *)
(* E5: detour volume with the controller on (Fig. 7)                   *)
(* ------------------------------------------------------------------ *)

let e5_detour_volume ?(params = default_params) () =
  let table =
    Table.create
      [
        "pop";
        "mean detoured";
        "peak detoured";
        "peak-util max (EF)";
        "ifaces>100% (EF)";
        "overflow(Gbps) EF";
        "overflow(Gbps) BGP-only";
      ]
  in
  prewarm ~params
    (List.concat_map
       (fun s -> [ (true, None, s); (false, None, s) ])
       Scenario.paper_pops);
  List.iter
    (fun scenario ->
      let on = daily_run ~controller:true ~params scenario in
      let off = daily_run ~controller:false ~params scenario in
      let series = Metrics.detour_fraction_series on in
      let peak_frac = List.fold_left (fun acc (_, f) -> Float.max acc f) 0.0 series in
      let peaks = Metrics.peak_utilization on `Actual in
      let max_peak = List.fold_left (fun acc (_, u) -> Float.max acc u) 0.0 peaks in
      let to_gb m mode =
        Metrics.total_dropped m mode
        /. float_of_int (max 1 (Metrics.cycle_count m))
        /. 1e9
      in
      Table.add_row table
        [
          scenario.Scenario.scenario_name;
          pct (Metrics.mean_detour_fraction on);
          pct peak_frac;
          Printf.sprintf "%.2f" max_peak;
          pct (Metrics.overloaded_iface_fraction on `Actual ~threshold:1.0);
          Printf.sprintf "%.2f" (to_gb on `Actual);
          Printf.sprintf "%.2f" (to_gb off `Preferred);
        ])
    Scenario.paper_pops;
  table

(* ------------------------------------------------------------------ *)
(* E6: where detours land (Fig. 8)                                     *)
(* ------------------------------------------------------------------ *)

let e6_detour_levels ?(params = default_params) () =
  let table =
    Table.create [ "pop"; "2nd choice"; "3rd choice"; "4th choice"; "5th+" ]
  in
  prewarm ~params
    (List.map (fun s -> (true, None, s)) Scenario.paper_pops);
  List.iter
    (fun scenario ->
      let metrics = daily_run ~controller:true ~params scenario in
      let shares = Metrics.detour_level_shares metrics in
      let share level =
        Option.value
          (Option.map snd (List.find_opt (fun (l, _) -> l = level) shares))
          ~default:0.0
      in
      let rest =
        List.fold_left
          (fun acc (l, s) -> if l >= 4 then acc +. s else acc)
          0.0 shares
      in
      Table.add_row table
        [
          scenario.Scenario.scenario_name;
          pct (share 1);
          pct (share 2);
          pct (share 3);
          pct rest;
        ])
    Scenario.paper_pops;
  table

(* ------------------------------------------------------------------ *)
(* E7: override churn and the hysteresis ablation (Fig. 9, A2)         *)
(* ------------------------------------------------------------------ *)

let churn_params params =
  (* churn needs controller-period fidelity: 30 s cycles over 6 hours
     bracketing the evening peak *)
  { params with cycle_s = 30; duration_s = 6 * 3600 }

let e7_override_churn ?(params = default_params) () =
  let params = churn_params params in
  let table =
    Table.create
      [
        "pop";
        "variant";
        "life p50(s)";
        "life p90(s)";
        "adds/cycle";
        "removes/cycle";
        "active mean";
      ]
  in
  let no_hysteresis =
    Ef.Config.make ~min_hold_s:0 ~release_margin:0.0 ()
  in
  let scenario = Scenario.pop_a in
  let variants =
    [ ("damped", Ef.Config.default); ("no-hysteresis", no_hysteresis) ]
  in
  prewarm ~params
    (List.map (fun (_, cfg) -> (true, Some cfg, scenario)) variants);
  List.iter
    (fun (variant, controller_config) ->
      let metrics = daily_run ~controller:true ~controller_config ~params scenario in
      let rows = Metrics.rows metrics in
      let cycles = float_of_int (max 1 (List.length rows)) in
      let adds =
        List.fold_left (fun acc r -> acc + r.Metrics.overrides_added) 0 rows
      in
      let removes =
        List.fold_left (fun acc r -> acc + r.Metrics.overrides_removed) 0 rows
      in
      let active_mean =
        List.fold_left
          (fun acc r -> acc +. float_of_int r.Metrics.overrides_active)
          0.0 rows
        /. cycles
      in
      let p50, p90 =
        match Metrics.lifetime_cdf metrics with
        | None -> ("-", "-")
        | Some cdf ->
            ( Printf.sprintf "%.0f" (Cdf.quantile cdf 0.5),
              Printf.sprintf "%.0f" (Cdf.quantile cdf 0.9) )
      in
      Table.add_row table
        [
          scenario.Scenario.scenario_name;
          variant;
          p50;
          p90;
          Printf.sprintf "%.2f" (float_of_int adds /. cycles);
          Printf.sprintf "%.2f" (float_of_int removes /. cycles);
          Printf.sprintf "%.1f" active_mean;
        ])
    variants;
  table

(* ------------------------------------------------------------------ *)
(* E8: alternate-path quality (Fig. 10)                                *)
(* ------------------------------------------------------------------ *)

let e8_altpath_quality ?(params = default_params) () =
  let table =
    Table.create
      [
        "pop";
        "prefixes compared";
        "alt better(<-5ms)";
        "equivalent";
        "alt worse(>+5ms)";
        "delta p25(ms)";
        "delta p50(ms)";
        "delta p75(ms)";
      ]
  in
  let scenario = Scenario.pop_a in
  let config =
    {
      (engine_config
         ~params:{ params with cycle_s = 60; duration_s = 2 * 3600 }
         ~controller:true ~measure:true ())
      with
      Engine.use_sampling = false;
      start_s = 18 * 3600;
    }
  in
  let engine = Engine.create ~config scenario in
  ignore (Engine.run engine);
  (match Engine.measurer engine with
  | None -> ()
  | Some m ->
      let comparisons =
        Ef_altpath.Measurer.comparisons m (Engine.snapshot_now engine)
      in
      let deltas = List.map (fun c -> c.Ef_altpath.Path_store.delta_ms) comparisons in
      match deltas with
      | [] -> Table.add_row table [ scenario.Scenario.scenario_name; "0" ]
      | _ ->
          let cdf = Cdf.of_samples deltas in
          let n = List.length deltas in
          let frac pred =
            float_of_int (List.length (List.filter pred deltas)) /. float_of_int n
          in
          Table.add_row table
            [
              scenario.Scenario.scenario_name;
              string_of_int n;
              pct (frac (fun d -> d < -5.0));
              pct (frac (fun d -> Float.abs d <= 5.0));
              pct (frac (fun d -> d > 5.0));
              Printf.sprintf "%.1f" (Cdf.quantile cdf 0.25);
              Printf.sprintf "%.1f" (Cdf.quantile cdf 0.5);
              Printf.sprintf "%.1f" (Cdf.quantile cdf 0.75);
            ]);
  table

(* ------------------------------------------------------------------ *)
(* E9: RTT impact on detoured prefixes (§6)                            *)
(* ------------------------------------------------------------------ *)

let e9_detour_rtt_impact ?(params = default_params) () =
  let table =
    Table.create
      [
        "pop";
        "detour samples";
        "improved";
        "within 5ms";
        "hurt >5ms";
        "delta p50(ms)";
        "delta p90(ms)";
      ]
  in
  let scenario = Scenario.pop_a in
  let config =
    {
      (engine_config
         ~params:{ params with cycle_s = 60; duration_s = 4 * 3600 }
         ~controller:true ())
      with
      Engine.start_s = 18 * 3600;
    }
  in
  let engine = Engine.create ~config scenario in
  let deltas = ref [] in
  let steps = 4 * 3600 / 60 in
  for _ = 1 to steps do
    ignore (Engine.step engine);
    match Engine.last_state engine with
    | None -> ()
    | Some st ->
        let latency = Engine.latency engine in
        let util_of proj iface_id =
          match
            List.find_opt
              (fun i -> Iface.id i = iface_id)
              (Ef.Projection.ifaces proj)
          with
          | None -> 0.0
          | Some iface -> Ef.Projection.utilization proj iface
        in
        List.iter
          (fun pl ->
            if pl.Ef.Projection.overridden then begin
              let prefix = pl.Ef.Projection.placed_prefix in
              let actual_rtt =
                Ef_netsim.Latency.rtt_ms latency prefix pl.Ef.Projection.route
                  ~utilization:
                    (util_of st.Engine.actual pl.Ef.Projection.iface_id)
              in
              match Ef.Projection.placement_of st.Engine.preferred prefix with
              | None -> ()
              | Some ppl ->
                  let pref_rtt =
                    Ef_netsim.Latency.rtt_ms latency prefix
                      ppl.Ef.Projection.route
                      ~utilization:
                        (util_of st.Engine.preferred ppl.Ef.Projection.iface_id)
                  in
                  deltas := (actual_rtt -. pref_rtt) :: !deltas
            end)
          (Ef.Projection.placements st.Engine.actual)
  done;
  (match !deltas with
  | [] -> Table.add_row table [ scenario.Scenario.scenario_name; "0" ]
  | ds ->
      let cdf = Cdf.of_samples ds in
      let n = List.length ds in
      let frac pred =
        float_of_int (List.length (List.filter pred ds)) /. float_of_int n
      in
      Table.add_row table
        [
          scenario.Scenario.scenario_name;
          string_of_int n;
          pct (frac (fun d -> d < -5.0));
          pct (frac (fun d -> Float.abs d <= 5.0));
          pct (frac (fun d -> d > 5.0));
          Printf.sprintf "%.1f" (Cdf.quantile cdf 0.5);
          Printf.sprintf "%.1f" (Cdf.quantile cdf 0.9);
        ]);
  table

(* ------------------------------------------------------------------ *)
(* E12: performance-aware routing (§7 extension)                       *)
(* ------------------------------------------------------------------ *)

let e12_perf_aware ?(params = default_params) () =
  let table =
    Table.create
      [
        "pop";
        "variant";
        "weighted RTT (ms)";
        "vs BGP-only (ms)";
        "perf overrides";
        "detoured";
      ]
  in
  let scenario = Scenario.pop_a in
  let run perf =
    let config =
      {
        (engine_config ~params:{ params with cycle_s = 60; duration_s = 2 * 3600 }
           ~controller:true ~measure:true ())
        with
        Engine.start_s = 18 * 3600;
        use_sampling = false;
        perf_aware = perf;
      }
    in
    let engine = Engine.create ~config scenario in
    Engine.run engine
  in
  List.iter
    (fun (variant, perf) ->
      let metrics = run perf in
      let rows = Metrics.rows metrics in
      let n = float_of_int (max 1 (List.length rows)) in
      let mean f = List.fold_left (fun acc r -> acc +. f r) 0.0 rows /. n in
      let rtt = mean (fun r -> r.Metrics.weighted_rtt_ms) in
      let rtt_pref = mean (fun r -> r.Metrics.weighted_rtt_preferred_ms) in
      let perf_n = mean (fun r -> float_of_int r.Metrics.perf_overrides_active) in
      Table.add_row table
        [
          scenario.Scenario.scenario_name;
          variant;
          Printf.sprintf "%.1f" rtt;
          Printf.sprintf "%+.1f" (rtt -. rtt_pref);
          Printf.sprintf "%.0f" perf_n;
          pct (Metrics.mean_detour_fraction metrics);
        ])
    [ ("capacity-only", false); ("perf-aware", true) ];
  table

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

(* A stressed controller input: the 20:00 snapshot with demand scaled up,
   so several interfaces overload at once and detours contend for the
   same alternates — the regime where allocator design choices diverge. *)
let stressed_snapshot ?(scale = 1.5) ~params scenario =
  let engine =
    Engine.create
      ~config:
        {
          (engine_config ~params ~controller:false ()) with
          Engine.start_s = 20 * 3600;
          use_sampling = false;
        }
      scenario
  in
  ignore (Engine.step engine);
  let snap = Engine.snapshot_now engine in
  let rates =
    List.map (fun (p, r) -> (p, r *. scale)) (Ef_collector.Snapshot.prefix_rates snap)
  in
  Ef_collector.Snapshot.of_pop
    (Engine.world engine).Topo_gen.pop ~prefix_rates:rates
    ~time_s:(Ef_collector.Snapshot.time_s snap)

(* A1: does skipping re-projection overload detour targets? Measured on
   stressed peak snapshots: run the allocator both ways on the same input. *)
let a1_single_pass ?(params = default_params) () =
  let table =
    Table.create
      [
        "pop";
        "variant";
        "overrides";
        "targets pushed >threshold";
        "max target util";
      ]
  in
  List.iter
    (fun scenario ->
      (* 3x peak: even transit headroom becomes contended, which is when
         deciding against stale loads (single-pass) piles detours onto
         the same target *)
      let snapshot = stressed_snapshot ~scale:3.0 ~params scenario in
      List.iter
        (fun (variant, iterative) ->
          let config = Ef.Config.make ~iterative () in
          let result = Ef.Allocator.run ~config snapshot in
          let threshold = Ef.Config.default.Ef.Config.overload_threshold in
          let pushed, max_util =
            List.fold_left
              (fun (pushed, max_util) iface ->
                let before_u = Ef.Projection.utilization result.Ef.Allocator.before iface in
                let after_u = Ef.Projection.utilization result.Ef.Allocator.final iface in
                ( (if before_u <= threshold && after_u > threshold then pushed + 1
                   else pushed),
                  if after_u > max_util then after_u else max_util ))
              (0, 0.0)
              (Ef.Projection.ifaces result.Ef.Allocator.final)
          in
          Table.add_row table
            [
              scenario.Scenario.scenario_name;
              variant;
              string_of_int (List.length result.Ef.Allocator.overrides);
              string_of_int pushed;
              Printf.sprintf "%.2f" max_util;
            ])
        [ ("iterative", true); ("single-pass", false) ])
    Scenario.paper_pops;
  table

let a3_threshold_sweep ?(params = default_params) () =
  (* five full-day runs: keep the sweep affordable with coarser cycles *)
  let params = { params with cycle_s = max params.cycle_s 300 } in
  let table =
    Table.create
      [ "threshold"; "mean detoured"; "peak-util max"; "ifaces>100%"; "overflow(Gbps)" ]
  in
  let scenario = Scenario.pop_a in
  let thresholds = [ 0.80; 0.85; 0.90; 0.95; 0.99 ] in
  prewarm ~params
    (List.map
       (fun th -> (true, Some (Ef.Config.make ~overload_threshold:th ()), scenario))
       thresholds);
  List.iter
    (fun threshold ->
      let controller_config =
        Ef.Config.make ~overload_threshold:threshold ()
      in
      let metrics = daily_run ~controller:true ~controller_config ~params scenario in
      let peaks = Metrics.peak_utilization metrics `Actual in
      let max_peak = List.fold_left (fun acc (_, u) -> Float.max acc u) 0.0 peaks in
      Table.add_row table
        [
          Printf.sprintf "%.2f" threshold;
          pct (Metrics.mean_detour_fraction metrics);
          Printf.sprintf "%.2f" max_peak;
          pct (Metrics.overloaded_iface_fraction metrics `Actual ~threshold:1.0);
          Printf.sprintf "%.2f"
            (Metrics.total_dropped metrics `Actual
            /. float_of_int (max 1 (Metrics.cycle_count metrics))
            /. 1e9);
        ])
    thresholds;
  table

let a4_granularity ?(params = default_params) () =
  let table =
    Table.create
      [
        "demand scale";
        "granularity";
        "overrides";
        "splits";
        "residual overloads";
        "max util";
      ]
  in
  (* sweep demand on the tightest PoP: at low stress whole prefixes
     always fit (no splits); just under capacity exhaustion, whole
     prefixes strand headroom that /24 children can still use; beyond
     total capacity neither can win *)
  let scenario = Scenario.pop_d in
  List.iter
    (fun scale ->
      let snapshot = stressed_snapshot ~scale ~params scenario in
      List.iter
        (fun (variant, granularity) ->
          let config = Ef.Config.make ~granularity () in
          let result = Ef.Allocator.run ~config snapshot in
          let max_util =
            List.fold_left
              (fun acc iface ->
                Float.max acc (Ef.Projection.utilization result.Ef.Allocator.final iface))
              0.0
              (Ef.Projection.ifaces result.Ef.Allocator.final)
          in
          Table.add_row table
            [
              Printf.sprintf "%.1fx" scale;
              variant;
              string_of_int (List.length result.Ef.Allocator.overrides);
              string_of_int result.Ef.Allocator.splits;
              string_of_int (List.length result.Ef.Allocator.residual);
              Printf.sprintf "%.2f" max_util;
            ])
        [ ("bgp-prefix", Ef.Config.Bgp_prefix); ("split-24", Ef.Config.Split_24) ])
    [ 3.0; 4.5; 5.0; 5.5; 6.0 ];
  (* fragmentation microcosm: one 11G prefix on a 10G port whose only
     alternates have 9.5G of headroom each — a whole-prefix move fits
     nowhere, /24 children spread across both alternates *)
  let micro_snapshot () =
    let pop =
      Pop.create ~name:"frag" ~region:Ef_netsim.Region.Na_east
        ~asn:(Bgp.Asn.of_int 64500) ()
    in
    let policy =
      Ef_policy.standard_import_map ~self_asn:(Bgp.Asn.of_int 64500)
    in
    let pni = Pop.add_interface pop ~name:"pni" ~capacity_bps:10e9 ~shared:false in
    let ixp = Pop.add_interface pop ~name:"ixp" ~capacity_bps:10e9 ~shared:true in
    let tr = Pop.add_interface pop ~name:"transit" ~capacity_bps:10e9 ~shared:false in
    let mk id name kind asn =
      Bgp.Peer.make ~id ~name ~asn:(Bgp.Asn.of_int asn) ~kind
        ~router_id:(Bgp.Ipv4.of_octets 10 0 0 id)
        ~session_addr:(Bgp.Ipv4.of_octets 172 16 0 id)
    in
    let p0 = mk 0 "pni" Bgp.Peer.Private_peer 100 in
    let p1 = mk 1 "ixp" Bgp.Peer.Public_peer 200 in
    let p2 = mk 2 "tr" Bgp.Peer.Transit 10 in
    Pop.add_peer pop p0 ~iface:pni ~policy;
    Pop.add_peer pop p1 ~iface:ixp ~policy;
    Pop.add_peer pop p2 ~iface:tr ~policy;
    let big = Bgp.Prefix.v "10.1.0.0/16" in
    let announce peer_id path =
      ignore
        (Pop.announce pop ~peer_id big
           (Bgp.Attrs.make
              ~as_path:(Bgp.As_path.of_list (List.map Bgp.Asn.of_int path))
              ~next_hop:(Bgp.Ipv4.of_octets 172 16 0 peer_id)
              ()))
    in
    announce 0 [ 100 ];
    announce 1 [ 200; 100 ];
    announce 2 [ 10; 100 ];
    Ef_collector.Snapshot.of_pop pop ~prefix_rates:[ (big, 11e9) ] ~time_s:0
  in
  List.iter
    (fun (variant, granularity) ->
      let config = Ef.Config.make ~granularity () in
      let result = Ef.Allocator.run ~config (micro_snapshot ()) in
      let max_util =
        List.fold_left
          (fun acc iface ->
            Float.max acc (Ef.Projection.utilization result.Ef.Allocator.final iface))
          0.0
          (Ef.Projection.ifaces result.Ef.Allocator.final)
      in
      Table.add_row table
        [
          "microcosm";
          variant;
          string_of_int (List.length result.Ef.Allocator.overrides);
          string_of_int result.Ef.Allocator.splits;
          string_of_int (List.length result.Ef.Allocator.residual);
          Printf.sprintf "%.2f" max_util;
        ])
    [ ("bgp-prefix", Ef.Config.Bgp_prefix); ("split-24", Ef.Config.Split_24) ];
  table

(* ------------------------------------------------------------------ *)

let run_all ?(params = default_params) () =
  let section id title table =
    Printf.printf "== %s: %s ==\n" id title;
    Table.print table
  in
  section "E1" "peering characterization (Table 1)" (e1_peering ());
  section "E2" "route diversity, traffic-weighted (Fig. 2)" (e2_route_diversity ());
  section "E3" "BGP preference mix (Fig. 3)" (e3_preference_mix ());
  section "E4" "projected overload under BGP alone (Fig. 4)"
    (e4_bgp_only_overload ~params ());
  section "E5" "detour volume with Edge Fabric (Fig. 7)"
    (e5_detour_volume ~params ());
  section "E6" "detour placement by preference level (Fig. 8)"
    (e6_detour_levels ~params ());
  section "E7" "override churn and hysteresis ablation (Fig. 9, A2)"
    (e7_override_churn ~params ());
  section "E8" "alternate-path RTT quality (Fig. 10)"
    (e8_altpath_quality ~params ());
  section "E9" "RTT impact of detours at peak (§6)"
    (e9_detour_rtt_impact ~params ());
  section "E12" "performance-aware routing extension (§7)"
    (e12_perf_aware ~params ());
  section "A1" "iterative vs single-pass allocator" (a1_single_pass ~params ());
  section "A3" "overload threshold sweep" (a3_threshold_sweep ~params ());
  section "A4" "detour granularity" (a4_granularity ~params ())
