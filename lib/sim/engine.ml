module Bgp = Ef_bgp
module Ef = Edge_fabric
module Obs = Ef_obs
module Snapshot = Ef_collector.Snapshot
open Ef_util

type peer_event = {
  event_peer_id : int;
  down_at_s : int;
  up_at_s : int;
}

type config = {
  cycle_s : int;
  duration_s : int;
  start_s : int;
  controller_enabled : bool;
  controller_config : Ef.Config.t;
  use_sampling : bool;
  sflow : Ef_traffic.Sflow.config;
  measure_altpaths : bool;
  measurer_config : Ef_altpath.Measurer.config;
  perf_aware : bool;
  perf_config : Ef_altpath.Perf_policy.config;
  policy : Ef_policy.program option;
  seed : int;
  events : Ef_traffic.Demand.event list;
  peer_events : peer_event list;
  faults : Ef_fault.Plan.t option;
  trace : Ef_trace.Recorder.t;
  health : Ef_health.Tracker.t;
}

let default_config =
  {
    cycle_s = 30;
    duration_s = Units.seconds_per_day;
    start_s = 0;
    controller_enabled = true;
    controller_config = Ef.Config.default;
    use_sampling = true;
    sflow = Ef_traffic.Sflow.default_config;
    measure_altpaths = false;
    measurer_config = Ef_altpath.Measurer.default_config;
    perf_aware = false;
    perf_config = Ef_altpath.Perf_policy.default_config;
    policy = None;
    seed = 1;
    events = [];
    peer_events = [];
    faults = None;
    trace = Ef_trace.Recorder.noop;
    health = Ef_health.Tracker.noop;
  }

let make_config ?(cycle_s = default_config.cycle_s)
    ?(duration_s = default_config.duration_s) ?(start_s = default_config.start_s)
    ?(controller_enabled = default_config.controller_enabled)
    ?(controller_config = default_config.controller_config)
    ?(use_sampling = default_config.use_sampling)
    ?(sflow = default_config.sflow)
    ?(measure_altpaths = default_config.measure_altpaths)
    ?(measurer_config = default_config.measurer_config)
    ?(perf_aware = default_config.perf_aware)
    ?(perf_config = default_config.perf_config) ?policy
    ?(seed = default_config.seed) ?(events = default_config.events)
    ?(peer_events = default_config.peer_events) ?faults
    ?(trace = default_config.trace) ?(health = default_config.health) () =
  {
    cycle_s;
    duration_s;
    start_s;
    controller_enabled;
    controller_config;
    use_sampling;
    sflow;
    measure_altpaths;
    measurer_config;
    perf_aware;
    perf_config;
    policy;
    seed;
    events;
    peer_events;
    faults;
    trace;
    health;
  }

let with_cycle_s cycle_s c = { c with cycle_s }
let with_duration_s duration_s c = { c with duration_s }
let with_start_s start_s c = { c with start_s }
let with_controller_enabled controller_enabled c = { c with controller_enabled }
let with_controller_config controller_config c = { c with controller_config }
let with_use_sampling use_sampling c = { c with use_sampling }
let with_sflow sflow c = { c with sflow }
let with_measure_altpaths measure_altpaths c = { c with measure_altpaths }
let with_measurer_config measurer_config c = { c with measurer_config }
let with_perf_aware perf_aware c = { c with perf_aware }
let with_perf_config perf_config c = { c with perf_config }
let with_policy policy c = { c with policy = Some policy }
let with_seed seed c = { c with seed }
let with_events events c = { c with events }
let with_peer_events peer_events c = { c with peer_events }
let with_faults faults c = { c with faults = Some faults }
let with_trace trace c = { c with trace }
let with_health health c = { c with health }

type placement_state = {
  actual : Ef.Projection.t;
  preferred : Ef.Projection.t;
  active_overrides : Ef.Override.t list;
}

(* resolved once per engine, same pattern as the controller's handles *)
type obs_handles = {
  reg : Obs.Registry.t;
  sp_step : Obs.Histogram.t;
  sp_demand : Obs.Histogram.t;
  sp_estimate : Obs.Histogram.t;
  sp_controller : Obs.Histogram.t;
  sp_placement : Obs.Histogram.t;
  sp_accounting : Obs.Histogram.t;
  c_steps : Obs.Counter.t;
  c_cycles_skipped : Obs.Counter.t;
  c_sess_failures : Obs.Counter.t;
  c_sess_retries : Obs.Counter.t;
  c_sess_reconnects : Obs.Counter.t;
  g_offered : Obs.Gauge.t;
  g_detoured : Obs.Gauge.t;
  g_dropped : Obs.Gauge.t;
}

let obs_handles reg =
  {
    reg;
    sp_step = Obs.Registry.span reg "engine.step";
    sp_demand = Obs.Registry.span reg "engine.demand";
    sp_estimate = Obs.Registry.span reg "engine.estimate";
    sp_controller = Obs.Registry.span reg "engine.controller";
    sp_placement = Obs.Registry.span reg "engine.placement";
    sp_accounting = Obs.Registry.span reg "engine.accounting";
    c_steps = Obs.Registry.counter reg "engine.steps";
    c_cycles_skipped = Obs.Registry.counter reg "engine.cycles_skipped";
    c_sess_failures = Obs.Registry.counter reg "collector.session.failures";
    c_sess_retries = Obs.Registry.counter reg "collector.session.retries";
    c_sess_reconnects = Obs.Registry.counter reg "collector.session.reconnects";
    g_offered = Obs.Registry.gauge reg "engine.offered_bps";
    g_detoured = Obs.Registry.gauge reg "engine.detoured_bps";
    g_dropped = Obs.Registry.gauge reg "engine.dropped_bps";
  }

type t = {
  config : config;
  world : Ef_netsim.Topo_gen.world;
  demand : Ef_traffic.Demand.t;
  latency : Ef_netsim.Latency.t;
  controller : Ef.Controller.t option;
  estimator : Ef_traffic.Rate_est.t;
  snmp : Ef_collector.Snmp.t;
  measurer : Ef_altpath.Measurer.t option;
  metrics : Metrics.t;
  obs : obs_handles;
  rng : Rng.t;
  mutable now : int;
  mutable last_state : placement_state option;
  (* failure injection: the full pre-outage table per peer, and which
     peers are currently down *)
  saved_routes : (int, (Bgp.Prefix.t * Bgp.Attrs.t) list) Hashtbl.t;
  mutable peers_down : int list;
  (* fault-plan injection (Ef_fault): link flaps keep their own saved
     tables so they compose with scheduled peer_events *)
  injector : Ef_fault.Injector.t option;
  flap_saved : (int, (Bgp.Prefix.t * Bgp.Attrs.t) list) Hashtbl.t;
  mutable flapped_down : int list;
  mutable last_ctl_snapshot : Snapshot.t option;
  bmp_session : Ef_collector.Retry.t;
  mutable cycles_skipped : int;
}

(* merge a policy's allocator-side denotation into the run's controller
   and perf configuration — the knob half of the compiled program (the
   route-map half was applied at world generation) *)
let apply_policy_params env policy config =
  let ap = Ef_policy.alloc_params env policy in
  let ctl = config.controller_config in
  let ctl =
    match ap.Ef_policy.ap_overload_threshold with
    | None -> ctl
    | Some v -> Ef.Config.with_overload_threshold v ctl
  in
  let ctl =
    match ap.Ef_policy.ap_iface_thresholds with
    | [] -> ctl
    | l -> Ef.Config.with_iface_thresholds l ctl
  in
  let guard = ctl.Ef.Config.guard in
  let guard =
    match ap.Ef_policy.ap_detour_budget with
    | None -> guard
    | Some v -> { guard with Ef.Guard.max_detour_fraction = Some v }
  in
  let guard =
    match ap.Ef_policy.ap_max_overrides with
    | None -> guard
    | Some v -> { guard with Ef.Guard.max_overrides = Some v }
  in
  let ctl = Ef.Config.with_guard guard ctl in
  let perf =
    Ef_altpath.Perf_policy.config_of_policy ~base:config.perf_config env policy
  in
  { config with controller_config = ctl; perf_config = perf }

let create ?(config = default_config) ?obs scenario =
  let reg = match obs with Some r -> r | None -> Obs.Registry.default () in
  (* a policy given in the engine config wins over the scenario's own
     declaration; either way the world is generated under the compiled
     route-map and the knob side lands on this run's configs *)
  let topo =
    match config.policy with
    | None -> scenario.Ef_netsim.Scenario.topo
    | Some p ->
        {
          scenario.Ef_netsim.Scenario.topo with
          Ef_netsim.Topo_gen.import_policy = Some p.Ef_policy.program_policy;
        }
  in
  let world = Ef_netsim.Topo_gen.generate topo in
  let config =
    match topo.Ef_netsim.Topo_gen.import_policy with
    | None -> config
    | Some pol ->
        apply_policy_params (Ef_netsim.Topo_gen.policy_env world) pol config
  in
  let demand =
    Ef_traffic.Demand.create ~events:config.events
      ~prefix_weight:world.Ef_netsim.Topo_gen.prefix_weight
      ~origin_region:world.Ef_netsim.Topo_gen.origin_region
      ~total_peak_bps:world.Ef_netsim.Topo_gen.total_peak_bps
      ~seed:(config.seed * 7919) ()
  in
  let latency =
    Ef_netsim.Latency.create
      ~pop_region:(Ef_netsim.Pop.region world.Ef_netsim.Topo_gen.pop)
      ~origin_region:world.Ef_netsim.Topo_gen.origin_region
      ~seed:(config.seed * 104729)
  in
  {
    config;
    world;
    demand;
    latency;
    controller =
      (if config.controller_enabled then
         Some
           (Ef.Controller.create ~config:config.controller_config ~obs:reg
              ~trace:config.trace
              ~name:(Ef_netsim.Pop.name world.Ef_netsim.Topo_gen.pop)
              ())
       else None);
    estimator = Ef_traffic.Rate_est.create config.sflow;
    snmp =
      Ef_collector.Snmp.create
        (Ef_netsim.Pop.interfaces world.Ef_netsim.Topo_gen.pop);
    measurer =
      (if config.measure_altpaths then
         Some
           (Ef_altpath.Measurer.create ~config:config.measurer_config
              ~seed:(config.seed * 31) ())
       else None);
    metrics = Metrics.create ();
    obs = obs_handles reg;
    rng = Rng.create (config.seed * 131);
    now = config.start_s;
    last_state = None;
    saved_routes = Hashtbl.create 8;
    peers_down = [];
    injector = Option.map Ef_fault.Injector.create config.faults;
    flap_saved = Hashtbl.create 8;
    flapped_down = [];
    last_ctl_snapshot = None;
    bmp_session = Ef_collector.Retry.create ();
    cycles_skipped = 0;
  }

let config t = t.config
let world t = t.world
let metrics t = t.metrics
let obs t = t.obs.reg
let demand t = t.demand
let latency t = t.latency
let measurer t = t.measurer
let controller t = t.controller
let now_s t = t.now
let last_state t = t.last_state
let injector t = t.injector
let bmp_session t = t.bmp_session
let cycles_skipped t = t.cycles_skipped

(* apply scheduled session outages/recoveries for the window ending now *)
let apply_peer_events t ~time_s =
  let pop = t.world.Ef_netsim.Topo_gen.pop in
  List.iter
    (fun ev ->
      let pid = ev.event_peer_id in
      let is_down = List.mem pid t.peers_down in
      if (not is_down) && time_s >= ev.down_at_s && time_s < ev.up_at_s then begin
        (* capture the table once, then flush like a session loss *)
        if not (Hashtbl.mem t.saved_routes pid) then
          Hashtbl.replace t.saved_routes pid
            (Bgp.Rib.adj_rib_in (Ef_netsim.Pop.rib pop) ~peer_id:pid);
        ignore (Ef_netsim.Pop.drop_peer pop ~peer_id:pid);
        t.peers_down <- pid :: t.peers_down
      end
      else if is_down && time_s >= ev.up_at_s then begin
        List.iter
          (fun (prefix, attrs) ->
            ignore (Ef_netsim.Pop.announce pop ~peer_id:pid prefix attrs))
          (Option.value (Hashtbl.find_opt t.saved_routes pid) ~default:[]);
        t.peers_down <- List.filter (fun id -> id <> pid) t.peers_down
      end)
    t.config.peer_events

(* take flapping links up and down: a downed link drops every session on
   it (routes flushed, exactly like apply_peer_events); when the outage
   window ends the sessions return and re-announce their saved tables *)
let apply_link_faults t ~time_s =
  match t.injector with
  | None -> ()
  | Some inj ->
      let pop = t.world.Ef_netsim.Topo_gen.pop in
      List.iter
        (fun iface ->
          let iface_id = Ef_netsim.Iface.id iface in
          let down = Ef_fault.Injector.link_down inj ~iface_id ~time_s in
          List.iter
            (fun peer ->
              let pid = Bgp.Peer.id peer in
              let is_down = List.mem pid t.flapped_down in
              if down && not is_down then begin
                if not (Hashtbl.mem t.flap_saved pid) then
                  Hashtbl.replace t.flap_saved pid
                    (Bgp.Rib.adj_rib_in (Ef_netsim.Pop.rib pop) ~peer_id:pid);
                ignore (Ef_netsim.Pop.drop_peer pop ~peer_id:pid);
                t.flapped_down <- pid :: t.flapped_down
              end
              else if (not down) && is_down then begin
                List.iter
                  (fun (prefix, attrs) ->
                    ignore (Ef_netsim.Pop.announce pop ~peer_id:pid prefix attrs))
                  (Option.value (Hashtbl.find_opt t.flap_saved pid) ~default:[]);
                Hashtbl.remove t.flap_saved pid;
                t.flapped_down <- List.filter (fun id -> id <> pid) t.flapped_down
              end)
            (Ef_netsim.Pop.peers_on_iface pop ~iface_id))
        (Ef_netsim.Pop.interfaces pop)

(* interface list as SNMP would report it under the active faults:
   capacity-derated copies for degraded links, floored at 1 bps so
   utilization stays well-defined on a fully-down link *)
let eff_ifaces t ~time_s =
  let ifaces = Ef_netsim.Pop.interfaces t.world.Ef_netsim.Topo_gen.pop in
  match t.injector with
  | None -> ifaces
  | Some inj ->
      List.map
        (fun iface ->
          let factor =
            Ef_fault.Injector.capacity_factor inj
              ~iface_id:(Ef_netsim.Iface.id iface) ~time_s
          in
          if factor >= 1.0 then iface
          else
            Ef_netsim.Iface.make
              ~id:(Ef_netsim.Iface.id iface)
              ~name:(Ef_netsim.Iface.name iface)
              ~capacity_bps:
                (Float.max 1.0 (Ef_netsim.Iface.capacity_bps iface *. factor))
              ~shared:(Ef_netsim.Iface.shared iface))
        ifaces

let rate_floor = 1_000.0 (* ignore demand under 1 kbps *)

let true_rates t ~time_s =
  List.filter_map
    (fun prefix ->
      let rate = Ef_traffic.Demand.rate_bps t.demand prefix ~time_s in
      if rate > rate_floor then Some (prefix, rate) else None)
    t.world.Ef_netsim.Topo_gen.all_prefixes

let estimated_rates t ~truth ~time_s =
  if not t.config.use_sampling then truth
  else begin
    let drop, burst =
      match t.injector with
      | None -> (0.0, 1.0)
      | Some inj ->
          ( Ef_fault.Injector.sflow_drop_fraction inj ~time_s,
            Ef_fault.Injector.sflow_burst_multiplier inj ~time_s )
    in
    let samples =
      List.map
        (fun (prefix, rate) ->
          Ef_traffic.Sflow.sample_rate t.config.sflow t.rng ~prefix
            ~rate_bps:(rate *. burst))
        truth
    in
    (* sample loss draws from the injector's own rng, after the workload
       sampling above — fault randomness never shifts the workload stream *)
    let samples =
      match t.injector with
      | Some inj when drop > 0.0 ->
          let frng = Ef_fault.Injector.rng inj in
          List.filter (fun _ -> Rng.float frng 1.0 >= drop) samples
      | _ -> samples
    in
    Ef_traffic.Rate_est.observe t.estimator samples;
    Ef_traffic.Rate_est.tick_absent t.estimator;
    Ef_traffic.Rate_est.drop_below t.estimator (rate_floor /. 10.0);
    Ef_traffic.Rate_est.snapshot t.estimator
    |> List.filter (fun (_, r) -> r > rate_floor)
  end

let snapshot_of_rates ?ifaces t rates ~time_s =
  Snapshot.of_pop ~obs:t.obs.reg ?ifaces t.world.Ef_netsim.Topo_gen.pop
    ~prefix_rates:rates ~time_s

let snapshot_now t =
  let time_s = t.now in
  let truth = true_rates t ~time_s in
  snapshot_of_rates ~ifaces:(eff_ifaces t ~time_s) t
    (estimated_rates t ~truth ~time_s)
    ~time_s

let iface_stats ~ifaces ~actual ~preferred =
  List.map
    (fun iface ->
      let id = Ef_netsim.Iface.id iface in
      {
        Metrics.u_iface_id = id;
        capacity_bps = Ef_netsim.Iface.capacity_bps iface;
        actual_bps = Ef.Projection.load_bps actual ~iface_id:id;
        preferred_bps = Ef.Projection.load_bps preferred ~iface_id:id;
      })
    ifaces

let dropped_bps proj ifaces =
  List.fold_left
    (fun acc iface ->
      let load =
        Ef.Projection.load_bps proj ~iface_id:(Ef_netsim.Iface.id iface)
      in
      acc +. Float.max 0.0 (load -. Ef_netsim.Iface.capacity_bps iface))
    0.0 ifaces

(* traffic-weighted mean RTT of a placement, with congestion *)
let weighted_rtt t proj ~ifaces =
  let util_of iface_id =
    match List.find_opt (fun i -> Ef_netsim.Iface.id i = iface_id) ifaces with
    | None -> 0.0
    | Some iface -> Ef.Projection.utilization proj iface
  in
  let total, weighted =
    List.fold_left
      (fun (total, weighted) pl ->
        let rtt =
          Ef_netsim.Latency.rtt_ms t.latency pl.Ef.Projection.placed_prefix
            pl.Ef.Projection.route
            ~utilization:(util_of pl.Ef.Projection.iface_id)
        in
        ( total +. pl.Ef.Projection.rate_bps,
          weighted +. (pl.Ef.Projection.rate_bps *. rtt) ))
      (0.0, 0.0) (Ef.Projection.placements proj)
  in
  if total <= 0.0 then 0.0 else weighted /. total

let detour_levels active_overrides actual =
  let level_of = Ef.Override.level_of active_overrides in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun pl ->
      if pl.Ef.Projection.overridden then
        match level_of pl.Ef.Projection.placed_prefix with
        | None -> ()
        | Some level ->
            let prev = Option.value (Hashtbl.find_opt tbl level) ~default:0.0 in
            Hashtbl.replace tbl level (prev +. pl.Ef.Projection.rate_bps))
    (Ef.Projection.placements actual);
  Hashtbl.fold (fun level bps acc -> (level, bps) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let step t =
  let ob = t.obs in
  Obs.Span.time_h ob.reg ob.sp_step @@ fun () ->
  let time_s = t.now in
  apply_peer_events t ~time_s;
  apply_link_faults t ~time_s;
  let fault_ifaces = eff_ifaces t ~time_s in
  let truth =
    Obs.Span.time_h ob.reg ob.sp_demand (fun () -> true_rates t ~time_s)
  in
  let est =
    Obs.Span.time_h ob.reg ob.sp_estimate (fun () ->
        estimated_rates t ~truth ~time_s)
  in
  (* collector feed faults: a BMP stall freezes the controller's view at
     the last snapshot assembled before the stall (its timestamp included,
     so snapshot age accumulates and the controller's staleness guard can
     fire); the session retry machine backs off against the stall *)
  let stalled, skipped, delay_s =
    match t.injector with
    | None -> (false, false, 0)
    | Some inj ->
        ( Ef_fault.Injector.bmp_stalled inj ~time_s,
          Ef_fault.Injector.cycle_skipped inj ~time_s,
          Ef_fault.Injector.cycle_delay_s inj ~time_s )
  in
  let fresh_snapshot = snapshot_of_rates ~ifaces:fault_ifaces t est ~time_s in
  let ctl_snapshot =
    if stalled then Option.value t.last_ctl_snapshot ~default:fresh_snapshot
    else begin
      t.last_ctl_snapshot <- Some fresh_snapshot;
      fresh_snapshot
    end
  in
  if stalled then begin
    if Ef_collector.Retry.healthy t.bmp_session then begin
      Ef_collector.Retry.on_failure t.bmp_session ~time_s;
      Obs.Counter.inc ob.c_sess_failures
    end
    else if Ef_collector.Retry.should_retry t.bmp_session ~time_s then begin
      Obs.Counter.inc ob.c_sess_retries;
      Ef_collector.Retry.on_failure t.bmp_session ~time_s;
      Obs.Counter.inc ob.c_sess_failures
    end
  end
  else if not (Ef_collector.Retry.healthy t.bmp_session) then begin
    Ef_collector.Retry.on_success t.bmp_session;
    Obs.Counter.inc ob.c_sess_reconnects
  end;

  (* controller round — a skipped cycle holds the installed override set
     untouched; a delayed cycle runs against a view [delay_s] old *)
  let ctl_t0 = Obs.Clock.now_ns () in
  let active, added, removed, residual, ctl_violations, ctl_degraded =
    Obs.Span.time_h ob.reg ob.sp_controller @@ fun () ->
    match t.controller with
    | None -> ([], 0, 0, 0, 0, None)
    | Some ctrl ->
        if skipped then begin
          t.cycles_skipped <- t.cycles_skipped + 1;
          Obs.Counter.inc ob.c_cycles_skipped;
          (Ef.Controller.active_overrides ctrl, 0, 0, 0, 0, None)
        end
        else begin
          let now_s = time_s + delay_s in
          let stats = Ef.Controller.cycle ~now_s ctrl ctl_snapshot in
          Metrics.record_removals t.metrics
            (List.map
               (fun (o, age) ->
                 {
                   Metrics.removed_prefix = o.Ef.Override.prefix;
                   lifetime_s = age;
                 })
               (Ef.Controller.overrides_removed stats));
          ( Ef.Controller.overrides_enforced stats,
            List.length (Ef.Controller.overrides_added stats),
            List.length (Ef.Controller.overrides_removed stats),
            List.length (Ef.Controller.residual_overloads stats),
            List.length (Ef.Controller.guard_violations stats),
            Ef.Controller.degraded stats )
        end
  in
  (* health tracking: one observation per controller round, fed with the
     round's wall time and the deterministic impairment signals *)
  (if Ef_health.Tracker.enabled t.config.health && t.controller <> None then
     let duration_s = Obs.Clock.elapsed_s ctl_t0 in
     ignore
       (Ef_health.Tracker.observe_cycle t.config.health
          {
            Ef_health.Tracker.time_s;
            duration_s;
            degraded = ctl_degraded <> None;
            skipped;
            stale = not (Ef_collector.Retry.healthy t.bmp_session);
            violations = ctl_violations;
            residual;
          }));

  (* performance-aware stage (§7): steer measured-faster prefixes, but
     never fight a capacity override and never breach the capacity guard *)
  let perf_overrides =
    match (t.config.perf_aware, t.measurer) with
    | true, Some m ->
        let capacity_placement =
          Ef.Projection.project ~overrides:(Ef.Override.lookup active)
            ctl_snapshot
        in
        let capacity_prefixes =
          List.fold_left
            (fun acc (o : Ef.Override.t) ->
              Bgp.Ptrie.add o.Ef.Override.prefix () acc)
            Bgp.Ptrie.empty active
        in
        Ef_altpath.Perf_policy.suggest ~config:t.config.perf_config
          (Ef_altpath.Measurer.store m) ctl_snapshot
          ~projection:capacity_placement
        |> List.filter (fun (s : Ef_altpath.Perf_policy.suggestion) ->
               not (Bgp.Ptrie.mem s.Ef_altpath.Perf_policy.sug_prefix capacity_prefixes))
        |> Ef_altpath.Perf_policy.to_overrides ~snapshot:ctl_snapshot
             ~projection:capacity_placement
    | _ -> []
  in
  let active = active @ perf_overrides in

  (* ground truth placement under the enforced overrides *)
  let true_snapshot, actual, preferred =
    Obs.Span.time_h ob.reg ob.sp_placement @@ fun () ->
    let true_snapshot = snapshot_of_rates t truth ~time_s in
    let actual =
      Ef.Projection.project ~overrides:(Ef.Override.lookup active) true_snapshot
    in
    (true_snapshot, actual, Ef.Projection.project true_snapshot)
  in
  let ifaces = fault_ifaces in

  (* close the provenance loop: the controller committed this step's trace
     cycle from its estimated view; annotate it with the ground-truth
     egress the placement actually produced (skipped cycles committed
     nothing new, so there is nothing to annotate) *)
  (if
     Ef_trace.Recorder.enabled t.config.trace
     && t.controller <> None && not skipped
   then
     Ef_trace.Recorder.annotate_actual t.config.trace
       (List.map
          (fun iface ->
            let id = Ef_netsim.Iface.id iface in
            (id, Ef.Projection.load_bps actual ~iface_id:id))
          ifaces));

  Obs.Span.time_h ob.reg ob.sp_accounting (fun () ->
      (* SNMP counters see the actual egress volumes *)
      List.iter
        (fun iface ->
          let id = Ef_netsim.Iface.id iface in
          Ef_collector.Snmp.account_rate t.snmp ~iface_id:id
            ~rate_bps:(Ef.Projection.load_bps actual ~iface_id:id)
            ~interval_s:(float_of_int t.config.cycle_s))
        ifaces;
      ignore
        (Ef_collector.Snmp.poll t.snmp ~interval_s:(float_of_int t.config.cycle_s));

      (* alternate-path measurement sees post-placement congestion *)
      match t.measurer with
      | None -> ()
      | Some m ->
          let util_of iface_id =
            match
              List.find_opt (fun i -> Ef_netsim.Iface.id i = iface_id) ifaces
            with
            | None -> 0.0
            | Some iface -> Ef.Projection.utilization actual iface
          in
          ignore
            (Ef_altpath.Measurer.cycle m true_snapshot ~latency:t.latency
               ~utilization:util_of));

  let row =
    {
      Metrics.row_time_s = time_s;
      offered_bps = List.fold_left (fun acc (_, r) -> acc +. r) 0.0 truth;
      detoured_bps = Ef.Projection.overridden_bps actual;
      overrides_active = List.length active;
      overrides_added = added;
      overrides_removed = removed;
      ifaces = iface_stats ~ifaces ~actual ~preferred;
      dropped_bps = dropped_bps actual ifaces;
      dropped_preferred_bps = dropped_bps preferred ifaces;
      weighted_rtt_ms = weighted_rtt t actual ~ifaces;
      weighted_rtt_preferred_ms = weighted_rtt t preferred ~ifaces;
      residual_overloads = residual;
      detour_levels = detour_levels active actual;
      perf_overrides_active = List.length perf_overrides;
    }
  in
  Metrics.record t.metrics row;
  Obs.Counter.inc ob.c_steps;
  Obs.Gauge.set ob.g_offered row.Metrics.offered_bps;
  Obs.Gauge.set ob.g_detoured row.Metrics.detoured_bps;
  Obs.Gauge.set ob.g_dropped row.Metrics.dropped_bps;
  if Obs.Registry.has_sinks ob.reg then begin
    let fields =
      [
        ("time_s", Obs.Json.Int time_s);
        ("offered_bps", Obs.Json.Float row.Metrics.offered_bps);
        ("detoured_bps", Obs.Json.Float row.Metrics.detoured_bps);
        ("dropped_bps", Obs.Json.Float row.Metrics.dropped_bps);
        ("overrides_active", Obs.Json.Int row.Metrics.overrides_active);
        ("residual_overloads", Obs.Json.Int row.Metrics.residual_overloads);
      ]
      @ (match ctl_degraded with
        | None -> []
        | Some reason ->
            [
              ( "degraded",
                Obs.Json.String (Ef.Controller.degradation_reason reason) );
            ])
      @
      match t.injector with
      | None -> []
      | Some inj -> (
          match Ef_fault.Injector.active_labels inj ~time_s with
          | [] -> []
          | labels ->
              [
                ( "faults",
                  Obs.Json.List (List.map (fun l -> Obs.Json.String l) labels)
                );
              ])
    in
    Obs.Registry.emit ob.reg ~name:"engine.step" fields
  end;
  t.last_state <- Some { actual; preferred; active_overrides = active };
  t.now <- t.now + t.config.cycle_s;
  row

let run t =
  let steps = t.config.duration_s / t.config.cycle_s in
  for _ = 1 to steps do
    ignore (step t)
  done;
  t.metrics
