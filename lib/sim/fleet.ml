module Scenario = Ef_netsim.Scenario
module Obs = Ef_obs

type t = {
  engines : (string * Engine.t) list;
  regs : (string * Obs.Registry.t) list; (* same order as [engines] *)
  fleet_obs : Obs.Registry.t;
  profiler : Ef_health.Profiler.t;
  (* journal buffers, attached lazily on the first run that has sinks *)
  mutable buffers : (unit -> Obs.Event.t list) list option;
}

let create ?(config = Engine.default_config) ?config_of ?obs
    ?(profiler = Ef_health.Profiler.noop) scenarios =
  let fleet_obs =
    match obs with Some r -> r | None -> Obs.Registry.default ()
  in
  (* Every engine owns a private registry: engines may run on separate
     domains, and the shared registry is unsynchronized mutable state.
     After a run the per-PoP registries are folded into [fleet_obs]. An
     enabled profiler taps every per-engine registry (its event buffer is
     mutex-guarded, so cross-domain recording is safe) plus the fleet
     registry itself for the post-barrier merge span. *)
  let members =
    List.map
      (fun s ->
        let reg = Obs.Registry.create () in
        Ef_health.Profiler.attach profiler reg;
        let config =
          match config_of with Some f -> f s | None -> config
        in
        (s.Scenario.scenario_name, Engine.create ~config ~obs:reg s, reg))
      scenarios
  in
  Ef_health.Profiler.attach profiler fleet_obs;
  {
    engines = List.map (fun (name, engine, _) -> (name, engine)) members;
    regs = List.map (fun (name, _, reg) -> (name, reg)) members;
    fleet_obs;
    profiler;
    buffers = None;
  }

let of_paper_pops ?config ?config_of ?obs ?profiler () =
  create ?config ?config_of ?obs ?profiler Scenario.paper_pops

let engines t = t.engines
let registries t = t.regs
let registry t = t.fleet_obs

let run ?(jobs = 1) t =
  (* When the fleet registry journals somewhere, buffer each engine's
     events privately during the run and replay them into the fleet sinks
     in engine order after the barrier — the journal is then independent
     of scheduling, and of [jobs]. *)
  (if t.buffers = None && Obs.Registry.has_sinks t.fleet_obs then
     t.buffers <-
       Some
         (List.map
            (fun (_, reg) ->
              let sink, events = Obs.Registry.memory_sink () in
              Obs.Registry.add_sink reg sink;
              events)
            t.regs));
  let work ((name, engine), (_, reg)) =
    let metrics =
      Obs.Span.time ~registry:reg "fleet.pop_run" (fun () ->
          Engine.run engine)
    in
    Obs.Counter.inc (Obs.Registry.counter reg "fleet.pops_run");
    (name, metrics)
  in
  let members = List.combine t.engines t.regs in
  (* the process-wide pool: worker domains spawn on the first parallel
     run and persist across runs (and bench iterations) — repeated
     Fleet.runs stop paying a domain spawn/join each *)
  let pool = if jobs <= 1 then None else Some (Ef_util.Pool.global ~jobs ()) in
  let results =
    match pool with
    | None -> List.map work members
    | Some pool ->
        (* per-lane attribution: each pool task runs inside a profiler span
           tagged with its executing lane, so the trace shows which domain
           ran which PoP and how busy each lane was. The wrap is per-call —
           the shared pool carries no per-fleet state *)
        let wrap ~lane task =
          Ef_health.Profiler.span ~lane t.profiler ~name:"pool.task" task
        in
        Ef_util.Pool.map ~wrap pool work members
  in
  (* after the barrier: deterministic fold of the per-PoP telemetry into
     the fleet view — pairwise tree reduction in engine order, so the
     merge itself parallelizes while staying independent of [jobs] *)
  Ef_health.Profiler.span t.profiler ~name:"fleet.merge" (fun () ->
      Obs.Registry.merge_tree ?pool ~into:t.fleet_obs (List.map snd t.regs));
  (match t.buffers with
  | None -> ()
  | Some buffers ->
      List.iter
        (fun events -> Obs.Registry.dispatch_all t.fleet_obs (events ()))
        buffers);
  (* lane busy-time summary lands in the fleet registry as gauges, so the
     multicore cost attribution survives into --metrics/--prom-out *)
  List.iter
    (fun (lane, busy_s) ->
      Obs.Gauge.set
        (Obs.Registry.gauge t.fleet_obs (Printf.sprintf "pool.lane%d.busy_s" lane))
        busy_s)
    (Ef_health.Profiler.lane_busy_s t.profiler);
  results

let overloaded_count metrics mode =
  List.length
    (List.filter (fun (_, u) -> u > 1.0) (Metrics.peak_utilization metrics mode))

type summary = {
  pops : int;
  offered_peak_bps : float;
  mean_detour_fraction : float;
  overloaded_ifaces : int;
  overloaded_ifaces_bgp_only : int;
  total_overrides_installed : int;
}

let peak_offered metrics =
  List.fold_left
    (fun acc row -> Float.max acc row.Metrics.offered_bps)
    0.0 (Metrics.rows metrics)

let mean_offered metrics =
  match Metrics.rows metrics with
  | [] -> 0.0
  | rows ->
      List.fold_left (fun acc r -> acc +. r.Metrics.offered_bps) 0.0 rows
      /. float_of_int (List.length rows)

let installed metrics =
  List.fold_left
    (fun acc r -> acc + r.Metrics.overrides_added)
    0 (Metrics.rows metrics)

let summarize results =
  let total_mean_offered =
    List.fold_left (fun acc (_, m) -> acc +. mean_offered m) 0.0 results
  in
  {
    pops = List.length results;
    offered_peak_bps =
      List.fold_left (fun acc (_, m) -> acc +. peak_offered m) 0.0 results;
    mean_detour_fraction =
      (if total_mean_offered <= 0.0 then 0.0
       else
         List.fold_left
           (fun acc (_, m) ->
             acc +. (Metrics.mean_detour_fraction m *. mean_offered m))
           0.0 results
         /. total_mean_offered);
    overloaded_ifaces =
      List.fold_left (fun acc (_, m) -> acc + overloaded_count m `Actual) 0 results;
    overloaded_ifaces_bgp_only =
      List.fold_left
        (fun acc (_, m) -> acc + overloaded_count m `Preferred)
        0 results;
    total_overrides_installed =
      List.fold_left (fun acc (_, m) -> acc + installed m) 0 results;
  }

let summary_table results =
  let table =
    Ef_stats.Table.create
      [
        "pop";
        "peak offered";
        "mean detoured";
        "ifaces>100%";
        "ifaces>100% (BGP-only)";
        "overrides installed";
      ]
  in
  List.iter
    (fun (name, m) ->
      Ef_stats.Table.add_row table
        [
          name;
          Ef_util.Units.rate_to_string (peak_offered m);
          Format.asprintf "%a" Ef_util.Units.pp_percent
            (Metrics.mean_detour_fraction m);
          string_of_int (overloaded_count m `Actual);
          string_of_int (overloaded_count m `Preferred);
          string_of_int (installed m);
        ])
    results;
  let s = summarize results in
  Ef_stats.Table.add_row table
    [
      "FLEET";
      Ef_util.Units.rate_to_string s.offered_peak_bps;
      Format.asprintf "%a" Ef_util.Units.pp_percent s.mean_detour_fraction;
      string_of_int s.overloaded_ifaces;
      string_of_int s.overloaded_ifaces_bgp_only;
      string_of_int s.total_overrides_installed;
    ];
  table
