module Scenario = Ef_netsim.Scenario
module Obs = Ef_obs

type t = {
  engines : (string * Engine.t) list;
}

let create ?(config = Engine.default_config) ?obs scenarios =
  {
    engines =
      List.map
        (fun s -> (s.Scenario.scenario_name, Engine.create ~config ?obs s))
        scenarios;
  }

let of_paper_pops ?config ?obs () = create ?config ?obs Scenario.paper_pops
let engines t = t.engines

let run t =
  List.map
    (fun (name, engine) ->
      let reg = Engine.obs engine in
      let metrics =
        Obs.Span.time ~registry:reg "fleet.pop_run" (fun () ->
            Engine.run engine)
      in
      Obs.Counter.inc (Obs.Registry.counter reg "fleet.pops_run");
      (name, metrics))
    t.engines

let overloaded_count metrics mode =
  List.length
    (List.filter (fun (_, u) -> u > 1.0) (Metrics.peak_utilization metrics mode))

type summary = {
  pops : int;
  offered_peak_bps : float;
  mean_detour_fraction : float;
  overloaded_ifaces : int;
  overloaded_ifaces_bgp_only : int;
  total_overrides_installed : int;
}

let peak_offered metrics =
  List.fold_left
    (fun acc row -> Float.max acc row.Metrics.offered_bps)
    0.0 (Metrics.rows metrics)

let mean_offered metrics =
  match Metrics.rows metrics with
  | [] -> 0.0
  | rows ->
      List.fold_left (fun acc r -> acc +. r.Metrics.offered_bps) 0.0 rows
      /. float_of_int (List.length rows)

let installed metrics =
  List.fold_left
    (fun acc r -> acc + r.Metrics.overrides_added)
    0 (Metrics.rows metrics)

let summarize results =
  let total_mean_offered =
    List.fold_left (fun acc (_, m) -> acc +. mean_offered m) 0.0 results
  in
  {
    pops = List.length results;
    offered_peak_bps =
      List.fold_left (fun acc (_, m) -> acc +. peak_offered m) 0.0 results;
    mean_detour_fraction =
      (if total_mean_offered <= 0.0 then 0.0
       else
         List.fold_left
           (fun acc (_, m) ->
             acc +. (Metrics.mean_detour_fraction m *. mean_offered m))
           0.0 results
         /. total_mean_offered);
    overloaded_ifaces =
      List.fold_left (fun acc (_, m) -> acc + overloaded_count m `Actual) 0 results;
    overloaded_ifaces_bgp_only =
      List.fold_left
        (fun acc (_, m) -> acc + overloaded_count m `Preferred)
        0 results;
    total_overrides_installed =
      List.fold_left (fun acc (_, m) -> acc + installed m) 0 results;
  }

let summary_table results =
  let table =
    Ef_stats.Table.create
      [
        "pop";
        "peak offered";
        "mean detoured";
        "ifaces>100%";
        "ifaces>100% (BGP-only)";
        "overrides installed";
      ]
  in
  List.iter
    (fun (name, m) ->
      Ef_stats.Table.add_row table
        [
          name;
          Ef_util.Units.rate_to_string (peak_offered m);
          Format.asprintf "%a" Ef_util.Units.pp_percent
            (Metrics.mean_detour_fraction m);
          string_of_int (overloaded_count m `Actual);
          string_of_int (overloaded_count m `Preferred);
          string_of_int (installed m);
        ])
    results;
  let s = summarize results in
  Ef_stats.Table.add_row table
    [
      "FLEET";
      Ef_util.Units.rate_to_string s.offered_peak_bps;
      Format.asprintf "%a" Ef_util.Units.pp_percent s.mean_detour_fraction;
      string_of_int s.overloaded_ifaces;
      string_of_int s.overloaded_ifaces_bgp_only;
      string_of_int s.total_overrides_installed;
    ];
  table
