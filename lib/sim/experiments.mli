(** Experiment drivers: one per table/figure of the paper's evaluation.

    Each [eN_*] builds the data for one artifact (see DESIGN.md's index)
    and returns it as a rendered {!Ef_stats.Table.t}; [run_all] prints the
    whole evaluation. Daily simulation runs are cached per (scenario,
    configuration), so the drivers that share a run (E5/E6/E7) pay for it
    once.

    Defaults are sized to regenerate every artifact in about a minute on
    a laptop; the duration/cycle parameters let the CLI ask for the
    paper's full 30-second fidelity. *)

type run_params = {
  cycle_s : int;
  duration_s : int;
  seed : int;
  jobs : int;
      (** Domains used by {!prewarm} to fill the run cache in parallel.
          Results are identical for every value; 1 = fully sequential. *)
}

val default_params : run_params
(** 120 s cycles over one simulated day, [jobs = 1]. *)

val prewarm :
  params:run_params ->
  (bool * Edge_fabric.Config.t option * Ef_netsim.Scenario.t) list ->
  unit
(** [prewarm ~params specs] fills the daily-run cache for each
    [(controller, controller_config, scenario)] spec, [params.jobs] runs
    at a time on separate domains. Pass the {e same} [controller_config]
    option the later driver will use — [None] and [Some Ef.Config.default]
    are distinct cache keys. A no-op when [params.jobs <= 1], so the
    sequential path is untouched. Parallel runs use private telemetry
    registries, folded into the default registry in spec order after the
    barrier; cache contents and telemetry are independent of [jobs]. *)

(* -- static characterization ---------------------------------------- *)

val e1_peering : unit -> Ef_stats.Table.t
(** Table 1: per PoP and neighbor kind — peers, interfaces, capacity and
    the share of traffic whose BGP-preferred route uses that kind. *)

val e2_route_diversity : unit -> Ef_stats.Table.t
(** Fig. 2: fraction of traffic to prefixes with >= k usable egress
    routes, per PoP. *)

val e3_preference_mix : unit -> Ef_stats.Table.t
(** Fig. 3: traffic share whose preferred route is peer vs transit. *)

(* -- dynamic experiments -------------------------------------------- *)

val e4_bgp_only_overload : ?params:run_params -> unit -> Ef_stats.Table.t
(** Fig. 4: with BGP alone — per PoP, the distribution of peak interface
    utilization, the fraction of interfaces overloaded, and the demand
    that would exceed capacity. *)

val e5_detour_volume : ?params:run_params -> unit -> Ef_stats.Table.t
(** Fig. 7: with Edge Fabric — detoured-traffic fraction over the day,
    residual overloads, and drop comparison vs BGP-only. *)

val e6_detour_levels : ?params:run_params -> unit -> Ef_stats.Table.t
(** Fig. 8: where detoured traffic lands — share per preference level of
    the detour target. *)

val e7_override_churn : ?params:run_params -> unit -> Ef_stats.Table.t
(** Fig. 9: override lifetime distribution and per-cycle churn, with the
    hysteresis ablation (A2) alongside. *)

val e8_altpath_quality : ?params:run_params -> unit -> Ef_stats.Table.t
(** Fig. 10: measured alternate-path RTT deltas — % of prefixes whose
    best alternate is better / equivalent / worse, and delta quantiles. *)

val e9_detour_rtt_impact : ?params:run_params -> unit -> Ef_stats.Table.t
(** §6: RTT change experienced by detoured prefixes at peak (includes the
    congestion relief the detour buys). *)

val e12_perf_aware : ?params:run_params -> unit -> Ef_stats.Table.t
(** §7 extension: traffic-weighted RTT with the performance-aware stage
    on vs off, and how much traffic it moves. *)

(* -- ablations -------------------------------------------------------- *)

val a1_single_pass : ?params:run_params -> unit -> Ef_stats.Table.t
(** Iterative re-projection vs single-pass allocation: detour-target
    overloads created by the naive variant. *)

val a3_threshold_sweep : ?params:run_params -> unit -> Ef_stats.Table.t
(** Detour volume and overload protection across overload thresholds. *)

val a4_granularity : ?params:run_params -> unit -> Ef_stats.Table.t
(** BGP-prefix vs /24-split detouring: overrides needed and residual
    overloads. *)

val run_all : ?params:run_params -> unit -> unit
(** Print every experiment in order with headers. *)

val clear_cache : unit -> unit
