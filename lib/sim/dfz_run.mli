(** The DFZ driver: end-to-end incremental controller cycles at
    full-table scale.

    Where {!Engine} simulates a PoP minute by minute (traffic model,
    faults, BGP churn through the RIB), this driver runs the scale
    experiment (e13): a {!Ef_netsim.Dfz} world of up to a million
    prefixes, advanced cycle by cycle through the
    {!Ef_collector.Snapshot.patch} delta chain so the controller's
    warm-start paths carry the load. Per-cycle wall time covers churn
    generation + snapshot patch + the full controller cycle — the
    end-to-end figure the acceptance bar (p99 < 1 s at 1M prefixes,
    steady-state churn) is stated over.

    In [verify] mode a second generator replays the identical world
    (the schedules are pure hashes of the config) through a cold
    controller — [incremental = false], every snapshot assembled from
    scratch — and each cycle's enforced overrides, loads, residuals and
    stale lists are compared for exact equality, floats included. *)

type config = {
  cycles : int;
  cycle_s : int;  (** simulated seconds per cycle (the paper's 30) *)
  verify : bool;  (** lockstep cold-pipeline differential check *)
  faults : Ef_fault.Plan.t option;
      (** link-flap / capacity faults applied to the interface set: a
          downed link is removed from each cycle's snapshot (and comes
          back when the outage window ends), a degraded one keeps its id
          at scaled capacity. Threaded through {!Ef_collector.Snapshot.patch}'s
          [ifaces] so flap cycles stay on the warm path. *)
  controller : Edge_fabric.Config.t;
}

val config :
  ?cycles:int ->
  ?cycle_s:int ->
  ?verify:bool ->
  ?faults:Ef_fault.Plan.t ->
  ?controller:Edge_fabric.Config.t ->
  unit ->
  config
(** Defaults: 30 cycles of 30 s, no verification, no faults, default
    controller config (incremental on). Verification re-assembles every
    snapshot from scratch on the reference side — meant for smoke scale,
    not for the million-prefix run. Under [faults], both sides query one
    injector (pure in simulated time), so the differential check also
    pins the interface-churn warm path byte-for-byte. *)

type report = {
  prefix_count : int;  (** rated prefixes in the final snapshot *)
  cycles_run : int;
  incremental_hits : int;
      (** cycles the controller advanced incrementally; [cycles_run - 1]
          when the warm path engaged every patched cycle *)
  dirty_total : int;  (** churn events applied across all cycles *)
  iface_event_cycles : int list;
      (** cycles whose snapshot delta carried interface-set changes
          (ascending) — the flap-affected cycles a bench separates from
          quiet ones. Empty when [config.faults] is [None]. *)
  cycle_seconds : float array;  (** per-cycle wall time, in cycle order *)
  verified_cycles : int;
  mismatches : string list;
      (** human-readable differences found by verification; empty means
          the incremental path matched the cold path exactly *)
}

val cold_s : report -> float
(** Wall time of cycle 0 — the cold full-table assemble plus the first
    controller cycle. Reported separately because it is a different
    regime from the steady-state cycles (shard the build with
    [controller.shards > 1] to attack it). *)

val p50_s : report -> float
val p99_s : report -> float
(** Nearest-rank percentiles over the steady-state cycles — cycle 0's
    cold build is excluded (see {!cold_s}) so the headline reflects the
    regime the controller actually lives in. A single-cycle run has no
    steady state and falls back to the full (one-cycle) distribution. *)

val steady_p99_s : report -> float
(** Alias of {!p99_s}, named for the acceptance JSON. *)

val max_s : report -> float
val mean_s : report -> float
(** Over the steady-state cycles, like the percentiles. *)

val snapshot_of_gen :
  ?obs:Ef_obs.Registry.t ->
  ?pool:Ef_util.Pool.t ->
  ?ifaces:Ef_netsim.Iface.t list ->
  Ef_netsim.Dfz.t ->
  time_s:int ->
  Ef_collector.Snapshot.t
(** Assemble a snapshot of the generator's current state — the cold
    table build. [pool] shards it ({!Ef_collector.Snapshot.assemble});
    the bench harness times this directly. [ifaces] substitutes the
    interface list (default the generator's own) — how a fault-derated
    or flap-filtered set enters a cold reference build. *)

val run :
  ?obs:Ef_obs.Registry.t ->
  ?health:Ef_health.Tracker.t ->
  ?config:config ->
  Ef_netsim.Dfz.config ->
  report
(** Generate the world, run the cycles, time them. [obs] receives the
    collector/controller spans and counters of the incremental side
    (the reference side reports nowhere). [health] (default
    {!Ef_health.Tracker.noop}) is fed once per cycle with the end-to-end
    wall time — churn + patch + controller — so the SLO deadline is
    judged over the same figure the acceptance bar uses. When
    [config.controller.shards > 1] the cold cycle-0 assemble shards
    across the process-wide pool (outputs byte-identical to serial). *)

val report_to_json : report -> Ef_obs.Json.t
(** Summary object (percentiles, counters, mismatch strings) — embedded
    by the bench harness and [efctl]. *)

val pp_report : Format.formatter -> report -> unit

val run_mrt :
  ?obs:Ef_obs.Registry.t ->
  ?health:Ef_health.Tracker.t ->
  ?config:config ->
  ?total_bps:float ->
  ?zipf_s:float ->
  ?seed:int ->
  Ef_bgp.Mrt.t ->
  (report, Ef_bgp.Mrt.error) result
(** Seed the world from an MRT TABLE_DUMP_V2 dump instead of the
    synthetic generator: the dump rebuilds a {!Ef_bgp.Rib}
    ({!Ef_bgp.Mrt.to_rib}), demand is synthesized Zipf-skewed over the
    dump's prefixes ([total_bps], default 40 Gbps, permuted by [seed]),
    and one interface per dump peer is sized so the busiest needs
    relief. Cycles drift ~1% of rates deterministically through the
    patch chain. [verify] is ignored (no second world to replay).
    [faults] is likewise ignored. Errors are the dump's: decode/peer-table
    problems, or [Malformed] when the dump routes no prefixes or
    resolves no usable peer interfaces (the latter previously produced a
    silently all-unroutable world). *)
