(** The time-stepped simulation engine.

    Advances a PoP through a simulated day in controller-cycle steps. Each
    step: synthesize demand → (optionally) sample it through the sFlow
    pipeline → assemble the controller snapshot → run the controller →
    place the {e true} demand according to the enforced overrides → record
    utilizations, drops, RTTs and churn into {!Metrics}.

    The controller only ever sees estimated rates; ground truth is used
    exclusively for the recorded outcomes — the same separation the real
    deployment has between its feeds and reality. *)

type peer_event = {
  event_peer_id : int;
  down_at_s : int;
  up_at_s : int;   (** must be > [down_at_s]; the session re-announces its
                       full table when it returns *)
}
(** A scheduled neighbor-session outage (failure injection): at
    [down_at_s] the peer's routes are flushed exactly as a session loss
    does; at [up_at_s] the session returns and re-announces. Overrides
    targeting the dead peer become stale and fall back safely — the
    machinery this exists to exercise. *)

(** The engine configuration.

    {b Deprecated for construction:} build configurations with
    {!make_config} and the [with_*] updaters rather than record literals
    or record update — fields keep being added as the simulation grows.
    The record stays exposed (reading fields is fine). *)
type config = {
  cycle_s : int;               (** controller period (paper: 30 s) *)
  duration_s : int;
  start_s : int;               (** simulated time of day at the first cycle *)
  controller_enabled : bool;
  controller_config : Edge_fabric.Config.t;
  use_sampling : bool;         (** false = controller sees true rates *)
  sflow : Ef_traffic.Sflow.config;
  measure_altpaths : bool;
  measurer_config : Ef_altpath.Measurer.config;
  perf_aware : bool;
      (** use alternate-path measurements to steer prefixes to faster
          routes (the paper's §7 extension); requires
          [measure_altpaths]. Capacity overrides always win conflicts. *)
  perf_config : Ef_altpath.Perf_policy.config;
  policy : Ef_policy.program option;
      (** DSL policy program for this run (e.g. loaded by
          [efctl run --policy]). Wins over the scenario's own
          [import_policy]: the program's rule tree replaces the import
          route-map at world generation, and its parameter actions are
          merged into [controller_config] / [perf_config] by
          {!apply_policy_params}. [None] keeps whatever the scenario
          declares (whose knob side is still applied). *)
  seed : int;
  events : Ef_traffic.Demand.event list;
  peer_events : peer_event list;
  faults : Ef_fault.Plan.t option;
      (** deterministic fault plan injected into this run: link flaps,
          capacity degradations, feed stalls, cycle skips/delays (see
          {!Ef_fault.Plan}); [None] = healthy run *)
  trace : Ef_trace.Recorder.t;
      (** decision-provenance recorder threaded into the embedded
          controller; each committed cycle is additionally annotated with
          the ground-truth per-interface egress. Defaults to
          {!Ef_trace.Recorder.noop} (zero recording cost). *)
  health : Ef_health.Tracker.t;
      (** health tracker fed once per controller round with the round's
          wall time, degradation/skip/staleness flags, guard violations
          and residual overloads — drives the SLO state machine and the
          alert rules. Defaults to {!Ef_health.Tracker.noop} (one boolean
          test per step). *)
}

val default_config : config
(** One simulated day at 30 s cycles, controller on, sampling on,
    alternate-path measurement off. *)

val make_config :
  ?cycle_s:int ->
  ?duration_s:int ->
  ?start_s:int ->
  ?controller_enabled:bool ->
  ?controller_config:Edge_fabric.Config.t ->
  ?use_sampling:bool ->
  ?sflow:Ef_traffic.Sflow.config ->
  ?measure_altpaths:bool ->
  ?measurer_config:Ef_altpath.Measurer.config ->
  ?perf_aware:bool ->
  ?perf_config:Ef_altpath.Perf_policy.config ->
  ?policy:Ef_policy.program ->
  ?seed:int ->
  ?events:Ef_traffic.Demand.event list ->
  ?peer_events:peer_event list ->
  ?faults:Ef_fault.Plan.t ->
  ?trace:Ef_trace.Recorder.t ->
  ?health:Ef_health.Tracker.t ->
  unit ->
  config
(** Every omitted field takes its {!default_config} value. *)

(** Functional updaters, argument-last so they chain:
    [Engine.default_config |> Engine.with_duration_s 3600 |> Engine.with_seed 7] *)

val with_cycle_s : int -> config -> config
val with_duration_s : int -> config -> config
val with_start_s : int -> config -> config
val with_controller_enabled : bool -> config -> config
val with_controller_config : Edge_fabric.Config.t -> config -> config
val with_use_sampling : bool -> config -> config
val with_sflow : Ef_traffic.Sflow.config -> config -> config
val with_measure_altpaths : bool -> config -> config
val with_measurer_config : Ef_altpath.Measurer.config -> config -> config
val with_perf_aware : bool -> config -> config
val with_perf_config : Ef_altpath.Perf_policy.config -> config -> config

val with_policy : Ef_policy.program -> config -> config
(** Attach a DSL policy program (wraps it in [Some] for you). *)

val with_seed : int -> config -> config
val with_events : Ef_traffic.Demand.event list -> config -> config
val with_peer_events : peer_event list -> config -> config

val with_faults : Ef_fault.Plan.t -> config -> config
(** Inject a fault plan (wraps it in [Some] for you). *)

val with_trace : Ef_trace.Recorder.t -> config -> config
(** Attach an enabled decision-trace recorder (see {!Ef_trace.Recorder}). *)

val with_health : Ef_health.Tracker.t -> config -> config
(** Attach an active health tracker (see {!Ef_health.Tracker}). *)

val apply_policy_params : Ef_policy.env -> Ef_policy.t -> config -> config
(** Merge a policy's allocator-side denotation
    ({!Ef_policy.alloc_params}) into [controller_config] (overload
    thresholds, per-iface thresholds, guard budgets) and [perf_config]
    (improvement floor, suggestion cap, capacity guard). {!create} does
    this automatically for the effective policy of the run; exposed so
    tests and drivers can pin the equivalence against hand-written
    configs. *)

type t

val create : ?config:config -> ?obs:Ef_obs.Registry.t -> Ef_netsim.Scenario.t -> t
(** [obs] is shared with the embedded controller and snapshot assembly, so
    one registry carries the whole pipeline's spans and counters; defaults
    to {!Ef_obs.Registry.default}. Each {!step} records the [engine.step]
    span plus one span per stage ([engine.demand], [engine.estimate],
    [engine.controller], [engine.placement], [engine.accounting]) and
    updates the [engine.*] counters and gauges. *)

val config : t -> config
val world : t -> Ef_netsim.Topo_gen.world
val metrics : t -> Metrics.t

val obs : t -> Ef_obs.Registry.t
(** The registry this engine (and its controller) reports into. *)

val demand : t -> Ef_traffic.Demand.t
val latency : t -> Ef_netsim.Latency.t
val measurer : t -> Ef_altpath.Measurer.t option
val controller : t -> Edge_fabric.Controller.t option
val now_s : t -> int

val injector : t -> Ef_fault.Injector.t option
(** The compiled fault plan this engine polls, when one was configured. *)

val bmp_session : t -> Ef_collector.Retry.t
(** The BMP feed's retry state machine — driven by injected stalls; its
    failure/retry/reconnect counts also land on the
    [collector.session.*] counters. *)

val cycles_skipped : t -> int
(** Controller rounds suppressed by an injected [Cycle_skip] so far. *)

val step : t -> Metrics.cycle_row
(** Run one cycle and advance time. *)

val run : t -> Metrics.t
(** Step until [duration_s] is exhausted; returns the metrics (also
    available via {!metrics}). *)

val true_rates : t -> time_s:int -> (Ef_bgp.Prefix.t * float) list
(** Ground-truth demand at an instant (nonzero prefixes only). *)

val snapshot_now : t -> Ef_collector.Snapshot.t
(** The controller-view snapshot for the current time (estimated rates if
    sampling is on). *)

type placement_state = {
  actual : Edge_fabric.Projection.t;     (** true demand, enforced overrides *)
  preferred : Edge_fabric.Projection.t;  (** true demand, BGP-only *)
  active_overrides : Edge_fabric.Override.t list;
}

val last_state : t -> placement_state option
(** The ground-truth placements of the most recent {!step} — what the
    per-prefix experiment drivers (detour RTT impact, E9) dissect. *)
