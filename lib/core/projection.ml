module Bgp = Ef_bgp
module Snapshot = Ef_collector.Snapshot

type placement = {
  placed_prefix : Bgp.Prefix.t;
  rate_bps : float;
  route : Bgp.Route.t;
  iface_id : int;
  overridden : bool;
}

(* Unroutable prefixes with their rates, in the snapshot's consideration
   order (rate desc, prefix asc). Kept as a set so the incremental path
   can retract/re-add one prefix and re-fold the remainder in exactly the
   float-addition sequence a cold [project] performs. *)
module RSet = Set.Make (struct
  type t = Bgp.Prefix.t * float

  let compare (pa, ra) (pb, rb) =
    let c = Float.compare rb ra in
    if c <> 0 then c else Bgp.Prefix.compare pa pb
end)

(* Interface loads and the overridden-traffic aggregate accumulate in
   integer millibps. Integer addition is associative, so adding and
   subtracting single placements — the incremental path — lands on
   exactly the value a cold fold over the same set computes, in any
   order; float accumulation would make the result depend on insertion
   history. Milli-resolution keeps quantization (≤ 1 mbps per placement)
   far below anything a threshold can see; int64 gives ~9 Pbps of range. *)
let mbps_of_bps r = Int64.of_float (r *. 1000.0)
let bps_of_mbps m = Int64.to_float m /. 1000.0

type t = {
  ifaces : Ef_netsim.Iface.t list;
  loads : int64 array; (* indexed by iface id, millibps *)
  placements : placement Bgp.Ptrie.t;
  total_bps : float;
  overridden_m : int64; (* millibps on overridden placements *)
  unroutable_bps : float;
  unplaced : RSet.t;
  stale : Bgp.Prefix.t list; (* ascending prefix order *)
}

let max_iface_id ifaces =
  List.fold_left (fun acc i -> max acc (Ef_netsim.Iface.id i)) (-1) ifaces

(* Decide one prefix's route exactly the way the full pass does: honour an
   override only if that neighbor still offers a candidate; a stale
   override falls back to the preferred route and is reported. Shared by
   the cold pass and [Working.apply_dirty] so the two paths cannot
   diverge. *)
let choose_route ~overrides ~candidates prefix =
  match overrides prefix with
  | Some want -> (
      let still_valid =
        List.find_opt
          (fun r -> Bgp.Route.peer_id r = Bgp.Route.peer_id want)
          candidates
      in
      match still_valid with
      | Some r -> (Some r, true, false)
      | None -> (
          match candidates with
          | [] -> (None, false, true)
          | r :: _ -> (Some r, false, true)))
  | None -> (
      match candidates with [] -> (None, false, false) | r :: _ -> (Some r, false, false))

let project_seq ~overrides snapshot =
  let ifaces = Snapshot.ifaces snapshot in
  let loads = Array.make (max_iface_id ifaces + 1) 0L in
  let placements = ref Bgp.Ptrie.empty in
  let overridden_m = ref 0L in
  let unplaced = ref RSet.empty in
  let stale = ref Bgp.Ptrie.empty in
  Snapshot.iter_rates snapshot (fun prefix rate ->
      let candidates = Snapshot.routes snapshot prefix in
      let route, overridden, is_stale = choose_route ~overrides ~candidates prefix in
      if is_stale then stale := Bgp.Ptrie.add prefix () !stale;
      let placed =
        match route with
        | None -> None
        | Some route -> (
            match Snapshot.iface_of_route snapshot route with
            | None -> None
            | Some iface -> Some (route, Ef_netsim.Iface.id iface))
      in
      match placed with
      | None -> unplaced := RSet.add (prefix, rate) !unplaced
      | Some (route, iface_id) ->
          let m = mbps_of_bps rate in
          loads.(iface_id) <- Int64.add loads.(iface_id) m;
          if overridden then overridden_m := Int64.add !overridden_m m;
          placements :=
            Bgp.Ptrie.add prefix
              { placed_prefix = prefix; rate_bps = rate; route; iface_id; overridden }
              !placements);
  (* aggregates the incremental path must reproduce bit-for-bit are taken
     from canonical folds, not the iteration above: total is the
     snapshot's own (rate desc, prefix asc) fold, unroutable folds the
     unplaced set in its order *)
  let unroutable = [| 0.0 |] in
  RSet.iter (fun (_, r) -> unroutable.(0) <- unroutable.(0) +. r) !unplaced;
  {
    ifaces;
    loads;
    placements = !placements;
    total_bps = Snapshot.total_rate_bps snapshot;
    overridden_m = !overridden_m;
    unroutable_bps = unroutable.(0);
    unplaced = !unplaced;
    stale = Bgp.Ptrie.keys !stale;
  }

(* --- intra-engine sharding --------------------------------------------

   The cold pass is embarrassingly parallel over prefixes: each shard
   takes a contiguous range of the snapshot's canonical (rate desc,
   prefix asc) sequence into private scratch — a per-shard int64 loads
   array, placement/stale tries, an unplaced sub-set — and the merge is
   deterministic by construction:

   - loads and overridden_m accumulate in integer millibps, and integer
     addition is associative/commutative, so per-shard partial sums add
     to exactly the serial fold's value;
   - the placement/stale tries have canonical structure (same bindings ⇒
     same shape), so unioning disjoint-range shard tries left to right
     (right side winning a duplicated prefix, which is the serial fold's
     last-add-wins) rebuilds the serial trie exactly;
   - unplaced shard sets cover separated ranges of one total order, so
     their union has the serial content, and unroutable_bps re-folds
     that set in its canonical iteration order — the serial pass's exact
     float-addition sequence;
   - total_bps is the snapshot's own precomputed fold either way.

   Candidate ranking goes through [Snapshot.routes_uncached] on the
   workers (the memo Hashtbl is not safe for concurrent writes) and the
   answers are primed into the memo serially afterwards, so the relief
   loop and guard see the hits the serial pass would have left behind.
   [overrides] runs on worker domains when sharded — it must be pure. *)

let shard_pool ~shards =
  if shards <= 1 || Ef_util.Pool.in_task () then None
  else Some (Ef_util.Pool.global ~jobs:shards ())

let project_sharded ~overrides ~pool snapshot =
  let rated = Array.of_list (Snapshot.prefix_rates snapshot) in
  let n = Array.length rated in
  let ifaces = Snapshot.ifaces snapshot in
  let width = max_iface_id ifaces + 1 in
  let parts =
    Ef_util.Pool.map pool
      (fun (lo, hi) ->
        let loads = Array.make width 0L in
        let overridden_m = ref 0L in
        let placements = ref Bgp.Ptrie.empty in
        let unplaced = ref RSet.empty in
        let stale = ref Bgp.Ptrie.empty in
        let routed = Array.make (hi - lo) [] in
        for i = lo to hi - 1 do
          let prefix, rate = rated.(i) in
          let candidates = Snapshot.routes_uncached snapshot prefix in
          routed.(i - lo) <- candidates;
          let route, overridden, is_stale =
            choose_route ~overrides ~candidates prefix
          in
          if is_stale then stale := Bgp.Ptrie.add prefix () !stale;
          let placed =
            match route with
            | None -> None
            | Some route -> (
                match Snapshot.iface_of_route snapshot route with
                | None -> None
                | Some iface -> Some (route, Ef_netsim.Iface.id iface))
          in
          match placed with
          | None -> unplaced := RSet.add (prefix, rate) !unplaced
          | Some (route, iface_id) ->
              let m = mbps_of_bps rate in
              loads.(iface_id) <- Int64.add loads.(iface_id) m;
              if overridden then overridden_m := Int64.add !overridden_m m;
              placements :=
                Bgp.Ptrie.add prefix
                  { placed_prefix = prefix; rate_bps = rate; route; iface_id;
                    overridden }
                  !placements
        done;
        (lo, loads, !overridden_m, !placements, !unplaced, !stale, routed))
      (Ef_util.Pool.chunk_ranges ~n ~k:(Ef_util.Pool.jobs pool))
  in
  let loads = Array.make width 0L in
  let overridden_m = ref 0L in
  let placements = ref Bgp.Ptrie.empty in
  let unplaced = ref RSet.empty in
  let stale = ref Bgp.Ptrie.empty in
  List.iter
    (fun (lo, l, om, pl, un, stl, routed) ->
      for id = 0 to width - 1 do
        loads.(id) <- Int64.add loads.(id) l.(id)
      done;
      overridden_m := Int64.add !overridden_m om;
      placements := Bgp.Ptrie.union (fun _ b -> b) !placements pl;
      unplaced := RSet.union !unplaced un;
      stale := Bgp.Ptrie.union (fun _ b -> b) !stale stl;
      Array.iteri
        (fun j rs -> Snapshot.prime_route snapshot (fst rated.(lo + j)) rs)
        routed)
    parts;
  let unroutable = [| 0.0 |] in
  RSet.iter (fun (_, r) -> unroutable.(0) <- unroutable.(0) +. r) !unplaced;
  {
    ifaces;
    loads;
    placements = !placements;
    total_bps = Snapshot.total_rate_bps snapshot;
    overridden_m = !overridden_m;
    unroutable_bps = unroutable.(0);
    unplaced = !unplaced;
    stale = Bgp.Ptrie.keys !stale;
  }

let project ?(overrides = fun _ -> None) ?(shards = 1) snapshot =
  match shard_pool ~shards with
  | None -> project_seq ~overrides snapshot
  | Some pool -> project_sharded ~overrides ~pool snapshot

let load_bps t ~iface_id =
  if iface_id < 0 || iface_id >= Array.length t.loads then 0.0
  else bps_of_mbps t.loads.(iface_id)

let utilization t iface =
  load_bps t ~iface_id:(Ef_netsim.Iface.id iface)
  /. Ef_netsim.Iface.capacity_bps iface

let overloaded_by t ~threshold_of =
  t.ifaces
  |> List.filter_map (fun iface ->
         let u = utilization t iface in
         if u > threshold_of (Ef_netsim.Iface.id iface) then Some (iface, u)
         else None)
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let overloaded t ~threshold = overloaded_by t ~threshold_of:(fun _ -> threshold)

let placements t =
  Bgp.Ptrie.fold (fun _ pl acc -> pl :: acc) t.placements []

(* Total order: rate descending, then prefix ascending. Rate alone left
   ties to fold order, which made allocator decisions (and golden traces)
   depend on trie shape; the prefix tiebreak makes them byte-stable. *)
let compare_placement a b =
  let c = Float.compare b.rate_bps a.rate_bps in
  if c <> 0 then c else Bgp.Prefix.compare a.placed_prefix b.placed_prefix

let placements_on t ~iface_id =
  placements t
  |> List.filter (fun pl -> pl.iface_id = iface_id)
  |> List.sort compare_placement

let placement_of t prefix = Bgp.Ptrie.find prefix t.placements

let move t prefix ~to_route ~to_iface =
  match Bgp.Ptrie.find prefix t.placements with
  | None -> invalid_arg "Projection.move: prefix has no placement"
  | Some pl ->
      let loads = Array.copy t.loads in
      let m = mbps_of_bps pl.rate_bps in
      loads.(pl.iface_id) <- Int64.sub loads.(pl.iface_id) m;
      loads.(to_iface) <- Int64.add loads.(to_iface) m;
      let overridden_m =
        if pl.overridden then t.overridden_m else Int64.add t.overridden_m m
      in
      let pl' = { pl with route = to_route; iface_id = to_iface; overridden = true } in
      { t with loads; overridden_m; placements = Bgp.Ptrie.add prefix pl' t.placements }

let add_placement t ~prefix ~rate_bps ~route ~iface_id ~overridden =
  let loads = Array.copy t.loads in
  let m = mbps_of_bps rate_bps in
  loads.(iface_id) <- Int64.add loads.(iface_id) m;
  let overridden_m =
    if overridden then Int64.add t.overridden_m m else t.overridden_m
  in
  let pl = { placed_prefix = prefix; rate_bps; route; iface_id; overridden } in
  { t with loads; overridden_m; placements = Bgp.Ptrie.add prefix pl t.placements }

let remove_placement t prefix =
  match Bgp.Ptrie.find prefix t.placements with
  | None -> t
  | Some pl ->
      let loads = Array.copy t.loads in
      let m = mbps_of_bps pl.rate_bps in
      loads.(pl.iface_id) <- Int64.sub loads.(pl.iface_id) m;
      let overridden_m =
        if pl.overridden then Int64.sub t.overridden_m m else t.overridden_m
      in
      { t with loads; overridden_m; placements = Bgp.Ptrie.remove prefix t.placements }

let total_bps t = t.total_bps
let overridden_bps t = bps_of_mbps t.overridden_m
let unroutable_bps t = t.unroutable_bps
let stale_overrides t = t.stale
let ifaces t = t.ifaces

let iface_loads t =
  List.map (fun iface -> (iface, load_bps t ~iface_id:(Ef_netsim.Iface.id iface))) t.ifaces

(* ---------------------------------------------------------------------- *)
(* Working view: the allocator's mutable scratch projection.              *)
(* ---------------------------------------------------------------------- *)

module Working = struct
  module PSet = Set.Make (struct
    type nonrec t = placement

    let compare = compare_placement
  end)

  type proj = t

  type t = {
    mutable w_ifaces : Ef_netsim.Iface.t list;
    mutable w_loads : int64 array; (* millibps, updated in place *)
    mutable w_placements : placement Bgp.Ptrie.t;
    mutable w_by_iface : PSet.t array;
        (* iface id -> placements, (rate desc, prefix); replaced (with
           w_loads) only when an added interface grows the id universe *)
    mutable w_total : float;
    mutable w_overridden : int64;
    mutable w_unroutable : float;
    mutable w_unplaced : RSet.t;
    mutable w_stale : unit Bgp.Ptrie.t;
    mutable w_touched : int list; (* iface ids with load changes, undrained *)
  }

  (* The per-iface placement index is the expensive part of the build
     (one PSet.add per placement). Shards index contiguous chunks of the
     placement sequence into private per-iface set arrays, merged per
     iface with PSet.union — sets are content-determined, so every
     observable (elements, to_seq, fold) matches the serial build. *)
  let of_projection ?(shards = 1) (p : proj) =
    let width = Array.length p.loads in
    let by_iface =
      match shard_pool ~shards with
      | None ->
          let by = Array.make width PSet.empty in
          Bgp.Ptrie.iter
            (fun _ pl -> by.(pl.iface_id) <- PSet.add pl by.(pl.iface_id))
            p.placements;
          by
      | Some pool ->
          let pls =
            Array.of_list
              (Bgp.Ptrie.fold (fun _ pl acc -> pl :: acc) p.placements [])
          in
          let n = Array.length pls in
          let parts =
            Ef_util.Pool.map pool
              (fun (lo, hi) ->
                let by = Array.make width PSet.empty in
                for i = lo to hi - 1 do
                  let pl = pls.(i) in
                  by.(pl.iface_id) <- PSet.add pl by.(pl.iface_id)
                done;
                by)
              (Ef_util.Pool.chunk_ranges ~n ~k:(Ef_util.Pool.jobs pool))
          in
          let by = Array.make width PSet.empty in
          List.iter
            (fun part ->
              for id = 0 to width - 1 do
                if not (PSet.is_empty part.(id)) then
                  by.(id) <- PSet.union by.(id) part.(id)
              done)
            parts;
          by
    in
    {
      w_ifaces = p.ifaces;
      w_loads = Array.copy p.loads;
      w_placements = p.placements;
      w_by_iface = by_iface;
      w_total = p.total_bps;
      w_overridden = p.overridden_m;
      w_unroutable = p.unroutable_bps;
      w_unplaced = p.unplaced;
      w_stale = Bgp.Ptrie.of_list (List.map (fun p -> (p, ())) p.stale);
      w_touched = [];
    }

  let copy w =
    {
      w_ifaces = w.w_ifaces;
      w_loads = Array.copy w.w_loads;
      w_placements = w.w_placements;
      w_by_iface = Array.copy w.w_by_iface;
      w_total = w.w_total;
      w_overridden = w.w_overridden;
      w_unroutable = w.w_unroutable;
      w_unplaced = w.w_unplaced;
      w_stale = w.w_stale;
      w_touched = [];
    }

  let seal w : proj =
    {
      ifaces = w.w_ifaces;
      loads = Array.copy w.w_loads;
      placements = w.w_placements;
      total_bps = w.w_total;
      overridden_m = w.w_overridden;
      unroutable_bps = w.w_unroutable;
      unplaced = w.w_unplaced;
      stale = Bgp.Ptrie.keys w.w_stale;
    }

  let load_bps w ~iface_id =
    if iface_id < 0 || iface_id >= Array.length w.w_loads then 0.0
    else bps_of_mbps w.w_loads.(iface_id)

  let touch w iface_id = w.w_touched <- iface_id :: w.w_touched

  let drain_touched w =
    let t = w.w_touched in
    w.w_touched <- [];
    t

  let placement_of w prefix = Bgp.Ptrie.find prefix w.w_placements

  let placements_on w ~iface_id =
    if iface_id < 0 || iface_id >= Array.length w.w_by_iface then []
    else PSet.elements w.w_by_iface.(iface_id)

  let placements_seq w ~iface_id =
    if iface_id < 0 || iface_id >= Array.length w.w_by_iface then Seq.empty
    else PSet.to_seq w.w_by_iface.(iface_id)

  let placements_rev_seq w ~iface_id =
    if iface_id < 0 || iface_id >= Array.length w.w_by_iface then Seq.empty
    else PSet.to_rev_seq w.w_by_iface.(iface_id)

  let move w prefix ~to_route ~to_iface =
    match Bgp.Ptrie.find prefix w.w_placements with
    | None -> invalid_arg "Projection.Working.move: prefix has no placement"
    | Some pl ->
        let m = mbps_of_bps pl.rate_bps in
        w.w_loads.(pl.iface_id) <- Int64.sub w.w_loads.(pl.iface_id) m;
        w.w_loads.(to_iface) <- Int64.add w.w_loads.(to_iface) m;
        if not pl.overridden then w.w_overridden <- Int64.add w.w_overridden m;
        touch w pl.iface_id;
        touch w to_iface;
        let pl' =
          { pl with route = to_route; iface_id = to_iface; overridden = true }
        in
        w.w_by_iface.(pl.iface_id) <- PSet.remove pl w.w_by_iface.(pl.iface_id);
        w.w_by_iface.(to_iface) <- PSet.add pl' w.w_by_iface.(to_iface);
        w.w_placements <- Bgp.Ptrie.add prefix pl' w.w_placements

  let add_placement w ~prefix ~rate_bps ~route ~iface_id ~overridden =
    let m = mbps_of_bps rate_bps in
    w.w_loads.(iface_id) <- Int64.add w.w_loads.(iface_id) m;
    if overridden then w.w_overridden <- Int64.add w.w_overridden m;
    touch w iface_id;
    let pl = { placed_prefix = prefix; rate_bps; route; iface_id; overridden } in
    w.w_by_iface.(iface_id) <- PSet.add pl w.w_by_iface.(iface_id);
    w.w_placements <- Bgp.Ptrie.add prefix pl w.w_placements

  let remove_placement w prefix =
    match Bgp.Ptrie.find prefix w.w_placements with
    | None -> ()
    | Some pl ->
        let m = mbps_of_bps pl.rate_bps in
        w.w_loads.(pl.iface_id) <- Int64.sub w.w_loads.(pl.iface_id) m;
        if pl.overridden then w.w_overridden <- Int64.sub w.w_overridden m;
        touch w pl.iface_id;
        w.w_by_iface.(pl.iface_id) <- PSet.remove pl w.w_by_iface.(pl.iface_id);
        w.w_placements <- Bgp.Ptrie.remove prefix w.w_placements

  let apply_dirty w ~snapshot ?(overrides = fun _ -> None) ~dirty () =
    (* Retract every dirty prefix from wherever it currently sits —
       placed, unroutable, or stale. Loads move by the placement's exact
       integer contribution, so no re-summation is ever needed. *)
    List.iter
      (fun (ch : Snapshot.change) ->
        let prefix = ch.Snapshot.ch_prefix in
        (match Bgp.Ptrie.find prefix w.w_placements with
        | Some _ -> remove_placement w prefix
        | None -> (
            match ch.Snapshot.ch_old_rate with
            | Some r -> w.w_unplaced <- RSet.remove (prefix, r) w.w_unplaced
            | None -> ()));
        w.w_stale <- Bgp.Ptrie.remove prefix w.w_stale)
      dirty;
    (* Re-place the ones still rated, with the cold pass's decision rule. *)
    List.iter
      (fun (ch : Snapshot.change) ->
        match ch.Snapshot.ch_new_rate with
        | None -> ()
        | Some rate -> (
            let prefix = ch.Snapshot.ch_prefix in
            let candidates = Snapshot.routes snapshot prefix in
            let route, overridden, is_stale =
              choose_route ~overrides ~candidates prefix
            in
            if is_stale then w.w_stale <- Bgp.Ptrie.add prefix () w.w_stale;
            let placed =
              match route with
              | None -> None
              | Some route -> (
                  match Snapshot.iface_of_route snapshot route with
                  | None -> None
                  | Some iface -> Some (route, Ef_netsim.Iface.id iface))
            in
            match placed with
            | None -> w.w_unplaced <- RSet.add (prefix, rate) w.w_unplaced
            | Some (route, iface_id) ->
                add_placement w ~prefix ~rate_bps:rate ~route ~iface_id
                  ~overridden))
      dirty;
    (* Aggregates the integer bookkeeping doesn't cover: total is the
       snapshot's canonical fold (the same float the cold pass takes),
       unroutable re-folds the unplaced set in its (rate desc, prefix)
       order — the cold pass's fold of the same set. *)
    w.w_total <- Snapshot.total_rate_bps snapshot;
    let unroutable = [| 0.0 |] in
    RSet.iter (fun (_, r) -> unroutable.(0) <- unroutable.(0) +. r) w.w_unplaced;
    w.w_unroutable <- unroutable.(0);
    w.w_ifaces <- Snapshot.ifaces snapshot

  (* --- interface-set deltas -------------------------------------------

     The affected set of an interface change is exact, not heuristic,
     because [choose_route] follows only the head candidate (or a
     still-valid override) and a placement whose interface does not
     resolve goes unplaced rather than falling through to the next
     candidate:

     - a REMOVED interface can only change prefixes currently placed on
       it (their chosen route stops resolving) — found in O(affected)
       via the per-iface placement index;
     - an ADDED interface can only change prefixes currently unplaced
       (a placed prefix's chosen route and its resolution are
       untouched) — the unplaced pool is re-decided;
     - a CAPACITY-only change affects nothing here: placement ignores
       capacity, and thresholds re-derive from the snapshot every
       allocator run.

     Each op builds synthetic dirty records carrying the image's own
     rates (rate churn arrives separately through the regular dirty
     list) and delegates to [apply_dirty], so the decision rule is the
     cold pass's by construction and the result stays byte-identical. *)

  let ensure_width w width =
    if width > Array.length w.w_loads then begin
      let loads = Array.make width 0L in
      Array.blit w.w_loads 0 loads 0 (Array.length w.w_loads);
      let by = Array.make width PSet.empty in
      Array.blit w.w_by_iface 0 by 0 (Array.length w.w_by_iface);
      w.w_loads <- loads;
      w.w_by_iface <- by
    end

  let change_of ~prefix ~rate =
    {
      Snapshot.ch_prefix = prefix;
      ch_old_rate = Some rate;
      ch_new_rate = Some rate;
      ch_routes = false;
    }

  let remove_iface w ~snapshot ?overrides ~iface_id () =
    ensure_width w (Snapshot.max_iface_id snapshot + 1);
    let dirty =
      if iface_id < 0 || iface_id >= Array.length w.w_by_iface then []
      else
        PSet.fold
          (fun pl acc ->
            change_of ~prefix:pl.placed_prefix ~rate:pl.rate_bps :: acc)
          w.w_by_iface.(iface_id) []
    in
    apply_dirty w ~snapshot ?overrides ~dirty ()

  let add_iface w ~snapshot ?overrides ~iface_id:_ () =
    ensure_width w (Snapshot.max_iface_id snapshot + 1);
    let dirty =
      RSet.fold
        (fun (prefix, rate) acc -> change_of ~prefix ~rate :: acc)
        w.w_unplaced []
    in
    apply_dirty w ~snapshot ?overrides ~dirty ()

  let apply_iface_delta w ~snapshot ?overrides ~delta () =
    ensure_width w (Snapshot.max_iface_id snapshot + 1);
    let added = ref false in
    List.iter
      (fun (ic : Snapshot.iface_change) ->
        match (ic.Snapshot.ic_old_capacity, ic.Snapshot.ic_new_capacity) with
        | Some _, None ->
            remove_iface w ~snapshot ?overrides ~iface_id:ic.Snapshot.ic_id ()
        | None, Some _ -> added := true
        | Some _, Some _ | None, None -> ())
      delta;
    (* one unplaced-pool pass covers every added interface (and is
       idempotent for prefixes the removals just unplaced: re-deciding
       with the same inputs retracts and re-adds the same set entry) *)
    if !added then add_iface w ~snapshot ?overrides ~iface_id:(-1) ()
end
