module Bgp = Ef_bgp
module Snapshot = Ef_collector.Snapshot

type placement = {
  placed_prefix : Bgp.Prefix.t;
  rate_bps : float;
  route : Bgp.Route.t;
  iface_id : int;
  overridden : bool;
}

type t = {
  ifaces : Ef_netsim.Iface.t list;
  loads : float array; (* indexed by iface id *)
  placements : placement Bgp.Ptrie.t;
  total_bps : float;
  unroutable_bps : float;
  stale : Bgp.Prefix.t list;
}

let max_iface_id ifaces =
  List.fold_left (fun acc i -> max acc (Ef_netsim.Iface.id i)) (-1) ifaces

let project ?(overrides = fun _ -> None) snapshot =
  let ifaces = Snapshot.ifaces snapshot in
  let loads = Array.make (max_iface_id ifaces + 1) 0.0 in
  let placements = ref Bgp.Ptrie.empty in
  let total = ref 0.0 in
  let unroutable = ref 0.0 in
  let stale = ref [] in
  List.iter
    (fun (prefix, rate) ->
      total := !total +. rate;
      let candidates = Snapshot.routes snapshot prefix in
      let route, overridden =
        match overrides prefix with
        | Some want -> (
            (* honour only if the route is still offered by that neighbor *)
            let still_valid =
              List.find_opt
                (fun r -> Bgp.Route.peer_id r = Bgp.Route.peer_id want)
                candidates
            in
            match still_valid with
            | Some r -> (Some r, true)
            | None ->
                stale := prefix :: !stale;
                (match candidates with
                | [] -> (None, false)
                | r :: _ -> (Some r, false)))
        | None -> (
            match candidates with
            | [] -> (None, false)
            | r :: _ -> (Some r, false))
      in
      match route with
      | None -> unroutable := !unroutable +. rate
      | Some route -> (
          match Snapshot.iface_of_route snapshot route with
          | None -> unroutable := !unroutable +. rate
          | Some iface ->
              let iface_id = Ef_netsim.Iface.id iface in
              loads.(iface_id) <- loads.(iface_id) +. rate;
              placements :=
                Bgp.Ptrie.add prefix
                  { placed_prefix = prefix; rate_bps = rate; route; iface_id; overridden }
                  !placements))
    (Snapshot.prefix_rates snapshot);
  {
    ifaces;
    loads;
    placements = !placements;
    total_bps = !total;
    unroutable_bps = !unroutable;
    stale = !stale;
  }

let load_bps t ~iface_id =
  if iface_id < 0 || iface_id >= Array.length t.loads then 0.0
  else t.loads.(iface_id)

let utilization t iface =
  load_bps t ~iface_id:(Ef_netsim.Iface.id iface)
  /. Ef_netsim.Iface.capacity_bps iface

let overloaded_by t ~threshold_of =
  t.ifaces
  |> List.filter_map (fun iface ->
         let u = utilization t iface in
         if u > threshold_of (Ef_netsim.Iface.id iface) then Some (iface, u)
         else None)
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let overloaded t ~threshold = overloaded_by t ~threshold_of:(fun _ -> threshold)

let placements t =
  Bgp.Ptrie.fold (fun _ pl acc -> pl :: acc) t.placements []

(* Total order: rate descending, then prefix ascending. Rate alone left
   ties to fold order, which made allocator decisions (and golden traces)
   depend on trie shape; the prefix tiebreak makes them byte-stable. *)
let compare_placement a b =
  let c = compare b.rate_bps a.rate_bps in
  if c <> 0 then c else Bgp.Prefix.compare a.placed_prefix b.placed_prefix

let placements_on t ~iface_id =
  placements t
  |> List.filter (fun pl -> pl.iface_id = iface_id)
  |> List.sort compare_placement

let placement_of t prefix = Bgp.Ptrie.find prefix t.placements

let move t prefix ~to_route ~to_iface =
  match Bgp.Ptrie.find prefix t.placements with
  | None -> invalid_arg "Projection.move: prefix has no placement"
  | Some pl ->
      let loads = Array.copy t.loads in
      loads.(pl.iface_id) <- loads.(pl.iface_id) -. pl.rate_bps;
      loads.(to_iface) <- loads.(to_iface) +. pl.rate_bps;
      let pl' = { pl with route = to_route; iface_id = to_iface; overridden = true } in
      { t with loads; placements = Bgp.Ptrie.add prefix pl' t.placements }

let add_placement t ~prefix ~rate_bps ~route ~iface_id ~overridden =
  let loads = Array.copy t.loads in
  loads.(iface_id) <- loads.(iface_id) +. rate_bps;
  let pl = { placed_prefix = prefix; rate_bps; route; iface_id; overridden } in
  { t with loads; placements = Bgp.Ptrie.add prefix pl t.placements }

let remove_placement t prefix =
  match Bgp.Ptrie.find prefix t.placements with
  | None -> t
  | Some pl ->
      let loads = Array.copy t.loads in
      loads.(pl.iface_id) <- loads.(pl.iface_id) -. pl.rate_bps;
      { t with loads; placements = Bgp.Ptrie.remove prefix t.placements }

let total_bps t = t.total_bps

let overridden_bps t =
  Bgp.Ptrie.fold
    (fun _ pl acc -> if pl.overridden then acc +. pl.rate_bps else acc)
    t.placements 0.0

let unroutable_bps t = t.unroutable_bps
let stale_overrides t = t.stale
let ifaces t = t.ifaces

let iface_loads t =
  List.map (fun iface -> (iface, load_bps t ~iface_id:(Ef_netsim.Iface.id iface))) t.ifaces

(* ---------------------------------------------------------------------- *)
(* Working view: the allocator's mutable scratch projection.              *)
(* ---------------------------------------------------------------------- *)

module Working = struct
  module PSet = Set.Make (struct
    type nonrec t = placement

    let compare = compare_placement
  end)

  type proj = t

  type t = {
    w_ifaces : Ef_netsim.Iface.t list;
    w_loads : float array; (* updated in place, no per-move copy *)
    mutable w_placements : placement Bgp.Ptrie.t;
    w_by_iface : PSet.t array; (* iface id -> placements, (rate desc, prefix) *)
    w_total : float;
    w_unroutable : float;
    w_stale : Bgp.Prefix.t list;
    mutable w_touched : int list; (* iface ids with load changes, undrained *)
  }

  let of_projection (p : proj) =
    let by_iface = Array.make (Array.length p.loads) PSet.empty in
    Bgp.Ptrie.iter
      (fun _ pl -> by_iface.(pl.iface_id) <- PSet.add pl by_iface.(pl.iface_id))
      p.placements;
    {
      w_ifaces = p.ifaces;
      w_loads = Array.copy p.loads;
      w_placements = p.placements;
      w_by_iface = by_iface;
      w_total = p.total_bps;
      w_unroutable = p.unroutable_bps;
      w_stale = p.stale;
      w_touched = [];
    }

  let seal w : proj =
    {
      ifaces = w.w_ifaces;
      loads = Array.copy w.w_loads;
      placements = w.w_placements;
      total_bps = w.w_total;
      unroutable_bps = w.w_unroutable;
      stale = w.w_stale;
    }

  let load_bps w ~iface_id =
    if iface_id < 0 || iface_id >= Array.length w.w_loads then 0.0
    else w.w_loads.(iface_id)

  let touch w iface_id = w.w_touched <- iface_id :: w.w_touched

  let drain_touched w =
    let t = w.w_touched in
    w.w_touched <- [];
    t

  let placement_of w prefix = Bgp.Ptrie.find prefix w.w_placements

  let placements_on w ~iface_id =
    if iface_id < 0 || iface_id >= Array.length w.w_by_iface then []
    else PSet.elements w.w_by_iface.(iface_id)

  let move w prefix ~to_route ~to_iface =
    match Bgp.Ptrie.find prefix w.w_placements with
    | None -> invalid_arg "Projection.Working.move: prefix has no placement"
    | Some pl ->
        w.w_loads.(pl.iface_id) <- w.w_loads.(pl.iface_id) -. pl.rate_bps;
        w.w_loads.(to_iface) <- w.w_loads.(to_iface) +. pl.rate_bps;
        touch w pl.iface_id;
        touch w to_iface;
        let pl' =
          { pl with route = to_route; iface_id = to_iface; overridden = true }
        in
        w.w_by_iface.(pl.iface_id) <- PSet.remove pl w.w_by_iface.(pl.iface_id);
        w.w_by_iface.(to_iface) <- PSet.add pl' w.w_by_iface.(to_iface);
        w.w_placements <- Bgp.Ptrie.add prefix pl' w.w_placements

  let add_placement w ~prefix ~rate_bps ~route ~iface_id ~overridden =
    w.w_loads.(iface_id) <- w.w_loads.(iface_id) +. rate_bps;
    touch w iface_id;
    let pl = { placed_prefix = prefix; rate_bps; route; iface_id; overridden } in
    w.w_by_iface.(iface_id) <- PSet.add pl w.w_by_iface.(iface_id);
    w.w_placements <- Bgp.Ptrie.add prefix pl w.w_placements

  let remove_placement w prefix =
    match Bgp.Ptrie.find prefix w.w_placements with
    | None -> ()
    | Some pl ->
        w.w_loads.(pl.iface_id) <- w.w_loads.(pl.iface_id) -. pl.rate_bps;
        touch w pl.iface_id;
        w.w_by_iface.(pl.iface_id) <- PSet.remove pl w.w_by_iface.(pl.iface_id);
        w.w_placements <- Bgp.Ptrie.remove prefix w.w_placements
end
