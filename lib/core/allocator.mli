(** The Edge Fabric allocator (§5 of the paper).

    Stateless: every cycle it starts from the BGP-preferred projection
    and produces the complete set of overrides needed to bring every
    interface below the overload threshold. Greedy and iterative: while
    any interface is projected above threshold, pick a prefix placed on
    the worst-loaded such interface and detour it to its most-preferred
    alternate route whose interface has room for the whole prefix,
    re-projecting after each move so a detour target never gets pushed
    over the threshold itself.

    Knobs ({!Config.t}): visit prefixes largest- or smallest-first;
    disable re-projection ([iterative = false], the ablation baseline
    that overloads detour targets); split prefixes into /24s when a whole
    prefix fits nowhere. *)

type result = {
  overrides : Override.t list;
  before : Projection.t;       (** BGP-preferred placement *)
  final : Projection.t;        (** placement after all moves *)
  residual : (Ef_netsim.Iface.t * float) list;
      (** interfaces still over threshold — capacity genuinely exhausted
          (or the override budget hit) *)
  moves_considered : int;      (** candidate (prefix, target) pairs examined *)
  splits : int;                (** /24 splits performed (Split_24 only) *)
}

val run :
  config:Config.t ->
  ?trace:Ef_trace.Recorder.t ->
  Ef_collector.Snapshot.t ->
  result
(** [trace] (default {!Ef_trace.Recorder.noop}) receives one
    {!Ef_trace.Recorder.attempt} per prefix evaluation — every candidate
    route examined with its verdict, plus the outcome (moved, stuck, or
    split). Costs one branch per stage when disabled. *)

val relief_bps : result -> float
(** Total traffic detoured by the produced overrides. *)

val check_invariants : config:Config.t -> result -> (unit, string) Stdlib.result
(** Post-conditions the tests enforce:
    - with [iterative = true], no interface that was under threshold
      before is over threshold after;
    - no override detours to the interface it is relieving;
    - override rates are non-negative;
    - override count respects [max_overrides_per_cycle].
    (That every target route is a genuine candidate of its prefix is
    checked separately in the test-suite against the snapshot.) *)
