(** The Edge Fabric allocator (§5 of the paper).

    Stateless: every cycle it starts from the BGP-preferred projection
    and produces the complete set of overrides needed to bring every
    interface below the overload threshold. Greedy and iterative: while
    any interface is projected above threshold, pick a prefix placed on
    the worst-loaded such interface and detour it to its most-preferred
    alternate route whose interface has room for the whole prefix,
    re-projecting after each move so a detour target never gets pushed
    over the threshold itself.

    Knobs ({!Config.t}): visit prefixes largest- or smallest-first;
    disable re-projection ([iterative = false], the ablation baseline
    that overloads detour targets); split prefixes into /24s when a whole
    prefix fits nowhere. *)

type result = {
  overrides : Override.t list;
  before : Projection.t;       (** BGP-preferred placement *)
  final : Projection.t;        (** placement after all moves *)
  residual : (Ef_netsim.Iface.t * float) list;
      (** interfaces still over threshold — capacity genuinely exhausted
          (or the override budget hit) *)
  moves_considered : int;      (** candidate (prefix, target) pairs examined *)
  splits : int;                (** /24 splits performed (Split_24 only) *)
}

val run :
  ?obs:Ef_obs.Registry.t ->
  config:Config.t ->
  ?trace:Ef_trace.Recorder.t ->
  Ef_collector.Snapshot.t ->
  result
(** [trace] (default {!Ef_trace.Recorder.noop}) receives one
    {!Ef_trace.Recorder.attempt} per prefix evaluation — every candidate
    route examined with its verdict, plus the outcome (moved, stuck, or
    split). Costs one branch per stage when disabled.

    [obs] (default {!Ef_obs.Registry.default}) receives the allocator's
    misconfiguration counters — currently
    [allocator.iface_thresholds.dropped], bumped (with a log warning)
    for each {!Config.iface_thresholds} entry whose id lies outside the
    snapshot's interface universe and would otherwise vanish silently. *)

type warm
(** Last cycle's pre-relief working image: the BGP-preferred placement of
    its snapshot before any allocator move. Holding one lets the next
    cycle skip the O(n) projection and re-place only the prefixes the
    snapshot delta touched. *)

val run_warm :
  ?obs:Ef_obs.Registry.t ->
  config:Config.t ->
  ?trace:Ef_trace.Recorder.t ->
  ?warm:warm ->
  Ef_collector.Snapshot.t ->
  result * warm
(** {!run}, incrementally. When [warm] is given and the new snapshot is
    [linked] to the warm snapshot (built from it by {!Snapshot.patch}),
    the pre-relief projection is advanced instead of recomputed: first
    over the delta's recorded interface-set changes (a removed interface
    re-places exactly its placements, an added one re-decides the
    unplaced pool, a capacity change costs nothing —
    {!Projection.Working.apply_iface_delta}), then over the dirty
    prefixes — and because the relief loop is a pure function of the
    pre-relief image, the result is byte-identical to a cold {!run},
    floats included, interface churn or not. Any other case (no warm,
    unlinked snapshots) silently falls back to the cold path, so
    correctness never depends on the caller's cadence. The returned
    [warm] seeds the next cycle either way. The allocator remains
    stateless in its *decisions*: overrides are recomputed from scratch
    every cycle; only the projection work is reused. *)

val warm_of_result : result -> Ef_collector.Snapshot.t -> warm
(** Rebuild a warm state from a cold {!run}'s result and the snapshot it
    ran on — how a caller that sometimes runs cold (e.g. after a
    degraded cycle) re-enters the incremental regime. *)

val warm_valid : ?warm:warm -> Ef_collector.Snapshot.t -> bool
(** Whether {!run_warm} would take the incremental path for this
    snapshot: a warm state is present and the snapshot is delta-linked
    to its snapshot. Interface-set changes no longer invalidate the warm
    state — a linked delta records them exactly and {!run_warm} patches
    the image over them in O(affected). O(1). *)

val warm_snapshot : warm -> Ef_collector.Snapshot.t
(** The snapshot the warm image projects. *)

val preferred_image : warm -> Projection.Working.t
(** A private copy of the warm state's pre-relief image — the
    BGP-preferred placement of {!warm_snapshot} with no allocator move
    applied. Because {!run_warm} hands back the warm state for the very
    snapshot it just ran, the controller derives the cycle's {e enforced}
    projection from this copy by re-placing only the override prefixes —
    O(overrides), never O(table). *)

val relief_bps : result -> float
(** Total traffic detoured by the produced overrides. *)

val check_invariants : config:Config.t -> result -> (unit, string) Stdlib.result
(** Post-conditions the tests enforce:
    - with [iterative = true], no interface that was under threshold
      before is over threshold after;
    - no override detours to the interface it is relieving;
    - override rates are non-negative;
    - override count respects [max_overrides_per_cycle].
    (That every target route is a genuine candidate of its prefix is
    checked separately in the test-suite against the snapshot.) *)
