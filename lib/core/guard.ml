module Bgp = Ef_bgp
module Snapshot = Ef_collector.Snapshot

type config = {
  max_detour_fraction : float option;
  max_overrides : int option;
  check_targets : bool;
  target_threshold : float;
}

let default =
  {
    max_detour_fraction = None;
    max_overrides = None;
    check_targets = true;
    target_threshold = 1.0;
  }

let conservative =
  {
    max_detour_fraction = Some 0.25;
    max_overrides = Some 500;
    check_targets = true;
    target_threshold = 1.0;
  }

type violation =
  | Detour_fraction_exceeded of { limit : float; actual : float }
  | Override_count_exceeded of { limit : int; actual : int }
  | Stale_target of Bgp.Prefix.t
  | Target_overloaded of { iface_id : int; utilization : float }

let pp_violation fmt = function
  | Detour_fraction_exceeded { limit; actual } ->
      Format.fprintf fmt "detour fraction %.3f exceeds budget %.3f" actual limit
  | Override_count_exceeded { limit; actual } ->
      Format.fprintf fmt "%d overrides exceed budget %d" actual limit
  | Stale_target p ->
      Format.fprintf fmt "override for %a targets a vanished route" Bgp.Prefix.pp p
  | Target_overloaded { iface_id; utilization } ->
      Format.fprintf fmt "detour target iface %d projected at %.2f" iface_id
        utilization

(* a target is live when its peer still offers a route for the prefix (or
   for the covering prefix, in the /24-split case) *)
let target_is_live snapshot (o : Override.t) =
  let candidates_of p = Snapshot.routes snapshot p in
  let direct = candidates_of o.Override.prefix in
  let candidates =
    match direct with
    | [] -> (
        (* /24 child: look up the covering announced prefix *)
        match
          List.find_opt
            (fun (p, _) -> Bgp.Prefix.subsumes p o.Override.prefix)
            (Snapshot.prefix_rates snapshot)
        with
        | Some (p, _) -> candidates_of p
        | None -> [])
    | l -> l
  in
  List.exists
    (fun r -> Bgp.Route.peer_id r = Override.target_peer_id o)
    candidates

let detoured_rate snapshot (o : Override.t) =
  match Snapshot.rate_of snapshot o.Override.prefix with
  | 0.0 -> o.Override.rate_bps (* /24 child: fall back to decision-time rate *)
  | r -> r

let detour_fraction snapshot overrides =
  let total = Snapshot.total_rate_bps snapshot in
  if total <= 0.0 then 0.0
  else
    List.fold_left (fun acc o -> acc +. detoured_rate snapshot o) 0.0 overrides
    /. total

let audit ?enforced config snapshot overrides =
  let violations = ref [] in
  let add v = violations := v :: !violations in
  (match config.max_detour_fraction with
  | Some limit ->
      let actual = detour_fraction snapshot overrides in
      if actual > limit then add (Detour_fraction_exceeded { limit; actual })
  | None -> ());
  (match config.max_overrides with
  | Some limit ->
      let actual = List.length overrides in
      if actual > limit then add (Override_count_exceeded { limit; actual })
  | None -> ());
  List.iter
    (fun o ->
      if not (target_is_live snapshot o) then add (Stale_target o.Override.prefix))
    overrides;
  if config.check_targets then begin
    (* callers that already hold the enforced projection of exactly this
       override set pass it in; recomputing it here is O(table) *)
    let enforced =
      match enforced with
      | Some p -> p
      | None ->
          Projection.project ~overrides:(Override.lookup overrides) snapshot
    in
    (* only blame interfaces that actually receive detours *)
    let targets =
      List.sort_uniq compare (List.map (fun o -> o.Override.to_iface) overrides)
    in
    List.iter
      (fun iface ->
        let id = Ef_netsim.Iface.id iface in
        if List.mem id targets then begin
          let utilization = Projection.utilization enforced iface in
          if utilization > config.target_threshold then
            add (Target_overloaded { iface_id = id; utilization })
        end)
      (Snapshot.ifaces snapshot)
  end;
  List.rev !violations

let clamp ?(trace = Ef_trace.Recorder.noop) config snapshot overrides =
  let live, stale = List.partition (target_is_live snapshot) overrides in
  (* shed the least valuable first: ascending decision-time rate *)
  let ascending =
    List.sort (fun a b -> compare a.Override.rate_bps b.Override.rate_bps) live
  in
  let over_budget kept =
    (match config.max_overrides with
    | Some limit when List.length kept > limit -> true
    | Some _ | None -> false)
    ||
    match config.max_detour_fraction with
    | Some limit -> detour_fraction snapshot kept > limit
    | None -> false
  in
  let rec shed kept dropped =
    match kept with
    | smallest :: rest when over_budget kept -> shed rest (smallest :: dropped)
    | _ -> (kept, dropped)
  in
  let kept, shed_list = shed ascending [] in
  if Ef_trace.Recorder.enabled trace then begin
    let drop reason (o : Override.t) =
      Ef_trace.Recorder.record_guard_drop trace
        {
          Ef_trace.Recorder.gd_prefix = o.Override.prefix;
          gd_reason = reason;
          gd_rate_bps = o.Override.rate_bps;
        }
    in
    List.iter (drop Ef_trace.Recorder.Stale_target) stale;
    List.iter (drop Ef_trace.Recorder.Budget) shed_list
  end;
  (kept, stale @ shed_list)
