type order =
  | Largest_first
  | Smallest_first

type granularity =
  | Bgp_prefix
  | Split_24

type t = {
  overload_threshold : float;
  iface_thresholds : (int * float) list;
  release_margin : float;
  min_hold_s : int;
  order : order;
  iterative : bool;
  granularity : granularity;
  max_overrides_per_cycle : int option;
  override_local_pref : int;
  guard : Guard.config;
  max_snapshot_age_s : int;
  min_rate_confidence : float;
  incremental : bool;
  shards : int;
}

let default =
  {
    overload_threshold = 0.95;
    iface_thresholds = [];
    release_margin = 0.10;
    min_hold_s = 60;
    order = Largest_first;
    iterative = true;
    granularity = Bgp_prefix;
    max_overrides_per_cycle = None;
    override_local_pref = 1000;
    guard = Guard.default;
    max_snapshot_age_s = 90;
    min_rate_confidence = 0.0;
    incremental = true;
    shards = 1;
  }

let make ?(overload_threshold = default.overload_threshold)
    ?(iface_thresholds = default.iface_thresholds)
    ?(release_margin = default.release_margin) ?(min_hold_s = default.min_hold_s)
    ?(order = default.order) ?(iterative = default.iterative)
    ?(granularity = default.granularity) ?max_overrides_per_cycle
    ?(override_local_pref = default.override_local_pref)
    ?(guard = default.guard) ?(max_snapshot_age_s = default.max_snapshot_age_s)
    ?(min_rate_confidence = default.min_rate_confidence)
    ?(incremental = default.incremental) ?(shards = default.shards) () =
  {
    overload_threshold;
    iface_thresholds;
    release_margin;
    min_hold_s;
    order;
    iterative;
    granularity;
    max_overrides_per_cycle;
    override_local_pref;
    guard;
    max_snapshot_age_s;
    min_rate_confidence;
    incremental;
    shards;
  }

let with_overload_threshold overload_threshold t = { t with overload_threshold }
let with_iface_thresholds iface_thresholds t = { t with iface_thresholds }
let with_release_margin release_margin t = { t with release_margin }
let with_min_hold_s min_hold_s t = { t with min_hold_s }
let with_order order t = { t with order }
let with_iterative iterative t = { t with iterative }
let with_granularity granularity t = { t with granularity }

let with_max_overrides_per_cycle max_overrides_per_cycle t =
  { t with max_overrides_per_cycle }

let with_override_local_pref override_local_pref t = { t with override_local_pref }
let with_guard guard t = { t with guard }
let with_max_snapshot_age_s max_snapshot_age_s t = { t with max_snapshot_age_s }
let with_min_rate_confidence min_rate_confidence t = { t with min_rate_confidence }
let with_incremental incremental t = { t with incremental }
let with_shards shards t = { t with shards }

let release_threshold t = t.overload_threshold -. t.release_margin

let threshold_for t ~iface_id =
  match List.assoc_opt iface_id t.iface_thresholds with
  | Some th -> th
  | None -> t.overload_threshold

let release_threshold_for t ~iface_id =
  threshold_for t ~iface_id -. t.release_margin

let rec ids_unique = function
  | [] -> true
  | (id, _) :: rest ->
      (not (List.mem_assoc id rest)) && ids_unique rest

let validate t =
  if t.overload_threshold <= 0.0 || t.overload_threshold > 1.0 then
    Error "overload_threshold must be in (0, 1]"
  else if
    List.exists (fun (_, th) -> th <= 0.0 || th > 1.0) t.iface_thresholds
  then Error "iface_thresholds values must be in (0, 1]"
  else if List.exists (fun (id, _) -> id < 0) t.iface_thresholds then
    Error "iface_thresholds ids must be non-negative"
  else if not (ids_unique t.iface_thresholds) then
    Error "iface_thresholds ids must be unique"
  else if
    t.release_margin < 0.0
    || List.exists
         (fun (_, th) -> t.release_margin >= th)
         ((-1, t.overload_threshold) :: t.iface_thresholds)
  then Error "release_margin must be in [0, every overload threshold)"
  else if t.min_hold_s < 0 then Error "min_hold_s must be non-negative"
  else if
    t.override_local_pref
    <= Ef_bgp.Policy.local_pref_for_kind Ef_bgp.Peer.Private_peer
  then Error "override_local_pref must exceed every policy tier"
  else if t.max_snapshot_age_s <= 0 then Error "max_snapshot_age_s must be positive"
  else if t.min_rate_confidence < 0.0 || t.min_rate_confidence >= 1.0 then
    Error "min_rate_confidence must be in [0, 1)"
  else if t.shards < 1 || t.shards > 128 then
    Error "shards must be in [1, 128]"
  else
    match t.max_overrides_per_cycle with
    | Some n when n < 0 -> Error "max_overrides_per_cycle must be non-negative"
    | Some _ | None -> Ok ()

let order_to_string = function
  | Largest_first -> "largest-first"
  | Smallest_first -> "smallest-first"

let granularity_to_string = function
  | Bgp_prefix -> "bgp-prefix"
  | Split_24 -> "split-24"

let pp fmt t =
  Format.fprintf fmt
    "threshold=%.2f release=%.2f hold=%ds order=%s iterative=%b gran=%s lp=%d"
    t.overload_threshold
    (release_threshold t)
    t.min_hold_s (order_to_string t.order) t.iterative
    (granularity_to_string t.granularity)
    t.override_local_pref;
  List.iter
    (fun (id, th) -> Format.fprintf fmt " if%d=%.2f" id th)
    t.iface_thresholds;
  if t.shards > 1 then Format.fprintf fmt " shards=%d" t.shards
