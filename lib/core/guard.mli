(** Safety guards on controller output.

    A TE controller that can move any prefix anywhere can also break a PoP
    in one bad cycle (garbage rates from a sampler bug, a topology change
    racing the snapshot). This layer sits between the allocator and
    enforcement and refuses to let a cycle exceed blast-radius budgets:

    - at most a bounded fraction of PoP traffic detoured at once;
    - at most a bounded number of concurrently-installed overrides;
    - no override whose target is not currently a candidate route;
    - (audit) no detour target projected above the overload threshold.

    [clamp] enforces the budgets by dropping the least-valuable overrides
    (smallest detoured rate first — they buy the least relief per unit of
    blast radius); [audit] reports violations without modifying anything,
    for logging and tests. *)

type config = {
  max_detour_fraction : float option;  (** of snapshot total traffic *)
  max_overrides : int option;
  check_targets : bool;  (** audit detour-target utilization *)
  target_threshold : float;  (** utilization bound used by that audit *)
}

val default : config
(** No budgets (None/None), target audit on at 1.0 — production trusts
    the allocator's own threshold; budgets are opt-in belts. *)

val conservative : config
(** 25 % detour budget, 500 overrides, audit at 1.0 — a sane belt for
    untrusted inputs. *)

type violation =
  | Detour_fraction_exceeded of { limit : float; actual : float }
  | Override_count_exceeded of { limit : int; actual : int }
  | Stale_target of Ef_bgp.Prefix.t
      (** the override's target peer no longer announces the prefix *)
  | Target_overloaded of { iface_id : int; utilization : float }

val pp_violation : Format.formatter -> violation -> unit

val audit :
  ?enforced:Projection.t ->
  config ->
  Ef_collector.Snapshot.t ->
  Override.t list ->
  violation list
(** All violations of the proposed override set, empty when clean.
    [enforced] must be the projection of the snapshot under exactly
    [overrides]; when given, the target-load check reads it instead of
    reprojecting the whole table. *)

val clamp :
  ?trace:Ef_trace.Recorder.t ->
  config ->
  Ef_collector.Snapshot.t ->
  Override.t list ->
  Override.t list * Override.t list
(** [(kept, dropped)]: stale-target overrides are always dropped; then the
    smallest-rate overrides are shed until the fraction and count budgets
    hold. [kept @ dropped] is a permutation of the input. Each drop is
    reported to [trace] (default noop) with its reason. *)
