(** The per-PoP controller loop.

    One call to {!cycle} is one 30-second controller round:

    + project BGP-preferred placement from the snapshot;
    + run the stateless {!Allocator} to get the desired override set;
    + reconcile with the installed set through {!Hysteresis};
    + report the enforced placement and the BGP messages (announcements
      and withdrawals) that realize the delta on the peering routers.

    The controller holds no routing state of its own beyond the installed
    override set — restart it and the next cycle recomputes everything
    from the feeds, as the paper's deployment does.

    Every stage is instrumented through {!Ef_obs}: each cycle records the
    [controller.cycle] span plus one span per stage ([controller.allocate],
    [controller.guard.clamp], [controller.reconcile], [controller.project],
    [controller.guard.audit]), bumps the override/guard counters, and —
    when a journal sink is attached — emits one [controller.cycle] event
    summarizing the round.

    {b Graceful degradation.} The controller fails static: when its
    inputs cannot be trusted it refuses to recompute and holds the
    last-good override set instead of oscillating on garbage. Two rungs
    of the ladder are detected per cycle:

    - {e staleness} — the snapshot is older (vs [now_s]) than
      [Config.max_snapshot_age_s]: the BMP/sFlow feeds have stalled, so
      recomputing would act on a RIB that no longer exists;
    - {e low confidence} — the snapshot's total rate collapsed below
      [Config.min_rate_confidence] × the recent healthy-cycle average:
      the feed is losing samples, and the "demand" drop is an artifact.

    A degraded cycle skips the allocator and hysteresis entirely (so hold
    timers and installation ages are preserved), enforces the existing
    set, bumps the [controller.degraded.*] counters, and emits a
    [controller.degraded] journal event. *)

(** Why a cycle refused to recompute and held the last-good override
    set instead. *)
type degradation =
  | Stale_snapshot of { age_s : int; limit_s : int }
      (** snapshot age exceeded [Config.max_snapshot_age_s] *)
  | Low_confidence of { observed_bps : float; expected_bps : float }
      (** snapshot total rate collapsed below
          [Config.min_rate_confidence] × the healthy-cycle EWMA *)

val degradation_reason : degradation -> string
(** Stable machine label: ["stale_snapshot"] or ["low_confidence"]. *)

val pp_degradation : Format.formatter -> degradation -> unit

(** One cycle's outcome. Use the accessor functions below rather than
    matching on the record directly: the record will keep growing (it is
    kept exposed for the transition), and accessors insulate callers. *)
type cycle_stats = {
  time_s : int;
  total_bps : float;
  detoured_bps : float;            (** traffic on overridden placements *)
  preferred : Projection.t;        (** BGP-only placement *)
  enforced : Projection.t;         (** placement with active overrides *)
  allocator : Allocator.result;
  reconcile : Hysteresis.step_result;
  guard_dropped : Override.t list;
      (** proposals shed by the {!Guard} budgets this cycle *)
  guard_violations : Guard.violation list;
      (** audit findings on the enforced set (also logged) *)
  overloaded_before : (Ef_netsim.Iface.t * float) list;
  overloaded_after : (Ef_netsim.Iface.t * float) list;
  degraded : degradation option;
      (** [Some _] when this cycle failed static (see {!degradation}) *)
}

type t

val create :
  ?config:Config.t ->
  ?obs:Ef_obs.Registry.t ->
  ?trace:Ef_trace.Recorder.t ->
  name:string ->
  unit ->
  t
(** [obs] is where the controller's spans, counters and journal events
    land; defaults to {!Ef_obs.Registry.default}. [trace] (default
    {!Ef_trace.Recorder.noop}) receives per-prefix decision provenance:
    one cycle record per {!cycle} call covering the allocator's candidate
    verdicts, guard drops, hysteresis dispositions, the per-interface
    load table, and the enforced override set with its BGP attributes. *)

val name : t -> string
val config : t -> Config.t
val active_overrides : t -> Override.t list
val cycles_run : t -> int

val incremental_hits : t -> int
(** How many cycles advanced the enforced projection incrementally
    instead of recomputing it — nonzero only when [Config.incremental]
    is on and consecutive snapshots were delta-linked
    ({!Ef_collector.Snapshot.patch}). Results are byte-identical either
    way; this counter exists so scale tests can assert the fast path
    actually engaged. *)

val obs : t -> Ef_obs.Registry.t
(** The registry this controller reports into. *)

val trace : t -> Ef_trace.Recorder.t
(** The recorder this controller reports provenance into. *)

val override_ages : t -> now_s:int -> (Override.t * int) list
(** Installed overrides with their ages in seconds at [now_s], sorted by
    prefix. *)

val cycle : ?now_s:int -> t -> Ef_collector.Snapshot.t -> cycle_stats
(** [now_s] is the controller's own clock, used only for staleness
    detection against the snapshot's timestamp; it defaults to the
    snapshot's own time (age 0 — never stale), which preserves the
    behaviour of callers that always hand the controller a fresh view. *)

val bgp_updates : t -> cycle_stats -> Ef_bgp.Msg.update list
(** The wire-level enforcement of one cycle: withdrawals for removed
    overrides, announcements for added and retargeted ones (a retarget
    is a plain re-announcement — BGP implicit withdraw). *)

val detour_fraction : cycle_stats -> float
(** detoured_bps / total_bps (0 when idle). *)

(** {2 [cycle_stats] accessors}

    Field-for-field accessors plus the derived lists the drivers actually
    want. New code should use these (and {!pp_cycle_stats} /
    {!cycle_stats_to_json}) instead of pattern-matching the record. *)

val time_s : cycle_stats -> int
val total_bps : cycle_stats -> float
val detoured_bps : cycle_stats -> float
val preferred : cycle_stats -> Projection.t
val enforced : cycle_stats -> Projection.t
val allocator_result : cycle_stats -> Allocator.result
val reconcile_result : cycle_stats -> Hysteresis.step_result
val guard_dropped : cycle_stats -> Override.t list
val guard_violations : cycle_stats -> Guard.violation list
val overloaded_before : cycle_stats -> (Ef_netsim.Iface.t * float) list
val overloaded_after : cycle_stats -> (Ef_netsim.Iface.t * float) list

val degraded : cycle_stats -> degradation option
(** [Some _] when the cycle failed static and held the previous set. *)

val overrides_enforced : cycle_stats -> Override.t list
(** The set enforced after the cycle ([reconcile.active]). *)

val overrides_added : cycle_stats -> Override.t list
val overrides_removed : cycle_stats -> (Override.t * int) list
(** With lifetime in seconds. *)

val overrides_retargeted : cycle_stats -> Override.t list
val residual_overloads : cycle_stats -> (Ef_netsim.Iface.t * float) list
(** Interfaces the allocator could not relieve ([allocator.residual]). *)

val pp_cycle_stats : Format.formatter -> cycle_stats -> unit
(** One-line operational summary of a cycle. *)

val cycle_stats_to_json : cycle_stats -> Ef_obs.Json.t
(** Counts-and-volumes summary (no projections or override details) —
    the same shape the journal event carries. *)
