module Bgp = Ef_bgp

type step_result = {
  active : Override.t list;
  added : Override.t list;
  removed : (Override.t * int) list;
  retargeted : Override.t list;
  kept : Override.t list;
  deferred_releases : int;
}

type entry = {
  override : Override.t;
  installed_at : int;
}

type t = {
  config : Config.t;
  mutable entries : entry Bgp.Ptrie.t;
}

let create config = { config; entries = Bgp.Ptrie.empty }

let active t =
  Bgp.Ptrie.fold (fun _ e acc -> e.override :: acc) t.entries []

let installed_at t prefix =
  Option.map (fun e -> e.installed_at) (Bgp.Ptrie.find prefix t.entries)

let active_count t = Bgp.Ptrie.cardinal t.entries

let ages t ~now_s =
  Bgp.Ptrie.fold
    (fun _ e acc -> (e.override, now_s - e.installed_at) :: acc)
    t.entries []
  |> List.sort (fun (a, _) (b, _) ->
         Bgp.Prefix.compare a.Override.prefix b.Override.prefix)

let iface_by_id proj iface_id =
  List.find_opt
    (fun i -> Ef_netsim.Iface.id i = iface_id)
    (Projection.ifaces proj)

let step ?(trace = Ef_trace.Recorder.noop) t ~time_s ~desired ~preferred =
  let module R = Ef_trace.Recorder in
  let tracing = R.enabled trace in
  let note prefix disposition =
    if tracing then
      R.record_hysteresis trace
        { R.hy_prefix = prefix; hy_disposition = disposition }
  in
  let desired_map =
    List.fold_left
      (fun m (o : Override.t) -> Bgp.Ptrie.add o.Override.prefix o m)
      Bgp.Ptrie.empty desired
  in
  let added = ref [] in
  let removed = ref [] in
  let retargeted = ref [] in
  let kept = ref [] in
  let deferred = ref 0 in
  let next = ref Bgp.Ptrie.empty in

  (* pass 1: reconcile what is installed *)
  Bgp.Ptrie.iter
    (fun prefix e ->
      let age = time_s - e.installed_at in
      let matured = age >= t.config.Config.min_hold_s in
      match Bgp.Ptrie.find prefix desired_map with
      | Some want when Override.equal want e.override ->
          (* same steering decision: keep the installed one untouched *)
          note prefix (R.Kept { age_s = age });
          kept := e.override :: !kept;
          next := Bgp.Ptrie.add prefix e !next
      | Some want ->
          if matured then begin
            note prefix (R.Retargeted { age_s = age });
            retargeted := want :: !retargeted;
            next :=
              Bgp.Ptrie.add prefix { override = want; installed_at = time_s } !next
          end
          else begin
            note prefix
              (R.Hold_retarget
                 { age_s = age; min_hold_s = t.config.Config.min_hold_s });
            kept := e.override :: !kept;
            next := Bgp.Ptrie.add prefix e !next
          end
      | None ->
          (* allocator no longer needs it; release only when safe *)
          let preferred_util =
            match iface_by_id preferred e.override.Override.from_iface with
            | None -> 0.0
            | Some iface -> Projection.utilization preferred iface
          in
          let release_threshold =
            (* per-iface: release is judged against the threshold of the
               interface the traffic would return to *)
            Config.release_threshold_for t.config
              ~iface_id:e.override.Override.from_iface
          in
          if matured && preferred_util < release_threshold then begin
            note prefix (R.Released { age_s = age });
            removed := (e.override, age) :: !removed
          end
          else begin
            note prefix
              (R.Release_deferred { age_s = age; matured; preferred_util });
            incr deferred;
            kept := e.override :: !kept;
            next := Bgp.Ptrie.add prefix e !next
          end)
    t.entries;

  (* pass 2: install what is new *)
  List.iter
    (fun (o : Override.t) ->
      if not (Bgp.Ptrie.mem o.Override.prefix t.entries) then begin
        note o.Override.prefix R.Installed;
        added := o :: !added;
        next :=
          Bgp.Ptrie.add o.Override.prefix { override = o; installed_at = time_s }
            !next
      end)
    desired;

  t.entries <- !next;
  {
    active = active t;
    added = List.rev !added;
    removed = List.rev !removed;
    retargeted = List.rev !retargeted;
    kept = List.rev !kept;
    deferred_releases = !deferred;
  }
