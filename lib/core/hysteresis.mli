(** Churn damping for overrides.

    The allocator is stateless, so two adjacent cycles can disagree about
    a borderline prefix and flap it between paths every 30 s. This layer
    reconciles the allocator's desired set with what is already installed:

    - an override present in both stays installed (no BGP churn at all);
    - a retarget (same prefix, different detour) is applied only after the
      override has been held [min_hold_s];
    - an override the allocator no longer wants is withdrawn only when it
      has been held [min_hold_s] {e and} the prefix's preferred interface
      is projected below the release threshold (threshold − margin), so a
      prefix does not oscillate across the overload threshold.

    Setting [min_hold_s = 0] and [release_margin = 0] disables damping —
    ablation A2. *)

type step_result = {
  active : Override.t list;     (** the set to enforce after this cycle *)
  added : Override.t list;
  removed : (Override.t * int) list; (** with lifetime in seconds *)
  retargeted : Override.t list; (** replaced in place (withdraw+announce) *)
  kept : Override.t list;       (** carried over unchanged *)
  deferred_releases : int;      (** wanted out, but damping kept them in *)
}

type t

val create : Config.t -> t

val step :
  ?trace:Ef_trace.Recorder.t ->
  t ->
  time_s:int ->
  desired:Override.t list ->
  preferred:Projection.t ->
  step_result
(** [preferred] is this cycle's BGP-only projection (no overrides): the
    release condition reads the would-be utilization of each override's
    relieved interface from it. Every per-prefix disposition (installed,
    kept, retargeted, damped, released, deferred) is reported to [trace]
    (default noop). *)

val active : t -> Override.t list
val installed_at : t -> Ef_bgp.Prefix.t -> int option
val active_count : t -> int

val ages : t -> now_s:int -> (Override.t * int) list
(** Every installed override with its age in seconds at [now_s], sorted
    by prefix (deterministic) — the raw material for [efctl top] and the
    override-age metrics. *)
