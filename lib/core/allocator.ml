module Bgp = Ef_bgp
module Snapshot = Ef_collector.Snapshot
module Iface = Ef_netsim.Iface
module Bitset = Ef_util.Bitset
module Trace = Ef_trace.Recorder

let log_src =
  Logs.Src.create "edge_fabric.allocator" ~doc:"Edge Fabric allocator"

module Log = (val Logs.src_log log_src)

type result = {
  overrides : Override.t list;
  before : Projection.t;
  final : Projection.t;
  residual : (Iface.t * float) list;
  moves_considered : int;
  splits : int;
}

(* /24 children inherit the parent's candidate routes; this table lets a
   child placement find them. *)
type state = {
  config : Config.t;
  thr : float array; (* iface id -> effective overload threshold *)
  snapshot : Snapshot.t;
  work : Projection.Working.t; (* mutated in place through the relief loop *)
  decide_proj : Projection.t; (* stale view used when iterative = false *)
  mutable overrides : Override.t list;
  mutable n_overrides : int; (* running List.length st.overrides *)
  mutable moves : int;
  mutable splits : int;
  split_parent : (Bgp.Prefix.t, Bgp.Prefix.t) Hashtbl.t;
  gave_up : Bitset.t; (* iface ids we cannot relieve further *)
  initially_over : Bitset.t; (* overloaded in the original projection *)
  over : Bitset.t; (* overloaded now, kept current from touched ifaces *)
  pos_of_iface : int array; (* iface id -> rank in the snapshot's list *)
  trace : Trace.t;
}

let candidates st prefix =
  let key =
    Option.value (Hashtbl.find_opt st.split_parent prefix) ~default:prefix
  in
  Snapshot.routes st.snapshot key

let capacity_of st iface_id =
  match Snapshot.iface_by_id st.snapshot iface_id with
  | Some i -> Iface.capacity_bps i
  | None -> invalid_arg "Allocator: unknown interface id"

let headroom st iface_id =
  (* room below the threshold on [iface_id], per the view the config says
     to decide against *)
  let load =
    if st.config.Config.iterative then
      Projection.Working.load_bps st.work ~iface_id
    else Projection.load_bps st.decide_proj ~iface_id
  in
  (capacity_of st iface_id *. st.thr.(iface_id)) -. load

(* Membership in [st.over] for one interface, from its current working
   load. Same predicate as [Projection.overloaded]. *)
let refresh_over st iface_id =
  match Snapshot.iface_by_id st.snapshot iface_id with
  | None -> ()
  | Some iface ->
      let u =
        Projection.Working.load_bps st.work ~iface_id
        /. Iface.capacity_bps iface
      in
      Bitset.set st.over iface_id (u > st.thr.(iface_id))

let refresh_touched st =
  List.iter (refresh_over st) (Projection.Working.drain_touched st.work)

(* The worst eligible overloaded interface: highest utilization, ties to
   the earlier interface in snapshot order — exactly the head of the
   sorted-and-filtered list the loop used to rebuild per iteration, found
   by scanning only the maintained overload set. *)
let pick_overloaded st =
  let best = ref None in
  Bitset.iter
    (fun id ->
      if
        (not (Bitset.mem st.gave_up id))
        && (st.config.Config.iterative || Bitset.mem st.initially_over id)
      then
        let u =
          Projection.Working.load_bps st.work ~iface_id:id
          /. capacity_of st id
        in
        match !best with
        | Some (_, bu, _) when bu > u -> ()
        | Some (_, bu, bpos) when bu = u && bpos < st.pos_of_iface.(id) -> ()
        | _ -> best := Some (id, u, st.pos_of_iface.(id)))
    st.over;
  match !best with Some (id, _, _) -> Some id | None -> None

(* The best detour for one placement: the highest-ranked alternate route
   on a different interface with room for the whole rate. Also returns the
   candidate verdicts (empty unless tracing — the list is only built when
   the recorder is live, keeping the disabled path allocation-free). *)
let find_target st (pl : Projection.placement) =
  let tracing = Trace.enabled st.trace in
  let verdicts = ref [] in
  let note level route iface_id verdict =
    if tracing then
      verdicts :=
        {
          Trace.cand_level = level;
          cand_peer_id = Bgp.Route.peer_id route;
          cand_iface_id = iface_id;
          cand_verdict = verdict;
        }
        :: !verdicts
  in
  let ranked = candidates st pl.Projection.placed_prefix in
  let rec go level = function
    | [] -> None
    | route :: rest -> (
        st.moves <- st.moves + 1;
        match Snapshot.iface_of_route st.snapshot route with
        | None ->
            note level route (-1) Trace.No_iface;
            go (level + 1) rest
        | Some iface ->
            let iface_id = Iface.id iface in
            if iface_id = pl.Projection.iface_id then begin
              note level route iface_id Trace.Same_iface;
              go (level + 1) rest
            end
            else
              let room = headroom st iface_id in
              if room >= pl.Projection.rate_bps then begin
                note level route iface_id Trace.Chosen;
                Some (route, iface_id, level)
              end
              else begin
                note level route iface_id
                  (Trace.No_headroom
                     {
                       needed_bps = pl.Projection.rate_bps;
                       headroom_bps = room;
                     });
                go (level + 1) rest
              end)
  in
  let target = go 0 ranked in
  (target, List.rev !verdicts)

let budget_left st =
  match st.config.Config.max_overrides_per_cycle with
  | None -> true
  | Some n -> st.n_overrides < n

(* Lazy, in the config's visiting order: the relief loop usually stops at
   the first movable placement, so on a dfz-scale interface (hundreds of
   thousands of placements) materializing the ordered list per attempt
   would dominate the cycle. The sequence walks the persistent set as of
   the call, so a successful move (which replaces the set) never
   invalidates it. *)
let ordered_placements st iface_id =
  match st.config.Config.order with
  | Config.Largest_first -> Projection.Working.placements_seq st.work ~iface_id
  | Config.Smallest_first ->
      Projection.Working.placements_rev_seq st.work ~iface_id

(* Split one placement into /24 children carrying equal shares. *)
let split_placement st (pl : Projection.placement) =
  let prefix = pl.Projection.placed_prefix in
  let parent_key =
    Option.value (Hashtbl.find_opt st.split_parent prefix) ~default:prefix
  in
  let children = Bgp.Prefix.subnets prefix 24 in
  match children with
  | [] | [ _ ] -> false
  | _ ->
      let share = pl.Projection.rate_bps /. float_of_int (List.length children) in
      Projection.Working.remove_placement st.work prefix;
      List.iter
        (fun child ->
          Hashtbl.replace st.split_parent child parent_key;
          Projection.Working.add_placement st.work ~prefix:child ~rate_bps:share
            ~route:pl.Projection.route ~iface_id:pl.Projection.iface_id
            ~overridden:false)
        children;
      st.splits <- st.splits + 1;
      if Trace.enabled st.trace then
        Trace.record_attempt st.trace
          {
            Trace.at_prefix = prefix;
            at_from_iface = pl.Projection.iface_id;
            at_rate_bps = pl.Projection.rate_bps;
            at_candidates = [];
            at_outcome = Trace.Split { children = List.length children };
          };
      true

(* One relief attempt on [iface_id]: move one placement (possibly after a
   split) or declare the interface stuck. Returns true if progress. *)
let relieve_once st iface_id =
  let placements =
    ordered_placements st iface_id
    |> Seq.filter (fun pl -> not pl.Projection.overridden)
  in
  let record_attempt pl candidates outcome =
    if Trace.enabled st.trace then
      Trace.record_attempt st.trace
        {
          Trace.at_prefix = pl.Projection.placed_prefix;
          at_from_iface = iface_id;
          at_rate_bps = pl.Projection.rate_bps;
          at_candidates = candidates;
          at_outcome = outcome;
        }
  in
  let try_move pl =
    match find_target st pl with
    | None, candidates ->
        record_attempt pl candidates Trace.No_target;
        false
    | Some (route, to_iface, level), candidates ->
        record_attempt pl candidates
          (Trace.Moved { to_iface; peer_id = Bgp.Route.peer_id route; level });
        Projection.Working.move st.work pl.Projection.placed_prefix
          ~to_route:route ~to_iface;
        st.overrides <-
          Override.make ~prefix:pl.Projection.placed_prefix ~target:route
            ~from_iface:iface_id ~to_iface ~preference_level:level
            ~rate_bps:pl.Projection.rate_bps
          :: st.overrides;
        st.n_overrides <- st.n_overrides + 1;
        true
  in
  let rec first_movable seq =
    match seq () with
    | Seq.Nil -> false
    | Seq.Cons (pl, rest) -> try_move pl || first_movable rest
  in
  if first_movable placements then true
  else
    match st.config.Config.granularity with
    | Config.Bgp_prefix -> false
    | Config.Split_24 -> (
        (* split the first splittable placement (in visiting order) and
           retry next round; failed moves above mutated nothing, so the
           captured sequence is still the current population *)
        let splittable =
          Seq.find
            (fun pl ->
              Bgp.Prefix.length pl.Projection.placed_prefix < 24
              && List.length (candidates st pl.Projection.placed_prefix) > 1)
            placements
        in
        match splittable with
        | None -> false
        | Some pl -> split_placement st pl)

type warm = {
  warm_image : Projection.Working.t;
      (* the pre-relief working view of [warm_snapshot]: BGP-preferred
         placement, no allocator moves applied. Never mutated — each use
         copies it first. *)
  warm_snapshot : Snapshot.t;
  warm_key : int list;
      (* [warm_snapshot]'s interface ids, sorted — computed once per warm
         record, never re-sorted on the healthy-cycle hot path *)
}

let iface_key s = List.sort compare (List.map Iface.id (Snapshot.ifaces s))

(* Set equality between the warm snapshot's interface ids and [snapshot]'s,
   cheap enough for every healthy cycle: short-circuit on max id, physical
   list identity (the no-[~ifaces] patch case) and list length before ever
   comparing against the cached key — the warm side's sort never reruns.
   (The old implementation allocated and sorted both full lists per cycle.) *)
let same_iface_ids w snapshot =
  Snapshot.max_iface_id w.warm_snapshot = Snapshot.max_iface_id snapshot
  && (Snapshot.ifaces w.warm_snapshot == Snapshot.ifaces snapshot
     || List.compare_lengths (Snapshot.ifaces w.warm_snapshot)
          (Snapshot.ifaces snapshot)
        = 0
        && w.warm_key = iface_key snapshot)

(* Warm start needs only the delta link: a linked snapshot's recorded
   iface_changes are exact, and [run_warm] patches the image over them
   (removals re-place their placements, additions re-decide the unplaced
   pool) before the regular dirty pass — an interface add/remove is an
   incremental event now, not a cold restart. *)
let warm_valid ?warm snapshot =
  match warm with
  | Some w -> Snapshot.linked w.warm_snapshot snapshot
  | None -> false

let warm_snapshot w = w.warm_snapshot
let preferred_image w = Projection.Working.copy w.warm_image

(* The relief loop proper, from a pre-relief projection: pure in
   (before, work, snapshot, config), so reaching the same pre-relief image
   incrementally or from scratch yields byte-identical results. *)
let run_core ?obs ~config ~trace ~before ~work snapshot =
  let universe = Snapshot.max_iface_id snapshot + 1 in
  let pos_of_iface = Array.make universe max_int in
  List.iteri
    (fun pos iface -> pos_of_iface.(Iface.id iface) <- pos)
    (Snapshot.ifaces snapshot);
  (* per-iface thresholds, resolved once into an array so the hot path
     stays a single load (and is untouched when the list is empty). An
     entry whose id falls outside the snapshot's interface universe is a
     misconfiguration the operator should see, not a silent drop. *)
  let thr = Array.make universe config.Config.overload_threshold in
  List.iter
    (fun (id, th) ->
      if id >= 0 && id < universe then thr.(id) <- th
      else begin
        Log.warn (fun m ->
            m
              "iface_thresholds entry for interface %d (%.3f) ignored: id \
               outside the snapshot's interface universe [0, %d)"
              id th universe);
        let reg =
          match obs with Some r -> r | None -> Ef_obs.Registry.default ()
        in
        Ef_obs.Counter.inc
          (Ef_obs.Registry.counter reg "allocator.iface_thresholds.dropped")
      end)
    config.Config.iface_thresholds;
  let st =
    {
      config;
      thr;
      snapshot;
      work;
      decide_proj = before;
      overrides = [];
      n_overrides = 0;
      moves = 0;
      splits = 0;
      split_parent = Hashtbl.create 64;
      gave_up = Bitset.create universe;
      initially_over = Bitset.create universe;
      over = Bitset.create universe;
      pos_of_iface;
      trace;
    }
  in
  (* single-pass (ablation A1) only ever relieves the interfaces that were
     overloaded in the original projection: it does not react to overloads
     its own detours create — that reaction is exactly what the iterative
     re-projection adds *)
  List.iter
    (fun (i, _) ->
      Bitset.add st.initially_over (Iface.id i);
      Bitset.add st.over (Iface.id i))
    (Projection.overloaded_by before ~threshold_of:(fun id -> thr.(id)));
  let progress = ref true in
  while !progress && budget_left st do
    progress := false;
    match pick_overloaded st with
    | None -> ()
    | Some iface_id ->
        if relieve_once st iface_id then begin
          progress := true;
          refresh_touched st
        end
        else Bitset.add st.gave_up iface_id
  done;
  let final = Projection.Working.seal st.work in
  (* /24 splitting can move many sibling children to the same target;
     re-aggregate them into covering CIDR blocks so enforcement announces
     the minimum number of routes (aggregation only ever merges complete
     sibling pairs, so children left behind block the merge — safe) *)
  let aggregate_children overrides =
    if Hashtbl.length st.split_parent = 0 then overrides
    else begin
      let is_child o = Hashtbl.mem st.split_parent o.Override.prefix in
      let children, whole = List.partition is_child overrides in
      let groups = Hashtbl.create 8 in
      List.iter
        (fun o ->
          let key =
            ( Override.target_peer_id o,
              o.Override.from_iface,
              o.Override.to_iface,
              o.Override.preference_level )
          in
          Hashtbl.replace groups key
            (o :: Option.value (Hashtbl.find_opt groups key) ~default:[]))
        children;
      let merged =
        Hashtbl.fold
          (fun _ group acc ->
            let blocks =
              Bgp.Prefix_set.aggregate
                (List.map (fun o -> o.Override.prefix) group)
            in
            let sample = List.hd group in
            List.map
              (fun block ->
                let rate =
                  List.fold_left
                    (fun r o ->
                      if Bgp.Prefix.subsumes block o.Override.prefix then
                        r +. o.Override.rate_bps
                      else r)
                    0.0 group
                in
                Override.make ~prefix:block ~target:sample.Override.target
                  ~from_iface:sample.Override.from_iface
                  ~to_iface:sample.Override.to_iface
                  ~preference_level:sample.Override.preference_level
                  ~rate_bps:rate)
              blocks
            @ acc)
          groups []
      in
      whole @ merged
    end
  in
  {
    overrides = aggregate_children (List.rev st.overrides);
    before;
    final;
    residual =
      Projection.overloaded_by final ~threshold_of:(fun id -> thr.(id));
    moves_considered = st.moves;
    splits = st.splits;
  }

let validate_config config =
  match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Allocator.run: bad config: " ^ msg)

let run ?obs ~config ?(trace = Trace.noop) snapshot =
  validate_config config;
  let shards = config.Config.shards in
  let before = Projection.project ~shards snapshot in
  let work = Projection.Working.of_projection ~shards before in
  run_core ?obs ~config ~trace ~before ~work snapshot

let run_warm ?obs ~config ?(trace = Trace.noop) ?warm snapshot =
  validate_config config;
  let warm_base =
    match warm with
    | Some w when warm_valid ~warm:w snapshot ->
        Some (w, Snapshot.diff w.warm_snapshot snapshot)
    | Some _ | None -> None
  in
  let before, work, key =
    match warm_base with
    | Some (w, d) ->
        (* advance last cycle's pre-relief image: first over the recorded
           interface-set delta (O(affected), nothing when the set only
           lost/kept capacity), then over the dirty prefix set. Two
           sequential passes, not one merged list — a prefix both
           re-placed by the iface pass and rate-churned must be retracted
           and re-placed twice, or its load would double-count. No
           overrides at this stage — the before-projection is always the
           BGP-preferred placement. *)
        let img = Projection.Working.copy w.warm_image in
        let set_unchanged = same_iface_ids w snapshot in
        if not set_unchanged then
          Projection.Working.apply_iface_delta img ~snapshot
            ~delta:d.Snapshot.iface_changes ();
        Projection.Working.apply_dirty img ~snapshot ~dirty:d.Snapshot.changes ();
        ignore (Projection.Working.drain_touched img);
        let key = if set_unchanged then w.warm_key else iface_key snapshot in
        (Projection.Working.seal img, img, key)
    | None ->
        let shards = config.Config.shards in
        let before = Projection.project ~shards snapshot in
        (before, Projection.Working.of_projection ~shards before,
         iface_key snapshot)
  in
  (* retain the pre-relief image before the relief loop mutates it *)
  let next_warm =
    {
      warm_image = Projection.Working.copy work;
      warm_snapshot = snapshot;
      warm_key = key;
    }
  in
  let result = run_core ?obs ~config ~trace ~before ~work snapshot in
  (result, next_warm)

let warm_of_result (r : result) snapshot =
  {
    warm_image = Projection.Working.of_projection r.before;
    warm_snapshot = snapshot;
    warm_key = iface_key snapshot;
  }

let relief_bps (r : result) =
  List.fold_left (fun acc o -> acc +. o.Override.rate_bps) 0.0 r.overrides

let check_invariants ~config result =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  (* 1. iterative mode never pushes a previously-fine interface over
     (each interface judged against its own effective threshold) *)
  if config.Config.iterative then
    List.iter
      (fun iface ->
        let threshold = Config.threshold_for config ~iface_id:(Iface.id iface) in
        let before_u = Projection.utilization result.before iface in
        let after_u = Projection.utilization result.final iface in
        if before_u <= threshold && after_u > threshold +. 1e-9 then
          err "iface %d pushed over threshold (%.3f -> %.3f)" (Iface.id iface)
            before_u after_u)
      (Projection.ifaces result.final);
  (* 2/3. structural override checks *)
  List.iter
    (fun o ->
      if o.Override.from_iface = o.Override.to_iface then
        err "override %a detours to its own interface" Override.pp o;
      if o.Override.rate_bps < 0.0 then err "negative rate in %a" Override.pp o)
    result.overrides;
  (* 4. budget *)
  (match config.Config.max_overrides_per_cycle with
  | Some n when List.length result.overrides > n ->
      err "override budget exceeded: %d > %d" (List.length result.overrides) n
  | Some _ | None -> ());
  match !errors with
  | [] -> Ok ()
  | es -> Error (String.concat "; " es)
