module Bgp = Ef_bgp
module Snapshot = Ef_collector.Snapshot
module Iface = Ef_netsim.Iface
module Bitset = Ef_util.Bitset
module Trace = Ef_trace.Recorder

type result = {
  overrides : Override.t list;
  before : Projection.t;
  final : Projection.t;
  residual : (Iface.t * float) list;
  moves_considered : int;
  splits : int;
}

(* /24 children inherit the parent's candidate routes; this table lets a
   child placement find them. *)
type state = {
  config : Config.t;
  thr : float array; (* iface id -> effective overload threshold *)
  snapshot : Snapshot.t;
  work : Projection.Working.t; (* mutated in place through the relief loop *)
  decide_proj : Projection.t; (* stale view used when iterative = false *)
  mutable overrides : Override.t list;
  mutable n_overrides : int; (* running List.length st.overrides *)
  mutable moves : int;
  mutable splits : int;
  split_parent : (Bgp.Prefix.t, Bgp.Prefix.t) Hashtbl.t;
  gave_up : Bitset.t; (* iface ids we cannot relieve further *)
  initially_over : Bitset.t; (* overloaded in the original projection *)
  over : Bitset.t; (* overloaded now, kept current from touched ifaces *)
  pos_of_iface : int array; (* iface id -> rank in the snapshot's list *)
  trace : Trace.t;
}

let candidates st prefix =
  let key =
    Option.value (Hashtbl.find_opt st.split_parent prefix) ~default:prefix
  in
  Snapshot.routes st.snapshot key

let capacity_of st iface_id =
  match Snapshot.iface_by_id st.snapshot iface_id with
  | Some i -> Iface.capacity_bps i
  | None -> invalid_arg "Allocator: unknown interface id"

let headroom st iface_id =
  (* room below the threshold on [iface_id], per the view the config says
     to decide against *)
  let load =
    if st.config.Config.iterative then
      Projection.Working.load_bps st.work ~iface_id
    else Projection.load_bps st.decide_proj ~iface_id
  in
  (capacity_of st iface_id *. st.thr.(iface_id)) -. load

(* Membership in [st.over] for one interface, from its current working
   load. Same predicate as [Projection.overloaded]. *)
let refresh_over st iface_id =
  match Snapshot.iface_by_id st.snapshot iface_id with
  | None -> ()
  | Some iface ->
      let u =
        Projection.Working.load_bps st.work ~iface_id
        /. Iface.capacity_bps iface
      in
      Bitset.set st.over iface_id (u > st.thr.(iface_id))

let refresh_touched st =
  List.iter (refresh_over st) (Projection.Working.drain_touched st.work)

(* The worst eligible overloaded interface: highest utilization, ties to
   the earlier interface in snapshot order — exactly the head of the
   sorted-and-filtered list the loop used to rebuild per iteration, found
   by scanning only the maintained overload set. *)
let pick_overloaded st =
  let best = ref None in
  Bitset.iter
    (fun id ->
      if
        (not (Bitset.mem st.gave_up id))
        && (st.config.Config.iterative || Bitset.mem st.initially_over id)
      then
        let u =
          Projection.Working.load_bps st.work ~iface_id:id
          /. capacity_of st id
        in
        match !best with
        | Some (_, bu, _) when bu > u -> ()
        | Some (_, bu, bpos) when bu = u && bpos < st.pos_of_iface.(id) -> ()
        | _ -> best := Some (id, u, st.pos_of_iface.(id)))
    st.over;
  match !best with Some (id, _, _) -> Some id | None -> None

(* The best detour for one placement: the highest-ranked alternate route
   on a different interface with room for the whole rate. Also returns the
   candidate verdicts (empty unless tracing — the list is only built when
   the recorder is live, keeping the disabled path allocation-free). *)
let find_target st (pl : Projection.placement) =
  let tracing = Trace.enabled st.trace in
  let verdicts = ref [] in
  let note level route iface_id verdict =
    if tracing then
      verdicts :=
        {
          Trace.cand_level = level;
          cand_peer_id = Bgp.Route.peer_id route;
          cand_iface_id = iface_id;
          cand_verdict = verdict;
        }
        :: !verdicts
  in
  let ranked = candidates st pl.Projection.placed_prefix in
  let rec go level = function
    | [] -> None
    | route :: rest -> (
        st.moves <- st.moves + 1;
        match Snapshot.iface_of_route st.snapshot route with
        | None ->
            note level route (-1) Trace.No_iface;
            go (level + 1) rest
        | Some iface ->
            let iface_id = Iface.id iface in
            if iface_id = pl.Projection.iface_id then begin
              note level route iface_id Trace.Same_iface;
              go (level + 1) rest
            end
            else
              let room = headroom st iface_id in
              if room >= pl.Projection.rate_bps then begin
                note level route iface_id Trace.Chosen;
                Some (route, iface_id, level)
              end
              else begin
                note level route iface_id
                  (Trace.No_headroom
                     {
                       needed_bps = pl.Projection.rate_bps;
                       headroom_bps = room;
                     });
                go (level + 1) rest
              end)
  in
  let target = go 0 ranked in
  (target, List.rev !verdicts)

let budget_left st =
  match st.config.Config.max_overrides_per_cycle with
  | None -> true
  | Some n -> st.n_overrides < n

(* Lazy, in the config's visiting order: the relief loop usually stops at
   the first movable placement, so on a dfz-scale interface (hundreds of
   thousands of placements) materializing the ordered list per attempt
   would dominate the cycle. The sequence walks the persistent set as of
   the call, so a successful move (which replaces the set) never
   invalidates it. *)
let ordered_placements st iface_id =
  match st.config.Config.order with
  | Config.Largest_first -> Projection.Working.placements_seq st.work ~iface_id
  | Config.Smallest_first ->
      Projection.Working.placements_rev_seq st.work ~iface_id

(* Split one placement into /24 children carrying equal shares. *)
let split_placement st (pl : Projection.placement) =
  let prefix = pl.Projection.placed_prefix in
  let parent_key =
    Option.value (Hashtbl.find_opt st.split_parent prefix) ~default:prefix
  in
  let children = Bgp.Prefix.subnets prefix 24 in
  match children with
  | [] | [ _ ] -> false
  | _ ->
      let share = pl.Projection.rate_bps /. float_of_int (List.length children) in
      Projection.Working.remove_placement st.work prefix;
      List.iter
        (fun child ->
          Hashtbl.replace st.split_parent child parent_key;
          Projection.Working.add_placement st.work ~prefix:child ~rate_bps:share
            ~route:pl.Projection.route ~iface_id:pl.Projection.iface_id
            ~overridden:false)
        children;
      st.splits <- st.splits + 1;
      if Trace.enabled st.trace then
        Trace.record_attempt st.trace
          {
            Trace.at_prefix = prefix;
            at_from_iface = pl.Projection.iface_id;
            at_rate_bps = pl.Projection.rate_bps;
            at_candidates = [];
            at_outcome = Trace.Split { children = List.length children };
          };
      true

(* One relief attempt on [iface_id]: move one placement (possibly after a
   split) or declare the interface stuck. Returns true if progress. *)
let relieve_once st iface_id =
  let placements =
    ordered_placements st iface_id
    |> Seq.filter (fun pl -> not pl.Projection.overridden)
  in
  let record_attempt pl candidates outcome =
    if Trace.enabled st.trace then
      Trace.record_attempt st.trace
        {
          Trace.at_prefix = pl.Projection.placed_prefix;
          at_from_iface = iface_id;
          at_rate_bps = pl.Projection.rate_bps;
          at_candidates = candidates;
          at_outcome = outcome;
        }
  in
  let try_move pl =
    match find_target st pl with
    | None, candidates ->
        record_attempt pl candidates Trace.No_target;
        false
    | Some (route, to_iface, level), candidates ->
        record_attempt pl candidates
          (Trace.Moved { to_iface; peer_id = Bgp.Route.peer_id route; level });
        Projection.Working.move st.work pl.Projection.placed_prefix
          ~to_route:route ~to_iface;
        st.overrides <-
          Override.make ~prefix:pl.Projection.placed_prefix ~target:route
            ~from_iface:iface_id ~to_iface ~preference_level:level
            ~rate_bps:pl.Projection.rate_bps
          :: st.overrides;
        st.n_overrides <- st.n_overrides + 1;
        true
  in
  let rec first_movable seq =
    match seq () with
    | Seq.Nil -> false
    | Seq.Cons (pl, rest) -> try_move pl || first_movable rest
  in
  if first_movable placements then true
  else
    match st.config.Config.granularity with
    | Config.Bgp_prefix -> false
    | Config.Split_24 -> (
        (* split the first splittable placement (in visiting order) and
           retry next round; failed moves above mutated nothing, so the
           captured sequence is still the current population *)
        let splittable =
          Seq.find
            (fun pl ->
              Bgp.Prefix.length pl.Projection.placed_prefix < 24
              && List.length (candidates st pl.Projection.placed_prefix) > 1)
            placements
        in
        match splittable with
        | None -> false
        | Some pl -> split_placement st pl)

type warm = {
  warm_image : Projection.Working.t;
      (* the pre-relief working view of [warm_snapshot]: BGP-preferred
         placement, no allocator moves applied. Never mutated — each use
         copies it first. *)
  warm_snapshot : Snapshot.t;
}

(* Warm start is only sound when the interface-id universe is unchanged:
   an appearing/disappearing interface re-routes prefixes that are not in
   the dirty set. Capacity-only changes are fine (placement ignores
   capacity; thresholds are re-derived every run). *)
let same_iface_ids a b =
  let ids s =
    List.sort compare (List.map Iface.id (Snapshot.ifaces s))
  in
  ids a = ids b

let warm_valid ?warm snapshot =
  match warm with
  | Some w ->
      Snapshot.linked w.warm_snapshot snapshot
      && same_iface_ids w.warm_snapshot snapshot
  | None -> false

let warm_snapshot w = w.warm_snapshot
let preferred_image w = Projection.Working.copy w.warm_image

(* The relief loop proper, from a pre-relief projection: pure in
   (before, work, snapshot, config), so reaching the same pre-relief image
   incrementally or from scratch yields byte-identical results. *)
let run_core ~config ~trace ~before ~work snapshot =
  let universe = Snapshot.max_iface_id snapshot + 1 in
  let pos_of_iface = Array.make universe max_int in
  List.iteri
    (fun pos iface -> pos_of_iface.(Iface.id iface) <- pos)
    (Snapshot.ifaces snapshot);
  (* per-iface thresholds, resolved once into an array so the hot path
     stays a single load (and is untouched when the list is empty) *)
  let thr = Array.make universe config.Config.overload_threshold in
  List.iter
    (fun (id, th) -> if id >= 0 && id < universe then thr.(id) <- th)
    config.Config.iface_thresholds;
  let st =
    {
      config;
      thr;
      snapshot;
      work;
      decide_proj = before;
      overrides = [];
      n_overrides = 0;
      moves = 0;
      splits = 0;
      split_parent = Hashtbl.create 64;
      gave_up = Bitset.create universe;
      initially_over = Bitset.create universe;
      over = Bitset.create universe;
      pos_of_iface;
      trace;
    }
  in
  (* single-pass (ablation A1) only ever relieves the interfaces that were
     overloaded in the original projection: it does not react to overloads
     its own detours create — that reaction is exactly what the iterative
     re-projection adds *)
  List.iter
    (fun (i, _) ->
      Bitset.add st.initially_over (Iface.id i);
      Bitset.add st.over (Iface.id i))
    (Projection.overloaded_by before ~threshold_of:(fun id -> thr.(id)));
  let progress = ref true in
  while !progress && budget_left st do
    progress := false;
    match pick_overloaded st with
    | None -> ()
    | Some iface_id ->
        if relieve_once st iface_id then begin
          progress := true;
          refresh_touched st
        end
        else Bitset.add st.gave_up iface_id
  done;
  let final = Projection.Working.seal st.work in
  (* /24 splitting can move many sibling children to the same target;
     re-aggregate them into covering CIDR blocks so enforcement announces
     the minimum number of routes (aggregation only ever merges complete
     sibling pairs, so children left behind block the merge — safe) *)
  let aggregate_children overrides =
    if Hashtbl.length st.split_parent = 0 then overrides
    else begin
      let is_child o = Hashtbl.mem st.split_parent o.Override.prefix in
      let children, whole = List.partition is_child overrides in
      let groups = Hashtbl.create 8 in
      List.iter
        (fun o ->
          let key =
            ( Override.target_peer_id o,
              o.Override.from_iface,
              o.Override.to_iface,
              o.Override.preference_level )
          in
          Hashtbl.replace groups key
            (o :: Option.value (Hashtbl.find_opt groups key) ~default:[]))
        children;
      let merged =
        Hashtbl.fold
          (fun _ group acc ->
            let blocks =
              Bgp.Prefix_set.aggregate
                (List.map (fun o -> o.Override.prefix) group)
            in
            let sample = List.hd group in
            List.map
              (fun block ->
                let rate =
                  List.fold_left
                    (fun r o ->
                      if Bgp.Prefix.subsumes block o.Override.prefix then
                        r +. o.Override.rate_bps
                      else r)
                    0.0 group
                in
                Override.make ~prefix:block ~target:sample.Override.target
                  ~from_iface:sample.Override.from_iface
                  ~to_iface:sample.Override.to_iface
                  ~preference_level:sample.Override.preference_level
                  ~rate_bps:rate)
              blocks
            @ acc)
          groups []
      in
      whole @ merged
    end
  in
  {
    overrides = aggregate_children (List.rev st.overrides);
    before;
    final;
    residual =
      Projection.overloaded_by final ~threshold_of:(fun id -> thr.(id));
    moves_considered = st.moves;
    splits = st.splits;
  }

let validate_config config =
  match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Allocator.run: bad config: " ^ msg)

let run ~config ?(trace = Trace.noop) snapshot =
  validate_config config;
  let shards = config.Config.shards in
  let before = Projection.project ~shards snapshot in
  let work = Projection.Working.of_projection ~shards before in
  run_core ~config ~trace ~before ~work snapshot

let run_warm ~config ?(trace = Trace.noop) ?warm snapshot =
  validate_config config;
  let warm_base =
    match warm with
    | Some w when warm_valid ~warm:w snapshot ->
        Some (w, Snapshot.diff w.warm_snapshot snapshot)
    | Some _ | None -> None
  in
  let before, work =
    match warm_base with
    | Some (w, d) ->
        (* advance last cycle's pre-relief image over the dirty set; no
           overrides at this stage — the before-projection is always the
           BGP-preferred placement *)
        let img = Projection.Working.copy w.warm_image in
        Projection.Working.apply_dirty img ~snapshot ~dirty:d.Snapshot.changes ();
        ignore (Projection.Working.drain_touched img);
        (Projection.Working.seal img, img)
    | None ->
        let shards = config.Config.shards in
        let before = Projection.project ~shards snapshot in
        (before, Projection.Working.of_projection ~shards before)
  in
  (* retain the pre-relief image before the relief loop mutates it *)
  let next_warm = { warm_image = Projection.Working.copy work; warm_snapshot = snapshot } in
  let result = run_core ~config ~trace ~before ~work snapshot in
  (result, next_warm)

let warm_of_result (r : result) snapshot =
  { warm_image = Projection.Working.of_projection r.before; warm_snapshot = snapshot }

let relief_bps (r : result) =
  List.fold_left (fun acc o -> acc +. o.Override.rate_bps) 0.0 r.overrides

let check_invariants ~config result =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  (* 1. iterative mode never pushes a previously-fine interface over
     (each interface judged against its own effective threshold) *)
  if config.Config.iterative then
    List.iter
      (fun iface ->
        let threshold = Config.threshold_for config ~iface_id:(Iface.id iface) in
        let before_u = Projection.utilization result.before iface in
        let after_u = Projection.utilization result.final iface in
        if before_u <= threshold && after_u > threshold +. 1e-9 then
          err "iface %d pushed over threshold (%.3f -> %.3f)" (Iface.id iface)
            before_u after_u)
      (Projection.ifaces result.final);
  (* 2/3. structural override checks *)
  List.iter
    (fun o ->
      if o.Override.from_iface = o.Override.to_iface then
        err "override %a detours to its own interface" Override.pp o;
      if o.Override.rate_bps < 0.0 then err "negative rate in %a" Override.pp o)
    result.overrides;
  (* 4. budget *)
  (match config.Config.max_overrides_per_cycle with
  | Some n when List.length result.overrides > n ->
      err "override budget exceeded: %d > %d" (List.length result.overrides) n
  | Some _ | None -> ());
  match !errors with
  | [] -> Ok ()
  | es -> Error (String.concat "; " es)
