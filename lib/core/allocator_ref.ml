(* The allocator exactly as it was before the indexed-snapshot /
   incremental-projection overhaul (modulo the shared canonical placement
   tiebreak, which lives in Projection.compare_placement). See the .mli
   for why this copy exists; keep its algorithmic shape frozen. *)

module Bgp = Ef_bgp
module Snapshot = Ef_collector.Snapshot
module Iface = Ef_netsim.Iface
module Trace = Ef_trace.Recorder

type state = {
  config : Config.t;
  snapshot : Snapshot.t;
  mutable proj : Projection.t;
  decide_proj : Projection.t; (* stale view used when iterative = false *)
  mutable overrides : Override.t list;
  mutable moves : int;
  mutable splits : int;
  split_parent : (Bgp.Prefix.t, Bgp.Prefix.t) Hashtbl.t;
  mutable gave_up : int list; (* iface ids we cannot relieve further *)
  trace : Trace.t;
}

let candidates st prefix =
  let key =
    Option.value (Hashtbl.find_opt st.split_parent prefix) ~default:prefix
  in
  Snapshot.routes st.snapshot key

let capacity_of st iface_id =
  match
    List.find_opt (fun i -> Iface.id i = iface_id) (Snapshot.ifaces st.snapshot)
  with
  | Some i -> Iface.capacity_bps i
  | None -> invalid_arg "Allocator_ref: unknown interface id"

let headroom st iface_id =
  let view = if st.config.Config.iterative then st.proj else st.decide_proj in
  (capacity_of st iface_id *. st.config.Config.overload_threshold)
  -. Projection.load_bps view ~iface_id

let find_target st (pl : Projection.placement) =
  let tracing = Trace.enabled st.trace in
  let verdicts = ref [] in
  let note level route iface_id verdict =
    if tracing then
      verdicts :=
        {
          Trace.cand_level = level;
          cand_peer_id = Bgp.Route.peer_id route;
          cand_iface_id = iface_id;
          cand_verdict = verdict;
        }
        :: !verdicts
  in
  let ranked = candidates st pl.Projection.placed_prefix in
  let rec go level = function
    | [] -> None
    | route :: rest -> (
        st.moves <- st.moves + 1;
        match Snapshot.iface_of_route st.snapshot route with
        | None ->
            note level route (-1) Trace.No_iface;
            go (level + 1) rest
        | Some iface ->
            let iface_id = Iface.id iface in
            if iface_id = pl.Projection.iface_id then begin
              note level route iface_id Trace.Same_iface;
              go (level + 1) rest
            end
            else
              let room = headroom st iface_id in
              if room >= pl.Projection.rate_bps then begin
                note level route iface_id Trace.Chosen;
                Some (route, iface_id, level)
              end
              else begin
                note level route iface_id
                  (Trace.No_headroom
                     {
                       needed_bps = pl.Projection.rate_bps;
                       headroom_bps = room;
                     });
                go (level + 1) rest
              end)
  in
  let target = go 0 ranked in
  (target, List.rev !verdicts)

let budget_left st =
  match st.config.Config.max_overrides_per_cycle with
  | None -> true
  | Some n -> List.length st.overrides < n

let order_placements st pls =
  match st.config.Config.order with
  | Config.Largest_first -> pls
  | Config.Smallest_first -> List.rev pls

let split_placement st (pl : Projection.placement) =
  let prefix = pl.Projection.placed_prefix in
  let parent_key =
    Option.value (Hashtbl.find_opt st.split_parent prefix) ~default:prefix
  in
  let children = Bgp.Prefix.subnets prefix 24 in
  match children with
  | [] | [ _ ] -> false
  | _ ->
      let share = pl.Projection.rate_bps /. float_of_int (List.length children) in
      st.proj <- Projection.remove_placement st.proj prefix;
      List.iter
        (fun child ->
          Hashtbl.replace st.split_parent child parent_key;
          st.proj <-
            Projection.add_placement st.proj ~prefix:child ~rate_bps:share
              ~route:pl.Projection.route ~iface_id:pl.Projection.iface_id
              ~overridden:false)
        children;
      st.splits <- st.splits + 1;
      if Trace.enabled st.trace then
        Trace.record_attempt st.trace
          {
            Trace.at_prefix = prefix;
            at_from_iface = pl.Projection.iface_id;
            at_rate_bps = pl.Projection.rate_bps;
            at_candidates = [];
            at_outcome = Trace.Split { children = List.length children };
          };
      true

let relieve_once st iface_id =
  let placements =
    Projection.placements_on st.proj ~iface_id
    |> List.filter (fun pl -> not pl.Projection.overridden)
    |> order_placements st
  in
  let record_attempt pl candidates outcome =
    if Trace.enabled st.trace then
      Trace.record_attempt st.trace
        {
          Trace.at_prefix = pl.Projection.placed_prefix;
          at_from_iface = iface_id;
          at_rate_bps = pl.Projection.rate_bps;
          at_candidates = candidates;
          at_outcome = outcome;
        }
  in
  let try_move pl =
    match find_target st pl with
    | None, candidates ->
        record_attempt pl candidates Trace.No_target;
        false
    | Some (route, to_iface, level), candidates ->
        record_attempt pl candidates
          (Trace.Moved { to_iface; peer_id = Bgp.Route.peer_id route; level });
        st.proj <-
          Projection.move st.proj pl.Projection.placed_prefix ~to_route:route
            ~to_iface;
        st.overrides <-
          Override.make ~prefix:pl.Projection.placed_prefix ~target:route
            ~from_iface:iface_id ~to_iface ~preference_level:level
            ~rate_bps:pl.Projection.rate_bps
          :: st.overrides;
        true
  in
  let rec first_movable = function
    | [] -> None
    | pl :: rest -> if try_move pl then Some pl else first_movable rest
  in
  match first_movable placements with
  | Some _ -> true
  | None -> (
      match st.config.Config.granularity with
      | Config.Bgp_prefix -> false
      | Config.Split_24 -> (
          let splittable =
            List.find_opt
              (fun pl ->
                Bgp.Prefix.length pl.Projection.placed_prefix < 24
                && List.length (candidates st pl.Projection.placed_prefix) > 1)
              placements
          in
          match splittable with
          | None -> false
          | Some pl -> split_placement st pl))

let run ~config ?(trace = Trace.noop) snapshot =
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Allocator_ref.run: bad config: " ^ msg));
  let before = Projection.project snapshot in
  let st =
    {
      config;
      snapshot;
      proj = before;
      decide_proj = before;
      overrides = [];
      moves = 0;
      splits = 0;
      split_parent = Hashtbl.create 64;
      gave_up = [];
      trace;
    }
  in
  let initially_over =
    List.map
      (fun (i, _) -> Iface.id i)
      (Projection.overloaded before ~threshold:config.Config.overload_threshold)
  in
  let progress = ref true in
  while !progress && budget_left st do
    progress := false;
    let over =
      Projection.overloaded st.proj ~threshold:config.Config.overload_threshold
      |> List.filter (fun (i, _) ->
             (not (List.mem (Iface.id i) st.gave_up))
             && (config.Config.iterative || List.mem (Iface.id i) initially_over))
    in
    match over with
    | [] -> ()
    | (iface, _) :: _ ->
        if relieve_once st (Iface.id iface) then progress := true
        else st.gave_up <- Iface.id iface :: st.gave_up
  done;
  let aggregate_children overrides =
    if Hashtbl.length st.split_parent = 0 then overrides
    else begin
      let is_child o = Hashtbl.mem st.split_parent o.Override.prefix in
      let children, whole = List.partition is_child overrides in
      let groups = Hashtbl.create 8 in
      List.iter
        (fun o ->
          let key =
            ( Override.target_peer_id o,
              o.Override.from_iface,
              o.Override.to_iface,
              o.Override.preference_level )
          in
          Hashtbl.replace groups key
            (o :: Option.value (Hashtbl.find_opt groups key) ~default:[]))
        children;
      let merged =
        Hashtbl.fold
          (fun _ group acc ->
            let blocks =
              Bgp.Prefix_set.aggregate
                (List.map (fun o -> o.Override.prefix) group)
            in
            let sample = List.hd group in
            List.map
              (fun block ->
                let rate =
                  List.fold_left
                    (fun r o ->
                      if Bgp.Prefix.subsumes block o.Override.prefix then
                        r +. o.Override.rate_bps
                      else r)
                    0.0 group
                in
                Override.make ~prefix:block ~target:sample.Override.target
                  ~from_iface:sample.Override.from_iface
                  ~to_iface:sample.Override.to_iface
                  ~preference_level:sample.Override.preference_level
                  ~rate_bps:rate)
              blocks
            @ acc)
          groups []
      in
      whole @ merged
    end
  in
  {
    Allocator.overrides = aggregate_children (List.rev st.overrides);
    before;
    final = st.proj;
    residual =
      Projection.overloaded st.proj ~threshold:config.Config.overload_threshold;
    moves_considered = st.moves;
    splits = st.splits;
  }
