(** Controller configuration.

    The defaults mirror the published deployment: interfaces are
    considered overloaded at ~95 % projected utilization, detours release
    with a margin below that (so a prefix does not flap across the
    threshold), and the allocator moves whole BGP prefixes unless /24
    splitting is enabled. *)

type order =
  | Largest_first   (** move the biggest prefixes first: fewest overrides *)
  | Smallest_first  (** move the smallest: finer control, more overrides *)

type granularity =
  | Bgp_prefix      (** detour exactly the announced prefix *)
  | Split_24        (** split into /24s and move only as much as needed *)

(** The configuration record.

    {b Deprecated for construction:} build configurations with {!make}
    and the [with_*] updaters instead of record literals or record
    update — new fields are added as the controller grows, and every
    literal construction breaks when they land. The record stays exposed
    (reading fields is fine) for the transition. *)
type t = {
  overload_threshold : float;  (** fraction of capacity, e.g. 0.95 *)
  iface_thresholds : (int * float) list;
      (** per-interface overrides of [overload_threshold], keyed by iface
          id — how compiled [Ef_policy] programs tighten e.g. a shared
          IXP port. Empty (the default) means the global threshold
          everywhere; ids must be unique. *)
  release_margin : float;      (** release when preferred util < threshold − margin *)
  min_hold_s : int;            (** an override persists at least this long *)
  order : order;
  iterative : bool;            (** re-project after every move (the paper's
                                   design); [false] reproduces the naive
                                   single-pass baseline for ablation A1 *)
  granularity : granularity;
  max_overrides_per_cycle : int option; (** safety valve; [None] = unbounded *)
  override_local_pref : int;   (** LOCAL_PREF of injected routes; must beat
                                   every policy tier *)
  guard : Guard.config;        (** blast-radius budgets applied to the
                                   allocator's output before enforcement *)
  max_snapshot_age_s : int;    (** degrade (hold last-good overrides) when the
                                   snapshot is older than this vs the
                                   controller's clock; see {!Controller.cycle} *)
  min_rate_confidence : float; (** freeze overrides when the snapshot's total
                                   rate drops below this fraction of the
                                   recent moving average (0 disables — the
                                   default; chaos runs opt in) *)
  incremental : bool;          (** warm-start allocator and enforcement
                                   projections from the previous cycle when
                                   consecutive snapshots are delta-linked
                                   (byte-identical results either way; see
                                   {!Allocator.run_warm}). [false] forces
                                   the cold path every cycle — the
                                   differential suites' reference mode *)
  shards : int;                (** partition cold projection / working-set
                                   builds across this many domains (the
                                   process-wide {!Ef_util.Pool}); outputs
                                   are byte-identical at any value, so
                                   this is purely a throughput knob. 1
                                   (the default) keeps everything on the
                                   calling domain *)
}

val default : t

val make :
  ?overload_threshold:float ->
  ?iface_thresholds:(int * float) list ->
  ?release_margin:float ->
  ?min_hold_s:int ->
  ?order:order ->
  ?iterative:bool ->
  ?granularity:granularity ->
  ?max_overrides_per_cycle:int ->
  ?override_local_pref:int ->
  ?guard:Guard.config ->
  ?max_snapshot_age_s:int ->
  ?min_rate_confidence:float ->
  ?incremental:bool ->
  ?shards:int ->
  unit ->
  t
(** Every omitted field takes its {!default} value
    ([max_overrides_per_cycle] defaults to unbounded). [make] does not
    validate — {!Controller.create} runs {!validate} on whatever it is
    given, and callers can call it directly. *)

(** Functional updaters, argument-last so they chain:
    [Config.default |> Config.with_min_hold_s 0 |> Config.with_release_margin 0.0] *)

val with_overload_threshold : float -> t -> t
val with_iface_thresholds : (int * float) list -> t -> t
val with_release_margin : float -> t -> t
val with_min_hold_s : int -> t -> t
val with_order : order -> t -> t
val with_iterative : bool -> t -> t
val with_granularity : granularity -> t -> t
val with_max_overrides_per_cycle : int option -> t -> t
val with_override_local_pref : int -> t -> t
val with_guard : Guard.config -> t -> t
val with_max_snapshot_age_s : int -> t -> t
val with_min_rate_confidence : float -> t -> t
val with_incremental : bool -> t -> t
val with_shards : int -> t -> t

val release_threshold : t -> float
(** [overload_threshold -. release_margin]. *)

val threshold_for : t -> iface_id:int -> float
(** The effective overload threshold for one interface:
    [iface_thresholds] override, else [overload_threshold]. *)

val release_threshold_for : t -> iface_id:int -> float
(** [threshold_for t ~iface_id -. release_margin]. *)

val validate : t -> (unit, string) result
(** Sanity checks: thresholds in (0, 1], margin below threshold,
    override LOCAL_PREF above the policy tiers. *)

val pp : Format.formatter -> t -> unit
