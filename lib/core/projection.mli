(** Load projection: what every egress interface would carry.

    The controller's first step each cycle: place every prefix's
    estimated rate onto an egress route (BGP-preferred by default, or an
    override where one applies) and sum per interface. The projection is
    also the controller's simulator — the allocator replays candidate
    moves against it before committing them. *)

type placement = {
  placed_prefix : Ef_bgp.Prefix.t;
  rate_bps : float;
  route : Ef_bgp.Route.t;
  iface_id : int;
  overridden : bool;
}

type t

val project :
  ?overrides:(Ef_bgp.Prefix.t -> Ef_bgp.Route.t option) ->
  ?shards:int ->
  Ef_collector.Snapshot.t ->
  t
(** Place every rated prefix. An override route is honoured only when it
    is still among the prefix's candidates (same neighbor) — a stale
    override falls back to the preferred route and is reported via
    {!stale_overrides}. Prefixes with no route at all are dropped and
    counted in {!unroutable_bps}.

    [shards > 1] partitions the prefix sequence across that many domains
    of the process-wide {!Ef_util.Pool} with per-shard scratch, merged
    deterministically — the result is byte-identical to [shards = 1] at
    any count (integer load sums are associative; tries and sets are
    content-canonical; every float fold runs in the serial pass's exact
    order). When sharded, [overrides] runs on worker domains and must be
    a pure function. Calls from inside a pool task fall back to the
    sequential pass. *)

val load_bps : t -> iface_id:int -> float
(** Per-interface load. Accumulated internally in integer millibps
    (order-independent, so a projection advanced placement-by-placement
    reports bit-identical loads to one rebuilt from scratch); quantization
    is ≤ 1 millibit/s per placement. *)

val utilization : t -> Ef_netsim.Iface.t -> float

val overloaded : t -> threshold:float -> (Ef_netsim.Iface.t * float) list
(** Interfaces whose utilization exceeds [threshold], worst first, with
    their utilization. *)

val overloaded_by :
  t -> threshold_of:(int -> float) -> (Ef_netsim.Iface.t * float) list
(** Like {!overloaded} with a per-interface threshold (keyed by iface
    id) — how per-iface policy thresholds ({!Config.threshold_for})
    enter the allocator. *)

val compare_placement : placement -> placement -> int
(** The canonical placement order: rate descending, then prefix
    ascending. A total order — allocator decisions and golden traces are
    byte-stable even when rates tie. *)

val placements_on : t -> iface_id:int -> placement list
(** In {!compare_placement} order. *)

val placements : t -> placement list
val placement_of : t -> Ef_bgp.Prefix.t -> placement option

val move : t -> Ef_bgp.Prefix.t -> to_route:Ef_bgp.Route.t -> to_iface:int -> t
(** Re-place one prefix onto a different route/interface (pure — returns
    an updated projection; the original is unchanged). Raises
    [Invalid_argument] if the prefix has no placement. *)

val add_placement :
  t ->
  prefix:Ef_bgp.Prefix.t ->
  rate_bps:float ->
  route:Ef_bgp.Route.t ->
  iface_id:int ->
  overridden:bool ->
  t
(** Insert a synthetic placement (used by /24 splitting, which replaces
    one parent placement with several children). *)

val remove_placement : t -> Ef_bgp.Prefix.t -> t

val total_bps : t -> float
val overridden_bps : t -> float
val unroutable_bps : t -> float

val stale_overrides : t -> Ef_bgp.Prefix.t list
(** Ascending prefix order — canonical, so cold and incremental cycles
    report byte-identical lists. *)

val ifaces : t -> Ef_netsim.Iface.t list

val iface_loads : t -> (Ef_netsim.Iface.t * float) list
(** Every interface paired with its projected load, in interface order.
    The raw material for provenance traces and utilization metrics. *)

(** The allocator's mutable scratch view of a projection.

    The immutable ops above copy the whole load array per move and fold
    the whole placement trie per [placements_on] — fine for auditing,
    quadratic for the relief loop. A working view is opened from a sealed
    projection, mutated in place (O(1) load updates, an O(log n)
    per-interface placement index kept in {!compare_placement} order),
    and sealed back into an ordinary immutable {!t} when the cycle's
    decisions are final, so every downstream consumer ([before]/[final],
    trace, guard, hysteresis) still sees the unchanged persistent type.

    A working view aliases nothing mutable in its source projection:
    sealing and the source are both safe to keep using. *)
module Working : sig
  type proj := t
  type t

  val of_projection : ?shards:int -> proj -> t
  (** O(placements · log). The source projection is not mutated.
      [shards > 1] builds the per-interface placement index on that many
      domains (merged per interface by set union — observably identical
      to the sequential build; see {!Projection.project} on sharding). *)

  val copy : t -> t
  (** O(interfaces) snapshot of a working view: load and index arrays are
      duplicated, everything persistent is shared. The copy and the
      original can then be mutated independently — this is how a cycle's
      pre-relief image is retained as the next cycle's warm-start base. *)

  val seal : t -> proj
  (** Freeze into an immutable projection. The working view may continue
      to be mutated afterwards; the sealed copy does not alias it. *)

  val load_bps : t -> iface_id:int -> float
  val placement_of : t -> Ef_bgp.Prefix.t -> placement option

  val placements_on : t -> iface_id:int -> placement list
  (** In {!compare_placement} order, materialized from the per-interface
      index: O(k) in that interface's placement count — never a fold of
      the whole trie. *)

  val placements_seq : t -> iface_id:int -> placement Seq.t
  (** {!placements_on} without materializing the list — the relief loop
      usually stops after a handful of placements, so on a 100k-placement
      interface the lazy walk is the difference between O(moves·log) and
      O(interface population) per relief step. The sequence is immutable
      (it walks the set as of the call); mutating the working view does
      not invalidate an already-obtained sequence. *)

  val placements_rev_seq : t -> iface_id:int -> placement Seq.t
  (** {!placements_seq} in reverse {!compare_placement} order (smallest
      rate first) — the lazy form of the allocator's smallest-first
      visiting order. *)

  val move : t -> Ef_bgp.Prefix.t -> to_route:Ef_bgp.Route.t -> to_iface:int -> unit
  (** In-place re-placement; marks the placement overridden. Raises
      [Invalid_argument] if the prefix has no placement. *)

  val add_placement :
    t ->
    prefix:Ef_bgp.Prefix.t ->
    rate_bps:float ->
    route:Ef_bgp.Route.t ->
    iface_id:int ->
    overridden:bool ->
    unit

  val remove_placement : t -> Ef_bgp.Prefix.t -> unit

  val apply_dirty :
    t ->
    snapshot:Ef_collector.Snapshot.t ->
    ?overrides:(Ef_bgp.Prefix.t -> Ef_bgp.Route.t option) ->
    dirty:Ef_collector.Snapshot.change list ->
    unit ->
    unit
  (** Advance a pre-relief working image to a new snapshot by re-placing
      only the dirty prefixes: each is retracted from wherever it sits
      (placement, unroutable pool, stale list) and re-decided with the
      cold pass's rule under [overrides]. Interface loads move by each
      placement's exact integer contribution (associative, so no
      re-summation is needed); the total is taken from the snapshot's
      canonical fold and the unroutable sum re-folds the unplaced set in
      its canonical order — every float is the one a full {!project} of
      [snapshot] would produce, so sealing the result is byte-identical
      to a cold projection, not merely close. Cost is O(dirty · log n),
      independent of table size.

      Preconditions (the callers' warm-validity checks): [snapshot] has
      the same interface-id set as the image's source — apply an
      interface-set delta first ({!apply_iface_delta}) when it does not;
      clean prefixes' candidate routes and the override assignment for
      clean prefixes are unchanged. Capacity-only interface changes are
      fine — the new interface list is adopted. *)

  val remove_iface :
    t ->
    snapshot:Ef_collector.Snapshot.t ->
    ?overrides:(Ef_bgp.Prefix.t -> Ef_bgp.Route.t option) ->
    iface_id:int ->
    unit ->
    unit
  (** Re-decide exactly the prefixes placed on [iface_id] against
      [snapshot] (which must no longer carry the interface) — O(affected
      · log n) via the per-iface placement index, never O(table). The
      affected set is exact because placement follows only the head
      candidate (or a still-valid override) and an unresolvable route
      leaves a prefix unplaced: no other prefix's decision can change
      when an interface disappears. *)

  val add_iface :
    t ->
    snapshot:Ef_collector.Snapshot.t ->
    ?overrides:(Ef_bgp.Prefix.t -> Ef_bgp.Route.t option) ->
    iface_id:int ->
    unit ->
    unit
  (** Re-decide the unplaced pool against [snapshot] (which now carries
      the interface) — the only prefixes whose decision an appearing
      interface can change, since a placed prefix's chosen route and its
      resolution are untouched. O(unplaced · log n). [iface_id] is
      documentation; one call re-decides for however many interfaces
      appeared. *)

  val apply_iface_delta :
    t ->
    snapshot:Ef_collector.Snapshot.t ->
    ?overrides:(Ef_bgp.Prefix.t -> Ef_bgp.Route.t option) ->
    delta:Ef_collector.Snapshot.iface_change list ->
    unit ->
    unit
  (** Apply a recorded {!Ef_collector.Snapshot.iface_change} list:
      removals re-place their placements, additions re-decide the
      unplaced pool once, capacity-only entries do nothing (placement
      ignores capacity; thresholds re-derive each run). Grows the
      internal per-interface arrays when an addition extends the id
      universe. Sealing afterwards is byte-identical to a cold
      {!Projection.project} of [snapshot] — same decision rule, integer
      load moves, canonical aggregate folds. *)

  val drain_touched : t -> int list
  (** Interface ids whose load changed since the last drain (most recent
      first, may repeat). The allocator re-checks only these against the
      overload threshold instead of rescanning every interface. *)
end
