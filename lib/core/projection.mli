(** Load projection: what every egress interface would carry.

    The controller's first step each cycle: place every prefix's
    estimated rate onto an egress route (BGP-preferred by default, or an
    override where one applies) and sum per interface. The projection is
    also the controller's simulator — the allocator replays candidate
    moves against it before committing them. *)

type placement = {
  placed_prefix : Ef_bgp.Prefix.t;
  rate_bps : float;
  route : Ef_bgp.Route.t;
  iface_id : int;
  overridden : bool;
}

type t

val project :
  ?overrides:(Ef_bgp.Prefix.t -> Ef_bgp.Route.t option) ->
  Ef_collector.Snapshot.t ->
  t
(** Place every rated prefix. An override route is honoured only when it
    is still among the prefix's candidates (same neighbor) — a stale
    override falls back to the preferred route and is reported via
    {!stale_overrides}. Prefixes with no route at all are dropped and
    counted in {!unroutable_bps}. *)

val load_bps : t -> iface_id:int -> float
val utilization : t -> Ef_netsim.Iface.t -> float

val overloaded : t -> threshold:float -> (Ef_netsim.Iface.t * float) list
(** Interfaces whose utilization exceeds [threshold], worst first, with
    their utilization. *)

val placements_on : t -> iface_id:int -> placement list
(** Descending by rate. *)

val placements : t -> placement list
val placement_of : t -> Ef_bgp.Prefix.t -> placement option

val move : t -> Ef_bgp.Prefix.t -> to_route:Ef_bgp.Route.t -> to_iface:int -> t
(** Re-place one prefix onto a different route/interface (pure — returns
    an updated projection; the original is unchanged). Raises
    [Invalid_argument] if the prefix has no placement. *)

val add_placement :
  t ->
  prefix:Ef_bgp.Prefix.t ->
  rate_bps:float ->
  route:Ef_bgp.Route.t ->
  iface_id:int ->
  overridden:bool ->
  t
(** Insert a synthetic placement (used by /24 splitting, which replaces
    one parent placement with several children). *)

val remove_placement : t -> Ef_bgp.Prefix.t -> t

val total_bps : t -> float
val overridden_bps : t -> float
val unroutable_bps : t -> float
val stale_overrides : t -> Ef_bgp.Prefix.t list
val ifaces : t -> Ef_netsim.Iface.t list

val iface_loads : t -> (Ef_netsim.Iface.t * float) list
(** Every interface paired with its projected load, in interface order.
    The raw material for provenance traces and utilization metrics. *)
