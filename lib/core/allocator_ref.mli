(** The pre-optimization allocator, kept verbatim as a reference.

    Same decisions, old data layout: pure {!Projection.t} updates (load
    array copied per move), [placements_on] folding the whole placement
    trie per relief attempt, [List.find_opt] capacity lookups,
    [List.length]/[List.mem] budget and give-up bookkeeping. Two uses:

    - the differential tests pin {!Allocator.run} to emit byte-identical
      overrides, residuals and trace records to this implementation on
      seeded worlds;
    - the E10d benchmarks measure the optimized cycle against this shape
      on the same snapshots, so the speedup claim has a live baseline.

    Do not optimize this module — its inefficiency is the point. *)

val run :
  config:Config.t ->
  ?trace:Ef_trace.Recorder.t ->
  Ef_collector.Snapshot.t ->
  Allocator.result
