module Bgp = Ef_bgp
module Snapshot = Ef_collector.Snapshot
module Obs = Ef_obs
module Trace = Ef_trace.Recorder

type degradation =
  | Stale_snapshot of { age_s : int; limit_s : int }
  | Low_confidence of { observed_bps : float; expected_bps : float }

let degradation_reason = function
  | Stale_snapshot _ -> "stale_snapshot"
  | Low_confidence _ -> "low_confidence"

let pp_degradation fmt = function
  | Stale_snapshot { age_s; limit_s } ->
      Format.fprintf fmt "stale snapshot (age %ds > limit %ds)" age_s limit_s
  | Low_confidence { observed_bps; expected_bps } ->
      Format.fprintf fmt "low confidence (%.3g bps vs %.3g expected)"
        observed_bps expected_bps

type cycle_stats = {
  time_s : int;
  total_bps : float;
  detoured_bps : float;
  preferred : Projection.t;
  enforced : Projection.t;
  allocator : Allocator.result;
  reconcile : Hysteresis.step_result;
  guard_dropped : Override.t list;
  guard_violations : Guard.violation list;
  overloaded_before : (Ef_netsim.Iface.t * float) list;
  overloaded_after : (Ef_netsim.Iface.t * float) list;
  degraded : degradation option;
}

let log_src = Logs.Src.create "edge_fabric.controller" ~doc:"Edge Fabric controller"

module Log = (val Logs.src_log log_src)

(* metric handles, resolved once per controller so a cycle touches only
   mutable cells and the monotonic clock *)
type obs_handles = {
  reg : Obs.Registry.t;
  sp_cycle : Obs.Histogram.t;
  sp_allocate : Obs.Histogram.t;
  sp_guard_clamp : Obs.Histogram.t;
  sp_reconcile : Obs.Histogram.t;
  sp_project : Obs.Histogram.t;
  sp_guard_audit : Obs.Histogram.t;
  c_cycles : Obs.Counter.t;
  c_added : Obs.Counter.t;
  c_removed : Obs.Counter.t;
  c_retargeted : Obs.Counter.t;
  c_shed : Obs.Counter.t;
  c_violations : Obs.Counter.t;
  c_residual : Obs.Counter.t;
  c_degraded : Obs.Counter.t;
  c_degraded_stale : Obs.Counter.t;
  c_degraded_lowconf : Obs.Counter.t;
  c_iface_patches : Obs.Counter.t;
  g_total_bps : Obs.Gauge.t;
  g_detoured_bps : Obs.Gauge.t;
  g_active : Obs.Gauge.t;
  g_snapshot_age : Obs.Gauge.t;
  h_gc_minor : Obs.Histogram.t;
  h_gc_major : Obs.Histogram.t;
  h_gc_promoted : Obs.Histogram.t;
  c_gc_compactions : Obs.Counter.t;
}

let obs_handles reg =
  {
    reg;
    sp_cycle = Obs.Registry.span reg "controller.cycle";
    sp_allocate = Obs.Registry.span reg "controller.allocate";
    sp_guard_clamp = Obs.Registry.span reg "controller.guard.clamp";
    sp_reconcile = Obs.Registry.span reg "controller.reconcile";
    sp_project = Obs.Registry.span reg "controller.project";
    sp_guard_audit = Obs.Registry.span reg "controller.guard.audit";
    c_cycles = Obs.Registry.counter reg "controller.cycles";
    c_added = Obs.Registry.counter reg "controller.overrides.added";
    c_removed = Obs.Registry.counter reg "controller.overrides.removed";
    c_retargeted = Obs.Registry.counter reg "controller.overrides.retargeted";
    c_shed = Obs.Registry.counter reg "controller.overrides.shed";
    c_violations = Obs.Registry.counter reg "controller.guard.violations";
    c_residual = Obs.Registry.counter reg "controller.residual_overloads";
    c_degraded = Obs.Registry.counter reg "controller.degraded.cycles";
    c_degraded_stale = Obs.Registry.counter reg "controller.degraded.stale";
    c_degraded_lowconf = Obs.Registry.counter reg "controller.degraded.low_confidence";
    c_iface_patches =
      Obs.Registry.counter reg "controller.incremental.iface_patches";
    g_total_bps = Obs.Registry.gauge reg "controller.total_bps";
    g_detoured_bps = Obs.Registry.gauge reg "controller.detoured_bps";
    g_active = Obs.Registry.gauge reg "controller.overrides.active";
    g_snapshot_age = Obs.Registry.gauge reg "controller.snapshot.age_s";
    h_gc_minor = Obs.Registry.histogram reg "controller.gc.minor_words";
    h_gc_major = Obs.Registry.histogram reg "controller.gc.major_words";
    h_gc_promoted = Obs.Registry.histogram reg "controller.gc.promoted_words";
    c_gc_compactions = Obs.Registry.counter reg "controller.gc.compactions";
  }

type t = {
  name : string;
  config : Config.t;
  hysteresis : Hysteresis.t;
  obs : obs_handles;
  trace : Trace.t;
  mutable cycles : int;
  (* input-confidence tracking: EWMA of total snapshot rate over healthy
     cycles only, so a feed blackout does not drag the baseline down *)
  mutable rate_ewma : float;
  mutable healthy_cycles : int;
  (* incremental state — advisory: any cycle may drop it (degraded
     inputs, unlinked snapshot) and fall back to the stateless cold path
     with identical results. Interface-set changes ride the warm path:
     a linked delta records them and the allocator patches the image. *)
  mutable alloc_warm : Allocator.warm option;
  mutable incr_hits : int;
}

let create ?(config = Config.default) ?obs ?(trace = Trace.noop) ~name () =
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Controller.create: bad config: " ^ msg));
  let reg = match obs with Some r -> r | None -> Obs.Registry.default () in
  {
    name;
    config;
    hysteresis = Hysteresis.create config;
    obs = obs_handles reg;
    trace;
    cycles = 0;
    rate_ewma = 0.0;
    healthy_cycles = 0;
    alloc_warm = None;
    incr_hits = 0;
  }

let name t = t.name
let config t = t.config
let active_overrides t = Hysteresis.active t.hysteresis
let cycles_run t = t.cycles
let incremental_hits t = t.incr_hits
let obs t = t.obs.reg
let trace t = t.trace

let override_ages t ~now_s = Hysteresis.ages t.hysteresis ~now_s

let overrides_lookup overrides =
  let trie =
    List.fold_left
      (fun m (o : Override.t) -> Bgp.Ptrie.add o.Override.prefix o.Override.target m)
      Bgp.Ptrie.empty overrides
  in
  fun prefix -> Bgp.Ptrie.find prefix trie

(* why the controller refuses to recompute this cycle, if it does *)
let detect_degradation t ~now_s snapshot =
  let age_s = now_s - Snapshot.time_s snapshot in
  if age_s > t.config.Config.max_snapshot_age_s then
    Some (Stale_snapshot { age_s; limit_s = t.config.Config.max_snapshot_age_s })
  else if
    t.config.Config.min_rate_confidence > 0.0
    && t.healthy_cycles >= 3
    && t.rate_ewma > 0.0
    && Snapshot.total_rate_bps snapshot
       < t.config.Config.min_rate_confidence *. t.rate_ewma
  then
    Some
      (Low_confidence
         {
           observed_bps = Snapshot.total_rate_bps snapshot;
           expected_bps = t.rate_ewma;
         })
  else None

(* Trace tail shared by normal and degraded cycles: the per-interface load
   table (projected = BGP-preferred, enforced = with the active override
   set) and every enforced override with the BGP attributes that realize
   it — then commit the cycle record. *)
let record_trace_tail t snapshot ~preferred ~enforced ~active =
  if Trace.enabled t.trace then begin
    let rows =
      List.map
        (fun iface ->
          let id = Ef_netsim.Iface.id iface in
          {
            Trace.if_id = id;
            if_name = Ef_netsim.Iface.name iface;
            if_capacity_bps = Ef_netsim.Iface.capacity_bps iface;
            if_projected_bps = Projection.load_bps preferred ~iface_id:id;
            if_enforced_bps = Projection.load_bps enforced ~iface_id:id;
            if_actual_bps = None;
          })
        (Snapshot.ifaces snapshot)
    in
    Trace.record_ifaces t.trace rows;
    let now = Snapshot.time_s snapshot in
    let lp = t.config.Config.override_local_pref in
    List.iter
      (fun (o : Override.t) ->
        let installed =
          Option.value
            (Hysteresis.installed_at t.hysteresis o.Override.prefix)
            ~default:now
        in
        let target_attrs = Bgp.Route.attrs o.Override.target in
        Trace.record_enforced t.trace
          {
            Trace.en_prefix = o.Override.prefix;
            en_from_iface = o.Override.from_iface;
            en_to_iface = o.Override.to_iface;
            en_peer_id = Override.target_peer_id o;
            en_level = o.Override.preference_level;
            en_rate_bps = o.Override.rate_bps;
            en_age_s = now - installed;
            en_local_pref = lp;
            en_communities =
              List.map Bgp.Community.to_string
                (Override.override_community
                :: target_attrs.Bgp.Attrs.communities);
          })
      active
  end;
  Trace.end_cycle t.trace

(* Fail static: keep the last-good override set enforced, touch nothing.
   The hysteresis state is left unstepped, so installation times and the
   release damping pick up exactly where they were once inputs recover. *)
let degraded_cycle t snapshot ~reason =
  let ob = t.obs in
  (* fail static all the way: degraded inputs invalidate the incremental
     cache too — the next healthy cycle re-enters cold and re-seeds it *)
  t.alloc_warm <- None;
  let active = Hysteresis.active t.hysteresis in
  let shards = t.config.Config.shards in
  let preferred = Projection.project ~shards snapshot in
  let enforced =
    Projection.project ~overrides:(overrides_lookup active) ~shards snapshot
  in
  let threshold = t.config.Config.overload_threshold in
  Obs.Counter.inc ob.c_degraded;
  (match reason with
  | Stale_snapshot _ -> Obs.Counter.inc ob.c_degraded_stale
  | Low_confidence _ -> Obs.Counter.inc ob.c_degraded_lowconf);
  Trace.set_degraded t.trace (degradation_reason reason);
  record_trace_tail t snapshot ~preferred ~enforced ~active;
  Log.warn (fun m ->
      m "%s: degraded cycle, holding %d overrides: %a" t.name
        (List.length active) pp_degradation reason);
  if Obs.Registry.has_sinks ob.reg then
    Obs.Registry.emit ob.reg ~name:"controller.degraded"
      [
        ("controller", Obs.Json.String t.name);
        ("time_s", Obs.Json.Int (Snapshot.time_s snapshot));
        ("reason", Obs.Json.String (degradation_reason reason));
        ("overrides_held", Obs.Json.Int (List.length active));
      ];
  {
    time_s = Snapshot.time_s snapshot;
    total_bps = Projection.total_bps enforced;
    detoured_bps = Projection.overridden_bps enforced;
    preferred;
    enforced;
    allocator =
      {
        Allocator.overrides = [];
        before = preferred;
        final = enforced;
        residual = [];
        moves_considered = 0;
        splits = 0;
      };
    reconcile =
      {
        Hysteresis.active;
        added = [];
        removed = [];
        retargeted = [];
        kept = active;
        deferred_releases = 0;
      };
    guard_dropped = [];
    guard_violations = [];
    overloaded_before = Projection.overloaded preferred ~threshold;
    overloaded_after = Projection.overloaded enforced ~threshold;
    degraded = Some reason;
  }

(* Per-cycle allocation/GC attribution: quick_stat deltas across the
   cycle body land in the gc histograms, and — when a profiler is
   attached to the registry — as a counter track in the Chrome trace. *)
let record_gc ob (gc0 : Gc.stat) =
  let gc1 = Gc.quick_stat () in
  let minor = gc1.Gc.minor_words -. gc0.Gc.minor_words in
  let major = gc1.Gc.major_words -. gc0.Gc.major_words in
  let promoted = gc1.Gc.promoted_words -. gc0.Gc.promoted_words in
  let compactions = gc1.Gc.compactions - gc0.Gc.compactions in
  Obs.Histogram.observe ob.h_gc_minor minor;
  Obs.Histogram.observe ob.h_gc_major major;
  Obs.Histogram.observe ob.h_gc_promoted promoted;
  if compactions > 0 then
    Obs.Counter.add ob.c_gc_compactions (float_of_int compactions);
  match Obs.Registry.profile_hook ob.reg with
  | None -> ()
  | Some hook ->
      hook.Obs.Registry.on_counter "gc"
        [
          ("minor_words", minor);
          ("major_words", major);
          ("promoted_words", promoted);
          ("compactions", float_of_int compactions);
        ]

let cycle ?now_s t snapshot =
  let ob = t.obs in
  Obs.Span.time_h ob.reg ob.sp_cycle @@ fun () ->
  let gc0 = Gc.quick_stat () in
  t.cycles <- t.cycles + 1;
  Trace.begin_cycle t.trace ~index:t.cycles ~time_s:(Snapshot.time_s snapshot);
  Obs.Counter.inc ob.c_cycles;
  let now_s = Option.value now_s ~default:(Snapshot.time_s snapshot) in
  Obs.Gauge.set ob.g_snapshot_age
    (float_of_int (now_s - Snapshot.time_s snapshot));
  match detect_degradation t ~now_s snapshot with
  | Some reason ->
      let stats = degraded_cycle t snapshot ~reason in
      record_gc ob gc0;
      stats
  | None ->
  let total = Snapshot.total_rate_bps snapshot in
  t.rate_ewma <-
    (if t.healthy_cycles = 0 then total
     else (0.7 *. t.rate_ewma) +. (0.3 *. total));
  t.healthy_cycles <- t.healthy_cycles + 1;
  let alloc =
    Obs.Span.time_h ob.reg ob.sp_allocate (fun () ->
        if t.config.Config.incremental then begin
          (if Allocator.warm_valid ?warm:t.alloc_warm snapshot then begin
             t.incr_hits <- t.incr_hits + 1;
             (* flap visibility: count warm cycles that also crossed an
                interface-set change — linked diffs are O(1), so this is
                a lookup of the recorded delta, not a recomputation *)
             match t.alloc_warm with
             | Some w
               when (Snapshot.diff (Allocator.warm_snapshot w) snapshot)
                      .Snapshot.iface_changes
                    <> [] ->
                 Obs.Counter.inc ob.c_iface_patches
             | Some _ | None -> ()
           end);
          let result, warm =
            Allocator.run_warm ~obs:ob.reg ~config:t.config ~trace:t.trace
              ?warm:t.alloc_warm snapshot
          in
          t.alloc_warm <- Some warm;
          result
        end
        else Allocator.run ~obs:ob.reg ~config:t.config ~trace:t.trace snapshot)
  in
  let desired, guard_dropped =
    Obs.Span.time_h ob.reg ob.sp_guard_clamp (fun () ->
        Guard.clamp ~trace:t.trace t.config.Config.guard snapshot
          alloc.Allocator.overrides)
  in
  if guard_dropped <> [] then
    Log.warn (fun m ->
        m "%s: guard dropped %d of %d proposed overrides" t.name
          (List.length guard_dropped)
          (List.length alloc.Allocator.overrides));
  let reconcile =
    Obs.Span.time_h ob.reg ob.sp_reconcile (fun () ->
        Hysteresis.step ~trace:t.trace t.hysteresis
          ~time_s:(Snapshot.time_s snapshot) ~desired
          ~preferred:alloc.Allocator.before)
  in
  let enforced =
    Obs.Span.time_h ob.reg ob.sp_project (fun () ->
        let lookup = overrides_lookup reconcile.Hysteresis.active in
        match t.alloc_warm with
        | Some w when Allocator.warm_snapshot w == snapshot ->
            (* the allocator just handed back the pre-relief preferred
               image of this very snapshot; the enforced projection is
               that image with only the active override prefixes
               re-decided — O(overrides), never O(table). Byte-identical
               to a cold [project ~overrides]: clean prefixes place the
               same either way, and the integer load accounting makes the
               aggregates order-independent. *)
            let img = Allocator.preferred_image w in
            let dirty =
              List.map
                (fun (o : Override.t) ->
                  let p = o.Override.prefix in
                  let r = Snapshot.rate_of snapshot p in
                  let r = if r > 0.0 then Some r else None in
                  { Snapshot.ch_prefix = p; ch_old_rate = r; ch_new_rate = r;
                    ch_routes = false })
                reconcile.Hysteresis.active
            in
            Projection.Working.apply_dirty img ~snapshot ~overrides:lookup
              ~dirty ();
            ignore (Projection.Working.drain_touched img);
            Projection.Working.seal img
        | Some _ | None ->
            Projection.project ~overrides:lookup
              ~shards:t.config.Config.shards snapshot)
  in
  let threshold = t.config.Config.overload_threshold in
  let guard_violations =
    Obs.Span.time_h ob.reg ob.sp_guard_audit (fun () ->
        Guard.audit ~enforced t.config.Config.guard snapshot
          reconcile.Hysteresis.active)
  in
  List.iter
    (fun v -> Log.warn (fun m -> m "%s: %a" t.name Guard.pp_violation v))
    guard_violations;
  let stats =
    {
      time_s = Snapshot.time_s snapshot;
      total_bps = Projection.total_bps enforced;
      detoured_bps = Projection.overridden_bps enforced;
      preferred = alloc.Allocator.before;
      enforced;
      allocator = alloc;
      reconcile;
      guard_dropped;
      guard_violations;
      overloaded_before = Projection.overloaded alloc.Allocator.before ~threshold;
      overloaded_after = Projection.overloaded enforced ~threshold;
      degraded = None;
    }
  in
  record_trace_tail t snapshot ~preferred:alloc.Allocator.before ~enforced
    ~active:reconcile.Hysteresis.active;
  let count l = float_of_int (List.length l) in
  Obs.Counter.add ob.c_added (count reconcile.Hysteresis.added);
  Obs.Counter.add ob.c_removed (count reconcile.Hysteresis.removed);
  Obs.Counter.add ob.c_retargeted (count reconcile.Hysteresis.retargeted);
  Obs.Counter.add ob.c_shed (count guard_dropped);
  Obs.Counter.add ob.c_violations (count guard_violations);
  Obs.Counter.add ob.c_residual (count alloc.Allocator.residual);
  Obs.Gauge.set ob.g_total_bps stats.total_bps;
  Obs.Gauge.set ob.g_detoured_bps stats.detoured_bps;
  Obs.Gauge.set ob.g_active (count reconcile.Hysteresis.active);
  if Obs.Registry.has_sinks ob.reg then
    Obs.Registry.emit ob.reg ~name:"controller.cycle"
      [
        ("controller", Obs.Json.String t.name);
        ("time_s", Obs.Json.Int stats.time_s);
        ("total_bps", Obs.Json.Float stats.total_bps);
        ("detoured_bps", Obs.Json.Float stats.detoured_bps);
        ("overrides_active", Obs.Json.Int (List.length reconcile.Hysteresis.active));
        ("added", Obs.Json.Int (List.length reconcile.Hysteresis.added));
        ("removed", Obs.Json.Int (List.length reconcile.Hysteresis.removed));
        ("retargeted", Obs.Json.Int (List.length reconcile.Hysteresis.retargeted));
        ("shed", Obs.Json.Int (List.length guard_dropped));
        ("residual", Obs.Json.Int (List.length alloc.Allocator.residual));
        ("violations", Obs.Json.Int (List.length guard_violations));
        ("overloaded_before", Obs.Json.Int (List.length stats.overloaded_before));
        ("overloaded_after", Obs.Json.Int (List.length stats.overloaded_after));
      ];
  record_gc ob gc0;
  stats

let bgp_updates t stats =
  let lp = t.config.Config.override_local_pref in
  let withdrawals =
    List.map
      (fun (o, _age) -> Override.to_withdrawal o)
      stats.reconcile.Hysteresis.removed
  in
  let announcements =
    List.map
      (fun o -> Override.to_announcement o ~local_pref:lp)
      (stats.reconcile.Hysteresis.added @ stats.reconcile.Hysteresis.retargeted)
  in
  withdrawals @ announcements

let detour_fraction stats =
  if stats.total_bps <= 0.0 then 0.0 else stats.detoured_bps /. stats.total_bps

(* --- cycle_stats accessors --------------------------------------------- *)

let time_s stats = stats.time_s
let total_bps stats = stats.total_bps
let detoured_bps stats = stats.detoured_bps
let preferred stats = stats.preferred
let enforced stats = stats.enforced
let allocator_result stats = stats.allocator
let reconcile_result stats = stats.reconcile
let guard_dropped stats = stats.guard_dropped
let guard_violations stats = stats.guard_violations
let overloaded_before stats = stats.overloaded_before
let overloaded_after stats = stats.overloaded_after
let overrides_enforced stats = stats.reconcile.Hysteresis.active
let overrides_added stats = stats.reconcile.Hysteresis.added
let overrides_removed stats = stats.reconcile.Hysteresis.removed
let overrides_retargeted stats = stats.reconcile.Hysteresis.retargeted
let residual_overloads stats = stats.allocator.Allocator.residual
let degraded stats = stats.degraded

let pp_cycle_stats fmt stats =
  (match stats.degraded with
  | Some reason -> Format.fprintf fmt "DEGRADED(%a) " pp_degradation reason
  | None -> ());
  Format.fprintf fmt
    "t=%d total=%.3gbps detoured=%.3gbps (%.1f%%) overrides=%d (+%d/-%d/~%d) \
     shed=%d residual=%d violations=%d overloaded %d->%d"
    stats.time_s stats.total_bps stats.detoured_bps
    (100.0 *. detour_fraction stats)
    (List.length stats.reconcile.Hysteresis.active)
    (List.length stats.reconcile.Hysteresis.added)
    (List.length stats.reconcile.Hysteresis.removed)
    (List.length stats.reconcile.Hysteresis.retargeted)
    (List.length stats.guard_dropped)
    (List.length stats.allocator.Allocator.residual)
    (List.length stats.guard_violations)
    (List.length stats.overloaded_before)
    (List.length stats.overloaded_after)

let cycle_stats_to_json stats =
  Obs.Json.Obj
    [
      ("time_s", Obs.Json.Int stats.time_s);
      ("total_bps", Obs.Json.Float stats.total_bps);
      ("detoured_bps", Obs.Json.Float stats.detoured_bps);
      ("detour_fraction", Obs.Json.Float (detour_fraction stats));
      ( "overrides",
        Obs.Json.Obj
          [
            ("active", Obs.Json.Int (List.length stats.reconcile.Hysteresis.active));
            ("added", Obs.Json.Int (List.length stats.reconcile.Hysteresis.added));
            ("removed", Obs.Json.Int (List.length stats.reconcile.Hysteresis.removed));
            ( "retargeted",
              Obs.Json.Int (List.length stats.reconcile.Hysteresis.retargeted) );
            ("shed", Obs.Json.Int (List.length stats.guard_dropped));
            ( "deferred_releases",
              Obs.Json.Int stats.reconcile.Hysteresis.deferred_releases );
          ] );
      ("residual_overloads", Obs.Json.Int (List.length stats.allocator.Allocator.residual));
      ("guard_violations", Obs.Json.Int (List.length stats.guard_violations));
      ("overloaded_before", Obs.Json.Int (List.length stats.overloaded_before));
      ("overloaded_after", Obs.Json.Int (List.length stats.overloaded_after));
      ( "degraded",
        match stats.degraded with
        | None -> Obs.Json.Null
        | Some reason -> Obs.Json.String (degradation_reason reason) );
    ]
