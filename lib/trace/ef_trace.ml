(** Ef_trace: per-prefix decision provenance.

    The {!Recorder} collects, per controller cycle, a causal record of
    every prefix the pipeline touched — which candidates the allocator
    examined and why the losers lost, what the guard shed, how hysteresis
    damped moves, and the final enforced placements with their BGP
    attributes — in a bounded ring of recent cycles. {!Explain} renders a
    prefix's chain for operators ([efctl explain]). See [DESIGN.md]
    ("Decision provenance: the Ef_trace layer"). *)

module Recorder = Recorder
module Explain = Explain
module Export = Export
