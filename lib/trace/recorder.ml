module Json = Ef_obs.Json
module Prefix = Ef_bgp.Prefix

type candidate_verdict =
  | Chosen
  | Same_iface
  | No_iface
  | No_headroom of { needed_bps : float; headroom_bps : float }

type candidate = {
  cand_level : int;
  cand_peer_id : int;
  cand_iface_id : int;
  cand_verdict : candidate_verdict;
}

type alloc_outcome =
  | Moved of { to_iface : int; peer_id : int; level : int }
  | No_target
  | Split of { children : int }

type attempt = {
  at_prefix : Prefix.t;
  at_from_iface : int;
  at_rate_bps : float;
  at_candidates : candidate list;
  at_outcome : alloc_outcome;
}

type guard_reason = Stale_target | Budget

type guard_drop = {
  gd_prefix : Prefix.t;
  gd_reason : guard_reason;
  gd_rate_bps : float;
}

type hys_disposition =
  | Installed
  | Kept of { age_s : int }
  | Retargeted of { age_s : int }
  | Hold_retarget of { age_s : int; min_hold_s : int }
  | Released of { age_s : int }
  | Release_deferred of { age_s : int; matured : bool; preferred_util : float }

type hys_entry = { hy_prefix : Prefix.t; hy_disposition : hys_disposition }

type enforced = {
  en_prefix : Prefix.t;
  en_from_iface : int;
  en_to_iface : int;
  en_peer_id : int;
  en_level : int;
  en_rate_bps : float;
  en_age_s : int;
  en_local_pref : int;
  en_communities : string list;
}

type iface_row = {
  if_id : int;
  if_name : string;
  if_capacity_bps : float;
  if_projected_bps : float;
  if_enforced_bps : float;
  mutable if_actual_bps : float option;
}

type cycle = {
  cy_index : int;
  cy_time_s : int;
  mutable cy_degraded : string option;
  mutable cy_ifaces : iface_row list;
  mutable cy_attempts : attempt list;
  mutable cy_guard : guard_drop list;
  mutable cy_hys : hys_entry list;
  mutable cy_enforced : enforced list;
}

type t = {
  enabled : bool;
  ring_capacity : int;
  mutable current : cycle option;
  (* newest first; committed cycles store their lists in pipeline order *)
  mutable ring : cycle list;
  mutable ring_len : int;
}

let create ?(capacity = 64) () =
  {
    enabled = true;
    ring_capacity = max 1 capacity;
    current = None;
    ring = [];
    ring_len = 0;
  }

let noop =
  { enabled = false; ring_capacity = 0; current = None; ring = []; ring_len = 0 }

let enabled t = t.enabled
let capacity t = t.ring_capacity

(* while a cycle is open its lists accumulate newest-first; commit
   reverses them into pipeline order *)
let commit t c =
  c.cy_attempts <- List.rev c.cy_attempts;
  c.cy_guard <- List.rev c.cy_guard;
  c.cy_hys <- List.rev c.cy_hys;
  c.cy_enforced <- List.rev c.cy_enforced;
  t.ring <- c :: t.ring;
  t.ring_len <- t.ring_len + 1;
  if t.ring_len > t.ring_capacity then begin
    (* drop the oldest: truncate the newest-first list *)
    t.ring <- List.filteri (fun i _ -> i < t.ring_capacity) t.ring;
    t.ring_len <- t.ring_capacity
  end

let end_cycle t =
  if t.enabled then
    match t.current with
    | None -> ()
    | Some c ->
        t.current <- None;
        commit t c

let begin_cycle t ~index ~time_s =
  if t.enabled then begin
    end_cycle t;
    t.current <-
      Some
        {
          cy_index = index;
          cy_time_s = time_s;
          cy_degraded = None;
          cy_ifaces = [];
          cy_attempts = [];
          cy_guard = [];
          cy_hys = [];
          cy_enforced = [];
        }
  end

let with_current t f =
  if t.enabled then match t.current with None -> () | Some c -> f c

let set_degraded t reason = with_current t (fun c -> c.cy_degraded <- Some reason)

let record_attempt t a =
  with_current t (fun c -> c.cy_attempts <- a :: c.cy_attempts)

let record_guard_drop t d =
  with_current t (fun c -> c.cy_guard <- d :: c.cy_guard)

let record_hysteresis t e =
  with_current t (fun c -> c.cy_hys <- e :: c.cy_hys)

let record_enforced t e =
  with_current t (fun c -> c.cy_enforced <- e :: c.cy_enforced)

let record_ifaces t rows = with_current t (fun c -> c.cy_ifaces <- rows)

let annotate_actual t loads =
  if t.enabled then
    match t.ring with
    | [] -> ()
    | newest :: _ ->
        List.iter
          (fun row ->
            match List.assoc_opt row.if_id loads with
            | Some bps -> row.if_actual_bps <- Some bps
            | None -> ())
          newest.cy_ifaces

let cycles t = List.rev t.ring
let latest t = match t.ring with [] -> None | c :: _ -> Some c

let find_cycle t ~index =
  List.find_opt (fun c -> c.cy_index = index) t.ring

let prefix_matches recorded wanted =
  Prefix.equal recorded wanted
  || Prefix.subsumes wanted recorded (* /24 child of the asked prefix *)

let touched c prefix =
  List.exists (fun a -> prefix_matches a.at_prefix prefix) c.cy_attempts
  || List.exists (fun d -> prefix_matches d.gd_prefix prefix) c.cy_guard
  || List.exists (fun e -> prefix_matches e.hy_prefix prefix) c.cy_hys
  || List.exists (fun e -> prefix_matches e.en_prefix prefix) c.cy_enforced

let cycles_touching t prefix =
  List.filter (fun c -> touched c prefix) (cycles t)

(* --- serialization ----------------------------------------------------- *)

let verdict_to_json = function
  | Chosen -> Json.Obj [ ("verdict", Json.String "chosen") ]
  | Same_iface -> Json.Obj [ ("verdict", Json.String "same_iface") ]
  | No_iface -> Json.Obj [ ("verdict", Json.String "no_iface") ]
  | No_headroom { needed_bps; headroom_bps } ->
      Json.Obj
        [
          ("verdict", Json.String "no_headroom");
          ("needed_bps", Json.Float needed_bps);
          ("headroom_bps", Json.Float headroom_bps);
        ]

let candidate_to_json c =
  Json.Obj
    (("level", Json.Int c.cand_level)
    :: ("peer_id", Json.Int c.cand_peer_id)
    :: ("iface_id", Json.Int c.cand_iface_id)
    ::
    (match verdict_to_json c.cand_verdict with
    | Json.Obj fields -> fields
    | _ -> []))

let outcome_to_json = function
  | Moved { to_iface; peer_id; level } ->
      Json.Obj
        [
          ("outcome", Json.String "moved");
          ("to_iface", Json.Int to_iface);
          ("peer_id", Json.Int peer_id);
          ("level", Json.Int level);
        ]
  | No_target -> Json.Obj [ ("outcome", Json.String "no_target") ]
  | Split { children } ->
      Json.Obj
        [ ("outcome", Json.String "split"); ("children", Json.Int children) ]

let attempt_to_json a =
  Json.Obj
    [
      ("prefix", Json.String (Prefix.to_string a.at_prefix));
      ("from_iface", Json.Int a.at_from_iface);
      ("rate_bps", Json.Float a.at_rate_bps);
      ("candidates", Json.List (List.map candidate_to_json a.at_candidates));
      ("result", outcome_to_json a.at_outcome);
    ]

let guard_reason_to_string = function
  | Stale_target -> "stale_target"
  | Budget -> "budget"

let guard_drop_to_json d =
  Json.Obj
    [
      ("prefix", Json.String (Prefix.to_string d.gd_prefix));
      ("reason", Json.String (guard_reason_to_string d.gd_reason));
      ("rate_bps", Json.Float d.gd_rate_bps);
    ]

let hys_disposition_to_json = function
  | Installed -> Json.Obj [ ("action", Json.String "installed") ]
  | Kept { age_s } ->
      Json.Obj [ ("action", Json.String "kept"); ("age_s", Json.Int age_s) ]
  | Retargeted { age_s } ->
      Json.Obj
        [ ("action", Json.String "retargeted"); ("age_s", Json.Int age_s) ]
  | Hold_retarget { age_s; min_hold_s } ->
      Json.Obj
        [
          ("action", Json.String "hold_retarget");
          ("age_s", Json.Int age_s);
          ("min_hold_s", Json.Int min_hold_s);
        ]
  | Released { age_s } ->
      Json.Obj [ ("action", Json.String "released"); ("age_s", Json.Int age_s) ]
  | Release_deferred { age_s; matured; preferred_util } ->
      Json.Obj
        [
          ("action", Json.String "release_deferred");
          ("age_s", Json.Int age_s);
          ("matured", Json.Bool matured);
          ("preferred_util", Json.Float preferred_util);
        ]

let hys_entry_to_json e =
  Json.Obj
    (("prefix", Json.String (Prefix.to_string e.hy_prefix))
    ::
    (match hys_disposition_to_json e.hy_disposition with
    | Json.Obj fields -> fields
    | _ -> []))

let enforced_to_json e =
  Json.Obj
    [
      ("prefix", Json.String (Prefix.to_string e.en_prefix));
      ("from_iface", Json.Int e.en_from_iface);
      ("to_iface", Json.Int e.en_to_iface);
      ("peer_id", Json.Int e.en_peer_id);
      ("level", Json.Int e.en_level);
      ("rate_bps", Json.Float e.en_rate_bps);
      ("age_s", Json.Int e.en_age_s);
      ("local_pref", Json.Int e.en_local_pref);
      ( "communities",
        Json.List (List.map (fun c -> Json.String c) e.en_communities) );
    ]

let iface_row_to_json r =
  Json.Obj
    [
      ("id", Json.Int r.if_id);
      ("name", Json.String r.if_name);
      ("capacity_bps", Json.Float r.if_capacity_bps);
      ("projected_bps", Json.Float r.if_projected_bps);
      ("enforced_bps", Json.Float r.if_enforced_bps);
      ( "actual_bps",
        match r.if_actual_bps with
        | None -> Json.Null
        | Some bps -> Json.Float bps );
    ]

let cycle_to_json c =
  Json.Obj
    [
      ("cycle", Json.Int c.cy_index);
      ("time_s", Json.Int c.cy_time_s);
      ( "degraded",
        match c.cy_degraded with
        | None -> Json.Null
        | Some r -> Json.String r );
      ("ifaces", Json.List (List.map iface_row_to_json c.cy_ifaces));
      ("allocator", Json.List (List.map attempt_to_json c.cy_attempts));
      ("guard", Json.List (List.map guard_drop_to_json c.cy_guard));
      ("hysteresis", Json.List (List.map hys_entry_to_json c.cy_hys));
      ("enforced", Json.List (List.map enforced_to_json c.cy_enforced));
    ]

let to_json t =
  Json.Obj
    [
      ("capacity", Json.Int t.ring_capacity);
      ("cycles", Json.List (List.map cycle_to_json (cycles t)));
    ]
