module R = Recorder
module Prefix = Ef_bgp.Prefix

let pp_bps fmt bps = Ef_util.Units.pp_rate fmt bps

let matches recorded wanted =
  Prefix.equal recorded wanted || Prefix.subsumes wanted recorded

let iface_label cycle id =
  match List.find_opt (fun r -> r.R.if_id = id) cycle.R.cy_ifaces with
  | Some r -> Printf.sprintf "%s (iface %d)" r.R.if_name id
  | None -> Printf.sprintf "iface %d" id

let pp_candidate cycle fmt (c : R.candidate) =
  let target =
    if c.R.cand_iface_id < 0 then Printf.sprintf "peer %d" c.R.cand_peer_id
    else
      Printf.sprintf "peer %d via %s" c.R.cand_peer_id
        (iface_label cycle c.R.cand_iface_id)
  in
  match c.R.cand_verdict with
  | R.Chosen -> Format.fprintf fmt "#%d %s — CHOSEN" c.R.cand_level target
  | R.Same_iface ->
      Format.fprintf fmt "#%d %s — rejected: same interface being relieved"
        c.R.cand_level target
  | R.No_iface ->
      Format.fprintf fmt "#%d %s — rejected: no egress interface"
        c.R.cand_level target
  | R.No_headroom { needed_bps; headroom_bps } ->
      Format.fprintf fmt "#%d %s — rejected: needs %a, only %a of headroom"
        c.R.cand_level target pp_bps needed_bps pp_bps headroom_bps

let pp_attempt cycle fmt (a : R.attempt) =
  Format.fprintf fmt "  allocator: %a (%a) on overloaded %s@,"
    Prefix.pp a.R.at_prefix pp_bps a.R.at_rate_bps
    (iface_label cycle a.R.at_from_iface);
  List.iter
    (fun c -> Format.fprintf fmt "    candidate %a@," (pp_candidate cycle) c)
    a.R.at_candidates;
  match a.R.at_outcome with
  | R.Moved { to_iface; peer_id; level } ->
      Format.fprintf fmt "    => detour to %s (peer %d, preference #%d)@,"
        (iface_label cycle to_iface) peer_id level
  | R.No_target ->
      Format.fprintf fmt "    => stuck: no alternate with room@,"
  | R.Split { children } ->
      Format.fprintf fmt "    => split into %d /24 children and retried@,"
        children

let pp_guard fmt (d : R.guard_drop) =
  let reason =
    match d.R.gd_reason with
    | R.Stale_target -> "its detour route vanished from the RIB"
    | R.Budget -> "a blast-radius budget was exceeded"
  in
  Format.fprintf fmt "  guard: dropped %a (%a) — %s@," Prefix.pp d.R.gd_prefix
    pp_bps d.R.gd_rate_bps reason

let pp_hys fmt (e : R.hys_entry) =
  let p = e.R.hy_prefix in
  match e.R.hy_disposition with
  | R.Installed -> Format.fprintf fmt "  hysteresis: %a installed@," Prefix.pp p
  | R.Kept { age_s } ->
      Format.fprintf fmt "  hysteresis: %a kept unchanged (age %ds)@,"
        Prefix.pp p age_s
  | R.Retargeted { age_s } ->
      Format.fprintf fmt "  hysteresis: %a retargeted after %ds@," Prefix.pp p
        age_s
  | R.Hold_retarget { age_s; min_hold_s } ->
      Format.fprintf fmt
        "  hysteresis: %a retarget damped — age %ds < min hold %ds@,"
        Prefix.pp p age_s min_hold_s
  | R.Released { age_s } ->
      Format.fprintf fmt "  hysteresis: %a released after %ds@," Prefix.pp p
        age_s
  | R.Release_deferred { age_s; matured; preferred_util } ->
      Format.fprintf fmt
        "  hysteresis: %a release deferred — age %ds, %s, preferred iface at \
         %.0f%%@,"
        Prefix.pp p age_s
        (if matured then "matured" else "immature")
        (100.0 *. preferred_util)

let pp_enforced cycle fmt (e : R.enforced) =
  Format.fprintf fmt
    "  override: %a (%a) enforced %s -> %s via peer %d (age %ds)@,"
    Prefix.pp e.R.en_prefix pp_bps e.R.en_rate_bps
    (iface_label cycle e.R.en_from_iface)
    (iface_label cycle e.R.en_to_iface)
    e.R.en_peer_id e.R.en_age_s;
  Format.fprintf fmt "    announced with LOCAL_PREF %d, communities [%s]@,"
    e.R.en_local_pref
    (String.concat " " e.R.en_communities)

let prefix_in_cycle fmt cycle prefix =
  Format.pp_open_vbox fmt 0;
  Format.fprintf fmt "cycle %d (t=%a):@," cycle.R.cy_index
    Ef_util.Units.pp_time_of_day cycle.R.cy_time_s;
  (match cycle.R.cy_degraded with
  | Some reason ->
      Format.fprintf fmt
        "  DEGRADED (%s): controller held the last-good override set@," reason
  | None -> ());
  let attempts =
    List.filter (fun a -> matches a.R.at_prefix prefix) cycle.R.cy_attempts
  in
  let drops =
    List.filter (fun d -> matches d.R.gd_prefix prefix) cycle.R.cy_guard
  in
  let hys =
    List.filter (fun e -> matches e.R.hy_prefix prefix) cycle.R.cy_hys
  in
  let enforced =
    List.filter (fun e -> matches e.R.en_prefix prefix) cycle.R.cy_enforced
  in
  if attempts = [] && drops = [] && hys = [] && enforced = [] then
    Format.fprintf fmt "  %a: not touched this cycle@," Prefix.pp prefix
  else begin
    List.iter (pp_attempt cycle fmt) attempts;
    List.iter (pp_guard fmt) drops;
    List.iter (pp_hys fmt) hys;
    List.iter (pp_enforced cycle fmt) enforced
  end;
  Format.pp_close_box fmt ()

let explain t ?cycle prefix =
  match R.cycles t with
  | [] -> Error "trace is empty (was tracing enabled?)"
  | _ -> (
      let touching = R.cycles_touching t prefix in
      let chosen =
        match cycle with
        | Some index -> R.find_cycle t ~index
        | None -> (
            match List.rev touching with c :: _ -> Some c | [] -> None)
      in
      match chosen with
      | Some c -> Ok (Format.asprintf "%a" (fun fmt c -> prefix_in_cycle fmt c prefix) c)
      | None -> (
          match cycle with
          | Some index ->
              Error
                (Printf.sprintf "cycle %d is not in the retained trace window"
                   index)
          | None ->
              Error
                (Format.asprintf
                   "%a was not touched in any of the %d retained cycle(s)"
                   Prefix.pp prefix
                   (List.length (R.cycles t)))))
