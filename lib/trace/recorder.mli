(** The decision-trace recorder: per-cycle, per-prefix provenance.

    Every stage of the controller pipeline reports {e why} it did what it
    did into one recorder: the allocator logs each candidate route it
    examined for a prefix and why the losers lost, the guard logs which
    budget shed a proposal, hysteresis logs why a move was damped or a
    release deferred, and the controller logs the final enforced
    placements with the BGP attributes that realize them. One controller
    cycle produces one {!cycle} record; the recorder retains a bounded
    ring of the most recent cycles.

    The recorder is deliberately dumb data: no clocks, no I/O, no
    references into live pipeline state — every field is a scalar or a
    prefix, so serializing the ring is deterministic (same seed + same
    scenario ⇒ byte-identical {!to_json} output) and a retained cycle
    never pins a snapshot alive.

    {b Cost when disabled.} {!noop} is a recorder whose [enabled] flag is
    false; every recording function returns immediately after one branch,
    and call sites that would allocate (candidate lists, record fields)
    must guard on {!enabled} first. The controller takes a recorder
    unconditionally, so the disabled path is a single load-and-branch per
    stage — measured in the [trace] bench entry. *)

module Prefix = Ef_bgp.Prefix

(** Why one candidate route did (or did not) become the detour target. *)
type candidate_verdict =
  | Chosen                    (** first candidate with room — the target *)
  | Same_iface                (** egresses on the interface being relieved *)
  | No_iface                  (** peer resolves to no interface in the snapshot *)
  | No_headroom of { needed_bps : float; headroom_bps : float }
      (** the whole prefix does not fit below the threshold *)

type candidate = {
  cand_level : int;           (** decision-process rank (0 = BGP best) *)
  cand_peer_id : int;
  cand_iface_id : int;        (** [-1] when the peer has no interface *)
  cand_verdict : candidate_verdict;
}

type alloc_outcome =
  | Moved of { to_iface : int; peer_id : int; level : int }
  | No_target                 (** every alternate was rejected *)
  | Split of { children : int }
      (** split into /24 children instead of moving whole *)

(** One allocator evaluation of one prefix (a prefix revisited across
    relief iterations gets one attempt per evaluation). *)
type attempt = {
  at_prefix : Prefix.t;
  at_from_iface : int;        (** the overloaded interface being relieved *)
  at_rate_bps : float;
  at_candidates : candidate list;  (** in decision order, as examined *)
  at_outcome : alloc_outcome;
}

type guard_reason =
  | Stale_target              (** the detour route vanished from the RIB *)
  | Budget                    (** shed to satisfy a blast-radius budget *)

type guard_drop = {
  gd_prefix : Prefix.t;
  gd_reason : guard_reason;
  gd_rate_bps : float;
}

(** What hysteresis decided for one prefix this cycle. *)
type hys_disposition =
  | Installed
  | Kept of { age_s : int }
  | Retargeted of { age_s : int }
  | Hold_retarget of { age_s : int; min_hold_s : int }
      (** retarget wanted but the override has not matured *)
  | Released of { age_s : int }
  | Release_deferred of { age_s : int; matured : bool; preferred_util : float }
      (** release wanted but damped (immature, or preferred interface
          still above the release threshold) *)

type hys_entry = { hy_prefix : Prefix.t; hy_disposition : hys_disposition }

(** One enforced override with the BGP attributes applied. *)
type enforced = {
  en_prefix : Prefix.t;
  en_from_iface : int;
  en_to_iface : int;
  en_peer_id : int;
  en_level : int;
  en_rate_bps : float;
  en_age_s : int;             (** seconds since installation *)
  en_local_pref : int;
  en_communities : string list;
}

type iface_row = {
  if_id : int;
  if_name : string;
  if_capacity_bps : float;
  if_projected_bps : float;   (** pre-override (BGP-preferred) load *)
  if_enforced_bps : float;    (** load under the enforced override set *)
  mutable if_actual_bps : float option;
      (** ground-truth egress, annotated by the simulator after the fact;
          [None] outside the simulator *)
}

type cycle = {
  cy_index : int;             (** 1-based controller cycle number *)
  cy_time_s : int;            (** snapshot time *)
  mutable cy_degraded : string option;
  mutable cy_ifaces : iface_row list;
  mutable cy_attempts : attempt list;
  mutable cy_guard : guard_drop list;
  mutable cy_hys : hys_entry list;
  mutable cy_enforced : enforced list;
}

type t

val create : ?capacity:int -> unit -> t
(** An enabled recorder retaining the last [capacity] (default 64,
    minimum 1) committed cycles. *)

val noop : t
(** The disabled recorder: every operation is a no-op, every query is
    empty. Shared — safe because nothing is ever written through it. *)

val enabled : t -> bool
val capacity : t -> int

(** {2 Recording} (all no-ops on {!noop})

    A cycle is built between {!begin_cycle} and {!end_cycle}; recording
    outside an open cycle is ignored. [begin_cycle] commits any cycle
    left open. *)

val begin_cycle : t -> index:int -> time_s:int -> unit
val set_degraded : t -> string -> unit
val record_attempt : t -> attempt -> unit
val record_guard_drop : t -> guard_drop -> unit
val record_hysteresis : t -> hys_entry -> unit
val record_enforced : t -> enforced -> unit
val record_ifaces : t -> iface_row list -> unit
val end_cycle : t -> unit

val annotate_actual : t -> (int * float) list -> unit
(** [(iface_id, actual_bps)] ground truth for the most recently committed
    cycle — the simulator calls this once the true placement is known. *)

(** {2 Query} *)

val cycles : t -> cycle list
(** Committed cycles, oldest first. *)

val latest : t -> cycle option
val find_cycle : t -> index:int -> cycle option

val touched : cycle -> Prefix.t -> bool
(** Did any stage record anything about this prefix (exact match or a
    /24 child of it)? *)

val cycles_touching : t -> Prefix.t -> cycle list
(** Oldest first. *)

(** {2 Serialization} *)

val cycle_to_json : cycle -> Ef_obs.Json.t
val to_json : t -> Ef_obs.Json.t
(** The whole retained ring, oldest cycle first. Deterministic: no
    wall-clock fields, stable field order. *)
