module R = Recorder
module Prom = Ef_obs.Prom

let churn_counts cycles =
  List.fold_left
    (fun (installed, retargeted, released) c ->
      List.fold_left
        (fun (i, rt, rl) (e : R.hys_entry) ->
          match e.R.hy_disposition with
          | R.Installed -> (i + 1, rt, rl)
          | R.Retargeted _ -> (i, rt + 1, rl)
          | R.Released _ -> (i, rt, rl + 1)
          | R.Kept _ | R.Hold_retarget _ | R.Release_deferred _ -> (i, rt, rl))
        (installed, retargeted, released)
        c.R.cy_hys)
    (0, 0, 0) cycles

let utilization_samples c =
  List.concat_map
    (fun (row : R.iface_row) ->
      let util bps =
        if row.R.if_capacity_bps <= 0.0 then 0.0
        else bps /. row.R.if_capacity_bps
      in
      let view name bps =
        Prom.sample
          ~labels:[ ("iface", row.R.if_name); ("view", name) ]
          (util bps)
      in
      view "projected" row.R.if_projected_bps
      :: view "enforced" row.R.if_enforced_bps
      ::
      (match row.R.if_actual_bps with
      | None -> []
      | Some bps -> [ view "actual" bps ]))
    c.R.cy_ifaces

let prom_families t =
  let cycles = R.cycles t in
  let occupancy =
    {
      Prom.fam_name = "ef_trace_cycles_retained";
      fam_help = "committed controller cycles in the trace ring";
      fam_kind = Prom.Gauge;
      fam_samples = [ Prom.sample (float_of_int (List.length cycles)) ];
    }
  in
  match R.latest t with
  | None -> [ occupancy ]
  | Some latest ->
      let installed, retargeted, released = churn_counts cycles in
      let churn =
        {
          Prom.fam_name = "ef_trace_override_churn";
          fam_help = "override set changes over the retained trace window";
          fam_kind = Prom.Gauge;
          fam_samples =
            [
              Prom.sample
                ~labels:[ ("action", "installed") ]
                (float_of_int installed);
              Prom.sample
                ~labels:[ ("action", "retargeted") ]
                (float_of_int retargeted);
              Prom.sample
                ~labels:[ ("action", "released") ]
                (float_of_int released);
            ];
        }
      in
      let ages = List.map (fun e -> e.R.en_age_s) latest.R.cy_enforced in
      let age_max = List.fold_left max 0 ages in
      let age_mean =
        match ages with
        | [] -> 0.0
        | _ ->
            float_of_int (List.fold_left ( + ) 0 ages)
            /. float_of_int (List.length ages)
      in
      let age =
        {
          Prom.fam_name = "ef_trace_override_age_seconds";
          fam_help = "ages of the overrides enforced in the latest cycle";
          fam_kind = Prom.Gauge;
          fam_samples =
            [
              Prom.sample
                ~labels:[ ("stat", "max") ]
                (float_of_int age_max);
              Prom.sample ~labels:[ ("stat", "mean") ] age_mean;
            ];
        }
      in
      let utilization =
        {
          Prom.fam_name = "ef_trace_iface_utilization";
          fam_help =
            "latest-cycle utilization per interface: projected (BGP \
             preferred), enforced (with overrides), actual (ground truth)";
          fam_kind = Prom.Gauge;
          fam_samples = utilization_samples latest;
        }
      in
      [ occupancy; churn; age; utilization ]
