(** Trace-derived metric families for the OpenMetrics exporter.

    The registry covers what happened; the trace also knows {e why} and
    {e for how long}. This module distills the retained ring into the
    operational series the paper's operators watch: override churn over
    the window, detour ages, and the per-interface projected vs enforced
    vs actual utilization triangle (the gap between projected and actual
    is exactly the sampling/staleness error Ef_obs cannot see). *)

val prom_families : Recorder.t -> Ef_obs.Prom.family list
(** Families derived from the recorder's retained ring:

    - [ef_trace_cycles_retained] — ring occupancy;
    - [ef_trace_override_churn] — installs/retargets/releases (labelled
      [action]) summed over the retained window;
    - [ef_trace_override_age_seconds{stat="max"|"mean"}] — ages of the
      overrides enforced in the latest cycle;
    - [ef_trace_iface_utilization{iface, view}] — latest cycle's
      utilization per interface for [view] = [projected] (BGP-preferred),
      [enforced] (with overrides) and [actual] (ground truth, when the
      simulator annotated it).

    Empty ring ⇒ just the occupancy family at 0. *)
