(** Human-readable rendering of a prefix's decision chain.

    [efctl explain PREFIX] is this module: given a recorder ring and a
    prefix, reconstruct the projection → allocation → guard → hysteresis
    → override chain for the cycle(s) that touched it and print it the
    way an operator would want to read it. *)

val prefix_in_cycle :
  Format.formatter -> Recorder.cycle -> Ef_bgp.Prefix.t -> unit
(** Render every stage's record of [prefix] (and its /24 children) in one
    cycle: the relieved interface's projected load, each candidate the
    allocator examined with its verdict, guard/hysteresis dispositions,
    and the enforced placement with its BGP attributes. Renders a "not
    touched" line when the cycle has nothing about the prefix. *)

val explain :
  Recorder.t -> ?cycle:int -> Ef_bgp.Prefix.t -> (string, string) result
(** The full [efctl explain] output: the chain for [prefix] in cycle
    number [cycle] (default: the most recent cycle that touched it).
    [Error] describes why nothing can be shown (empty ring, unknown
    cycle, prefix never touched — listing the cycles that did touch
    it, if any). *)
