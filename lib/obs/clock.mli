(** Monotonic time source for span timing.

    The default reads CLOCK_MONOTONIC (via the bechamel clock stub —
    already a build dependency of the bench suite). Tests that need
    deterministic durations can install a fake with {!set_now_ns} and
    restore the real clock with {!reset}. *)

val now_ns : unit -> int64
(** Nanoseconds on a monotonic clock; only differences are meaningful. *)

val elapsed_s : int64 -> float
(** [elapsed_s t0] is seconds elapsed since [now_ns] returned [t0]. *)

val set_now_ns : (unit -> int64) -> unit
(** Replace the clock (tests only). *)

val reset : unit -> unit
(** Restore the real monotonic clock. *)
