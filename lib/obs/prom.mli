(** OpenMetrics / Prometheus text rendering of a {!Registry}.

    One {!family} is one metric family: a [# HELP] line, a [# TYPE] line
    and one or more samples. {!render} produces the OpenMetrics text
    exposition format (counters get the mandatory [_total] sample suffix,
    histograms and spans export as summaries with [quantile] labels, the
    output is terminated by [# EOF]) — what [efctl run
    --metrics-format=prom] writes and a Prometheus scrape would ingest.

    Rendering is deterministic: families print in the order given,
    registry families in registration order, and float formatting uses
    the same shortest-roundtrip rule as {!Json}. *)

type kind = Counter | Gauge | Summary

type sample = {
  s_suffix : string;  (** appended to the family name (e.g. ["_total"]) *)
  s_labels : (string * string) list;
  s_value : float;
}

type family = {
  fam_name : string;  (** full metric name, will be sanitized on render *)
  fam_help : string;
  fam_kind : kind;
  fam_samples : sample list;
}

val sample : ?suffix:string -> ?labels:(string * string) list -> float -> sample

val sanitize_name : string -> string
(** Map every character outside [[a-zA-Z0-9_:]] to ['_'] (metric names:
    ['.'] separators become ['_']), prefixing ['_'] if the first char is
    invalid. *)

val families_of_registry : Registry.t -> family list
(** Every registered metric as a family, in registration order: counters
    and gauges as single-sample families; histograms and spans as
    summaries carrying p50/p90/p99 [quantile] samples plus [_sum] and
    [_count] (span families get a [_seconds] name suffix — their samples
    are durations in seconds). *)

val render : family list -> string
(** The OpenMetrics text for the given families, ending with [# EOF].
    Distinct family names that sanitize to the same exposition name are
    merged under one declaration (the first family's HELP/TYPE wins, all
    samples render) so the output never declares a name twice. *)

val of_registry : ?extra:family list -> Registry.t -> string
(** [render (families_of_registry t @ extra)]. *)
