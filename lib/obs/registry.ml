module Counter = struct
  type t = { c_name : string; mutable count : float }

  let create name = { c_name = name; count = 0.0 }
  let inc t = t.count <- t.count +. 1.0

  let add t d =
    if d < 0.0 then
      invalid_arg
        (Printf.sprintf "Ef_obs.Counter.add: negative delta %g on %s" d t.c_name)
    else t.count <- t.count +. d

  let value t = t.count
  let name t = t.c_name
end

module Gauge = struct
  type t = { g_name : string; mutable g_value : float }

  let create name = { g_name = name; g_value = 0.0 }
  let set t v = t.g_value <- v
  let value t = t.g_value
  let name t = t.g_name
end

module Histogram = struct
  type t = {
    h_name : string;
    mutable samples : float array;
    mutable len : int;
    mutable h_sum : float;
    mutable h_seen : int;
        (* total observations ever, including samples the merge reservoir
           discarded; [count]/[sum]/[mean] stay exact even after drops *)
  }

  let merge_cap = 65_536

  let create name =
    {
      h_name = name;
      samples = Array.make 16 0.0;
      len = 0;
      h_sum = 0.0;
      h_seen = 0;
    }

  let observe t x =
    if t.len = Array.length t.samples then begin
      let bigger = Array.make (2 * t.len) 0.0 in
      Array.blit t.samples 0 bigger 0 t.len;
      t.samples <- bigger
    end;
    t.samples.(t.len) <- x;
    t.len <- t.len + 1;
    t.h_sum <- t.h_sum +. x;
    t.h_seen <- t.h_seen + 1

  let count t = t.h_seen
  let retained t = t.len
  let dropped t = t.h_seen - t.len
  let sum t = t.h_sum
  let mean t = if t.h_seen = 0 then 0.0 else t.h_sum /. float_of_int t.h_seen

  let cdf t =
    if t.len = 0 then None
    else Some (Ef_stats.Cdf.of_array (Array.sub t.samples 0 t.len))

  let quantile t q =
    match cdf t with
    | None -> 0.0 (* empty histogram: clamp, so exports never emit NaN *)
    | Some c -> Ef_stats.Cdf.quantile c q

  let max_value t =
    if t.len = 0 then Float.nan
    else begin
      let m = ref t.samples.(0) in
      for i = 1 to t.len - 1 do
        if t.samples.(i) > !m then m := t.samples.(i)
      done;
      !m
    end

  (* splitmix64 finalizer: the mix that turns the observation counter into
     the reservoir draw must be stateless so replaying the same merge
     sequence replaces the same slots *)
  let mix64 z =
    let open Int64 in
    let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
    logxor z (shift_right_logical z 31)

  (* Fleet joins merge one histogram per engine per metric; unbounded
     appending made the merged sample arrays grow with cycles x engines.
     Beyond [merge_cap] retained samples, each incoming sample runs a
     deterministic reservoir step (algorithm R with the hash of the
     observation counter as the draw): it survives with probability
     cap/seen, displacing the slot the draw names, so retained samples
     stay a uniform sample of everything observed. count/sum/mean remain
     exact; quantiles become estimates over the reservoir. *)
  let merge_into ~into src =
    let retained_sum = ref 0.0 in
    for i = 0 to src.len - 1 do
      let x = src.samples.(i) in
      retained_sum := !retained_sum +. x;
      if into.len < merge_cap then observe into x
      else begin
        into.h_seen <- into.h_seen + 1;
        into.h_sum <- into.h_sum +. x;
        let draw =
          Int64.rem
            (Int64.logand (mix64 (Int64.of_int into.h_seen)) Int64.max_int)
            (Int64.of_int into.h_seen)
        in
        let slot = Int64.to_int draw in
        if slot < merge_cap then into.samples.(slot) <- x
      end
    done;
    (* samples the source itself had already dropped stay dropped, but the
       totals must carry over so count/sum stay additive across joins
       (the sum residue is exactly 0.0 when the source never dropped:
       [retained_sum] replays the same left-to-right additions) *)
    into.h_seen <- into.h_seen + (src.h_seen - src.len);
    into.h_sum <- into.h_sum +. (src.h_sum -. !retained_sum)

  let name t = t.h_name
end

module Event = struct
  type t = {
    ev_name : string;
    ev_time_ns : int64;
    ev_fields : (string * Json.t) list;
  }

  let to_json e =
    Json.Obj
      (("event", Json.String e.ev_name)
      :: ("t_ns", Json.Float (Int64.to_float e.ev_time_ns))
      :: e.ev_fields)
end

type metric =
  | Counter_m of Counter.t
  | Gauge_m of Gauge.t
  | Histogram_m of Histogram.t
  | Span_m of Histogram.t

type sink = Event.t -> unit

type profile_hook = {
  on_span : string -> int64 -> int64 -> unit;
  on_counter : string -> (string * float) list -> unit;
}

type t = {
  table : (string, metric) Hashtbl.t;
  mutable names_rev : string list;
  mutable sinks : sink list;
  mutable span_stack : string list;
  mutable profile : profile_hook option;
}

let create () =
  {
    table = Hashtbl.create 32;
    names_rev = [];
    sinks = [];
    span_stack = [];
    profile = None;
  }

let set_profile_hook t hook = t.profile <- hook
let profile_hook t = t.profile

let default_registry = lazy (create ())
let default () = Lazy.force default_registry

let kind_name = function
  | Counter_m _ -> "counter"
  | Gauge_m _ -> "gauge"
  | Histogram_m _ -> "histogram"
  | Span_m _ -> "span"

let register t name wrap make unwrap =
  match Hashtbl.find_opt t.table name with
  | Some m -> (
      match unwrap m with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf
               "Ef_obs.Registry: %s already registered as a %s" name
               (kind_name m)))
  | None ->
      let v = make name in
      Hashtbl.replace t.table name (wrap v);
      t.names_rev <- name :: t.names_rev;
      v

let counter t name =
  register t name
    (fun c -> Counter_m c)
    Counter.create
    (function Counter_m c -> Some c | _ -> None)

let gauge t name =
  register t name
    (fun g -> Gauge_m g)
    Gauge.create
    (function Gauge_m g -> Some g | _ -> None)

let histogram t name =
  register t name
    (fun h -> Histogram_m h)
    Histogram.create
    (function Histogram_m h -> Some h | _ -> None)

let span t name =
  register t name
    (fun h -> Span_m h)
    Histogram.create
    (function Span_m h -> Some h | _ -> None)

let find t name = Hashtbl.find_opt t.table name

let metrics t =
  List.rev_map
    (fun name -> (name, Hashtbl.find t.table name))
    t.names_rev

(* Fold [src] into [into], metric by metric in [src]'s registration order,
   so merging the same registries in the same order always yields the same
   [into] (names, order and values) — the property the parallel fleet's
   after-barrier merge relies on. *)
let merge ~into src =
  let dropped_before = ref 0 and dropped_after = ref 0 in
  let merge_h dst h =
    dropped_before := !dropped_before + Histogram.dropped dst;
    Histogram.merge_into ~into:dst h;
    dropped_after := !dropped_after + Histogram.dropped dst
  in
  List.iter
    (fun (name, m) ->
      match m with
      | Counter_m c -> Counter.add (counter into name) (Counter.value c)
      | Gauge_m g ->
          let dst = gauge into name in
          Gauge.set dst (Gauge.value dst +. Gauge.value g)
      | Histogram_m h -> merge_h (histogram into name) h
      | Span_m h -> merge_h (span into name) h)
    (metrics src);
  (* surface reservoir pressure: operators watching the merged registry can
     see how many samples this merge discarded without diffing histograms *)
  let newly_dropped = !dropped_after - !dropped_before in
  if newly_dropped > 0 then
    Counter.add
      (counter into "obs.merge.dropped_samples")
      (float_of_int newly_dropped)

(* Balanced pairwise reduction of many source registries into [into].
   Each round pairs adjacent registries in list order and merges every
   pair into a fresh intermediate; the tree's shape is a function of the
   list length alone and every pairwise merge is the deterministic
   serial [merge], so the result does not depend on which domain ran
   which pair — a [pool] only changes wall-clock. Relative to a serial
   left fold the float gauge sums re-associate (same multiset of
   addends, different bracketing); nothing downstream pins that
   bracketing, and any jobs/pool count yields the same bytes. *)
let merge_tree ?pool ~into regs =
  let merge_pair = function
    | [ a ] -> a
    | pair ->
        let m = create () in
        List.iter (fun r -> merge ~into:m r) pair;
        m
  in
  let rec pairs = function
    | a :: b :: rest -> [ a; b ] :: pairs rest
    | [ a ] -> [ [ a ] ]
    | [] -> []
  in
  let round regs =
    match pool with
    | Some pool -> Ef_util.Pool.map pool merge_pair (pairs regs)
    | None -> List.map merge_pair (pairs regs)
  in
  let rec reduce = function
    | [] -> ()
    | [ r ] -> merge ~into r
    | regs -> reduce (round regs)
  in
  reduce regs

let reset t =
  Hashtbl.reset t.table;
  t.names_rev <- [];
  t.span_stack <- []

module Span = struct
  let time_h t h f =
    t.span_stack <- Histogram.name h :: t.span_stack;
    let t0 = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        Histogram.observe h (Clock.elapsed_s t0);
        (match t.profile with
        | None -> ()
        | Some hook -> hook.on_span (Histogram.name h) t0 (Clock.now_ns ()));
        t.span_stack <- List.tl t.span_stack)
      f

  let time ?registry name f =
    let t = match registry with Some t -> t | None -> default () in
    time_h t (span t name) f

  let depth t = List.length t.span_stack
  let current t = t.span_stack
end

let add_sink t sink = t.sinks <- t.sinks @ [ sink ]
let has_sinks t = t.sinks <> []

let emit t ~name fields =
  match t.sinks with
  | [] -> ()
  | sinks ->
      let ev =
        { Event.ev_name = name; ev_time_ns = Clock.now_ns (); ev_fields = fields }
      in
      List.iter (fun sink -> sink ev) sinks

let dispatch t ev = List.iter (fun sink -> sink ev) t.sinks

(* Batched replay: one pass per sink instead of one sink-list walk per
   event. Each sink still sees the events in list order, so per-sink
   output is byte-identical to dispatching them one by one; only the
   (unobservable) interleaving across sinks changes. *)
let dispatch_all t evs =
  List.iter (fun sink -> List.iter (fun ev -> sink ev) evs) t.sinks

let memory_sink () =
  let events = ref [] in
  ((fun ev -> events := ev :: !events), fun () -> List.rev !events)

let channel_sink oc ev =
  output_string oc (Json.to_string (Event.to_json ev));
  output_char oc '\n';
  flush oc

let histogram_json ?(unit_suffix = "") h =
  let q p = Json.Float (Histogram.quantile h p) in
  Json.Obj
    [
      ("count", Json.Int (Histogram.count h));
      ("sum" ^ unit_suffix, Json.Float (Histogram.sum h));
      ("mean" ^ unit_suffix, Json.Float (Histogram.mean h));
      ("p50" ^ unit_suffix, q 0.5);
      ("p90" ^ unit_suffix, q 0.9);
      ("p99" ^ unit_suffix, q 0.99);
      ("max" ^ unit_suffix, Json.Float (Histogram.max_value h));
    ]

let to_json t =
  let section pick to_j =
    List.filter_map
      (fun (name, m) -> Option.map (fun v -> (name, to_j v)) (pick m))
      (metrics t)
  in
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (section
             (function Counter_m c -> Some c | _ -> None)
             (fun c -> Json.Float (Counter.value c))) );
      ( "gauges",
        Json.Obj
          (section
             (function Gauge_m g -> Some g | _ -> None)
             (fun g -> Json.Float (Gauge.value g))) );
      ( "histograms",
        Json.Obj
          (section
             (function Histogram_m h -> Some h | _ -> None)
             (histogram_json ?unit_suffix:None)) );
      ( "spans",
        Json.Obj
          (section
             (function Span_m h -> Some h | _ -> None)
             (histogram_json ~unit_suffix:"_s")) );
    ]

let pp fmt t =
  let pp_hist fmt h ~scale ~unit_ =
    Format.fprintf fmt "n=%d mean=%.3f%s p90=%.3f%s max=%.3f%s"
      (Histogram.count h)
      (Histogram.mean h *. scale)
      unit_
      (Histogram.quantile h 0.9 *. scale)
      unit_
      (Histogram.max_value h *. scale)
      unit_
  in
  List.iter
    (fun (name, m) ->
      match m with
      | Counter_m c ->
          Format.fprintf fmt "counter   %-40s %.0f@." name (Counter.value c)
      | Gauge_m g ->
          Format.fprintf fmt "gauge     %-40s %g@." name (Gauge.value g)
      | Histogram_m h ->
          Format.fprintf fmt "histogram %-40s " name;
          pp_hist fmt h ~scale:1.0 ~unit_:"";
          Format.fprintf fmt "@."
      | Span_m h ->
          Format.fprintf fmt "span      %-40s " name;
          pp_hist fmt h ~scale:1e3 ~unit_:"ms";
          Format.fprintf fmt "@.")
    (metrics t)
