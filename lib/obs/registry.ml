module Counter = struct
  type t = { c_name : string; mutable count : float }

  let create name = { c_name = name; count = 0.0 }
  let inc t = t.count <- t.count +. 1.0

  let add t d =
    if d < 0.0 then
      invalid_arg
        (Printf.sprintf "Ef_obs.Counter.add: negative delta %g on %s" d t.c_name)
    else t.count <- t.count +. d

  let value t = t.count
  let name t = t.c_name
end

module Gauge = struct
  type t = { g_name : string; mutable g_value : float }

  let create name = { g_name = name; g_value = 0.0 }
  let set t v = t.g_value <- v
  let value t = t.g_value
  let name t = t.g_name
end

module Histogram = struct
  type t = {
    h_name : string;
    mutable samples : float array;
    mutable len : int;
    mutable h_sum : float;
  }

  let create name =
    { h_name = name; samples = Array.make 16 0.0; len = 0; h_sum = 0.0 }

  let observe t x =
    if t.len = Array.length t.samples then begin
      let bigger = Array.make (2 * t.len) 0.0 in
      Array.blit t.samples 0 bigger 0 t.len;
      t.samples <- bigger
    end;
    t.samples.(t.len) <- x;
    t.len <- t.len + 1;
    t.h_sum <- t.h_sum +. x

  let count t = t.len
  let sum t = t.h_sum
  let mean t = if t.len = 0 then 0.0 else t.h_sum /. float_of_int t.len

  let cdf t =
    if t.len = 0 then None
    else Some (Ef_stats.Cdf.of_array (Array.sub t.samples 0 t.len))

  let quantile t q =
    match cdf t with
    | None -> 0.0 (* empty histogram: clamp, so exports never emit NaN *)
    | Some c -> Ef_stats.Cdf.quantile c q

  let max_value t =
    if t.len = 0 then Float.nan
    else begin
      let m = ref t.samples.(0) in
      for i = 1 to t.len - 1 do
        if t.samples.(i) > !m then m := t.samples.(i)
      done;
      !m
    end

  let merge_into ~into src =
    for i = 0 to src.len - 1 do
      observe into src.samples.(i)
    done

  let name t = t.h_name
end

module Event = struct
  type t = {
    ev_name : string;
    ev_time_ns : int64;
    ev_fields : (string * Json.t) list;
  }

  let to_json e =
    Json.Obj
      (("event", Json.String e.ev_name)
      :: ("t_ns", Json.Float (Int64.to_float e.ev_time_ns))
      :: e.ev_fields)
end

type metric =
  | Counter_m of Counter.t
  | Gauge_m of Gauge.t
  | Histogram_m of Histogram.t
  | Span_m of Histogram.t

type sink = Event.t -> unit

type t = {
  table : (string, metric) Hashtbl.t;
  mutable names_rev : string list;
  mutable sinks : sink list;
  mutable span_stack : string list;
}

let create () =
  { table = Hashtbl.create 32; names_rev = []; sinks = []; span_stack = [] }

let default_registry = lazy (create ())
let default () = Lazy.force default_registry

let kind_name = function
  | Counter_m _ -> "counter"
  | Gauge_m _ -> "gauge"
  | Histogram_m _ -> "histogram"
  | Span_m _ -> "span"

let register t name wrap make unwrap =
  match Hashtbl.find_opt t.table name with
  | Some m -> (
      match unwrap m with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf
               "Ef_obs.Registry: %s already registered as a %s" name
               (kind_name m)))
  | None ->
      let v = make name in
      Hashtbl.replace t.table name (wrap v);
      t.names_rev <- name :: t.names_rev;
      v

let counter t name =
  register t name
    (fun c -> Counter_m c)
    Counter.create
    (function Counter_m c -> Some c | _ -> None)

let gauge t name =
  register t name
    (fun g -> Gauge_m g)
    Gauge.create
    (function Gauge_m g -> Some g | _ -> None)

let histogram t name =
  register t name
    (fun h -> Histogram_m h)
    Histogram.create
    (function Histogram_m h -> Some h | _ -> None)

let span t name =
  register t name
    (fun h -> Span_m h)
    Histogram.create
    (function Span_m h -> Some h | _ -> None)

let find t name = Hashtbl.find_opt t.table name

let metrics t =
  List.rev_map
    (fun name -> (name, Hashtbl.find t.table name))
    t.names_rev

(* Fold [src] into [into], metric by metric in [src]'s registration order,
   so merging the same registries in the same order always yields the same
   [into] (names, order and values) — the property the parallel fleet's
   after-barrier merge relies on. *)
let merge ~into src =
  List.iter
    (fun (name, m) ->
      match m with
      | Counter_m c -> Counter.add (counter into name) (Counter.value c)
      | Gauge_m g ->
          let dst = gauge into name in
          Gauge.set dst (Gauge.value dst +. Gauge.value g)
      | Histogram_m h -> Histogram.merge_into ~into:(histogram into name) h
      | Span_m h -> Histogram.merge_into ~into:(span into name) h)
    (metrics src)

let reset t =
  Hashtbl.reset t.table;
  t.names_rev <- [];
  t.span_stack <- []

module Span = struct
  let time_h t h f =
    t.span_stack <- Histogram.name h :: t.span_stack;
    let t0 = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        Histogram.observe h (Clock.elapsed_s t0);
        t.span_stack <- List.tl t.span_stack)
      f

  let time ?registry name f =
    let t = match registry with Some t -> t | None -> default () in
    time_h t (span t name) f

  let depth t = List.length t.span_stack
  let current t = t.span_stack
end

let add_sink t sink = t.sinks <- t.sinks @ [ sink ]
let has_sinks t = t.sinks <> []

let emit t ~name fields =
  match t.sinks with
  | [] -> ()
  | sinks ->
      let ev =
        { Event.ev_name = name; ev_time_ns = Clock.now_ns (); ev_fields = fields }
      in
      List.iter (fun sink -> sink ev) sinks

let dispatch t ev = List.iter (fun sink -> sink ev) t.sinks

let memory_sink () =
  let events = ref [] in
  ((fun ev -> events := ev :: !events), fun () -> List.rev !events)

let channel_sink oc ev =
  output_string oc (Json.to_string (Event.to_json ev));
  output_char oc '\n';
  flush oc

let histogram_json ?(unit_suffix = "") h =
  let q p = Json.Float (Histogram.quantile h p) in
  Json.Obj
    [
      ("count", Json.Int (Histogram.count h));
      ("sum" ^ unit_suffix, Json.Float (Histogram.sum h));
      ("mean" ^ unit_suffix, Json.Float (Histogram.mean h));
      ("p50" ^ unit_suffix, q 0.5);
      ("p90" ^ unit_suffix, q 0.9);
      ("p99" ^ unit_suffix, q 0.99);
      ("max" ^ unit_suffix, Json.Float (Histogram.max_value h));
    ]

let to_json t =
  let section pick to_j =
    List.filter_map
      (fun (name, m) -> Option.map (fun v -> (name, to_j v)) (pick m))
      (metrics t)
  in
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (section
             (function Counter_m c -> Some c | _ -> None)
             (fun c -> Json.Float (Counter.value c))) );
      ( "gauges",
        Json.Obj
          (section
             (function Gauge_m g -> Some g | _ -> None)
             (fun g -> Json.Float (Gauge.value g))) );
      ( "histograms",
        Json.Obj
          (section
             (function Histogram_m h -> Some h | _ -> None)
             (histogram_json ?unit_suffix:None)) );
      ( "spans",
        Json.Obj
          (section
             (function Span_m h -> Some h | _ -> None)
             (histogram_json ~unit_suffix:"_s")) );
    ]

let pp fmt t =
  let pp_hist fmt h ~scale ~unit_ =
    Format.fprintf fmt "n=%d mean=%.3f%s p90=%.3f%s max=%.3f%s"
      (Histogram.count h)
      (Histogram.mean h *. scale)
      unit_
      (Histogram.quantile h 0.9 *. scale)
      unit_
      (Histogram.max_value h *. scale)
      unit_
  in
  List.iter
    (fun (name, m) ->
      match m with
      | Counter_m c ->
          Format.fprintf fmt "counter   %-40s %.0f@." name (Counter.value c)
      | Gauge_m g ->
          Format.fprintf fmt "gauge     %-40s %g@." name (Gauge.value g)
      | Histogram_m h ->
          Format.fprintf fmt "histogram %-40s " name;
          pp_hist fmt h ~scale:1.0 ~unit_:"";
          Format.fprintf fmt "@."
      | Span_m h ->
          Format.fprintf fmt "span      %-40s " name;
          pp_hist fmt h ~scale:1e3 ~unit_:"ms";
          Format.fprintf fmt "@.")
    (metrics t)
