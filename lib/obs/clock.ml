let real_now () = Monotonic_clock.now ()
let current = ref real_now
let now_ns () = !current ()

let elapsed_s t0 =
  Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e9

let set_now_ns f = current := f
let reset () = current := real_now
