type kind = Counter | Gauge | Summary

type sample = {
  s_suffix : string;
  s_labels : (string * string) list;
  s_value : float;
}

type family = {
  fam_name : string;
  fam_help : string;
  fam_kind : kind;
  fam_samples : sample list;
}

let sample ?(suffix = "") ?(labels = []) value =
  { s_suffix = suffix; s_labels = labels; s_value = value }

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

let sanitize_name name =
  let sane = String.map (fun c -> if is_name_char c then c else '_') name in
  if sane = "" then "_"
  else
    match sane.[0] with
    | '0' .. '9' -> "_" ^ sane
    | _ -> sane

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Summary -> "summary"

(* same shortest-roundtrip rule as Json.float_to_string, plus the
   OpenMetrics spellings for non-finite values *)
let render_value v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e16 then
    Printf.sprintf "%.1f" v
  else
    let s = Printf.sprintf "%.12g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v

let escape_label_value s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* HELP text: the format allows everything but newline and backslash
   escapes; keep it one line *)
let escape_help s =
  String.map (fun c -> if c = '\n' then ' ' else c) s

let render_sample buf ~name s =
  Buffer.add_string buf (name ^ s.s_suffix);
  (match s.s_labels with
  | [] -> ()
  | labels ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (sanitize_name k);
          Buffer.add_string buf "=\"";
          Buffer.add_string buf (escape_label_value v);
          Buffer.add_char buf '"')
        labels;
      Buffer.add_char buf '}');
  Buffer.add_char buf ' ';
  Buffer.add_string buf (render_value s.s_value);
  Buffer.add_char buf '\n'

let render families =
  let buf = Buffer.create 4096 in
  (* distinct metric names can sanitize to the same exposition name
     ("a.b" and "a_b" both become "a_b"); a family name may only be
     declared once per exposition, so later collisions keep their samples
     but reuse the first declaration (first kind wins) *)
  let declared = Hashtbl.create 16 in
  List.iter
    (fun fam ->
      let name = sanitize_name fam.fam_name in
      if not (Hashtbl.mem declared name) then begin
        Hashtbl.add declared name ();
        if fam.fam_help <> "" then begin
          Buffer.add_string buf
            (Printf.sprintf "# HELP %s %s\n" name (escape_help fam.fam_help))
        end;
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" name (kind_name fam.fam_kind))
      end;
      List.iter (render_sample buf ~name) fam.fam_samples)
    families;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

let summary_samples h =
  let q p = Registry.Histogram.quantile h p in
  [
    sample ~labels:[ ("quantile", "0.5") ] (q 0.5);
    sample ~labels:[ ("quantile", "0.9") ] (q 0.9);
    sample ~labels:[ ("quantile", "0.99") ] (q 0.99);
    sample ~suffix:"_sum" (Registry.Histogram.sum h);
    sample ~suffix:"_count" (float_of_int (Registry.Histogram.count h));
  ]

let families_of_registry reg =
  List.map
    (fun (name, metric) ->
      match metric with
      | Registry.Counter_m c ->
          {
            fam_name = name;
            fam_help = "";
            fam_kind = Counter;
            fam_samples =
              [ sample ~suffix:"_total" (Registry.Counter.value c) ];
          }
      | Registry.Gauge_m g ->
          {
            fam_name = name;
            fam_help = "";
            fam_kind = Gauge;
            fam_samples = [ sample (Registry.Gauge.value g) ];
          }
      | Registry.Histogram_m h ->
          {
            fam_name = name;
            fam_help = "";
            fam_kind = Summary;
            fam_samples = summary_samples h;
          }
      | Registry.Span_m h ->
          {
            fam_name = name ^ "_seconds";
            fam_help = "span duration";
            fam_kind = Summary;
            fam_samples = summary_samples h;
          })
    (Registry.metrics reg)

let of_registry ?(extra = []) reg = render (families_of_registry reg @ extra)
