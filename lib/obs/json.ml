type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* shortest float form that survives a round-trip and stays valid JSON *)
let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (float_to_string f)
      else Buffer.add_string buf "null"
  | String s -> Buffer.add_string buf (escape s)
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (escape k);
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

let pp fmt j = Format.pp_print_string fmt (to_string j)
