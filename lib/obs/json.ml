type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* shortest float form that survives a round-trip and stays valid JSON *)
let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (float_to_string f)
      else Buffer.add_string buf "null"
  | String s -> Buffer.add_string buf (escape s)
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (escape k);
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

let pp fmt j = Format.pp_print_string fmt (to_string j)

(* --- parsing ---------------------------------------------------------- *)

exception Parse_error of string

type reader = { src : string; mutable pos : int }

let peek r = if r.pos < String.length r.src then Some r.src.[r.pos] else None

let advance r = r.pos <- r.pos + 1

let fail r msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg r.pos))

let rec skip_ws r =
  match peek r with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance r;
      skip_ws r
  | _ -> ()

let expect r c =
  match peek r with
  | Some got when got = c -> advance r
  | Some got -> fail r (Printf.sprintf "expected %C, found %C" c got)
  | None -> fail r (Printf.sprintf "expected %C, found end of input" c)

let literal r word value =
  let n = String.length word in
  if r.pos + n <= String.length r.src && String.sub r.src r.pos n = word then begin
    r.pos <- r.pos + n;
    value
  end
  else fail r (Printf.sprintf "invalid literal (expected %s)" word)

(* encode a unicode codepoint as UTF-8 *)
let add_codepoint buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string r =
  expect r '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek r with
    | None -> fail r "unterminated string"
    | Some '"' -> advance r
    | Some '\\' -> (
        advance r;
        match peek r with
        | None -> fail r "unterminated escape"
        | Some c ->
            advance r;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if r.pos + 4 > String.length r.src then fail r "bad \\u escape";
                let hex = String.sub r.src r.pos 4 in
                let cp =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail r "bad \\u escape"
                in
                r.pos <- r.pos + 4;
                add_codepoint buf cp
            | c -> fail r (Printf.sprintf "bad escape \\%C" c));
            loop ())
    | Some c ->
        advance r;
        Buffer.add_char buf c;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number r =
  let start = r.pos in
  let is_float = ref false in
  let rec loop () =
    match peek r with
    | Some ('0' .. '9' | '-' | '+') ->
        advance r;
        loop ()
    | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance r;
        loop ()
    | _ -> ()
  in
  loop ();
  let text = String.sub r.src start (r.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail r (Printf.sprintf "bad number %S" text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        (* integer too large for OCaml's int: keep it as a float *)
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail r (Printf.sprintf "bad number %S" text))

let rec parse_value r =
  skip_ws r;
  match peek r with
  | None -> fail r "unexpected end of input"
  | Some '"' -> String (parse_string r)
  | Some '{' ->
      advance r;
      skip_ws r;
      if peek r = Some '}' then begin
        advance r;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws r;
          let key = parse_string r in
          skip_ws r;
          expect r ':';
          let v = parse_value r in
          fields := (key, v) :: !fields;
          skip_ws r;
          match peek r with
          | Some ',' ->
              advance r;
              members ()
          | Some '}' -> advance r
          | _ -> fail r "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      advance r;
      skip_ws r;
      if peek r = Some ']' then begin
        advance r;
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value r in
          items := v :: !items;
          skip_ws r;
          match peek r with
          | Some ',' ->
              advance r;
              elements ()
          | Some ']' -> advance r
          | _ -> fail r "expected ',' or ']'"
        in
        elements ();
        List (List.rev !items)
      end
  | Some 't' -> literal r "true" (Bool true)
  | Some 'f' -> literal r "false" (Bool false)
  | Some 'n' -> literal r "null" Null
  | Some ('-' | '0' .. '9') -> parse_number r
  | Some c -> fail r (Printf.sprintf "unexpected character %C" c)

let parse s =
  let r = { src = s; pos = 0 } in
  match parse_value r with
  | v ->
      skip_ws r;
      if r.pos < String.length s then
        Error (Printf.sprintf "trailing garbage at offset %d" r.pos)
      else Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors --------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int_opt = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
