(** Ef_obs: the telemetry substrate.

    Everything the controller pipeline reports — per-stage latency spans,
    override/guard counters, projected-load gauges, and the structured
    event journal — flows through one {!Registry}. See [DESIGN.md]
    ("Observability: the Ef_obs layer") for how the pipeline is wired. *)

module Json = Json
module Clock = Clock
module Registry = Registry
module Prom = Prom
module Counter = Registry.Counter
module Gauge = Registry.Gauge
module Histogram = Registry.Histogram
module Span = Registry.Span
module Event = Registry.Event
