(** A minimal JSON tree and printer.

    Just enough for metric export and the event journal — no parser, no
    external dependency. Printing is deterministic (object fields keep
    their given order) so journal lines and [efctl --metrics] output are
    diffable across runs. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. Non-finite floats print as [null] —
    JSON has no representation for them. *)

val pp : Format.formatter -> t -> unit
(** Same compact rendering, on a formatter. *)

val escape : string -> string
(** The quoted-and-escaped form of a string literal (used internally;
    exposed for tests). *)
