(** A minimal JSON tree, printer and parser.

    Just enough for metric export, the event journal and fault-plan files —
    no external dependency. Printing is deterministic (object fields keep
    their given order) so journal lines and [efctl --metrics] output are
    diffable across runs. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. Non-finite floats print as [null] —
    JSON has no representation for them. *)

val pp : Format.formatter -> t -> unit
(** Same compact rendering, on a formatter. *)

val escape : string -> string
(** The quoted-and-escaped form of a string literal (used internally;
    exposed for tests). *)

val parse : string -> (t, string) result
(** Parse one JSON value (recursive descent, full RFC 8259 value grammar;
    \uXXXX escapes are decoded to UTF-8). Numbers without a fraction or
    exponent become {!Int}, everything else {!Float}. Trailing non-space
    input is an error. *)

(** {2 Accessors}

    Total helpers for picking apart parsed trees without matching. *)

val member : string -> t -> t option
(** [member key (Obj fields)] is the first binding of [key]; [None] on
    missing keys and non-objects. *)

val to_int_opt : t -> int option
(** [Int] directly, or a [Float] that is integral. *)

val to_float_opt : t -> float option
(** [Float] directly, or any [Int]. *)

val to_string_opt : t -> string option
val to_list_opt : t -> t list option
