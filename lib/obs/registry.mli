(** The metric registry: named counters, gauges, histograms and span
    timings, plus a structured event journal with pluggable sinks.

    One registry is one export domain. Library code takes an optional
    registry and falls back to the process-wide {!default}, so a normal
    run needs no plumbing (everything lands in one place, which is what
    [efctl --metrics] prints), while tests create private registries and
    assert on exact deltas.

    Metric handles are get-or-create by name: the first call registers,
    later calls return the same handle. Hot paths (the controller cycle)
    look handles up once at construction time and then touch only a
    mutable cell per event, so instrumentation cost is a couple of clock
    reads per stage. *)

module Counter : sig
  type t

  val inc : t -> unit
  val add : t -> float -> unit
  (** Counters are monotonic: [add] raises [Invalid_argument] on a
      negative delta. *)

  val value : t -> float
  val name : t -> string
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val value : t -> float
  val name : t -> string
end

module Histogram : sig
  type t

  val observe : t -> float -> unit

  val count : t -> int
  (** Total observations ever, including samples discarded by the merge
      reservoir (see {!merge_into}) — exact even after drops. *)

  val retained : t -> int
  (** Samples currently held (what {!cdf}/{!quantile} are computed over).
      Equal to {!count} until a merge crosses {!merge_cap}. *)

  val dropped : t -> int
  (** [count - retained]: samples the merge reservoir discarded. *)

  val sum : t -> float
  val mean : t -> float
  (** 0 when empty. Both exact over all observations, including dropped
      ones. *)

  val cdf : t -> Ef_stats.Cdf.t option
  (** Retained samples so far as an {!Ef_stats.Cdf}; [None] when empty. *)

  val quantile : t -> float -> float
  (** Via {!cdf}; clamped to [0.] when empty (a [nan] here would leak
      [null]s into JSON export and unparsable values into OpenMetrics).
      Once a merge has dropped samples this is an estimate over a uniform
      reservoir of the full stream. *)

  val max_value : t -> float
  (** Largest retained sample; [nan] when empty. *)

  val merge_cap : int
  (** Retained-sample bound applied by {!merge_into} (65536). Direct
      {!observe} is never capped — only cross-registry merges are, since
      fleet joins are where sample arrays grew without bound. *)

  val merge_into : into:t -> t -> unit
  (** Append the second histogram's retained samples to [into], in
      observation order, up to {!merge_cap} retained samples; beyond the
      cap each incoming sample runs a deterministic reservoir step
      (algorithm R keyed on a hash of the observation counter), keeping
      the retained set a uniform sample of everything observed.
      {!count}/{!sum}/{!mean} stay exact; {!dropped} reports the
      discard total. Deterministic: the same merge sequence yields the
      same retained samples. *)

  val name : t -> string
end

module Event : sig
  type t = {
    ev_name : string;
    ev_time_ns : int64;  (** monotonic stamp ({!Clock.now_ns}) *)
    ev_fields : (string * Json.t) list;
  }

  val to_json : t -> Json.t
end

type t

val create : unit -> t

val default : unit -> t
(** The process-wide registry every un-plumbed call site reports into. *)

(** {2 Metric handles (get-or-create)}

    Each raises [Invalid_argument] if [name] is already registered as a
    different metric kind. *)

val counter : t -> string -> Counter.t
val gauge : t -> string -> Gauge.t
val histogram : t -> string -> Histogram.t

val span : t -> string -> Histogram.t
(** Like {!histogram} but registered as a span-duration metric (seconds);
    kept distinct so exports can report timing attribution separately.
    Usually reached through {!Span.time} rather than directly. *)

(** {2 Introspection} *)

type metric =
  | Counter_m of Counter.t
  | Gauge_m of Gauge.t
  | Histogram_m of Histogram.t
  | Span_m of Histogram.t

val find : t -> string -> metric option
val metrics : t -> (string * metric) list
(** In registration order. *)

val reset : t -> unit
(** Drop all metrics (sinks stay attached). *)

val merge : into:t -> t -> unit
(** Fold the second registry's metrics into [into], in the source's
    registration order: counters add, gauges sum (fleet-totals
    semantics), histograms and spans append their samples (bounded by
    {!Histogram.merge_cap} with reservoir downsampling; any samples
    discarded by this call are added to the [obs.merge.dropped_samples]
    counter in [into]). Metrics missing from [into] are registered.
    Deterministic: merging equal registries in the same order produces
    equal targets. The source is left untouched. Raises
    [Invalid_argument] if a name is registered with different kinds in
    the two registries. *)

val merge_tree : ?pool:Ef_util.Pool.t -> into:t -> t list -> unit
(** Merge many registries into [into] by balanced pairwise reduction:
    each round pairs adjacent registries in list order and merges every
    pair into a fresh intermediate. The tree shape depends only on the
    list length and every pairwise step is the deterministic {!merge},
    so the result is independent of [pool] (and of which domain ran
    which pair) — a pool only cuts the wall-clock of a wide fleet join
    from O(fleet) serial merges to O(log fleet) rounds. Float gauge sums
    re-associate relative to a serial left fold (same addends, different
    bracketing); nothing pins that bracketing. *)

(** {2 Span timing} *)

module Span : sig
  val time : ?registry:t -> string -> (unit -> 'a) -> 'a
  (** Run the thunk, record its monotonic duration (seconds) into the
      span histogram [name], and return its result. Spans nest: the
      registry tracks the stack of open spans, and the duration is
      recorded (and the stack unwound) even when the thunk raises. *)

  val time_h : t -> Histogram.t -> (unit -> 'a) -> 'a
  (** Same with a pre-fetched handle — the hot-path form. *)

  val depth : t -> int
  (** Number of currently-open spans (0 outside any span). *)

  val current : t -> string list
  (** Open span names, innermost first. *)
end

(** {2 Profiling hook}

    A registry can carry at most one profile hook; when set, every
    {!Span.time}/{!Span.time_h} completion also reports the span name and
    its raw monotonic start/end stamps (ns) to [on_span], and
    instrumented call sites may push named counter series (e.g. per-cycle
    GC deltas) through [on_counter]. This is how [Ef_health.Profiler]
    taps every already-instrumented stage without re-instrumenting call
    sites; cost when unset is one option match per span. *)

type profile_hook = {
  on_span : string -> int64 -> int64 -> unit;  (** name, t0_ns, t1_ns *)
  on_counter : string -> (string * float) list -> unit;
      (** series name, labeled values *)
}

val set_profile_hook : t -> profile_hook option -> unit
val profile_hook : t -> profile_hook option

(** {2 Event journal} *)

type sink = Event.t -> unit

val add_sink : t -> sink -> unit
val has_sinks : t -> bool
(** Emitting is a no-op without sinks; call sites building expensive
    field lists can guard on this. *)

val emit : t -> name:string -> (string * Json.t) list -> unit
(** Stamp an event with the monotonic clock and hand it to every sink. *)

val dispatch : t -> Event.t -> unit
(** Hand an already-stamped event to every sink, keeping its original
    timestamp — the replay half of buffering another registry's journal
    (see {!memory_sink}). *)

val dispatch_all : t -> Event.t list -> unit
(** {!dispatch} a whole buffered journal: one pass per sink rather than
    one sink-list walk per event. Each sink sees the events in list
    order, so per-sink output is byte-identical to event-by-event
    dispatch. *)

val memory_sink : unit -> sink * (unit -> Event.t list)
(** In-memory journal for tests: the second function returns everything
    emitted so far, in order. *)

val channel_sink : out_channel -> sink
(** JSON-lines: one compact JSON object per event, flushed per line. *)

(** {2 Export} *)

val to_json : t -> Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {...},
     "spans": {...}}] — histogram and span entries carry count, mean,
    p50/p90/p99 and max (spans in seconds). *)

val pp : Format.formatter -> t -> unit
(** Human-readable multi-line summary of the same content. *)
