(** The metric registry: named counters, gauges, histograms and span
    timings, plus a structured event journal with pluggable sinks.

    One registry is one export domain. Library code takes an optional
    registry and falls back to the process-wide {!default}, so a normal
    run needs no plumbing (everything lands in one place, which is what
    [efctl --metrics] prints), while tests create private registries and
    assert on exact deltas.

    Metric handles are get-or-create by name: the first call registers,
    later calls return the same handle. Hot paths (the controller cycle)
    look handles up once at construction time and then touch only a
    mutable cell per event, so instrumentation cost is a couple of clock
    reads per stage. *)

module Counter : sig
  type t

  val inc : t -> unit
  val add : t -> float -> unit
  (** Counters are monotonic: [add] raises [Invalid_argument] on a
      negative delta. *)

  val value : t -> float
  val name : t -> string
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val value : t -> float
  val name : t -> string
end

module Histogram : sig
  type t

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val mean : t -> float
  (** 0 when empty. *)

  val cdf : t -> Ef_stats.Cdf.t option
  (** All samples so far as an {!Ef_stats.Cdf}; [None] when empty. *)

  val quantile : t -> float -> float
  (** Via {!cdf}; clamped to [0.] when empty (a [nan] here would leak
      [null]s into JSON export and unparsable values into OpenMetrics). *)

  val max_value : t -> float
  (** Largest sample; [nan] when empty. *)

  val merge_into : into:t -> t -> unit
  (** Append every sample of the second histogram to [into], in
      observation order. *)

  val name : t -> string
end

module Event : sig
  type t = {
    ev_name : string;
    ev_time_ns : int64;  (** monotonic stamp ({!Clock.now_ns}) *)
    ev_fields : (string * Json.t) list;
  }

  val to_json : t -> Json.t
end

type t

val create : unit -> t

val default : unit -> t
(** The process-wide registry every un-plumbed call site reports into. *)

(** {2 Metric handles (get-or-create)}

    Each raises [Invalid_argument] if [name] is already registered as a
    different metric kind. *)

val counter : t -> string -> Counter.t
val gauge : t -> string -> Gauge.t
val histogram : t -> string -> Histogram.t

val span : t -> string -> Histogram.t
(** Like {!histogram} but registered as a span-duration metric (seconds);
    kept distinct so exports can report timing attribution separately.
    Usually reached through {!Span.time} rather than directly. *)

(** {2 Introspection} *)

type metric =
  | Counter_m of Counter.t
  | Gauge_m of Gauge.t
  | Histogram_m of Histogram.t
  | Span_m of Histogram.t

val find : t -> string -> metric option
val metrics : t -> (string * metric) list
(** In registration order. *)

val reset : t -> unit
(** Drop all metrics (sinks stay attached). *)

val merge : into:t -> t -> unit
(** Fold the second registry's metrics into [into], in the source's
    registration order: counters add, gauges sum (fleet-totals
    semantics), histograms and spans append their samples. Metrics
    missing from [into] are registered. Deterministic: merging equal
    registries in the same order produces equal targets. The source is
    left untouched. Raises [Invalid_argument] if a name is registered
    with different kinds in the two registries. *)

(** {2 Span timing} *)

module Span : sig
  val time : ?registry:t -> string -> (unit -> 'a) -> 'a
  (** Run the thunk, record its monotonic duration (seconds) into the
      span histogram [name], and return its result. Spans nest: the
      registry tracks the stack of open spans, and the duration is
      recorded (and the stack unwound) even when the thunk raises. *)

  val time_h : t -> Histogram.t -> (unit -> 'a) -> 'a
  (** Same with a pre-fetched handle — the hot-path form. *)

  val depth : t -> int
  (** Number of currently-open spans (0 outside any span). *)

  val current : t -> string list
  (** Open span names, innermost first. *)
end

(** {2 Event journal} *)

type sink = Event.t -> unit

val add_sink : t -> sink -> unit
val has_sinks : t -> bool
(** Emitting is a no-op without sinks; call sites building expensive
    field lists can guard on this. *)

val emit : t -> name:string -> (string * Json.t) list -> unit
(** Stamp an event with the monotonic clock and hand it to every sink. *)

val dispatch : t -> Event.t -> unit
(** Hand an already-stamped event to every sink, keeping its original
    timestamp — the replay half of buffering another registry's journal
    (see {!memory_sink}). *)

val memory_sink : unit -> sink * (unit -> Event.t list)
(** In-memory journal for tests: the second function returns everything
    emitted so far, in order. *)

val channel_sink : out_channel -> sink
(** JSON-lines: one compact JSON object per event, flushed per line. *)

(** {2 Export} *)

val to_json : t -> Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {...},
     "spans": {...}}] — histogram and span entries carry count, mean,
    p50/p90/p99 and max (spans in seconds). *)

val pp : Format.formatter -> t -> unit
(** Human-readable multi-line summary of the same content. *)
