(** The DFZ workload: a full default-free-zone routing table in one PoP.

    The paper's PoPs carry complete transit tables — 700k–1M routes — on
    a handful of egress interfaces. This generator produces that shape
    synthetically: ~1M /24 prefixes carved from a flat address plan,
    Zipf-skewed demand (a few prefixes carry most of the traffic, per the
    CDN measurements the demand model is grounded in), 2–3 ranked
    candidate routes per prefix over 4–8 transit interfaces, and
    steady-state churn (rate drift, withdraw/re-announce, route
    add/withdraw) at a configurable fraction per cycle.

    Everything is a pure function of [(seed, index, epoch)] hashes: two
    generators with the same config produce identical worlds and
    identical churn schedules, which is what lets the differential
    harness replay one world through the incremental and the cold
    pipeline and demand byte-identical output. The generator deliberately
    bypasses {!Pop}/{!Ef_bgp.Rib} — at a million prefixes the RIB
    machinery is the thing under test elsewhere ({!Ef_bgp.Mrt.to_rib}
    imports real dumps through it); here candidates come from a closure
    so snapshot assembly, not table construction, dominates. *)

type config = {
  n_prefixes : int;
  n_ifaces : int;  (** transit interfaces, ids [0..n-1]; 2–64 *)
  zipf_s : float;  (** demand skew exponent, ~0.8–1.2 *)
  total_bps : float;  (** total offered traffic *)
  churn_fraction : float;  (** prefixes touched per churn cycle *)
  route_churn_fraction : float;
      (** of touched prefixes, the share whose candidate routes change
          (the rest get rate events) *)
  withdraw_fraction : float;
      (** of rate events, the share that withdraw the prefix (rate 0);
          later churn on the same prefix re-announces it *)
  seed : int;
}

val config :
  ?n_ifaces:int ->
  ?zipf_s:float ->
  ?total_bps:float ->
  ?churn_fraction:float ->
  ?route_churn_fraction:float ->
  ?withdraw_fraction:float ->
  ?seed:int ->
  n_prefixes:int ->
  unit ->
  config
(** Defaults: 6 interfaces, [s = 1.0], 400 Gbps, 1% churn per cycle of
    which 30% route events, 5% of rate events withdraw, seed 7. One
    interface is provisioned at 0.8× its fair share (the rest at 1.4×),
    so every cycle has genuine relief work with feasible targets. *)

type t
(** Mutable generator state: current rates and per-prefix route epochs.
    One [t] drives one simulated world forward; create two with the same
    config to replay the same world twice. *)

type churn_event = {
  rate_updates : (Ef_bgp.Prefix.t * float) list;
      (** absolute new rates; 0.0 withdraws *)
  routes_changed : Ef_bgp.Prefix.t list;
      (** prefixes whose candidate set changed (epoch bumped) *)
}

val create : config -> t
val cfg : t -> config

val ifaces : t -> Iface.t list
val iface_of_peer : t -> int -> Iface.t option
(** Peer ids coincide with interface ids (one synthetic transit neighbor
    per interface). *)

val routes : t -> Ef_bgp.Prefix.t -> Ef_bgp.Route.t list
(** Ranked candidates (head = preferred) per the prefix's current route
    epoch; [[]] for prefixes outside the generator's address plan.
    Deterministic: equal epochs give structurally equal lists. *)

val current_rates : t -> (Ef_bgp.Prefix.t * float) list
(** Full materialization of the current demand (withdrawn prefixes
    omitted) — the cold path's snapshot-assembly input. *)

val total_rate : t -> float

val churn : t -> cycle:int -> churn_event
(** Advance one cycle: mutate rates/epochs per the (seed, cycle)-hashed
    schedule and return exactly the delta applied — at most one event
    per prefix per cycle, so the result feeds
    {!Ef_collector.Snapshot.patch} (via the sim driver) directly. *)

val prefix_of_index : t -> int -> Ef_bgp.Prefix.t
val index_of_prefix : t -> Ef_bgp.Prefix.t -> int option
