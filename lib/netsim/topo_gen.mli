(** Synthetic Internet generation.

    Builds the world one Edge Fabric instance sees: a PoP with transit
    providers, private interconnects, public peers and an IXP route
    server, plus the AS/prefix universe behind them with Zipf-skewed
    traffic weights. The construction preserves the properties the paper's
    phenomena rest on:

    - most traffic is to prefixes with several usable egress routes
      (transit always, peer routes for eyeball/regional networks);
    - BGP policy prefers peer routes over transit, so without a
      controller the preferred paths concentrate on peering interfaces;
    - private/public interface capacities are drawn around each peer's
      expected peak demand (quantized to standard port sizes), so a
      realistic minority of interfaces cannot carry their peak preferred
      load — the Figure-4 phenomenon Edge Fabric exists to fix. *)

type as_kind =
  | Eyeball   (** large access network, candidate private peer *)
  | Regional  (** mid-size network, candidate public peer *)
  | Small_stub (** long-tail origin: transit or route-server only *)

val as_kind_to_string : as_kind -> string

type as_info = {
  asn : Ef_bgp.Asn.t;
  kind : as_kind;
  as_region : Region.t;
  as_prefixes : Ef_bgp.Prefix.t list;
  weight : float;           (** share of PoP traffic, sums to 1 across ASes *)
  providers : Ef_bgp.Asn.t list; (** upstream ASNs for small stubs *)
}

type config = {
  seed : int;
  pop_name : string;
  pop_region : Region.t;
  self_asn : Ef_bgp.Asn.t;
  n_eyeball : int;
  n_regional : int;
  n_small : int;
  n_transits : int;
  n_private_peers : int;     (** top-weight eyeballs get private interconnects *)
  n_public_peers : int;      (** top regionals peer publicly *)
  route_server : bool;
  rs_member_fraction : float; (** fraction of small stubs present at the IXP *)
  zipf_s : float;            (** skew of per-AS traffic weights *)
  total_peak_gbps : float;   (** PoP egress at the diurnal peak *)
  transit_capacity_gbps : float; (** per transit interface *)
  public_port_gbps : float;  (** the shared IXP port *)
  headroom_lo : float;       (** private-port sizing: capacity ≈ peak·U(lo,hi), *)
  headroom_hi : float;       (** then rounded up to a standard port size *)
  import_policy : Ef_policy.t option;
      (** the import policy as a DSL program, compiled to the route-map
          every peer is attached with; [None] (the default) uses
          [Ef_policy.standard_import] — identical clauses to the legacy
          default ingest, so existing seeds are unchanged *)
  community_signaling : bool;
      (** when true, public peers tag announcements with the inbound-TE
          communities {!signal_prefer} (own prefixes) / {!signal_backup}
          (customer prefixes) for community-driven policies to match;
          default false *)
}

val default_config : config
(** A mid-size PoP: 2 transits, 12 private peers, 25 public peers, route
    server with half the small stubs, ~1.2k prefixes, 900 Gbps peak. *)

val small_config : config
(** A tiny deterministic world for unit tests (tens of prefixes). *)

type world = {
  pop : Pop.t;
  ases : as_info list;
  prefix_weight : Ef_bgp.Prefix.t -> float;
  prefix_origin : Ef_bgp.Prefix.t -> Ef_bgp.Asn.t option;
  origin_region : Ef_bgp.Prefix.t -> Region.t;
  all_prefixes : Ef_bgp.Prefix.t list;
  total_peak_bps : float;
}

val generate : config -> world
(** Deterministic in [config.seed]: equal configs give equal worlds. The
    returned PoP's RIB is fully populated (announcements already passed
    through the compiled import policy). *)

val policy_env : world -> Ef_policy.env
(** The policy evaluation environment of a generated world: the region →
    origin-blocks map from the AS universe and per-interface facts
    (shared flag, attached peer kinds/ASNs, PoP region) from the PoP —
    what compiles a policy's allocator side and runs the interpreter. *)

val signal_prefer : Ef_bgp.Community.t
(** 65010:80 — "prefer here" inbound-TE tag (see [community_signaling]). *)

val signal_backup : Ef_bgp.Community.t
(** 65010:20 — "backup path" inbound-TE tag. *)

val standard_port_sizes_gbps : float list
(** 10/20/40/100/200/400/800 — capacities are rounded up to one of
    these, mirroring real port provisioning. *)

val round_up_to_port : float -> float
(** [round_up_to_port gbps] — smallest standard port bundle >= demand
    (multiples of 800 Gbps above the largest single size). *)
