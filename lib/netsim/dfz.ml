module Bgp = Ef_bgp
module Rng = Ef_util.Rng
module Zipf = Ef_util.Zipf

type config = {
  n_prefixes : int;
  n_ifaces : int;
  zipf_s : float;
  total_bps : float;
  churn_fraction : float;
  route_churn_fraction : float;
  withdraw_fraction : float;
  seed : int;
}

let config ?(n_ifaces = 6) ?(zipf_s = 1.0) ?(total_bps = 400e9)
    ?(churn_fraction = 0.01) ?(route_churn_fraction = 0.3)
    ?(withdraw_fraction = 0.05) ?(seed = 7) ~n_prefixes () =
  if n_prefixes <= 0 then invalid_arg "Dfz.config: n_prefixes must be positive";
  if n_ifaces < 2 || n_ifaces > 64 then
    invalid_arg "Dfz.config: n_ifaces must be in [2, 64]";
  {
    n_prefixes;
    n_ifaces;
    zipf_s;
    total_bps;
    churn_fraction;
    route_churn_fraction;
    withdraw_fraction;
    seed;
  }

type churn_event = {
  rate_updates : (Bgp.Prefix.t * float) list;
  routes_changed : Bgp.Prefix.t list;
}

type t = {
  cfg : config;
  prefixes : Bgp.Prefix.t array; (* index -> /24, shared across snapshots *)
  base_rates : float array; (* the Zipf assignment churn perturbs around *)
  rates : float array; (* current absolute rates; 0.0 = withdrawn *)
  epochs : int array; (* bumped per prefix on route churn *)
  ifaces_arr : Iface.t array;
  ifaces : Iface.t list;
  peers : Bgp.Peer.t array; (* one per interface; peer id = iface id *)
  attrs : Bgp.Attrs.t array; (* per peer, prebuilt *)
}

(* splitmix64 finalizer: all candidate sets and churn schedules derive
   from pure hashes of (seed, index, epoch/cycle), so a replay — or a
   cold reference driver — regenerates the identical world without
   sharing mutable state with the incremental one. *)
let mix x =
  let open Int64 in
  let x = of_int x in
  let x = mul (logxor x (shift_right_logical x 30)) 0xbf58476d1ce4e5b9L in
  let x = mul (logxor x (shift_right_logical x 27)) 0x94d049bb133111ebL in
  let x = logxor x (shift_right_logical x 31) in
  Stdlib.( land ) (to_int x) Stdlib.max_int

let hash3 a b c = mix (a lxor mix (b lxor mix c))

(* /24s carved from 1.0.0.0 upward: index <-> prefix is arithmetic, no
   table. A million prefixes span 1.0.0.0 .. 17.0.0.0. *)
let base_addr = 0x01000000

let prefix_of_index_raw i =
  Bgp.Prefix.make
    (Bgp.Ipv4.of_int32 (Int32.of_int (base_addr + (i * 256))))
    24

let index_of_prefix t p =
  if Bgp.Prefix.length p <> 24 then None
  else
    let net =
      Int32.to_int (Bgp.Ipv4.to_int32 (Bgp.Prefix.network p)) land 0xFFFFFFFF
    in
    let i = (net - base_addr) asr 8 in
    if i >= 0 && i < t.cfg.n_prefixes && net land 0xFF = 0 then Some i
    else None

let create cfg =
  let prefixes = Array.init cfg.n_prefixes prefix_of_index_raw in
  (* Zipf mass over a seeded rank permutation: rates are skewed, but the
     heavy hitters are scattered across the address plan *)
  let zipf = Zipf.create ~n:cfg.n_prefixes ~s:cfg.zipf_s in
  let probs = Zipf.weights zipf in
  let perm = Array.init cfg.n_prefixes Fun.id in
  Rng.shuffle (Rng.create (hash3 cfg.seed 0x2A 0)) perm;
  let base_rates =
    Array.init cfg.n_prefixes (fun i -> cfg.total_bps *. probs.(perm.(i)))
  in
  (* one interface short on capacity, the rest with headroom: every cycle
     projects ~1/n of the traffic onto each interface, so the allocator
     always has relief work and always has somewhere to put it *)
  let fair = cfg.total_bps /. float_of_int cfg.n_ifaces in
  let ifaces_arr =
    Array.init cfg.n_ifaces (fun i ->
        Iface.make ~id:i
          ~name:(Printf.sprintf "dfz-if%d" i)
          ~capacity_bps:(if i = 0 then 0.8 *. fair else 1.4 *. fair)
          ~shared:false)
  in
  let peers =
    Array.init cfg.n_ifaces (fun i ->
        Bgp.Peer.make ~id:i
          ~name:(Printf.sprintf "dfz-transit%d" i)
          ~asn:(Bgp.Asn.of_int (64600 + i))
          ~kind:Bgp.Peer.Transit
          ~router_id:(Bgp.Ipv4.of_int32 (Int32.of_int (0x0A000000 + (i * 256) + 1)))
          ~session_addr:
            (Bgp.Ipv4.of_int32 (Int32.of_int (0x0A000000 + (i * 256) + 2))))
  in
  let attrs =
    Array.map
      (fun p ->
        Bgp.Attrs.make
          ~as_path:(Bgp.As_path.origin_of_list [ Bgp.Peer.asn p; Bgp.Asn.of_int 15169 ])
          ~next_hop:p.Bgp.Peer.session_addr ())
      peers
  in
  {
    cfg;
    prefixes;
    base_rates;
    rates = Array.copy base_rates;
    epochs = Array.make cfg.n_prefixes 0;
    ifaces_arr;
    ifaces = Array.to_list ifaces_arr;
    peers;
    attrs;
  }

let cfg t = t.cfg
let ifaces t = t.ifaces
let prefix_of_index t i = t.prefixes.(i)

let iface_of_peer t peer_id =
  if peer_id >= 0 && peer_id < Array.length t.ifaces_arr then
    Some t.ifaces_arr.(peer_id)
  else None

(* 2–3 distinct candidate interfaces per prefix, ranked, derived from
   hash(seed, index, epoch): bumping the epoch is a route add/withdraw —
   the candidate set (and its ranking) changes, every other prefix's is
   untouched. *)
let candidate_ifaces t i =
  let n = t.cfg.n_ifaces in
  let h = hash3 t.cfg.seed i t.epochs.(i) in
  let start = (h lsr 2) mod n in
  let stride = 1 + ((h lsr 20) mod (n - 1)) in
  let third = h land 1 = 1 && 2 * stride mod n <> 0 in
  if third then
    [ start; (start + stride) mod n; (start + (2 * stride)) mod n ]
  else [ start; (start + stride) mod n ]

let routes_ix t i =
  let prefix = t.prefixes.(i) in
  List.map
    (fun iface_id ->
      Bgp.Route.make ~prefix ~attrs:t.attrs.(iface_id) ~peer:t.peers.(iface_id))
    (candidate_ifaces t i)

let routes t p =
  match index_of_prefix t p with None -> [] | Some i -> routes_ix t i

let current_rates t =
  let acc = ref [] in
  for i = t.cfg.n_prefixes - 1 downto 0 do
    if t.rates.(i) > 0.0 then acc := (t.prefixes.(i), t.rates.(i)) :: !acc
  done;
  !acc

let total_rate t = Array.fold_left ( +. ) 0.0 t.rates

(* One cycle of steady-state churn. The schedule is a pure function of
   (seed, cycle); the mutated arrays only cache its cumulative effect.
   Each touched prefix gets exactly one event per cycle, so the returned
   delta composes cleanly with Snapshot.patch. *)
let churn t ~cycle =
  let cfg = t.cfg in
  let rng = Rng.create (hash3 cfg.seed 0x5EED cycle) in
  let n_events =
    max 1 (int_of_float (cfg.churn_fraction *. float_of_int cfg.n_prefixes))
  in
  let touched = Hashtbl.create (2 * n_events) in
  let rate_updates = ref [] in
  let routes_changed = ref [] in
  for _ = 1 to n_events do
    let i = Rng.int rng cfg.n_prefixes in
    if not (Hashtbl.mem touched i) then begin
      Hashtbl.replace touched i ();
      if Rng.chance rng cfg.route_churn_fraction then begin
        t.epochs.(i) <- t.epochs.(i) + 1;
        routes_changed := t.prefixes.(i) :: !routes_changed
      end
      else begin
        let r =
          if Rng.chance rng cfg.withdraw_fraction then 0.0
          else t.base_rates.(i) *. (0.5 +. Rng.float rng 1.0)
        in
        t.rates.(i) <- r;
        rate_updates := (t.prefixes.(i), r) :: !rate_updates
      end
    end
  done;
  { rate_updates = !rate_updates; routes_changed = !routes_changed }
