(** Named scenarios: the worlds the experiments run in.

    The paper evaluates four production PoPs in detail; here four
    synthetic PoPs of different sizes and regions stand in for them,
    plus a tiny world for tests and a stress world for scale benches. *)

type t = {
  scenario_name : string;
  description : string;
  topo : Topo_gen.config;
}

val pop_a : t
(** Large NA-East PoP — the "busy eyeball market" case. *)

val pop_b : t
(** Large European PoP. *)

val pop_c : t
(** Mid-size Asian PoP with a bigger transit share. *)

val pop_d : t
(** Small South-American PoP, few private peers. *)

val tiny : t
(** Deterministic micro-world for unit/integration tests. *)

val stress : t
(** Thousands of prefixes — input for the scale benchmarks (E10). *)

val remote_ixp : t
(** Remote-peering IXP world: its import policy is the
    {!remote_peering_policy} DSL program (public/route-server routes
    demoted to just above transit, shared port threshold tightened). *)

val community_led : t
(** Community-driven steering world: public peers tag announcements with
    the {!Topo_gen.signal_prefer}/{!Topo_gen.signal_backup} communities
    and {!community_steering_policy} honors them. *)

val policy_scenarios : t list
(** The two DSL-policy worlds, [remote_ixp; community_led]. *)

val remote_peering_policy : Ef_policy.program
(** "remote-peering" — guards, public/RS demotion near transit (with a
    0.85 shared-port overload threshold riding on the same rule),
    standard tiers, 0.3 detour budget. *)

val community_steering_policy : Ef_policy.program
(** "community-steering" — guards, honor prefer/backup signal
    communities, standard tiers, raised override budget. *)

val all : t list
val paper_pops : t list
(** The four PoPs of the evaluation, A–D. *)

val generated_fleet : ?n:int -> unit -> t list
(** [generated_fleet ~n ()] builds [n] deterministic PoPs ("gen-00" …)
    with regions and size tiers cycling, for fleet-scale benches — same
    [n], same worlds, every time. Default [n = 16]. Raises
    [Invalid_argument] when [n < 1]. *)

val find : string -> t option
val names : unit -> string list

(** {2 Canned fault plans}

    Named chaos profiles to pair with the worlds above — referenced by
    name from [efctl run --faults] and the fault tests. Interface ids in
    the plans are valid in every scenario (ids are dense from 0). *)

val fault_plans : (string * Ef_fault.Plan.t) list
val find_fault_plan : string -> Ef_fault.Plan.t option
val fault_plan_names : unit -> string list

(** {2 Canned policy programs}

    The DSL programs behind the policy scenarios, referenced by name
    from [efctl run --policy NAME] (a file path also works) and
    serialized under [examples/policies/]. *)

val policies : (string * Ef_policy.program) list
val find_policy : string -> Ef_policy.program option
val policy_names : unit -> string list
