module Bgp = Ef_bgp
open Ef_util

type as_kind =
  | Eyeball
  | Regional
  | Small_stub

let as_kind_to_string = function
  | Eyeball -> "eyeball"
  | Regional -> "regional"
  | Small_stub -> "small-stub"

type as_info = {
  asn : Bgp.Asn.t;
  kind : as_kind;
  as_region : Region.t;
  as_prefixes : Bgp.Prefix.t list;
  weight : float;
  providers : Bgp.Asn.t list;
}

type config = {
  seed : int;
  pop_name : string;
  pop_region : Region.t;
  self_asn : Bgp.Asn.t;
  n_eyeball : int;
  n_regional : int;
  n_small : int;
  n_transits : int;
  n_private_peers : int;
  n_public_peers : int;
  route_server : bool;
  rs_member_fraction : float;
  zipf_s : float;
  total_peak_gbps : float;
  transit_capacity_gbps : float;
  public_port_gbps : float;
  headroom_lo : float;
  headroom_hi : float;
  import_policy : Ef_policy.t option;
  community_signaling : bool;
}

let default_config =
  {
    seed = 42;
    pop_name = "pop-default";
    pop_region = Region.Na_east;
    self_asn = Bgp.Asn.of_int 64500;
    n_eyeball = 20;
    n_regional = 40;
    n_small = 120;
    n_transits = 2;
    n_private_peers = 12;
    n_public_peers = 25;
    route_server = true;
    rs_member_fraction = 0.5;
    zipf_s = 1.0;
    total_peak_gbps = 900.0;
    transit_capacity_gbps = 1600.0;
    public_port_gbps = 200.0;
    headroom_lo = 0.55;
    headroom_hi = 1.35;
    import_policy = None;
    community_signaling = false;
  }

let small_config =
  {
    default_config with
    seed = 7;
    pop_name = "pop-test";
    n_eyeball = 3;
    n_regional = 4;
    n_small = 8;
    n_transits = 2;
    n_private_peers = 2;
    n_public_peers = 3;
    total_peak_gbps = 40.0;
    transit_capacity_gbps = 100.0;
    public_port_gbps = 20.0;
  }

type world = {
  pop : Pop.t;
  ases : as_info list;
  prefix_weight : Bgp.Prefix.t -> float;
  prefix_origin : Bgp.Prefix.t -> Bgp.Asn.t option;
  origin_region : Bgp.Prefix.t -> Region.t;
  all_prefixes : Bgp.Prefix.t list;
  total_peak_bps : float;
}

(* Inbound-TE signal communities attached by public peers when
   [community_signaling] is on (the convention of community-driven
   inbound engineering): "prefer" on a peer's own prefixes, "backup" on
   the customer prefixes it re-announces. Policies match on these. *)
let signal_prefer = Bgp.Community.make 65010 80
let signal_backup = Bgp.Community.make 65010 20

(* region name -> origin prefix blocks, for Ef_policy region predicates *)
let regions_of_ases ases =
  List.filter_map
    (fun r ->
      match
        List.concat_map
          (fun a -> if Region.equal a.as_region r then a.as_prefixes else [])
          ases
      with
      | [] -> None
      | blocks -> Some (Region.to_string r, blocks))
    Region.all

let standard_port_sizes_gbps = [ 10.; 20.; 40.; 100.; 200.; 400.; 800. ]

(* LAG bundles: multiples of 10G up to 100G, multiples of 100G beyond —
   how interconnect capacity actually gets provisioned. *)
let round_up_to_port gbps =
  if gbps <= 100.0 then 10.0 *. Float.ceil (gbps /. 10.0)
  else 100.0 *. Float.ceil (gbps /. 100.0)

(* --- prefix allocation ------------------------------------------------ *)

(* Each AS owns a /14 carved out of 64.0.0.0/2; prefixes are aligned
   sub-blocks of lengths /20../24. *)
let block_base = Int32.shift_left 64l 24 (* 64.0.0.0 *)
let block_bits = 18 (* /14 per AS *)

let alloc_prefixes rng ~as_index ~count =
  let base =
    Int32.add block_base (Int32.of_int (as_index lsl block_bits))
  in
  let lens = [| 20; 21; 22; 23; 24 |] in
  let len_weights = [| 1; 2; 3; 3; 3 |] in
  let total_w = Array.fold_left ( + ) 0 len_weights in
  let draw_len () =
    let r = Rng.int rng total_w in
    let rec go i acc =
      let acc = acc + len_weights.(i) in
      if r < acc then lens.(i) else go (i + 1) acc
    in
    go 0 0
  in
  let cursor = ref 0 in
  let out = ref [] in
  (try
     for _ = 1 to count do
       let len = draw_len () in
       let size = 1 lsl (32 - len) in
       let aligned = (!cursor + size - 1) / size * size in
       if aligned + size > 1 lsl block_bits then raise Exit;
       cursor := aligned + size;
       let addr = Bgp.Ipv4.of_int32 (Int32.add base (Int32.of_int aligned)) in
       out := Bgp.Prefix.make addr len :: !out
     done
   with Exit -> ());
  List.rev !out

(* --- AS universe ------------------------------------------------------ *)

let gen_region rng ~home ~home_bias =
  if Rng.chance rng home_bias then home
  else Rng.pick rng (Array.of_list Region.all)

let transit_names = [| "cogent"; "telia"; "lumen"; "ntt"; "he"; "tata" |]

let generate config =
  let rng = Rng.create config.seed in
  let rng_topo = Rng.split rng in
  let rng_weights = Rng.split rng in
  let rng_paths = Rng.split rng in
  let rng_capacity = Rng.split rng in

  (* 1. the AS universe: eyeballs, regionals, small stubs ---------------- *)
  let n_total = config.n_eyeball + config.n_regional + config.n_small in
  let kind_of_index i =
    if i < config.n_eyeball then Eyeball
    else if i < config.n_eyeball + config.n_regional then Regional
    else Small_stub
  in
  let asn_of_index i =
    match kind_of_index i with
    | Eyeball -> Bgp.Asn.of_int (100 + i)
    | Regional -> Bgp.Asn.of_int (1000 + i)
    | Small_stub -> Bgp.Asn.of_int (5000 + i)
  in
  let prefix_count_of_kind = function
    | Eyeball -> Rng.int_in rng_topo 8 40
    | Regional -> Rng.int_in rng_topo 4 12
    | Small_stub -> Rng.int_in rng_topo 1 4
  in
  let home_bias = function
    | Eyeball -> 0.7
    | Regional -> 0.6
    | Small_stub -> 0.35
  in
  let zipf = Zipf.create ~n:n_total ~s:config.zipf_s in
  let base_ases =
    List.init n_total (fun i ->
        let kind = kind_of_index i in
        let asn = asn_of_index i in
        let as_region =
          gen_region rng_topo ~home:config.pop_region ~home_bias:(home_bias kind)
        in
        let as_prefixes =
          alloc_prefixes rng_topo ~as_index:i ~count:(prefix_count_of_kind kind)
        in
        (i, { asn; kind; as_region; as_prefixes; weight = 0.0; providers = [] }))
  in
  (* traffic weight: Zipf over the AS list (eyeballs occupy top ranks) *)
  let weights = Zipf.weights zipf in
  let base_ases =
    List.map (fun (i, a) -> (i, { a with weight = weights.(i) })) base_ases
  in
  (* providers for small stubs: 1–2 upstreams among regionals/eyeballs *)
  let eyeballs = List.filter (fun (_, a) -> a.kind = Eyeball) base_ases in
  let regionals = List.filter (fun (_, a) -> a.kind = Regional) base_ases in
  let provider_pool =
    Array.of_list
      (List.map (fun (_, a) -> a.asn) regionals
      @ List.map (fun (_, a) -> a.asn) eyeballs)
  in
  let base_ases =
    List.map
      (fun (i, a) ->
        match a.kind with
        | Small_stub when Array.length provider_pool > 0 ->
            let n = if Rng.chance rng_topo 0.3 then 2 else 1 in
            let chosen =
              Rng.sample_without_replacement rng_topo n provider_pool
            in
            (i, { a with providers = Array.to_list chosen })
        | Small_stub | Eyeball | Regional -> (i, a))
      base_ases
  in
  let ases = List.map snd base_ases in

  (* per-prefix weights: intra-AS Zipf, normalised to the AS weight ------ *)
  ignore rng_weights;
  let prefix_weight_trie =
    List.fold_left
      (fun trie a ->
        match a.as_prefixes with
        | [] -> trie
        | ps ->
            let z = Zipf.create ~n:(List.length ps) ~s:0.8 in
            List.fold_left
              (fun (trie, rank) p ->
                ( Bgp.Ptrie.add p (a.weight *. Zipf.probability z rank) trie,
                  rank + 1 ))
              (trie, 1) ps
            |> fst)
      Bgp.Ptrie.empty ases
  in
  let origin_trie =
    List.fold_left
      (fun trie a ->
        List.fold_left (fun trie p -> Bgp.Ptrie.add p a.asn trie) trie a.as_prefixes)
      Bgp.Ptrie.empty ases
  in
  let region_of_asn =
    let tbl = Hashtbl.create n_total in
    List.iter (fun a -> Hashtbl.replace tbl (Bgp.Asn.to_int a.asn) a.as_region) ases;
    tbl
  in

  (* 2. the PoP: interfaces and peers ------------------------------------ *)
  let pop =
    Pop.create ~name:config.pop_name ~region:config.pop_region
      ~asn:config.self_asn ()
  in
  (* the import route-map: the DSL program when the config carries one,
     else the standard import (same clauses as the legacy default_ingest,
     pinned by test) — compiled once, against the generated AS universe's
     region map, before any route is ingested *)
  let policy =
    let env =
      Ef_policy.env ~regions:(regions_of_ases ases) ~self_asn:config.self_asn ()
    in
    match config.import_policy with
    | Some p -> Ef_policy.Compile.route_map env p
    | None ->
        Ef_policy.Compile.route_map env
          (Ef_policy.standard_import ~self_asn:config.self_asn)
  in
  let next_peer_id = ref 0 in
  let fresh_peer ~name ~asn ~kind =
    let id = !next_peer_id in
    incr next_peer_id;
    let session_addr = Bgp.Ipv4.of_octets 172 16 (id lsr 8) (id land 0xFF) in
    let router_id = Bgp.Ipv4.of_octets 10 99 (id lsr 8) (id land 0xFF) in
    Bgp.Peer.make ~id ~name ~asn ~kind ~router_id ~session_addr
  in

  (* transit providers *)
  let transits =
    List.init config.n_transits (fun i ->
        let name = transit_names.(i mod Array.length transit_names) in
        let peer =
          fresh_peer ~name ~asn:(Bgp.Asn.of_int (10 + i)) ~kind:Bgp.Peer.Transit
        in
        let iface =
          Pop.add_interface pop ~name:("transit-" ^ name)
            ~capacity_bps:(Units.gbps config.transit_capacity_gbps)
            ~shared:false
        in
        Pop.add_peer pop peer ~iface ~policy;
        peer)
  in

  (* helper: expected served weight of a peer AS = own + single-homed
     customers (used for capacity sizing) *)
  let served_weight a =
    let customers =
      List.filter (fun c -> List.exists (Bgp.Asn.equal a.asn) c.providers) ases
    in
    a.weight +. List.fold_left (fun acc c -> acc +. c.weight) 0.0 customers
  in

  (* private peers: the top-weight eyeballs *)
  let private_ases =
    List.filteri (fun i _ -> i < config.n_private_peers) (List.map snd eyeballs)
  in
  let private_peers =
    List.map
      (fun a ->
        let peer =
          fresh_peer
            ~name:(Printf.sprintf "pni-as%d" (Bgp.Asn.to_int a.asn))
            ~asn:a.asn ~kind:Bgp.Peer.Private_peer
        in
        let peak_gbps = served_weight a *. config.total_peak_gbps in
        let headroom =
          Rng.float rng_capacity (config.headroom_hi -. config.headroom_lo)
          +. config.headroom_lo
        in
        let capacity_gbps = round_up_to_port (Float.max 1.0 (peak_gbps *. headroom)) in
        let iface =
          Pop.add_interface pop
            ~name:(Printf.sprintf "pni-as%d" (Bgp.Asn.to_int a.asn))
            ~capacity_bps:(Units.gbps capacity_gbps)
            ~shared:false
        in
        Pop.add_peer pop peer ~iface ~policy;
        (peer, a))
      private_ases
  in

  (* the shared IXP port: public peers and the route server *)
  let ixp_port =
    Pop.add_interface pop ~name:"ixp-port"
      ~capacity_bps:(Units.gbps config.public_port_gbps)
      ~shared:true
  in
  let public_ases =
    List.filteri (fun i _ -> i < config.n_public_peers) (List.map snd regionals)
  in
  let public_peers =
    List.map
      (fun a ->
        let peer =
          fresh_peer
            ~name:(Printf.sprintf "ixp-as%d" (Bgp.Asn.to_int a.asn))
            ~asn:a.asn ~kind:Bgp.Peer.Public_peer
        in
        Pop.add_peer pop peer ~iface:ixp_port ~policy;
        (peer, a))
      public_ases
  in
  let rs_peer =
    if config.route_server then begin
      let peer =
        fresh_peer ~name:"route-server" ~asn:(Bgp.Asn.of_int 64600)
          ~kind:Bgp.Peer.Route_server
      in
      Pop.add_peer pop peer ~iface:ixp_port ~policy;
      Some peer
    end
    else None
  in

  (* 3. announcements ----------------------------------------------------- *)
  let announce ?(communities = []) peer prefix path ~med =
    let attrs =
      Bgp.Attrs.make ~med ~communities
        ~as_path:(Bgp.As_path.of_list path)
        ~next_hop:peer.Bgp.Peer.session_addr ()
    in
    ignore (Pop.announce pop ~peer_id:(Bgp.Peer.id peer) prefix attrs)
  in
  (* inbound-TE communities on public-peer announcements, when enabled *)
  let prefer_signal =
    if config.community_signaling then [ signal_prefer ] else []
  in
  let backup_signal =
    if config.community_signaling then [ signal_backup ] else []
  in

  (* transit: full table; synthetic tier-2 fillers lengthen some paths *)
  List.iteri
    (fun ti transit ->
      let t_asn = Bgp.Peer.asn transit in
      List.iter
        (fun a ->
          (* per (transit, AS): path shape and MED are drawn once *)
          let extra_hop =
            if Rng.chance rng_paths 0.3 then
              [ Bgp.Asn.of_int (60000 + ((ti * 97) + (Bgp.Asn.to_int a.asn mod 89))) ]
            else []
          in
          let via_provider =
            match (a.kind, a.providers) with
            | Small_stub, p :: _ -> [ p ]
            | (Small_stub | Eyeball | Regional), _ -> []
          in
          let path = (t_asn :: extra_hop) @ via_provider @ [ a.asn ] in
          let med = Some (Rng.int rng_paths 30) in
          List.iter (fun prefix -> announce transit prefix path ~med) a.as_prefixes)
        ases)
    transits;

  (* private peers: own prefixes + their single-homed customers *)
  List.iter
    (fun (peer, a) ->
      List.iter (fun p -> announce peer p [ a.asn ] ~med:None) a.as_prefixes;
      List.iter
        (fun c ->
          if List.exists (Bgp.Asn.equal a.asn) c.providers then
            List.iter
              (fun p -> announce peer p [ a.asn; c.asn ] ~med:None)
              c.as_prefixes)
        ases)
    private_peers;

  (* public peers: same shape over the shared port; with signaling on,
     own prefixes carry "prefer" and re-announced customers "backup" *)
  List.iter
    (fun (peer, a) ->
      List.iter
        (fun p -> announce ~communities:prefer_signal peer p [ a.asn ] ~med:None)
        a.as_prefixes;
      List.iter
        (fun c ->
          if List.exists (Bgp.Asn.equal a.asn) c.providers then
            List.iter
              (fun p ->
                announce ~communities:backup_signal peer p [ a.asn; c.asn ]
                  ~med:None)
              c.as_prefixes)
        ases)
    public_peers;

  (* route server: a fraction of small stubs are IXP members; the RS is
     transparent (it does not prepend its own ASN) *)
  (match rs_peer with
  | None -> ()
  | Some rs ->
      List.iter
        (fun a ->
          match a.kind with
          | Small_stub when Rng.chance rng_paths config.rs_member_fraction ->
              List.iter (fun p -> announce rs p [ a.asn ] ~med:None) a.as_prefixes
          | Small_stub | Eyeball | Regional -> ())
        ases);

  let all_prefixes = List.concat_map (fun a -> a.as_prefixes) ases in
  {
    pop;
    ases;
    prefix_weight =
      (fun p -> Option.value (Bgp.Ptrie.find p prefix_weight_trie) ~default:0.0);
    prefix_origin = (fun p -> Bgp.Ptrie.find p origin_trie);
    origin_region =
      (fun p ->
        match Bgp.Ptrie.find p origin_trie with
        | None -> config.pop_region
        | Some asn ->
            Option.value
              (Hashtbl.find_opt region_of_asn (Bgp.Asn.to_int asn))
              ~default:config.pop_region);
    all_prefixes;
    total_peak_bps = Units.gbps config.total_peak_gbps;
  }

(* The policy evaluation environment of a generated world: region origin
   blocks from the AS universe, interface facts from the PoP — what the
   engine needs to compile a policy's allocator side, and what tests use
   to run the interpreter against the compiled route-maps. *)
let policy_env (w : world) =
  let pop_region = Region.to_string (Pop.region w.pop) in
  let ifaces =
    List.map
      (fun iface ->
        let peers = Pop.peers_on_iface w.pop ~iface_id:(Iface.id iface) in
        {
          Ef_policy.if_id = Iface.id iface;
          if_name = Iface.name iface;
          if_shared = Iface.shared iface;
          if_region = pop_region;
          if_peer_kinds = List.sort_uniq compare (List.map Bgp.Peer.kind peers);
          if_peer_asns = List.map Bgp.Peer.asn peers;
        })
      (Pop.interfaces w.pop)
  in
  Ef_policy.env ~regions:(regions_of_ases w.ases) ~ifaces ~self_asn:(Pop.asn w.pop)
    ()
