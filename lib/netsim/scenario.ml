type t = {
  scenario_name : string;
  description : string;
  topo : Topo_gen.config;
}

let base = Topo_gen.default_config

let pop_a =
  {
    scenario_name = "pop-a";
    description = "large NA-East PoP: dense private peering, busy eyeball market";
    topo =
      {
        base with
        Topo_gen.seed = 1001;
        pop_name = "pop-a";
        pop_region = Region.Na_east;
        n_eyeball = 24;
        n_regional = 48;
        n_small = 160;
        n_transits = 3;
        n_private_peers = 16;
        n_public_peers = 30;
        total_peak_gbps = 1200.0;
        transit_capacity_gbps = 1600.0;
        public_port_gbps = 300.0;
      };
  }

let pop_b =
  {
    scenario_name = "pop-b";
    description = "large European PoP: strong IXP culture, many public peers";
    topo =
      {
        base with
        Topo_gen.seed = 1002;
        pop_name = "pop-b";
        pop_region = Region.Europe;
        n_eyeball = 20;
        n_regional = 60;
        n_small = 180;
        n_transits = 2;
        n_private_peers = 12;
        n_public_peers = 45;
        total_peak_gbps = 1000.0;
        transit_capacity_gbps = 1200.0;
        public_port_gbps = 400.0;
      };
  }

let pop_c =
  {
    scenario_name = "pop-c";
    description = "mid-size Asian PoP: fewer peers, more traffic on transit";
    topo =
      {
        base with
        Topo_gen.seed = 1003;
        pop_name = "pop-c";
        pop_region = Region.Asia;
        n_eyeball = 12;
        n_regional = 30;
        n_small = 120;
        n_transits = 3;
        n_private_peers = 6;
        n_public_peers = 15;
        rs_member_fraction = 0.3;
        total_peak_gbps = 600.0;
        transit_capacity_gbps = 800.0;
        public_port_gbps = 100.0;
      };
  }

let pop_d =
  {
    scenario_name = "pop-d";
    description = "small South-American PoP: thin peering, tight capacities";
    topo =
      {
        base with
        Topo_gen.seed = 1004;
        pop_name = "pop-d";
        pop_region = Region.South_america;
        n_eyeball = 8;
        n_regional = 16;
        n_small = 60;
        n_transits = 2;
        n_private_peers = 4;
        n_public_peers = 10;
        total_peak_gbps = 250.0;
        transit_capacity_gbps = 400.0;
        public_port_gbps = 60.0;
        headroom_lo = 0.5;
        headroom_hi = 1.3;
      };
  }

let tiny =
  {
    scenario_name = "tiny";
    description = "micro-world for unit and integration tests";
    topo = Topo_gen.small_config;
  }

let stress =
  {
    scenario_name = "stress";
    description = "scale bench input: thousands of prefixes";
    topo =
      {
        base with
        Topo_gen.seed = 9001;
        pop_name = "pop-stress";
        n_eyeball = 60;
        n_regional = 150;
        n_small = 600;
        n_transits = 4;
        n_private_peers = 40;
        n_public_peers = 100;
        total_peak_gbps = 4000.0;
        transit_capacity_gbps = 3200.0;
        public_port_gbps = 800.0;
      };
  }

(* --- DSL-policy scenarios --------------------------------------------

   Two worlds whose import policy is declared as an Ef_policy program
   instead of the standard tiers: the per-peer-class policies the
   related work calls for, expressed in the combinator DSL and compiled
   at generation time. *)

(* Remote-peering IXP (O Peer, Where Art Thou?): many public peers are
   remote — the short AS path hides a long backhaul detour — so blanket
   peer-over-transit preference is harmful. Demote public and
   route-server routes to just above transit so the allocator detours
   them freely, and tighten the shared port's overload threshold (the
   same peer-kind predicate selects the routes in the route-map and the
   IXP port in the allocator). *)
let remote_peering_policy : Ef_policy.program =
  let open Ef_policy in
  let lp kind = List.assoc kind Ef_bgp.Policy.local_pref_table in
  let tag kind = Add_community (Ef_bgp.Policy.ingest_community kind) in
  program ~name:"remote-peering"
    (standard_guards ~self_asn:base.Topo_gen.self_asn
    <+> rule ~name:"demote-remote-public"
          (peer_kind Ef_bgp.Peer.Public_peer)
          [
            Set_local_pref (lp Ef_bgp.Peer.Transit + 10);
            tag Ef_bgp.Peer.Public_peer;
            Set_overload_threshold 0.85;
          ]
    <+> rule ~name:"demote-route-server"
          (peer_kind Ef_bgp.Peer.Route_server)
          [
            Set_local_pref (lp Ef_bgp.Peer.Transit + 5);
            tag Ef_bgp.Peer.Route_server;
          ]
    <+> standard_tiers
    <+> params [ Set_detour_budget 0.3 ])

(* Community-driven steering (fine-grained inbound TE with BGP
   communities): public peers tag their announcements with
   prefer/backup signal communities (Topo_gen.community_signaling) and
   the import policy honors them — preferred routes beat even private
   peering, backup routes drop below transit. *)
let community_steering_policy : Ef_policy.program =
  let open Ef_policy in
  let lp kind = List.assoc kind Ef_bgp.Policy.local_pref_table in
  let tag kind = Add_community (Ef_bgp.Policy.ingest_community kind) in
  program ~name:"community-steering"
    (standard_guards ~self_asn:base.Topo_gen.self_asn
    <+> rule ~name:"honor-prefer"
          (has_community Topo_gen.signal_prefer)
          [
            Set_local_pref (lp Ef_bgp.Peer.Private_peer + 20);
            tag Ef_bgp.Peer.Public_peer;
          ]
    <+> rule ~name:"honor-backup"
          (has_community Topo_gen.signal_backup)
          [
            Set_local_pref (lp Ef_bgp.Peer.Transit - 50);
            tag Ef_bgp.Peer.Public_peer;
          ]
    <+> standard_tiers
    <+> params [ Set_max_overrides 500 ])

let remote_ixp =
  {
    scenario_name = "remote-ixp";
    description =
      "remote-peering IXP: DSL policy demotes public/RS routes to just above \
       transit and tightens the shared port";
    topo =
      {
        base with
        Topo_gen.seed = 1005;
        pop_name = "pop-remote-ixp";
        pop_region = Region.Europe;
        n_eyeball = 14;
        n_regional = 40;
        n_small = 100;
        n_transits = 2;
        n_private_peers = 6;
        n_public_peers = 32;
        total_peak_gbps = 500.0;
        transit_capacity_gbps = 800.0;
        public_port_gbps = 150.0;
        import_policy = Some remote_peering_policy.Ef_policy.program_policy;
      };
  }

let community_led =
  {
    scenario_name = "community-led";
    description =
      "community-driven steering: public peers tag prefer/backup communities \
       and the DSL policy honors them";
    topo =
      {
        base with
        Topo_gen.seed = 1006;
        pop_name = "pop-community";
        pop_region = Region.Na_west;
        n_eyeball = 12;
        n_regional = 36;
        n_small = 90;
        n_private_peers = 6;
        n_public_peers = 28;
        total_peak_gbps = 450.0;
        transit_capacity_gbps = 700.0;
        public_port_gbps = 120.0;
        community_signaling = true;
        import_policy = Some community_steering_policy.Ef_policy.program_policy;
      };
  }

let policy_scenarios = [ remote_ixp; community_led ]
let paper_pops = [ pop_a; pop_b; pop_c; pop_d ]

(* A deterministic n-PoP fleet for parallel-runner benches: sizes cycle
   through small/medium/large profiles and regions cycle through the
   globe, so the work per PoP is uneven (like production) but every
   generation of the same [n] is identical. Kept modest — a fleet bench
   runs each PoP many times. *)
let generated_fleet ?(n = 16) () =
  if n < 1 then invalid_arg "Scenario.generated_fleet: n < 1";
  let regions = Region.all in
  List.init n (fun i ->
      let region = List.nth regions (i mod List.length regions) in
      (* three size tiers, cycling: 0 = small, 1 = medium, 2 = large *)
      let tier = i mod 3 in
      let scale = float_of_int (1 + tier) in
      let name = Printf.sprintf "gen-%02d" i in
      {
        scenario_name = name;
        description =
          Printf.sprintf "generated fleet PoP %d/%d (%s, tier %d)" (i + 1) n
            (Region.to_string region) tier;
        topo =
          {
            base with
            Topo_gen.seed = 7000 + i;
            pop_name = name;
            pop_region = region;
            n_eyeball = 4 + (2 * tier);
            n_regional = 8 + (6 * tier);
            n_small = 24 + (16 * tier);
            n_transits = 2 + (tier / 2);
            n_private_peers = 3 + (2 * tier);
            n_public_peers = 6 + (4 * tier);
            total_peak_gbps = 120.0 *. scale;
            transit_capacity_gbps = 180.0 *. scale;
            public_port_gbps = 40.0 *. scale;
          };
      })

let all = paper_pops @ [ tiny; stress ] @ policy_scenarios

(* DFZ-class worlds live outside the Topo_gen/Pop machinery (a million
   prefixes bypass RIB construction; see Dfz) — named here so the CLI and
   benches share one definition of each scale. *)
let dfz = Dfz.config ~n_prefixes:1_000_000 ()
let dfz_smoke = Dfz.config ~n_prefixes:50_000 ()

let dfz_scenarios = [ ("dfz", dfz); ("dfz-smoke", dfz_smoke) ]
let find_dfz name = List.assoc_opt name dfz_scenarios
let dfz_names () = List.map fst dfz_scenarios

let find name =
  List.find_opt (fun s -> String.equal s.scenario_name name) all

let names () = List.map (fun s -> s.scenario_name) all

(* Canned fault plans — named chaos profiles that ride alongside the
   named worlds. Interface ids are dense from 0 in generation order
   (transits first, then private peers, then the shared IXP port), so
   ids 0–2 exist in every scenario above. *)

let fault_plans : (string * Ef_fault.Plan.t) list =
  [
    ( "link-flap",
      Ef_fault.Plan.make ~seed:11
        [
          Ef_fault.Plan.Link_flap
            { iface_id = 0; from_s = 120; until_s = 600; period_s = 90; down_s = 30 };
        ] );
    ( "capacity-loss",
      Ef_fault.Plan.make ~seed:12
        [
          Ef_fault.Plan.Capacity_degradation
            { iface_id = 1; from_s = 60; until_s = 480; factor = 0.4 };
        ] );
    ( "bmp-stall",
      Ef_fault.Plan.make ~seed:13
        [ Ef_fault.Plan.Bmp_stall { from_s = 150; until_s = 420 } ] );
    ( "sflow-loss",
      Ef_fault.Plan.make ~seed:14
        [
          Ef_fault.Plan.Sflow_loss
            { from_s = 90; until_s = 450; drop_fraction = 0.7 };
        ] );
    (* Sized for the dfz driver's 30 s cycles: a 600 s flap period with
       300 s outages downs iface 1 for runs of consecutive cycles and
       brings it back, plus a capacity derate on iface 2 — interface-set
       adds, removes and capacity changes all exercised in one plan.
       Works on engine worlds too (ids 1–2 exist everywhere). *)
    ( "dfz-flap",
      Ef_fault.Plan.make ~seed:16
        [
          Ef_fault.Plan.Link_flap
            {
              iface_id = 1;
              from_s = 300;
              until_s = 3000;
              period_s = 600;
              down_s = 300;
            };
          Ef_fault.Plan.Capacity_degradation
            { iface_id = 2; from_s = 600; until_s = 2400; factor = 0.6 };
        ] );
    ( "chaos",
      Ef_fault.Plan.make ~seed:15
        [
          Ef_fault.Plan.Link_flap
            { iface_id = 0; from_s = 60; until_s = 540; period_s = 120; down_s = 45 };
          Ef_fault.Plan.Capacity_degradation
            { iface_id = 1; from_s = 180; until_s = 420; factor = 0.5 };
          Ef_fault.Plan.Bmp_stall { from_s = 240; until_s = 390 };
          Ef_fault.Plan.Sflow_loss
            { from_s = 120; until_s = 300; drop_fraction = 0.5 };
          Ef_fault.Plan.Cycle_delay { from_s = 300; until_s = 450; delay_s = 20 };
        ] );
  ]

let find_fault_plan name = List.assoc_opt name fault_plans
let fault_plan_names () = List.map fst fault_plans

(* Canned policy programs: the DSL programs behind the policy scenarios,
   addressable by name from efctl and serialized to
   examples/policies/<name>.json by the codec. *)

let policies : (string * Ef_policy.program) list =
  [
    ("remote-peering", remote_peering_policy);
    ("community-steering", community_steering_policy);
  ]

let find_policy name = List.assoc_opt name policies
let policy_names () = List.map fst policies
