(** Performance-aware placement (the paper's §7 extension).

    Capacity overrides answer "where must traffic go"; this layer answers
    "where should it go": when measurements show an alternate path
    beating the BGP-preferred one by more than a tolerance, suggest
    steering the prefix there — provided the target has capacity room.
    Deployed conservatively in the paper (a limited fraction of traffic),
    mirrored here by a per-cycle suggestion budget. *)

type suggestion = {
  sug_prefix : Ef_bgp.Prefix.t;
  sug_target : Ef_bgp.Route.t;
  improvement_ms : float;   (** positive: how much faster the target is *)
  rate_bps : float;
}

type config = {
  min_improvement_ms : float;  (** ignore deltas smaller than this *)
  max_suggestions : int;
  capacity_guard : float;      (** target iface must stay below this util *)
}

val default_config : config
(** 10 ms, 50 suggestions, 0.85 guard. *)

val default_policy : Ef_policy.t
(** {!default_config} expressed as a DSL [params] rule — compose it into
    an [Ef_policy] program to restate or tune the perf knobs there. *)

val config_of_policy : ?base:config -> Ef_policy.env -> Ef_policy.t -> config
(** The perf-side denotation of a policy: [base] (default
    {!default_config}) with any [Set_min_improvement_ms] /
    [Set_max_suggestions] / [Set_perf_guard] knobs the policy's
    matching rules set (see {!Ef_policy.alloc_params}). *)

val suggest :
  ?config:config ->
  Path_store.t ->
  Ef_collector.Snapshot.t ->
  projection:Edge_fabric.Projection.t ->
  suggestion list
(** Largest improvements first. A suggestion is emitted only when the
    measured-better route is a current candidate and moving the prefix's
    whole rate keeps the target interface under [capacity_guard]. *)

val to_overrides :
  suggestion list ->
  snapshot:Ef_collector.Snapshot.t ->
  projection:Edge_fabric.Projection.t ->
  Edge_fabric.Override.t list
(** Convert accepted suggestions to controller overrides (the enforcement
    mechanism is identical to capacity overrides). *)
