module Bgp = Ef_bgp
module Snapshot = Ef_collector.Snapshot
module Projection = Edge_fabric.Projection

type suggestion = {
  sug_prefix : Bgp.Prefix.t;
  sug_target : Bgp.Route.t;
  improvement_ms : float;
  rate_bps : float;
}

type config = {
  min_improvement_ms : float;
  max_suggestions : int;
  capacity_guard : float;
}

let default_config =
  { min_improvement_ms = 10.0; max_suggestions = 50; capacity_guard = 0.85 }

(* the default configuration, as a DSL rule: the perf stage's knobs are
   part of the same policy language as the import rules, so a program
   can tune capacity and performance steering together *)
let default_policy =
  Ef_policy.params ~name:"perf-defaults"
    [
      Ef_policy.Set_min_improvement_ms default_config.min_improvement_ms;
      Ef_policy.Set_max_suggestions default_config.max_suggestions;
      Ef_policy.Set_perf_guard default_config.capacity_guard;
    ]

let config_of_policy ?(base = default_config) env policy =
  let ap = Ef_policy.alloc_params env policy in
  {
    min_improvement_ms =
      Option.value ap.Ef_policy.ap_min_improvement_ms
        ~default:base.min_improvement_ms;
    max_suggestions =
      Option.value ap.Ef_policy.ap_max_suggestions ~default:base.max_suggestions;
    capacity_guard =
      Option.value ap.Ef_policy.ap_perf_guard ~default:base.capacity_guard;
  }

let take n l = List.filteri (fun i _ -> i < n) l

let suggest ?(config = default_config) store snapshot ~projection =
  let candidates =
    List.filter_map
      (fun (prefix, rate) ->
        match Snapshot.routes snapshot prefix with
        | [] | [ _ ] -> None
        | primary :: alts -> (
            match
              Path_store.compare_paths store ~prefix
                ~primary:(Bgp.Route.peer_id primary)
                ~alternates:(List.map Bgp.Route.peer_id alts)
            with
            | Some cmp when -.cmp.Path_store.delta_ms >= config.min_improvement_ms
              -> (
                let target =
                  List.find_opt
                    (fun r -> Bgp.Route.peer_id r = cmp.Path_store.best_alt_peer)
                    alts
                in
                match target with
                | None -> None
                | Some target -> (
                    match Snapshot.iface_of_route snapshot target with
                    | None -> None
                    | Some iface ->
                        let new_load =
                          Projection.load_bps projection
                            ~iface_id:(Ef_netsim.Iface.id iface)
                          +. rate
                        in
                        if
                          new_load /. Ef_netsim.Iface.capacity_bps iface
                          <= config.capacity_guard
                        then
                          Some
                            {
                              sug_prefix = prefix;
                              sug_target = target;
                              improvement_ms = -.cmp.Path_store.delta_ms;
                              rate_bps = rate;
                            }
                        else None))
            | Some _ | None -> None))
      (Snapshot.prefix_rates snapshot)
  in
  candidates
  |> List.sort (fun a b -> compare b.improvement_ms a.improvement_ms)
  |> take config.max_suggestions

let to_overrides suggestions ~snapshot ~projection =
  List.filter_map
    (fun s ->
      match
        ( Projection.placement_of projection s.sug_prefix,
          Snapshot.iface_of_route snapshot s.sug_target )
      with
      | Some pl, Some to_iface ->
          let ranked = Snapshot.routes snapshot s.sug_prefix in
          let level =
            let rec index i = function
              | [] -> 1
              | r :: rest ->
                  if Bgp.Route.peer_id r = Bgp.Route.peer_id s.sug_target then i
                  else index (i + 1) rest
            in
            index 0 ranked
          in
          Some
            (Edge_fabric.Override.make ~prefix:s.sug_prefix ~target:s.sug_target
               ~from_iface:pl.Projection.iface_id
               ~to_iface:(Ef_netsim.Iface.id to_iface)
               ~preference_level:level ~rate_bps:s.rate_bps)
      | (None | Some _), _ -> None)
    suggestions
