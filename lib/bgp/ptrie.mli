(** Compressed patricia tries keyed by IPv4 prefix.

    The routing tables (Adj-RIB-In, Loc-RIB, traffic maps) all need exact
    prefix lookup plus longest-prefix match; this persistent trie provides
    both. Internally each prefix packs into one int
    ([(network lsl 6) lor length]) and the trie is a big-endian patricia
    tree over those keys: one node per binding plus one per divergence,
    so million-entry RIBs fit in a couple of machine words per route and
    lookups touch only the distinguishing bits. Persistence keeps RIB
    snapshots for the collector free — the controller can hold an old
    version while the speaker keeps updating — and lets delta snapshots
    share all unchanged structure with their parent. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool

val add : Prefix.t -> 'a -> 'a t -> 'a t
(** Insert or replace the binding for the exact prefix. *)

val remove : Prefix.t -> 'a t -> 'a t
(** Remove the exact binding; the trie is unchanged if absent. *)

val find : Prefix.t -> 'a t -> 'a option
(** Exact-prefix lookup. *)

val mem : Prefix.t -> 'a t -> bool

val update : Prefix.t -> ('a option -> 'a option) -> 'a t -> 'a t
(** Insert/modify/delete through one function, as [Map.update]. *)

val longest_match : Ipv4.t -> 'a t -> (Prefix.t * 'a) option
(** The most-specific prefix containing the address, if any. *)

val matches : Ipv4.t -> 'a t -> (Prefix.t * 'a) list
(** All prefixes containing the address, most specific first. *)

val covered : Prefix.t -> 'a t -> (Prefix.t * 'a) list
(** All bindings whose prefix is equal to or more specific than the
    argument, in ascending prefix order. *)

val cardinal : 'a t -> int
val fold : (Prefix.t -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
(** Ascending prefix order. *)

val iter : (Prefix.t -> 'a -> unit) -> 'a t -> unit
val map : ('a -> 'b) -> 'a t -> 'b t
val filter : (Prefix.t -> 'a -> bool) -> 'a t -> 'a t
val to_list : 'a t -> (Prefix.t * 'a) list
val of_list : (Prefix.t * 'a) list -> 'a t
val keys : 'a t -> Prefix.t list
val union : ('a -> 'a -> 'a) -> 'a t -> 'a t -> 'a t
(** [union f a b] keeps all bindings, resolving duplicates with [f]. *)

val fold2 :
  eq:('a -> 'a -> bool) ->
  (Prefix.t -> 'a option -> 'a option -> 'acc -> 'acc) ->
  'a t ->
  'a t ->
  'acc ->
  'acc
(** [fold2 ~eq f a b acc] folds over every prefix whose binding differs
    between [a] and [b] — present only in [a] ([f p (Some v) None]),
    only in [b] ([f p None (Some v)]), or in both with [eq] false.
    Physically-equal subtrees are pruned without descent, so on two
    snapshots that share structure the cost is proportional to the
    difference, not the size. Visit order is unspecified. *)
