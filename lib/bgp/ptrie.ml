(* Compressed big-endian patricia trie over packed integer keys.

   A prefix packs into one non-negative int: [(network lsl 6) lor length]
   (38 bits, comfortably inside OCaml's 63-bit int). Because prefixes are
   normalized (Prefix.make masks the host bits), ascending packed-key
   order is exactly the old uncompressed trie's DFS order — parent before
   children, left before right — so [fold]/[to_list]/[covered] keep their
   documented "ascending prefix order" byte-for-byte.

   One node per *binding* plus one branch per key divergence (instead of
   one node per bit of depth): a million-entry RIB costs ~2M small blocks
   rather than ~24M, and [find] walks the key's distinguishing bits only. *)

type 'a t =
  | Empty
  | Leaf of { key : int; p : Prefix.t; v : 'a }
  | Branch of { pre : int; bit : int; l : 'a t; r : 'a t }
      (* [pre]: the bits all keys below share, above [bit]; [bit]: the
         single branching bit (a power of two); [l]: keys with the bit
         clear, [r]: set. *)

let key_of p =
  (Int32.to_int (Ipv4.to_int32 (Prefix.network p)) land 0xFFFFFFFF) lsl 6
  lor Prefix.length p

let key_of_parts addr len =
  ((Int32.to_int (Ipv4.to_int32 addr) land 0xFFFFFFFF) lsl 6) lor len

let empty = Empty

let is_empty = function Empty -> true | Leaf _ | Branch _ -> false

(* highest set bit of [x] (x > 0), by smearing *)
let highest_bit x =
  let x = x lor (x lsr 1) in
  let x = x lor (x lsr 2) in
  let x = x lor (x lsr 4) in
  let x = x lor (x lsr 8) in
  let x = x lor (x lsr 16) in
  let x = x lor (x lsr 32) in
  x - (x lsr 1)

let zero_bit k bit = k land bit = 0

(* keep only the bits of [k] strictly above [bit] *)
let mask k bit = k land lnot ((bit lsl 1) - 1)
let match_prefix k pre bit = mask k bit = pre

let join k0 t0 k1 t1 =
  let bit = highest_bit (k0 lxor k1) in
  let pre = mask k0 bit in
  if zero_bit k0 bit then Branch { pre; bit; l = t0; r = t1 }
  else Branch { pre; bit; l = t1; r = t0 }

let branch pre bit l r =
  match (l, r) with Empty, t | t, Empty -> t | _ -> Branch { pre; bit; l; r }

let rec add_key k p v t =
  match t with
  | Empty -> Leaf { key = k; p; v }
  | Leaf { key; _ } ->
      if key = k then Leaf { key = k; p; v }
      else join k (Leaf { key = k; p; v }) key t
  | Branch { pre; bit; l; r } ->
      if match_prefix k pre bit then
        if zero_bit k bit then Branch { pre; bit; l = add_key k p v l; r }
        else Branch { pre; bit; l; r = add_key k p v r }
      else join k (Leaf { key = k; p; v }) pre t

let add p v t = add_key (key_of p) p v t

let rec remove_key k t =
  match t with
  | Empty -> Empty
  | Leaf { key; _ } -> if key = k then Empty else t
  | Branch { pre; bit; l; r } ->
      if match_prefix k pre bit then
        if zero_bit k bit then branch pre bit (remove_key k l) r
        else branch pre bit l (remove_key k r)
      else t

let remove p t = remove_key (key_of p) t

let rec find_key k t =
  match t with
  | Empty -> None
  | Leaf { key; v; _ } -> if key = k then Some v else None
  | Branch { bit; l; r; _ } ->
      if zero_bit k bit then find_key k l else find_key k r

let find p t = find_key (key_of p) t
let mem p t = Option.is_some (find p t)

let update p f t =
  match f (find p t) with None -> remove p t | Some v -> add p v t

(* All containing prefixes of [addr]: one exact probe per length. The
   compressed trie has no per-depth spine to ride, but 33 short walks
   is still microseconds, and [find_key] allocates nothing. *)
let matches addr t =
  let acc = ref [] in
  for len = 0 to 32 do
    let k = key_of_parts (Ipv4.apply_mask addr len) len in
    match find_key k t with
    | None -> ()
    | Some v -> acc := (Prefix.make addr len, v) :: !acc
  done;
  !acc

let longest_match addr t =
  let rec go len =
    if len < 0 then None
    else
      let k = key_of_parts (Ipv4.apply_mask addr len) len in
      match find_key k t with
      | Some v -> Some (Prefix.make addr len, v)
      | None -> go (len - 1)
  in
  go 32

let rec fold f t acc =
  match t with
  | Empty -> acc
  | Leaf { p; v; _ } -> f p v acc
  | Branch { l; r; _ } -> fold f r (fold f l acc)

let iter f t = fold (fun p v () -> f p v) t ()
let cardinal t = fold (fun _ _ n -> n + 1) t 0

let rec map f = function
  | Empty -> Empty
  | Leaf { key; p; v } -> Leaf { key; p; v = f v }
  | Branch { pre; bit; l; r } -> Branch { pre; bit; l = map f l; r = map f r }

let rec filter pred = function
  | Empty -> Empty
  | Leaf { p; v; _ } as t -> if pred p v then t else Empty
  | Branch { pre; bit; l; r } -> branch pre bit (filter pred l) (filter pred r)

let to_list t = List.rev (fold (fun p v acc -> (p, v) :: acc) t [])
let of_list l = List.fold_left (fun t (p, v) -> add p v t) empty l
let keys t = List.map fst (to_list t)

(* Subsumed bindings occupy the contiguous key range
   [net lsl 6, (net + 2^(32-len)) lsl 6) — prune whole branches whose
   span misses it. [go t acc] prepends t's in-range bindings (ascending)
   onto [acc]. *)
let covered p t =
  let net = Int32.to_int (Ipv4.to_int32 (Prefix.network p)) land 0xFFFFFFFF in
  let lo = net lsl 6 in
  let hi = (net + (1 lsl (32 - Prefix.length p))) lsl 6 in
  let rec go t acc =
    match t with
    | Empty -> acc
    | Leaf { key; p = q; v } ->
        if key >= lo && key < hi && Prefix.subsumes p q then (q, v) :: acc
        else acc
    | Branch { pre; bit; l; r } ->
        let span_hi = pre lor ((bit lsl 1) - 1) in
        if span_hi < lo || pre >= hi then acc else go l (go r acc)
  in
  go t []

let union f a b =
  fold
    (fun p v acc ->
      update p (function None -> Some v | Some w -> Some (f w v)) acc)
    b a

(* Merge walk over two tries, calling back only where the bindings
   differ; physically-equal subtrees are skipped without descent, so the
   cost is proportional to the *difference* when the tries share
   structure (as consecutive delta snapshots do). *)
let fold2 ~eq f t1 t2 acc =
  let left t acc = fold (fun p v acc -> f p (Some v) None acc) t acc in
  let right t acc = fold (fun p v acc -> f p None (Some v) acc) t acc in
  let rec go t1 t2 acc =
    if t1 == t2 then acc
    else
      match (t1, t2) with
      | Empty, t -> right t acc
      | t, Empty -> left t acc
      | Leaf { key = k1; p; v }, Leaf { key = k2; p = p2; v = v2 } ->
          if k1 = k2 then if eq v v2 then acc else f p (Some v) (Some v2) acc
          else f p (Some v) None (f p2 None (Some v2) acc)
      | Leaf { key; p; v }, (Branch _ as t) ->
          let acc =
            match find_key key t with
            | Some v2 -> if eq v v2 then acc else f p (Some v) (Some v2) acc
            | None -> f p (Some v) None acc
          in
          right (remove_key key t) acc
      | (Branch _ as t), Leaf { key; p; v } ->
          let acc =
            match find_key key t with
            | Some v1 -> if eq v1 v then acc else f p (Some v1) (Some v) acc
            | None -> f p None (Some v) acc
          in
          left (remove_key key t) acc
      | ( Branch { pre = p1; bit = m1; l = l1; r = r1 },
          Branch { pre = p2; bit = m2; l = l2; r = r2 } ) ->
          if m1 = m2 && p1 = p2 then go r1 r2 (go l1 l2 acc)
          else if m1 > m2 && match_prefix p2 p1 m1 then
            if zero_bit p2 m1 then left r1 (go l1 t2 acc)
            else go r1 t2 (left l1 acc)
          else if m2 > m1 && match_prefix p1 p2 m2 then
            if zero_bit p1 m2 then right r2 (go t1 l2 acc)
            else go t1 r2 (right l2 acc)
          else right t2 (left t1 acc)
  in
  go t1 t2 acc
