(** MRT RIB dumps (RFC 6396, TABLE_DUMP_V2).

    MRT is how the BGP world exchanges routing-table snapshots (RouteViews
    and RIPE RIS archives are MRT). Exporting a {!Rib} in this format
    means its contents can be inspected with standard tooling (bgpdump,
    bgpkit, …), and importing lets recorded archives stand in for the
    simulator's synthetic tables. Covered subset: PEER_INDEX_TABLE and
    RIB_IPV4_UNICAST entries, with BGP path attributes re-encoded through
    {!Codec}'s attribute encoder. *)

type peer_entry = {
  peer_bgp_id : Ipv4.t;
  peer_addr : Ipv4.t;
  peer_asn : Asn.t;
}

type rib_entry = {
  entry_peer_index : int;   (** index into the peer table *)
  originated_at : int;      (** unix seconds *)
  attrs : Attrs.t;
}

type rib_record = {
  sequence : int;
  rib_prefix : Prefix.t;
  entries : rib_entry list;
}

type t = {
  collector_id : Ipv4.t;
  view_name : string;
  peers : peer_entry list;
  records : rib_record list;
}

type error =
  | Truncated
  | Unsupported of string
  | Malformed of string

val pp_error : Format.formatter -> error -> unit

val encode : timestamp:int -> t -> string
(** Serialise as a PEER_INDEX_TABLE record followed by one
    RIB_IPV4_UNICAST record per prefix. *)

val decode : string -> (t, error) result
(** Parse a TABLE_DUMP_V2 dump produced by {!encode} (or by a real
    collector, for the record subtypes covered). Unknown MRT record types
    are skipped. *)

val of_rib : ?timestamp:int -> collector_id:Ipv4.t -> Rib.t -> t
(** Snapshot a RIB: every registered neighbor becomes a peer-table entry
    and every prefix's candidates become RIB entries (decision order). *)

val to_rib : ?decision:Decision.config -> t -> (Rib.t, error) result
(** Rebuild a {!Rib} from a dump: each peer-table entry becomes a
    registered transit neighbor (accept-all ingest — a collector feed is
    a full table by construction) with its original ASN, router id, and
    session address; every RIB entry is announced through the normal
    decision process, so {!Rib.ranked} orders candidates exactly as a
    live session replay would. Inverse of {!of_rib} up to peer
    ids/names. Fails with [Malformed] when an entry references a peer
    index outside the peer table. *)

val save : string -> timestamp:int -> t -> unit
val load : string -> (t, error) result
