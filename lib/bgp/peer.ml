type kind =
  | Transit
  | Private_peer
  | Public_peer
  | Route_server

let kind_to_string = function
  | Transit -> "transit"
  | Private_peer -> "private"
  | Public_peer -> "public"
  | Route_server -> "route-server"

let pp_kind fmt k = Format.pp_print_string fmt (kind_to_string k)
let all_kinds = [ Transit; Private_peer; Public_peer; Route_server ]

let kind_of_string = function
  | "transit" -> Some Transit
  | "private" -> Some Private_peer
  | "public" -> Some Public_peer
  | "route-server" -> Some Route_server
  | _ -> None

let kind_rank = function
  | Private_peer -> 0
  | Public_peer -> 1
  | Route_server -> 2
  | Transit -> 3

type t = {
  id : int;
  name : string;
  asn : Asn.t;
  kind : kind;
  router_id : Ipv4.t;
  session_addr : Ipv4.t;
}

let make ~id ~name ~asn ~kind ~router_id ~session_addr =
  { id; name; asn; kind; router_id; session_addr }

let id t = t.id
let asn t = t.asn
let kind t = t.kind
let compare a b = Int.compare a.id b.id
let equal a b = a.id = b.id

let pp fmt t =
  Format.fprintf fmt "%s(as%a,%a)" t.name Asn.pp t.asn pp_kind t.kind
