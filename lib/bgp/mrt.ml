type peer_entry = {
  peer_bgp_id : Ipv4.t;
  peer_addr : Ipv4.t;
  peer_asn : Asn.t;
}

type rib_entry = {
  entry_peer_index : int;
  originated_at : int;
  attrs : Attrs.t;
}

type rib_record = {
  sequence : int;
  rib_prefix : Prefix.t;
  entries : rib_entry list;
}

type t = {
  collector_id : Ipv4.t;
  view_name : string;
  peers : peer_entry list;
  records : rib_record list;
}

type error =
  | Truncated
  | Unsupported of string
  | Malformed of string

let pp_error fmt = function
  | Truncated -> Format.pp_print_string fmt "truncated"
  | Unsupported s -> Format.fprintf fmt "unsupported: %s" s
  | Malformed s -> Format.fprintf fmt "malformed: %s" s

let mrt_table_dump_v2 = 13
let subtype_peer_index = 1
let subtype_rib_ipv4_unicast = 2

(* --- encoding ------------------------------------------------------- *)

let add_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

let add_u16 buf v =
  add_u8 buf (v lsr 8);
  add_u8 buf v

let add_u32 buf v =
  add_u16 buf ((v lsr 16) land 0xFFFF);
  add_u16 buf (v land 0xFFFF)

let add_ip buf ip = add_u32 buf (Int32.to_int (Ipv4.to_int32 ip) land 0xFFFFFFFF)

let add_record buf ~timestamp ~subtype body =
  add_u32 buf timestamp;
  add_u16 buf mrt_table_dump_v2;
  add_u16 buf subtype;
  add_u32 buf (String.length body);
  Buffer.add_string buf body

let encode_peer_index t =
  let buf = Buffer.create 128 in
  add_ip buf t.collector_id;
  add_u16 buf (String.length t.view_name);
  Buffer.add_string buf t.view_name;
  add_u16 buf (List.length t.peers);
  List.iter
    (fun p ->
      add_u8 buf 0x02 (* IPv4 peer, 4-byte ASN *);
      add_ip buf p.peer_bgp_id;
      add_ip buf p.peer_addr;
      add_u32 buf (Asn.to_int p.peer_asn))
    t.peers;
  Buffer.contents buf

let encode_rib_record r =
  let buf = Buffer.create 256 in
  add_u32 buf r.sequence;
  let len = Prefix.length r.rib_prefix in
  add_u8 buf len;
  let nbytes = (len + 7) / 8 in
  let addr =
    Int32.to_int (Ipv4.to_int32 (Prefix.network r.rib_prefix)) land 0xFFFFFFFF
  in
  for i = 0 to nbytes - 1 do
    add_u8 buf (addr lsr (24 - (8 * i)))
  done;
  add_u16 buf (List.length r.entries);
  List.iter
    (fun e ->
      add_u16 buf e.entry_peer_index;
      add_u32 buf e.originated_at;
      let attrs = Codec.encode_path_attributes e.attrs in
      add_u16 buf (String.length attrs);
      Buffer.add_string buf attrs)
    r.entries;
  Buffer.contents buf

let encode ~timestamp t =
  let buf = Buffer.create 4096 in
  add_record buf ~timestamp ~subtype:subtype_peer_index (encode_peer_index t);
  List.iter
    (fun r ->
      add_record buf ~timestamp ~subtype:subtype_rib_ipv4_unicast
        (encode_rib_record r))
    t.records;
  Buffer.contents buf

(* --- decoding ------------------------------------------------------- *)

exception Fail of error

type reader = { buf : string; mutable pos : int; limit : int }

let need r n = if r.pos + n > r.limit then raise (Fail Truncated)

let u8 r =
  need r 1;
  let v = Char.code r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  v

let u16 r =
  let a = u8 r in
  (a lsl 8) lor u8 r

let u32 r =
  let a = u16 r in
  (a lsl 16) lor u16 r

let take r n =
  need r n;
  let s = String.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let remaining r = r.limit - r.pos

let sub_reader r n =
  need r n;
  let child = { buf = r.buf; pos = r.pos; limit = r.pos + n } in
  r.pos <- r.pos + n;
  child

let read_ip r = Ipv4.of_int32 (Int32.of_int (u32 r))

let decode_peer_index r =
  let collector_id = read_ip r in
  let name_len = u16 r in
  let view_name = take r name_len in
  let count = u16 r in
  let peers =
    List.init count (fun _ ->
        let typ = u8 r in
        if typ land 0x01 <> 0 then raise (Fail (Unsupported "IPv6 peer entry"));
        let peer_bgp_id = read_ip r in
        let peer_addr = read_ip r in
        let asn = if typ land 0x02 <> 0 then u32 r else u16 r in
        { peer_bgp_id; peer_addr; peer_asn = Asn.of_int asn })
  in
  (collector_id, view_name, peers)

let decode_rib_ipv4 r =
  let sequence = u32 r in
  let len = u8 r in
  if len > 32 then raise (Fail (Malformed "prefix length > 32"));
  let nbytes = (len + 7) / 8 in
  need r nbytes;
  let addr = ref 0l in
  for i = 0 to nbytes - 1 do
    addr :=
      Int32.logor !addr
        (Int32.shift_left (Int32.of_int (Char.code r.buf.[r.pos + i])) (24 - (8 * i)))
  done;
  r.pos <- r.pos + nbytes;
  let rib_prefix = Prefix.make (Ipv4.of_int32 !addr) len in
  let count = u16 r in
  let entries =
    List.init count (fun _ ->
        let entry_peer_index = u16 r in
        let originated_at = u32 r in
        let attr_len = u16 r in
        let attr_bytes = take r attr_len in
        match Codec.decode_path_attributes attr_bytes with
        | Ok attrs -> { entry_peer_index; originated_at; attrs }
        | Error e ->
            raise (Fail (Malformed ("bad attributes: " ^ Codec.error_to_string e))))
  in
  { sequence; rib_prefix; entries }

let decode buf =
  try
    let r = { buf; pos = 0; limit = String.length buf } in
    let header = ref None in
    let records = ref [] in
    while remaining r > 0 do
      let _timestamp = u32 r in
      let typ = u16 r in
      let subtype = u16 r in
      let len = u32 r in
      let body = sub_reader r len in
      if typ = mrt_table_dump_v2 then
        if subtype = subtype_peer_index then header := Some (decode_peer_index body)
        else if subtype = subtype_rib_ipv4_unicast then
          records := decode_rib_ipv4 body :: !records
        (* other TABLE_DUMP_V2 subtypes (IPv6, multicast) are skipped *)
      (* non-TABLE_DUMP_V2 records are skipped *)
    done;
    match !header with
    | None -> Error (Malformed "no PEER_INDEX_TABLE record")
    | Some (collector_id, view_name, peers) ->
        Ok { collector_id; view_name; peers; records = List.rev !records }
  with Fail e -> Error e

(* --- bridges ---------------------------------------------------------- *)

let of_rib ?(timestamp = 0) ~collector_id rib =
  let peer_ids = Rib.peer_ids rib in
  let index_of = Hashtbl.create 16 in
  let peers =
    List.mapi
      (fun i id ->
        Hashtbl.replace index_of id i;
        match Rib.peer rib id with
        | Some p ->
            {
              peer_bgp_id = p.Peer.router_id;
              peer_addr = p.Peer.session_addr;
              peer_asn = Peer.asn p;
            }
        | None -> assert false)
      peer_ids
  in
  let records =
    Rib.fold
      (fun prefix ranked acc ->
        let entries =
          List.filter_map
            (fun route ->
              match Hashtbl.find_opt index_of (Route.peer_id route) with
              | None -> None
              | Some idx ->
                  Some
                    {
                      entry_peer_index = idx;
                      originated_at = timestamp;
                      attrs = Route.attrs route;
                    })
            ranked
        in
        { sequence = 0; rib_prefix = prefix; entries } :: acc)
      rib []
    |> List.rev
    |> List.mapi (fun i r -> { r with sequence = i })
  in
  { collector_id; view_name = "edge-fabric"; peers; records }

let to_rib ?decision t =
  let rib = Rib.create ?decision () in
  let n_peers = List.length t.peers in
  List.iteri
    (fun i (pe : peer_entry) ->
      let peer =
        Peer.make ~id:i
          ~name:(Printf.sprintf "mrt-peer-%d" i)
          ~asn:pe.peer_asn
            (* a full-table collector feed carries the whole DFZ; transit
               is the only kind whose ingest policy accepts all of it *)
          ~kind:Peer.Transit ~router_id:pe.peer_bgp_id
          ~session_addr:pe.peer_addr
      in
      Rib.add_peer rib peer ~policy:Policy.accept_all)
    t.peers;
  try
    List.iter
      (fun (r : rib_record) ->
        List.iter
          (fun (e : rib_entry) ->
            if e.entry_peer_index < 0 || e.entry_peer_index >= n_peers then
              raise
                (Fail
                   (Malformed
                      (Printf.sprintf "rib entry references peer index %d of %d"
                         e.entry_peer_index n_peers)));
            ignore
              (Rib.announce rib ~peer_id:e.entry_peer_index r.rib_prefix
                 e.attrs))
          r.entries)
      t.records;
    Ok rib
  with Fail e -> Error e

let save path ~timestamp t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (encode ~timestamp t))

let load path =
  match open_in_bin path with
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> decode (In_channel.input_all ic))
  | exception Sys_error msg -> Error (Malformed msg)
