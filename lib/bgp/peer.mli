(** BGP neighbors as seen from one PoP's peering routers.

    Edge Fabric distinguishes four neighbor kinds, because both routing
    policy (peers preferred over transit) and capacity semantics (private
    interconnects are dedicated, public peering shares the IXP port,
    transit is effectively unconstrained upstream) depend on the kind. *)

type kind =
  | Transit        (** paid full-table provider *)
  | Private_peer   (** dedicated private interconnect (PNI) *)
  | Public_peer    (** bilateral session across an IXP fabric *)
  | Route_server   (** multilateral routes via an IXP route server *)

val kind_to_string : kind -> string

val kind_of_string : string -> kind option
(** Inverse of {!kind_to_string} (used by the policy JSON codec). *)

val pp_kind : Format.formatter -> kind -> unit
val all_kinds : kind list

val kind_rank : kind -> int
(** Facebook-style preference rank, lower is better: private/public/route
    server routes preferred over transit. Used by the default policy to
    derive LOCAL_PREF. *)

type t = private {
  id : int;            (** dense identifier, unique within a PoP *)
  name : string;
  asn : Asn.t;
  kind : kind;
  router_id : Ipv4.t;  (** BGP identifier, final decision tiebreak *)
  session_addr : Ipv4.t; (** neighbor address = NEXT_HOP of its routes *)
}

val make :
  id:int ->
  name:string ->
  asn:Asn.t ->
  kind:kind ->
  router_id:Ipv4.t ->
  session_addr:Ipv4.t ->
  t

val id : t -> int
val asn : t -> Asn.t
val kind : t -> kind
val compare : t -> t -> int
(** By [id]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
