type matcher =
  | Match_any
  | Match_prefix of Prefix.t
  | Match_prefix_exact of Prefix.t
  | Match_prefix_len_at_least of int
  | Match_community of Community.t
  | Match_peer_kind of Peer.kind
  | Match_peer_asn of Asn.t
  | Match_path_contains of Asn.t
  | Match_all of matcher list
  | Match_or of matcher list
  | Match_not of matcher

type action =
  | Set_local_pref of int
  | Set_med of int option
  | Add_community of Community.t
  | Remove_community of Community.t
  | Prepend of Asn.t * int

type verdict = Accept | Reject

type clause = {
  clause_name : string;
  guard : matcher;
  actions : action list;
  verdict : verdict;
}

type t = {
  clauses : clause list;
  default : verdict;
}

let make ?(default = Reject) clauses = { clauses; default }
let clauses t = t.clauses

let rec matches m (r : Route.t) =
  match m with
  | Match_any -> true
  | Match_prefix p -> Prefix.subsumes p (Route.prefix r)
  | Match_prefix_exact p -> Prefix.equal p (Route.prefix r)
  | Match_prefix_len_at_least n -> Prefix.length (Route.prefix r) >= n
  | Match_community c -> Route.has_community c r
  | Match_peer_kind k -> Route.peer_kind r = k
  | Match_peer_asn a -> Asn.equal (Peer.asn (Route.peer r)) a
  | Match_path_contains a -> As_path.mem a (Route.attrs r).Attrs.as_path
  | Match_all ms -> List.for_all (fun m -> matches m r) ms
  | Match_or ms -> List.exists (fun m -> matches m r) ms
  | Match_not m -> not (matches m r)

let apply_action action attrs =
  match action with
  | Set_local_pref lp -> Attrs.with_local_pref lp attrs
  | Set_med med -> Attrs.with_med med attrs
  | Add_community c -> Attrs.add_community c attrs
  | Remove_community c -> Attrs.remove_community c attrs
  | Prepend (asn, n) -> Attrs.prepend_path asn n attrs

let apply t route =
  let rec go = function
    | [] -> (
        match t.default with
        | Accept -> Some route
        | Reject -> None)
    | clause :: rest ->
        if matches clause.guard route then
          match clause.verdict with
          | Reject -> None
          | Accept ->
              let attrs =
                List.fold_left
                  (fun attrs a -> apply_action a attrs)
                  (Route.attrs route) clause.actions
              in
              Some (Route.with_attrs attrs route)
        else go rest
  in
  go t.clauses

let accept_all =
  make ~default:Accept []

(* The single source of truth for the kind->LOCAL_PREF tiers. Everything
   else (the default ingest policy, Ef_policy.standard_import, the doc
   comments) derives from this list so the values cannot drift. *)
let local_pref_table =
  [
    (Peer.Private_peer, 400);
    (Peer.Public_peer, 350);
    (Peer.Route_server, 300);
    (Peer.Transit, 200);
  ]

let local_pref_for_kind kind = List.assoc kind local_pref_table

(* 65000:1x — ingestion-kind tags; 65000:911 is reserved for controller
   overrides (see Edge_fabric.Override). *)
let ingest_community = function
  | Peer.Private_peer -> Community.make 65000 10
  | Peer.Public_peer -> Community.make 65000 11
  | Peer.Route_server -> Community.make 65000 12
  | Peer.Transit -> Community.make 65000 13

let rec pp_matcher fmt = function
  | Match_any -> Format.pp_print_string fmt "any"
  | Match_prefix p -> Format.fprintf fmt "prefix<=%a" Prefix.pp p
  | Match_prefix_exact p -> Format.fprintf fmt "prefix=%a" Prefix.pp p
  | Match_prefix_len_at_least n -> Format.fprintf fmt "len>=%d" n
  | Match_community c -> Format.fprintf fmt "community:%a" Community.pp c
  | Match_peer_kind k -> Format.fprintf fmt "peer-kind:%a" Peer.pp_kind k
  | Match_peer_asn a -> Format.fprintf fmt "peer-as%a" Asn.pp a
  | Match_path_contains a -> Format.fprintf fmt "path~as%a" Asn.pp a
  | Match_all ms ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " & ")
           pp_matcher)
        ms
  | Match_or ms ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " | ")
           pp_matcher)
        ms
  | Match_not m -> Format.fprintf fmt "!%a" pp_matcher m

let pp_action fmt = function
  | Set_local_pref lp -> Format.fprintf fmt "local-pref=%d" lp
  | Set_med (Some m) -> Format.fprintf fmt "med=%d" m
  | Set_med None -> Format.pp_print_string fmt "med=none"
  | Add_community c -> Format.fprintf fmt "+community:%a" Community.pp c
  | Remove_community c -> Format.fprintf fmt "-community:%a" Community.pp c
  | Prepend (a, n) -> Format.fprintf fmt "prepend:as%a*%d" Asn.pp a n

let pp_verdict fmt = function
  | Accept -> Format.pp_print_string fmt "accept"
  | Reject -> Format.pp_print_string fmt "reject"

let pp_clause fmt c =
  Format.fprintf fmt "@[<h>%-28s if %a -> %a%a@]" c.clause_name pp_matcher
    c.guard pp_verdict c.verdict
    (fun fmt actions ->
      List.iter (fun a -> Format.fprintf fmt " %a" pp_action a) actions)
    c.actions

let pp fmt t =
  Format.fprintf fmt "@[<v>%a@,%-28s -> %a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_clause)
    t.clauses "(default)" pp_verdict t.default

let default_ingest ~self_asn =
  let kind_clause kind =
    {
      clause_name = "ingest-" ^ Peer.kind_to_string kind;
      guard = Match_peer_kind kind;
      actions =
        [
          Set_local_pref (local_pref_for_kind kind);
          Add_community (ingest_community kind);
        ];
      verdict = Accept;
    }
  in
  make ~default:Reject
    ({
       clause_name = "deny-own-asn";
       guard = Match_path_contains self_asn;
       actions = [];
       verdict = Reject;
     }
     :: {
          clause_name = "deny-too-specific";
          guard = Match_prefix_len_at_least 25;
          actions = [];
          verdict = Reject;
        }
     :: {
          clause_name = "deny-default-route";
          guard = Match_prefix_exact Prefix.default;
          actions = [];
          verdict = Reject;
        }
     :: List.map kind_clause Peer.all_kinds)
