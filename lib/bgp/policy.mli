(** Routing policy: route-maps applied at route ingestion.

    A policy is an ordered list of clauses; the first clause whose guard
    matches decides the route's fate (reject, or accept after applying the
    clause's actions). This mirrors vendor route-maps closely enough to
    express the egress policy the paper describes: peer routes preferred
    over transit via LOCAL_PREF tiers, ingestion-point tagging with
    communities, and rejection of bogus routes. *)

type matcher =
  | Match_any                       (** always true *)
  | Match_prefix of Prefix.t        (** route's prefix inside this block *)
  | Match_prefix_exact of Prefix.t
  | Match_prefix_len_at_least of int
  | Match_community of Community.t
  | Match_peer_kind of Peer.kind
  | Match_peer_asn of Asn.t
  | Match_path_contains of Asn.t
  | Match_all of matcher list       (** conjunction *)
  | Match_or of matcher list        (** disjunction *)
  | Match_not of matcher

type action =
  | Set_local_pref of int
  | Set_med of int option
  | Add_community of Community.t
  | Remove_community of Community.t
  | Prepend of Asn.t * int

type verdict = Accept | Reject

type clause = {
  clause_name : string;
  guard : matcher;
  actions : action list;
  verdict : verdict;
}

type t

val make : ?default:verdict -> clause list -> t
  [@@deprecated
    "construct policies with Ef_policy builders and compile them \
     (Ef_policy.Compile.route_map); raw clause lists are the legacy path"]
(** [default] applies when no clause matches; vendors default to deny,
    and so do we. *)

val clauses : t -> clause list

val matches : matcher -> Route.t -> bool
val apply_action : action -> Attrs.t -> Attrs.t

val apply : t -> Route.t -> Route.t option
(** [None] when rejected. *)

val accept_all : t

val local_pref_table : (Peer.kind * int) list
(** The LOCAL_PREF tier per neighbor kind, in preference order (best
    first) — the {e single} source for these values; the default policy,
    [Ef_policy.standard_import] and the docs all derive from it.
    (Published Facebook policy prefers peer routes over transit; exact
    values are ours, only the order matters.) *)

val local_pref_for_kind : Peer.kind -> int
(** Lookup in {!local_pref_table}. *)

val ingest_community : Peer.kind -> Community.t
(** Community tagged onto routes at ingestion, recording the neighbor
    kind — lets later stages classify routes without re-deriving it. *)

val default_ingest : self_asn:Asn.t -> t
  [@@deprecated
    "use Ef_policy.standard_import (compiled via \
     Ef_policy.standard_import_map); this clause list is the legacy shim"]
(** The PoP's standard import policy: drop routes containing our own ASN
    (loop prevention), drop martians (length > 24 or default routes from
    peers), set kind-tier LOCAL_PREF, tag ingest community. Compiles to
    the same clauses as [Ef_policy.standard_import] (pinned by test). *)

(** {2 Printers} *)

val pp_matcher : Format.formatter -> matcher -> unit
val pp_action : Format.formatter -> action -> unit
val pp_verdict : Format.formatter -> verdict -> unit
val pp_clause : Format.formatter -> clause -> unit

val pp : Format.formatter -> t -> unit
(** Route-map listing, one clause per line, default last. *)
