module Bgp = Ef_bgp
open Ef_util

module Ptbl = Hashtbl.Make (struct
  type t = Bgp.Prefix.t

  let equal = Bgp.Prefix.equal
  let hash = Bgp.Prefix.hash
end)

type entry = {
  ewma : Ewma.t;
  mutable updated_this_interval : bool;
}

type t = {
  alpha : float;
  config : Sflow.config;
  entries : entry Ptbl.t;
}

let create ?(alpha = 0.3) config = { alpha; config; entries = Ptbl.create 1024 }

let observe t samples =
  List.iter
    (fun (s : Sflow.sample) ->
      let rate = Sflow.estimate_rate_bps t.config s in
      let entry =
        match Ptbl.find_opt t.entries s.Sflow.sample_prefix with
        | Some e -> e
        | None ->
            let e = { ewma = Ewma.create ~alpha:t.alpha; updated_this_interval = false } in
            Ptbl.replace t.entries s.Sflow.sample_prefix e;
            e
      in
      Ewma.observe entry.ewma rate;
      entry.updated_this_interval <- true)
    samples

let tick_absent t =
  Ptbl.iter
    (fun _ e ->
      if e.updated_this_interval then e.updated_this_interval <- false
      else Ewma.observe e.ewma 0.0)
    t.entries

let estimate_bps t prefix =
  match Ptbl.find_opt t.entries prefix with
  | None -> 0.0
  | Some e -> Ewma.value e.ewma

(* rate descending, ties broken by prefix ascending — the same total
   order as Projection.compare_placement. Sorting by rate alone would
   leave equal-rate prefixes in Hashtbl fold order, which varies with
   table history: nondeterministic output in a pipeline that promises
   canonical order everywhere. *)
let snapshot t =
  Ptbl.fold (fun p e acc -> (p, Ewma.value e.ewma) :: acc) t.entries []
  |> List.sort (fun (pa, a) (pb, b) ->
         let c = Float.compare b a in
         if c <> 0 then c else Bgp.Prefix.compare pa pb)

let tracked t = Ptbl.length t.entries

let drop_below t floor =
  let dead =
    Ptbl.fold
      (fun p e acc -> if Ewma.value e.ewma < floor then p :: acc else acc)
      t.entries []
  in
  List.iter (Ptbl.remove t.entries) dead
