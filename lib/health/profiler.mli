(** Low-overhead span/counter profiler with Chrome trace-event export.

    A profiler is a mutex-guarded in-memory event buffer. It taps every
    already-instrumented [Ef_obs] span via {!attach} (the registry's
    profile hook), accepts manual spans for code that bypasses the
    registry (pool tasks, fleet merge), and records counter series (per
    cycle GC deltas). Events carry the recording domain's id as the
    Chrome [tid], so a parallel fleet run opens in [chrome://tracing] /
    Perfetto with one row per domain.

    The disabled profiler ({!noop}) is a first-class value whose [span]
    runs the thunk directly and whose recorders are no-ops — the shipped
    default, so production paths pay one boolean test when profiling is
    off. When the buffer reaches its capacity further events are counted
    in {!dropped} rather than grown without bound. *)

type t

val noop : t
(** The disabled profiler: records nothing, {!span} just runs the thunk. *)

val create : ?capacity:int -> unit -> t
(** An enabled profiler. [capacity] bounds the event buffer (default
    1e6 events); overflow increments {!dropped}. The creation instant is
    the trace's time origin. *)

val enabled : t -> bool

val attach : t -> Ef_obs.Registry.t -> unit
(** Install this profiler as [reg]'s profile hook, so every span timed
    through the registry (and every [on_counter] push) lands here. No-op
    for {!noop}. *)

val hook : t -> Ef_obs.Registry.profile_hook
(** The raw hook, for call sites managing registries directly. *)

val span : ?lane:int -> t -> name:string -> (unit -> 'a) -> 'a
(** Time the thunk as a complete event. [lane] tags pool-lane
    attribution (shows up in the event's [args] and {!lane_busy_s}). *)

val record_span : ?lane:int -> t -> name:string -> int64 -> int64 -> unit
(** Record a span from raw monotonic stamps (ns). *)

val counter : t -> name:string -> (string * float) list -> unit
(** Record a counter sample (Chrome ["C"] event), stamped now. *)

(** {2 Introspection} *)

val length : t -> int
(** Events currently buffered. *)

val dropped : t -> int
(** Events discarded after the buffer hit capacity. *)

val span_count : t -> name:string -> int
val counter_count : t -> name:string -> int

val span_seconds : t -> name:string -> float
(** Total recorded duration of all spans with this name. *)

val tids : t -> int list
(** Distinct domain ids seen, ascending. *)

val lane_busy_s : t -> (int * float) list
(** Per-pool-lane total busy seconds (spans recorded with [?lane]),
    ascending by lane. *)

(** {2 Chrome trace-event export} *)

val write_chrome : t -> out_channel -> unit
(** The whole buffer as one Chrome trace-event JSON object
    ([{"traceEvents": [...], ...}]): "X" complete events for spans, "C"
    counter events for series, "M" metadata naming the process and one
    thread per domain. One event per line, so line-oriented tooling
    (scripts/lint_chrome_trace.sh) can validate it. *)

val chrome_string : t -> string
