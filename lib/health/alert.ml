type severity = Info | Warn | Page

let severity_to_string = function
  | Info -> "info"
  | Warn -> "warn"
  | Page -> "page"

let pp_severity fmt s = Format.pp_print_string fmt (severity_to_string s)

type cmp = Gt | Ge | Lt | Le | Eq

type value =
  | Const of float
  | Duration_s
  | Burn_rate
  | Overrun_fraction
  | Violations
  | Residual
  | Metric of string
  | Delta of string

type pred =
  | Cmp of cmp * value * value
  | State_at_least of Slo.state
  | Degraded_input
  | Stale_input
  | Skipped_cycle
  | All of pred list
  | Any of pred list
  | Not of pred
  | For_last of int * pred

type rule = {
  r_name : string;
  r_severity : severity;
  r_help : string;
  r_pred : pred;
}

let rule ?(help = "") ~name severity pred =
  { r_name = name; r_severity = severity; r_help = help; r_pred = pred }

type ctx = {
  cx_cycle : int;
  cx_time_s : int;
  cx_duration_s : float;
  cx_state : Slo.state;
  cx_burn_rate : float;
  cx_overrun_fraction : float;
  cx_violations : int;
  cx_residual : int;
  cx_degraded : bool;
  cx_stale : bool;
  cx_skipped : bool;
  cx_metric : string -> float option;
}

type firing = {
  f_rule : string;
  f_severity : severity;
  f_cycle : int;
  f_time_s : int;
  f_detail : string;
}

(* Whether a predicate reads the wall clock (duration / burn / overrun
   fraction). Firing details for such rules may cite clock-derived
   numbers; details for purely input-driven rules must not, so that the
   alert journal of a seeded run is byte-identical across repeats. *)
let rec mentions_clock = function
  | Cmp (_, a, b) ->
      let value_clock = function
        | Duration_s | Burn_rate | Overrun_fraction -> true
        | Const _ | Violations | Residual | Metric _ | Delta _ -> false
      in
      value_clock a || value_clock b
  | State_at_least _ -> false
  | Degraded_input | Stale_input | Skipped_cycle -> false
  | All ps | Any ps -> List.exists mentions_clock ps
  | Not p | For_last (_, p) -> mentions_clock p

(* Compile a predicate to a closure over per-node mutable state (Delta
   last-values, For_last streaks). Boolean connectives evaluate all
   children — no short-circuiting — so every Delta/For_last node advances
   exactly once per cycle regardless of sibling outcomes. *)
let compile_pred pred =
  let rec value = function
    | Const f -> fun _ -> f
    | Duration_s -> fun cx -> cx.cx_duration_s
    | Burn_rate -> fun cx -> cx.cx_burn_rate
    | Overrun_fraction -> fun cx -> cx.cx_overrun_fraction
    | Violations -> fun cx -> float_of_int cx.cx_violations
    | Residual -> fun cx -> float_of_int cx.cx_residual
    | Metric name ->
        fun cx -> ( match cx.cx_metric name with Some v -> v | None -> 0.0)
    | Delta name ->
        let last = ref 0.0 in
        fun cx ->
          let cur =
            match cx.cx_metric name with Some v -> v | None -> 0.0
          in
          let d = cur -. !last in
          last := cur;
          if d > 0.0 then d else 0.0
  and pred_c = function
    | Cmp (op, a, b) ->
        let va = value a and vb = value b in
        let f =
          match op with
          | Gt -> ( > )
          | Ge -> ( >= )
          | Lt -> ( < )
          | Le -> ( <= )
          | Eq -> ( = )
        in
        fun cx -> f (va cx) (vb cx)
    | State_at_least s ->
        fun cx -> Slo.state_rank cx.cx_state >= Slo.state_rank s
    | Degraded_input -> fun cx -> cx.cx_degraded
    | Stale_input -> fun cx -> cx.cx_stale
    | Skipped_cycle -> fun cx -> cx.cx_skipped
    | All ps ->
        let cs = List.map pred_c ps in
        fun cx -> List.fold_left (fun acc c -> c cx && acc) true cs
    | Any ps ->
        let cs = List.map pred_c ps in
        fun cx -> List.fold_left (fun acc c -> c cx || acc) false cs
    | Not p ->
        let c = pred_c p in
        fun cx -> not (c cx)
    | For_last (n, p) ->
        let c = pred_c p in
        let streak = ref 0 in
        fun cx ->
          streak := (if c cx then !streak + 1 else 0);
          !streak >= n
  in
  pred_c pred

type compiled = {
  cr_rule : rule;
  cr_eval : ctx -> bool;
  cr_clock : bool;
  mutable cr_active : bool;
  mutable cr_fired : int;
}

type t = { rules : compiled list; mutable firings_rev : firing list }

let create rules =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun r ->
      if Hashtbl.mem seen r.r_name then
        invalid_arg
          (Printf.sprintf "Ef_health.Alert: duplicate rule name %s" r.r_name);
      Hashtbl.add seen r.r_name ())
    rules;
  {
    rules =
      List.map
        (fun r ->
          {
            cr_rule = r;
            cr_eval = compile_pred r.r_pred;
            cr_clock = mentions_clock r.r_pred;
            cr_active = false;
            cr_fired = 0;
          })
        rules;
    firings_rev = [];
  }

let detail ~clock cx =
  if clock then
    Printf.sprintf
      "state=%s dur=%.6fs burn=%.3f overrun_frac=%.4f violations=%d residual=%d"
      (Slo.state_to_string cx.cx_state)
      cx.cx_duration_s cx.cx_burn_rate cx.cx_overrun_fraction cx.cx_violations
      cx.cx_residual
  else
    Printf.sprintf
      "state=%s violations=%d residual=%d degraded=%b stale=%b skipped=%b"
      (Slo.state_to_string cx.cx_state)
      cx.cx_violations cx.cx_residual cx.cx_degraded cx.cx_stale cx.cx_skipped

(* Edge-triggered: a rule fires on the cycle its predicate becomes true
   and stays silent while it remains true; it re-arms when the predicate
   clears. Rules are evaluated in declaration order every cycle (even
   already-active ones) so stateful nodes advance deterministically. *)
let step t cx =
  let fired =
    List.filter_map
      (fun c ->
        let now = c.cr_eval cx in
        let fresh = now && not c.cr_active in
        c.cr_active <- now;
        if fresh then begin
          c.cr_fired <- c.cr_fired + 1;
          Some
            {
              f_rule = c.cr_rule.r_name;
              f_severity = c.cr_rule.r_severity;
              f_cycle = cx.cx_cycle;
              f_time_s = cx.cx_time_s;
              f_detail = detail ~clock:c.cr_clock cx;
            }
        end
        else None)
      t.rules
  in
  t.firings_rev <- List.rev_append fired t.firings_rev;
  fired

let firings t = List.rev t.firings_rev
let rules t = List.map (fun c -> c.cr_rule) t.rules
let fired_counts t = List.map (fun c -> (c.cr_rule, c.cr_fired)) t.rules
let active t = List.filter_map (fun c -> if c.cr_active then Some c.cr_rule else None) t.rules

let firing_to_json f =
  Ef_obs.Json.Obj
    [
      ("rule", Ef_obs.Json.String f.f_rule);
      ("severity", Ef_obs.Json.String (severity_to_string f.f_severity));
      ("cycle", Ef_obs.Json.Int f.f_cycle);
      ("time_s", Ef_obs.Json.Int f.f_time_s);
      ("detail", Ef_obs.Json.String f.f_detail);
    ]

let pp_firing fmt f =
  Format.fprintf fmt "[%s] cycle %d t=%ds %s: %s"
    (severity_to_string f.f_severity)
    f.f_cycle f.f_time_s f.f_rule f.f_detail

let default_rules ?(deadline_s = Slo.default_config.deadline_s) () =
  [
    rule ~name:"cycle_deadline_overrun" Warn
      ~help:"a controller cycle exceeded its wall-time budget"
      (Cmp (Gt, Duration_s, Const deadline_s));
    rule ~name:"slo_burn_elevated" Warn
      ~help:"the rolling window is consuming the full error budget"
      (Cmp (Ge, Burn_rate, Const 1.0));
    rule ~name:"health_degraded" Warn
      ~help:"health state machine left Healthy"
      (State_at_least Slo.Degraded);
    rule ~name:"health_broken" Page
      ~help:"health state machine reached Broken"
      (State_at_least Slo.Broken);
    rule ~name:"guard_violation" Page
      ~help:"the safety guard rejected or clamped controller output"
      (Cmp (Gt, Violations, Const 0.0));
    rule ~name:"stale_inputs" Warn
      ~help:"collector retry/staleness machinery reports unhealthy inputs"
      Stale_input;
    rule ~name:"degraded_cycle" Info
      ~help:"the controller ran its degradation ladder this cycle"
      Degraded_input;
    rule ~name:"cycle_skipped" Info ~help:"a controller cycle was skipped"
      Skipped_cycle;
    rule ~name:"residual_demand" Warn
      ~help:"demand left unplaced for 3 consecutive cycles"
      (For_last (3, Cmp (Gt, Residual, Const 0.0)));
  ]
