(** Cycle-deadline SLO tracking and the Healthy/Degraded/Broken health
    state machine.

    An SLO tracker consumes one {!input} per controller cycle —
    wall-clock duration plus the deterministic impairment signals the
    engine already computes (degraded inputs, skipped cycles, staleness,
    guard violations) — and maintains a rolling deadline-overrun window,
    its burn rate against the configured target, and a health state.

    Everything here is a pure function of the observation sequence: with
    an injected clock the whole trajectory is reproducible, which is what
    makes the alert layer's output byte-stable. *)

type state = Healthy | Degraded | Broken

val state_rank : state -> int
(** [Healthy] 0, [Degraded] 1, [Broken] 2. *)

val state_to_string : state -> string
val pp_state : Format.formatter -> state -> unit

type config = {
  deadline_s : float;  (** per-cycle wall-time budget *)
  target : float;  (** SLO target, e.g. 0.99 = 99% of cycles in budget *)
  window : int;  (** rolling window length, in cycles *)
  degraded_burn : float;  (** burn rate at/above which state >= Degraded *)
  broken_burn : float;  (** burn rate at/above which state = Broken *)
  broken_consecutive : int;
      (** consecutive impaired cycles forcing Broken regardless of burn *)
  recovery_cycles : int;
      (** consecutive clean cycles required to step down one rung *)
}

val default_config : config
(** deadline 1 s (the BENCH_PR7 p99 bar at 1M prefixes), target 0.99,
    window 120 cycles, degraded at burn 1.0, broken at burn 10.0 or 3
    consecutive impaired cycles, recovery after 5 clean cycles. *)

type input = {
  in_duration_s : float;  (** cycle wall time *)
  in_degraded : bool;  (** controller ran its degradation ladder *)
  in_skipped : bool;  (** cycle skipped outright (counts as overrun) *)
  in_stale : bool;  (** collector retry/staleness unhealthy *)
  in_violations : int;  (** guard violations this cycle *)
  in_residual : int;  (** unplaced demand entries *)
}

type t

val create : ?config:config -> unit -> t
(** Raises [Invalid_argument] if [window <= 0] or [target] outside
    (0, 1). *)

val observe : t -> input -> state
(** Feed one cycle; returns the possibly-updated state. Escalation is
    immediate, recovery one rung per [recovery_cycles] clean streak. *)

val state : t -> state
val config : t -> config
val cycles : t -> int
val overruns_total : t -> int
val impaired_total : t -> int

val overrun_fraction : t -> float
(** Deadline overruns / cycles in the rolling window (0 when empty). *)

val burn_rate : t -> float
(** [overrun_fraction / (1 - target)]: 1.0 = consuming exactly the error
    budget. *)

val worst_duration_s : t -> float
