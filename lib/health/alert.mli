(** Deterministic alerting: a small rule DSL evaluated once per cycle.

    A {!rule} is a named, severity-tagged {!pred} over the cycle context
    (SLO state, burn rate, impairment flags, registry metrics). Firings
    are edge-triggered — a rule fires when its predicate becomes true,
    stays silent while it holds, and re-arms when it clears — and are
    pure functions of the observation sequence: with seeded scenarios and
    an injected clock, the firing journal is byte-identical across runs.
    Rules whose predicates never read the wall clock get details built
    only from deterministic inputs, so their firings are byte-stable even
    under the real clock. *)

type severity = Info | Warn | Page

val severity_to_string : severity -> string
val pp_severity : Format.formatter -> severity -> unit

type cmp = Gt | Ge | Lt | Le | Eq

(** Numeric operands. [Metric name] reads the current value of a registry
    metric through the context (0 when absent; histograms read as their
    mean). [Delta name] is the increase of that metric since the previous
    cycle (clamped at 0 — counter semantics). *)
type value =
  | Const of float
  | Duration_s
  | Burn_rate
  | Overrun_fraction
  | Violations
  | Residual
  | Metric of string
  | Delta of string

(** Predicates. Connectives evaluate all children every cycle (no
    short-circuiting) so stateful nodes ([Delta], [For_last]) advance
    deterministically. [For_last (n, p)] holds once [p] has held for the
    last [n] consecutive cycles. *)
type pred =
  | Cmp of cmp * value * value
  | State_at_least of Slo.state
  | Degraded_input
  | Stale_input
  | Skipped_cycle
  | All of pred list
  | Any of pred list
  | Not of pred
  | For_last of int * pred

type rule = {
  r_name : string;
  r_severity : severity;
  r_help : string;
  r_pred : pred;
}

val rule : ?help:string -> name:string -> severity -> pred -> rule

val default_rules : ?deadline_s:float -> unit -> rule list
(** The shipped ruleset: deadline overrun and SLO burn (Warn), health
    state Degraded (Warn) / Broken (Page), guard violations (Page), stale
    inputs (Warn), degraded / skipped cycles (Info), and residual demand
    persisting 3 cycles (Warn). *)

(** The per-cycle evaluation context, assembled by [Tracker]. *)
type ctx = {
  cx_cycle : int;  (** 1-based cycle index *)
  cx_time_s : int;  (** simulation time *)
  cx_duration_s : float;
  cx_state : Slo.state;
  cx_burn_rate : float;
  cx_overrun_fraction : float;
  cx_violations : int;
  cx_residual : int;
  cx_degraded : bool;
  cx_stale : bool;
  cx_skipped : bool;
  cx_metric : string -> float option;
}

type firing = {
  f_rule : string;
  f_severity : severity;
  f_cycle : int;
  f_time_s : int;
  f_detail : string;
}

type t

val create : rule list -> t
(** Raises [Invalid_argument] on duplicate rule names. *)

val step : t -> ctx -> firing list
(** Evaluate every rule against this cycle; returns the fresh firings, in
    rule declaration order. *)

val firings : t -> firing list
(** All firings so far, in order. *)

val rules : t -> rule list
val fired_counts : t -> (rule * int) list
val active : t -> rule list
(** Rules whose predicate held on the most recent cycle. *)

val firing_to_json : firing -> Ef_obs.Json.t
(** Deterministic: carries rule, severity, cycle, sim time and detail —
    never a wall-clock stamp. *)

val pp_firing : Format.formatter -> firing -> unit
