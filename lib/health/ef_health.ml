(** Ef_health: the controller watching itself.

    Three pillars on top of {!Ef_obs}: {!Profiler} (span/GC profiling
    with Chrome trace-event export), {!Slo} (cycle-deadline budgets,
    rolling-window burn rate, the Healthy/Degraded/Broken state machine)
    and {!Alert} (a deterministic, edge-triggered rule DSL). {!Tracker}
    composes them behind one per-cycle observation call; engines carry a
    tracker in their config ({!Tracker.noop} by default) so health
    tracking costs nothing unless switched on. See [DESIGN.md] §14. *)

module Profiler = Profiler
module Slo = Slo
module Alert = Alert
module Tracker = Tracker
