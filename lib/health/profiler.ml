module Clock = Ef_obs.Clock
module Json = Ef_obs.Json

type event =
  | Span of {
      sp_name : string;
      sp_tid : int;
      sp_lane : int option;
      sp_t0 : int64;
      sp_t1 : int64;
    }
  | Count of {
      co_name : string;
      co_tid : int;
      co_t : int64;
      co_series : (string * float) list;
    }

type t = {
  prof_enabled : bool;
  capacity : int;
  lock : Mutex.t;
  mutable events : event array;
  mutable len : int;
  mutable n_dropped : int;
  origin_ns : int64;
}

let dummy = Count { co_name = ""; co_tid = 0; co_t = 0L; co_series = [] }

let noop =
  {
    prof_enabled = false;
    capacity = 0;
    lock = Mutex.create ();
    events = [||];
    len = 0;
    n_dropped = 0;
    origin_ns = 0L;
  }

let create ?(capacity = 1_000_000) () =
  {
    prof_enabled = true;
    capacity;
    lock = Mutex.create ();
    events = Array.make 1024 dummy;
    len = 0;
    n_dropped = 0;
    origin_ns = Clock.now_ns ();
  }

let enabled t = t.prof_enabled

let push t ev =
  if t.prof_enabled then begin
    Mutex.lock t.lock;
    if t.len >= t.capacity then t.n_dropped <- t.n_dropped + 1
    else begin
      if t.len = Array.length t.events then begin
        let bigger = Array.make (min t.capacity (2 * t.len)) dummy in
        Array.blit t.events 0 bigger 0 t.len;
        t.events <- bigger
      end;
      t.events.(t.len) <- ev;
      t.len <- t.len + 1
    end;
    Mutex.unlock t.lock
  end

let tid () = (Domain.self () :> int)

let record_span ?lane t ~name t0 t1 =
  push t (Span { sp_name = name; sp_tid = tid (); sp_lane = lane; sp_t0 = t0; sp_t1 = t1 })

let span ?lane t ~name f =
  if not t.prof_enabled then f ()
  else begin
    let t0 = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () -> record_span ?lane t ~name t0 (Clock.now_ns ()))
      f
  end

let counter t ~name series =
  push t
    (Count { co_name = name; co_tid = tid (); co_t = Clock.now_ns (); co_series = series })

let hook t : Ef_obs.Registry.profile_hook =
  {
    on_span = (fun name t0 t1 -> record_span t ~name t0 t1);
    on_counter = (fun name series -> counter t ~name series);
  }

let attach t reg =
  if t.prof_enabled then Ef_obs.Registry.set_profile_hook reg (Some (hook t))

let length t = t.len
let dropped t = t.n_dropped

let snapshot t =
  Mutex.lock t.lock;
  let evs = Array.sub t.events 0 t.len in
  Mutex.unlock t.lock;
  evs

let span_count t ~name =
  Array.fold_left
    (fun acc -> function
      | Span s when s.sp_name = name -> acc + 1
      | _ -> acc)
    0 (snapshot t)

let counter_count t ~name =
  Array.fold_left
    (fun acc -> function
      | Count c when c.co_name = name -> acc + 1
      | _ -> acc)
    0 (snapshot t)

let span_seconds t ~name =
  Array.fold_left
    (fun acc -> function
      | Span s when s.sp_name = name ->
          acc +. (Int64.to_float (Int64.sub s.sp_t1 s.sp_t0) /. 1e9)
      | _ -> acc)
    0.0 (snapshot t)

let fold_assoc add key value acc =
  match List.assoc_opt key acc with
  | None -> (key, value) :: acc
  | Some prior -> (key, add prior value) :: List.remove_assoc key acc

let tids t =
  let ids =
    Array.fold_left
      (fun acc ev ->
        let id = match ev with Span s -> s.sp_tid | Count c -> c.co_tid in
        if List.mem id acc then acc else id :: acc)
      [] (snapshot t)
  in
  List.sort compare ids

let lane_busy_s t =
  let acc =
    Array.fold_left
      (fun acc -> function
        | Span { sp_lane = Some lane; sp_t0; sp_t1; _ } ->
            fold_assoc ( +. ) lane
              (Int64.to_float (Int64.sub sp_t1 sp_t0) /. 1e9)
              acc
        | _ -> acc)
      [] (snapshot t)
  in
  List.sort (fun (a, _) (b, _) -> compare a b) acc

(* Chrome trace-event ("catapult") export: one complete ("X") event per
   span, one counter ("C") event per GC/series sample, plus process and
   thread metadata. Written one event per line so a line-oriented linter
   can check it without a JSON parser; the whole file is still one valid
   JSON object loadable by chrome://tracing or Perfetto. *)

let us_of ~origin ns = Int64.to_float (Int64.sub ns origin) /. 1e3

let event_json ~origin ev =
  match ev with
  | Span s ->
      let args =
        match s.sp_lane with
        | None -> []
        | Some lane -> [ ("args", Json.Obj [ ("lane", Json.Int lane) ]) ]
      in
      Json.Obj
        ([
           ("name", Json.String s.sp_name);
           ("cat", Json.String "span");
           ("ph", Json.String "X");
           ("ts", Json.Float (us_of ~origin s.sp_t0));
           ("dur", Json.Float (us_of ~origin:s.sp_t0 s.sp_t1));
           ("pid", Json.Int 1);
           ("tid", Json.Int s.sp_tid);
         ]
        @ args)
  | Count c ->
      Json.Obj
        [
          ("name", Json.String c.co_name);
          ("cat", Json.String "counter");
          ("ph", Json.String "C");
          ("ts", Json.Float (us_of ~origin c.co_t));
          ("pid", Json.Int 1);
          ("tid", Json.Int c.co_tid);
          ( "args",
            Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) c.co_series) );
        ]

let metadata_json ~name ~tid args_name =
  Json.Obj
    [
      ("name", Json.String name);
      ("ph", Json.String "M");
      ("pid", Json.Int 1);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.String args_name) ]);
    ]

let emit_chrome t put =
  let origin = t.origin_ns in
  let first = ref true in
  let line json =
    if !first then first := false else put ",";
    put (Json.to_string json);
    put "\n"
  in
  put "{\"traceEvents\":[\n";
  line (metadata_json ~name:"process_name" ~tid:0 "edge-fabric");
  List.iter
    (fun id ->
      line
        (metadata_json ~name:"thread_name" ~tid:id
           (Printf.sprintf "domain-%d" id)))
    (tids t);
  Array.iter (fun ev -> line (event_json ~origin ev)) (snapshot t);
  put
    (Printf.sprintf
       "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":%d}}\n"
       t.n_dropped)

let write_chrome t oc = emit_chrome t (output_string oc)

let chrome_string t =
  let buf = Buffer.create 4096 in
  emit_chrome t (Buffer.add_string buf);
  Buffer.contents buf
