type state = Healthy | Degraded | Broken

let state_rank = function Healthy -> 0 | Degraded -> 1 | Broken -> 2

let state_to_string = function
  | Healthy -> "healthy"
  | Degraded -> "degraded"
  | Broken -> "broken"

let pp_state fmt s = Format.pp_print_string fmt (state_to_string s)

type config = {
  deadline_s : float;
  target : float;
  window : int;
  degraded_burn : float;
  broken_burn : float;
  broken_consecutive : int;
  recovery_cycles : int;
}

let default_config =
  {
    deadline_s = 1.0;
    target = 0.99;
    window = 120;
    degraded_burn = 1.0;
    broken_burn = 10.0;
    broken_consecutive = 3;
    recovery_cycles = 5;
  }

type input = {
  in_duration_s : float;
  in_degraded : bool;
  in_skipped : bool;
  in_stale : bool;
  in_violations : int;
  in_residual : int;
}

type t = {
  cfg : config;
  ring : bool array;
  mutable ring_idx : int;
  mutable ring_fill : int;
  mutable window_overruns : int;
  mutable cycles : int;
  mutable overruns_total : int;
  mutable impaired_total : int;
  mutable consec_impaired : int;
  mutable consec_clean : int;
  mutable st : state;
  mutable worst_s : float;
}

let create ?(config = default_config) () =
  if config.window <= 0 then invalid_arg "Ef_health.Slo: window must be > 0";
  if config.target >= 1.0 || config.target <= 0.0 then
    invalid_arg "Ef_health.Slo: target must be in (0, 1)";
  {
    cfg = config;
    ring = Array.make config.window false;
    ring_idx = 0;
    ring_fill = 0;
    window_overruns = 0;
    cycles = 0;
    overruns_total = 0;
    impaired_total = 0;
    consec_impaired = 0;
    consec_clean = 0;
    st = Healthy;
    worst_s = 0.0;
  }

let config t = t.cfg
let state t = t.st
let cycles t = t.cycles
let overruns_total t = t.overruns_total
let impaired_total t = t.impaired_total
let worst_duration_s t = t.worst_s

let overrun_fraction t =
  if t.ring_fill = 0 then 0.0
  else float_of_int t.window_overruns /. float_of_int t.ring_fill

(* burn rate: fraction of the error budget (1 - target) the rolling
   window is consuming. 1.0 = burning exactly the budget; > 1.0 = the
   SLO is being missed if this keeps up. *)
let burn_rate t = overrun_fraction t /. (1.0 -. t.cfg.target)

let push_ring t overrun =
  if t.ring_fill = t.cfg.window then begin
    if t.ring.(t.ring_idx) then t.window_overruns <- t.window_overruns - 1
  end
  else t.ring_fill <- t.ring_fill + 1;
  t.ring.(t.ring_idx) <- overrun;
  if overrun then t.window_overruns <- t.window_overruns + 1;
  t.ring_idx <- (t.ring_idx + 1) mod t.cfg.window

(* One observation per controller cycle. The state machine escalates
   immediately (a bad cycle can take Healthy straight to Broken) but
   recovers one rung at a time, and only after [recovery_cycles]
   consecutive clean cycles — flapping inputs therefore pin the state
   high rather than oscillating the alerts below it. *)
let observe t input =
  t.cycles <- t.cycles + 1;
  if input.in_duration_s > t.worst_s then t.worst_s <- input.in_duration_s;
  let overrun = input.in_skipped || input.in_duration_s > t.cfg.deadline_s in
  let impaired =
    overrun || input.in_degraded || input.in_stale || input.in_violations > 0
  in
  push_ring t overrun;
  if overrun then t.overruns_total <- t.overruns_total + 1;
  if impaired then begin
    t.impaired_total <- t.impaired_total + 1;
    t.consec_impaired <- t.consec_impaired + 1
  end
  else t.consec_impaired <- 0;
  let burn = burn_rate t in
  let target_state =
    if
      burn >= t.cfg.broken_burn
      || t.consec_impaired >= t.cfg.broken_consecutive
    then Broken
    else if burn >= t.cfg.degraded_burn || impaired then Degraded
    else Healthy
  in
  if state_rank target_state > state_rank t.st then begin
    t.st <- target_state;
    t.consec_clean <- 0
  end
  else if impaired then t.consec_clean <- 0
  else begin
    t.consec_clean <- t.consec_clean + 1;
    if
      t.consec_clean >= t.cfg.recovery_cycles
      && state_rank t.st > state_rank target_state
    then begin
      t.st <- (match t.st with Broken -> Degraded | _ -> Healthy);
      t.consec_clean <- 0
    end
  end;
  t.st
