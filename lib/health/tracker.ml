module Obs = Ef_obs.Registry
module Json = Ef_obs.Json
module Prom = Ef_obs.Prom

type input = {
  time_s : int;
  duration_s : float;
  degraded : bool;
  skipped : bool;
  stale : bool;
  violations : int;
  residual : int;
}

type active = {
  slo : Slo.t;
  alerts : Alert.t;
  profiler : Profiler.t;
  reg : Obs.t;
  g_state : Obs.Gauge.t;
  c_fired : Obs.Counter.t;
  c_overruns : Obs.Counter.t;
  c_transitions : Obs.Counter.t;
  mutable cycle : int;
  mutable transitions_rev : (int * int * Slo.state * Slo.state) list;
}

type t = Noop | Active of active

let noop = Noop

let create ?(slo = Slo.default_config) ?rules ?(profiler = Profiler.noop)
    ?obs () =
  let reg = match obs with Some r -> r | None -> Obs.create () in
  let rules =
    match rules with
    | Some rs -> rs
    | None -> Alert.default_rules ~deadline_s:slo.Slo.deadline_s ()
  in
  Active
    {
      slo = Slo.create ~config:slo ();
      alerts = Alert.create rules;
      profiler;
      reg;
      (* ".rank" so the sanitized prom name cannot collide with the
         labeled [health_state] family from {!prom_families} *)
      g_state = Obs.gauge reg "health.state.rank";
      c_fired = Obs.counter reg "health.alerts.fired";
      c_overruns = Obs.counter reg "health.cycle.overruns";
      c_transitions = Obs.counter reg "health.state.transitions";
      cycle = 0;
      transitions_rev = [];
    }

let enabled = function Noop -> false | Active _ -> true
let state = function Noop -> Slo.Healthy | Active a -> Slo.state a.slo
let profiler = function Noop -> Profiler.noop | Active a -> a.profiler
let firings = function Noop -> [] | Active a -> Alert.firings a.alerts
let cycles = function Noop -> 0 | Active a -> a.cycle

let transitions = function
  | Noop -> []
  | Active a -> List.rev a.transitions_rev

let slo_exn = function
  | Noop -> invalid_arg "Ef_health.Tracker.slo: noop tracker"
  | Active a -> a.slo

let alerts_exn = function
  | Noop -> invalid_arg "Ef_health.Tracker.alerts: noop tracker"
  | Active a -> a.alerts

let metric_value reg name =
  match Obs.find reg name with
  | Some (Obs.Counter_m c) -> Some (Obs.Counter.value c)
  | Some (Obs.Gauge_m g) -> Some (Obs.Gauge.value g)
  | Some (Obs.Histogram_m h) | Some (Obs.Span_m h) ->
      Some (Obs.Histogram.mean h)
  | None -> None

let observe_cycle t input =
  match t with
  | Noop -> []
  | Active a ->
      a.cycle <- a.cycle + 1;
      let prev = Slo.state a.slo in
      let overruns_before = Slo.overruns_total a.slo in
      let st =
        Slo.observe a.slo
          {
            Slo.in_duration_s = input.duration_s;
            in_degraded = input.degraded;
            in_skipped = input.skipped;
            in_stale = input.stale;
            in_violations = input.violations;
            in_residual = input.residual;
          }
      in
      Obs.Gauge.set a.g_state (float_of_int (Slo.state_rank st));
      let new_overruns = Slo.overruns_total a.slo - overruns_before in
      if new_overruns > 0 then
        Obs.Counter.add a.c_overruns (float_of_int new_overruns);
      if st <> prev then begin
        Obs.Counter.inc a.c_transitions;
        a.transitions_rev <-
          (a.cycle, input.time_s, prev, st) :: a.transitions_rev;
        if Obs.has_sinks a.reg then
          Obs.emit a.reg ~name:"health.state"
            [
              ("cycle", Json.Int a.cycle);
              ("time_s", Json.Int input.time_s);
              ("from", Json.String (Slo.state_to_string prev));
              ("to", Json.String (Slo.state_to_string st));
            ]
      end;
      let cx =
        {
          Alert.cx_cycle = a.cycle;
          cx_time_s = input.time_s;
          cx_duration_s = input.duration_s;
          cx_state = st;
          cx_burn_rate = Slo.burn_rate a.slo;
          cx_overrun_fraction = Slo.overrun_fraction a.slo;
          cx_violations = input.violations;
          cx_residual = input.residual;
          cx_degraded = input.degraded;
          cx_stale = input.stale;
          cx_skipped = input.skipped;
          cx_metric = metric_value a.reg;
        }
      in
      let fired = Alert.step a.alerts cx in
      List.iter
        (fun f ->
          Obs.Counter.inc a.c_fired;
          if Obs.has_sinks a.reg then
            Obs.emit a.reg ~name:"health.alert"
              [
                ("rule", Json.String f.Alert.f_rule);
                ( "severity",
                  Json.String (Alert.severity_to_string f.Alert.f_severity) );
                ("cycle", Json.Int f.Alert.f_cycle);
                ("time_s", Json.Int f.Alert.f_time_s);
                ("detail", Json.String f.Alert.f_detail);
              ])
        fired;
      fired

let prom_families t =
  match t with
  | Noop -> []
  | Active a ->
      let st = Slo.state a.slo in
      let state_sample s =
        Prom.sample
          ~labels:[ ("state", Slo.state_to_string s) ]
          (if st = s then 1.0 else 0.0)
      in
      [
        {
          Prom.fam_name = "health_state";
          fam_help = "health state machine position (1 on the active state)";
          fam_kind = Prom.Gauge;
          fam_samples =
            [
              state_sample Slo.Healthy;
              state_sample Slo.Degraded;
              state_sample Slo.Broken;
            ];
        };
        {
          Prom.fam_name = "alerts_fired";
          fam_help = "alert rule firings (edge-triggered)";
          fam_kind = Prom.Counter;
          fam_samples =
            List.map
              (fun (r, n) ->
                Prom.sample ~suffix:"_total"
                  ~labels:
                    [
                      ("rule", r.Alert.r_name);
                      ( "severity",
                        Alert.severity_to_string r.Alert.r_severity );
                    ]
                  (float_of_int n))
              (Alert.fired_counts a.alerts);
        };
        {
          Prom.fam_name = "health_slo_burn_rate";
          fam_help = "error-budget burn rate over the rolling window";
          fam_kind = Prom.Gauge;
          fam_samples = [ Prom.sample (Slo.burn_rate a.slo) ];
        };
      ]

let summary_json t =
  match t with
  | Noop -> Json.Obj [ ("enabled", Json.Bool false) ]
  | Active a ->
      Json.Obj
        [
          ("enabled", Json.Bool true);
          ("state", Json.String (Slo.state_to_string (Slo.state a.slo)));
          ("cycles", Json.Int (Slo.cycles a.slo));
          ("overruns", Json.Int (Slo.overruns_total a.slo));
          ("impaired", Json.Int (Slo.impaired_total a.slo));
          ("burn_rate", Json.Float (Slo.burn_rate a.slo));
          ("overrun_fraction", Json.Float (Slo.overrun_fraction a.slo));
          ( "transitions",
            Json.List
              (List.map
                 (fun (cycle, time_s, from_st, to_st) ->
                   Json.Obj
                     [
                       ("cycle", Json.Int cycle);
                       ("time_s", Json.Int time_s);
                       ("from", Json.String (Slo.state_to_string from_st));
                       ("to", Json.String (Slo.state_to_string to_st));
                     ])
                 (transitions t)) );
          ( "alerts",
            Json.List (List.map Alert.firing_to_json (firings t)) );
        ]

let pp_summary fmt t =
  match t with
  | Noop -> Format.fprintf fmt "health: tracking disabled@."
  | Active a ->
      Format.fprintf fmt "health: %s  cycles=%d overruns=%d burn=%.3f alerts=%d@."
        (Slo.state_to_string (Slo.state a.slo))
        (Slo.cycles a.slo) (Slo.overruns_total a.slo) (Slo.burn_rate a.slo)
        (List.length (Alert.firings a.alerts));
      (match transitions t with
      | [] -> ()
      | ts ->
          Format.fprintf fmt "state transitions:@.";
          List.iter
            (fun (cycle, time_s, from_st, to_st) ->
              Format.fprintf fmt "  cycle %-5d t=%-6ds %s -> %s@." cycle
                time_s
                (Slo.state_to_string from_st)
                (Slo.state_to_string to_st))
            ts);
      match firings t with
      | [] -> ()
      | fs ->
          Format.fprintf fmt "alerts:@.";
          List.iter (fun f -> Format.fprintf fmt "  %a@." Alert.pp_firing f) fs
