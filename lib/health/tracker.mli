(** The Ef_health front door: SLO tracking + alerting + profiling,
    composed behind one per-cycle call.

    A tracker is either {!noop} — the shipped default, free to thread
    through engine configs — or active, in which case each
    {!observe_cycle} feeds the {!Slo} state machine, evaluates the
    {!Alert} rules against the cycle context, mirrors health into the
    attached registry ([health.state.rank] gauge, [health.alerts.fired] /
    [health.cycle.overruns] / [health.state.transitions] counters), and
    emits [health.state] / [health.alert] journal events when the
    registry has sinks. *)

type input = {
  time_s : int;  (** simulation time of the cycle *)
  duration_s : float;  (** cycle wall time (injected-clock in tests) *)
  degraded : bool;
  skipped : bool;
  stale : bool;
  violations : int;
  residual : int;
}

type t

val noop : t
(** Disabled tracker: {!observe_cycle} returns [[]], costs one match. *)

val create :
  ?slo:Slo.config ->
  ?rules:Alert.rule list ->
  ?profiler:Profiler.t ->
  ?obs:Ef_obs.Registry.t ->
  unit ->
  t
(** An active tracker. [rules] defaults to
    [Alert.default_rules ~deadline_s:slo.deadline_s]; [obs] defaults to a
    private registry (pass the run's registry so health metrics land next
    to everything else and [Metric]/[Delta] rule operands can see it);
    [profiler] defaults to {!Profiler.noop}. *)

val enabled : t -> bool
val observe_cycle : t -> input -> Alert.firing list
(** Feed one controller cycle; returns the alerts that fired on it. *)

val state : t -> Slo.state
(** [Healthy] for {!noop}. *)

val cycles : t -> int
val firings : t -> Alert.firing list
val transitions : t -> (int * int * Slo.state * Slo.state) list
(** [(cycle, time_s, from, to)] state changes, in order. *)

val profiler : t -> Profiler.t

val slo_exn : t -> Slo.t
val alerts_exn : t -> Alert.t
(** Raise [Invalid_argument] on {!noop}. *)

val prom_families : t -> Ef_obs.Prom.family list
(** [health_state] (gauge, one sample per state, 1 on the active one),
    [alerts_fired] (counter, [_total] samples labeled rule/severity, all
    rules present even at 0) and [health_slo_burn_rate] (gauge). Empty
    for {!noop}. *)

val summary_json : t -> Ef_obs.Json.t
val pp_summary : Format.formatter -> t -> unit
