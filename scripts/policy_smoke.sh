#!/usr/bin/env bash
# policy-smoke: every shipped policy JSON must parse, validate and
# compile to a route-map, and running a scenario under the file-loaded
# program (efctl run --policy FILE) must produce byte-identical engine
# output to the scenario's own in-tree declaration of the same program —
# codec → compiler → engine is one path, however the program arrives.
set -euo pipefail
cd "$(dirname "$0")/.."

EFCTL="dune exec bin/efctl.exe --"
shopt -s nullglob
files=(examples/policies/*.json)
if [ ${#files[@]} -eq 0 ]; then
  echo "policy-smoke: no policy files under examples/policies/" >&2
  exit 1
fi

for f in "${files[@]}"; do
  echo "== compile $f"
  $EFCTL policy "$f" -s tiny --compile > /dev/null
done

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

run_diff() {
  scenario=$1
  file=$2
  echo "== $scenario vs --policy $file"
  $EFCTL run -s "$scenario" --hours 2 --cycle 120 > "$tmpdir/$scenario-base.txt"
  $EFCTL run -s "$scenario" --hours 2 --cycle 120 --policy "$file" \
    > "$tmpdir/$scenario-file.txt"
  # the --policy run prints one extra header line naming the program
  grep -v '^policy: ' "$tmpdir/$scenario-file.txt" > "$tmpdir/$scenario-file-stripped.txt"
  diff "$tmpdir/$scenario-file-stripped.txt" "$tmpdir/$scenario-base.txt"
  test -s "$tmpdir/$scenario-base.txt"
}

run_diff remote-ixp examples/policies/remote-peering.json
run_diff community-led examples/policies/community-steering.json

echo "policy-smoke OK"
