#!/usr/bin/env bash
# Minimal Chrome trace-event (catapult) JSON validator — bash + awk only,
# no external dependencies, so CI can lint `efctl run --profile-out` and
# `efctl fleet --profile-out` output anywhere.
#
# The exporter writes JSON Object Format, one event per line:
#
#   {"traceEvents":[
#   {"name":...,"ph":"M",...}
#   ,{"name":...,"ph":"X",...}
#   ],"displayTimeUnit":"ms","otherData":{"dropped_events":N}}
#
# Checks:
#   - header/footer lines are exactly the expected envelope;
#   - every event line is a single {...} object (optionally ,-prefixed)
#     with "name", "ph" and "pid" fields;
#   - every phase is one chrome://tracing understands: M (metadata),
#     X (complete span) or C (counter);
#   - at least one X span and at least one C counter event are present —
#     a trace with neither profiled no work and is a regression;
#   - the footer reports the dropped-event count as a number.
#
# Usage: lint_chrome_trace.sh FILE
set -euo pipefail

file="${1:?usage: lint_chrome_trace.sh FILE}"

fail() { echo "lint_chrome_trace: $file: $*" >&2; exit 1; }

[ -s "$file" ] || fail "empty or missing"
[ "$(head -n 1 "$file")" = '{"traceEvents":[' ] || fail "bad header line"
tail -n 1 "$file" | grep -Eq \
  '^\],"displayTimeUnit":"ms","otherData":\{"dropped_events":[0-9]+\}\}$' \
  || fail "bad footer line"

awk '
function fail(msg) {
  printf "lint_chrome_trace: %s:%d: %s: %s\n", FILENAME, NR, msg, $0 > "/dev/stderr"
  bad = 1
}
NR == 1 { next }                # header, checked above
/^\],/ { seen_footer = 1; next }
seen_footer { fail("content after footer"); next }
{
  line = $0
  sub(/^,/, "", line)
  if (line !~ /^\{.*\}$/) { fail("event line is not a JSON object"); next }
  if (line !~ /"name":"/) { fail("event missing \"name\""); next }
  if (line !~ /"pid":[0-9]+/) { fail("event missing numeric \"pid\""); next }
  if (match(line, /"ph":"[A-Za-z]"/) == 0) { fail("event missing \"ph\""); next }
  ph = substr(line, RSTART + 6, 1)
  if (ph !~ /^[MXC]$/) { fail("unexpected phase " ph); next }
  phases[ph]++
  if (ph == "X" && line !~ /"dur":[0-9]/) { fail("X event missing \"dur\""); next }
  if (ph != "M" && line !~ /"ts":[0-9]/) { fail("event missing \"ts\""); next }
  events++
}
END {
  if (!seen_footer) { print "lint_chrome_trace: missing footer" > "/dev/stderr"; bad = 1 }
  if (phases["X"] == 0) { print "lint_chrome_trace: no X (span) events" > "/dev/stderr"; bad = 1 }
  if (phases["C"] == 0) { print "lint_chrome_trace: no C (counter) events" > "/dev/stderr"; bad = 1 }
  printf "lint_chrome_trace: %d events (M=%d X=%d C=%d)\n", \
    events, phases["M"], phases["X"], phases["C"]
  exit bad
}
' "$file"

echo "lint_chrome_trace: $file: OK"
