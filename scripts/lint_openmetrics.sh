#!/usr/bin/env bash
# Minimal OpenMetrics text-format validator — bash + awk only, no external
# dependencies, so CI can lint `efctl run --prom-out` output anywhere.
#
# Checks:
#   - file is non-empty and ends with the mandatory `# EOF` marker;
#   - every `# TYPE` declares a known kind, at most once per family;
#   - every sample line parses as  name[{labels}] value [timestamp]  with a
#     legal metric name and a numeric value;
#   - every sample belongs to a declared family (modulo the conventional
#     suffixes _total/_sum/_count/_bucket);
#   - no NaN samples (the exporters clamp empty aggregates to 0, so a NaN
#     here is a regression even though the spec tolerates it).
#
# Usage: lint_openmetrics.sh FILE
set -euo pipefail

file="${1:?usage: lint_openmetrics.sh FILE}"

fail() { echo "lint_openmetrics: $file: $*" >&2; exit 1; }

[ -s "$file" ] || fail "empty or missing"
[ "$(tail -n 1 "$file")" = "# EOF" ] || fail "does not end with '# EOF'"

awk '
function fail(msg) {
  printf "lint_openmetrics: %s:%d: %s: %s\n", FILENAME, NR, msg, $0 > "/dev/stderr"
  bad = 1
}
/^# EOF$/ { seen_eof = NR; next }
/^# TYPE / {
  if (NF != 4) { fail("malformed TYPE line"); next }
  if (types[$3] != "") fail("duplicate TYPE for family " $3)
  if ($4 !~ /^(counter|gauge|summary|histogram|info|stateset|unknown)$/)
    fail("unknown metric kind " $4)
  types[$3] = $4
  next
}
/^# HELP / { if (NF < 3) fail("malformed HELP line"); next }
/^#/ { fail("unexpected comment line"); next }
/^$/ { fail("blank line"); next }
{
  line = $0
  name = line
  sub(/[{ ].*$/, "", name)
  if (name !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*$/) { fail("illegal metric name"); next }
  rest = substr(line, length(name) + 1)
  if (rest ~ /^\{/) {
    if (sub(/^\{[^{]*\} /, "", rest) == 0) { fail("malformed label set"); next }
  } else if (sub(/^ /, "", rest) == 0) { fail("missing value separator"); next }
  n = split(rest, f, " ")
  if (n < 1 || n > 2) { fail("expected value [timestamp]"); next }
  v = f[1]
  if (v == "NaN") { fail("NaN sample (exporters must clamp)"); next }
  if (v !~ /^[+-]?(Inf|[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)$/) {
    fail("unparsable sample value " v); next
  }
  base = name
  sub(/_(total|sum|count|bucket)$/, "", base)
  if (types[name] == "" && types[base] == "")
    fail("sample for undeclared family " name)
  samples++
}
END {
  if (!seen_eof) { print "lint_openmetrics: missing # EOF" > "/dev/stderr"; bad = 1 }
  if (samples == 0) { print "lint_openmetrics: no samples" > "/dev/stderr"; bad = 1 }
  exit bad
}
' "$file"

echo "lint_openmetrics: $file: OK"
