#!/usr/bin/env bash
# Run the controller-scale microbenchmarks (E10/E10b/E10c/E10d) and the
# E11 fleet-parallelism bench, then emit the machine-readable perf
# record BENCH_PR5.json.
#
# Usage: scripts/bench_report.sh [OUTPUT.json] [fast]
#
#   OUTPUT.json   where to write the report (default: BENCH_PR5.json)
#   fast          shorter Bechamel quotas — the CI smoke mode
#
# The report carries the acceptance numbers: the E10d allocator-cycle
# speedup on the stress scenario, and the E11 fleet wall-clock speedup
# at --jobs 4 on the generated 16-PoP fleet (only asserted when the
# machine has >= 4 cores — domains serialize below that). Exits non-zero
# if the benches fail or the emitted file is not well-formed JSON with
# the expected schema.
set -euo pipefail

cd "$(dirname "$0")/.."

out="${1:-BENCH_PR5.json}"
mode="${2:-}"

case "$mode" in
  "" | fast) ;;
  *)
    echo "usage: $0 [OUTPUT.json] [fast]" >&2
    exit 2
    ;;
esac

dune build bench/main.exe

# shellcheck disable=SC2086  # $mode is deliberately word-split ("" or "fast")
dune exec bench/main.exe -- micro $mode "json=$out"

test -s "$out" || { echo "$out: missing or empty" >&2; exit 1; }

# self-contained JSON validation (no jq/python dependency): the bench
# binary re-parses the file with the same parser the repo ships
dune exec bench/main.exe -- json-check "$out"

echo "bench report: $out"
