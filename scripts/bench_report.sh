#!/usr/bin/env bash
# Run the controller-scale microbenchmarks (E10/E10b/E10c/E10d) and emit
# the machine-readable perf record BENCH_PR4.json.
#
# Usage: scripts/bench_report.sh [OUTPUT.json] [fast]
#
#   OUTPUT.json   where to write the report (default: BENCH_PR4.json)
#   fast          shorter Bechamel quotas — the CI smoke mode
#
# The report carries the E10d acceptance number: full allocator-cycle
# speedup on the stress scenario, optimized vs the frozen pre-PR
# reference implementation. Exits non-zero if the benches fail or the
# emitted file is not well-formed JSON with the expected schema.
set -euo pipefail

cd "$(dirname "$0")/.."

out="${1:-BENCH_PR4.json}"
mode="${2:-}"

case "$mode" in
  "" | fast) ;;
  *)
    echo "usage: $0 [OUTPUT.json] [fast]" >&2
    exit 2
    ;;
esac

dune build bench/main.exe

# shellcheck disable=SC2086  # $mode is deliberately word-split ("" or "fast")
dune exec bench/main.exe -- micro $mode "json=$out"

test -s "$out" || { echo "$out: missing or empty" >&2; exit 1; }

# self-contained JSON validation (no jq/python dependency): the bench
# binary re-parses the file with the same parser the repo ships
dune exec bench/main.exe -- json-check "$out"

echo "bench report: $out"
