#!/usr/bin/env bash
# Run the controller-scale microbenchmarks (E10/E10b/E10c/E10d), the
# E11 fleet-parallelism bench, the E13 dfz scale run, the E14
# health-overhead gate, the E15 multicore-sharding curves and the E16
# interface-churn (link-flap) warm-path bench, then emit the
# machine-readable perf records BENCH_PR5.json, BENCH_PR7.json,
# BENCH_PR8.json, BENCH_PR9.json and BENCH_PR10.json.
#
# Usage: scripts/bench_report.sh [OUTPUT.json] [fast] [PR7_OUTPUT.json] [PR8_OUTPUT.json] [PR9_OUTPUT.json] [PR10_OUTPUT.json]
#
#   OUTPUT.json       where to write the micro/fleet report
#                     (default: BENCH_PR5.json)
#   fast              shorter quotas + smoke-scale dfz — the CI mode
#   PR7_OUTPUT.json   where to write the e13 dfz report
#                     (default: BENCH_PR7.json)
#   PR8_OUTPUT.json   where to write the e14 health-overhead report
#                     (default: BENCH_PR8.json)
#   PR9_OUTPUT.json   where to write the e15 multicore report
#                     (default: BENCH_PR9.json)
#   PR10_OUTPUT.json  where to write the e16 iface-churn report
#                     (default: BENCH_PR10.json)
#
# BENCH_PR5.json carries the E10d allocator-cycle speedup and the E11
# fleet wall-clock speedup acceptance numbers (the fleet bar is only
# asserted on >= 4 cores — domains serialize below that). BENCH_PR7.json
# carries the e13 acceptance: steady-state full-cycle p99 < 1 s on the
# dfz world (1M prefixes; 50k in fast mode) and the incremental = cold
# differential-verification bit. BENCH_PR8.json carries the e14
# acceptance: the fully enabled Ef_health stack (profiler hook on every
# span + SLO/alert tracker) within 2% of the noop path on the stress
# snapshot. BENCH_PR9.json carries the e15 acceptance: the fleet
# speedup-vs-jobs and dfz cold-build speedup-vs-shards curves, with an
# explicit three-valued verdict (pass/fail/skipped). A "skipped" verdict
# is only honest on a machine without the cores: on a >= 4-core runner
# this script refuses it. BENCH_PR10.json carries the e16 acceptance:
# under the canned dfz-flap plan the warm path holds on every patched
# cycle (interface churn never forces a cold recompute), flap-cycle p99
# stays under the 1 s bar, and the run is byte-identical to the cold
# reference, with the warm-vs-forced-cold speedup recorded. Exits non-zero if the benches fail or an
# emitted file is not well-formed JSON with the expected schema.
set -euo pipefail

cd "$(dirname "$0")/.."

out="${1:-BENCH_PR5.json}"
mode="${2:-}"
pr7_out="${3:-BENCH_PR7.json}"
pr8_out="${4:-BENCH_PR8.json}"
pr9_out="${5:-BENCH_PR9.json}"
pr10_out="${6:-BENCH_PR10.json}"

case "$mode" in
  "" | fast) ;;
  *)
    echo "usage: $0 [OUTPUT.json] [fast] [PR7_OUTPUT.json] [PR8_OUTPUT.json] [PR9_OUTPUT.json] [PR10_OUTPUT.json]" >&2
    exit 2
    ;;
esac

dune build bench/main.exe

# shellcheck disable=SC2086  # $mode is deliberately word-split ("" or "fast")
dune exec bench/main.exe -- micro $mode "json=$out"

test -s "$out" || { echo "$out: missing or empty" >&2; exit 1; }

# shellcheck disable=SC2086
dune exec bench/main.exe -- e13 $mode "json=$pr7_out"

test -s "$pr7_out" || { echo "$pr7_out: missing or empty" >&2; exit 1; }

# shellcheck disable=SC2086
dune exec bench/main.exe -- e14 $mode "json=$pr8_out"

test -s "$pr8_out" || { echo "$pr8_out: missing or empty" >&2; exit 1; }

# shellcheck disable=SC2086
dune exec bench/main.exe -- e15 $mode "json=$pr9_out"

test -s "$pr9_out" || { echo "$pr9_out: missing or empty" >&2; exit 1; }

# shellcheck disable=SC2086
dune exec bench/main.exe -- e16 $mode "json=$pr10_out"

test -s "$pr10_out" || { echo "$pr10_out: missing or empty" >&2; exit 1; }

# self-contained JSON validation (no jq/python dependency): the bench
# binary re-parses the files with the same parser the repo ships
dune exec bench/main.exe -- json-check "$out"
dune exec bench/main.exe -- json-check "$pr7_out"
dune exec bench/main.exe -- json-check "$pr8_out"
dune exec bench/main.exe -- json-check "$pr9_out"
dune exec bench/main.exe -- json-check "$pr10_out"

# the speedup-vs-domains curves, re-read from the emitted record (the
# serializer is compact and field-ordered, so a sed render is exact)
render_curve() { # file key
  grep -o "{\"$2\":[0-9]*,\"wall_s\":[0-9.eE+-]*,\"speedup\":[0-9.eE+-]*}" "$1" |
    sed -E "s/\{\"$2\":([0-9]+),\"wall_s\":([0-9.eE+-]+),\"speedup\":([0-9.eE+-]+)\}/    $2=\1  wall \2 s  speedup \3x/"
}
echo "e15 fleet curve (gen-16pop, persistent pool):"
render_curve "$pr9_out" jobs
echo "e15 dfz cold-build curve:"
render_curve "$pr9_out" shards

# honesty gate: "skipped" means "too few cores to judge the speedup".
# On a runner that does have >= 4 cores, a skipped multicore verdict is
# a bench bug (or a config mistake), not an acceptable outcome.
if [ "$(nproc)" -ge 4 ] && grep -q '"status":"skipped"' "$pr9_out"; then
  echo "$pr9_out: multicore gate reported \"skipped\" on a $(nproc)-core runner" >&2
  exit 1
fi

echo "bench reports: $out $pr7_out $pr8_out $pr9_out $pr10_out"
