#!/usr/bin/env bash
# Run the controller-scale microbenchmarks (E10/E10b/E10c/E10d), the
# E11 fleet-parallelism bench, the E13 dfz scale run and the E14
# health-overhead gate, then emit the machine-readable perf records
# BENCH_PR5.json, BENCH_PR7.json and BENCH_PR8.json.
#
# Usage: scripts/bench_report.sh [OUTPUT.json] [fast] [PR7_OUTPUT.json] [PR8_OUTPUT.json]
#
#   OUTPUT.json       where to write the micro/fleet report
#                     (default: BENCH_PR5.json)
#   fast              shorter quotas + smoke-scale dfz — the CI mode
#   PR7_OUTPUT.json   where to write the e13 dfz report
#                     (default: BENCH_PR7.json)
#   PR8_OUTPUT.json   where to write the e14 health-overhead report
#                     (default: BENCH_PR8.json)
#
# BENCH_PR5.json carries the E10d allocator-cycle speedup and the E11
# fleet wall-clock speedup acceptance numbers (the fleet bar is only
# asserted on >= 4 cores — domains serialize below that). BENCH_PR7.json
# carries the e13 acceptance: steady-state full-cycle p99 < 1 s on the
# dfz world (1M prefixes; 50k in fast mode) and the incremental = cold
# differential-verification bit. BENCH_PR8.json carries the e14
# acceptance: the fully enabled Ef_health stack (profiler hook on every
# span + SLO/alert tracker) within 2% of the noop path on the stress
# snapshot. Exits non-zero if the benches fail or an emitted file is not
# well-formed JSON with the expected schema.
set -euo pipefail

cd "$(dirname "$0")/.."

out="${1:-BENCH_PR5.json}"
mode="${2:-}"
pr7_out="${3:-BENCH_PR7.json}"
pr8_out="${4:-BENCH_PR8.json}"

case "$mode" in
  "" | fast) ;;
  *)
    echo "usage: $0 [OUTPUT.json] [fast] [PR7_OUTPUT.json] [PR8_OUTPUT.json]" >&2
    exit 2
    ;;
esac

dune build bench/main.exe

# shellcheck disable=SC2086  # $mode is deliberately word-split ("" or "fast")
dune exec bench/main.exe -- micro $mode "json=$out"

test -s "$out" || { echo "$out: missing or empty" >&2; exit 1; }

# shellcheck disable=SC2086
dune exec bench/main.exe -- e13 $mode "json=$pr7_out"

test -s "$pr7_out" || { echo "$pr7_out: missing or empty" >&2; exit 1; }

# shellcheck disable=SC2086
dune exec bench/main.exe -- e14 $mode "json=$pr8_out"

test -s "$pr8_out" || { echo "$pr8_out: missing or empty" >&2; exit 1; }

# self-contained JSON validation (no jq/python dependency): the bench
# binary re-parses the files with the same parser the repo ships
dune exec bench/main.exe -- json-check "$out"
dune exec bench/main.exe -- json-check "$pr7_out"
dune exec bench/main.exe -- json-check "$pr8_out"

echo "bench reports: $out $pr7_out $pr8_out"
