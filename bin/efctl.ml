(* efctl: the Edge Fabric command-line driver.

   Subcommands:
     scenarios              list the built-in worlds
     world       -s NAME    describe a generated world
     cycle       -s NAME    run one controller cycle at a chosen hour and
                            show its decisions (and the BGP updates)
     run         -s NAME    simulate hours of a day, print the outcome
     explain     PREFIX     simulate, then reconstruct why the pipeline
                            placed one prefix where it did
     top         -s NAME    live terminal view of interfaces + overrides
     experiment  ID         regenerate one paper table/figure            *)

module Bgp = Ef_bgp
module N = Ef_netsim
module C = Ef_collector
module Ef = Edge_fabric
module S = Ef_sim
open Cmdliner

(* --- shared args ------------------------------------------------------ *)

let scenario_arg =
  let parse name =
    match N.Scenario.find name with
    | Some s -> Ok s
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown scenario %S (known: %s)" name
                (String.concat ", " (N.Scenario.names ()))))
  in
  let print fmt s = Format.pp_print_string fmt s.N.Scenario.scenario_name in
  Arg.conv (parse, print)

let scenario_t =
  Arg.(
    value
    & opt scenario_arg N.Scenario.pop_a
    & info [ "s"; "scenario" ] ~docv:"NAME" ~doc:"World to use (see $(b,scenarios)).")

let seed_t =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Simulation seed.")

let hour_t =
  Arg.(
    value
    & opt int 20
    & info [ "at" ] ~docv:"HOUR" ~doc:"UTC hour of day for the snapshot (0-23).")

(* --- export sinks ------------------------------------------------------ *)

(* Every exporting flag (--metrics, --journal, --prom-out, --trace-out,
   --alerts-out, --profile-out) resolves its FILE argument the same way:
   "-" is stdout (flushed, never closed), anything else is opened for
   writing and closed even when the writer raises. *)
let open_sink ~flag = function
  | "-" -> (stdout, fun () -> flush stdout)
  | path -> (
      match open_out path with
      | oc -> (oc, fun () -> close_out oc)
      | exception Sys_error msg ->
          Printf.eprintf "efctl: %s %s: %s\n" flag path msg;
          exit 1)

let write_sink ~flag path write =
  let oc, finish = open_sink ~flag path in
  Fun.protect ~finally:finish (fun () -> write oc)

(* every command that runs the pipeline reports into the default Ef_obs
   registry; --metrics dumps it (JSON or OpenMetrics) when the command is
   done *)
let metrics_t =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write collected telemetry (spans, counters, gauges) on exit, in \
           the $(b,--metrics-format) format, to $(docv) (default $(b,-), \
           stdout).")

let metrics_format_t =
  let fmt = Arg.enum [ ("json", `Json); ("prom", `Prom) ] in
  Arg.(
    value & opt fmt `Json
    & info [ "metrics-format" ] ~docv:"FMT"
        ~doc:
          "Telemetry export format: $(b,json) (the registry tree) or \
           $(b,prom) (OpenMetrics text, including trace-derived series \
           when tracing is on).")

let render_metrics ~format ~trace ~health () =
  let reg = Ef_obs.Registry.default () in
  match format with
  | `Json -> Ef_obs.Json.to_string (Ef_obs.Registry.to_json reg) ^ "\n"
  | `Prom ->
      Ef_obs.Prom.of_registry
        ~extra:
          (Ef_trace.Export.prom_families trace
          @ Ef_health.Tracker.prom_families health)
        reg

let print_metrics ?(format = `Json) ?(trace = Ef_trace.Recorder.noop)
    ?(health = Ef_health.Tracker.noop) = function
  | None -> ()
  | Some path ->
      write_sink ~flag:"--metrics" path (fun oc ->
          output_string oc (render_metrics ~format ~trace ~health ()))

(* --faults NAME|FILE resolution, shared by run / explain / top *)
let resolve_fault_plan = function
  | None -> None
  | Some name_or_file -> (
      match N.Scenario.find_fault_plan name_or_file with
      | Some plan -> Some plan
      | None -> (
          match Ef_fault.Plan.load name_or_file with
          | Ok plan -> Some plan
          | Error msg ->
              Printf.eprintf
                "efctl: --faults %s: not a canned plan (%s) and not a \
                 readable plan file: %s\n"
                name_or_file
                (String.concat ", " (N.Scenario.fault_plan_names ()))
                msg;
              exit 1))

let faults_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"NAME|FILE"
        ~doc:
          "Inject a deterministic fault plan: a canned plan name (see \
           $(b,scenarios)) or a JSON plan file.")

(* --policy NAME|FILE resolution: canned program, else JSON file *)
let resolve_policy = function
  | None -> None
  | Some name_or_file -> (
      match N.Scenario.find_policy name_or_file with
      | Some prog -> Some prog
      | None -> (
          match Ef_policy.Codec.load name_or_file with
          | Ok prog -> Some prog
          | Error msg ->
              Printf.eprintf
                "efctl: --policy %s: not a canned program (%s) and not a \
                 readable policy file: %s\n"
                name_or_file
                (String.concat ", " (N.Scenario.policy_names ()))
                msg;
              exit 1))

let policy_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "policy" ] ~docv:"NAME|FILE"
        ~doc:
          "Run under an $(b,Ef_policy) program: a canned program name (see \
           $(b,scenarios)) or a policy JSON file. Replaces the scenario's \
           import policy and applies the program's allocator/perf knobs.")

(* --- scenarios --------------------------------------------------------- *)

let scenarios_cmd =
  let run () =
    List.iter
      (fun s ->
        Printf.printf "%-10s %s\n" s.N.Scenario.scenario_name
          s.N.Scenario.description)
      N.Scenario.all;
    Printf.printf
      "\ndfz worlds (for run -s; support --verify-incremental):\n";
    List.iter
      (fun (name, cfg) ->
        Printf.printf "%-10s %d prefixes, %.1f%% churn/cycle\n" name
          cfg.N.Dfz.n_prefixes
          (100.0 *. cfg.N.Dfz.churn_fraction))
      N.Scenario.dfz_scenarios;
    Printf.printf "\ncanned fault plans (for run --faults):\n";
    List.iter
      (fun (name, plan) ->
        Printf.printf "%-14s %d fault(s), seed %d\n" name
          (List.length plan.Ef_fault.Plan.faults)
          plan.Ef_fault.Plan.plan_seed)
      N.Scenario.fault_plans;
    Printf.printf "\ncanned policy programs (for run --policy):\n";
    List.iter
      (fun (name, prog) ->
        Printf.printf "%-18s default %s\n" name
          (match prog.Ef_policy.program_default with
          | Ef_policy.Accept -> "accept"
          | Ef_policy.Reject -> "reject"))
      N.Scenario.policies
  in
  Cmd.v (Cmd.info "scenarios" ~doc:"List the built-in worlds.")
    Term.(const run $ const ())

(* --- world ------------------------------------------------------------- *)

let world_cmd =
  let run scenario =
    let world = N.Topo_gen.generate scenario.N.Scenario.topo in
    let pop = world.N.Topo_gen.pop in
    Format.printf "%a@." N.Pop.pp pop;
    Printf.printf "ASes: %d   prefixes: %d   routes: %d\n"
      (List.length world.N.Topo_gen.ases)
      (List.length world.N.Topo_gen.all_prefixes)
      (Bgp.Rib.route_count (N.Pop.rib pop));
    let table =
      Ef_stats.Table.create [ "interface"; "capacity"; "peers"; "kind(s)" ]
    in
    List.iter
      (fun iface ->
        let peers = N.Pop.peers_on_iface pop ~iface_id:(N.Iface.id iface) in
        let kinds =
          List.sort_uniq compare
            (List.map (fun p -> Bgp.Peer.kind_to_string (Bgp.Peer.kind p)) peers)
        in
        Ef_stats.Table.add_row table
          [
            N.Iface.name iface;
            Ef_util.Units.rate_to_string (N.Iface.capacity_bps iface);
            string_of_int (List.length peers);
            String.concat "," kinds;
          ])
      (N.Pop.interfaces pop);
    Ef_stats.Table.print table
  in
  Cmd.v (Cmd.info "world" ~doc:"Describe a generated world.")
    Term.(const run $ scenario_t)

(* --- cycle -------------------------------------------------------------- *)

let cycle_cmd =
  let run scenario seed hour verbose metrics =
    let config =
      S.Engine.make_config ~start_s:(hour * 3600) ~controller_enabled:false
        ~use_sampling:false ~seed ()
    in
    let engine = S.Engine.create ~config scenario in
    ignore (S.Engine.step engine);
    let snapshot = S.Engine.snapshot_now engine in
    let ctrl = Ef.Controller.create ~name:scenario.N.Scenario.scenario_name () in
    let stats = Ef.Controller.cycle ctrl snapshot in
    Printf.printf "snapshot: %d prefixes, %s offered\n"
      (C.Snapshot.prefix_count snapshot)
      (Ef_util.Units.rate_to_string (C.Snapshot.total_rate_bps snapshot));
    Printf.printf "overloaded before: %d   after: %d\n"
      (List.length (Ef.Controller.overloaded_before stats))
      (List.length (Ef.Controller.overloaded_after stats));
    List.iter
      (fun (iface, util) ->
        Printf.printf "  %-16s %.2f -> %.2f\n" (N.Iface.name iface) util
          (Ef.Projection.utilization (Ef.Controller.enforced stats) iface))
      (Ef.Controller.overloaded_before stats);
    Printf.printf "overrides: %d (%s detoured, %s of traffic)\n"
      (List.length (Ef.Controller.overrides_enforced stats))
      (Ef_util.Units.rate_to_string (Ef.Controller.detoured_bps stats))
      (Format.asprintf "%a" Ef_util.Units.pp_percent
         (Ef.Controller.detour_fraction stats));
    if verbose then begin
      List.iter
        (fun o -> Format.printf "  %a@." Ef.Override.pp o)
        (Ef.Controller.overrides_enforced stats);
      print_endline "BGP updates:";
      List.iter
        (fun u -> Format.printf "  %a@." Bgp.Msg.pp (Bgp.Msg.Update u))
        (Ef.Controller.bgp_updates ctrl stats)
    end;
    print_metrics metrics
  in
  let verbose_t =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print each override and update.")
  in
  Cmd.v
    (Cmd.info "cycle" ~doc:"Run one controller cycle on a peak snapshot.")
    Term.(const run $ scenario_t $ seed_t $ hour_t $ verbose_t $ metrics_t)

(* --- run ----------------------------------------------------------------- *)

(* run's world argument also accepts the DFZ-class names (full-table
   worlds that bypass the engine and run through the sim's dfz driver). *)
type run_world =
  | Topo_world of N.Scenario.t
  | Dfz_world of string * N.Dfz.config

let run_world_arg =
  let parse name =
    match N.Scenario.find name with
    | Some s -> Ok (Topo_world s)
    | None -> (
        match N.Scenario.find_dfz name with
        | Some cfg -> Ok (Dfz_world (name, cfg))
        | None ->
            Error
              (`Msg
                 (Printf.sprintf "unknown scenario %S (known: %s)" name
                    (String.concat ", "
                       (N.Scenario.names () @ N.Scenario.dfz_names ())))))
  in
  let print fmt = function
    | Topo_world s -> Format.pp_print_string fmt s.N.Scenario.scenario_name
    | Dfz_world (name, _) -> Format.pp_print_string fmt name
  in
  Arg.conv (parse, print)

let run_world_t =
  Arg.(
    value
    & opt run_world_arg (Topo_world N.Scenario.pop_a)
    & info [ "s"; "scenario" ] ~docv:"NAME"
        ~doc:
          "World to use (see $(b,scenarios)); also accepts the DFZ-class \
           worlds $(b,dfz) and $(b,dfz-smoke).")

let print_dfz_report name report =
  Printf.printf "%s: %s\n" name
    (Format.asprintf "%a" S.Dfz_run.pp_report report);
  if report.S.Dfz_run.mismatches <> [] then begin
    List.iter
      (fun m -> Printf.eprintf "  mismatch: %s\n" m)
      report.S.Dfz_run.mismatches;
    Printf.eprintf
      "efctl: incremental and cold pipelines disagree (%d cycles verified)\n"
      report.S.Dfz_run.verified_cycles;
    exit 1
  end

let run_cmd =
  let run world seed hours cycle_s no_controller no_sampling obs_metrics
      metrics_format journal faults policy prom_out trace_out profile_out
      alerts alerts_out slo_deadline mrt verify_incremental shards =
    let fault_plan = resolve_fault_plan faults in
    let policy_prog = resolve_policy policy in
    (* tracing is paid for only when something will read it: a trace dump,
       or a prom export (whose ef_trace_* series come from the recorder) *)
    let trace =
      match (trace_out, prom_out) with
      | None, None -> Ef_trace.Recorder.noop
      | _ -> Ef_trace.Recorder.create ()
    in
    (* likewise the profiler: enabled only when a Chrome trace will be
       written, and attached to the default registry so every span the
       pipeline already times lands in the buffer *)
    let profiler =
      match profile_out with
      | None -> Ef_health.Profiler.noop
      | Some _ ->
          let p = Ef_health.Profiler.create () in
          Ef_health.Profiler.attach p (Ef_obs.Registry.default ());
          p
    in
    let health =
      if alerts || alerts_out <> None then
        Ef_health.Tracker.create
          ~slo:
            {
              Ef_health.Slo.default_config with
              Ef_health.Slo.deadline_s = slo_deadline;
            }
          ~profiler
          ~obs:(Ef_obs.Registry.default ())
          ()
      else Ef_health.Tracker.noop
    in
    let config =
      S.Engine.make_config ~cycle_s ~duration_s:(hours * 3600)
        ~controller_enabled:(not no_controller)
        ~use_sampling:(not no_sampling) ~seed ?faults:fault_plan
        ?policy:policy_prog ~trace ~health ()
    in
    (* --shards: applied after make_config so it composes with a policy's
       allocator overrides; shards=1 leaves the config untouched *)
    let config =
      if shards = 1 then config
      else
        S.Engine.with_controller_config
          (Ef.Config.with_shards shards config.S.Engine.controller_config)
          config
    in
    let sharded_controller () = Ef.Config.with_shards shards Ef.Config.default in
    (* the common export tail: every world class (engine, dfz, mrt) gets
       the same exporters, each through the shared sink helper *)
    let export_results () =
      (if alerts then Format.printf "%a@." Ef_health.Tracker.pp_summary health);
      (match alerts_out with
      | None -> ()
      | Some path ->
          write_sink ~flag:"--alerts-out" path (fun oc ->
              List.iter
                (fun f ->
                  output_string oc
                    (Ef_obs.Json.to_string (Ef_health.Alert.firing_to_json f));
                  output_char oc '\n')
                (Ef_health.Tracker.firings health)));
      (match profile_out with
      | None -> ()
      | Some path ->
          write_sink ~flag:"--profile-out" path (fun oc ->
              Ef_health.Profiler.write_chrome profiler oc);
          if path <> "-" then
            Printf.printf "wrote Chrome trace (%d events) to %s\n"
              (Ef_health.Profiler.length profiler)
              path);
      (match prom_out with
      | None -> ()
      | Some path ->
          write_sink ~flag:"--prom-out" path (fun oc ->
              output_string oc
                (Ef_obs.Prom.of_registry
                   ~extra:
                     (Ef_trace.Export.prom_families trace
                     @ Ef_health.Tracker.prom_families health)
                   (Ef_obs.Registry.default ())));
          if path <> "-" then Printf.printf "wrote OpenMetrics to %s\n" path);
      (match trace_out with
      | None -> ()
      | Some path ->
          write_sink ~flag:"--trace-out" path (fun oc ->
              output_string oc
                (Ef_obs.Json.to_string (Ef_trace.Recorder.to_json trace));
              output_char oc '\n');
          if path <> "-" then
            Printf.printf "wrote decision trace (%d retained cycles) to %s\n"
              (List.length (Ef_trace.Recorder.cycles trace))
              path);
      print_metrics ~format:metrics_format ~trace ~health obs_metrics
    in
    (* [- ] journals to stdout (flushed, never closed); a file is closed
       even when the run raises *)
    let journal_finish =
      match journal with
      | None -> fun () -> ()
      | Some path ->
          let oc, finish = open_sink ~flag:"--journal" path in
          Ef_obs.Registry.add_sink
            (Ef_obs.Registry.default ())
            (Ef_obs.Registry.channel_sink oc);
          finish
    in
    Fun.protect ~finally:journal_finish @@ fun () ->
    let n_cycles = max 1 (hours * 3600 / cycle_s) in
    match (mrt, world) with
    | Some dump_path, _ -> (
        (* --mrt: seed the table from a TABLE_DUMP_V2 dump instead of a
           generated world; rates are synthesized (Zipf over the dump's
           prefixes) and drift through the incremental snapshot chain *)
        let rc =
          S.Dfz_run.config ~cycles:n_cycles ~cycle_s
            ~controller:(sharded_controller ()) ()
        in
        let dump =
          match Bgp.Mrt.load dump_path with
          | Ok d -> d
          | Error e ->
              Printf.eprintf "efctl: %s: %s\n" dump_path
                (Format.asprintf "%a" Bgp.Mrt.pp_error e);
              exit 1
        in
        if verify_incremental then
          Printf.eprintf
            "efctl: note: --verify-incremental applies to dfz worlds only\n";
        match
          S.Dfz_run.run_mrt
            ~obs:(Ef_obs.Registry.default ())
            ~health ~config:rc ~seed dump
        with
        | Error e ->
            Printf.eprintf "efctl: %s: %s\n" dump_path
              (Format.asprintf "%a" Bgp.Mrt.pp_error e);
            exit 1
        | Ok report ->
            print_dfz_report dump_path report;
            export_results ())
    | None, Dfz_world (name, dfz_cfg) ->
        let dfz_cfg = { dfz_cfg with N.Dfz.seed } in
        let rc =
          S.Dfz_run.config ~cycles:n_cycles ~cycle_s
            ~verify:verify_incremental ?faults:fault_plan
            ~controller:(sharded_controller ()) ()
        in
        let report =
          S.Dfz_run.run
            ~obs:(Ef_obs.Registry.default ())
            ~health ~config:rc dfz_cfg
        in
        print_dfz_report name report;
        (match report.S.Dfz_run.iface_event_cycles with
        | [] -> ()
        | evs ->
            Printf.printf
              "interface churn in %d cycles; warm path held on %d of %d \
               patched cycles\n"
              (List.length evs)
              report.S.Dfz_run.incremental_hits
              (report.S.Dfz_run.cycles_run - 1));
        if verify_incremental then
          Printf.printf
            "verified %d cycles against the cold pipeline: identical\n"
            report.S.Dfz_run.verified_cycles;
        export_results ()
    | None, Topo_world scenario ->
    if verify_incremental then
      Printf.eprintf
        "efctl: note: --verify-incremental applies to dfz worlds only\n";
    let engine = S.Engine.create ~config scenario in
    let metrics = S.Engine.run engine in
    let rows = S.Metrics.rows metrics in
    Printf.printf "%s: %d cycles over %dh (controller %s)\n"
      scenario.N.Scenario.scenario_name (List.length rows) hours
      (if no_controller then "off" else "on");
    (match policy_prog with
    | None -> ()
    | Some prog ->
        Printf.printf "policy: %s (default %s)\n"
          prog.Ef_policy.program_name
          (match prog.Ef_policy.program_default with
          | Ef_policy.Accept -> "accept"
          | Ef_policy.Reject -> "reject"));
    let peaks mode = S.Metrics.peak_utilization metrics mode in
    let max_util mode =
      List.fold_left (fun acc (_, u) -> Float.max acc u) 0.0 (peaks mode)
    in
    Printf.printf "peak interface utilization: %.2f (BGP-only would be %.2f)\n"
      (max_util `Actual) (max_util `Preferred);
    Printf.printf "interfaces over capacity: %s (BGP-only: %s)\n"
      (Format.asprintf "%a" Ef_util.Units.pp_percent
         (S.Metrics.overloaded_iface_fraction metrics `Actual ~threshold:1.0))
      (Format.asprintf "%a" Ef_util.Units.pp_percent
         (S.Metrics.overloaded_iface_fraction metrics `Preferred ~threshold:1.0));
    Printf.printf "mean detoured: %s   drops: %s vs %s (BGP-only)\n"
      (Format.asprintf "%a" Ef_util.Units.pp_percent
         (S.Metrics.mean_detour_fraction metrics))
      (Ef_util.Units.rate_to_string
         (S.Metrics.total_dropped metrics `Actual
         /. float_of_int (max 1 (List.length rows))))
      (Ef_util.Units.rate_to_string
         (S.Metrics.total_dropped metrics `Preferred
         /. float_of_int (max 1 (List.length rows))));
    (match S.Metrics.lifetime_cdf metrics with
    | None -> ()
    | Some cdf ->
        Printf.printf "override lifetimes: p50 %.0fs p90 %.0fs (%d releases)\n"
          (Ef_stats.Cdf.quantile cdf 0.5)
          (Ef_stats.Cdf.quantile cdf 0.9)
          (Ef_stats.Cdf.count cdf));
    (match fault_plan with
    | None -> ()
    | Some plan ->
        let reg = Ef_obs.Registry.default () in
        let count name =
          int_of_float (Ef_obs.Counter.value (Ef_obs.Registry.counter reg name))
        in
        Printf.printf "faults: %d injected (plan seed %d)\n"
          (List.length plan.Ef_fault.Plan.faults)
          plan.Ef_fault.Plan.plan_seed;
        Printf.printf
          "degraded cycles: %d (stale %d, low-confidence %d)  skipped: %d\n"
          (count "controller.degraded.cycles")
          (count "controller.degraded.stale")
          (count "controller.degraded.low_confidence")
          (S.Engine.cycles_skipped engine);
        Printf.printf "bmp session: %d failures, %d retries, %d reconnects\n"
          (count "collector.session.failures")
          (count "collector.session.retries")
          (count "collector.session.reconnects"));
    export_results ()
  in
  let hours_t =
    Arg.(value & opt int 24 & info [ "hours" ] ~docv:"H" ~doc:"Simulated duration.")
  in
  let cycle_t =
    Arg.(value & opt int 120 & info [ "cycle" ] ~docv:"SEC" ~doc:"Controller period.")
  in
  let no_controller_t =
    Arg.(value & flag & info [ "no-controller" ] ~doc:"BGP-only baseline.")
  in
  let no_sampling_t =
    Arg.(value & flag & info [ "no-sampling" ] ~doc:"Give the controller true rates.")
  in
  let journal_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Write the structured event journal (JSON lines) to $(docv); \
             $(b,-) journals to stdout.")
  in
  let prom_out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "prom-out" ] ~docv:"FILE"
          ~doc:"Write the telemetry as OpenMetrics text to $(docv) on exit.")
  in
  let trace_out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Enable decision tracing and write the retained trace ring as \
             JSON to $(docv) on exit.")
  in
  let profile_out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile-out" ] ~docv:"FILE"
          ~doc:
            "Enable the self-profiler and write the run as Chrome \
             trace-event JSON (open in chrome://tracing or Perfetto) to \
             $(docv) on exit: per-stage and per-domain spans plus per-cycle \
             GC counters.")
  in
  let alerts_t =
    Arg.(
      value & flag
      & info [ "alerts" ]
          ~doc:
            "Track health (SLO state machine + alert rules) during the run \
             and print the health summary — state transitions and alert \
             firings — on exit.")
  in
  let alerts_out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "alerts-out" ] ~docv:"FILE"
          ~doc:
            "Write the alert firings as JSON lines to $(docv); implies \
             health tracking. Firings are deterministic: two identical \
             seeded runs produce byte-identical files.")
  in
  let slo_deadline_t =
    Arg.(
      value & opt float 1.0
      & info [ "slo-deadline" ] ~docv:"SEC"
          ~doc:
            "Cycle wall-time budget for the SLO tracker (default 1.0, the \
             paper-scale acceptance bar); cycles over budget count as \
             overruns and feed the burn rate.")
  in
  let mrt_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "mrt" ] ~docv:"DUMP"
          ~doc:
            "Seed the routing table from an MRT TABLE_DUMP_V2 file (e.g. a \
             RouteViews RIB archive) instead of a generated world; demand \
             is synthesized Zipf-skewed over the dump's prefixes.")
  in
  let verify_incremental_t =
    Arg.(
      value & flag
      & info [ "verify-incremental" ]
          ~doc:
            "DFZ worlds only: replay the identical world through the cold \
             (non-incremental) pipeline in lockstep and fail unless every \
             cycle's outputs match exactly.")
  in
  let shards_t =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Shard each controller cycle's projection/allocation across \
             $(docv) domains (and the cold DFZ table build, for dfz/mrt \
             worlds). Outputs are byte-identical at any shard count; use \
             with up to the machine's core count.")
  in
  Cmd.v (Cmd.info "run" ~doc:"Simulate a day and summarise the outcome.")
    Term.(
      const run $ run_world_t $ seed_t $ hours_t $ cycle_t $ no_controller_t
      $ no_sampling_t $ metrics_t $ metrics_format_t $ journal_t $ faults_t
      $ policy_t $ prom_out_t $ trace_out_t $ profile_out_t $ alerts_t
      $ alerts_out_t $ slo_deadline_t $ mrt_t $ verify_incremental_t
      $ shards_t)

(* --- health ---------------------------------------------------------------- *)

let health_cmd =
  let run world seed hours cycle_s faults slo_deadline json =
    let fault_plan = resolve_fault_plan faults in
    let health =
      Ef_health.Tracker.create
        ~slo:
          {
            Ef_health.Slo.default_config with
            Ef_health.Slo.deadline_s = slo_deadline;
          }
        ~obs:(Ef_obs.Registry.default ())
        ()
    in
    let n_cycles = max 1 (hours * 3600 / cycle_s) in
    (match world with
    | Dfz_world (name, dfz_cfg) ->
        let dfz_cfg = { dfz_cfg with N.Dfz.seed } in
        let rc =
          S.Dfz_run.config ~cycles:n_cycles ~cycle_s ?faults:fault_plan ()
        in
        let report =
          S.Dfz_run.run
            ~obs:(Ef_obs.Registry.default ())
            ~health ~config:rc dfz_cfg
        in
        if not json then
          Printf.printf "%s: %s\n" name
            (Format.asprintf "%a" S.Dfz_run.pp_report report)
    | Topo_world scenario ->
        let config =
          S.Engine.make_config ~cycle_s ~duration_s:(hours * 3600) ~seed
            ?faults:fault_plan ~health ()
        in
        let engine = S.Engine.create ~config scenario in
        ignore (S.Engine.run engine : S.Metrics.t));
    if json then
      print_endline
        (Ef_obs.Json.to_string (Ef_health.Tracker.summary_json health))
    else Format.printf "%a@." Ef_health.Tracker.pp_summary health;
    (* systemctl-style exit status: 0 Healthy, 1 Degraded, 2 Broken *)
    exit (Ef_health.Slo.state_rank (Ef_health.Tracker.state health))
  in
  let hours_t =
    Arg.(value & opt int 1 & info [ "hours" ] ~docv:"H" ~doc:"Simulated duration.")
  in
  let cycle_t =
    Arg.(value & opt int 120 & info [ "cycle" ] ~docv:"SEC" ~doc:"Controller period.")
  in
  let slo_deadline_t =
    Arg.(
      value & opt float 1.0
      & info [ "slo-deadline" ] ~docv:"SEC"
          ~doc:"Cycle wall-time budget for the SLO tracker.")
  in
  let json_t =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the health summary as JSON instead of text.")
  in
  Cmd.v
    (Cmd.info "health"
       ~doc:
         "Run a world under the health tracker and report its SLO state, \
          state transitions and alert firings. Exit status mirrors the \
          final state: 0 healthy, 1 degraded, 2 broken.")
    Term.(
      const run $ run_world_t $ seed_t $ hours_t $ cycle_t $ faults_t
      $ slo_deadline_t $ json_t)

(* --- explain --------------------------------------------------------------- *)

let explain_cmd =
  let run prefix_str scenario seed hours cycle_s faults cycle_index ring json =
    match Bgp.Prefix.of_string_opt prefix_str with
    | None ->
        `Error
          (false, Printf.sprintf "not a prefix: %S (want e.g. 10.1.0.0/16)" prefix_str)
    | Some prefix -> (
        let fault_plan = resolve_fault_plan faults in
        let trace = Ef_trace.Recorder.create ~capacity:ring () in
        let config =
          S.Engine.make_config ~cycle_s ~duration_s:(hours * 3600) ~seed
            ?faults:fault_plan ~trace ()
        in
        let engine = S.Engine.create ~config scenario in
        ignore (S.Engine.run engine);
        if json then
          let chosen =
            match cycle_index with
            | Some index -> Ef_trace.Recorder.find_cycle trace ~index
            | None -> (
                match List.rev (Ef_trace.Recorder.cycles_touching trace prefix) with
                | c :: _ -> Some c
                | [] -> None)
          in
          match chosen with
          | Some c ->
              print_endline
                (Ef_obs.Json.to_string (Ef_trace.Recorder.cycle_to_json c));
              `Ok ()
          | None ->
              `Error
                (false,
                 Format.asprintf "no retained cycle touches %a" Bgp.Prefix.pp
                   prefix)
        else
          match Ef_trace.Explain.explain trace ?cycle:cycle_index prefix with
          | Ok text ->
              print_string text;
              `Ok ()
          | Error msg -> `Error (false, msg))
  in
  let prefix_t =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"PREFIX" ~doc:"Prefix to explain (e.g. 10.1.0.0/16).")
  in
  let hours_t =
    Arg.(value & opt int 1 & info [ "hours" ] ~docv:"H" ~doc:"Simulated duration.")
  in
  let cycle_t =
    Arg.(value & opt int 120 & info [ "cycle" ] ~docv:"SEC" ~doc:"Controller period.")
  in
  let cycle_index_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "cycle-index" ] ~docv:"N"
          ~doc:
            "Explain controller cycle number $(docv) (1-based) instead of \
             the most recent cycle that touched the prefix.")
  in
  let ring_t =
    Arg.(
      value & opt int 64
      & info [ "ring" ] ~docv:"N" ~doc:"Trace ring capacity (retained cycles).")
  in
  let json_t =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the selected cycle's raw trace record as JSON.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Simulate, then reconstruct the projection -> allocation -> guard \
          -> override chain for one prefix.")
    Term.(
      ret
        (const run $ prefix_t $ scenario_t $ seed_t $ hours_t $ cycle_t
       $ faults_t $ cycle_index_t $ ring_t $ json_t))

(* --- top -------------------------------------------------------------------- *)

let top_cmd =
  let module R = Ef_trace.Recorder in
  let bar width frac =
    let frac = Float.max 0.0 (Float.min 1.2 frac) in
    let n = int_of_float (frac /. 1.2 *. float_of_int width) in
    String.init width (fun i -> if i < n then '#' else '.')
  in
  let render ~scenario_name ~plain ~health (c : R.cycle) =
    if not plain then print_string "\027[2J\027[H";
    Printf.printf "efctl top — %s   cycle %d   t=%s%s\n" scenario_name
      c.R.cy_index
      (Format.asprintf "%a" Ef_util.Units.pp_time_of_day c.R.cy_time_s)
      (match c.R.cy_degraded with
      | None -> ""
      | Some reason -> Printf.sprintf "   DEGRADED(%s)" reason);
    Printf.printf "\n%-16s %-9s %6s %6s %6s  utilization\n" "interface"
      "capacity" "proj" "enf" "act";
    let util cap bps = if cap <= 0.0 then 0.0 else bps /. cap in
    let rows =
      List.sort
        (fun (a : R.iface_row) b ->
          compare
            (util b.R.if_capacity_bps b.R.if_enforced_bps)
            (util a.R.if_capacity_bps a.R.if_enforced_bps))
        c.R.cy_ifaces
    in
    List.iter
      (fun (row : R.iface_row) ->
        let u bps = util row.R.if_capacity_bps bps in
        Printf.printf "%-16s %-9s %5.0f%% %5.0f%% %6s  [%s]\n" row.R.if_name
          (Ef_util.Units.rate_to_string row.R.if_capacity_bps)
          (100.0 *. u row.R.if_projected_bps)
          (100.0 *. u row.R.if_enforced_bps)
          (match row.R.if_actual_bps with
          | None -> "-"
          | Some bps -> Printf.sprintf "%.0f%%" (100.0 *. u bps))
          (bar 24 (u row.R.if_enforced_bps)))
      rows;
    let hys_count pick =
      List.length (List.filter (fun e -> pick e.R.hy_disposition) c.R.cy_hys)
    in
    Printf.printf
      "\noverrides: %d active   +%d installed  ~%d retargeted  -%d released  \
       %d damped\n"
      (List.length c.R.cy_enforced)
      (hys_count (function R.Installed -> true | _ -> false))
      (hys_count (function R.Retargeted _ -> true | _ -> false))
      (hys_count (function R.Released _ -> true | _ -> false))
      (hys_count (function
        | R.Hold_retarget _ | R.Release_deferred _ -> true
        | _ -> false));
    let heaviest =
      List.sort
        (fun (a : R.enforced) b -> compare b.R.en_rate_bps a.R.en_rate_bps)
        c.R.cy_enforced
    in
    List.iteri
      (fun i (e : R.enforced) ->
        if i < 10 then
          Printf.printf "  %-20s %-9s iface %d -> %d  peer %-4d age %4ds\n"
            (Bgp.Prefix.to_string e.R.en_prefix)
            (Ef_util.Units.rate_to_string e.R.en_rate_bps)
            e.R.en_from_iface e.R.en_to_iface e.R.en_peer_id e.R.en_age_s)
      heaviest;
    if List.length heaviest > 10 then
      Printf.printf "  ... and %d more\n" (List.length heaviest - 10);
    (* health strip: SLO state + the most recent alert firings *)
    Printf.printf "\nhealth: %s   burn %.2f   alerts fired: %d\n"
      (Ef_health.Slo.state_to_string (Ef_health.Tracker.state health))
      (Ef_health.Slo.burn_rate (Ef_health.Tracker.slo_exn health))
      (List.length (Ef_health.Tracker.firings health));
    let firings = Ef_health.Tracker.firings health in
    let n = List.length firings in
    List.iteri
      (fun i f ->
        if i >= n - 5 then
          Format.printf "  %a@." Ef_health.Alert.pp_firing f)
      firings;
    flush stdout
  in
  let run scenario seed hours cycle_s faults delay_ms plain =
    let fault_plan = resolve_fault_plan faults in
    let trace = R.create ~capacity:2 () in
    let health = Ef_health.Tracker.create () in
    let config =
      S.Engine.make_config ~cycle_s ~duration_s:(hours * 3600) ~seed
        ?faults:fault_plan ~trace ~health ()
    in
    let engine = S.Engine.create ~config scenario in
    let steps = hours * 3600 / cycle_s in
    for _ = 1 to steps do
      ignore (S.Engine.step engine);
      (match R.latest trace with
      | None -> ()
      | Some c ->
          render ~scenario_name:scenario.N.Scenario.scenario_name ~plain
            ~health c);
      if delay_ms > 0 then Unix.sleepf (float_of_int delay_ms /. 1000.0)
    done
  in
  let hours_t =
    Arg.(value & opt int 1 & info [ "hours" ] ~docv:"H" ~doc:"Simulated duration.")
  in
  let cycle_t =
    Arg.(value & opt int 120 & info [ "cycle" ] ~docv:"SEC" ~doc:"Controller period.")
  in
  let delay_t =
    Arg.(
      value & opt int 100
      & info [ "delay-ms" ] ~docv:"MS"
          ~doc:"Wall-clock delay between frames (0 = as fast as possible).")
  in
  let plain_t =
    Arg.(
      value & flag
      & info [ "plain" ]
          ~doc:"No ANSI clear between frames (append frames instead).")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live terminal view: hottest interfaces, active overrides with \
          ages, degradation state.")
    Term.(
      const run $ scenario_t $ seed_t $ hours_t $ cycle_t $ faults_t $ delay_t
      $ plain_t)

(* --- experiment ----------------------------------------------------------- *)

let experiment_cmd =
  let run id cycle_s jobs metrics =
    let params =
      { S.Experiments.default_params with S.Experiments.cycle_s; jobs }
    in
    let table =
      match id with
      | "e1" -> Some (S.Experiments.e1_peering ())
      | "e2" -> Some (S.Experiments.e2_route_diversity ())
      | "e3" -> Some (S.Experiments.e3_preference_mix ())
      | "e4" -> Some (S.Experiments.e4_bgp_only_overload ~params ())
      | "e5" -> Some (S.Experiments.e5_detour_volume ~params ())
      | "e6" -> Some (S.Experiments.e6_detour_levels ~params ())
      | "e7" -> Some (S.Experiments.e7_override_churn ~params ())
      | "e8" -> Some (S.Experiments.e8_altpath_quality ~params ())
      | "e9" -> Some (S.Experiments.e9_detour_rtt_impact ~params ())
      | "e12" -> Some (S.Experiments.e12_perf_aware ~params ())
      | "a1" -> Some (S.Experiments.a1_single_pass ~params ())
      | "a3" -> Some (S.Experiments.a3_threshold_sweep ~params ())
      | "a4" -> Some (S.Experiments.a4_granularity ~params ())
      | _ -> None
    in
    match table with
    | Some t ->
        Ef_stats.Table.print t;
        print_metrics metrics;
        `Ok ()
    | None ->
        `Error
          (false, Printf.sprintf "unknown experiment %S (e1-e9, e12, a1, a3, a4)" id)
  in
  let id_t =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ID" ~doc:"e1..e9, e12, a1, a3, a4.")
  in
  let cycle_t =
    Arg.(value & opt int 120 & info [ "cycle" ] ~docv:"SEC" ~doc:"Controller period.")
  in
  let jobs_t =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Run the experiment's daily simulations on $(docv) domains. \
             Results are identical for every value.")
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate one table/figure of the paper.")
    Term.(ret (const run $ id_t $ cycle_t $ jobs_t $ metrics_t))

(* --- topo (graphviz export) ----------------------------------------------- *)

let topo_cmd =
  let run scenario =
    let world = N.Topo_gen.generate scenario.N.Scenario.topo in
    let pop = world.N.Topo_gen.pop in
    Printf.printf "graph %s {\n  rankdir=LR;\n  node [shape=box];\n"
      (String.map (fun c -> if c = '-' then '_' else c) (N.Pop.name pop));
    Printf.printf "  pop [label=\"%s\\n%s\", style=filled];\n" (N.Pop.name pop)
      (Ef_util.Units.rate_to_string (N.Pop.total_capacity_bps pop));
    List.iter
      (fun iface ->
        Printf.printf "  iface%d [label=\"%s\\n%s\"];\n  pop -- iface%d;\n"
          (N.Iface.id iface) (N.Iface.name iface)
          (Ef_util.Units.rate_to_string (N.Iface.capacity_bps iface))
          (N.Iface.id iface);
        List.iter
          (fun peer ->
            Printf.printf
              "  peer%d [label=\"%s\", shape=ellipse];\n  iface%d -- peer%d;\n"
              (Bgp.Peer.id peer) peer.Bgp.Peer.name (N.Iface.id iface)
              (Bgp.Peer.id peer))
          (N.Pop.peers_on_iface pop ~iface_id:(N.Iface.id iface)))
      (N.Pop.interfaces pop);
    print_endline "}"
  in
  Cmd.v
    (Cmd.info "topo" ~doc:"Print the PoP topology as graphviz dot.")
    Term.(const run $ scenario_t)

(* --- dump (MRT export) --------------------------------------------------- *)

let dump_cmd =
  let run scenario out =
    let world = N.Topo_gen.generate scenario.N.Scenario.topo in
    let rib = N.Pop.rib world.N.Topo_gen.pop in
    let mrt =
      Bgp.Mrt.of_rib ~collector_id:(Bgp.Ipv4.of_string "10.0.0.1") rib
    in
    Bgp.Mrt.save out ~timestamp:0 mrt;
    Printf.printf "wrote %d peers, %d prefixes (%d routes) to %s (MRT TABLE_DUMP_V2)\n"
      (List.length mrt.Bgp.Mrt.peers)
      (List.length mrt.Bgp.Mrt.records)
      (Bgp.Rib.route_count rib) out
  in
  let out_t =
    Arg.(
      value & opt string "rib.mrt"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"MRT file to write.")
  in
  Cmd.v
    (Cmd.info "dump" ~doc:"Export a world's RIB as an MRT TABLE_DUMP_V2 file.")
    Term.(const run $ scenario_t $ out_t)

(* --- fleet ------------------------------------------------------------- *)

let fleet_cmd =
  let run seed hours cycle_s jobs metrics profile_out =
    let config =
      S.Engine.make_config ~cycle_s ~duration_s:(hours * 3600) ~seed ()
    in
    let profiler =
      match profile_out with
      | None -> Ef_health.Profiler.noop
      | Some _ -> Ef_health.Profiler.create ()
    in
    let fleet = S.Fleet.of_paper_pops ~config ~profiler () in
    Printf.printf "running %d PoPs for %dh (this is %d controller cycles)...\n%!"
      (List.length (S.Fleet.engines fleet))
      hours
      (List.length (S.Fleet.engines fleet) * hours * 3600 / cycle_s);
    let results = S.Fleet.run ~jobs fleet in
    Ef_stats.Table.print (S.Fleet.summary_table results);
    (match profile_out with
    | None -> ()
    | Some path ->
        write_sink ~flag:"--profile-out" path (fun oc ->
            Ef_health.Profiler.write_chrome profiler oc);
        if path <> "-" then
          Printf.printf "wrote Chrome trace (%d events, %d domains) to %s\n"
            (Ef_health.Profiler.length profiler)
            (List.length (Ef_health.Profiler.tids profiler))
            path);
    print_metrics metrics
  in
  let hours_t =
    Arg.(value & opt int 24 & info [ "hours" ] ~docv:"H" ~doc:"Simulated duration.")
  in
  let cycle_t =
    Arg.(value & opt int 300 & info [ "cycle" ] ~docv:"SEC" ~doc:"Controller period.")
  in
  let jobs_t =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Run PoPs on $(docv) domains in parallel. The dashboard is \
             byte-identical for every value.")
  in
  let profile_out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile-out" ] ~docv:"FILE"
          ~doc:
            "Profile the run and write Chrome trace-event JSON to $(docv): \
             one row per domain, every engine/controller stage span, pool \
             tasks tagged by lane, and the post-barrier merge.")
  in
  Cmd.v
    (Cmd.info "fleet" ~doc:"Run every paper PoP and print the fleet dashboard.")
    Term.(
      const run $ seed_t $ hours_t $ cycle_t $ jobs_t $ metrics_t
      $ profile_out_t)

(* --- record / replay ------------------------------------------------------ *)

let record_cmd =
  let run scenario seed hour hours cycle_s out =
    let config =
      S.Engine.make_config ~cycle_s ~duration_s:(hours * 3600)
        ~start_s:(hour * 3600) ~controller_enabled:false ~seed ()
    in
    let engine = S.Engine.create ~config scenario in
    let snapshots = ref [] in
    for _ = 1 to hours * 3600 / cycle_s do
      ignore (S.Engine.step engine);
      snapshots := S.Engine.snapshot_now engine :: !snapshots
    done;
    let snapshots = List.rev !snapshots in
    C.Trace.save out snapshots;
    Printf.printf "recorded %d snapshots to %s
" (List.length snapshots) out
  in
  let hours_t =
    Arg.(value & opt int 1 & info [ "hours" ] ~docv:"H" ~doc:"Window length.")
  in
  let cycle_t =
    Arg.(value & opt int 300 & info [ "cycle" ] ~docv:"SEC" ~doc:"Snapshot period.")
  in
  let out_t =
    Arg.(
      value & opt string "trace.txt"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Trace file to write.")
  in
  Cmd.v
    (Cmd.info "record" ~doc:"Record controller-input snapshots to a trace file.")
    Term.(const run $ scenario_t $ seed_t $ hour_t $ hours_t $ cycle_t $ out_t)

let replay_cmd =
  let run file threshold metrics =
    match C.Trace.load file with
    | Error msg -> `Error (false, msg)
    | Ok snapshots ->
        let config = Ef.Config.make ~overload_threshold:threshold () in
        let ctrl = Ef.Controller.create ~config ~name:"replay" () in
        Printf.printf "%-9s %-10s %-11s %-9s %-9s %s\n" "time" "prefixes"
          "overloaded" "overrides" "detoured" "residual";
        List.iter
          (fun snapshot ->
            let stats = Ef.Controller.cycle ctrl snapshot in
            Printf.printf "%-9s %-10d %-11d %-9d %-9s %d\n"
              (Format.asprintf "%a" Ef_util.Units.pp_time_of_day
                 (Ef.Controller.time_s stats))
              (C.Snapshot.prefix_count snapshot)
              (List.length (Ef.Controller.overloaded_before stats))
              (List.length (Ef.Controller.overrides_enforced stats))
              (Format.asprintf "%a" Ef_util.Units.pp_percent
                 (Ef.Controller.detour_fraction stats))
              (List.length (Ef.Controller.residual_overloads stats)))
          snapshots;
        print_metrics metrics;
        `Ok ()
  in
  let file_t =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Trace file.")
  in
  let threshold_t =
    Arg.(
      value & opt float 0.95
      & info [ "threshold" ] ~docv:"T" ~doc:"Overload threshold to replay with.")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Replay a recorded trace through a (possibly reconfigured) controller.")
    Term.(ret (const run $ file_t $ threshold_t $ metrics_t))

(* efctl policy NAME|FILE: inspect a program — pretty-print it, show its
   allocator-side denotation in a scenario's world, optionally the
   compiled route-map, optionally write canonical JSON *)
let policy_cmd =
  let run name_or_file scenario compile out =
    match resolve_policy (Some name_or_file) with
    | None -> assert false (* resolve_policy exits on failure *)
    | Some prog ->
        Format.printf "%a@." Ef_policy.pp_program prog;
        let world = N.Topo_gen.generate scenario.N.Scenario.topo in
        let env = N.Topo_gen.policy_env world in
        let ap = Ef_policy.alloc_params env prog.Ef_policy.program_policy in
        Format.printf "@[<v 2>allocator/perf knobs in %s:@ %a@]@."
          scenario.N.Scenario.scenario_name Ef_policy.pp_alloc_params ap;
        if compile then begin
          let map = Ef_policy.Compile.program_route_map env prog in
          Format.printf "@[<v 2>compiled route-map:@ %a@]@." Bgp.Policy.pp map
        end;
        (match out with
        | None -> ()
        | Some path -> (
            match Ef_policy.Codec.save path prog with
            | () -> Printf.printf "wrote policy JSON to %s\n" path
            | exception Sys_error msg ->
                Printf.eprintf "efctl: cannot write %s: %s\n" path msg;
                exit 1));
        `Ok ()
  in
  let name_t =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME|FILE"
          ~doc:"Canned program name (see $(b,scenarios)) or policy JSON file.")
  in
  let compile_t =
    Arg.(
      value & flag
      & info [ "compile" ]
          ~doc:"Also print the route-map the program compiles to.")
  in
  let out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write the program as canonical policy JSON to $(docv).")
  in
  Cmd.v
    (Cmd.info "policy"
       ~doc:"Inspect an Ef_policy program (and what it compiles to).")
    Term.(ret (const run $ name_t $ scenario_t $ compile_t $ out_t))

let () =
  let doc = "Edge Fabric: egress traffic engineering, reproduced in OCaml" in
  let info = Cmd.info "efctl" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info [ scenarios_cmd; world_cmd; cycle_cmd; run_cmd; health_cmd; explain_cmd; top_cmd; experiment_cmd; record_cmd; replay_cmd; fleet_cmd; dump_cmd; topo_cmd; policy_cmd ]))
