(* Integration: a PoP's routing state built purely from wire bytes.

   The generator fills a Pop's RIB directly. Here we rebuild the same
   state the way a real peering router gets it — one BGP session per
   neighbor, OPEN/KEEPALIVE handshakes, and every route arriving as an
   encoded UPDATE — and check the result is identical. Then we tear a
   session down and check the controller's view reacts like a real
   router's would. *)

module Bgp = Ef_bgp
module N = Ef_netsim
open Helpers

let world = lazy (N.Topo_gen.generate N.Topo_gen.small_config)

(* one sans-IO speaker acting as the PR, with a session per neighbor; the
   "neighbors" here are synthesized wire-side by encoding messages
   directly *)
let build_wire_router () =
  let w = Lazy.force world in
  let pop = w.N.Topo_gen.pop in
  let router =
    Bgp.Speaker.create ~asn:(N.Pop.asn pop) ~router_id:(ip "10.0.0.1") ()
  in
  let policy = Ef_policy.standard_import_map ~self_asn:(N.Pop.asn pop) in
  List.iter (fun peer -> Bgp.Speaker.add_session router peer ~policy) (N.Pop.peers pop);
  (w, pop, router)

(* drive one session to Established by feeding the peer's wire bytes *)
let establish router (peer : Bgp.Peer.t) =
  let peer_id = Bgp.Peer.id peer in
  ignore (Bgp.Speaker.start router ~peer_id);
  ignore (Bgp.Speaker.tcp_connected router ~peer_id);
  let open_msg =
    Bgp.Codec.encode
      (Bgp.Msg.make_open ~asn:(Bgp.Peer.asn peer) ~bgp_id:peer.Bgp.Peer.router_id ())
  in
  ignore (Bgp.Speaker.receive_bytes router ~peer_id open_msg);
  ignore
    (Bgp.Speaker.receive_bytes router ~peer_id (Bgp.Codec.encode Bgp.Msg.Keepalive));
  match Bgp.Speaker.session_state router ~peer_id with
  | Some Bgp.Fsm.Established -> ()
  | s ->
      Alcotest.failf "peer %d stuck in %s" peer_id
        (match s with
        | Some st -> Bgp.Fsm.state_to_string st
        | None -> "?")

let feed_routes pop router =
  let rib = N.Pop.rib pop in
  List.iter
    (fun peer ->
      let peer_id = Bgp.Peer.id peer in
      List.iter
        (fun (prefix, attrs) ->
          (* strip the local-policy attributes: on the wire the neighbor
             sends its raw announcement (adj-rib-in is pre-policy) *)
          let update =
            Bgp.Msg.Update
              { Bgp.Msg.withdrawn = []; attrs = Some attrs; nlri = [ prefix ] }
          in
          ignore
            (Bgp.Speaker.receive_bytes router ~peer_id (Bgp.Codec.encode update)))
        (Bgp.Rib.adj_rib_in rib ~peer_id))
    (N.Pop.peers pop)

let test_wire_rebuild_matches () =
  let w, pop, router = build_wire_router () in
  List.iter (establish router) (N.Pop.peers pop);
  Alcotest.(check int) "all sessions up"
    (List.length (N.Pop.peers pop))
    (List.length (Bgp.Speaker.established_peers router));
  feed_routes pop router;
  let original = N.Pop.rib pop and rebuilt = Bgp.Speaker.rib router in
  Alcotest.(check int) "same prefixes" (Bgp.Rib.prefix_count original)
    (Bgp.Rib.prefix_count rebuilt);
  Alcotest.(check int) "same routes" (Bgp.Rib.route_count original)
    (Bgp.Rib.route_count rebuilt);
  List.iter
    (fun p ->
      let orig_ranked = List.map Bgp.Route.peer_id (Bgp.Rib.ranked original p) in
      let got_ranked = List.map Bgp.Route.peer_id (Bgp.Rib.ranked rebuilt p) in
      Alcotest.(check (list int))
        (Bgp.Prefix.to_string p)
        orig_ranked got_ranked)
    w.N.Topo_gen.all_prefixes

let test_wire_session_loss_reroutes () =
  let w, pop, router = build_wire_router () in
  List.iter (establish router) (N.Pop.peers pop);
  feed_routes pop router;
  (* kill the first private peer's transport *)
  let victim =
    List.find
      (fun p -> Bgp.Peer.kind p = Bgp.Peer.Private_peer)
      (N.Pop.peers pop)
  in
  let affected =
    List.filter
      (fun p ->
        match Bgp.Rib.best (Bgp.Speaker.rib router) p with
        | Some r -> Bgp.Route.peer_id r = Bgp.Peer.id victim
        | None -> false)
      w.N.Topo_gen.all_prefixes
  in
  Alcotest.(check bool) "victim carried prefixes" true (affected <> []);
  let effects = Bgp.Speaker.tcp_closed router ~peer_id:(Bgp.Peer.id victim) in
  Alcotest.(check bool) "rib change reported" true
    (List.exists
       (function Bgp.Speaker.Rib_changed _ -> true | _ -> false)
       effects);
  (* every affected prefix fails over to another candidate, never void *)
  List.iter
    (fun p ->
      match Bgp.Rib.best (Bgp.Speaker.rib router) p with
      | None -> Alcotest.failf "%s lost all routes" (Bgp.Prefix.to_string p)
      | Some r ->
          Alcotest.(check bool) "rerouted away" true
            (Bgp.Route.peer_id r <> Bgp.Peer.id victim))
    affected

let test_wire_notification_drops_peer_routes () =
  let _, pop, router = build_wire_router () in
  List.iter (establish router) (N.Pop.peers pop);
  feed_routes pop router;
  let peer = List.hd (N.Pop.peers pop) in
  let peer_id = Bgp.Peer.id peer in
  let before = List.length (Bgp.Rib.adj_rib_in (Bgp.Speaker.rib router) ~peer_id) in
  Alcotest.(check bool) "peer had routes" true (before > 0);
  ignore
    (Bgp.Speaker.receive_bytes router ~peer_id
       (Bgp.Codec.encode (Bgp.Msg.cease ())));
  Alcotest.(check int) "flushed" 0
    (List.length (Bgp.Rib.adj_rib_in (Bgp.Speaker.rib router) ~peer_id));
  Alcotest.(check (option string)) "session idle" (Some "Idle")
    (Option.map Bgp.Fsm.state_to_string (Bgp.Speaker.session_state router ~peer_id))

let suite =
  [
    Alcotest.test_case "wire rebuild matches" `Quick test_wire_rebuild_matches;
    Alcotest.test_case "wire session loss reroutes" `Quick
      test_wire_session_loss_reroutes;
    Alcotest.test_case "wire notification flush" `Quick
      test_wire_notification_drops_peer_routes;
  ]
