(* ef_altpath: Dscp, Path_store, Measurer, Perf_policy *)

module Bgp = Ef_bgp
module N = Ef_netsim
module C = Ef_collector
module A = Ef_altpath
open Helpers

let test_dscp_levels () =
  Alcotest.(check bool) "level 0" true
    (A.Dscp.of_preference_level 0 = Some A.Dscp.default);
  Alcotest.(check bool) "level 1" true (A.Dscp.of_preference_level 1 = Some A.Dscp.alt1);
  Alcotest.(check bool) "level 4 unmeasurable" true
    (A.Dscp.of_preference_level 4 = None);
  List.iteri
    (fun i d ->
      Alcotest.(check (option int)) "roundtrip" (Some (i + 1))
        (A.Dscp.to_preference_level d))
    A.Dscp.all_alternates;
  Alcotest.(check bool) "of_int validates" true (A.Dscp.of_int 99 = None)

let test_path_store_median () =
  let store = A.Path_store.create () in
  let p = prefix "10.0.0.0/24" in
  List.iter
    (fun rtt -> A.Path_store.observe store ~prefix:p ~peer_id:1 ~rtt_ms:rtt)
    [ 10.0; 30.0; 20.0 ];
  Alcotest.(check (option (float 1e-9))) "median" (Some 20.0)
    (A.Path_store.median_rtt_ms store ~prefix:p ~peer_id:1);
  Alcotest.(check int) "count" 3 (A.Path_store.sample_count store ~prefix:p ~peer_id:1);
  Alcotest.(check (option (float 1e-9))) "unknown path" None
    (A.Path_store.median_rtt_ms store ~prefix:p ~peer_id:2)

let test_path_store_window_eviction () =
  let store = A.Path_store.create ~window:4 () in
  let p = prefix "10.0.0.0/24" in
  (* old high samples roll out of the window *)
  List.iter
    (fun rtt -> A.Path_store.observe store ~prefix:p ~peer_id:1 ~rtt_ms:rtt)
    [ 100.0; 100.0; 100.0; 100.0; 10.0; 10.0; 10.0; 10.0 ];
  Alcotest.(check (option (float 1e-9))) "only recent" (Some 10.0)
    (A.Path_store.median_rtt_ms store ~prefix:p ~peer_id:1);
  Alcotest.(check int) "window bound" 4
    (A.Path_store.sample_count store ~prefix:p ~peer_id:1)

let test_path_store_compare () =
  let store = A.Path_store.create () in
  let p = prefix "10.0.0.0/24" in
  List.iter
    (fun (peer, rtt) -> A.Path_store.observe store ~prefix:p ~peer_id:peer ~rtt_ms:rtt)
    [ (0, 50.0); (1, 40.0); (2, 80.0) ];
  match A.Path_store.compare_paths store ~prefix:p ~primary:0 ~alternates:[ 1; 2 ] with
  | None -> Alcotest.fail "no comparison"
  | Some cmp ->
      Alcotest.(check int) "best alt" 1 cmp.A.Path_store.best_alt_peer;
      Helpers.check_float "delta" (-10.0) cmp.A.Path_store.delta_ms

let test_path_store_compare_needs_data () =
  let store = A.Path_store.create () in
  let p = prefix "10.0.0.0/24" in
  A.Path_store.observe store ~prefix:p ~peer_id:0 ~rtt_ms:10.0;
  Alcotest.(check bool) "no alternates measured" true
    (Option.is_none
       (A.Path_store.compare_paths store ~prefix:p ~primary:0 ~alternates:[ 1 ]))

let test_path_store_clear () =
  let store = A.Path_store.create () in
  let p = prefix "10.0.0.0/24" in
  A.Path_store.observe store ~prefix:p ~peer_id:0 ~rtt_ms:10.0;
  A.Path_store.observe store ~prefix:p ~peer_id:1 ~rtt_ms:10.0;
  Alcotest.(check int) "two paths" 2 (A.Path_store.paths_measured store);
  A.Path_store.clear_prefix store p;
  Alcotest.(check int) "cleared" 0 (A.Path_store.paths_measured store)

(* --- Measurer over the tiny world ------------------------------------- *)

let world = lazy (N.Topo_gen.generate N.Topo_gen.small_config)

let snapshot_of_world () = Gen.snapshot_of_world (Lazy.force world)

let latency_of_world () =
  let w = Lazy.force world in
  N.Latency.create
    ~pop_region:(N.Pop.region w.N.Topo_gen.pop)
    ~origin_region:w.N.Topo_gen.origin_region ~seed:5

let test_measurer_collects_samples () =
  let m =
    A.Measurer.create
      ~config:
        {
          A.Measurer.prefixes_per_cycle = 10;
          samples_per_path = 4;
          max_levels = 3;
          sliver_fraction = 0.01;
        }
      ~seed:3 ()
  in
  let snap = snapshot_of_world () in
  let report =
    A.Measurer.cycle m snap ~latency:(latency_of_world ()) ~utilization:(fun _ -> 0.5)
  in
  Alcotest.(check bool) "measured prefixes" true (report.A.Measurer.measured_prefixes <> []);
  Alcotest.(check bool) "took samples" true (report.A.Measurer.samples_taken > 0);
  Alcotest.(check bool) "sliver is small" true
    (report.A.Measurer.diverted_bps < 0.05 *. C.Snapshot.total_rate_bps snap);
  Alcotest.(check bool) "store populated" true
    (A.Path_store.paths_measured (A.Measurer.store m) > 0)

let test_measurer_comparisons_available () =
  let m = A.Measurer.create ~seed:4 () in
  let snap = snapshot_of_world () in
  (* several cycles so most prefixes get both primary and alternates *)
  for _ = 1 to 5 do
    ignore
      (A.Measurer.cycle m snap ~latency:(latency_of_world ())
         ~utilization:(fun _ -> 0.2))
  done;
  let comparisons = A.Measurer.comparisons m snap in
  Alcotest.(check bool) "some comparisons" true (comparisons <> []);
  List.iter
    (fun c ->
      Alcotest.(check bool) "medians positive" true
        (c.A.Path_store.primary_median_ms > 0.0
        && c.A.Path_store.best_alt_median_ms > 0.0))
    comparisons

let test_measurer_congestion_visible () =
  (* the same path measured under congestion shows a higher RTT *)
  let w = Lazy.force world in
  let snap = snapshot_of_world () in
  let latency = latency_of_world () in
  let m1 = A.Measurer.create ~seed:7 () in
  let m2 = A.Measurer.create ~seed:7 () in
  ignore (A.Measurer.cycle m1 snap ~latency ~utilization:(fun _ -> 0.2));
  ignore (A.Measurer.cycle m2 snap ~latency ~utilization:(fun _ -> 1.15));
  (* pick any prefix measured by both *)
  let p =
    List.find
      (fun p ->
        A.Path_store.sample_count (A.Measurer.store m1) ~prefix:p ~peer_id:0 > 0
        && A.Path_store.sample_count (A.Measurer.store m2) ~prefix:p ~peer_id:0 > 0)
      w.N.Topo_gen.all_prefixes
  in
  match
    ( A.Path_store.median_rtt_ms (A.Measurer.store m1) ~prefix:p ~peer_id:0,
      A.Path_store.median_rtt_ms (A.Measurer.store m2) ~prefix:p ~peer_id:0 )
  with
  | Some calm, Some congested ->
      Alcotest.(check bool) "congestion inflates" true (congested > calm +. 50.0)
  | _ -> Alcotest.fail "missing medians"

(* --- Perf_policy -------------------------------------------------------- *)

let test_perf_policy_suggests_better_path () =
  let fx = Test_core.fixture () in
  let snap = Test_core.snapshot fx [ (Test_core.pfx_a, 1e9) ] in
  let store = A.Path_store.create () in
  (* private (peer 0) is the primary but measures slow; public (peer 1)
     measures 30ms faster *)
  List.iter
    (fun (peer, rtt) ->
      A.Path_store.observe store ~prefix:Test_core.pfx_a ~peer_id:peer ~rtt_ms:rtt)
    [ (0, 80.0); (0, 82.0); (1, 50.0); (1, 52.0); (2, 90.0) ];
  let projection = Edge_fabric.Projection.project snap in
  let suggestions = A.Perf_policy.suggest store snap ~projection in
  (match suggestions with
  | [ s ] ->
      Alcotest.check prefix_t "prefix" Test_core.pfx_a s.A.Perf_policy.sug_prefix;
      Alcotest.(check int) "target is public" 1
        (Bgp.Route.peer_id s.A.Perf_policy.sug_target);
      Alcotest.(check bool) "improvement ~30ms" true
        (s.A.Perf_policy.improvement_ms > 25.0)
  | l -> Alcotest.failf "expected one suggestion, got %d" (List.length l));
  let overrides = A.Perf_policy.to_overrides suggestions ~snapshot:snap ~projection in
  match overrides with
  | [ o ] ->
      Alcotest.(check int) "level" 1 o.Edge_fabric.Override.preference_level;
      Alcotest.(check int) "to public iface"
        (N.Iface.id fx.Test_core.iface_public)
        o.Edge_fabric.Override.to_iface
  | l -> Alcotest.failf "expected one override, got %d" (List.length l)

let test_perf_policy_respects_tolerance () =
  let fx = Test_core.fixture () in
  let snap = Test_core.snapshot fx [ (Test_core.pfx_a, 1e9) ] in
  let store = A.Path_store.create () in
  (* alternate only 3ms better: below the 10ms bar *)
  List.iter
    (fun (peer, rtt) ->
      A.Path_store.observe store ~prefix:Test_core.pfx_a ~peer_id:peer ~rtt_ms:rtt)
    [ (0, 50.0); (1, 47.0) ];
  let projection = Edge_fabric.Projection.project snap in
  Alcotest.(check int) "no suggestion" 0
    (List.length (A.Perf_policy.suggest store snap ~projection))

let test_perf_policy_capacity_guard () =
  let fx = Test_core.fixture () in
  (* public port is nearly full: even a much faster path is not suggested *)
  let rib = N.Pop.rib fx.Test_core.pop in
  let bg = prefix "10.9.0.0/16" in
  ignore
    (Bgp.Rib.announce rib ~peer_id:1 bg
       (attrs ~path:[ 200; 900 ] ~next_hop:"172.16.0.1" ()));
  let snap = Test_core.snapshot fx [ (Test_core.pfx_a, 2e9); (bg, 8.4e9) ] in
  let store = A.Path_store.create () in
  List.iter
    (fun (peer, rtt) ->
      A.Path_store.observe store ~prefix:Test_core.pfx_a ~peer_id:peer ~rtt_ms:rtt)
    [ (0, 80.0); (1, 40.0) ];
  let projection = Edge_fabric.Projection.project snap in
  Alcotest.(check int) "guarded" 0
    (List.length (A.Perf_policy.suggest store snap ~projection))

let suite =
  [
    Alcotest.test_case "dscp levels" `Quick test_dscp_levels;
    Alcotest.test_case "path store median" `Quick test_path_store_median;
    Alcotest.test_case "path store window" `Quick test_path_store_window_eviction;
    Alcotest.test_case "path store compare" `Quick test_path_store_compare;
    Alcotest.test_case "path store needs data" `Quick
      test_path_store_compare_needs_data;
    Alcotest.test_case "path store clear" `Quick test_path_store_clear;
    Alcotest.test_case "measurer collects" `Quick test_measurer_collects_samples;
    Alcotest.test_case "measurer comparisons" `Quick
      test_measurer_comparisons_available;
    Alcotest.test_case "measurer sees congestion" `Quick
      test_measurer_congestion_visible;
    Alcotest.test_case "perf policy suggests" `Quick
      test_perf_policy_suggests_better_path;
    Alcotest.test_case "perf policy tolerance" `Quick
      test_perf_policy_respects_tolerance;
    Alcotest.test_case "perf policy capacity guard" `Quick
      test_perf_policy_capacity_guard;
  ]
