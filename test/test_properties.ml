(* Cross-module property tests: invariants on randomized inputs over the
   generated tiny world. *)

module Bgp = Ef_bgp
module N = Ef_netsim
module C = Ef_collector
module Ef = Edge_fabric

let world = lazy (N.Topo_gen.generate N.Topo_gen.small_config)

(* random rate vectors over the world's prefixes *)
let gen_rates =
  QCheck.Gen.(
    let w = Lazy.force world in
    let prefixes = Array.of_list w.N.Topo_gen.all_prefixes in
    map
      (fun pairs ->
        let tbl = Hashtbl.create 16 in
        List.iter
          (fun (i, r) ->
            let p = prefixes.(i mod Array.length prefixes) in
            Hashtbl.replace tbl (Bgp.Prefix.to_string p)
              (p, float_of_int (r + 1) *. 1e7))
          pairs;
        Hashtbl.fold (fun _ v acc -> v :: acc) tbl [])
      (list_size (int_range 1 40) (pair small_nat (int_bound 2000))))

let arb_rates =
  QCheck.make
    ~print:(fun rates ->
      String.concat ";"
        (List.map
           (fun (p, r) -> Printf.sprintf "%s=%.0f" (Bgp.Prefix.to_string p) r)
           rates))
    gen_rates

let snapshot_of rates =
  C.Snapshot.of_pop (Lazy.force world).N.Topo_gen.pop ~prefix_rates:rates
    ~time_s:0

(* --- Projection: traffic conservation --------------------------------- *)

let prop_projection_conserves =
  QCheck.Test.make ~name:"projection conserves traffic" ~count:100 arb_rates
    (fun rates ->
      let proj = Ef.Projection.project (snapshot_of rates) in
      let placed =
        List.fold_left
          (fun acc iface ->
            acc +. Ef.Projection.load_bps proj ~iface_id:(N.Iface.id iface))
          0.0 (Ef.Projection.ifaces proj)
      in
      let total = List.fold_left (fun acc (_, r) -> acc +. r) 0.0 rates in
      Float.abs (placed +. Ef.Projection.unroutable_bps proj -. total)
      < 1.0 +. (1e-9 *. total))

let prop_projection_move_conserves =
  QCheck.Test.make ~name:"projection move conserves" ~count:100 arb_rates
    (fun rates ->
      let snap = snapshot_of rates in
      let proj = Ef.Projection.project snap in
      let sum p =
        List.fold_left
          (fun acc iface ->
            acc +. Ef.Projection.load_bps p ~iface_id:(N.Iface.id iface))
          0.0 (Ef.Projection.ifaces p)
      in
      (* move every movable placement to its 2nd choice and re-check *)
      let moved =
        List.fold_left
          (fun proj pl ->
            match C.Snapshot.routes snap pl.Ef.Projection.placed_prefix with
            | _ :: alt :: _ -> (
                match C.Snapshot.iface_of_route snap alt with
                | Some iface when N.Iface.id iface <> pl.Ef.Projection.iface_id ->
                    Ef.Projection.move proj pl.Ef.Projection.placed_prefix
                      ~to_route:alt ~to_iface:(N.Iface.id iface)
                | Some _ | None -> proj)
            | _ -> proj)
          proj (Ef.Projection.placements proj)
      in
      Float.abs (sum moved -. sum proj) < 1.0)

(* --- Allocator + Guard -------------------------------------------------- *)

let prop_guard_clamp_respects_budgets =
  QCheck.Test.make ~name:"guard clamp lands within budgets" ~count:100
    QCheck.(pair arb_rates (pair (int_range 0 10) (int_bound 100)))
    (fun (rates, (max_n, frac_pct)) ->
      let snap = snapshot_of rates in
      let result = Ef.Allocator.run ~config:Ef.Config.default snap in
      let config =
        {
          Ef.Guard.default with
          Ef.Guard.max_overrides = Some max_n;
          max_detour_fraction = Some (float_of_int frac_pct /. 100.0);
        }
      in
      let kept, dropped = Ef.Guard.clamp config snap result.Ef.Allocator.overrides in
      let count_ok = List.length kept <= max_n in
      let permutation_ok =
        List.length kept + List.length dropped
        = List.length result.Ef.Allocator.overrides
      in
      (* fraction budget holds whenever anything was kept *)
      let total = C.Snapshot.total_rate_bps snap in
      let kept_frac =
        if total <= 0.0 then 0.0
        else
          List.fold_left
            (fun acc (o : Ef.Override.t) ->
              acc +. C.Snapshot.rate_of snap o.Ef.Override.prefix)
            0.0 kept
          /. total
      in
      count_ok && permutation_ok
      && (kept = [] || kept_frac <= (float_of_int frac_pct /. 100.0) +. 1e-9))

let prop_allocator_overrides_unique_prefixes =
  QCheck.Test.make ~name:"allocator overrides are per-prefix unique" ~count:100
    arb_rates
    (fun rates ->
      let result = Ef.Allocator.run ~config:Ef.Config.default (snapshot_of rates) in
      let keys =
        List.map
          (fun (o : Ef.Override.t) -> Bgp.Prefix.to_string o.Ef.Override.prefix)
          result.Ef.Allocator.overrides
      in
      List.length keys = List.length (List.sort_uniq compare keys))

(* --- Hysteresis --------------------------------------------------------- *)

let prop_hysteresis_never_early_release =
  QCheck.Test.make ~name:"hysteresis holds min_hold" ~count:100
    QCheck.(pair arb_rates (int_range 1 10))
    (fun (rates, steps) ->
      let snap = snapshot_of rates in
      let result = Ef.Allocator.run ~config:Ef.Config.default snap in
      QCheck.assume (result.Ef.Allocator.overrides <> []);
      let config = Ef.Config.make ~min_hold_s:10_000 () in
      let h = Ef.Hysteresis.create config in
      ignore
        (Ef.Hysteresis.step h ~time_s:0 ~desired:result.Ef.Allocator.overrides
           ~preferred:result.Ef.Allocator.before);
      (* repeatedly ask for release way before maturity *)
      let ok = ref true in
      for i = 1 to steps do
        let r =
          Ef.Hysteresis.step h ~time_s:(i * 30) ~desired:[]
            ~preferred:result.Ef.Allocator.before
        in
        if r.Ef.Hysteresis.removed <> [] then ok := false
      done;
      !ok)

let prop_hysteresis_tracks_when_disabled =
  QCheck.Test.make ~name:"disabled hysteresis mirrors allocator" ~count:100
    arb_rates
    (fun rates ->
      let snap = snapshot_of rates in
      let result = Ef.Allocator.run ~config:Ef.Config.default snap in
      let config =
        Ef.Config.make ~min_hold_s:0 ~release_margin:0.0 ()
      in
      let h = Ef.Hysteresis.create config in
      let r1 =
        Ef.Hysteresis.step h ~time_s:0 ~desired:result.Ef.Allocator.overrides
          ~preferred:result.Ef.Allocator.before
      in
      List.length r1.Ef.Hysteresis.active
      = List.length result.Ef.Allocator.overrides)

(* --- Trace ---------------------------------------------------------------- *)

let prop_trace_roundtrip =
  QCheck.Test.make ~name:"trace roundtrips random snapshots" ~count:50 arb_rates
    (fun rates ->
      let snap = snapshot_of rates in
      match C.Trace.parse (C.Trace.record snap) with
      | Error _ -> false
      | Ok replayed ->
          C.Snapshot.prefix_count snap = C.Snapshot.prefix_count replayed
          && List.for_all2
               (fun (p1, r1) (p2, r2) ->
                 Bgp.Prefix.equal p1 p2 && Float.abs (r1 -. r2) < 0.01)
               (C.Snapshot.prefix_rates snap)
               (C.Snapshot.prefix_rates replayed)
          && List.for_all
               (fun (p, _) ->
                 List.map Bgp.Route.peer_id (C.Snapshot.routes snap p)
                 = List.map Bgp.Route.peer_id (C.Snapshot.routes replayed p))
               (C.Snapshot.prefix_rates snap))

(* --- Controller end-to-end ----------------------------------------------- *)

let prop_controller_enforced_within_thresholds =
  QCheck.Test.make ~name:"controller leaves no fixable overload" ~count:60
    arb_rates
    (fun rates ->
      let snap = snapshot_of rates in
      let ctrl = Ef.Controller.create ~name:"prop" () in
      let stats = Ef.Controller.cycle ctrl snap in
      (* every interface still over threshold after enforcement must be a
         declared residual (capacity genuinely exhausted) *)
      let residual_ids =
        List.map
          (fun (i, _) -> N.Iface.id i)
          stats.Ef.Controller.allocator.Ef.Allocator.residual
      in
      List.for_all
        (fun (iface, _) -> List.mem (N.Iface.id iface) residual_ids)
        stats.Ef.Controller.overloaded_after)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_projection_conserves;
      prop_projection_move_conserves;
      prop_guard_clamp_respects_budgets;
      prop_allocator_overrides_unique_prefixes;
      prop_hysteresis_never_early_release;
      prop_hysteresis_tracks_when_disabled;
      prop_trace_roundtrip;
      prop_controller_enforced_within_thresholds;
    ]
