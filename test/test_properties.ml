(* Cross-module property tests: invariants on randomized inputs over the
   generated tiny world. *)

module Bgp = Ef_bgp
module N = Ef_netsim
module C = Ef_collector
module Ef = Edge_fabric

let world = lazy (N.Topo_gen.generate N.Topo_gen.small_config)

(* random rate vectors over the world's prefixes *)
let gen_rates =
  QCheck.Gen.(
    let w = Lazy.force world in
    let prefixes = Array.of_list w.N.Topo_gen.all_prefixes in
    map
      (fun pairs ->
        let tbl = Hashtbl.create 16 in
        List.iter
          (fun (i, r) ->
            let p = prefixes.(i mod Array.length prefixes) in
            Hashtbl.replace tbl (Bgp.Prefix.to_string p)
              (p, float_of_int (r + 1) *. 1e7))
          pairs;
        Hashtbl.fold (fun _ v acc -> v :: acc) tbl [])
      (list_size (int_range 1 40) (pair small_nat (int_bound 2000))))

let arb_rates =
  QCheck.make
    ~print:(fun rates ->
      String.concat ";"
        (List.map
           (fun (p, r) -> Printf.sprintf "%s=%.0f" (Bgp.Prefix.to_string p) r)
           rates))
    gen_rates

let snapshot_of rates =
  C.Snapshot.of_pop (Lazy.force world).N.Topo_gen.pop ~prefix_rates:rates
    ~time_s:0

(* --- Projection: traffic conservation --------------------------------- *)

let prop_projection_conserves =
  QCheck.Test.make ~name:"projection conserves traffic" ~count:100 arb_rates
    (fun rates ->
      let proj = Ef.Projection.project (snapshot_of rates) in
      let placed =
        List.fold_left
          (fun acc iface ->
            acc +. Ef.Projection.load_bps proj ~iface_id:(N.Iface.id iface))
          0.0 (Ef.Projection.ifaces proj)
      in
      let total = List.fold_left (fun acc (_, r) -> acc +. r) 0.0 rates in
      Float.abs (placed +. Ef.Projection.unroutable_bps proj -. total)
      < 1.0 +. (1e-9 *. total))

let prop_projection_move_conserves =
  QCheck.Test.make ~name:"projection move conserves" ~count:100 arb_rates
    (fun rates ->
      let snap = snapshot_of rates in
      let proj = Ef.Projection.project snap in
      let sum p =
        List.fold_left
          (fun acc iface ->
            acc +. Ef.Projection.load_bps p ~iface_id:(N.Iface.id iface))
          0.0 (Ef.Projection.ifaces p)
      in
      (* move every movable placement to its 2nd choice and re-check *)
      let moved =
        List.fold_left
          (fun proj pl ->
            match C.Snapshot.routes snap pl.Ef.Projection.placed_prefix with
            | _ :: alt :: _ -> (
                match C.Snapshot.iface_of_route snap alt with
                | Some iface when N.Iface.id iface <> pl.Ef.Projection.iface_id ->
                    Ef.Projection.move proj pl.Ef.Projection.placed_prefix
                      ~to_route:alt ~to_iface:(N.Iface.id iface)
                | Some _ | None -> proj)
            | _ -> proj)
          proj (Ef.Projection.placements proj)
      in
      Float.abs (sum moved -. sum proj) < 1.0)

(* --- Allocator + Guard -------------------------------------------------- *)

let prop_guard_clamp_respects_budgets =
  QCheck.Test.make ~name:"guard clamp lands within budgets" ~count:100
    QCheck.(pair arb_rates (pair (int_range 0 10) (int_bound 100)))
    (fun (rates, (max_n, frac_pct)) ->
      let snap = snapshot_of rates in
      let result = Ef.Allocator.run ~config:Ef.Config.default snap in
      let config =
        {
          Ef.Guard.default with
          Ef.Guard.max_overrides = Some max_n;
          max_detour_fraction = Some (float_of_int frac_pct /. 100.0);
        }
      in
      let kept, dropped = Ef.Guard.clamp config snap result.Ef.Allocator.overrides in
      let count_ok = List.length kept <= max_n in
      let permutation_ok =
        List.length kept + List.length dropped
        = List.length result.Ef.Allocator.overrides
      in
      (* fraction budget holds whenever anything was kept *)
      let total = C.Snapshot.total_rate_bps snap in
      let kept_frac =
        if total <= 0.0 then 0.0
        else
          List.fold_left
            (fun acc (o : Ef.Override.t) ->
              acc +. C.Snapshot.rate_of snap o.Ef.Override.prefix)
            0.0 kept
          /. total
      in
      count_ok && permutation_ok
      && (kept = [] || kept_frac <= (float_of_int frac_pct /. 100.0) +. 1e-9))

let prop_allocator_overrides_unique_prefixes =
  QCheck.Test.make ~name:"allocator overrides are per-prefix unique" ~count:100
    arb_rates
    (fun rates ->
      let result = Ef.Allocator.run ~config:Ef.Config.default (snapshot_of rates) in
      let keys =
        List.map
          (fun (o : Ef.Override.t) -> Bgp.Prefix.to_string o.Ef.Override.prefix)
          result.Ef.Allocator.overrides
      in
      List.length keys = List.length (List.sort_uniq compare keys))

(* --- Hysteresis --------------------------------------------------------- *)

let prop_hysteresis_never_early_release =
  QCheck.Test.make ~name:"hysteresis holds min_hold" ~count:100
    QCheck.(pair arb_rates (int_range 1 10))
    (fun (rates, steps) ->
      let snap = snapshot_of rates in
      let result = Ef.Allocator.run ~config:Ef.Config.default snap in
      QCheck.assume (result.Ef.Allocator.overrides <> []);
      let config = Ef.Config.make ~min_hold_s:10_000 () in
      let h = Ef.Hysteresis.create config in
      ignore
        (Ef.Hysteresis.step h ~time_s:0 ~desired:result.Ef.Allocator.overrides
           ~preferred:result.Ef.Allocator.before);
      (* repeatedly ask for release way before maturity *)
      let ok = ref true in
      for i = 1 to steps do
        let r =
          Ef.Hysteresis.step h ~time_s:(i * 30) ~desired:[]
            ~preferred:result.Ef.Allocator.before
        in
        if r.Ef.Hysteresis.removed <> [] then ok := false
      done;
      !ok)

let prop_hysteresis_tracks_when_disabled =
  QCheck.Test.make ~name:"disabled hysteresis mirrors allocator" ~count:100
    arb_rates
    (fun rates ->
      let snap = snapshot_of rates in
      let result = Ef.Allocator.run ~config:Ef.Config.default snap in
      let config =
        Ef.Config.make ~min_hold_s:0 ~release_margin:0.0 ()
      in
      let h = Ef.Hysteresis.create config in
      let r1 =
        Ef.Hysteresis.step h ~time_s:0 ~desired:result.Ef.Allocator.overrides
          ~preferred:result.Ef.Allocator.before
      in
      List.length r1.Ef.Hysteresis.active
      = List.length result.Ef.Allocator.overrides)

(* --- Trace ---------------------------------------------------------------- *)

let prop_trace_roundtrip =
  QCheck.Test.make ~name:"trace roundtrips random snapshots" ~count:50 arb_rates
    (fun rates ->
      let snap = snapshot_of rates in
      match C.Trace.parse (C.Trace.record snap) with
      | Error _ -> false
      | Ok replayed ->
          C.Snapshot.prefix_count snap = C.Snapshot.prefix_count replayed
          && List.for_all2
               (fun (p1, r1) (p2, r2) ->
                 Bgp.Prefix.equal p1 p2 && Float.abs (r1 -. r2) < 0.01)
               (C.Snapshot.prefix_rates snap)
               (C.Snapshot.prefix_rates replayed)
          && List.for_all
               (fun (p, _) ->
                 List.map Bgp.Route.peer_id (C.Snapshot.routes snap p)
                 = List.map Bgp.Route.peer_id (C.Snapshot.routes replayed p))
               (C.Snapshot.prefix_rates snap))

(* --- Controller end-to-end ----------------------------------------------- *)

let prop_controller_enforced_within_thresholds =
  QCheck.Test.make ~name:"controller leaves no fixable overload" ~count:60
    arb_rates
    (fun rates ->
      let snap = snapshot_of rates in
      let ctrl = Ef.Controller.create ~name:"prop" () in
      let stats = Ef.Controller.cycle ctrl snap in
      (* every interface still over threshold after enforcement must be a
         declared residual (capacity genuinely exhausted) *)
      let residual_ids =
        List.map
          (fun (i, _) -> N.Iface.id i)
          stats.Ef.Controller.allocator.Ef.Allocator.residual
      in
      List.for_all
        (fun (iface, _) -> List.mem (N.Iface.id iface) residual_ids)
        stats.Ef.Controller.overloaded_after)

(* --- wire-codec fuzz ----------------------------------------------------- *)

(* Deterministic Rng-driven fuzz (Ef_util.Rng, fixed seeds): round-trip
   decode∘encode = id for each codec, and totality — a decoder fed
   truncated or bit-flipped bytes returns an error, it never raises. *)

let fuzz_cases = 500

let rng_fuzz name f =
  Alcotest.test_case name `Quick (fun () ->
      let rng = Ef_util.Rng.create 0xF00D in
      for case = 1 to fuzz_cases do
        f rng ~case
      done)

let gen_ip rng = Bgp.Ipv4.of_int32 (Int32.of_int (Ef_util.Rng.int rng 0x3FFFFFFF))

let gen_prefix rng =
  Bgp.Prefix.make (gen_ip rng) (Ef_util.Rng.int rng 33)

let gen_attrs rng =
  let path =
    List.init
      (1 + Ef_util.Rng.int rng 5)
      (fun _ -> Bgp.Asn.of_int (1 + Ef_util.Rng.int rng 100_000))
  in
  Bgp.Attrs.make
    ~origin:(Ef_util.Rng.pick rng [| Bgp.Attrs.Igp; Bgp.Attrs.Egp; Bgp.Attrs.Incomplete |])
    ~med:(if Ef_util.Rng.bool rng then Some (Ef_util.Rng.int rng 10_000) else None)
    ~local_pref:
      (if Ef_util.Rng.bool rng then Some (Ef_util.Rng.int rng 1_000) else None)
    ~communities:
      (List.init (Ef_util.Rng.int rng 4) (fun _ ->
           Bgp.Community.make (Ef_util.Rng.int rng 65_536) (Ef_util.Rng.int rng 65_536)))
    ~as_path:(Bgp.As_path.of_list path)
    ~next_hop:(gen_ip rng) ()

let gen_bgp_update rng =
  let withdrawn = List.init (Ef_util.Rng.int rng 4) (fun _ -> gen_prefix rng) in
  let nlri = List.init (Ef_util.Rng.int rng 6) (fun _ -> gen_prefix rng) in
  if nlri = [] then Bgp.Msg.make_update ~withdrawn ()
  else Bgp.Msg.make_update ~withdrawn ~attrs:(gen_attrs rng) ~nlri ()

(* mutate one random bit of a wire image *)
let bit_flip rng s =
  if String.length s = 0 then s
  else begin
    let b = Bytes.of_string s in
    let i = Ef_util.Rng.int rng (Bytes.length b) in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Ef_util.Rng.int rng 8)));
    Bytes.to_string b
  end

let truncate rng s =
  if String.length s = 0 then s else String.sub s 0 (Ef_util.Rng.int rng (String.length s))

let fuzz_bgp_codec =
  rng_fuzz "bgp codec fuzz roundtrip (500)" (fun rng ~case ->
      let msg = gen_bgp_update rng in
      let wire = Bgp.Codec.encode msg in
      (match Bgp.Codec.decode wire with
      | Ok (decoded, consumed) ->
          if consumed <> String.length wire || not (Bgp.Msg.equal msg decoded)
          then
            Alcotest.failf "case %d: roundtrip mismatch for %s" case
              (Format.asprintf "%a" Bgp.Msg.pp msg)
      | Error e ->
          Alcotest.failf "case %d: decode of own encoding failed: %s" case
            (Bgp.Codec.error_to_string e));
      (* totality: truncations and bit flips produce Ok/Error, no raise *)
      (match Bgp.Codec.decode (truncate rng wire) with Ok _ | Error _ -> ());
      match Bgp.Codec.decode (bit_flip rng wire) with Ok _ | Error _ -> ())

let gen_sflow_datagram rng =
  let gen_sample () =
    {
      C.Sflow_codec.sample_seq = Ef_util.Rng.int rng 1_000_000;
      source_id = Ef_util.Rng.int rng 1_000;
      sampling_rate = 1 + Ef_util.Rng.int rng 10_000;
      sample_pool = Ef_util.Rng.int rng 10_000_000;
      drops = Ef_util.Rng.int rng 100;
      packet =
        {
          C.Sflow_codec.dst = gen_ip rng;
          frame_length = 20 + Ef_util.Rng.int rng 65_000;
        };
    }
  in
  {
    C.Sflow_codec.agent = gen_ip rng;
    sub_agent = Ef_util.Rng.int rng 16;
    datagram_seq = Ef_util.Rng.int rng 1_000_000;
    uptime_ms = Ef_util.Rng.int rng 1_000_000_000;
    samples =
      List.init
        (Ef_util.Rng.int rng (C.Sflow_codec.max_samples_per_datagram + 1))
        (fun _ -> gen_sample ());
  }

let fuzz_sflow_codec =
  rng_fuzz "sflow codec fuzz roundtrip (500)" (fun rng ~case ->
      let dg = gen_sflow_datagram rng in
      let wire = C.Sflow_codec.encode dg in
      (match C.Sflow_codec.decode wire with
      | Ok decoded ->
          if decoded <> dg then Alcotest.failf "case %d: datagram mismatch" case
      | Error e ->
          Alcotest.failf "case %d: decode of own encoding failed: %s" case
            (Format.asprintf "%a" C.Sflow_codec.pp_error e));
      (match C.Sflow_codec.decode (truncate rng wire) with
      | Ok _ | Error _ -> ());
      match C.Sflow_codec.decode (bit_flip rng wire) with Ok _ | Error _ -> ())

let gen_mrt rng =
  let peers =
    List.init
      (1 + Ef_util.Rng.int rng 5)
      (fun _ ->
        {
          Bgp.Mrt.peer_bgp_id = gen_ip rng;
          peer_addr = gen_ip rng;
          peer_asn = Bgp.Asn.of_int (1 + Ef_util.Rng.int rng 100_000);
        })
  in
  let n_peers = List.length peers in
  let records =
    List.init (Ef_util.Rng.int rng 8) (fun sequence ->
        {
          Bgp.Mrt.sequence;
          rib_prefix = gen_prefix rng;
          entries =
            List.init
              (1 + Ef_util.Rng.int rng 3)
              (fun _ ->
                {
                  Bgp.Mrt.entry_peer_index = Ef_util.Rng.int rng n_peers;
                  originated_at = Ef_util.Rng.int rng 1_000_000_000;
                  attrs = gen_attrs rng;
                });
        })
  in
  { Bgp.Mrt.collector_id = gen_ip rng; view_name = "fuzz"; peers; records }

let fuzz_mrt_codec =
  rng_fuzz "mrt codec fuzz roundtrip (500)" (fun rng ~case ->
      let dump = gen_mrt rng in
      let wire = Bgp.Mrt.encode ~timestamp:0 dump in
      (match Bgp.Mrt.decode wire with
      | Ok decoded ->
          (* compare via re-encoding: byte-identical wire means the decode
             lost nothing the encoder expresses *)
          if Bgp.Mrt.encode ~timestamp:0 decoded <> wire then
            Alcotest.failf "case %d: re-encode differs" case
      | Error e ->
          Alcotest.failf "case %d: decode of own encoding failed: %s" case
            (Format.asprintf "%a" Bgp.Mrt.pp_error e));
      (match Bgp.Mrt.decode (truncate rng wire) with Ok _ | Error _ -> ());
      match Bgp.Mrt.decode (bit_flip rng wire) with Ok _ | Error _ -> ())

let suite =
  [ fuzz_bgp_codec; fuzz_sflow_codec; fuzz_mrt_codec ]
  @ List.map QCheck_alcotest.to_alcotest
    [
      prop_projection_conserves;
      prop_projection_move_conserves;
      prop_guard_clamp_respects_budgets;
      prop_allocator_overrides_unique_prefixes;
      prop_hysteresis_never_early_release;
      prop_hysteresis_tracks_when_disabled;
      prop_trace_roundtrip;
      prop_controller_enforced_within_thresholds;
    ]
