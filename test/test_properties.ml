(* Cross-module property tests: invariants on randomized inputs over the
   generated tiny world. *)

module Bgp = Ef_bgp
module N = Ef_netsim
module C = Ef_collector
module Ef = Edge_fabric

let world = lazy (N.Topo_gen.generate N.Topo_gen.small_config)

(* random rate vectors over the world's prefixes *)
let gen_rates =
  QCheck.Gen.(
    let w = Lazy.force world in
    let prefixes = Array.of_list w.N.Topo_gen.all_prefixes in
    map
      (fun pairs ->
        let tbl = Hashtbl.create 16 in
        List.iter
          (fun (i, r) ->
            let p = prefixes.(i mod Array.length prefixes) in
            Hashtbl.replace tbl (Bgp.Prefix.to_string p)
              (p, float_of_int (r + 1) *. 1e7))
          pairs;
        Hashtbl.fold (fun _ v acc -> v :: acc) tbl [])
      (list_size (int_range 1 40) (pair small_nat (int_bound 2000))))

let arb_rates =
  QCheck.make
    ~print:(fun rates ->
      String.concat ";"
        (List.map
           (fun (p, r) -> Printf.sprintf "%s=%.0f" (Bgp.Prefix.to_string p) r)
           rates))
    gen_rates

let snapshot_of rates =
  C.Snapshot.of_pop (Lazy.force world).N.Topo_gen.pop ~prefix_rates:rates
    ~time_s:0

(* --- Projection: traffic conservation --------------------------------- *)

let prop_projection_conserves =
  QCheck.Test.make ~name:"projection conserves traffic" ~count:100 arb_rates
    (fun rates ->
      let proj = Ef.Projection.project (snapshot_of rates) in
      let placed =
        List.fold_left
          (fun acc iface ->
            acc +. Ef.Projection.load_bps proj ~iface_id:(N.Iface.id iface))
          0.0 (Ef.Projection.ifaces proj)
      in
      let total = List.fold_left (fun acc (_, r) -> acc +. r) 0.0 rates in
      Float.abs (placed +. Ef.Projection.unroutable_bps proj -. total)
      < 1.0 +. (1e-9 *. total))

let prop_projection_move_conserves =
  QCheck.Test.make ~name:"projection move conserves" ~count:100 arb_rates
    (fun rates ->
      let snap = snapshot_of rates in
      let proj = Ef.Projection.project snap in
      let sum p =
        List.fold_left
          (fun acc iface ->
            acc +. Ef.Projection.load_bps p ~iface_id:(N.Iface.id iface))
          0.0 (Ef.Projection.ifaces p)
      in
      (* move every movable placement to its 2nd choice and re-check *)
      let moved =
        List.fold_left
          (fun proj pl ->
            match C.Snapshot.routes snap pl.Ef.Projection.placed_prefix with
            | _ :: alt :: _ -> (
                match C.Snapshot.iface_of_route snap alt with
                | Some iface when N.Iface.id iface <> pl.Ef.Projection.iface_id ->
                    Ef.Projection.move proj pl.Ef.Projection.placed_prefix
                      ~to_route:alt ~to_iface:(N.Iface.id iface)
                | Some _ | None -> proj)
            | _ -> proj)
          proj (Ef.Projection.placements proj)
      in
      Float.abs (sum moved -. sum proj) < 1.0)

(* --- Allocator + Guard -------------------------------------------------- *)

let prop_guard_clamp_respects_budgets =
  QCheck.Test.make ~name:"guard clamp lands within budgets" ~count:100
    QCheck.(pair arb_rates (pair (int_range 0 10) (int_bound 100)))
    (fun (rates, (max_n, frac_pct)) ->
      let snap = snapshot_of rates in
      let result = Ef.Allocator.run ~config:Ef.Config.default snap in
      let config =
        {
          Ef.Guard.default with
          Ef.Guard.max_overrides = Some max_n;
          max_detour_fraction = Some (float_of_int frac_pct /. 100.0);
        }
      in
      let kept, dropped = Ef.Guard.clamp config snap result.Ef.Allocator.overrides in
      let count_ok = List.length kept <= max_n in
      let permutation_ok =
        List.length kept + List.length dropped
        = List.length result.Ef.Allocator.overrides
      in
      (* fraction budget holds whenever anything was kept *)
      let total = C.Snapshot.total_rate_bps snap in
      let kept_frac =
        if total <= 0.0 then 0.0
        else
          List.fold_left
            (fun acc (o : Ef.Override.t) ->
              acc +. C.Snapshot.rate_of snap o.Ef.Override.prefix)
            0.0 kept
          /. total
      in
      count_ok && permutation_ok
      && (kept = [] || kept_frac <= (float_of_int frac_pct /. 100.0) +. 1e-9))

let prop_allocator_overrides_unique_prefixes =
  QCheck.Test.make ~name:"allocator overrides are per-prefix unique" ~count:100
    arb_rates
    (fun rates ->
      let result = Ef.Allocator.run ~config:Ef.Config.default (snapshot_of rates) in
      let keys =
        List.map
          (fun (o : Ef.Override.t) -> Bgp.Prefix.to_string o.Ef.Override.prefix)
          result.Ef.Allocator.overrides
      in
      List.length keys = List.length (List.sort_uniq compare keys))

(* --- Hysteresis --------------------------------------------------------- *)

let prop_hysteresis_never_early_release =
  QCheck.Test.make ~name:"hysteresis holds min_hold" ~count:100
    QCheck.(pair arb_rates (int_range 1 10))
    (fun (rates, steps) ->
      let snap = snapshot_of rates in
      let result = Ef.Allocator.run ~config:Ef.Config.default snap in
      QCheck.assume (result.Ef.Allocator.overrides <> []);
      let config = Ef.Config.make ~min_hold_s:10_000 () in
      let h = Ef.Hysteresis.create config in
      ignore
        (Ef.Hysteresis.step h ~time_s:0 ~desired:result.Ef.Allocator.overrides
           ~preferred:result.Ef.Allocator.before);
      (* repeatedly ask for release way before maturity *)
      let ok = ref true in
      for i = 1 to steps do
        let r =
          Ef.Hysteresis.step h ~time_s:(i * 30) ~desired:[]
            ~preferred:result.Ef.Allocator.before
        in
        if r.Ef.Hysteresis.removed <> [] then ok := false
      done;
      !ok)

let prop_hysteresis_tracks_when_disabled =
  QCheck.Test.make ~name:"disabled hysteresis mirrors allocator" ~count:100
    arb_rates
    (fun rates ->
      let snap = snapshot_of rates in
      let result = Ef.Allocator.run ~config:Ef.Config.default snap in
      let config =
        Ef.Config.make ~min_hold_s:0 ~release_margin:0.0 ()
      in
      let h = Ef.Hysteresis.create config in
      let r1 =
        Ef.Hysteresis.step h ~time_s:0 ~desired:result.Ef.Allocator.overrides
          ~preferred:result.Ef.Allocator.before
      in
      List.length r1.Ef.Hysteresis.active
      = List.length result.Ef.Allocator.overrides)

(* --- Trace ---------------------------------------------------------------- *)

let prop_trace_roundtrip =
  QCheck.Test.make ~name:"trace roundtrips random snapshots" ~count:50 arb_rates
    (fun rates ->
      let snap = snapshot_of rates in
      match C.Trace.parse (C.Trace.record snap) with
      | Error _ -> false
      | Ok replayed ->
          C.Snapshot.prefix_count snap = C.Snapshot.prefix_count replayed
          && List.for_all2
               (fun (p1, r1) (p2, r2) ->
                 Bgp.Prefix.equal p1 p2 && Float.abs (r1 -. r2) < 0.01)
               (C.Snapshot.prefix_rates snap)
               (C.Snapshot.prefix_rates replayed)
          && List.for_all
               (fun (p, _) ->
                 List.map Bgp.Route.peer_id (C.Snapshot.routes snap p)
                 = List.map Bgp.Route.peer_id (C.Snapshot.routes replayed p))
               (C.Snapshot.prefix_rates snap))

(* --- Controller end-to-end ----------------------------------------------- *)

let prop_controller_enforced_within_thresholds =
  QCheck.Test.make ~name:"controller leaves no fixable overload" ~count:60
    arb_rates
    (fun rates ->
      let snap = snapshot_of rates in
      let ctrl = Ef.Controller.create ~name:"prop" () in
      let stats = Ef.Controller.cycle ctrl snap in
      (* every interface still over threshold after enforcement must be a
         declared residual (capacity genuinely exhausted) *)
      let residual_ids =
        List.map
          (fun (i, _) -> N.Iface.id i)
          stats.Ef.Controller.allocator.Ef.Allocator.residual
      in
      List.for_all
        (fun (iface, _) -> List.mem (N.Iface.id iface) residual_ids)
        stats.Ef.Controller.overloaded_after)

(* --- Zipf demand weights ------------------------------------------------- *)

let arb_zipf =
  QCheck.make
    ~print:(fun (n, s) -> Printf.sprintf "n=%d s=%.3f" n s)
    QCheck.Gen.(
      pair (int_range 1 500)
        (map (fun x -> 0.5 +. (float_of_int x /. 100.0)) (int_range 0 100)))

let prop_zipf_mass =
  QCheck.Test.make ~name:"zipf probabilities conserve mass" ~count:100 arb_zipf
    (fun (n, s) ->
      let z = Ef_util.Zipf.create ~n ~s in
      let sum = Array.fold_left ( +. ) 0.0 (Ef_util.Zipf.weights z) in
      Float.abs (sum -. 1.0) < 1e-9
      && Float.abs (Ef_util.Zipf.top_share z n -. 1.0) < 1e-9)

let prop_zipf_rank_order =
  QCheck.Test.make ~name:"zipf weights non-increasing in rank" ~count:100
    arb_zipf
    (fun (n, s) ->
      let z = Ef_util.Zipf.create ~n ~s in
      let ok = ref true in
      for rank = 1 to n - 1 do
        if
          Ef_util.Zipf.probability z rank
          < Ef_util.Zipf.probability z (rank + 1)
        then ok := false
      done;
      !ok && Array.for_all (fun w -> w > 0.0) (Ef_util.Zipf.weights z))

let prop_zipf_sample_deterministic =
  QCheck.Test.make ~name:"zipf sampling deterministic per seed" ~count:50
    (QCheck.pair arb_zipf QCheck.small_nat)
    (fun ((n, s), seed) ->
      let z = Ef_util.Zipf.create ~n ~s in
      let draw () =
        let rng = Ef_util.Rng.create seed in
        List.init 50 (fun _ -> Ef_util.Zipf.sample z rng)
      in
      let a = draw () and b = draw () in
      a = b && List.for_all (fun r -> r >= 1 && r <= n) a)

(* --- Snapshot.diff ------------------------------------------------------- *)

let sorted_rates snap =
  List.sort
    (fun (a, _) (b, _) -> Bgp.Prefix.compare a b)
    (C.Snapshot.prefix_rates snap)

let apply_diff ~prev ~time_s (d : C.Snapshot.diff) =
  C.Snapshot.patch ~prev
    ~routes_changed:
      (List.filter_map
         (fun (c : C.Snapshot.change) ->
           if c.C.Snapshot.ch_routes then Some c.C.Snapshot.ch_prefix else None)
         d.C.Snapshot.changes)
    ~rate_updates:
      (List.map
         (fun (c : C.Snapshot.change) ->
           ( c.C.Snapshot.ch_prefix,
             Option.value c.C.Snapshot.ch_new_rate ~default:0.0 ))
         d.C.Snapshot.changes)
    ~time_s ()

(* diff of a patched pair is the exact recorded delta: linked, and
   re-applying it to [prev] reproduces [next]'s content bit for bit *)
let prop_diff_patch_roundtrip =
  QCheck.Test.make ~name:"diff (patch) re-applies to identity" ~count:100
    (QCheck.pair arb_rates arb_rates)
    (fun (rates1, rates2) ->
      let prev = snapshot_of rates1 in
      let updates =
        List.mapi
          (fun i (p, r) -> if i mod 3 = 0 then (p, 0.0) else (p, r))
          rates2
      in
      let next =
        C.Snapshot.patch ~prev ~rate_updates:updates ~time_s:30 ()
      in
      let d = C.Snapshot.diff prev next in
      let reapplied = apply_diff ~prev ~time_s:30 d in
      d.C.Snapshot.linked
      && sorted_rates reapplied = sorted_rates next
      && C.Snapshot.total_rate_bps reapplied
         = C.Snapshot.total_rate_bps next)

let prop_diff_empty =
  QCheck.Test.make ~name:"empty diff on identical content" ~count:100 arb_rates
    (fun rates ->
      let snap = snapshot_of rates in
      let self = C.Snapshot.diff snap snap in
      let noop = C.Snapshot.patch ~prev:snap ~rate_updates:[] ~time_s:30 () in
      let d = C.Snapshot.diff snap noop in
      self.C.Snapshot.changes = []
      && self.C.Snapshot.linked
      && d.C.Snapshot.changes = []
      && d.C.Snapshot.linked)

(* unlinked fuzzed pairs: the merge-walk finds exactly the prefixes whose
   rates differ, flags routes conservatively, and applying the result
   still reconstructs the target's rate content *)
let prop_diff_unlinked_fuzzed =
  QCheck.Test.make ~name:"diff (unlinked) exact on rates" ~count:100
    (QCheck.pair arb_rates arb_rates)
    (fun (rates1, rates2) ->
      let a = snapshot_of rates1 and b = snapshot_of rates2 in
      let d = C.Snapshot.diff a b in
      let tbl rates =
        let t = Hashtbl.create 16 in
        List.iter (fun (p, r) -> Hashtbl.replace t (Bgp.Prefix.to_string p) (p, r)) rates;
        t
      in
      let ta = tbl rates1 and tb = tbl rates2 in
      let expected = Hashtbl.create 16 in
      Hashtbl.iter
        (fun k (p, r) ->
          match Hashtbl.find_opt tb k with
          | Some (_, r') when r' = r -> ()
          | _ -> Hashtbl.replace expected k p)
        ta;
      Hashtbl.iter
        (fun k (p, _) ->
          if not (Hashtbl.mem ta k) then Hashtbl.replace expected k p)
        tb;
      let sort_prefixes l = List.sort Bgp.Prefix.compare l in
      let got =
        sort_prefixes
          (List.map
             (fun (c : C.Snapshot.change) -> c.C.Snapshot.ch_prefix)
             d.C.Snapshot.changes)
      in
      let want =
        sort_prefixes (Hashtbl.fold (fun _ p acc -> p :: acc) expected [])
      in
      let rates_ok =
        List.for_all
          (fun (c : C.Snapshot.change) ->
            let k = Bgp.Prefix.to_string c.C.Snapshot.ch_prefix in
            let old_r =
              Option.map snd (Hashtbl.find_opt ta k)
            and new_r = Option.map snd (Hashtbl.find_opt tb k) in
            c.C.Snapshot.ch_old_rate = old_r
            && c.C.Snapshot.ch_new_rate = new_r
            && c.C.Snapshot.ch_routes)
          d.C.Snapshot.changes
      in
      let reapplied = apply_diff ~prev:a ~time_s:0 d in
      (not d.C.Snapshot.linked)
      && got = want && rates_ok
      && sorted_rates reapplied = sorted_rates b)

(* interface-set deltas: a patch that substitutes the interface list
   records exactly the added, removed and capacity-changed ids (ascending,
   content-based), the unlinked merge-walk reconstructs the same delta
   from the two indexes, and applying the recorded delta to [prev]'s
   interface set reproduces [next]'s *)
let prop_diff_iface_roundtrip =
  QCheck.Test.make ~name:"diff (patch) records iface delta exactly" ~count:100
    (QCheck.pair arb_rates QCheck.small_nat)
    (fun (rates, seed) ->
      let prev = snapshot_of rates in
      let base = C.Snapshot.ifaces prev in
      let rng = Ef_util.Rng.create (seed + 1) in
      let kept =
        List.filter_map
          (fun ifc ->
            match Ef_util.Rng.int rng 4 with
            | 0 -> None (* removed *)
            | 1 ->
                (* derated: same id, halved capacity *)
                Some
                  (N.Iface.make ~id:(N.Iface.id ifc) ~name:(N.Iface.name ifc)
                     ~capacity_bps:(0.5 *. N.Iface.capacity_bps ifc)
                     ~shared:(N.Iface.shared ifc))
            | _ -> Some ifc)
          base
      in
      let fresh_id =
        1 + List.fold_left (fun m i -> max m (N.Iface.id i)) (-1) base
      in
      let mutated =
        if Ef_util.Rng.int rng 2 = 0 then
          kept
          @ [
              N.Iface.make ~id:fresh_id ~name:"added" ~capacity_bps:5e9
                ~shared:false;
            ]
        else kept
      in
      let next =
        C.Snapshot.patch ~prev ~ifaces:mutated ~rate_updates:[] ~time_s:30 ()
      in
      let d = C.Snapshot.diff prev next in
      let cap l id =
        List.find_opt (fun i -> N.Iface.id i = id) l
        |> Option.map N.Iface.capacity_bps
      in
      let expected =
        List.filter_map
          (fun id ->
            let o = cap base id and n = cap mutated id in
            if o = n then None
            else
              Some
                {
                  C.Snapshot.ic_id = id;
                  ic_old_capacity = o;
                  ic_new_capacity = n;
                })
          (List.sort_uniq compare (List.map N.Iface.id (base @ mutated)))
      in
      (* an unlinked pair over the same content must reconstruct the same
         delta from the two interface indexes *)
      let cold =
        C.Snapshot.of_pop (Lazy.force world).N.Topo_gen.pop ~ifaces:mutated
          ~prefix_rates:rates ~time_s:30
      in
      let d_unlinked = C.Snapshot.diff prev cold in
      (* the recorded delta applied to prev's set reproduces next's set *)
      let reapplied =
        List.filter_map
          (fun ifc ->
            match
              List.find_opt
                (fun (c : C.Snapshot.iface_change) ->
                  c.C.Snapshot.ic_id = N.Iface.id ifc)
                d.C.Snapshot.iface_changes
            with
            | None -> Some (N.Iface.id ifc, N.Iface.capacity_bps ifc)
            | Some { C.Snapshot.ic_new_capacity = None; _ } -> None
            | Some { C.Snapshot.ic_new_capacity = Some c; _ } ->
                Some (N.Iface.id ifc, c))
          base
        @ List.filter_map
            (fun (c : C.Snapshot.iface_change) ->
              match (c.C.Snapshot.ic_old_capacity, c.C.Snapshot.ic_new_capacity) with
              | None, Some cap -> Some (c.C.Snapshot.ic_id, cap)
              | _ -> None)
            d.C.Snapshot.iface_changes
      in
      let set l = List.sort compare l in
      d.C.Snapshot.linked
      && d.C.Snapshot.iface_changes = expected
      && (not d_unlinked.C.Snapshot.linked)
      && d_unlinked.C.Snapshot.iface_changes = expected
      && set reapplied
         = set
             (List.map
                (fun i -> (N.Iface.id i, N.Iface.capacity_bps i))
                (C.Snapshot.ifaces next)))

(* --- wire-codec fuzz ----------------------------------------------------- *)

(* Deterministic Rng-driven fuzz (Ef_util.Rng, fixed seeds): round-trip
   decode∘encode = id for each codec, and totality — a decoder fed
   truncated or bit-flipped bytes returns an error, it never raises. *)

let fuzz_cases = 500

let rng_fuzz name f =
  Alcotest.test_case name `Quick (fun () ->
      let rng = Ef_util.Rng.create 0xF00D in
      for case = 1 to fuzz_cases do
        f rng ~case
      done)

let gen_ip rng = Bgp.Ipv4.of_int32 (Int32.of_int (Ef_util.Rng.int rng 0x3FFFFFFF))

let gen_prefix rng =
  Bgp.Prefix.make (gen_ip rng) (Ef_util.Rng.int rng 33)

let gen_attrs rng =
  let path =
    List.init
      (1 + Ef_util.Rng.int rng 5)
      (fun _ -> Bgp.Asn.of_int (1 + Ef_util.Rng.int rng 100_000))
  in
  Bgp.Attrs.make
    ~origin:(Ef_util.Rng.pick rng [| Bgp.Attrs.Igp; Bgp.Attrs.Egp; Bgp.Attrs.Incomplete |])
    ~med:(if Ef_util.Rng.bool rng then Some (Ef_util.Rng.int rng 10_000) else None)
    ~local_pref:
      (if Ef_util.Rng.bool rng then Some (Ef_util.Rng.int rng 1_000) else None)
    ~communities:
      (List.init (Ef_util.Rng.int rng 4) (fun _ ->
           Bgp.Community.make (Ef_util.Rng.int rng 65_536) (Ef_util.Rng.int rng 65_536)))
    ~as_path:(Bgp.As_path.of_list path)
    ~next_hop:(gen_ip rng) ()

let gen_bgp_update rng =
  let withdrawn = List.init (Ef_util.Rng.int rng 4) (fun _ -> gen_prefix rng) in
  let nlri = List.init (Ef_util.Rng.int rng 6) (fun _ -> gen_prefix rng) in
  if nlri = [] then Bgp.Msg.make_update ~withdrawn ()
  else Bgp.Msg.make_update ~withdrawn ~attrs:(gen_attrs rng) ~nlri ()

(* mutate one random bit of a wire image *)
let bit_flip rng s =
  if String.length s = 0 then s
  else begin
    let b = Bytes.of_string s in
    let i = Ef_util.Rng.int rng (Bytes.length b) in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Ef_util.Rng.int rng 8)));
    Bytes.to_string b
  end

let truncate rng s =
  if String.length s = 0 then s else String.sub s 0 (Ef_util.Rng.int rng (String.length s))

let fuzz_bgp_codec =
  rng_fuzz "bgp codec fuzz roundtrip (500)" (fun rng ~case ->
      let msg = gen_bgp_update rng in
      let wire = Bgp.Codec.encode msg in
      (match Bgp.Codec.decode wire with
      | Ok (decoded, consumed) ->
          if consumed <> String.length wire || not (Bgp.Msg.equal msg decoded)
          then
            Alcotest.failf "case %d: roundtrip mismatch for %s" case
              (Format.asprintf "%a" Bgp.Msg.pp msg)
      | Error e ->
          Alcotest.failf "case %d: decode of own encoding failed: %s" case
            (Bgp.Codec.error_to_string e));
      (* totality: truncations and bit flips produce Ok/Error, no raise *)
      (match Bgp.Codec.decode (truncate rng wire) with Ok _ | Error _ -> ());
      match Bgp.Codec.decode (bit_flip rng wire) with Ok _ | Error _ -> ())

let gen_sflow_datagram rng =
  let gen_sample () =
    {
      C.Sflow_codec.sample_seq = Ef_util.Rng.int rng 1_000_000;
      source_id = Ef_util.Rng.int rng 1_000;
      sampling_rate = 1 + Ef_util.Rng.int rng 10_000;
      sample_pool = Ef_util.Rng.int rng 10_000_000;
      drops = Ef_util.Rng.int rng 100;
      packet =
        {
          C.Sflow_codec.dst = gen_ip rng;
          frame_length = 20 + Ef_util.Rng.int rng 65_000;
        };
    }
  in
  {
    C.Sflow_codec.agent = gen_ip rng;
    sub_agent = Ef_util.Rng.int rng 16;
    datagram_seq = Ef_util.Rng.int rng 1_000_000;
    uptime_ms = Ef_util.Rng.int rng 1_000_000_000;
    samples =
      List.init
        (Ef_util.Rng.int rng (C.Sflow_codec.max_samples_per_datagram + 1))
        (fun _ -> gen_sample ());
  }

let fuzz_sflow_codec =
  rng_fuzz "sflow codec fuzz roundtrip (500)" (fun rng ~case ->
      let dg = gen_sflow_datagram rng in
      let wire = C.Sflow_codec.encode dg in
      (match C.Sflow_codec.decode wire with
      | Ok decoded ->
          if decoded <> dg then Alcotest.failf "case %d: datagram mismatch" case
      | Error e ->
          Alcotest.failf "case %d: decode of own encoding failed: %s" case
            (Format.asprintf "%a" C.Sflow_codec.pp_error e));
      (match C.Sflow_codec.decode (truncate rng wire) with
      | Ok _ | Error _ -> ());
      match C.Sflow_codec.decode (bit_flip rng wire) with Ok _ | Error _ -> ())

let gen_mrt rng =
  let peers =
    List.init
      (1 + Ef_util.Rng.int rng 5)
      (fun _ ->
        {
          Bgp.Mrt.peer_bgp_id = gen_ip rng;
          peer_addr = gen_ip rng;
          peer_asn = Bgp.Asn.of_int (1 + Ef_util.Rng.int rng 100_000);
        })
  in
  let n_peers = List.length peers in
  let records =
    List.init (Ef_util.Rng.int rng 8) (fun sequence ->
        {
          Bgp.Mrt.sequence;
          rib_prefix = gen_prefix rng;
          entries =
            List.init
              (1 + Ef_util.Rng.int rng 3)
              (fun _ ->
                {
                  Bgp.Mrt.entry_peer_index = Ef_util.Rng.int rng n_peers;
                  originated_at = Ef_util.Rng.int rng 1_000_000_000;
                  attrs = gen_attrs rng;
                });
        })
  in
  { Bgp.Mrt.collector_id = gen_ip rng; view_name = "fuzz"; peers; records }

let fuzz_mrt_codec =
  rng_fuzz "mrt codec fuzz roundtrip (500)" (fun rng ~case ->
      let dump = gen_mrt rng in
      let wire = Bgp.Mrt.encode ~timestamp:0 dump in
      (match Bgp.Mrt.decode wire with
      | Ok decoded ->
          (* compare via re-encoding: byte-identical wire means the decode
             lost nothing the encoder expresses *)
          if Bgp.Mrt.encode ~timestamp:0 decoded <> wire then
            Alcotest.failf "case %d: re-encode differs" case
      | Error e ->
          Alcotest.failf "case %d: decode of own encoding failed: %s" case
            (Format.asprintf "%a" Bgp.Mrt.pp_error e));
      (match Bgp.Mrt.decode (truncate rng wire) with Ok _ | Error _ -> ());
      match Bgp.Mrt.decode (bit_flip rng wire) with Ok _ | Error _ -> ())

let suite =
  [ fuzz_bgp_codec; fuzz_sflow_codec; fuzz_mrt_codec ]
  @ List.map QCheck_alcotest.to_alcotest
    [
      prop_projection_conserves;
      prop_projection_move_conserves;
      prop_guard_clamp_respects_budgets;
      prop_allocator_overrides_unique_prefixes;
      prop_hysteresis_never_early_release;
      prop_hysteresis_tracks_when_disabled;
      prop_trace_roundtrip;
      prop_controller_enforced_within_thresholds;
      prop_zipf_mass;
      prop_zipf_rank_order;
      prop_zipf_sample_deterministic;
      prop_diff_patch_roundtrip;
      prop_diff_empty;
      prop_diff_unlinked_fuzzed;
      prop_diff_iface_roundtrip;
    ]
