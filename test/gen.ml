(* Shared seeded fixtures: worlds, demand vectors and snapshots for the
   differential suites and the bench harness. One home for the
   world→snapshot plumbing that test_alloc_diff, test_altpath,
   test_incremental_diff and bench/main previously each re-derived. *)

module N = Ef_netsim
module C = Ef_collector

let world ?(config = N.Topo_gen.small_config) seed =
  N.Topo_gen.generate { config with N.Topo_gen.seed }

(* the canonical demand vector: each prefix at its generated weight of
   the world's peak, optionally scaled *)
let rates_of_world ?(rate_factor = 1.0) (w : N.Topo_gen.world) =
  List.map
    (fun p ->
      ( p,
        w.N.Topo_gen.prefix_weight p *. w.N.Topo_gen.total_peak_bps
        *. rate_factor ))
    w.N.Topo_gen.all_prefixes

let snapshot_of_world ?rate_factor ?(time_s = 0) ?ifaces
    (w : N.Topo_gen.world) =
  C.Snapshot.of_pop ?ifaces w.N.Topo_gen.pop
    ~prefix_rates:(rates_of_world ?rate_factor w)
    ~time_s

let snapshot_of_scenario ?rate_factor ?time_s (s : N.Scenario.t) =
  snapshot_of_world ?rate_factor ?time_s
    (N.Topo_gen.generate s.N.Scenario.topo)

(* capacity-derated interface copies, the way the engine's fault path
   builds them (floored at 1 bps so utilization stays well-defined) *)
let derate_ifaces ~factor_of ifaces =
  List.map
    (fun iface ->
      let f = factor_of (N.Iface.id iface) in
      if f >= 1.0 then iface
      else
        N.Iface.make ~id:(N.Iface.id iface) ~name:(N.Iface.name iface)
          ~capacity_bps:(Float.max 1.0 (N.Iface.capacity_bps iface *. f))
          ~shared:(N.Iface.shared iface))
    ifaces
