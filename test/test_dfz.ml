(* ef_netsim.Dfz + ef_sim.Dfz_run: the internet-scale world generator
   and its end-to-end driver, at smoke scale. The full-table run lives
   in the bench (e13); here the same machinery is pinned small:
   generator determinism (replayability is what makes the driver's
   differential verification meaningful), demand shape, the lockstep
   verify mode itself, and the MRT-seeded path. *)

module Bgp = Ef_bgp
module N = Ef_netsim
module D = Ef_sim.Dfz_run

let small n = N.Dfz.config ~n_prefixes:n ()

(* --- generator determinism -------------------------------------------- *)

let test_dfz_replay_identical () =
  let a = N.Dfz.create (small 2_000) and b = N.Dfz.create (small 2_000) in
  Alcotest.(check bool) "initial rates equal" true
    (N.Dfz.current_rates a = N.Dfz.current_rates b);
  for cycle = 1 to 5 do
    let ea = N.Dfz.churn a ~cycle and eb = N.Dfz.churn b ~cycle in
    Alcotest.(check bool)
      (Printf.sprintf "cycle %d churn equal" cycle)
      true
      (ea.N.Dfz.rate_updates = eb.N.Dfz.rate_updates
      && ea.N.Dfz.routes_changed = eb.N.Dfz.routes_changed)
  done;
  Alcotest.(check bool) "post-churn rates equal" true
    (N.Dfz.current_rates a = N.Dfz.current_rates b);
  (* routes are a pure function of (config, epoch) *)
  List.iter
    (fun (p, _) ->
      Alcotest.(check bool) "routes equal" true
        (N.Dfz.routes a p = N.Dfz.routes b p))
    (N.Dfz.current_rates a)

let test_dfz_seed_changes_world () =
  let a = N.Dfz.create (small 2_000) in
  let b = N.Dfz.create { (small 2_000) with N.Dfz.seed = 99 } in
  Alcotest.(check bool) "different seeds differ" false
    (N.Dfz.current_rates a = N.Dfz.current_rates b)

(* --- demand shape ------------------------------------------------------ *)

let test_dfz_demand_shape () =
  let cfg = small 5_000 in
  let t = N.Dfz.create cfg in
  let rates = N.Dfz.current_rates t in
  Alcotest.(check int) "every prefix rated" cfg.N.Dfz.n_prefixes
    (List.length rates);
  let total = List.fold_left (fun acc (_, r) -> acc +. r) 0.0 rates in
  Alcotest.(check bool) "mass conservation" true
    (Float.abs (total -. cfg.N.Dfz.total_bps)
    < 1e-6 *. cfg.N.Dfz.total_bps);
  Alcotest.(check bool) "all rates positive" true
    (List.for_all (fun (_, r) -> r > 0.0) rates);
  (* Zipf skew: the heaviest prefix dwarfs the median one *)
  let sorted =
    List.sort (fun (_, a) (_, b) -> Float.compare b a) rates |> Array.of_list
  in
  let _, top = sorted.(0) and _, median = sorted.(Array.length sorted / 2) in
  Alcotest.(check bool) "zipf head dominance" true (top > 100.0 *. median)

let test_dfz_churn_bounded () =
  let cfg = small 5_000 in
  let t = N.Dfz.create cfg in
  for cycle = 1 to 5 do
    let e = N.Dfz.churn t ~cycle in
    let touched =
      List.length e.N.Dfz.rate_updates + List.length e.N.Dfz.routes_changed
    in
    (* ~churn_fraction of the table, with generous slack for the hashed
       per-prefix draws *)
    Alcotest.(check bool)
      (Printf.sprintf "cycle %d churn bounded" cycle)
      true
      (touched > 0
      && float_of_int touched
         < 4.0 *. cfg.N.Dfz.churn_fraction *. float_of_int cfg.N.Dfz.n_prefixes
      )
  done

(* --- the driver's differential verify mode ----------------------------- *)

let test_driver_verified_identical () =
  let report =
    D.run
      ~obs:(Ef_obs.Registry.create ())
      ~config:(D.config ~cycles:8 ~verify:true ())
      (small 2_000)
  in
  (* a handful of prefixes may be withdrawn by churn at the end *)
  Alcotest.(check bool) "prefixes" true
    (report.D.prefix_count > 1_900 && report.D.prefix_count <= 2_000);
  Alcotest.(check int) "cycles" 8 report.D.cycles_run;
  Alcotest.(check int) "verified every cycle" 8 report.D.verified_cycles;
  Alcotest.(check (list string)) "no mismatches" [] report.D.mismatches;
  Alcotest.(check int) "warm path engaged every patched cycle" 7
    report.D.incremental_hits;
  Alcotest.(check bool) "churn flowed" true (report.D.dirty_total > 0);
  Alcotest.(check bool) "percentiles ordered" true
    (D.p50_s report <= D.p99_s report && D.p99_s report <= D.max_s report)

(* the driver's verify mode with the incremental side sharded: the cold
   reference pipeline stays serial, so this pins the sharded cycles
   (and the pooled cold build) against the serial pipeline end to end *)
let test_driver_sharded_verified_identical () =
  let report =
    D.run
      ~obs:(Ef_obs.Registry.create ())
      ~config:
        (D.config ~cycles:6 ~verify:true
           ~controller:
             (Edge_fabric.Config.with_shards 4 Edge_fabric.Config.default)
           ())
      (small 2_000)
  in
  Alcotest.(check int) "verified every cycle" 6 report.D.verified_cycles;
  Alcotest.(check (list string)) "no mismatches" [] report.D.mismatches;
  Alcotest.(check int) "warm path engaged every patched cycle" 5
    report.D.incremental_hits

(* the tentpole pin at dfz scale: under the canned dfz-flap plan the
   snapshot chain carries interface removals, re-additions and capacity
   derates — the warm path must hold on every patched cycle (no cold
   fallback) and stay byte-identical to the cold reference pipeline *)
let test_driver_flap_verified_identical () =
  let faults =
    match N.Scenario.find_fault_plan "dfz-flap" with
    | Some p -> p
    | None -> Alcotest.fail "canned plan dfz-flap missing"
  in
  let report =
    D.run
      ~obs:(Ef_obs.Registry.create ())
      ~config:(D.config ~cycles:8 ~cycle_s:300 ~verify:true ~faults ())
      (small 2_000)
  in
  Alcotest.(check int) "verified every cycle" 8 report.D.verified_cycles;
  Alcotest.(check (list string)) "no mismatches" [] report.D.mismatches;
  Alcotest.(check int) "warm path survived the interface churn" 7
    report.D.incremental_hits;
  Alcotest.(check bool) "interface churn actually happened" true
    (report.D.iface_event_cycles <> []);
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "iface event cycle %d in range" c)
        true
        (c >= 1 && c < 8))
    report.D.iface_event_cycles

(* the parallel cold table build: sharded Snapshot.assemble over a
   world big enough to cross the parallel threshold (8192 rated
   prefixes) must equal the serial build in every observable *)
let test_sharded_assemble_identical () =
  let cfg = small 10_000 in
  let serial = D.snapshot_of_gen (N.Dfz.create cfg) ~time_s:0 in
  Ef_util.Pool.with_pool ~jobs:4 (fun pool ->
      let sharded = D.snapshot_of_gen ~pool (N.Dfz.create cfg) ~time_s:0 in
      let module C = Ef_collector in
      Alcotest.(check int)
        "prefix_count"
        (C.Snapshot.prefix_count serial)
        (C.Snapshot.prefix_count sharded);
      Alcotest.(check (float 0.0))
        "total_rate_bps"
        (C.Snapshot.total_rate_bps serial)
        (C.Snapshot.total_rate_bps sharded);
      Alcotest.(check bool)
        "prefix_rates identical" true
        (C.Snapshot.prefix_rates serial = C.Snapshot.prefix_rates sharded);
      (* rate_of must agree on every prefix (exercises the rate trie) *)
      List.iter
        (fun (p, r) ->
          Alcotest.(check (float 0.0))
            (Format.asprintf "rate_of %a" Bgp.Prefix.pp p)
            r
            (C.Snapshot.rate_of sharded p))
        (C.Snapshot.prefix_rates serial))

(* satellite pin: the headline percentiles are steady-state — cycle 0's
   cold build is excluded, reported separately as cold_s *)
let test_percentiles_exclude_cold () =
  let report cycle_seconds =
    {
      D.prefix_count = 0;
      cycles_run = Array.length cycle_seconds;
      incremental_hits = 0;
      dirty_total = 0;
      iface_event_cycles = [];
      cycle_seconds;
      verified_cycles = 0;
      mismatches = [];
    }
  in
  let r = report [| 10.0; 0.2; 0.1; 0.3 |] in
  Alcotest.(check (float 0.0)) "cold_s is cycle 0" 10.0 (D.cold_s r);
  Alcotest.(check (float 0.0)) "p99 excludes cold" 0.3 (D.p99_s r);
  Alcotest.(check (float 0.0)) "steady_p99_s alias" (D.p99_s r)
    (D.steady_p99_s r);
  Alcotest.(check (float 0.0)) "max excludes cold" 0.3 (D.max_s r);
  Alcotest.(check (float 1e-9)) "mean excludes cold" 0.2 (D.mean_s r);
  (* a single-cycle run has no steady state: fall back to the full
     (one-cycle) distribution rather than reporting zeros *)
  let one = report [| 5.0 |] in
  Alcotest.(check (float 0.0)) "one-cycle cold" 5.0 (D.cold_s one);
  Alcotest.(check (float 0.0)) "one-cycle p99 falls back" 5.0 (D.p99_s one)

let test_report_json_shape () =
  let report =
    D.run
      ~obs:(Ef_obs.Registry.create ())
      ~config:(D.config ~cycles:3 ())
      (small 1_000)
  in
  let json = D.report_to_json report in
  let module J = Ef_obs.Json in
  Alcotest.(check bool) "prefix_count" true
    (match Option.bind (J.member "prefix_count" json) J.to_int_opt with
    | Some n -> n > 900 && n <= 1_000
    | None -> false);
  Alcotest.(check (option int)) "cycles_run" (Some 3)
    (Option.bind (J.member "cycles_run" json) J.to_int_opt);
  Alcotest.(check bool) "cold_s present" true (J.member "cold_s" json <> None);
  Alcotest.(check bool) "steady_p99_s present" true
    (J.member "steady_p99_s" json <> None);
  Alcotest.(check bool) "round-trips through the parser" true
    (match J.parse (J.to_string json) with Ok _ -> true | Error _ -> false)

(* --- the MRT-seeded path ----------------------------------------------- *)

let mrt_of_small_world () =
  let w = Gen.world 11 in
  let rib = N.Pop.rib w.N.Topo_gen.pop in
  Bgp.Mrt.of_rib ~timestamp:1700000000
    ~collector_id:(Bgp.Ipv4.of_string "192.0.2.1")
    rib

let test_run_mrt_smoke () =
  let mrt = mrt_of_small_world () in
  match
    D.run_mrt
      ~obs:(Ef_obs.Registry.create ())
      ~config:(D.config ~cycles:6 ())
      ~seed:3 mrt
  with
  | Error e -> Alcotest.failf "run_mrt: %a" Bgp.Mrt.pp_error e
  | Ok report ->
      Alcotest.(check bool) "prefixes from the dump" true
        (report.D.prefix_count > 0);
      Alcotest.(check int) "cycles" 6 report.D.cycles_run;
      Alcotest.(check int) "incremental after the first" 5
        report.D.incremental_hits

let test_run_mrt_deterministic () =
  let mrt = mrt_of_small_world () in
  let go () =
    match
      D.run_mrt
        ~obs:(Ef_obs.Registry.create ())
        ~config:(D.config ~cycles:4 ())
        ~seed:5 mrt
    with
    | Ok r -> (r.D.prefix_count, r.D.dirty_total, r.D.incremental_hits)
    | Error e -> Alcotest.failf "run_mrt: %a" Bgp.Mrt.pp_error e
  in
  Alcotest.(check bool) "same dump, same seed, same run" true (go () = go ())

let test_run_mrt_rejects_empty () =
  let mrt = mrt_of_small_world () in
  let empty = { mrt with Bgp.Mrt.records = [] } in
  match D.run_mrt ~obs:(Ef_obs.Registry.create ()) empty with
  | Error (Bgp.Mrt.Malformed _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Bgp.Mrt.pp_error e
  | Ok _ -> Alcotest.fail "empty dump accepted"

let suite =
  [
    Alcotest.test_case "generator replays identically" `Quick
      test_dfz_replay_identical;
    Alcotest.test_case "seed changes the world" `Quick
      test_dfz_seed_changes_world;
    Alcotest.test_case "demand: mass, positivity, zipf skew" `Quick
      test_dfz_demand_shape;
    Alcotest.test_case "churn volume bounded" `Quick test_dfz_churn_bounded;
    Alcotest.test_case "driver verify: incremental = cold" `Quick
      test_driver_verified_identical;
    Alcotest.test_case "driver verify: sharded = serial cold" `Quick
      test_driver_sharded_verified_identical;
    Alcotest.test_case "driver verify: flap cycles stay warm and identical"
      `Quick test_driver_flap_verified_identical;
    Alcotest.test_case "sharded assemble = serial assemble" `Quick
      test_sharded_assemble_identical;
    Alcotest.test_case "percentiles exclude the cold cycle" `Quick
      test_percentiles_exclude_cold;
    Alcotest.test_case "report json shape" `Quick test_report_json_shape;
    Alcotest.test_case "run_mrt smoke" `Quick test_run_mrt_smoke;
    Alcotest.test_case "run_mrt deterministic" `Quick
      test_run_mrt_deterministic;
    Alcotest.test_case "run_mrt rejects dump with no prefixes" `Quick
      test_run_mrt_rejects_empty;
  ]
