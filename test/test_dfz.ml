(* ef_netsim.Dfz + ef_sim.Dfz_run: the internet-scale world generator
   and its end-to-end driver, at smoke scale. The full-table run lives
   in the bench (e13); here the same machinery is pinned small:
   generator determinism (replayability is what makes the driver's
   differential verification meaningful), demand shape, the lockstep
   verify mode itself, and the MRT-seeded path. *)

module Bgp = Ef_bgp
module N = Ef_netsim
module D = Ef_sim.Dfz_run

let small n = N.Dfz.config ~n_prefixes:n ()

(* --- generator determinism -------------------------------------------- *)

let test_dfz_replay_identical () =
  let a = N.Dfz.create (small 2_000) and b = N.Dfz.create (small 2_000) in
  Alcotest.(check bool) "initial rates equal" true
    (N.Dfz.current_rates a = N.Dfz.current_rates b);
  for cycle = 1 to 5 do
    let ea = N.Dfz.churn a ~cycle and eb = N.Dfz.churn b ~cycle in
    Alcotest.(check bool)
      (Printf.sprintf "cycle %d churn equal" cycle)
      true
      (ea.N.Dfz.rate_updates = eb.N.Dfz.rate_updates
      && ea.N.Dfz.routes_changed = eb.N.Dfz.routes_changed)
  done;
  Alcotest.(check bool) "post-churn rates equal" true
    (N.Dfz.current_rates a = N.Dfz.current_rates b);
  (* routes are a pure function of (config, epoch) *)
  List.iter
    (fun (p, _) ->
      Alcotest.(check bool) "routes equal" true
        (N.Dfz.routes a p = N.Dfz.routes b p))
    (N.Dfz.current_rates a)

let test_dfz_seed_changes_world () =
  let a = N.Dfz.create (small 2_000) in
  let b = N.Dfz.create { (small 2_000) with N.Dfz.seed = 99 } in
  Alcotest.(check bool) "different seeds differ" false
    (N.Dfz.current_rates a = N.Dfz.current_rates b)

(* --- demand shape ------------------------------------------------------ *)

let test_dfz_demand_shape () =
  let cfg = small 5_000 in
  let t = N.Dfz.create cfg in
  let rates = N.Dfz.current_rates t in
  Alcotest.(check int) "every prefix rated" cfg.N.Dfz.n_prefixes
    (List.length rates);
  let total = List.fold_left (fun acc (_, r) -> acc +. r) 0.0 rates in
  Alcotest.(check bool) "mass conservation" true
    (Float.abs (total -. cfg.N.Dfz.total_bps)
    < 1e-6 *. cfg.N.Dfz.total_bps);
  Alcotest.(check bool) "all rates positive" true
    (List.for_all (fun (_, r) -> r > 0.0) rates);
  (* Zipf skew: the heaviest prefix dwarfs the median one *)
  let sorted =
    List.sort (fun (_, a) (_, b) -> Float.compare b a) rates |> Array.of_list
  in
  let _, top = sorted.(0) and _, median = sorted.(Array.length sorted / 2) in
  Alcotest.(check bool) "zipf head dominance" true (top > 100.0 *. median)

let test_dfz_churn_bounded () =
  let cfg = small 5_000 in
  let t = N.Dfz.create cfg in
  for cycle = 1 to 5 do
    let e = N.Dfz.churn t ~cycle in
    let touched =
      List.length e.N.Dfz.rate_updates + List.length e.N.Dfz.routes_changed
    in
    (* ~churn_fraction of the table, with generous slack for the hashed
       per-prefix draws *)
    Alcotest.(check bool)
      (Printf.sprintf "cycle %d churn bounded" cycle)
      true
      (touched > 0
      && float_of_int touched
         < 4.0 *. cfg.N.Dfz.churn_fraction *. float_of_int cfg.N.Dfz.n_prefixes
      )
  done

(* --- the driver's differential verify mode ----------------------------- *)

let test_driver_verified_identical () =
  let report =
    D.run
      ~obs:(Ef_obs.Registry.create ())
      ~config:(D.config ~cycles:8 ~verify:true ())
      (small 2_000)
  in
  (* a handful of prefixes may be withdrawn by churn at the end *)
  Alcotest.(check bool) "prefixes" true
    (report.D.prefix_count > 1_900 && report.D.prefix_count <= 2_000);
  Alcotest.(check int) "cycles" 8 report.D.cycles_run;
  Alcotest.(check int) "verified every cycle" 8 report.D.verified_cycles;
  Alcotest.(check (list string)) "no mismatches" [] report.D.mismatches;
  Alcotest.(check int) "warm path engaged every patched cycle" 7
    report.D.incremental_hits;
  Alcotest.(check bool) "churn flowed" true (report.D.dirty_total > 0);
  Alcotest.(check bool) "percentiles ordered" true
    (D.p50_s report <= D.p99_s report && D.p99_s report <= D.max_s report)

let test_report_json_shape () =
  let report =
    D.run
      ~obs:(Ef_obs.Registry.create ())
      ~config:(D.config ~cycles:3 ())
      (small 1_000)
  in
  let json = D.report_to_json report in
  let module J = Ef_obs.Json in
  Alcotest.(check bool) "prefix_count" true
    (match Option.bind (J.member "prefix_count" json) J.to_int_opt with
    | Some n -> n > 900 && n <= 1_000
    | None -> false);
  Alcotest.(check (option int)) "cycles_run" (Some 3)
    (Option.bind (J.member "cycles_run" json) J.to_int_opt);
  Alcotest.(check bool) "round-trips through the parser" true
    (match J.parse (J.to_string json) with Ok _ -> true | Error _ -> false)

(* --- the MRT-seeded path ----------------------------------------------- *)

let mrt_of_small_world () =
  let w = Gen.world 11 in
  let rib = N.Pop.rib w.N.Topo_gen.pop in
  Bgp.Mrt.of_rib ~timestamp:1700000000
    ~collector_id:(Bgp.Ipv4.of_string "192.0.2.1")
    rib

let test_run_mrt_smoke () =
  let mrt = mrt_of_small_world () in
  match
    D.run_mrt
      ~obs:(Ef_obs.Registry.create ())
      ~config:(D.config ~cycles:6 ())
      ~seed:3 mrt
  with
  | Error e -> Alcotest.failf "run_mrt: %a" Bgp.Mrt.pp_error e
  | Ok report ->
      Alcotest.(check bool) "prefixes from the dump" true
        (report.D.prefix_count > 0);
      Alcotest.(check int) "cycles" 6 report.D.cycles_run;
      Alcotest.(check int) "incremental after the first" 5
        report.D.incremental_hits

let test_run_mrt_deterministic () =
  let mrt = mrt_of_small_world () in
  let go () =
    match
      D.run_mrt
        ~obs:(Ef_obs.Registry.create ())
        ~config:(D.config ~cycles:4 ())
        ~seed:5 mrt
    with
    | Ok r -> (r.D.prefix_count, r.D.dirty_total, r.D.incremental_hits)
    | Error e -> Alcotest.failf "run_mrt: %a" Bgp.Mrt.pp_error e
  in
  Alcotest.(check bool) "same dump, same seed, same run" true (go () = go ())

let test_run_mrt_rejects_empty () =
  let mrt = mrt_of_small_world () in
  let empty = { mrt with Bgp.Mrt.records = [] } in
  match D.run_mrt ~obs:(Ef_obs.Registry.create ()) empty with
  | Error (Bgp.Mrt.Malformed _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Bgp.Mrt.pp_error e
  | Ok _ -> Alcotest.fail "empty dump accepted"

let suite =
  [
    Alcotest.test_case "generator replays identically" `Quick
      test_dfz_replay_identical;
    Alcotest.test_case "seed changes the world" `Quick
      test_dfz_seed_changes_world;
    Alcotest.test_case "demand: mass, positivity, zipf skew" `Quick
      test_dfz_demand_shape;
    Alcotest.test_case "churn volume bounded" `Quick test_dfz_churn_bounded;
    Alcotest.test_case "driver verify: incremental = cold" `Quick
      test_driver_verified_identical;
    Alcotest.test_case "report json shape" `Quick test_report_json_shape;
    Alcotest.test_case "run_mrt smoke" `Quick test_run_mrt_smoke;
    Alcotest.test_case "run_mrt deterministic" `Quick
      test_run_mrt_deterministic;
    Alcotest.test_case "run_mrt rejects dump with no prefixes" `Quick
      test_run_mrt_rejects_empty;
  ]
