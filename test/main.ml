let () =
  Alcotest.run "edge-fabric"
    [
      ("util", Test_util.suite);
      ("stats", Test_stats.suite);
      ("prefix+trie", Test_prefix.suite);
      ("bgp-types", Test_bgp_types.suite);
      ("decision+policy", Test_decision.suite);
      ("codec", Test_codec.suite);
      ("golden", Test_golden.suite);
      ("fsm", Test_fsm.suite);
      ("rib", Test_rib.suite);
      ("speaker", Test_speaker.suite);
      ("route-server", Test_route_server.suite);
      ("propagation", Test_propagation.suite);
      ("damping", Test_damping.suite);
      ("mrt", Test_mrt.suite);
      ("prefix-set", Test_prefix_set.suite);
      ("netsim", Test_netsim.suite);
      ("traffic", Test_traffic.suite);
      ("collector", Test_collector.suite);
      ("trace", Test_trace.suite);
      ("sflow-codec", Test_sflow_codec.suite);
      ("core", Test_core.suite);
      ("alloc-diff", Test_alloc_diff.suite);
      ("obs", Test_obs.suite);
      ("controller", Test_controller.suite);
      ("provenance", Test_provenance.suite);
      ("guard", Test_guard.suite);
      ("altpath", Test_altpath.suite);
      ("engine", Test_engine.suite);
      ("fault", Test_fault.suite);
      ("wire-pop", Test_wire_pop.suite);
      ("fleet", Test_fleet.suite);
      ("policy", Test_policy.suite);
      ("properties", Test_properties.suite);
      ("experiments", Test_experiments.suite);
    ]
