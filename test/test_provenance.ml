(* Ef_trace: the decision-provenance recorder, explain, the OpenMetrics
   export, and the serialization goldens.

   The golden files pin two external schemas:
   - test/golden/trace.json — the Recorder.to_json ring for a fixed
     seed/scenario engine run (byte-identical across runs is the trace
     layer's determinism contract);
   - test/golden/journal.json — the engine's event-journal lines for the
     same run, with the monotonic [t_ns] stamp stripped (the only
     non-deterministic field).

   Regenerate after an intentional schema change with
     GOLDEN_UPDATE=1 dune exec test/main.exe -- test provenance          *)

module Bgp = Ef_bgp
module Ef = Edge_fabric
module S = Ef_sim
module O = Ef_obs
module R = Ef_trace.Recorder
open Helpers

(* --- golden helpers (JSON flavor of test_golden's .hex machinery) ------ *)

let golden_dir =
  lazy
    (List.find_opt
       (fun d -> Sys.file_exists d && Sys.is_directory d)
       [ "golden"; "test/golden" ])

let golden_path name =
  match Lazy.force golden_dir with
  | Some d -> Filename.concat d (name ^ ".json")
  | None -> Alcotest.fail "no golden directory found (golden/ or test/golden/)"

let regenerate_hint = "GOLDEN_UPDATE=1 dune exec test/main.exe -- test provenance"

let check_golden name actual =
  if Sys.getenv_opt "GOLDEN_UPDATE" = Some "1" then begin
    let oc = open_out_bin (golden_path name) in
    output_string oc actual;
    close_out oc
  end
  else begin
    let path = golden_path name in
    if not (Sys.file_exists path) then
      Alcotest.failf "missing golden file %s — create it with:\n  %s" path
        regenerate_hint;
    let ic = open_in_bin path in
    let expected = really_input_string ic (in_channel_length ic) in
    close_in ic;
    if not (String.equal expected actual) then
      Alcotest.failf
        "%s differs from %s (%d vs %d bytes).\n\
         If this schema change is intentional, regenerate with:\n\
        \  %s"
        name path (String.length expected) (String.length actual)
        regenerate_hint
  end

(* --- recorder basics ---------------------------------------------------- *)

let attempt ?(p = "10.1.0.0/16") () =
  {
    R.at_prefix = prefix p;
    at_from_iface = 0;
    at_rate_bps = 1e9;
    at_candidates = [];
    at_outcome = R.No_target;
  }

let test_noop_inert () =
  Alcotest.(check bool) "disabled" false (R.enabled R.noop);
  R.begin_cycle R.noop ~index:1 ~time_s:0;
  R.record_attempt R.noop (attempt ());
  R.set_degraded R.noop "nope";
  R.end_cycle R.noop;
  Alcotest.(check int) "no cycles" 0 (List.length (R.cycles R.noop));
  Alcotest.(check bool) "no latest" true (R.latest R.noop = None)

let test_ring_bound () =
  let t = R.create ~capacity:3 () in
  Alcotest.(check int) "capacity" 3 (R.capacity t);
  for i = 1 to 5 do
    R.begin_cycle t ~index:i ~time_s:(i * 60);
    R.end_cycle t
  done;
  let idx = List.map (fun c -> c.R.cy_index) (R.cycles t) in
  Alcotest.(check (list int)) "last 3, oldest first" [ 3; 4; 5 ] idx;
  Alcotest.(check bool) "evicted" true (R.find_cycle t ~index:1 = None);
  Alcotest.(check bool) "retained" true (R.find_cycle t ~index:5 <> None)

let test_begin_commits_open_cycle () =
  let t = R.create () in
  R.begin_cycle t ~index:1 ~time_s:0;
  R.record_attempt t (attempt ());
  (* no end_cycle: the next begin must commit cycle 1 *)
  R.begin_cycle t ~index:2 ~time_s:60;
  R.end_cycle t;
  let idx = List.map (fun c -> c.R.cy_index) (R.cycles t) in
  Alcotest.(check (list int)) "both committed" [ 1; 2 ] idx;
  match R.find_cycle t ~index:1 with
  | Some c -> Alcotest.(check int) "attempt kept" 1 (List.length c.R.cy_attempts)
  | None -> Alcotest.fail "cycle 1 lost"

(* --- the full causal chain through the controller ----------------------- *)

(* Test_core's PoP with the private 10G interface pushed to 14G: the
   allocator must detour, so every pipeline stage leaves a record. *)
let overloaded_snapshot () =
  let fx = Test_core.fixture () in
  Test_core.snapshot fx
    [ (Test_core.pfx_a, 8e9); (Test_core.pfx_b, 6e9); (Test_core.pfx_c, 2e9) ]

let test_controller_causal_chain () =
  let snap = overloaded_snapshot () in
  let tr = R.create () in
  let ctrl = Ef.Controller.create ~trace:tr ~name:"test" () in
  ignore (Ef.Controller.cycle ctrl snap);
  let c =
    match R.latest tr with Some c -> c | None -> Alcotest.fail "no cycle"
  in
  Alcotest.(check int) "cycle index" 1 c.R.cy_index;
  Alcotest.(check int) "iface rows" 3 (List.length c.R.cy_ifaces);
  Alcotest.(check bool) "attempts recorded" true (c.R.cy_attempts <> []);
  let moved =
    List.filter
      (fun a -> match a.R.at_outcome with R.Moved _ -> true | _ -> false)
      c.R.cy_attempts
  in
  Alcotest.(check bool) "something moved" true (moved <> []);
  (* every successful move examined candidates and one was Chosen *)
  List.iter
    (fun a ->
      Alcotest.(check bool) "candidates examined" true (a.R.at_candidates <> []);
      Alcotest.(check bool) "one chosen" true
        (List.exists (fun cd -> cd.R.cand_verdict = R.Chosen) a.R.at_candidates))
    moved;
  Alcotest.(check bool) "enforced recorded" true (c.R.cy_enforced <> []);
  List.iter
    (fun e ->
      Alcotest.(check bool) "override community applied" true
        (List.mem "65000:911" e.R.en_communities);
      Alcotest.(check bool) "local pref set" true (e.R.en_local_pref > 0))
    c.R.cy_enforced;
  Alcotest.(check bool) "hysteresis installed" true
    (List.exists
       (fun h -> h.R.hy_disposition = R.Installed)
       c.R.cy_hys);
  Alcotest.(check bool) "overloaded prefixes touched" true
    (R.touched c Test_core.pfx_a || R.touched c Test_core.pfx_b);
  (* a second cycle on the same snapshot keeps the override *)
  ignore (Ef.Controller.cycle ctrl snap);
  let c2 =
    match R.latest tr with Some c -> c | None -> Alcotest.fail "no cycle 2"
  in
  Alcotest.(check int) "second cycle" 2 c2.R.cy_index;
  Alcotest.(check bool) "kept on second cycle" true
    (List.exists
       (fun h -> match h.R.hy_disposition with R.Kept _ -> true | _ -> false)
       c2.R.cy_hys)

let test_explain_chain () =
  let snap = overloaded_snapshot () in
  let tr = R.create () in
  let ctrl = Ef.Controller.create ~trace:tr ~name:"test" () in
  ignore (Ef.Controller.cycle ctrl snap);
  let c =
    match R.latest tr with Some c -> c | None -> Alcotest.fail "no cycle"
  in
  let p = (List.hd c.R.cy_attempts).R.at_prefix in
  (match Ef_trace.Explain.explain tr p with
  | Ok text ->
      Alcotest.(check bool) "names the prefix" true
        (string_contains ~needle:(Bgp.Prefix.to_string p) text);
      Alcotest.(check bool) "shows the allocator stage" true
        (string_contains ~needle:"allocator" text)
  | Error e -> Alcotest.failf "explain failed: %s" e);
  match Ef_trace.Explain.explain tr (prefix "192.0.2.0/24") with
  | Ok _ -> Alcotest.fail "untouched prefix should not explain"
  | Error _ -> ()

let test_guard_budget_drops () =
  let snap = overloaded_snapshot () in
  let alloc = Ef.Allocator.run ~config:Ef.Config.default snap in
  Alcotest.(check bool) "allocator proposes overrides" true
    (alloc.Ef.Allocator.overrides <> []);
  let tr = R.create () in
  R.begin_cycle tr ~index:1 ~time_s:0;
  let gcfg =
    {
      Ef.Guard.max_detour_fraction = None;
      max_overrides = Some 0;
      check_targets = false;
      target_threshold = 1.0;
    }
  in
  let kept, dropped =
    Ef.Guard.clamp ~trace:tr gcfg snap alloc.Ef.Allocator.overrides
  in
  R.end_cycle tr;
  Alcotest.(check int) "budget 0 keeps nothing" 0 (List.length kept);
  let c =
    match R.latest tr with Some c -> c | None -> Alcotest.fail "no cycle"
  in
  Alcotest.(check int) "every drop recorded" (List.length dropped)
    (List.length c.R.cy_guard);
  List.iter
    (fun g -> Alcotest.(check bool) "budget reason" true (g.R.gd_reason = R.Budget))
    c.R.cy_guard

(* --- determinism + goldens ---------------------------------------------- *)

let traced_run () =
  let tr = R.create () in
  let reg = O.Registry.create () in
  let sink, events = O.Registry.memory_sink () in
  O.Registry.add_sink reg sink;
  let config =
    S.Engine.make_config ~cycle_s:60 ~duration_s:300 ~start_s:(18 * 3600)
      ~controller_enabled:true ~use_sampling:true ~seed:3 ~trace:tr ()
  in
  let e = S.Engine.create ~config ~obs:reg Ef_netsim.Scenario.tiny in
  ignore (S.Engine.run e);
  (tr, events ())

let trace_json tr = O.Json.to_string (R.to_json tr) ^ "\n"

(* journal lines with the monotonic [t_ns] stamp stripped — everything
   else in an event is a function of seed + scenario *)
let journal_lines events =
  String.concat ""
    (List.map
       (fun e ->
         O.Json.to_string
           (O.Json.Obj
              (("event", O.Json.String e.O.Registry.Event.ev_name)
              :: e.O.Registry.Event.ev_fields))
         ^ "\n")
       events)

let test_trace_deterministic () =
  let tr1, _ = traced_run () and tr2, _ = traced_run () in
  let j1 = trace_json tr1 and j2 = trace_json tr2 in
  Alcotest.(check bool) "non-trivial" true (String.length j1 > 100);
  Alcotest.(check bool) "byte-identical across runs" true (String.equal j1 j2)

let test_trace_golden () =
  let tr, _ = traced_run () in
  check_golden "trace" (trace_json tr)

let test_journal_golden () =
  let _, events = traced_run () in
  Alcotest.(check bool) "journal non-empty" true (events <> []);
  check_golden "journal" (journal_lines events)

(* --- OpenMetrics export ------------------------------------------------- *)

let test_prom_registry_render () =
  let reg = O.Registry.create () in
  let c = O.Registry.counter reg "engine.steps" in
  O.Counter.add c 3.0;
  let g = O.Registry.gauge reg "offered_bps" in
  O.Gauge.set g 1.5e9;
  let h = O.Registry.histogram reg "empty.hist" in
  ignore h;
  let s = O.Registry.span reg "controller.cycle" in
  O.Histogram.observe s 0.25;
  let out = O.Prom.of_registry reg in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" needle) true
        (string_contains ~needle out))
    [
      "# TYPE engine_steps counter";
      "engine_steps_total 3.0\n";
      "# TYPE offered_bps gauge";
      "offered_bps 1500000000.0\n";
      "# TYPE empty_hist summary";
      (* the clamped empty-histogram quantile: 0.0, never NaN *)
      "empty_hist{quantile=\"0.5\"} 0.0\n";
      "empty_hist_count 0.0\n";
      "# TYPE controller_cycle_seconds summary";
      "controller_cycle_seconds_sum 0.25\n";
    ];
  Alcotest.(check bool) "ends with EOF marker" true
    (String.length out >= 6
    && String.sub out (String.length out - 6) 6 = "# EOF\n")

let test_prom_label_escaping () =
  let fam =
    {
      O.Prom.fam_name = "weird metric";
      fam_help = "multi\nline";
      fam_kind = O.Prom.Gauge;
      fam_samples =
        [ O.Prom.sample ~labels:[ ("iface", "pni\"0\"\nup") ] 1.0 ];
    }
  in
  let out = O.Prom.render [ fam ] in
  Alcotest.(check bool) "name sanitized" true
    (string_contains ~needle:"# TYPE weird_metric gauge" out);
  Alcotest.(check bool) "help on one line" true
    (string_contains ~needle:"# HELP weird_metric multi line" out);
  Alcotest.(check bool) "label escaped" true
    (string_contains ~needle:"{iface=\"pni\\\"0\\\"\\nup\"} 1.0" out)

let test_trace_prom_families () =
  let snap = overloaded_snapshot () in
  let tr = R.create () in
  let ctrl = Ef.Controller.create ~trace:tr ~name:"test" () in
  ignore (Ef.Controller.cycle ctrl snap);
  let fams = Ef_trace.Export.prom_families tr in
  let find name = List.find_opt (fun f -> f.O.Prom.fam_name = name) fams in
  (match find "ef_trace_cycles_retained" with
  | Some f -> (
      match f.O.Prom.fam_samples with
      | [ s ] -> Alcotest.(check (float 0.0)) "one cycle" 1.0 s.O.Prom.s_value
      | _ -> Alcotest.fail "occupancy sample shape")
  | None -> Alcotest.fail "missing ef_trace_cycles_retained");
  (match find "ef_trace_override_churn" with
  | Some f ->
      let v action =
        List.find_map
          (fun s ->
            if s.O.Prom.s_labels = [ ("action", action) ] then
              Some s.O.Prom.s_value
            else None)
          f.O.Prom.fam_samples
      in
      Alcotest.(check bool) "installs counted" true (v "installed" = Some 1.0 || (match v "installed" with Some x -> x > 1.0 | None -> false))
  | None -> Alcotest.fail "missing ef_trace_override_churn");
  match find "ef_trace_iface_utilization" with
  | Some f ->
      let views =
        List.filter_map
          (fun s -> List.assoc_opt "view" s.O.Prom.s_labels)
          f.O.Prom.fam_samples
      in
      Alcotest.(check bool) "projected view" true (List.mem "projected" views);
      Alcotest.(check bool) "enforced view" true (List.mem "enforced" views);
      (* no simulator ran, so nothing annotated actuals *)
      Alcotest.(check bool) "no actual view" true (not (List.mem "actual" views))
  | None -> Alcotest.fail "missing ef_trace_iface_utilization"

let test_trace_prom_actual_view () =
  (* through the engine the simulator annotates ground truth *)
  let tr, _ = traced_run () in
  let fams = Ef_trace.Export.prom_families tr in
  match List.find_opt (fun f -> f.O.Prom.fam_name = "ef_trace_iface_utilization") fams with
  | Some f ->
      Alcotest.(check bool) "actual view annotated" true
        (List.exists
           (fun s -> List.assoc_opt "view" s.O.Prom.s_labels = Some "actual")
           f.O.Prom.fam_samples)
  | None -> Alcotest.fail "missing ef_trace_iface_utilization"

let suite =
  [
    Alcotest.test_case "noop is inert" `Quick test_noop_inert;
    Alcotest.test_case "ring bound" `Quick test_ring_bound;
    Alcotest.test_case "begin commits open cycle" `Quick
      test_begin_commits_open_cycle;
    Alcotest.test_case "controller causal chain" `Quick
      test_controller_causal_chain;
    Alcotest.test_case "explain chain" `Quick test_explain_chain;
    Alcotest.test_case "guard budget drops" `Quick test_guard_budget_drops;
    Alcotest.test_case "trace deterministic" `Quick test_trace_deterministic;
    Alcotest.test_case "trace golden" `Quick test_trace_golden;
    Alcotest.test_case "journal golden" `Quick test_journal_golden;
    Alcotest.test_case "prom registry render" `Quick test_prom_registry_render;
    Alcotest.test_case "prom label escaping" `Quick test_prom_label_escaping;
    Alcotest.test_case "trace prom families" `Quick test_trace_prom_families;
    Alcotest.test_case "trace prom actual view" `Quick
      test_trace_prom_actual_view;
  ]
