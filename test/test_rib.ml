(* ef_bgp: RIB behaviour *)

module Bgp = Ef_bgp
open Helpers

let make_rib () =
  let rib = Bgp.Rib.create () in
  let p1 = peer ~kind:Bgp.Peer.Private_peer ~asn:100 1 in
  let p2 = peer ~kind:Bgp.Peer.Transit ~asn:10 2 in
  let p3 = peer ~kind:Bgp.Peer.Transit ~asn:11 3 in
  let policy = Ef_policy.standard_import_map ~self_asn:(Bgp.Asn.of_int 64500) in
  Bgp.Rib.add_peer rib p1 ~policy;
  Bgp.Rib.add_peer rib p2 ~policy;
  Bgp.Rib.add_peer rib p3 ~policy;
  rib

let announce rib ~peer_id ~path p =
  Bgp.Rib.announce rib ~peer_id (prefix p)
    (attrs ~path ~next_hop:(Printf.sprintf "172.16.0.%d" peer_id) ())

let test_announce_becomes_best () =
  let rib = make_rib () in
  let changes = announce rib ~peer_id:2 ~path:[ 10; 100 ] "10.0.0.0/16" in
  Alcotest.(check int) "one change" 1 (List.length changes);
  match Bgp.Rib.best rib (prefix "10.0.0.0/16") with
  | None -> Alcotest.fail "no best"
  | Some r -> Alcotest.(check int) "via transit" 2 (Bgp.Route.peer_id r)

let test_policy_tier_decides_best () =
  let rib = make_rib () in
  ignore (announce rib ~peer_id:2 ~path:[ 10; 100 ] "10.0.0.0/16");
  (* private peer announces a longer path but wins on the policy tier *)
  ignore (announce rib ~peer_id:1 ~path:[ 100; 200; 300 ] "10.0.0.0/16");
  match Bgp.Rib.best rib (prefix "10.0.0.0/16") with
  | None -> Alcotest.fail "no best"
  | Some r -> Alcotest.(check int) "private wins" 1 (Bgp.Route.peer_id r)

let test_ranked_order () =
  let rib = make_rib () in
  ignore (announce rib ~peer_id:2 ~path:[ 10; 100 ] "10.0.0.0/16");
  ignore (announce rib ~peer_id:3 ~path:[ 11; 5; 100 ] "10.0.0.0/16");
  ignore (announce rib ~peer_id:1 ~path:[ 100 ] "10.0.0.0/16");
  let ranked = Bgp.Rib.ranked rib (prefix "10.0.0.0/16") in
  Alcotest.(check (list int)) "private, short transit, long transit" [ 1; 2; 3 ]
    (List.map Bgp.Route.peer_id ranked)

let test_withdraw_promotes_next () =
  let rib = make_rib () in
  ignore (announce rib ~peer_id:1 ~path:[ 100 ] "10.0.0.0/16");
  ignore (announce rib ~peer_id:2 ~path:[ 10; 100 ] "10.0.0.0/16");
  let changes = Bgp.Rib.withdraw rib ~peer_id:1 (prefix "10.0.0.0/16") in
  Alcotest.(check int) "change emitted" 1 (List.length changes);
  (match changes with
  | [ { Bgp.Rib.old_best = Some old_r; new_best = Some new_r; _ } ] ->
      Alcotest.(check int) "old was private" 1 (Bgp.Route.peer_id old_r);
      Alcotest.(check int) "new is transit" 2 (Bgp.Route.peer_id new_r)
  | _ -> Alcotest.fail "unexpected change shape");
  match Bgp.Rib.best rib (prefix "10.0.0.0/16") with
  | Some r -> Alcotest.(check int) "transit now best" 2 (Bgp.Route.peer_id r)
  | None -> Alcotest.fail "no best after withdraw"

let test_withdraw_absent_is_noop () =
  let rib = make_rib () in
  let changes = Bgp.Rib.withdraw rib ~peer_id:1 (prefix "10.0.0.0/16") in
  Alcotest.(check int) "no change" 0 (List.length changes)

let test_reannounce_same_no_change () =
  let rib = make_rib () in
  ignore (announce rib ~peer_id:1 ~path:[ 100 ] "10.0.0.0/16");
  let changes = announce rib ~peer_id:1 ~path:[ 100 ] "10.0.0.0/16" in
  Alcotest.(check int) "no best change" 0 (List.length changes)

let test_implicit_withdraw_replaces () =
  let rib = make_rib () in
  ignore (announce rib ~peer_id:1 ~path:[ 100 ] "10.0.0.0/16");
  ignore (announce rib ~peer_id:1 ~path:[ 100; 200 ] "10.0.0.0/16");
  let ranked = Bgp.Rib.ranked rib (prefix "10.0.0.0/16") in
  Alcotest.(check int) "one candidate" 1 (List.length ranked);
  Alcotest.(check int) "new path" 2 (Bgp.Route.as_path_length (List.hd ranked))

let test_rejected_by_policy_not_stored () =
  let rib = make_rib () in
  (* path contains our own ASN: the ingest policy rejects it *)
  let changes = announce rib ~peer_id:2 ~path:[ 10; 64500; 100 ] "10.0.0.0/16" in
  Alcotest.(check int) "no change" 0 (List.length changes);
  Alcotest.(check int) "nothing in loc-rib" 0
    (List.length (Bgp.Rib.candidates rib (prefix "10.0.0.0/16")));
  (* but the raw route sits in Adj-RIB-In *)
  Alcotest.(check int) "adj-rib-in has it" 1
    (List.length (Bgp.Rib.adj_rib_in rib ~peer_id:2))

let test_rejected_announce_removes_previous () =
  let rib = make_rib () in
  ignore (announce rib ~peer_id:2 ~path:[ 10; 100 ] "10.0.0.0/16");
  (* the same peer re-announces with a now-rejected path: candidate must go *)
  let changes = announce rib ~peer_id:2 ~path:[ 10; 64500; 100 ] "10.0.0.0/16" in
  Alcotest.(check int) "best-change to none" 1 (List.length changes);
  Alcotest.(check int) "no candidates" 0
    (List.length (Bgp.Rib.candidates rib (prefix "10.0.0.0/16")))

let test_drop_peer_flushes () =
  let rib = make_rib () in
  ignore (announce rib ~peer_id:1 ~path:[ 100 ] "10.0.0.0/16");
  ignore (announce rib ~peer_id:1 ~path:[ 100 ] "10.1.0.0/16");
  ignore (announce rib ~peer_id:2 ~path:[ 10; 100 ] "10.0.0.0/16");
  let changes = Bgp.Rib.drop_peer rib ~peer_id:1 in
  Alcotest.(check int) "two best changes" 2 (List.length changes);
  Alcotest.(check int) "peer's adj-rib-in empty" 0
    (List.length (Bgp.Rib.adj_rib_in rib ~peer_id:1));
  Alcotest.(check int) "other peer's route survives" 1
    (List.length (Bgp.Rib.candidates rib (prefix "10.0.0.0/16")))

let test_lookup_lpm () =
  let rib = make_rib () in
  ignore (announce rib ~peer_id:2 ~path:[ 10; 100 ] "10.0.0.0/8");
  ignore (announce rib ~peer_id:1 ~path:[ 100 ] "10.1.0.0/16");
  (match Bgp.Rib.lookup rib (ip "10.1.2.3") with
  | Some (p, r) ->
      Alcotest.check prefix_t "specific" (prefix "10.1.0.0/16") p;
      Alcotest.(check int) "via private" 1 (Bgp.Route.peer_id r)
  | None -> Alcotest.fail "no match");
  match Bgp.Rib.lookup rib (ip "10.200.0.1") with
  | Some (p, _) -> Alcotest.check prefix_t "coarse" (prefix "10.0.0.0/8") p
  | None -> Alcotest.fail "no match"

let test_counts () =
  let rib = make_rib () in
  ignore (announce rib ~peer_id:1 ~path:[ 100 ] "10.0.0.0/16");
  ignore (announce rib ~peer_id:2 ~path:[ 10; 100 ] "10.0.0.0/16");
  ignore (announce rib ~peer_id:2 ~path:[ 10; 200 ] "10.1.0.0/16");
  Alcotest.(check int) "prefixes" 2 (Bgp.Rib.prefix_count rib);
  Alcotest.(check int) "routes" 3 (Bgp.Rib.route_count rib)

let test_unknown_peer_rejected () =
  let rib = make_rib () in
  Alcotest.check_raises "unknown peer" (Invalid_argument "Rib: unknown peer id 99")
    (fun () -> ignore (announce rib ~peer_id:99 ~path:[ 1 ] "10.0.0.0/8"))

let test_duplicate_peer_rejected () =
  let rib = make_rib () in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Rib.add_peer: duplicate peer id 1") (fun () ->
      Bgp.Rib.add_peer rib (peer 1) ~policy:Bgp.Policy.accept_all)

let test_multi_prefix_update () =
  let rib = make_rib () in
  let update =
    {
      Bgp.Msg.withdrawn = [];
      attrs = Some (attrs ~path:[ 10; 100 ] ());
      nlri = [ prefix "10.0.0.0/16"; prefix "10.1.0.0/16"; prefix "10.2.0.0/16" ];
    }
  in
  let changes = Bgp.Rib.apply_update rib ~peer_id:2 update in
  Alcotest.(check int) "three changes" 3 (List.length changes);
  Alcotest.(check int) "three prefixes" 3 (Bgp.Rib.prefix_count rib)

let suite =
  [
    Alcotest.test_case "announce becomes best" `Quick test_announce_becomes_best;
    Alcotest.test_case "policy tier decides" `Quick test_policy_tier_decides_best;
    Alcotest.test_case "ranked order" `Quick test_ranked_order;
    Alcotest.test_case "withdraw promotes next" `Quick test_withdraw_promotes_next;
    Alcotest.test_case "withdraw absent noop" `Quick test_withdraw_absent_is_noop;
    Alcotest.test_case "reannounce same no change" `Quick
      test_reannounce_same_no_change;
    Alcotest.test_case "implicit withdraw" `Quick test_implicit_withdraw_replaces;
    Alcotest.test_case "policy rejection" `Quick test_rejected_by_policy_not_stored;
    Alcotest.test_case "rejected reannounce removes" `Quick
      test_rejected_announce_removes_previous;
    Alcotest.test_case "drop peer flushes" `Quick test_drop_peer_flushes;
    Alcotest.test_case "lookup lpm" `Quick test_lookup_lpm;
    Alcotest.test_case "counts" `Quick test_counts;
    Alcotest.test_case "unknown peer" `Quick test_unknown_peer_rejected;
    Alcotest.test_case "duplicate peer" `Quick test_duplicate_peer_rejected;
    Alcotest.test_case "multi-prefix update" `Quick test_multi_prefix_update;
  ]
