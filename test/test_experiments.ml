(* ef_sim: experiment-driver smoke tests (static experiments only — the
   dynamic ones simulate whole days and are exercised by the bench). *)

module E = Ef_sim.Experiments
module Table = Ef_stats.Table

let test_e1_shape () =
  let t = E.e1_peering () in
  (* 4 PoPs x 4 neighbor kinds *)
  Alcotest.(check int) "rows" 16 (Table.row_count t);
  let rendered = Table.render t in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true
        (Helpers.string_contains ~needle rendered))
    [ "pop-a"; "pop-d"; "transit"; "private"; "route-server" ]

let test_e2_shape () =
  let t = E.e2_route_diversity () in
  Alcotest.(check int) "one row per pop" 4 (Table.row_count t);
  (* every cell ends in % and >=1 coverage is 100% everywhere *)
  let rendered = Table.render t in
  Alcotest.(check bool) "full >=1 coverage" true
    (Helpers.string_contains ~needle:"100.0%" rendered)

let test_e3_shape () =
  let t = E.e3_preference_mix () in
  Alcotest.(check int) "one row per pop" 4 (Table.row_count t)

let test_cache_stability () =
  (* repeated calls reuse cached worlds: identical output *)
  let a = Table.render (E.e3_preference_mix ()) in
  let b = Table.render (E.e3_preference_mix ()) in
  Alcotest.(check string) "deterministic" a b

let test_jobs_invariance () =
  (* the parallel prewarm path must produce the exact table the
     sequential path does; short day to keep the test quick *)
  let params cycle_s jobs =
    { E.default_params with E.cycle_s; duration_s = 2 * 3600; jobs }
  in
  E.clear_cache ();
  let seq = Table.render (E.e4_bgp_only_overload ~params:(params 600 1) ()) in
  E.clear_cache ();
  let par = Table.render (E.e4_bgp_only_overload ~params:(params 600 4) ()) in
  Alcotest.(check string) "e4 identical at jobs=1 and jobs=4" seq par

let suite =
  [
    Alcotest.test_case "e1 shape" `Quick test_e1_shape;
    Alcotest.test_case "e2 shape" `Quick test_e2_shape;
    Alcotest.test_case "e3 shape" `Quick test_e3_shape;
    Alcotest.test_case "cache stability" `Quick test_cache_stability;
    Alcotest.test_case "jobs invariance" `Slow test_jobs_invariance;
  ]
