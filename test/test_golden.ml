(* Golden wire images: exact byte-level expectations for the codecs.

   Expected bytes live in committed files under test/golden/*.hex (hex,
   one line per image), originally computed by hand from RFC 4271/7854 —
   they pin the wire format so a refactor that still round-trips but
   changes the encoding (field order, widths, flags) is caught.

   On mismatch the failure shows both images and how to regenerate; when
   a wire-format change is intentional, refresh the files with

     GOLDEN_UPDATE=1 dune exec test/main.exe -- test golden

   from the repository root (running under plain `dune runtest` only
   rewrites the sandboxed copies). *)

module Bgp = Ef_bgp
module C = Ef_collector
open Helpers

let hex_of_string s =
  String.concat "" (List.map (Printf.sprintf "%02x") (List.map Char.code (List.init (String.length s) (String.get s))))

(* the goldens live in test/golden relative to the repo root and in
   golden/ relative to the dune test sandbox; find whichever exists *)
let golden_dir =
  lazy
    (List.find_opt
       (fun d -> Sys.file_exists d && Sys.is_directory d)
       [ "golden"; "test/golden" ])

let golden_path name =
  match Lazy.force golden_dir with
  | Some d -> Filename.concat d (name ^ ".hex")
  | None -> Alcotest.fail "no golden directory found (golden/ or test/golden/)"

let read_golden name =
  let path = golden_path name in
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let contents = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Some (String.trim contents)
  end

let regenerate_hint = "GOLDEN_UPDATE=1 dune exec test/main.exe -- test golden"

let check_golden name actual =
  let hex = hex_of_string actual in
  if Sys.getenv_opt "GOLDEN_UPDATE" = Some "1" then begin
    let oc = open_out_bin (golden_path name) in
    output_string oc (hex ^ "\n");
    close_out oc
  end
  else
    match read_golden name with
    | None ->
        Alcotest.failf "missing golden file %s — create it with:\n  %s"
          (golden_path name) regenerate_hint
    | Some expected ->
        if not (String.equal expected hex) then
          Alcotest.failf
            "wire image for %S differs from %s:\n\
            \  expected: %s\n\
            \  actual:   %s\n\
             If this wire-format change is intentional, regenerate with:\n\
            \  %s"
            name (golden_path name) expected hex regenerate_hint

let check_hex name expected actual =
  Alcotest.(check string) name expected (hex_of_string actual)

let test_keepalive_bytes () =
  (* 16 x ff, length 0x0013 = 19, type 4 *)
  check_golden "keepalive" (Bgp.Codec.encode Bgp.Msg.Keepalive)

let test_open_bytes () =
  (* OPEN: version 4, my_as 64500 = 0xfbf4, hold 90 = 0x005a,
     id 10.0.0.1 = 0a000001, opt params: type 2 (caps) len 6:
     cap 65 (0x41) len 4: 64500 = 0x0000fbf4. *)
  let msg =
    Bgp.Msg.make_open ~asn:(Bgp.Asn.of_int 64500) ~bgp_id:(ip "10.0.0.1") ()
  in
  check_golden "open" (Bgp.Codec.encode msg)

let test_open_as_trans_bytes () =
  (* a 4-byte ASN puts AS_TRANS (23456 = 0x5ba0) in the 2-byte field *)
  let msg =
    Bgp.Msg.make_open ~asn:(Bgp.Asn.of_int 4200000000) ~bgp_id:(ip "10.0.0.1") ()
  in
  let wire = Bgp.Codec.encode msg in
  check_hex "as_trans field" "5ba0" (String.sub wire 20 2);
  (* and the real ASN in the capability: 4200000000 = 0xfa56ea00 *)
  check_hex "capability asn" "fa56ea00"
    (String.sub wire (String.length wire - 4) 4)

let test_update_bytes () =
  (* UPDATE with no withdrawals, ORIGIN+AS_PATH+NEXT_HOP, one /24:
       ORIGIN:   40 01 01 00
       AS_PATH:  40 02 06 02 01 0000fbf4   (one SEQ of one 4-byte ASN)
       NEXT_HOP: 40 03 04 0a000001
     nlri: 18 cb 00 71  (203.0.113.0/24) *)
  let attrs =
    Bgp.Attrs.make
      ~as_path:(Bgp.As_path.of_list [ Bgp.Asn.of_int 64500 ])
      ~next_hop:(ip "10.0.0.1") ()
  in
  let msg = Bgp.Msg.make_update ~attrs ~nlri:[ prefix "203.0.113.0/24" ] () in
  check_golden "update" (Bgp.Codec.encode msg)

let test_update_withdraw_bytes () =
  (* withdraw-only UPDATE: withdrawn len 4 (one /24), attr len 0 *)
  let msg = Bgp.Msg.make_update ~withdrawn:[ prefix "203.0.113.0/24" ] () in
  check_golden "withdraw" (Bgp.Codec.encode msg)

let test_notification_bytes () =
  (* NOTIFICATION hold-timer-expired: code 4 subcode 0 *)
  let msg = Bgp.Msg.Notification { code = Bgp.Msg.Hold_timer_expired; data = "" } in
  check_golden "notification" (Bgp.Codec.encode msg)

let test_communities_bytes () =
  (* COMMUNITIES attr: flags c0 (optional transitive), type 08, len 04,
     65000:911 = fde8 038f *)
  let attrs =
    Bgp.Attrs.make
      ~communities:[ Bgp.Community.make 65000 911 ]
      ~as_path:(Bgp.As_path.of_list [ Bgp.Asn.of_int 1 ])
      ~next_hop:(ip "10.0.0.1") ()
  in
  let msg = Bgp.Msg.make_update ~attrs ~nlri:[ prefix "10.0.0.0/8" ] () in
  let wire = Bgp.Codec.encode msg in
  Alcotest.(check bool) "contains communities attr" true
    (Helpers.string_contains ~needle:"\xc0\x08\x04\xfd\xe8\x03\x8f" wire)

let test_route_refresh_bytes () =
  (* type 5, afi 1, reserved 0, safi 1 *)
  check_golden "route_refresh"
    (Bgp.Codec.encode (Bgp.Msg.Route_refresh { afi = 1; safi = 1 }))

let test_bmp_header_bytes () =
  (* BMP common header: version 3, length 12, type 5 (termination) + TLV
     (type 1, len 2, reason 1) *)
  check_golden "bmp_termination" (C.Bmp.encode (C.Bmp.Termination { reason = 1 }))

let test_prefix_padding_bits_masked () =
  (* RFC: trailing bits in the prefix field are irrelevant; decoder must
     mask them. Hand-build an update with 0xff in a /20's last byte. *)
  let attrs_hex =
    "400101" ^ "00" ^ "400206" ^ "0201" ^ "00000001" ^ "400304" ^ "0a000001"
  in
  let body_hex = "0000" ^ "0014" ^ attrs_hex ^ "14" ^ "0a01ff" in
  (* /20 = 0x14, bytes 0a 01 f0|0f: 10.1.240+15... 0a01ff has low 4 bits set *)
  let total = 19 + (String.length body_hex / 2) in
  let marker = String.concat "" (List.init 16 (fun _ -> "ff")) in
  let hex = marker ^ Printf.sprintf "%04x" total ^ "02" ^ body_hex in
  let wire =
    String.init (String.length hex / 2) (fun i ->
        Char.chr (int_of_string ("0x" ^ String.sub hex (2 * i) 2)))
  in
  match Bgp.Codec.decode wire with
  | Ok (Bgp.Msg.Update { nlri = [ p ]; _ }, _) ->
      Alcotest.check prefix_t "masked" (prefix "10.1.240.0/20") p
  | Ok _ -> Alcotest.fail "wrong message shape"
  | Error e -> Alcotest.failf "decode: %s" (Bgp.Codec.error_to_string e)

(* an MRT TABLE_DUMP_V2 image built entirely by hand: one peer-index
   record (collector, view, two peers) and two RIB_IPV4_UNICAST records.
   Pins the dump framing so recorded archives stay readable across
   refactors; regenerate with GOLDEN_UPDATE=1 if the format changes on
   purpose. *)
let golden_mrt =
  {
    Bgp.Mrt.collector_id = ip "192.0.2.1";
    view_name = "edge-fabric";
    peers =
      [
        {
          Bgp.Mrt.peer_bgp_id = ip "10.0.0.1";
          peer_addr = ip "172.16.0.1";
          peer_asn = Bgp.Asn.of_int 64500;
        };
        {
          Bgp.Mrt.peer_bgp_id = ip "10.0.0.2";
          peer_addr = ip "172.16.0.2";
          peer_asn = Bgp.Asn.of_int 65001;
        };
      ];
    records =
      [
        {
          Bgp.Mrt.sequence = 0;
          rib_prefix = prefix "10.1.0.0/16";
          entries =
            [
              {
                Bgp.Mrt.entry_peer_index = 0;
                originated_at = 1700000000;
                attrs = attrs ~path:[ 64500; 7 ] ();
              };
              {
                Bgp.Mrt.entry_peer_index = 1;
                originated_at = 1700000000;
                attrs = attrs ~path:[ 65001; 8; 7 ] ~med:(Some 10) ();
              };
            ];
        };
        {
          Bgp.Mrt.sequence = 1;
          rib_prefix = prefix "10.2.0.0/24";
          entries =
            [
              {
                Bgp.Mrt.entry_peer_index = 1;
                originated_at = 1700000100;
                attrs = attrs ~path:[ 65001; 9 ] ();
              };
            ];
        };
      ];
  }

let test_mrt_dump_bytes () =
  check_golden "mrt_table_dump" (Bgp.Mrt.encode ~timestamp:1700000000 golden_mrt)

(* the pinned image must also round-trip: decode it back and rebuild a
   RIB — the import side of the archive format *)
let test_mrt_dump_roundtrip () =
  let wire = Bgp.Mrt.encode ~timestamp:1700000000 golden_mrt in
  match Bgp.Mrt.decode wire with
  | Error e -> Alcotest.failf "decode: %a" Bgp.Mrt.pp_error e
  | Ok got -> (
      Alcotest.(check string) "re-encode byte-identical"
        (hex_of_string wire)
        (hex_of_string (Bgp.Mrt.encode ~timestamp:1700000000 got));
      match Bgp.Mrt.to_rib got with
      | Error e -> Alcotest.failf "to_rib: %a" Bgp.Mrt.pp_error e
      | Ok rib ->
          Alcotest.(check int) "prefixes" 2 (Bgp.Rib.prefix_count rib);
          Alcotest.(check int) "routes" 3 (Bgp.Rib.route_count rib))

let suite =
  [
    Alcotest.test_case "keepalive bytes" `Quick test_keepalive_bytes;
    Alcotest.test_case "open bytes" `Quick test_open_bytes;
    Alcotest.test_case "open as-trans bytes" `Quick test_open_as_trans_bytes;
    Alcotest.test_case "update bytes" `Quick test_update_bytes;
    Alcotest.test_case "withdraw bytes" `Quick test_update_withdraw_bytes;
    Alcotest.test_case "notification bytes" `Quick test_notification_bytes;
    Alcotest.test_case "communities bytes" `Quick test_communities_bytes;
    Alcotest.test_case "route refresh bytes" `Quick test_route_refresh_bytes;
    Alcotest.test_case "bmp header bytes" `Quick test_bmp_header_bytes;
    Alcotest.test_case "prefix padding masked" `Quick
      test_prefix_padding_bits_masked;
    Alcotest.test_case "mrt table dump bytes" `Quick test_mrt_dump_bytes;
    Alcotest.test_case "mrt table dump roundtrip" `Quick
      test_mrt_dump_roundtrip;
  ]
