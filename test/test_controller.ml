(* edge_fabric: Hysteresis and Controller *)

module Bgp = Ef_bgp
module N = Ef_netsim
module C = Ef_collector
module Ef = Edge_fabric
open Helpers

(* reuse the hand-built fixture from Test_core *)
let fixture = Test_core.fixture
let snapshot = Test_core.snapshot
let pfx_a = Test_core.pfx_a
let pfx_b = Test_core.pfx_b
let pfx_c = Test_core.pfx_c

let transit_target fx p =
  let snap = snapshot fx [ (p, 1e9) ] in
  List.find
    (fun r -> Bgp.Route.peer_kind r = Bgp.Peer.Transit)
    (C.Snapshot.routes snap p)

let override_for fx ?(rate = 1e9) p =
  Ef.Override.make ~prefix:p ~target:(transit_target fx p)
    ~from_iface:(N.Iface.id fx.Test_core.iface_private)
    ~to_iface:(N.Iface.id fx.Test_core.iface_transit)
    ~preference_level:1 ~rate_bps:rate

(* a projection whose private-iface utilization we control *)
let projection_with_private_load fx bps =
  let snap = snapshot fx [ (pfx_a, bps) ] in
  Ef.Projection.project snap

let damped_config = Ef.Config.default (* hold 60s, release at 0.85 *)

let test_hysteresis_installs_new () =
  let fx = fixture () in
  let h = Ef.Hysteresis.create damped_config in
  let o = override_for fx pfx_a in
  let r =
    Ef.Hysteresis.step h ~time_s:0 ~desired:[ o ]
      ~preferred:(projection_with_private_load fx 9.8e9)
  in
  Alcotest.(check int) "added" 1 (List.length r.Ef.Hysteresis.added);
  Alcotest.(check int) "active" 1 (List.length r.Ef.Hysteresis.active);
  Alcotest.(check (option int)) "installed at" (Some 0)
    (Ef.Hysteresis.installed_at h pfx_a)

let test_hysteresis_keeps_stable () =
  let fx = fixture () in
  let h = Ef.Hysteresis.create damped_config in
  let o = override_for fx pfx_a in
  let preferred = projection_with_private_load fx 9.8e9 in
  ignore (Ef.Hysteresis.step h ~time_s:0 ~desired:[ o ] ~preferred);
  let r = Ef.Hysteresis.step h ~time_s:30 ~desired:[ o ] ~preferred in
  Alcotest.(check int) "kept" 1 (List.length r.Ef.Hysteresis.kept);
  Alcotest.(check int) "no adds" 0 (List.length r.Ef.Hysteresis.added);
  Alcotest.(check int) "no removals" 0 (List.length r.Ef.Hysteresis.removed);
  (* installation time is preserved, not refreshed *)
  Alcotest.(check (option int)) "age preserved" (Some 0)
    (Ef.Hysteresis.installed_at h pfx_a)

let test_hysteresis_min_hold_blocks_release () =
  let fx = fixture () in
  let h = Ef.Hysteresis.create damped_config in
  let o = override_for fx pfx_a in
  (* demand collapsed: preferred iface would be at 10% — releasable on
     utilization, but the hold time has not matured *)
  let low = projection_with_private_load fx 1e9 in
  ignore (Ef.Hysteresis.step h ~time_s:0 ~desired:[ o ] ~preferred:low);
  let r = Ef.Hysteresis.step h ~time_s:30 ~desired:[] ~preferred:low in
  Alcotest.(check int) "not removed yet" 0 (List.length r.Ef.Hysteresis.removed);
  Alcotest.(check int) "deferred" 1 r.Ef.Hysteresis.deferred_releases;
  (* after maturity it releases, and the lifetime is reported *)
  let r = Ef.Hysteresis.step h ~time_s:90 ~desired:[] ~preferred:low in
  (match r.Ef.Hysteresis.removed with
  | [ (removed, age) ] ->
      Alcotest.check prefix_t "right prefix" pfx_a removed.Ef.Override.prefix;
      Alcotest.(check int) "age" 90 age
  | l -> Alcotest.failf "expected one removal, got %d" (List.length l));
  Alcotest.(check int) "inactive" 0 (Ef.Hysteresis.active_count h)

let test_hysteresis_release_needs_low_utilization () =
  let fx = fixture () in
  let h = Ef.Hysteresis.create damped_config in
  let o = override_for fx pfx_a in
  (* preferred iface still at 90% (> release threshold 85%): even after
     min-hold the override must stay — this is the flap damping *)
  let high = projection_with_private_load fx 9e9 in
  ignore (Ef.Hysteresis.step h ~time_s:0 ~desired:[ o ] ~preferred:high);
  let r = Ef.Hysteresis.step h ~time_s:300 ~desired:[] ~preferred:high in
  Alcotest.(check int) "still held" 0 (List.length r.Ef.Hysteresis.removed);
  Alcotest.(check int) "deferred" 1 r.Ef.Hysteresis.deferred_releases;
  (* once projected demand drops below release threshold it goes *)
  let low = projection_with_private_load fx 8e9 in
  let r = Ef.Hysteresis.step h ~time_s:330 ~desired:[] ~preferred:low in
  Alcotest.(check int) "released" 1 (List.length r.Ef.Hysteresis.removed)

let test_hysteresis_retarget_after_hold () =
  let fx = fixture () in
  let h = Ef.Hysteresis.create damped_config in
  let o = override_for fx pfx_a in
  let preferred = projection_with_private_load fx 9.8e9 in
  ignore (Ef.Hysteresis.step h ~time_s:0 ~desired:[ o ] ~preferred);
  (* allocator now wants the same prefix on a different peer *)
  let snap = snapshot fx [ (pfx_a, 1e9) ] in
  let public_route =
    List.find
      (fun r -> Bgp.Route.peer_kind r = Bgp.Peer.Public_peer)
      (C.Snapshot.routes snap pfx_a)
  in
  let o2 =
    Ef.Override.make ~prefix:pfx_a ~target:public_route
      ~from_iface:(N.Iface.id fx.Test_core.iface_private)
      ~to_iface:(N.Iface.id fx.Test_core.iface_public)
      ~preference_level:1 ~rate_bps:1e9
  in
  (* too early: damped *)
  let r = Ef.Hysteresis.step h ~time_s:30 ~desired:[ o2 ] ~preferred in
  Alcotest.(check int) "no retarget yet" 0 (List.length r.Ef.Hysteresis.retargeted);
  (* matured: retargeted in place *)
  let r = Ef.Hysteresis.step h ~time_s:90 ~desired:[ o2 ] ~preferred in
  Alcotest.(check int) "retargeted" 1 (List.length r.Ef.Hysteresis.retargeted);
  match Ef.Hysteresis.active h with
  | [ active ] ->
      Alcotest.(check int) "new target" (Bgp.Route.peer_id public_route)
        (Ef.Override.target_peer_id active)
  | l -> Alcotest.failf "expected one active, got %d" (List.length l)

let test_hysteresis_disabled_tracks_exactly () =
  let fx = fixture () in
  let free =
    Ef.Config.make ~min_hold_s:0 ~release_margin:0.0 ()
  in
  let h = Ef.Hysteresis.create free in
  let o = override_for fx pfx_a in
  let low = projection_with_private_load fx 1e9 in
  ignore (Ef.Hysteresis.step h ~time_s:0 ~desired:[ o ] ~preferred:low);
  let r = Ef.Hysteresis.step h ~time_s:30 ~desired:[] ~preferred:low in
  Alcotest.(check int) "released immediately" 1 (List.length r.Ef.Hysteresis.removed)

(* --- Controller -------------------------------------------------------- *)

let test_controller_cycle_relieves () =
  let fx = fixture () in
  let ctrl = Ef.Controller.create ~name:"test" () in
  let snap = snapshot fx [ (pfx_a, 8e9); (pfx_b, 4e9); (pfx_c, 1e9) ] in
  let stats = Ef.Controller.cycle ctrl snap in
  Alcotest.(check bool) "was overloaded" true (stats.Ef.Controller.overloaded_before <> []);
  Alcotest.(check int) "fixed" 0 (List.length stats.Ef.Controller.overloaded_after);
  Alcotest.(check bool) "detoured something" true
    (Ef.Controller.detour_fraction stats > 0.0);
  Alcotest.(check int) "active overrides" 1
    (List.length (Ef.Controller.active_overrides ctrl));
  Alcotest.(check int) "cycles" 1 (Ef.Controller.cycles_run ctrl)

let test_controller_emits_bgp_updates () =
  let fx = fixture () in
  let ctrl = Ef.Controller.create ~name:"test" () in
  let snap = snapshot fx [ (pfx_a, 8e9); (pfx_b, 4e9) ] in
  let stats = Ef.Controller.cycle ctrl snap in
  let updates = Ef.Controller.bgp_updates ctrl stats in
  Alcotest.(check int) "one announcement" 1 (List.length updates);
  (match updates with
  | [ u ] -> (
      Alcotest.(check int) "nlri" 1 (List.length u.Bgp.Msg.nlri);
      match u.Bgp.Msg.attrs with
      | Some a ->
          Alcotest.(check (option int)) "controller local pref" (Some 1000)
            a.Bgp.Attrs.local_pref
      | None -> Alcotest.fail "no attrs")
  | _ -> ());
  (* steady state: same snapshot, no churn, no messages *)
  let stats2 = Ef.Controller.cycle ctrl snap in
  Alcotest.(check int) "no updates second cycle" 0
    (List.length (Ef.Controller.bgp_updates ctrl stats2))

let test_controller_releases_when_demand_drops () =
  let fx = fixture () in
  let config = Ef.Config.make ~min_hold_s:0 () in
  let ctrl = Ef.Controller.create ~config ~name:"test" () in
  ignore (Ef.Controller.cycle ctrl (snapshot fx [ (pfx_a, 8e9); (pfx_b, 4e9) ]));
  Alcotest.(check int) "installed" 1
    (List.length (Ef.Controller.active_overrides ctrl));
  (* demand collapses far below the release threshold *)
  let stats = Ef.Controller.cycle ctrl (snapshot fx [ (pfx_a, 1e9); (pfx_b, 1e9) ]) in
  Alcotest.(check int) "released" 1
    (List.length stats.Ef.Controller.reconcile.Ef.Hysteresis.removed);
  Alcotest.(check int) "none active" 0
    (List.length (Ef.Controller.active_overrides ctrl));
  (* the release shows up as a withdrawal on the wire *)
  Alcotest.(check bool) "withdrawal emitted" true
    (List.exists
       (fun u -> u.Bgp.Msg.withdrawn <> [])
       (Ef.Controller.bgp_updates ctrl stats))

let test_controller_stateless_across_restart () =
  let fx = fixture () in
  let snap = snapshot fx [ (pfx_a, 8e9); (pfx_b, 4e9) ] in
  let ctrl1 = Ef.Controller.create ~name:"a" () in
  let stats1 = Ef.Controller.cycle ctrl1 snap in
  (* a fresh controller fed the same snapshot reaches the same decision *)
  let ctrl2 = Ef.Controller.create ~name:"b" () in
  let stats2 = Ef.Controller.cycle ctrl2 snap in
  let sig_of s =
    List.map
      (fun (o : Ef.Override.t) ->
        (Bgp.Prefix.to_string o.Ef.Override.prefix, Ef.Override.target_peer_id o))
      s.Ef.Controller.reconcile.Ef.Hysteresis.active
  in
  Alcotest.(check (list (pair string int))) "same decisions" (sig_of stats1)
    (sig_of stats2)

let test_controller_bad_config_rejected () =
  Alcotest.check_raises "invalid config"
    (Invalid_argument
       "Controller.create: bad config: override_local_pref must exceed every policy tier")
    (fun () ->
      ignore
        (Ef.Controller.create
           ~config:(Ef.Config.make ~override_local_pref:100 ())
           ~name:"bad" ()))

let suite =
  [
    Alcotest.test_case "hysteresis installs new" `Quick test_hysteresis_installs_new;
    Alcotest.test_case "hysteresis keeps stable" `Quick test_hysteresis_keeps_stable;
    Alcotest.test_case "hysteresis min hold" `Quick
      test_hysteresis_min_hold_blocks_release;
    Alcotest.test_case "hysteresis release threshold" `Quick
      test_hysteresis_release_needs_low_utilization;
    Alcotest.test_case "hysteresis retarget" `Quick test_hysteresis_retarget_after_hold;
    Alcotest.test_case "hysteresis disabled" `Quick
      test_hysteresis_disabled_tracks_exactly;
    Alcotest.test_case "controller relieves" `Quick test_controller_cycle_relieves;
    Alcotest.test_case "controller emits updates" `Quick
      test_controller_emits_bgp_updates;
    Alcotest.test_case "controller releases" `Quick
      test_controller_releases_when_demand_drops;
    Alcotest.test_case "controller stateless restart" `Quick
      test_controller_stateless_across_restart;
    Alcotest.test_case "controller bad config" `Quick test_controller_bad_config_rejected;
  ]
