(* edge_fabric: Hysteresis and Controller *)

module Bgp = Ef_bgp
module N = Ef_netsim
module C = Ef_collector
module Ef = Edge_fabric
open Helpers

(* reuse the hand-built fixture from Test_core *)
let fixture = Test_core.fixture
let snapshot = Test_core.snapshot
let pfx_a = Test_core.pfx_a
let pfx_b = Test_core.pfx_b
let pfx_c = Test_core.pfx_c

let transit_target fx p =
  let snap = snapshot fx [ (p, 1e9) ] in
  List.find
    (fun r -> Bgp.Route.peer_kind r = Bgp.Peer.Transit)
    (C.Snapshot.routes snap p)

let override_for fx ?(rate = 1e9) p =
  Ef.Override.make ~prefix:p ~target:(transit_target fx p)
    ~from_iface:(N.Iface.id fx.Test_core.iface_private)
    ~to_iface:(N.Iface.id fx.Test_core.iface_transit)
    ~preference_level:1 ~rate_bps:rate

(* a projection whose private-iface utilization we control *)
let projection_with_private_load fx bps =
  let snap = snapshot fx [ (pfx_a, bps) ] in
  Ef.Projection.project snap

let damped_config = Ef.Config.default (* hold 60s, release at 0.85 *)

let test_hysteresis_installs_new () =
  let fx = fixture () in
  let h = Ef.Hysteresis.create damped_config in
  let o = override_for fx pfx_a in
  let r =
    Ef.Hysteresis.step h ~time_s:0 ~desired:[ o ]
      ~preferred:(projection_with_private_load fx 9.8e9)
  in
  Alcotest.(check int) "added" 1 (List.length r.Ef.Hysteresis.added);
  Alcotest.(check int) "active" 1 (List.length r.Ef.Hysteresis.active);
  Alcotest.(check (option int)) "installed at" (Some 0)
    (Ef.Hysteresis.installed_at h pfx_a)

let test_hysteresis_keeps_stable () =
  let fx = fixture () in
  let h = Ef.Hysteresis.create damped_config in
  let o = override_for fx pfx_a in
  let preferred = projection_with_private_load fx 9.8e9 in
  ignore (Ef.Hysteresis.step h ~time_s:0 ~desired:[ o ] ~preferred);
  let r = Ef.Hysteresis.step h ~time_s:30 ~desired:[ o ] ~preferred in
  Alcotest.(check int) "kept" 1 (List.length r.Ef.Hysteresis.kept);
  Alcotest.(check int) "no adds" 0 (List.length r.Ef.Hysteresis.added);
  Alcotest.(check int) "no removals" 0 (List.length r.Ef.Hysteresis.removed);
  (* installation time is preserved, not refreshed *)
  Alcotest.(check (option int)) "age preserved" (Some 0)
    (Ef.Hysteresis.installed_at h pfx_a)

let test_hysteresis_min_hold_blocks_release () =
  let fx = fixture () in
  let h = Ef.Hysteresis.create damped_config in
  let o = override_for fx pfx_a in
  (* demand collapsed: preferred iface would be at 10% — releasable on
     utilization, but the hold time has not matured *)
  let low = projection_with_private_load fx 1e9 in
  ignore (Ef.Hysteresis.step h ~time_s:0 ~desired:[ o ] ~preferred:low);
  let r = Ef.Hysteresis.step h ~time_s:30 ~desired:[] ~preferred:low in
  Alcotest.(check int) "not removed yet" 0 (List.length r.Ef.Hysteresis.removed);
  Alcotest.(check int) "deferred" 1 r.Ef.Hysteresis.deferred_releases;
  (* after maturity it releases, and the lifetime is reported *)
  let r = Ef.Hysteresis.step h ~time_s:90 ~desired:[] ~preferred:low in
  (match r.Ef.Hysteresis.removed with
  | [ (removed, age) ] ->
      Alcotest.check prefix_t "right prefix" pfx_a removed.Ef.Override.prefix;
      Alcotest.(check int) "age" 90 age
  | l -> Alcotest.failf "expected one removal, got %d" (List.length l));
  Alcotest.(check int) "inactive" 0 (Ef.Hysteresis.active_count h)

let test_hysteresis_release_needs_low_utilization () =
  let fx = fixture () in
  let h = Ef.Hysteresis.create damped_config in
  let o = override_for fx pfx_a in
  (* preferred iface still at 90% (> release threshold 85%): even after
     min-hold the override must stay — this is the flap damping *)
  let high = projection_with_private_load fx 9e9 in
  ignore (Ef.Hysteresis.step h ~time_s:0 ~desired:[ o ] ~preferred:high);
  let r = Ef.Hysteresis.step h ~time_s:300 ~desired:[] ~preferred:high in
  Alcotest.(check int) "still held" 0 (List.length r.Ef.Hysteresis.removed);
  Alcotest.(check int) "deferred" 1 r.Ef.Hysteresis.deferred_releases;
  (* once projected demand drops below release threshold it goes *)
  let low = projection_with_private_load fx 8e9 in
  let r = Ef.Hysteresis.step h ~time_s:330 ~desired:[] ~preferred:low in
  Alcotest.(check int) "released" 1 (List.length r.Ef.Hysteresis.removed)

let test_hysteresis_retarget_after_hold () =
  let fx = fixture () in
  let h = Ef.Hysteresis.create damped_config in
  let o = override_for fx pfx_a in
  let preferred = projection_with_private_load fx 9.8e9 in
  ignore (Ef.Hysteresis.step h ~time_s:0 ~desired:[ o ] ~preferred);
  (* allocator now wants the same prefix on a different peer *)
  let snap = snapshot fx [ (pfx_a, 1e9) ] in
  let public_route =
    List.find
      (fun r -> Bgp.Route.peer_kind r = Bgp.Peer.Public_peer)
      (C.Snapshot.routes snap pfx_a)
  in
  let o2 =
    Ef.Override.make ~prefix:pfx_a ~target:public_route
      ~from_iface:(N.Iface.id fx.Test_core.iface_private)
      ~to_iface:(N.Iface.id fx.Test_core.iface_public)
      ~preference_level:1 ~rate_bps:1e9
  in
  (* too early: damped *)
  let r = Ef.Hysteresis.step h ~time_s:30 ~desired:[ o2 ] ~preferred in
  Alcotest.(check int) "no retarget yet" 0 (List.length r.Ef.Hysteresis.retargeted);
  (* matured: retargeted in place *)
  let r = Ef.Hysteresis.step h ~time_s:90 ~desired:[ o2 ] ~preferred in
  Alcotest.(check int) "retargeted" 1 (List.length r.Ef.Hysteresis.retargeted);
  match Ef.Hysteresis.active h with
  | [ active ] ->
      Alcotest.(check int) "new target" (Bgp.Route.peer_id public_route)
        (Ef.Override.target_peer_id active)
  | l -> Alcotest.failf "expected one active, got %d" (List.length l)

let test_hysteresis_disabled_tracks_exactly () =
  let fx = fixture () in
  let free =
    Ef.Config.make ~min_hold_s:0 ~release_margin:0.0 ()
  in
  let h = Ef.Hysteresis.create free in
  let o = override_for fx pfx_a in
  let low = projection_with_private_load fx 1e9 in
  ignore (Ef.Hysteresis.step h ~time_s:0 ~desired:[ o ] ~preferred:low);
  let r = Ef.Hysteresis.step h ~time_s:30 ~desired:[] ~preferred:low in
  Alcotest.(check int) "released immediately" 1 (List.length r.Ef.Hysteresis.removed)

(* --- Controller -------------------------------------------------------- *)

let test_controller_cycle_relieves () =
  let fx = fixture () in
  let ctrl = Ef.Controller.create ~name:"test" () in
  let snap = snapshot fx [ (pfx_a, 8e9); (pfx_b, 4e9); (pfx_c, 1e9) ] in
  let stats = Ef.Controller.cycle ctrl snap in
  Alcotest.(check bool) "was overloaded" true (stats.Ef.Controller.overloaded_before <> []);
  Alcotest.(check int) "fixed" 0 (List.length stats.Ef.Controller.overloaded_after);
  Alcotest.(check bool) "detoured something" true
    (Ef.Controller.detour_fraction stats > 0.0);
  Alcotest.(check int) "active overrides" 1
    (List.length (Ef.Controller.active_overrides ctrl));
  Alcotest.(check int) "cycles" 1 (Ef.Controller.cycles_run ctrl)

let test_controller_emits_bgp_updates () =
  let fx = fixture () in
  let ctrl = Ef.Controller.create ~name:"test" () in
  let snap = snapshot fx [ (pfx_a, 8e9); (pfx_b, 4e9) ] in
  let stats = Ef.Controller.cycle ctrl snap in
  let updates = Ef.Controller.bgp_updates ctrl stats in
  Alcotest.(check int) "one announcement" 1 (List.length updates);
  (match updates with
  | [ u ] -> (
      Alcotest.(check int) "nlri" 1 (List.length u.Bgp.Msg.nlri);
      match u.Bgp.Msg.attrs with
      | Some a ->
          Alcotest.(check (option int)) "controller local pref" (Some 1000)
            a.Bgp.Attrs.local_pref
      | None -> Alcotest.fail "no attrs")
  | _ -> ());
  (* steady state: same snapshot, no churn, no messages *)
  let stats2 = Ef.Controller.cycle ctrl snap in
  Alcotest.(check int) "no updates second cycle" 0
    (List.length (Ef.Controller.bgp_updates ctrl stats2))

let test_controller_releases_when_demand_drops () =
  let fx = fixture () in
  let config = Ef.Config.make ~min_hold_s:0 () in
  let ctrl = Ef.Controller.create ~config ~name:"test" () in
  ignore (Ef.Controller.cycle ctrl (snapshot fx [ (pfx_a, 8e9); (pfx_b, 4e9) ]));
  Alcotest.(check int) "installed" 1
    (List.length (Ef.Controller.active_overrides ctrl));
  (* demand collapses far below the release threshold *)
  let stats = Ef.Controller.cycle ctrl (snapshot fx [ (pfx_a, 1e9); (pfx_b, 1e9) ]) in
  Alcotest.(check int) "released" 1
    (List.length stats.Ef.Controller.reconcile.Ef.Hysteresis.removed);
  Alcotest.(check int) "none active" 0
    (List.length (Ef.Controller.active_overrides ctrl));
  (* the release shows up as a withdrawal on the wire *)
  Alcotest.(check bool) "withdrawal emitted" true
    (List.exists
       (fun u -> u.Bgp.Msg.withdrawn <> [])
       (Ef.Controller.bgp_updates ctrl stats))

let test_controller_stateless_across_restart () =
  let fx = fixture () in
  let snap = snapshot fx [ (pfx_a, 8e9); (pfx_b, 4e9) ] in
  let ctrl1 = Ef.Controller.create ~name:"a" () in
  let stats1 = Ef.Controller.cycle ctrl1 snap in
  (* a fresh controller fed the same snapshot reaches the same decision *)
  let ctrl2 = Ef.Controller.create ~name:"b" () in
  let stats2 = Ef.Controller.cycle ctrl2 snap in
  let sig_of s =
    List.map
      (fun (o : Ef.Override.t) ->
        (Bgp.Prefix.to_string o.Ef.Override.prefix, Ef.Override.target_peer_id o))
      s.Ef.Controller.reconcile.Ef.Hysteresis.active
  in
  Alcotest.(check (list (pair string int))) "same decisions" (sig_of stats1)
    (sig_of stats2)

let test_controller_bad_config_rejected () =
  Alcotest.check_raises "invalid config"
    (Invalid_argument
       "Controller.create: bad config: override_local_pref must exceed every policy tier")
    (fun () ->
      ignore
        (Ef.Controller.create
           ~config:(Ef.Config.make ~override_local_pref:100 ())
           ~name:"bad" ()))

(* --- invariants under fault injection ----------------------------------- *)

(* Drive a controller through the canned chaos plan over the generated
   tiny world, presenting it exactly what the engine would: derated
   interface lists, stalled (cached) snapshots, delayed clocks. Whatever
   the faults do, two things must hold after every cycle:
   - no interface carries enforced load above its guard threshold unless
     the allocator declared it residual (capacity genuinely exhausted) or
     the cycle failed static (held overrides are not recomputed);
   - every prefix that has any candidate route is placed somewhere. *)
let test_controller_fault_invariants () =
  let world = N.Topo_gen.generate N.Topo_gen.small_config in
  let pop = world.N.Topo_gen.pop in
  let plan =
    match N.Scenario.find_fault_plan "chaos" with
    | Some p -> p
    | None -> Alcotest.fail "canned chaos plan missing"
  in
  let inj = Ef_fault.Injector.create plan in
  let config = Ef.Config.make ~max_snapshot_age_s:60 () in
  let ctrl = Ef.Controller.create ~config ~name:"fault-inv" () in
  let rng = Ef_util.Rng.create 42 in
  let last_snap = ref None in
  (* a downed link drops every session on it, exactly as the engine's
     injector wiring does; the outage ending re-announces saved tables *)
  let flap_saved = Hashtbl.create 8 in
  let flapped_down = ref [] in
  let apply_flaps time_s =
    List.iter
      (fun iface ->
        let iface_id = N.Iface.id iface in
        let down = Ef_fault.Injector.link_down inj ~iface_id ~time_s in
        List.iter
          (fun peer ->
            let pid = Bgp.Peer.id peer in
            let is_down = List.mem pid !flapped_down in
            if down && not is_down then begin
              if not (Hashtbl.mem flap_saved pid) then
                Hashtbl.replace flap_saved pid
                  (Bgp.Rib.adj_rib_in (N.Pop.rib pop) ~peer_id:pid);
              ignore (N.Pop.drop_peer pop ~peer_id:pid);
              flapped_down := pid :: !flapped_down
            end
            else if (not down) && is_down then begin
              List.iter
                (fun (prefix, attrs) ->
                  ignore (N.Pop.announce pop ~peer_id:pid prefix attrs))
                (Option.value (Hashtbl.find_opt flap_saved pid) ~default:[]);
              Hashtbl.remove flap_saved pid;
              flapped_down := List.filter (fun id -> id <> pid) !flapped_down
            end)
          (N.Pop.peers_on_iface pop ~iface_id))
      (N.Pop.interfaces pop)
  in
  for cycle = 0 to 19 do
    let time_s = cycle * 30 in
    apply_flaps time_s;
    let ifaces =
      List.map
        (fun iface ->
          let factor =
            Ef_fault.Injector.capacity_factor inj
              ~iface_id:(N.Iface.id iface) ~time_s
          in
          if factor >= 1.0 then iface
          else
            N.Iface.make ~id:(N.Iface.id iface) ~name:(N.Iface.name iface)
              ~capacity_bps:
                (Float.max 1.0 (N.Iface.capacity_bps iface *. factor))
              ~shared:(N.Iface.shared iface))
        (N.Pop.interfaces pop)
    in
    let rates =
      List.filter_map
        (fun p ->
          let w = world.N.Topo_gen.prefix_weight p in
          let jitter = 0.5 +. Ef_util.Rng.float rng 1.0 in
          let bps = w *. world.N.Topo_gen.total_peak_bps *. jitter in
          if bps > 1_000.0 then Some (p, bps) else None)
        world.N.Topo_gen.all_prefixes
    in
    let fresh = C.Snapshot.of_pop ~ifaces pop ~prefix_rates:rates ~time_s in
    let snap =
      if Ef_fault.Injector.bmp_stalled inj ~time_s then
        Option.value !last_snap ~default:fresh
      else begin
        last_snap := Some fresh;
        fresh
      end
    in
    let now_s = time_s + Ef_fault.Injector.cycle_delay_s inj ~time_s in
    let stats = Ef.Controller.cycle ~now_s ctrl snap in
    (* 1: the allocator never *assigns* above the configured limit — its
       final projection exceeds the overload threshold only on interfaces
       it declared residual (capacity genuinely exhausted). Checked on the
       allocation itself: the enforced set may lag it transiently because
       hysteresis holds overrides, which is damping, not over-allocation.
       Degraded cycles deliberately skip recomputation. *)
    (if Ef.Controller.degraded stats = None then
       let residual_ids =
         List.map
           (fun (i, _) -> N.Iface.id i)
           (Ef.Controller.residual_overloads stats)
       in
       let final = stats.Ef.Controller.allocator.Ef.Allocator.final in
       List.iter
         (fun (iface, util) ->
           if not (List.mem (N.Iface.id iface) residual_ids) then
             Alcotest.failf
               "t=%d: iface %s allocated to %.2f over limit but not declared \
                residual"
               time_s (N.Iface.name iface) util)
         (Ef.Projection.overloaded final
            ~threshold:(Ef.Config.default.Ef.Config.overload_threshold)));
    (* 2: every prefix with a candidate route keeps a placement *)
    let placed =
      List.fold_left
        (fun acc pl -> Bgp.Prefix.to_string pl.Ef.Projection.placed_prefix :: acc)
        []
        (Ef.Projection.placements stats.Ef.Controller.enforced)
    in
    List.iter
      (fun (p, _) ->
        if C.Snapshot.routes snap p <> [] then
          if not (List.mem (Bgp.Prefix.to_string p) placed) then
            Alcotest.failf "t=%d: prefix %s has routes but no placement" time_s
              (Bgp.Prefix.to_string p))
      (C.Snapshot.prefix_rates snap)
  done

let suite =
  [
    Alcotest.test_case "hysteresis installs new" `Quick test_hysteresis_installs_new;
    Alcotest.test_case "hysteresis keeps stable" `Quick test_hysteresis_keeps_stable;
    Alcotest.test_case "hysteresis min hold" `Quick
      test_hysteresis_min_hold_blocks_release;
    Alcotest.test_case "hysteresis release threshold" `Quick
      test_hysteresis_release_needs_low_utilization;
    Alcotest.test_case "hysteresis retarget" `Quick test_hysteresis_retarget_after_hold;
    Alcotest.test_case "hysteresis disabled" `Quick
      test_hysteresis_disabled_tracks_exactly;
    Alcotest.test_case "controller relieves" `Quick test_controller_cycle_relieves;
    Alcotest.test_case "controller emits updates" `Quick
      test_controller_emits_bgp_updates;
    Alcotest.test_case "controller releases" `Quick
      test_controller_releases_when_demand_drops;
    Alcotest.test_case "controller stateless restart" `Quick
      test_controller_stateless_across_restart;
    Alcotest.test_case "controller bad config" `Quick test_controller_bad_config_rejected;
    Alcotest.test_case "controller fault invariants" `Quick
      test_controller_fault_invariants;
  ]
