(* ef_bgp: MRT TABLE_DUMP_V2 export/import *)

module Bgp = Ef_bgp
module N = Ef_netsim
open Helpers

let world = lazy (N.Topo_gen.generate N.Topo_gen.small_config)

let dump () =
  let w = Lazy.force world in
  let rib = N.Pop.rib w.N.Topo_gen.pop in
  (w, rib, Bgp.Mrt.of_rib ~timestamp:1700000000 ~collector_id:(ip "10.0.0.1") rib)

let test_of_rib_shape () =
  let w, rib, mrt = dump () in
  Alcotest.(check int) "one peer entry per neighbor"
    (List.length (Bgp.Rib.peer_ids rib))
    (List.length mrt.Bgp.Mrt.peers);
  Alcotest.(check int) "one record per prefix" (Bgp.Rib.prefix_count rib)
    (List.length mrt.Bgp.Mrt.records);
  let total_entries =
    List.fold_left
      (fun acc r -> acc + List.length r.Bgp.Mrt.entries)
      0 mrt.Bgp.Mrt.records
  in
  Alcotest.(check int) "one entry per candidate route" (Bgp.Rib.route_count rib)
    total_entries;
  ignore w

let test_roundtrip () =
  let _, _, mrt = dump () in
  let wire = Bgp.Mrt.encode ~timestamp:1700000000 mrt in
  match Bgp.Mrt.decode wire with
  | Error e -> Alcotest.failf "decode: %s" (Format.asprintf "%a" Bgp.Mrt.pp_error e)
  | Ok got ->
      Alcotest.check ipv4_t "collector" mrt.Bgp.Mrt.collector_id
        got.Bgp.Mrt.collector_id;
      Alcotest.(check string) "view" "edge-fabric" got.Bgp.Mrt.view_name;
      Alcotest.(check int) "peers" (List.length mrt.Bgp.Mrt.peers)
        (List.length got.Bgp.Mrt.peers);
      List.iter2
        (fun (a : Bgp.Mrt.peer_entry) (b : Bgp.Mrt.peer_entry) ->
          Alcotest.(check int) "asn" (Bgp.Asn.to_int a.Bgp.Mrt.peer_asn)
            (Bgp.Asn.to_int b.Bgp.Mrt.peer_asn);
          Alcotest.check ipv4_t "addr" a.Bgp.Mrt.peer_addr b.Bgp.Mrt.peer_addr)
        mrt.Bgp.Mrt.peers got.Bgp.Mrt.peers;
      Alcotest.(check int) "records" (List.length mrt.Bgp.Mrt.records)
        (List.length got.Bgp.Mrt.records);
      List.iter2
        (fun (a : Bgp.Mrt.rib_record) (b : Bgp.Mrt.rib_record) ->
          Alcotest.check prefix_t "prefix" a.Bgp.Mrt.rib_prefix b.Bgp.Mrt.rib_prefix;
          Alcotest.(check int) "sequence" a.Bgp.Mrt.sequence b.Bgp.Mrt.sequence;
          List.iter2
            (fun (x : Bgp.Mrt.rib_entry) (y : Bgp.Mrt.rib_entry) ->
              Alcotest.(check int) "peer index" x.Bgp.Mrt.entry_peer_index
                y.Bgp.Mrt.entry_peer_index;
              Alcotest.(check bool) "attrs equal" true
                (Bgp.Attrs.equal x.Bgp.Mrt.attrs y.Bgp.Mrt.attrs))
            a.Bgp.Mrt.entries b.Bgp.Mrt.entries)
        mrt.Bgp.Mrt.records got.Bgp.Mrt.records

let test_header_layout () =
  (* MRT common header: timestamp u32, type 13, subtype 1 first *)
  let _, _, mrt = dump () in
  let wire = Bgp.Mrt.encode ~timestamp:0x64000000 mrt in
  let b i = Char.code wire.[i] in
  Alcotest.(check int) "timestamp hi" 0x64 (b 0);
  Alcotest.(check int) "type" 13 ((b 4 lsl 8) lor b 5);
  Alcotest.(check int) "subtype peer-index" 1 ((b 6 lsl 8) lor b 7)

let test_truncation_detected () =
  let _, _, mrt = dump () in
  let wire = Bgp.Mrt.encode ~timestamp:0 mrt in
  match Bgp.Mrt.decode (String.sub wire 0 (String.length wire - 7)) with
  | Error Bgp.Mrt.Truncated -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Format.asprintf "%a" Bgp.Mrt.pp_error e)
  | Ok _ -> Alcotest.fail "accepted truncated dump"

let test_missing_peer_table () =
  (* a dump starting directly with a RIB record has no peer table *)
  let _, _, mrt = dump () in
  let wire = Bgp.Mrt.encode ~timestamp:0 mrt in
  (* skip the first record: parse its length from the header *)
  let b i = Char.code wire.[i] in
  let first_len = (b 8 lsl 24) lor (b 9 lsl 16) lor (b 10 lsl 8) lor b 11 in
  let rest = String.sub wire (12 + first_len) (String.length wire - 12 - first_len) in
  match Bgp.Mrt.decode rest with
  | Error (Bgp.Mrt.Malformed _) -> ()
  | _ -> Alcotest.fail "accepted dump without PEER_INDEX_TABLE"

(* an entry referencing a peer index beyond the peer table decodes (the
   wire is self-consistent) but must be rejected when rebuilding a RIB *)
let test_bad_peer_index_rejected () =
  let _, _, mrt = dump () in
  let n_peers = List.length mrt.Bgp.Mrt.peers in
  let corrupt =
    {
      mrt with
      Bgp.Mrt.records =
        List.map
          (fun (r : Bgp.Mrt.rib_record) ->
            {
              r with
              Bgp.Mrt.entries =
                List.map
                  (fun (e : Bgp.Mrt.rib_entry) ->
                    { e with Bgp.Mrt.entry_peer_index = n_peers + 3 })
                  r.Bgp.Mrt.entries;
            })
          mrt.Bgp.Mrt.records;
    }
  in
  match Bgp.Mrt.to_rib corrupt with
  | Error (Bgp.Mrt.Malformed _) -> ()
  | Error e ->
      Alcotest.failf "wrong error: %s" (Format.asprintf "%a" Bgp.Mrt.pp_error e)
  | Ok _ -> Alcotest.fail "accepted out-of-range peer index"

let test_save_load () =
  let path = Filename.temp_file "ef_mrt" ".mrt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let _, rib, mrt = dump () in
      Bgp.Mrt.save path ~timestamp:1700000000 mrt;
      match Bgp.Mrt.load path with
      | Error e -> Alcotest.failf "load: %s" (Format.asprintf "%a" Bgp.Mrt.pp_error e)
      | Ok got ->
          Alcotest.(check int) "records survive" (Bgp.Rib.prefix_count rib)
            (List.length got.Bgp.Mrt.records))

let test_best_paths_recoverable () =
  (* the dump preserves decision order: entry 0 of each record is the
     RIB's best path *)
  let w, rib, mrt = dump () in
  let wire = Bgp.Mrt.encode ~timestamp:0 mrt in
  match Bgp.Mrt.decode wire with
  | Error _ -> Alcotest.fail "decode failed"
  | Ok got ->
      List.iter
        (fun (r : Bgp.Mrt.rib_record) ->
          match (r.Bgp.Mrt.entries, Bgp.Rib.best rib r.Bgp.Mrt.rib_prefix) with
          | first :: _, Some best ->
              let peer = List.nth got.Bgp.Mrt.peers first.Bgp.Mrt.entry_peer_index in
              Alcotest.(check int)
                (Bgp.Prefix.to_string r.Bgp.Mrt.rib_prefix)
                (Bgp.Asn.to_int (Bgp.Peer.asn (Bgp.Route.peer best)))
                (Bgp.Asn.to_int peer.Bgp.Mrt.peer_asn)
          | _ -> Alcotest.fail "empty record")
        got.Bgp.Mrt.records;
      ignore w

let suite =
  [
    Alcotest.test_case "of_rib shape" `Quick test_of_rib_shape;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "header layout" `Quick test_header_layout;
    Alcotest.test_case "truncation detected" `Quick test_truncation_detected;
    Alcotest.test_case "missing peer table" `Quick test_missing_peer_table;
    Alcotest.test_case "bad peer index rejected" `Quick
      test_bad_peer_index_rejected;
    Alcotest.test_case "save/load" `Quick test_save_load;
    Alcotest.test_case "best paths recoverable" `Quick test_best_paths_recoverable;
  ]
