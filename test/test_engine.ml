(* ef_sim: Metrics and the Engine integration runs *)

module Bgp = Ef_bgp
module N = Ef_netsim
module Ef = Edge_fabric
module S = Ef_sim
open Helpers

let tiny = N.Scenario.tiny

let engine_config ?(controller = true) ?(cycle_s = 60) ?(duration_s = 3600)
    ?(use_sampling = true) ?(start_s = 18 * 3600) () =
  S.Engine.make_config ~cycle_s ~duration_s ~start_s
    ~controller_enabled:controller ~use_sampling ~seed:3 ()

(* --- Metrics ----------------------------------------------------------- *)

let row ?(t = 0) ?(offered = 10e9) ?(detoured = 1e9) ?(ifaces = []) () =
  {
    S.Metrics.row_time_s = t;
    offered_bps = offered;
    detoured_bps = detoured;
    overrides_active = 1;
    overrides_added = 0;
    overrides_removed = 0;
    ifaces;
    dropped_bps = 0.0;
    dropped_preferred_bps = 5e8;
    weighted_rtt_ms = 40.0;
    weighted_rtt_preferred_ms = 45.0;
    residual_overloads = 0;
    detour_levels = [ (1, 8e8); (2, 2e8) ];
    perf_overrides_active = 0;
  }

let iface_u id ~cap ~actual ~preferred =
  {
    S.Metrics.u_iface_id = id;
    capacity_bps = cap;
    actual_bps = actual;
    preferred_bps = preferred;
  }

let test_metrics_peaks_and_overloads () =
  let m = S.Metrics.create () in
  S.Metrics.record m
    (row ~t:0 ~ifaces:[ iface_u 0 ~cap:10e9 ~actual:5e9 ~preferred:9e9 ] ());
  S.Metrics.record m
    (row ~t:60 ~ifaces:[ iface_u 0 ~cap:10e9 ~actual:9e9 ~preferred:12e9 ] ());
  (match S.Metrics.peak_utilization m `Actual with
  | [ (0, u) ] -> Helpers.check_float "actual peak" 0.9 u
  | _ -> Alcotest.fail "bad peaks");
  (match S.Metrics.peak_utilization m `Preferred with
  | [ (0, u) ] -> Helpers.check_float "preferred peak" 1.2 u
  | _ -> Alcotest.fail "bad peaks");
  Helpers.check_float "none overloaded actual" 0.0
    (S.Metrics.overloaded_iface_fraction m `Actual ~threshold:1.0);
  Helpers.check_float "all overloaded preferred" 1.0
    (S.Metrics.overloaded_iface_fraction m `Preferred ~threshold:1.0)

let test_metrics_detour_series () =
  let m = S.Metrics.create () in
  S.Metrics.record m (row ~t:0 ~offered:10e9 ~detoured:1e9 ());
  S.Metrics.record m (row ~t:60 ~offered:10e9 ~detoured:3e9 ());
  Alcotest.(check (list (pair int (float 1e-9)))) "series"
    [ (0, 0.1); (60, 0.3) ]
    (S.Metrics.detour_fraction_series m);
  Helpers.check_float "mean" 0.2 (S.Metrics.mean_detour_fraction m)

let test_metrics_level_shares () =
  let m = S.Metrics.create () in
  S.Metrics.record m (row ());
  S.Metrics.record m (row ());
  let shares = S.Metrics.detour_level_shares m in
  Alcotest.(check int) "two levels" 2 (List.length shares);
  Helpers.check_float "level 1 share" 0.8 (List.assoc 1 shares);
  Helpers.check_float "level 2 share" 0.2 (List.assoc 2 shares)

let test_metrics_lifetimes () =
  let m = S.Metrics.create () in
  Alcotest.(check bool) "empty" true (Option.is_none (S.Metrics.lifetime_cdf m));
  S.Metrics.record_removals m
    [
      { S.Metrics.removed_prefix = prefix "10.0.0.0/24"; lifetime_s = 60 };
      { S.Metrics.removed_prefix = prefix "10.0.1.0/24"; lifetime_s = 120 };
    ];
  match S.Metrics.lifetime_cdf m with
  | None -> Alcotest.fail "no cdf"
  | Some cdf -> Helpers.check_float "median" 90.0 (Ef_stats.Cdf.median cdf)

(* --- Engine integration ----------------------------------------------- *)

let test_engine_deterministic () =
  let run () =
    let e = S.Engine.create ~config:(engine_config ~duration_s:600 ()) tiny in
    S.Engine.run e
  in
  let m1 = run () and m2 = run () in
  let rows1 = S.Metrics.rows m1 and rows2 = S.Metrics.rows m2 in
  Alcotest.(check int) "same cycles" (List.length rows1) (List.length rows2);
  List.iter2
    (fun r1 r2 ->
      Helpers.check_float "same offered" r1.S.Metrics.offered_bps
        r2.S.Metrics.offered_bps;
      Helpers.check_float "same detoured" r1.S.Metrics.detoured_bps
        r2.S.Metrics.detoured_bps)
    rows1 rows2

let test_engine_cycle_count () =
  let e = S.Engine.create ~config:(engine_config ~duration_s:600 ~cycle_s:60 ()) tiny in
  let m = S.Engine.run e in
  Alcotest.(check int) "10 cycles" 10 (S.Metrics.cycle_count m)

let test_engine_controller_never_worse () =
  (* on the same world and demand, the controller's placement must never
     drop more than BGP-only would *)
  let on = S.Engine.create ~config:(engine_config ~controller:true ()) tiny in
  let m = S.Engine.run on in
  List.iter
    (fun row ->
      Alcotest.(check bool) "drops never exceed preferred" true
        (row.S.Metrics.dropped_bps <= row.S.Metrics.dropped_preferred_bps +. 1.0))
    (S.Metrics.rows m)

let test_engine_detours_only_with_controller () =
  let off = S.Engine.create ~config:(engine_config ~controller:false ()) tiny in
  let m = S.Engine.run off in
  List.iter
    (fun row ->
      Helpers.check_float "no detours" 0.0 row.S.Metrics.detoured_bps;
      Alcotest.(check int) "no overrides" 0 row.S.Metrics.overrides_active)
    (S.Metrics.rows m)

let test_engine_offered_follows_demand () =
  let e = S.Engine.create ~config:(engine_config ~controller:false ()) tiny in
  let m = S.Engine.run e in
  List.iter
    (fun row ->
      Alcotest.(check bool) "offered positive" true (row.S.Metrics.offered_bps > 0.0))
    (S.Metrics.rows m)

let test_engine_estimates_track_truth () =
  (* after a few cycles of EWMA warm-up, the controller's estimated total
     must be within ~15% of true demand *)
  let e = S.Engine.create ~config:(engine_config ()) tiny in
  for _ = 1 to 10 do
    ignore (S.Engine.step e)
  done;
  let truth = S.Engine.true_rates e ~time_s:(S.Engine.now_s e) in
  let total_truth = List.fold_left (fun a (_, r) -> a +. r) 0.0 truth in
  let snap = S.Engine.snapshot_now e in
  let total_est = Ef_collector.Snapshot.total_rate_bps snap in
  let err = Float.abs (total_est -. total_truth) /. total_truth in
  if err > 0.15 then Alcotest.failf "estimation error %f" err

let test_engine_last_state_consistent () =
  let e = S.Engine.create ~config:(engine_config ()) tiny in
  let row = S.Engine.step e in
  match S.Engine.last_state e with
  | None -> Alcotest.fail "no state"
  | Some st ->
      let actual_total = Ef.Projection.total_bps st.S.Engine.actual in
      Helpers.check_float_eps 1.0 "state matches row" row.S.Metrics.offered_bps
        actual_total;
      Helpers.check_float_eps 1.0 "detoured matches" row.S.Metrics.detoured_bps
        (Ef.Projection.overridden_bps st.S.Engine.actual)

let test_engine_flash_crowd_detour () =
  (* force a flash crowd on the biggest prefix of the private peer: the
     controller must start detouring during the event *)
  let world = N.Topo_gen.generate tiny.N.Scenario.topo in
  let big_private_prefix =
    let rib = N.Pop.rib world.N.Topo_gen.pop in
    List.filter
      (fun p ->
        match Bgp.Rib.best rib p with
        | Some r -> Bgp.Route.peer_kind r = Bgp.Peer.Private_peer
        | None -> false)
      world.N.Topo_gen.all_prefixes
    |> List.sort (fun a b ->
           compare (world.N.Topo_gen.prefix_weight b) (world.N.Topo_gen.prefix_weight a))
    |> List.hd
  in
  let event =
    {
      Ef_traffic.Demand.event_prefix = big_private_prefix;
      start_s = (18 * 3600) + 300;
      duration_s = 1800;
      multiplier = 12.0;
    }
  in
  let config = { (engine_config ~use_sampling:false ()) with S.Engine.events = [ event ] } in
  let e = S.Engine.create ~config tiny in
  let m = S.Engine.run e in
  let in_event =
    List.filter
      (fun r ->
        r.S.Metrics.row_time_s >= (18 * 3600) + 300
        && r.S.Metrics.row_time_s < (18 * 3600) + 300 + 1800)
      (S.Metrics.rows m)
  in
  Alcotest.(check bool) "event cycles recorded" true (in_event <> []);
  Alcotest.(check bool) "controller reacted" true
    (List.exists (fun r -> r.S.Metrics.detoured_bps > 0.0) in_event);
  (* and kept the network loss-free *)
  List.iter
    (fun r -> Helpers.check_float "no drops" 0.0 r.S.Metrics.dropped_bps)
    in_event

let test_engine_perf_aware_improves_rtt () =
  (* with measurements on and the perf stage enabled, traffic-weighted
     RTT must be no worse than the capacity-only controller's on the same
     world, and some perf overrides must engage *)
  let base_cfg =
    {
      (engine_config ~duration_s:1800 ~use_sampling:false ()) with
      S.Engine.measure_altpaths = true;
    }
  in
  let run perf =
    let e = S.Engine.create ~config:{ base_cfg with S.Engine.perf_aware = perf } tiny in
    S.Engine.run e
  in
  let plain = run false and perf = run true in
  let last m = List.nth (S.Metrics.rows m) (S.Metrics.cycle_count m - 1) in
  Alcotest.(check int) "plain has no perf overrides" 0
    (last plain).S.Metrics.perf_overrides_active;
  Alcotest.(check bool) "perf overrides engaged" true
    ((last perf).S.Metrics.perf_overrides_active > 0);
  Alcotest.(check bool) "rtt no worse" true
    ((last perf).S.Metrics.weighted_rtt_ms
    <= (last plain).S.Metrics.weighted_rtt_ms +. 0.5)

let test_engine_peer_failure_recovery () =
  (* the busiest private peer dies for 20 minutes mid-run: its traffic
     must keep flowing via alternates (no drops beyond BGP-only), any
     overrides that targeted it go stale safely, and after recovery the
     preferred placement returns to it *)
  let world = N.Topo_gen.generate tiny.N.Scenario.topo in
  let victim =
    List.find
      (fun p -> Bgp.Peer.kind p = Bgp.Peer.Private_peer)
      (N.Pop.peers world.N.Topo_gen.pop)
  in
  let start = 18 * 3600 in
  let config =
    {
      (engine_config ~use_sampling:false ~duration_s:3600 ()) with
      S.Engine.peer_events =
        [
          {
            S.Engine.event_peer_id = Bgp.Peer.id victim;
            down_at_s = start + 600;
            up_at_s = start + 1800;
          };
        ];
    }
  in
  let e = S.Engine.create ~config tiny in
  let carried_before = ref 0.0 and carried_during = ref 0.0 in
  let carried_after = ref 0.0 in
  let victim_iface =
    N.Iface.id (N.Pop.iface_of_peer world.N.Topo_gen.pop ~peer_id:(Bgp.Peer.id victim))
  in
  for _ = 1 to 60 do
    let row = S.Engine.step e in
    let t = row.S.Metrics.row_time_s in
    let load =
      match
        List.find_opt
          (fun u -> u.S.Metrics.u_iface_id = victim_iface)
          row.S.Metrics.ifaces
      with
      | Some u -> u.S.Metrics.actual_bps
      | None -> 0.0
    in
    if t < start + 600 then carried_before := !carried_before +. load
    else if t < start + 1800 then carried_during := !carried_during +. load
    else carried_after := !carried_after +. load;
    (* nothing is ever blackholed: all offered traffic lands somewhere *)
    (match S.Engine.last_state e with
    | Some st ->
        Helpers.check_float_eps 1.0 "no blackhole" 0.0
          (Edge_fabric.Projection.unroutable_bps st.S.Engine.actual)
    | None -> ())
  done;
  Alcotest.(check bool) "peer carried traffic before" true (!carried_before > 0.0);
  Helpers.check_float "nothing during outage" 0.0 !carried_during;
  Alcotest.(check bool) "traffic returns after recovery" true
    (!carried_after > 0.0)

let test_engine_altpath_wired () =
  let config =
    { (engine_config ~duration_s:300 ()) with S.Engine.measure_altpaths = true }
  in
  let e = S.Engine.create ~config tiny in
  ignore (S.Engine.run e);
  match S.Engine.measurer e with
  | None -> Alcotest.fail "measurer missing"
  | Some m ->
      Alcotest.(check bool) "samples collected" true
        (Ef_altpath.Path_store.paths_measured (Ef_altpath.Measurer.store m) > 0)

let suite =
  [
    Alcotest.test_case "metrics peaks/overloads" `Quick
      test_metrics_peaks_and_overloads;
    Alcotest.test_case "metrics detour series" `Quick test_metrics_detour_series;
    Alcotest.test_case "metrics level shares" `Quick test_metrics_level_shares;
    Alcotest.test_case "metrics lifetimes" `Quick test_metrics_lifetimes;
    Alcotest.test_case "engine deterministic" `Quick test_engine_deterministic;
    Alcotest.test_case "engine cycle count" `Quick test_engine_cycle_count;
    Alcotest.test_case "engine controller never worse" `Slow
      test_engine_controller_never_worse;
    Alcotest.test_case "engine detours need controller" `Slow
      test_engine_detours_only_with_controller;
    Alcotest.test_case "engine offered positive" `Slow
      test_engine_offered_follows_demand;
    Alcotest.test_case "engine estimates track" `Quick
      test_engine_estimates_track_truth;
    Alcotest.test_case "engine last state" `Quick test_engine_last_state_consistent;
    Alcotest.test_case "engine flash crowd" `Slow test_engine_flash_crowd_detour;
    Alcotest.test_case "engine perf-aware" `Slow test_engine_perf_aware_improves_rtt;
    Alcotest.test_case "engine peer failure" `Slow test_engine_peer_failure_recovery;
    Alcotest.test_case "engine altpath wired" `Quick test_engine_altpath_wired;
  ]
