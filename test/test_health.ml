(* Ef_health: SLO state machine, deterministic alerting, profiler +
   Chrome trace export, tracker integration *)

module O = Ef_obs
module H = Ef_health

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* a deterministic fake monotonic clock: each [tick] advances it *)
let with_fake_clock f =
  let now = ref 0L in
  O.Clock.set_now_ns (fun () -> !now);
  Fun.protect ~finally:O.Clock.reset (fun () ->
      f (fun ns -> now := Int64.add !now (Int64.of_int ns)))

(* --- Slo ---------------------------------------------------------------- *)

let clean = {
  H.Slo.in_duration_s = 0.1;
  in_degraded = false;
  in_skipped = false;
  in_stale = false;
  in_violations = 0;
  in_residual = 0;
}

let state = Alcotest.testable H.Slo.pp_state ( = )

let test_slo_healthy () =
  let slo = H.Slo.create () in
  for _ = 1 to 200 do
    Alcotest.check state "stays healthy" H.Slo.Healthy (H.Slo.observe slo clean)
  done;
  Alcotest.(check int) "cycles" 200 (H.Slo.cycles slo);
  Alcotest.(check int) "no overruns" 0 (H.Slo.overruns_total slo);
  Alcotest.(check (float 0.0)) "no burn" 0.0 (H.Slo.burn_rate slo)

(* one deadline overrun on the very first cycle is a 100% overrun window:
   burn 100x pins Broken immediately, then the machine recovers one rung
   per clean streak as the window dilutes — Degraded once burn < 10
   (cycle 10: (1/10)/0.01 rounds just below 10 in binary), Healthy once
   burn < 1 (cycle 101) *)
let test_slo_escalate_and_recover () =
  let slo = H.Slo.create () in
  Alcotest.check state "straight to broken" H.Slo.Broken
    (H.Slo.observe slo { clean with H.Slo.in_duration_s = 5.0 });
  let cycle = ref 1 in
  let first_seen target =
    let seen = ref None in
    while !seen = None && !cycle < 200 do
      incr cycle;
      if H.Slo.observe slo clean = target then seen := Some !cycle
    done;
    !seen
  in
  Alcotest.(check (option int)) "degraded at 10" (Some 10)
    (first_seen H.Slo.Degraded);
  Alcotest.(check (option int)) "healthy at 100" (Some 100)
    (first_seen H.Slo.Healthy);
  Alcotest.(check int) "one overrun total" 1 (H.Slo.overruns_total slo);
  Alcotest.(check (float 1e-9)) "worst duration kept" 5.0
    (H.Slo.worst_duration_s slo)

let test_slo_skip_counts_as_overrun () =
  let slo = H.Slo.create () in
  ignore (H.Slo.observe slo { clean with H.Slo.in_skipped = true });
  Alcotest.(check int) "skip = overrun" 1 (H.Slo.overruns_total slo);
  Alcotest.check state "skip breaks" H.Slo.Broken (H.Slo.state slo)

(* impairment without overrun (stale feed) degrades immediately but never
   burns the deadline budget; three in a row forces Broken *)
let test_slo_impaired_without_overrun () =
  let slo = H.Slo.create () in
  let stale = { clean with H.Slo.in_stale = true } in
  Alcotest.check state "degraded" H.Slo.Degraded (H.Slo.observe slo stale);
  Alcotest.check state "still degraded" H.Slo.Degraded (H.Slo.observe slo stale);
  Alcotest.check state "3 consecutive -> broken" H.Slo.Broken
    (H.Slo.observe slo stale);
  Alcotest.(check int) "no overruns" 0 (H.Slo.overruns_total slo);
  Alcotest.(check int) "impaired counted" 3 (H.Slo.impaired_total slo)

let test_slo_config_validated () =
  let bad f =
    match H.Slo.create ~config:(f H.Slo.default_config) () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "window > 0" true
    (bad (fun c -> { c with H.Slo.window = 0 }));
  Alcotest.(check bool) "target in (0,1)" true
    (bad (fun c -> { c with H.Slo.target = 1.0 }))

(* --- Alert -------------------------------------------------------------- *)

let ctx ?(cycle = 1) ?(duration = 0.1) ?(violations = 0) ?(residual = 0)
    ?(degraded = false) ?(stale = false) ?(metric = fun _ -> None) () =
  {
    H.Alert.cx_cycle = cycle;
    cx_time_s = 30 * cycle;
    cx_duration_s = duration;
    cx_state = H.Slo.Healthy;
    cx_burn_rate = 0.0;
    cx_overrun_fraction = 0.0;
    cx_violations = violations;
    cx_residual = residual;
    cx_degraded = degraded;
    cx_stale = stale;
    cx_skipped = false;
    cx_metric = metric;
  }

let test_alert_edge_triggered () =
  let t =
    H.Alert.create
      [
        H.Alert.rule ~name:"viol" H.Alert.Page
          H.Alert.(Cmp (Gt, Violations, Const 0.0));
      ]
  in
  let fire n cx = Alcotest.(check int) n (List.length (H.Alert.step t cx)) in
  Alcotest.(check int) "quiet" 0
    (List.length (H.Alert.step t (ctx ~cycle:1 ())));
  Alcotest.(check int) "fires on edge" 1
    (List.length (H.Alert.step t (ctx ~cycle:2 ~violations:3 ())));
  Alcotest.(check int) "holds silently" 0
    (List.length (H.Alert.step t (ctx ~cycle:3 ~violations:1 ())));
  Alcotest.(check int) "re-arms on clear" 0
    (List.length (H.Alert.step t (ctx ~cycle:4 ())));
  Alcotest.(check int) "fires again" 1
    (List.length (H.Alert.step t (ctx ~cycle:5 ~violations:2 ())));
  ignore fire;
  Alcotest.(check int) "two firings recorded" 2
    (List.length (H.Alert.firings t))

let test_alert_for_last () =
  let t =
    H.Alert.create
      [
        H.Alert.rule ~name:"persistent" H.Alert.Warn
          H.Alert.(For_last (3, Cmp (Gt, Residual, Const 0.0)));
      ]
  in
  let step cycle residual =
    List.length (H.Alert.step t (ctx ~cycle ~residual ()))
  in
  Alcotest.(check int) "1st" 0 (step 1 1);
  Alcotest.(check int) "2nd" 0 (step 2 1);
  Alcotest.(check int) "3rd consecutive fires" 1 (step 3 1);
  Alcotest.(check int) "still holding" 0 (step 4 1);
  Alcotest.(check int) "broken streak" 0 (step 5 0);
  Alcotest.(check int) "restart 1" 0 (step 6 1);
  Alcotest.(check int) "restart 2" 0 (step 7 1);
  Alcotest.(check int) "restart 3 fires" 1 (step 8 1)

let test_alert_delta_metric () =
  let value = ref 0.0 in
  let metric = function "work.done" -> Some !value | _ -> None in
  let t =
    H.Alert.create
      [
        H.Alert.rule ~name:"stalled" H.Alert.Warn
          H.Alert.(Cmp (Le, Delta "work.done", Const 0.0));
      ]
  in
  (* first cycle: delta vs implicit 0 baseline *)
  value := 5.0;
  Alcotest.(check int) "progress" 0
    (List.length (H.Alert.step t (ctx ~cycle:1 ~metric ())));
  value := 9.0;
  Alcotest.(check int) "still progressing" 0
    (List.length (H.Alert.step t (ctx ~cycle:2 ~metric ())));
  Alcotest.(check int) "stall fires" 1
    (List.length (H.Alert.step t (ctx ~cycle:3 ~metric ())))

let test_alert_duplicate_names_rejected () =
  Alcotest.(check bool) "duplicate rejected" true
    (match
       H.Alert.create
         [
           H.Alert.rule ~name:"dup" H.Alert.Info H.Alert.Degraded_input;
           H.Alert.rule ~name:"dup" H.Alert.Warn H.Alert.Stale_input;
         ]
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* byte-determinism: the same observation sequence through two fresh rule
   engines yields byte-identical firing JSON — the property `efctl run
   --alerts-out` (and the CI health-smoke diff) relies on *)
let test_alert_firings_deterministic () =
  let run () =
    let t = H.Alert.create (H.Alert.default_rules ()) in
    for cycle = 1 to 40 do
      let violations = if cycle mod 7 = 0 then 2 else 0 in
      let degraded = cycle mod 11 = 0 in
      let residual = if cycle >= 20 && cycle <= 26 then 1 else 0 in
      ignore (H.Alert.step t (ctx ~cycle ~violations ~degraded ~residual ()))
    done;
    String.concat "\n"
      (List.map
         (fun f -> O.Json.to_string (H.Alert.firing_to_json f))
         (H.Alert.firings t))
  in
  let a = run () and b = run () in
  Alcotest.(check string) "byte-identical" a b;
  Alcotest.(check bool) "something fired" true (String.length a > 0);
  (* no wall-clock stamp may leak into the journal *)
  Alcotest.(check bool) "no timestamp field" false (contains a "\"ts\"")

(* --- Profiler ----------------------------------------------------------- *)

let test_profiler_noop () =
  let p = H.Profiler.noop in
  Alcotest.(check bool) "disabled" false (H.Profiler.enabled p);
  Alcotest.(check int) "span returns thunk result" 42
    (H.Profiler.span p ~name:"x" (fun () -> 42));
  H.Profiler.counter p ~name:"gc" [ ("minor", 1.0) ];
  Alcotest.(check int) "records nothing" 0 (H.Profiler.length p)

let test_profiler_records_and_attaches () =
  with_fake_clock @@ fun tick ->
  let p = H.Profiler.create () in
  let reg = O.Registry.create () in
  H.Profiler.attach p reg;
  (* a span timed through the registry lands in the profiler via the hook *)
  O.Span.time ~registry:reg "stage.collect" (fun () -> tick 1_000_000);
  ignore (H.Profiler.span p ~name:"manual" (fun () -> tick 2_000_000));
  ignore (H.Profiler.span ~lane:3 p ~name:"pool.task" (fun () -> tick 500_000));
  H.Profiler.counter p ~name:"gc" [ ("minor_words", 10.0) ];
  Alcotest.(check int) "hooked span" 1 (H.Profiler.span_count p ~name:"stage.collect");
  Alcotest.(check int) "manual span" 1 (H.Profiler.span_count p ~name:"manual");
  Alcotest.(check int) "counter" 1 (H.Profiler.counter_count p ~name:"gc");
  Alcotest.(check (float 1e-9)) "span seconds" 0.002
    (H.Profiler.span_seconds p ~name:"manual");
  Alcotest.(check (list (pair int (float 1e-9)))) "lane busy" [ (3, 0.0005) ]
    (H.Profiler.lane_busy_s p)

let test_profiler_capacity_bounds () =
  let p = H.Profiler.create ~capacity:8 () in
  for i = 1 to 20 do
    ignore (H.Profiler.span p ~name:(string_of_int i) (fun () -> ()))
  done;
  Alcotest.(check int) "buffer capped" 8 (H.Profiler.length p);
  Alcotest.(check int) "overflow counted" 12 (H.Profiler.dropped p)

let test_profiler_chrome_json () =
  let render () =
    with_fake_clock @@ fun tick ->
    let p = H.Profiler.create () in
    ignore (H.Profiler.span p ~name:"cycle" (fun () -> tick 3_000_000));
    H.Profiler.counter p ~name:"gc" [ ("minor_words", 7.0) ];
    H.Profiler.chrome_string p
  in
  let s = render () in
  Alcotest.(check string) "fake clock makes it reproducible" s (render ());
  (match O.Json.parse s with
  | Error e -> Alcotest.failf "chrome trace is not valid JSON: %s" e
  | Ok json -> (
      match Option.bind (O.Json.member "traceEvents" json) O.Json.to_list_opt with
      | None -> Alcotest.fail "no traceEvents array"
      | Some events ->
          let phase e =
            Option.bind (O.Json.member "ph" e) O.Json.to_string_opt
          in
          let count ph =
            List.length (List.filter (fun e -> phase e = Some ph) events)
          in
          (* process_name + thread_name metadata, one X span, one C counter *)
          Alcotest.(check int) "metadata events" 2 (count "M");
          Alcotest.(check int) "span events" 1 (count "X");
          Alcotest.(check int) "counter events" 1 (count "C")));
  (* one event per line so line-oriented tooling can check it *)
  Alcotest.(check bool) "first line opens traceEvents" true
    (String.length s > 16 && String.sub s 0 16 = "{\"traceEvents\":[")

(* --- Tracker ------------------------------------------------------------ *)

let cycle_in ?(duration = 0.1) ?(violations = 0) ?(stale = false) time_s =
  {
    H.Tracker.time_s;
    duration_s = duration;
    degraded = false;
    skipped = false;
    stale;
    violations;
    residual = 0;
  }

let test_tracker_noop () =
  let t = H.Tracker.noop in
  Alcotest.(check bool) "disabled" false (H.Tracker.enabled t);
  Alcotest.(check (list pass)) "observe returns nothing" []
    (H.Tracker.observe_cycle t (cycle_in 0));
  Alcotest.check state "healthy" H.Slo.Healthy (H.Tracker.state t);
  Alcotest.(check (list pass)) "no prom families" []
    (H.Tracker.prom_families t)

let test_tracker_mirrors_registry () =
  let reg = O.Registry.create () in
  let t = H.Tracker.create ~obs:reg () in
  ignore (H.Tracker.observe_cycle t (cycle_in 0));
  let firings = H.Tracker.observe_cycle t (cycle_in ~violations:1 30) in
  Alcotest.(check bool) "guard_violation fired" true
    (List.exists (fun f -> f.H.Alert.f_rule = "guard_violation") firings);
  let counter name =
    O.Counter.value (O.Registry.counter reg name)
  in
  Alcotest.(check bool) "alert counter bumped" true
    (counter "health.alerts.fired" >= 1.0);
  Alcotest.(check (float 0.0)) "state gauge = degraded rank" 1.0
    (O.Gauge.value (O.Registry.gauge reg "health.state.rank"));
  Alcotest.(check bool) "transition recorded" true
    (counter "health.state.transitions" >= 1.0);
  Alcotest.(check int) "transitions list" 1
    (List.length (H.Tracker.transitions t));
  Alcotest.(check int) "cycles counted" 2 (H.Tracker.cycles t)

let test_tracker_prom_families () =
  let t = H.Tracker.create () in
  ignore (H.Tracker.observe_cycle t (cycle_in ~stale:true 0));
  let text = O.Prom.render (H.Tracker.prom_families t) in
  Alcotest.(check bool) "health_state family" true
    (contains text "health_state{state=\"degraded\"} 1.0");
  Alcotest.(check bool) "zero states present" true
    (contains text "health_state{state=\"broken\"} 0.0");
  Alcotest.(check bool) "fired rules labeled" true
    (contains text
       "alerts_fired_total{rule=\"stale_inputs\",severity=\"warn\"} 1.0");
  Alcotest.(check bool) "unfired rules still exported" true
    (contains text
       "alerts_fired_total{rule=\"health_broken\",severity=\"page\"} 0.0")

let test_tracker_deterministic_summary () =
  let run () =
    let t = H.Tracker.create () in
    for c = 1 to 30 do
      ignore
        (H.Tracker.observe_cycle t
           (cycle_in ~violations:(if c = 7 then 1 else 0)
              ~stale:(c >= 12 && c < 14)
              (30 * c)))
    done;
    O.Json.to_string (H.Tracker.summary_json t)
  in
  Alcotest.(check string) "summary byte-identical" (run ()) (run ())

(* the engine wiring: a short simulated run with a tracker produces the
   same metrics as without one, and the journal carries health events *)
let test_tracker_engine_integration () =
  let module S = Ef_sim in
  let run ?health () =
    let reg = O.Registry.create () in
    let config =
      match health with
      | None -> S.Engine.make_config ~duration_s:1800 ~seed:3 ()
      | Some h -> S.Engine.make_config ~duration_s:1800 ~seed:3 ~health:h ()
    in
    let engine = S.Engine.create ~config ~obs:reg Ef_netsim.Scenario.pop_a in
    S.Engine.run engine
  in
  let plain = run () in
  let tracker = H.Tracker.create () in
  let tracked = run ~health:tracker () in
  Alcotest.(check int) "same cycle count"
    (List.length (S.Metrics.rows plain))
    (List.length (S.Metrics.rows tracked));
  Alcotest.(check (float 1e-9)) "tracking never changes outcomes"
    (S.Metrics.mean_detour_fraction plain)
    (S.Metrics.mean_detour_fraction tracked);
  Alcotest.(check int) "tracker saw every cycle"
    (List.length (S.Metrics.rows tracked))
    (H.Tracker.cycles tracker)

let suite =
  [
    Alcotest.test_case "slo: healthy run stays healthy" `Quick test_slo_healthy;
    Alcotest.test_case "slo: escalate immediately, recover rung by rung"
      `Quick test_slo_escalate_and_recover;
    Alcotest.test_case "slo: skipped cycle counts as overrun" `Quick
      test_slo_skip_counts_as_overrun;
    Alcotest.test_case "slo: impairment without overrun" `Quick
      test_slo_impaired_without_overrun;
    Alcotest.test_case "slo: config validation" `Quick test_slo_config_validated;
    Alcotest.test_case "alert: edge-triggered with re-arm" `Quick
      test_alert_edge_triggered;
    Alcotest.test_case "alert: For_last streak" `Quick test_alert_for_last;
    Alcotest.test_case "alert: Delta metric operand" `Quick
      test_alert_delta_metric;
    Alcotest.test_case "alert: duplicate names rejected" `Quick
      test_alert_duplicate_names_rejected;
    Alcotest.test_case "alert: firings byte-deterministic" `Quick
      test_alert_firings_deterministic;
    Alcotest.test_case "profiler: noop records nothing" `Quick
      test_profiler_noop;
    Alcotest.test_case "profiler: records spans, counters, registry hook"
      `Quick test_profiler_records_and_attaches;
    Alcotest.test_case "profiler: capacity bounds the buffer" `Quick
      test_profiler_capacity_bounds;
    Alcotest.test_case "profiler: chrome trace is valid reproducible JSON"
      `Quick test_profiler_chrome_json;
    Alcotest.test_case "tracker: noop" `Quick test_tracker_noop;
    Alcotest.test_case "tracker: mirrors health into the registry" `Quick
      test_tracker_mirrors_registry;
    Alcotest.test_case "tracker: prom families" `Quick
      test_tracker_prom_families;
    Alcotest.test_case "tracker: summary byte-deterministic" `Quick
      test_tracker_deterministic_summary;
    Alcotest.test_case "tracker: engine integration is outcome-neutral"
      `Quick test_tracker_engine_integration;
  ]
