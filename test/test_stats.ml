(* ef_stats: Summary, Cdf, Histogram, Table *)

open Ef_stats

let test_summary_empty () =
  let s = Summary.create () in
  Alcotest.(check int) "count" 0 (Summary.count s);
  Alcotest.(check bool) "mean is nan" true (Float.is_nan (Summary.mean s))

let test_summary_basic () =
  let s = Summary.create () in
  List.iter (Summary.observe s) [ 1.0; 2.0; 3.0; 4.0 ];
  Helpers.check_float "mean" 2.5 (Summary.mean s);
  Helpers.check_float "min" 1.0 (Summary.min s);
  Helpers.check_float "max" 4.0 (Summary.max s);
  Helpers.check_float "total" 10.0 (Summary.total s);
  Helpers.check_float_eps 1e-9 "variance" (5.0 /. 3.0) (Summary.variance s)

let test_summary_merge () =
  let a = Summary.create () and b = Summary.create () and whole = Summary.create () in
  let xs = [ 5.0; 1.0; 3.0 ] and ys = [ 2.0; 8.0; 4.0; 6.0 ] in
  List.iter (Summary.observe a) xs;
  List.iter (Summary.observe b) ys;
  List.iter (Summary.observe whole) (xs @ ys);
  let merged = Summary.merge a b in
  Alcotest.(check int) "count" (Summary.count whole) (Summary.count merged);
  Helpers.check_float_eps 1e-9 "mean" (Summary.mean whole) (Summary.mean merged);
  Helpers.check_float_eps 1e-9 "variance" (Summary.variance whole)
    (Summary.variance merged);
  Helpers.check_float "min" (Summary.min whole) (Summary.min merged);
  Helpers.check_float "max" (Summary.max whole) (Summary.max merged)

let test_cdf_quantiles () =
  let c = Cdf.of_samples [ 4.0; 1.0; 3.0; 2.0 ] in
  Helpers.check_float "min" 1.0 (Cdf.quantile c 0.0);
  Helpers.check_float "max" 4.0 (Cdf.quantile c 1.0);
  Helpers.check_float "median interpolates" 2.5 (Cdf.median c)

let test_cdf_fraction_below () =
  let c = Cdf.of_samples [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  Helpers.check_float "below 3" 0.6 (Cdf.fraction_below c 3.0);
  Helpers.check_float "below 0" 0.0 (Cdf.fraction_below c 0.0);
  Helpers.check_float "below 10" 1.0 (Cdf.fraction_below c 10.0);
  Helpers.check_float "at least 4" 0.4 (Cdf.fraction_at_least c 4.0)

let test_cdf_single_sample () =
  let c = Cdf.of_samples [ 7.0 ] in
  Helpers.check_float "quantile" 7.0 (Cdf.quantile c 0.3);
  Helpers.check_float "below" 1.0 (Cdf.fraction_below c 7.0)

let test_cdf_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Cdf.of_array: empty") (fun () ->
      ignore (Cdf.of_samples []))

let test_cdf_series_monotone () =
  let c = Cdf.of_samples (List.init 100 (fun i -> float_of_int (i * i))) in
  let series = Cdf.series c ~points:11 in
  Alcotest.(check int) "points" 11 (List.length series);
  let rec check = function
    | (x1, q1) :: ((x2, q2) :: _ as rest) ->
        if x2 < x1 || q2 < q1 then Alcotest.fail "series not monotone";
        check rest
    | [ _ ] | [] -> ()
  in
  check series

let test_histogram_basic () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:5 in
  List.iter (Histogram.observe h) [ 1.0; 3.0; 3.5; 9.9 ];
  Alcotest.(check int) "count" 4 (Histogram.count h);
  Helpers.check_float "bucket 0" 1.0
    (match List.nth (Histogram.buckets h) 0 with _, _, w -> w);
  Helpers.check_float "bucket 1" 2.0
    (match List.nth (Histogram.buckets h) 1 with _, _, w -> w);
  Helpers.check_float "fraction" 0.5 (Histogram.fraction_in h 1)

let test_histogram_overflow () =
  let h = Histogram.create ~lo:0.0 ~hi:1.0 ~buckets:2 in
  Histogram.observe h (-1.0);
  Histogram.observe h 5.0;
  Histogram.observe h 1.0 (* hi edge goes to overflow *);
  Helpers.check_float "underflow" 1.0 (Histogram.underflow h);
  Helpers.check_float "overflow" 2.0 (Histogram.overflow h)

let test_histogram_weighted () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:2 in
  Histogram.observe_weighted h 1.0 10.0;
  Histogram.observe_weighted h 6.0 30.0;
  Helpers.check_float "weight" 40.0 (Histogram.total_weight h);
  Helpers.check_float "fraction" 0.75 (Histogram.fraction_in h 1)

let test_histogram_custom_edges () =
  let h = Histogram.create_edges [| 0.0; 1.0; 100.0 |] in
  Histogram.observe h 0.5;
  Histogram.observe h 50.0;
  Histogram.observe h 99.0;
  Helpers.check_float "first" 1.0 (Histogram.fraction_in h 0 *. 3.0);
  Alcotest.check_raises "bad edges"
    (Invalid_argument "Histogram.create_edges: edges must increase strictly")
    (fun () -> ignore (Histogram.create_edges [| 1.0; 1.0 |]))

let test_table_render () =
  let t = Table.create [ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let rendered = Table.render t in
  Alcotest.(check bool) "has header" true
    (String.length rendered > 0 && String.sub rendered 0 4 = "name");
  Alcotest.(check int) "row count" 2 (Table.row_count t)

let test_table_pads_short_rows () =
  let t = Table.create [ "a"; "b"; "c" ] in
  Table.add_row t [ "x" ];
  Alcotest.(check int) "row accepted" 1 (Table.row_count t)

let test_table_rejects_long_rows () =
  let t = Table.create [ "a" ] in
  Alcotest.check_raises "too many cells"
    (Invalid_argument "Table.add_row: more cells than headers") (fun () ->
      Table.add_row t [ "1"; "2" ])

let test_table_rowf () =
  let t = Table.create [ "a"; "b" ] in
  Table.add_rowf t "%d\t%.1f" 42 3.5;
  Alcotest.(check int) "row added" 1 (Table.row_count t);
  let rendered = Table.render t in
  Alcotest.(check bool) "contains 42" true
    (Helpers.string_contains ~needle:"42" rendered);
  Alcotest.(check bool) "contains 3.5" true
    (Helpers.string_contains ~needle:"3.5" rendered)

let qcheck_cdf_quantile_monotone =
  QCheck.Test.make ~name:"cdf quantile monotone" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 50) (float_bound_exclusive 1000.0))
              (pair (float_bound_inclusive 1.0) (float_bound_inclusive 1.0)))
    (fun (samples, (q1, q2)) ->
      QCheck.assume (samples <> []);
      let c = Cdf.of_samples samples in
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      Cdf.quantile c lo <= Cdf.quantile c hi +. 1e-9)

let qcheck_summary_mean_bounds =
  QCheck.Test.make ~name:"summary mean within min/max" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 100) (float_bound_exclusive 1e6))
    (fun samples ->
      QCheck.assume (samples <> []);
      let s = Summary.create () in
      List.iter (Summary.observe s) samples;
      Summary.mean s >= Summary.min s -. 1e-6
      && Summary.mean s <= Summary.max s +. 1e-6)

(* --- NaN rejection: a NaN poisons sorts, Welford means and bucket
   search silently, so every ingestion point refuses it loudly -------- *)

let test_nan_rejected_everywhere () =
  Alcotest.check_raises "cdf of_array"
    (Invalid_argument "Cdf.of_array: NaN sample") (fun () ->
      ignore (Cdf.of_array [| 1.0; Float.nan; 2.0 |]));
  Alcotest.check_raises "cdf of_samples"
    (Invalid_argument "Cdf.of_array: NaN sample") (fun () ->
      ignore (Cdf.of_samples [ Float.nan ]));
  Alcotest.check_raises "summary observe"
    (Invalid_argument "Summary.observe: NaN sample") (fun () ->
      Summary.observe (Summary.create ()) Float.nan);
  let h = Histogram.create ~lo:0.0 ~hi:1.0 ~buckets:4 in
  Alcotest.check_raises "histogram value"
    (Invalid_argument "Histogram.observe: NaN value") (fun () ->
      Histogram.observe h Float.nan);
  Alcotest.check_raises "histogram weight"
    (Invalid_argument "Histogram.observe: NaN weight") (fun () ->
      Histogram.observe_weighted h 0.5 Float.nan);
  (* infinities are ordered, not poisonous: still accepted *)
  let cdf = Cdf.of_array [| Float.infinity; 1.0 |] in
  Alcotest.(check (float 0.0)) "infinity sorts last" Float.infinity (Cdf.max cdf)

let suite =
  [
    Alcotest.test_case "summary empty" `Quick test_summary_empty;
    Alcotest.test_case "summary basic" `Quick test_summary_basic;
    Alcotest.test_case "summary merge" `Quick test_summary_merge;
    Alcotest.test_case "cdf quantiles" `Quick test_cdf_quantiles;
    Alcotest.test_case "cdf fraction below" `Quick test_cdf_fraction_below;
    Alcotest.test_case "cdf single sample" `Quick test_cdf_single_sample;
    Alcotest.test_case "cdf empty rejected" `Quick test_cdf_empty_rejected;
    Alcotest.test_case "cdf series monotone" `Quick test_cdf_series_monotone;
    Alcotest.test_case "histogram basic" `Quick test_histogram_basic;
    Alcotest.test_case "histogram overflow" `Quick test_histogram_overflow;
    Alcotest.test_case "histogram weighted" `Quick test_histogram_weighted;
    Alcotest.test_case "histogram custom edges" `Quick test_histogram_custom_edges;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table pads short rows" `Quick test_table_pads_short_rows;
    Alcotest.test_case "table rejects long rows" `Quick test_table_rejects_long_rows;
    Alcotest.test_case "table rowf" `Quick test_table_rowf;
    Alcotest.test_case "nan rejected everywhere" `Quick
      test_nan_rejected_everywhere;
    QCheck_alcotest.to_alcotest qcheck_cdf_quantile_monotone;
    QCheck_alcotest.to_alcotest qcheck_summary_mean_bounds;
  ]
