(* ef_util: Rng, Zipf, Ewma, Units, Bitset *)

open Ef_util

let test_bitset_basics () =
  let s = Bitset.create 40 in
  Alcotest.(check bool) "empty" true (Bitset.is_empty s);
  Bitset.add s 0;
  Bitset.add s 9;
  Bitset.add s 39;
  Bitset.add s 9;
  (* idempotent *)
  Alcotest.(check int) "cardinal" 3 (Bitset.cardinal s);
  Alcotest.(check (list int)) "ascending" [ 0; 9; 39 ] (Bitset.to_list s);
  Alcotest.(check bool) "mem" true (Bitset.mem s 9);
  Alcotest.(check bool) "out of universe absent" false (Bitset.mem s 40);
  Alcotest.(check bool) "negative absent" false (Bitset.mem s (-1));
  Bitset.remove s 9;
  Bitset.remove s 9;
  Alcotest.(check int) "removed once" 2 (Bitset.cardinal s);
  Bitset.set s 1 true;
  Bitset.set s 0 false;
  Alcotest.(check (list int)) "after set" [ 1; 39 ] (Bitset.to_list s);
  Bitset.clear s;
  Alcotest.(check bool) "cleared" true (Bitset.is_empty s)

let test_bitset_bounds () =
  let s = Bitset.create 8 in
  Alcotest.check_raises "add out of universe"
    (Invalid_argument "Bitset: id outside universe") (fun () -> Bitset.add s 8);
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Bitset.create: negative capacity") (fun () ->
      ignore (Bitset.create (-1)));
  let empty = Bitset.create 0 in
  Alcotest.(check bool) "zero universe mem" false (Bitset.mem empty 0)

let test_bitset_iter_fold () =
  let s = Bitset.create 100 in
  List.iter (Bitset.add s) [ 3; 14; 15; 92 ];
  let seen = ref [] in
  Bitset.iter (fun i -> seen := i :: !seen) s;
  Alcotest.(check (list int)) "iter ascending" [ 3; 14; 15; 92 ] (List.rev !seen);
  Alcotest.(check int) "fold sum" 124 (Bitset.fold (fun i acc -> i + acc) s 0)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.bits64 a) (Rng.bits64 b) then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 13 in
    if v < 0 || v >= 13 then Alcotest.failf "out of bounds: %d" v
  done

let test_rng_int_in_bounds () =
  let rng = Rng.create 9 in
  for _ = 1 to 10_000 do
    let v = Rng.int_in rng (-5) 5 in
    if v < -5 || v > 5 then Alcotest.failf "out of bounds: %d" v
  done

let test_rng_float_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.failf "out of bounds: %f" v
  done

let test_rng_split_independent () =
  let parent = Rng.create 5 in
  let child = Rng.split parent in
  (* drawing from the child must not affect the parent's future draws *)
  let parent_copy = Rng.copy parent in
  ignore (Rng.bits64 child);
  ignore (Rng.bits64 child);
  Alcotest.(check int64) "parent unaffected" (Rng.bits64 parent_copy)
    (Rng.bits64 parent)

let test_rng_chance_extremes () =
  let rng = Rng.create 11 in
  Alcotest.(check bool) "p=0 never" false (Rng.chance rng 0.0);
  Alcotest.(check bool) "p=1 always" true (Rng.chance rng 1.0)

let test_rng_exponential_mean () =
  let rng = Rng.create 13 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng ~mean:4.0
  done;
  let mean = !sum /. float_of_int n in
  if Float.abs (mean -. 4.0) > 0.2 then Alcotest.failf "mean %f too far from 4" mean

let test_rng_gaussian_moments () =
  let rng = Rng.create 17 in
  let n = 20_000 in
  let sum = ref 0.0 and sq = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.gaussian rng ~mu:2.0 ~sigma:3.0 in
    sum := !sum +. x;
    sq := !sq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  if Float.abs (mean -. 2.0) > 0.15 then Alcotest.failf "mean %f" mean;
  if Float.abs (var -. 9.0) > 0.8 then Alcotest.failf "variance %f" var

let test_rng_poisson_mean () =
  let rng = Rng.create 19 in
  List.iter
    (fun lambda ->
      let n = 10_000 in
      let sum = ref 0 in
      for _ = 1 to n do
        sum := !sum + Rng.poisson rng ~lambda
      done;
      let mean = float_of_int !sum /. float_of_int n in
      if Float.abs (mean -. lambda) > (0.1 *. lambda) +. 0.1 then
        Alcotest.failf "poisson(%f) mean %f" lambda mean)
    [ 0.5; 3.0; 50.0 ]

let test_rng_poisson_zero () =
  let rng = Rng.create 21 in
  Alcotest.(check int) "lambda 0" 0 (Rng.poisson rng ~lambda:0.0)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 23 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 50 Fun.id) sorted

let test_rng_sample_without_replacement () =
  let rng = Rng.create 29 in
  let arr = Array.init 20 Fun.id in
  let sample = Rng.sample_without_replacement rng 8 arr in
  Alcotest.(check int) "size" 8 (Array.length sample);
  let sorted = Array.copy sample in
  Array.sort compare sorted;
  Array.iteri
    (fun i v ->
      if i > 0 && sorted.(i - 1) = v then Alcotest.fail "duplicate in sample")
    sorted;
  let big = Rng.sample_without_replacement rng 100 arr in
  Alcotest.(check int) "capped at n" 20 (Array.length big)

let test_zipf_probabilities_sum () =
  let z = Zipf.create ~n:100 ~s:1.0 in
  let sum = Array.fold_left ( +. ) 0.0 (Zipf.weights z) in
  Helpers.check_float_eps 1e-9 "sums to 1" 1.0 sum

let test_zipf_monotone () =
  let z = Zipf.create ~n:50 ~s:0.9 in
  for rank = 1 to 49 do
    if Zipf.probability z rank < Zipf.probability z (rank + 1) then
      Alcotest.failf "not monotone at %d" rank
  done

let test_zipf_skew () =
  let z = Zipf.create ~n:1000 ~s:1.0 in
  let top10 = Zipf.top_share z 10 in
  Alcotest.(check bool) "top-10 of 1000 carries >25%" true (top10 > 0.25)

let test_zipf_sample_range () =
  let z = Zipf.create ~n:30 ~s:1.2 in
  let rng = Rng.create 31 in
  for _ = 1 to 5_000 do
    let r = Zipf.sample z rng in
    if r < 1 || r > 30 then Alcotest.failf "rank %d out of range" r
  done

let test_zipf_sample_distribution () =
  let z = Zipf.create ~n:10 ~s:1.0 in
  let rng = Rng.create 37 in
  let counts = Array.make 11 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let r = Zipf.sample z rng in
    counts.(r) <- counts.(r) + 1
  done;
  let freq1 = float_of_int counts.(1) /. float_of_int n in
  if Float.abs (freq1 -. Zipf.probability z 1) > 0.02 then
    Alcotest.failf "rank-1 freq %f vs %f" freq1 (Zipf.probability z 1)

let test_zipf_invalid () =
  Alcotest.check_raises "n=0" (Invalid_argument "Zipf.create: n must be positive")
    (fun () -> ignore (Zipf.create ~n:0 ~s:1.0))

let test_ewma_first_observation () =
  let e = Ewma.create ~alpha:0.5 in
  Alcotest.(check bool) "not initialized" false (Ewma.initialized e);
  Ewma.observe e 10.0;
  Helpers.check_float "first sets value" 10.0 (Ewma.value e)

let test_ewma_smoothing () =
  let e = Ewma.create ~alpha:0.5 in
  Ewma.observe e 10.0;
  Ewma.observe e 20.0;
  Helpers.check_float "half-way" 15.0 (Ewma.value e);
  Ewma.observe e 15.0;
  Helpers.check_float "converging" 15.0 (Ewma.value e)

let test_ewma_converges () =
  let e = Ewma.create ~alpha:0.3 in
  for _ = 1 to 100 do
    Ewma.observe e 42.0
  done;
  Helpers.check_float_eps 1e-6 "converged" 42.0 (Ewma.value e)

let test_ewma_alpha_validation () =
  Alcotest.check_raises "alpha 0" (Invalid_argument "Ewma.create: alpha out of (0,1]")
    (fun () -> ignore (Ewma.create ~alpha:0.0))

let test_units_conversions () =
  Helpers.check_float "gbps" 10e9 (Units.gbps 10.0);
  Helpers.check_float "mbps" 5e6 (Units.mbps 5.0);
  Helpers.check_float "to_gbps" 2.5 (Units.to_gbps 2.5e9)

let test_units_pp_rate () =
  Alcotest.(check string) "gbps" "12.50 Gbps" (Units.rate_to_string 12.5e9);
  Alcotest.(check string) "mbps" "830.0 Mbps" (Units.rate_to_string 830e6);
  Alcotest.(check string) "bps" "12 bps" (Units.rate_to_string 12.0)

let test_units_time_of_day () =
  Alcotest.(check string) "21:30" "21:30"
    (Format.asprintf "%a" Units.pp_time_of_day ((21 * 3600) + (30 * 60)));
  Alcotest.(check string) "wraps" "01:00"
    (Format.asprintf "%a" Units.pp_time_of_day (25 * 3600))

let qcheck_int_bounds =
  QCheck.Test.make ~name:"rng int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let qcheck_pareto_min =
  QCheck.Test.make ~name:"pareto >= xmin" ~count:500 QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      Rng.pareto rng ~alpha:1.3 ~xmin:2.0 >= 2.0)

(* --- Pool: the domain work pool behind Fleet.run ~jobs ------------------ *)

let test_pool_map_order () =
  (* results come back in submission order, whatever the worker count *)
  let items = List.init 50 Fun.id in
  let expect = List.map (fun i -> i * i) items in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          Alcotest.(check (list int))
            (Printf.sprintf "jobs=%d" jobs)
            expect
            (Pool.map pool (fun i -> i * i) items)))
    [ 1; 2; 4; 7 ]

let test_pool_jobs1_is_sequential () =
  (* size-1 pools never spawn a domain: side effects happen in list
     order on the calling thread *)
  let log = ref [] in
  Pool.with_pool ~jobs:1 (fun pool ->
      ignore
        (Pool.map pool
           (fun i ->
             log := i :: !log;
             i)
           [ 1; 2; 3 ]));
  Alcotest.(check (list int)) "list order" [ 3; 2; 1 ] !log

let test_pool_exception () =
  (* an exception in a task surfaces to the caller (lowest submission
     index wins when several fail), and the pool survives for reuse *)
  Pool.with_pool ~jobs:4 (fun pool ->
      (match
         Pool.map pool
           (fun i -> if i mod 2 = 1 then failwith (string_of_int i) else i)
           [ 0; 1; 2; 3 ]
       with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure msg ->
          Alcotest.(check string) "first failing index" "1" msg);
      Alcotest.(check (list int))
        "pool usable after failure" [ 2; 4 ]
        (Pool.map pool (fun i -> 2 * i) [ 1; 2 ]))

let test_pool_empty_and_validation () =
  Pool.with_pool ~jobs:3 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Pool.map pool Fun.id []));
  Alcotest.check_raises "jobs=0 rejected"
    (Invalid_argument "Pool.create: jobs 0 not in [1, 128]") (fun () ->
      ignore (Pool.create ~jobs:0 ()))

let test_pool_persistent_reuse () =
  (* the workers spawn once at create and survive across maps: repeated
     runs on one pool keep answering (this is the persistent-runtime
     contract Fleet.run and the bench loops rely on) *)
  let pool = Pool.create ~jobs:4 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      for round = 1 to 5 do
        let items = List.init 20 (fun i -> i + round) in
        Alcotest.(check (list int))
          (Printf.sprintf "round %d" round)
          (List.map (fun i -> i * 3) items)
          (Pool.map pool (fun i -> i * 3) items)
      done)

let test_pool_map_lane () =
  (* every task reports a lane in [0, jobs); results stay in submission
     order regardless of which lane ran them *)
  Pool.with_pool ~jobs:3 (fun pool ->
      let results =
        Pool.map_lane pool
          (fun ~lane i ->
            Alcotest.(check bool)
              "lane in range" true
              (lane >= 0 && lane < 3);
            i * 10)
          (List.init 30 Fun.id)
      in
      Alcotest.(check (list int))
        "order" (List.init 30 (fun i -> i * 10)) results)

let test_pool_nested_map_no_deadlock () =
  (* a map issued from inside a pool task must not wait on the pool's
     own lanes (they are all busy) — it degrades to sequential *)
  Pool.with_pool ~jobs:2 (fun pool ->
      let outer =
        Pool.map pool
          (fun i ->
            let inner = Pool.map pool (fun j -> j + i) [ 1; 2; 3 ] in
            List.fold_left ( + ) 0 inner)
          [ 10; 20; 30; 40 ]
      in
      Alcotest.(check (list int)) "nested totals" [ 36; 66; 96; 126 ] outer)

let test_pool_global_reuse_and_resize () =
  (* same jobs value: the process-wide pool is returned as-is; a new
     jobs value replaces it (old workers shut down) *)
  Pool.shutdown_global ();
  let a = Pool.global ~jobs:2 () in
  let b = Pool.global ~jobs:2 () in
  Alcotest.(check bool) "same pool reused" true (a == b);
  Alcotest.(check int) "jobs" 2 (Pool.jobs a);
  let c = Pool.global ~jobs:3 () in
  Alcotest.(check bool) "resized pool is fresh" true (not (a == c));
  Alcotest.(check int) "resized jobs" 3 (Pool.jobs c);
  Alcotest.(check (list int))
    "resized pool works" [ 2; 4; 6 ]
    (Pool.map c (fun i -> 2 * i) [ 1; 2; 3 ]);
  Pool.shutdown_global ()

let test_pool_chunk_ranges () =
  (* contiguous cover of [0, n), sizes within one of each other *)
  List.iter
    (fun (n, k) ->
      let ranges = Pool.chunk_ranges ~n ~k in
      let covered = ref 0 in
      let min_w = ref max_int and max_w = ref 0 in
      List.iter
        (fun (lo, hi) ->
          Alcotest.(check int)
            (Printf.sprintf "contiguous n=%d k=%d" n k)
            !covered lo;
          covered := hi;
          let w = hi - lo in
          if w < !min_w then min_w := w;
          if w > !max_w then max_w := w)
        ranges;
      Alcotest.(check int) (Printf.sprintf "covers n=%d k=%d" n k) n !covered;
      if n > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "balanced n=%d k=%d" n k)
          true
          (!max_w - !min_w <= 1))
    [ (10, 3); (7, 7); (3, 8); (1, 4); (100, 1); (0, 4) ]

let suite =
  [
    Alcotest.test_case "bitset basics" `Quick test_bitset_basics;
    Alcotest.test_case "bitset bounds" `Quick test_bitset_bounds;
    Alcotest.test_case "bitset iter/fold" `Quick test_bitset_iter_fold;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng seeds differ" `Quick test_rng_seeds_differ;
    Alcotest.test_case "rng int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng int_in bounds" `Quick test_rng_int_in_bounds;
    Alcotest.test_case "rng float bounds" `Quick test_rng_float_bounds;
    Alcotest.test_case "rng split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "rng chance extremes" `Quick test_rng_chance_extremes;
    Alcotest.test_case "rng exponential mean" `Quick test_rng_exponential_mean;
    Alcotest.test_case "rng gaussian moments" `Quick test_rng_gaussian_moments;
    Alcotest.test_case "rng poisson mean" `Quick test_rng_poisson_mean;
    Alcotest.test_case "rng poisson zero" `Quick test_rng_poisson_zero;
    Alcotest.test_case "rng shuffle permutation" `Quick test_rng_shuffle_permutation;
    Alcotest.test_case "rng sample w/o replacement" `Quick
      test_rng_sample_without_replacement;
    Alcotest.test_case "zipf sums to one" `Quick test_zipf_probabilities_sum;
    Alcotest.test_case "zipf monotone" `Quick test_zipf_monotone;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "zipf sample range" `Quick test_zipf_sample_range;
    Alcotest.test_case "zipf sample distribution" `Quick
      test_zipf_sample_distribution;
    Alcotest.test_case "zipf invalid n" `Quick test_zipf_invalid;
    Alcotest.test_case "ewma first observation" `Quick test_ewma_first_observation;
    Alcotest.test_case "ewma smoothing" `Quick test_ewma_smoothing;
    Alcotest.test_case "ewma converges" `Quick test_ewma_converges;
    Alcotest.test_case "ewma alpha validation" `Quick test_ewma_alpha_validation;
    Alcotest.test_case "units conversions" `Quick test_units_conversions;
    Alcotest.test_case "units pp_rate" `Quick test_units_pp_rate;
    Alcotest.test_case "units time of day" `Quick test_units_time_of_day;
    Alcotest.test_case "pool map order" `Quick test_pool_map_order;
    Alcotest.test_case "pool jobs=1 sequential" `Quick
      test_pool_jobs1_is_sequential;
    Alcotest.test_case "pool exception propagation" `Quick test_pool_exception;
    Alcotest.test_case "pool empty + validation" `Quick
      test_pool_empty_and_validation;
    Alcotest.test_case "pool persistent reuse" `Quick test_pool_persistent_reuse;
    Alcotest.test_case "pool map_lane" `Quick test_pool_map_lane;
    Alcotest.test_case "pool nested map no deadlock" `Quick
      test_pool_nested_map_no_deadlock;
    Alcotest.test_case "pool global reuse + resize" `Quick
      test_pool_global_reuse_and_resize;
    Alcotest.test_case "pool chunk_ranges" `Quick test_pool_chunk_ranges;
    QCheck_alcotest.to_alcotest qcheck_int_bounds;
    QCheck_alcotest.to_alcotest qcheck_pareto_min;
  ]
