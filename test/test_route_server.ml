(* ef_bgp: the IXP route server.

   Export policies here are built at the clause level on purpose: the
   route server is a consumer of the compiled representation. *)
[@@@alert "-deprecated"]

module Bgp = Ef_bgp
open Helpers

let member i asn = peer ~kind:Bgp.Peer.Public_peer ~asn i

let rs () =
  Bgp.Route_server.create ~asn:(Bgp.Asn.of_int 64600) ~router_id:(ip "10.9.9.9")

let announce_of ~path ~nh p =
  {
    Bgp.Msg.withdrawn = [];
    attrs = Some (attrs ~path ~next_hop:nh ());
    nlri = [ prefix p ];
  }

let test_reflects_to_others_not_self () =
  let server = rs () in
  ignore (Bgp.Route_server.add_member server (member 1 100));
  ignore (Bgp.Route_server.add_member server (member 2 200));
  ignore (Bgp.Route_server.add_member server (member 3 300));
  let exports =
    Bgp.Route_server.member_update server ~member_id:1
      (announce_of ~path:[ 100 ] ~nh:"172.16.0.1" "10.0.0.0/16")
  in
  let recipients =
    List.sort compare (List.map (fun e -> e.Bgp.Route_server.to_member) exports)
  in
  Alcotest.(check (list int)) "others only" [ 2; 3 ] recipients

let test_transparent_attributes () =
  let server = rs () in
  ignore (Bgp.Route_server.add_member server (member 1 100));
  ignore (Bgp.Route_server.add_member server (member 2 200));
  let exports =
    Bgp.Route_server.member_update server ~member_id:1
      (announce_of ~path:[ 100; 7 ] ~nh:"172.16.0.1" "10.0.0.0/16")
  in
  match exports with
  | [ e ] -> (
      match e.Bgp.Route_server.update.Bgp.Msg.attrs with
      | Some a ->
          (* no RS ASN on the path, next hop untouched *)
          Alcotest.(check bool) "rs asn absent" false
            (Bgp.As_path.mem (Bgp.Asn.of_int 64600) a.Bgp.Attrs.as_path);
          Alcotest.(check int) "path length" 2 (Bgp.As_path.length a.Bgp.Attrs.as_path);
          Alcotest.check ipv4_t "next hop" (ip "172.16.0.1") a.Bgp.Attrs.next_hop
      | None -> Alcotest.fail "no attrs")
  | l -> Alcotest.failf "expected one export, got %d" (List.length l)

let test_late_joiner_catches_up () =
  let server = rs () in
  ignore (Bgp.Route_server.add_member server (member 1 100));
  ignore (Bgp.Route_server.add_member server (member 2 200));
  ignore
    (Bgp.Route_server.member_update server ~member_id:1
       (announce_of ~path:[ 100 ] ~nh:"172.16.0.1" "10.0.0.0/16"));
  ignore
    (Bgp.Route_server.member_update server ~member_id:2
       (announce_of ~path:[ 200 ] ~nh:"172.16.0.2" "10.1.0.0/16"));
  let catchup = Bgp.Route_server.add_member server (member 3 300) in
  Alcotest.(check int) "both routes delivered" 2 (List.length catchup);
  List.iter
    (fun e -> Alcotest.(check int) "addressed to 3" 3 e.Bgp.Route_server.to_member)
    catchup

let test_best_switch_exports_replacement () =
  let server = rs () in
  ignore (Bgp.Route_server.add_member server (member 1 100));
  ignore (Bgp.Route_server.add_member server (member 2 200));
  ignore (Bgp.Route_server.add_member server (member 3 300));
  (* member 1's long path first, then member 2 announces a shorter one *)
  ignore
    (Bgp.Route_server.member_update server ~member_id:1
       (announce_of ~path:[ 100; 7; 8 ] ~nh:"172.16.0.1" "10.0.0.0/16"));
  let exports =
    Bgp.Route_server.member_update server ~member_id:2
      (announce_of ~path:[ 200 ] ~nh:"172.16.0.2" "10.0.0.0/16")
  in
  (* members 1 and 3 hear the new best; member 2 does not *)
  let recipients =
    List.sort compare (List.map (fun e -> e.Bgp.Route_server.to_member) exports)
  in
  Alcotest.(check (list int)) "1 and 3" [ 1; 3 ] recipients;
  match Bgp.Route_server.best server (prefix "10.0.0.0/16") with
  | Some r -> Alcotest.(check int) "member 2 is best" 2 (Bgp.Route.peer_id r)
  | None -> Alcotest.fail "no best"

let test_withdraw_exports_withdrawal_or_failover () =
  let server = rs () in
  ignore (Bgp.Route_server.add_member server (member 1 100));
  ignore (Bgp.Route_server.add_member server (member 2 200));
  ignore (Bgp.Route_server.add_member server (member 3 300));
  ignore
    (Bgp.Route_server.member_update server ~member_id:1
       (announce_of ~path:[ 100 ] ~nh:"172.16.0.1" "10.0.0.0/16"));
  ignore
    (Bgp.Route_server.member_update server ~member_id:2
       (announce_of ~path:[ 200; 7 ] ~nh:"172.16.0.2" "10.0.0.0/16"));
  (* member 1 (current best) withdraws: member 2's route takes over and is
     announced to 1 and 3; member 2 itself must not hear its own route *)
  let exports =
    Bgp.Route_server.member_update server ~member_id:1
      { Bgp.Msg.withdrawn = [ prefix "10.0.0.0/16" ]; attrs = None; nlri = [] }
  in
  let recipients =
    List.sort compare (List.map (fun e -> e.Bgp.Route_server.to_member) exports)
  in
  Alcotest.(check (list int)) "1 and 3 hear failover" [ 1; 3 ] recipients;
  List.iter
    (fun e ->
      Alcotest.(check int) "announcement, not withdrawal" 1
        (List.length e.Bgp.Route_server.update.Bgp.Msg.nlri))
    exports

let test_last_route_withdraw_is_withdrawal () =
  let server = rs () in
  ignore (Bgp.Route_server.add_member server (member 1 100));
  ignore (Bgp.Route_server.add_member server (member 2 200));
  ignore
    (Bgp.Route_server.member_update server ~member_id:1
       (announce_of ~path:[ 100 ] ~nh:"172.16.0.1" "10.0.0.0/16"));
  let exports =
    Bgp.Route_server.member_update server ~member_id:1
      { Bgp.Msg.withdrawn = [ prefix "10.0.0.0/16" ]; attrs = None; nlri = [] }
  in
  match exports with
  | [ e ] ->
      Alcotest.(check int) "to member 2" 2 e.Bgp.Route_server.to_member;
      Alcotest.(check int) "is withdrawal" 1
        (List.length e.Bgp.Route_server.update.Bgp.Msg.withdrawn)
  | l -> Alcotest.failf "expected one export, got %d" (List.length l)

let test_drop_member_flushes_and_exports () =
  let server = rs () in
  ignore (Bgp.Route_server.add_member server (member 1 100));
  ignore (Bgp.Route_server.add_member server (member 2 200));
  ignore
    (Bgp.Route_server.member_update server ~member_id:1
       (announce_of ~path:[ 100 ] ~nh:"172.16.0.1" "10.0.0.0/16"));
  let exports = Bgp.Route_server.drop_member server ~member_id:1 in
  Alcotest.(check int) "prefix gone" 0 (Bgp.Route_server.prefix_count server);
  Alcotest.(check (list int)) "member 2 told" [ 2 ]
    (List.map (fun e -> e.Bgp.Route_server.to_member) exports);
  Alcotest.(check (list int)) "members updated" [ 2 ]
    (Bgp.Route_server.member_ids server)

let test_export_policy_filters () =
  let server = rs () in
  ignore (Bgp.Route_server.add_member server (member 1 100));
  (* member 2 refuses routes originated by AS 100 *)
  let no_as100 =
    Bgp.Policy.make ~default:Bgp.Policy.Accept
      [
        {
          Bgp.Policy.clause_name = "no-as100";
          guard = Bgp.Policy.Match_path_contains (Bgp.Asn.of_int 100);
          actions = [];
          verdict = Bgp.Policy.Reject;
        };
      ]
  in
  ignore (Bgp.Route_server.add_member ~export_policy:no_as100 server (member 2 200));
  let exports =
    Bgp.Route_server.member_update server ~member_id:1
      (announce_of ~path:[ 100 ] ~nh:"172.16.0.1" "10.0.0.0/16")
  in
  Alcotest.(check int) "filtered" 0 (List.length exports)

let suite =
  [
    Alcotest.test_case "reflects to others" `Quick test_reflects_to_others_not_self;
    Alcotest.test_case "transparent attributes" `Quick test_transparent_attributes;
    Alcotest.test_case "late joiner catch-up" `Quick test_late_joiner_catches_up;
    Alcotest.test_case "best switch" `Quick test_best_switch_exports_replacement;
    Alcotest.test_case "withdraw failover" `Quick
      test_withdraw_exports_withdrawal_or_failover;
    Alcotest.test_case "last withdraw" `Quick test_last_route_withdraw_is_withdrawal;
    Alcotest.test_case "drop member" `Quick test_drop_member_flushes_and_exports;
    Alcotest.test_case "export policy" `Quick test_export_policy_filters;
  ]
