(* Ef_fault: plan DSL, injector determinism, retry backoff, and the
   engine-level guarantees the fault subsystem exists to provide —
   deterministic journals and fail-static degradation under feed loss. *)

module Bgp = Ef_bgp
module N = Ef_netsim
module C = Ef_collector
module Ef = Edge_fabric
module S = Ef_sim
module F = Ef_fault
module Obs = Ef_obs

let chaos () =
  match N.Scenario.find_fault_plan "chaos" with
  | Some p -> p
  | None -> Alcotest.fail "canned chaos plan missing"

(* --- plan DSL ----------------------------------------------------------- *)

let test_plan_json_roundtrip () =
  List.iter
    (fun (name, plan) ->
      match F.Plan.of_string (F.Plan.to_string plan) with
      | Error msg -> Alcotest.failf "%s: reparse failed: %s" name msg
      | Ok plan' ->
          Alcotest.(check bool)
            (name ^ " roundtrips") true
            (F.Plan.equal plan plan'))
    N.Scenario.fault_plans

let test_plan_file_roundtrip () =
  let path = Filename.temp_file "ef_fault_plan" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      F.Plan.save path (chaos ());
      match F.Plan.load path with
      | Error msg -> Alcotest.failf "load failed: %s" msg
      | Ok plan ->
          Alcotest.(check bool) "file roundtrip" true (F.Plan.equal (chaos ()) plan))

let test_plan_validate_rejects () =
  let bad =
    [
      ( "empty window",
        F.Plan.make [ F.Plan.Bmp_stall { from_s = 100; until_s = 100 } ] );
      ( "negative factor",
        F.Plan.make
          [
            F.Plan.Capacity_degradation
              { iface_id = 0; from_s = 0; until_s = 10; factor = -0.5 };
          ] );
      ( "drop fraction above 1",
        F.Plan.make
          [
            F.Plan.Sflow_loss { from_s = 0; until_s = 10; drop_fraction = 1.5 };
          ] );
      ( "zero delay",
        F.Plan.make
          [ F.Plan.Cycle_delay { from_s = 0; until_s = 10; delay_s = 0 } ] );
    ]
  in
  List.iter
    (fun (name, plan) ->
      match F.Plan.validate plan with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "validate accepted %s" name)
    bad;
  (* and the invalid plan must not parse back in either *)
  let plan = F.Plan.make [ F.Plan.Bmp_stall { from_s = 9; until_s = 3 } ] in
  match F.Plan.of_string (F.Plan.to_string plan) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "of_string accepted an invalid plan"

(* --- injector ------------------------------------------------------------ *)

let flap_plan ~seed =
  F.Plan.make ~seed
    [
      F.Plan.Link_flap
        { iface_id = 0; from_s = 0; until_s = 2000; period_s = 120; down_s = 40 };
    ]

let test_injector_deterministic () =
  let i1 = F.Injector.create (flap_plan ~seed:5) in
  let i2 = F.Injector.create (flap_plan ~seed:5) in
  Alcotest.(check (list (pair int int)))
    "same seed, same windows"
    (F.Injector.flap_windows i1 ~iface_id:0)
    (F.Injector.flap_windows i2 ~iface_id:0);
  for time_s = 0 to 2000 do
    if
      F.Injector.link_down i1 ~iface_id:0 ~time_s
      <> F.Injector.link_down i2 ~iface_id:0 ~time_s
    then Alcotest.failf "link_down diverges at t=%d" time_s
  done

let test_injector_seed_sensitivity () =
  let i1 = F.Injector.create (flap_plan ~seed:5) in
  let i2 = F.Injector.create (flap_plan ~seed:6) in
  Alcotest.(check bool)
    "different seed jitters differently" false
    (F.Injector.flap_windows i1 ~iface_id:0
    = F.Injector.flap_windows i2 ~iface_id:0)

let test_injector_windows_within_plan () =
  let inj = F.Injector.create (flap_plan ~seed:9) in
  let windows = F.Injector.flap_windows inj ~iface_id:0 in
  Alcotest.(check bool) "some outages expanded" true (windows <> []);
  List.iter
    (fun (a, b) ->
      if a >= b || a < 0 || b > 2000 then
        Alcotest.failf "window [%d,%d) escapes the fault window" a b)
    windows;
  (* outside every window the link is up; inside it is down *)
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool) "down at onset" true
        (F.Injector.link_down inj ~iface_id:0 ~time_s:a);
      Alcotest.(check bool) "up at close" false
        (F.Injector.link_down inj ~iface_id:0 ~time_s:b))
    windows

let test_injector_queries () =
  let inj = F.Injector.create (chaos ()) in
  (* chaos: capacity degradation on iface 1 over [180,420) at 0.5 *)
  Alcotest.(check (float 1e-9)) "degraded factor" 0.5
    (F.Injector.capacity_factor inj ~iface_id:1 ~time_s:200);
  Alcotest.(check (float 1e-9)) "healthy before" 1.0
    (F.Injector.capacity_factor inj ~iface_id:1 ~time_s:100);
  Alcotest.(check bool) "bmp stalled inside" true
    (F.Injector.bmp_stalled inj ~time_s:300);
  Alcotest.(check bool) "bmp healthy outside" false
    (F.Injector.bmp_stalled inj ~time_s:100);
  Alcotest.(check (float 1e-9)) "sflow loss inside" 0.5
    (F.Injector.sflow_drop_fraction inj ~time_s:150);
  Alcotest.(check int) "cycle delay inside" 20
    (F.Injector.cycle_delay_s inj ~time_s:350);
  let labels = F.Injector.active_labels inj ~time_s:300 in
  Alcotest.(check bool) "labels include bmp_stall" true
    (List.mem "bmp_stall" labels)

(* --- retry state machine ------------------------------------------------- *)

let test_retry_backoff () =
  let config = { C.Retry.base_delay_s = 30; max_delay_s = 480; max_attempts = 8 } in
  let r = C.Retry.create ~config () in
  Alcotest.(check bool) "starts healthy" true (C.Retry.healthy r);
  C.Retry.on_failure r ~time_s:0;
  (match C.Retry.state r with
  | C.Retry.Backing_off { attempt = 1; retry_at_s = 30 } -> ()
  | _ -> Alcotest.failf "unexpected state: %s" (Format.asprintf "%a" C.Retry.pp r));
  Alcotest.(check bool) "too early" false (C.Retry.should_retry r ~time_s:10);
  Alcotest.(check bool) "deadline passed" true (C.Retry.should_retry r ~time_s:31);
  (* delays double up to the cap *)
  C.Retry.on_failure r ~time_s:31;
  (match C.Retry.state r with
  | C.Retry.Backing_off { attempt = 2; retry_at_s } ->
      Alcotest.(check int) "doubled" (31 + 60) retry_at_s
  | _ -> Alcotest.fail "expected backing off");
  C.Retry.on_success r;
  Alcotest.(check bool) "recovered" true (C.Retry.healthy r);
  Alcotest.(check int) "reconnect counted" 1 (C.Retry.reconnects r)

let test_retry_gives_up () =
  let config = { C.Retry.base_delay_s = 1; max_delay_s = 8; max_attempts = 3 } in
  let r = C.Retry.create ~config () in
  for i = 0 to 3 do
    C.Retry.on_failure r ~time_s:(i * 100)
  done;
  Alcotest.(check bool) "gave up" true (C.Retry.state r = C.Retry.Gave_up);
  Alcotest.(check bool) "no more retries" false
    (C.Retry.should_retry r ~time_s:100_000);
  Alcotest.(check int) "failures counted" 4 (C.Retry.failures r)

let test_retry_counter_frozen_after_give_up () =
  (* once Gave_up, further failure reports are no-ops: the counter (and
     pp) keep showing what it took to give up instead of drifting *)
  let config = { C.Retry.base_delay_s = 1; max_delay_s = 8; max_attempts = 2 } in
  let r = C.Retry.create ~config () in
  for i = 0 to 2 do
    C.Retry.on_failure r ~time_s:(i * 100)
  done;
  Alcotest.(check bool) "gave up" true (C.Retry.state r = C.Retry.Gave_up);
  let at_give_up = C.Retry.failures r in
  let pp_at_give_up = Format.asprintf "%a" C.Retry.pp r in
  C.Retry.on_failure r ~time_s:1_000;
  C.Retry.on_failure r ~time_s:2_000;
  Alcotest.(check int) "counter frozen" at_give_up (C.Retry.failures r);
  Alcotest.(check string) "pp stable" pp_at_give_up
    (Format.asprintf "%a" C.Retry.pp r);
  Alcotest.(check bool) "still gave up" true
    (C.Retry.state r = C.Retry.Gave_up);
  (* recovery still works from Gave_up *)
  C.Retry.on_success r;
  Alcotest.(check bool) "healthy again" true (C.Retry.healthy r);
  Alcotest.(check int) "reconnect counted" 1 (C.Retry.reconnects r)

(* --- engine: journal determinism ----------------------------------------- *)

(* journals compare on event name + fields only: ev_time_ns is a
   monotonic wall-clock stamp, while every field carries simulated time *)
let journal_of_run ~seed plan =
  let reg = Obs.Registry.create () in
  let sink, drain = Obs.Registry.memory_sink () in
  Obs.Registry.add_sink reg sink;
  let config =
    S.Engine.make_config ~cycle_s:30 ~duration_s:600 ~seed ()
    |> S.Engine.with_faults plan
  in
  let engine = S.Engine.create ~config ~obs:reg N.Scenario.tiny in
  ignore (S.Engine.run engine);
  ( String.concat "\n"
      (List.map
         (fun ev ->
           ev.Obs.Registry.Event.ev_name ^ " "
           ^ Obs.Json.to_string (Obs.Json.Obj ev.Obs.Registry.Event.ev_fields))
         (drain ())),
    engine )

let test_journal_deterministic () =
  let j1, _ = journal_of_run ~seed:3 (chaos ()) in
  let j2, _ = journal_of_run ~seed:3 (chaos ()) in
  Alcotest.(check bool) "journals non-empty" true (String.length j1 > 0);
  Alcotest.(check string) "same seed+plan, identical journal" j1 j2

let test_journal_seed_sensitive () =
  let j1, _ = journal_of_run ~seed:3 (chaos ()) in
  let j2, _ = journal_of_run ~seed:4 (chaos ()) in
  Alcotest.(check bool) "different seed, different journal" false (j1 = j2)

(* --- engine: graceful degradation under a BMP stall ---------------------- *)

let test_bmp_stall_degrades_and_recovers () =
  let plan =
    F.Plan.make ~seed:2 [ F.Plan.Bmp_stall { from_s = 120; until_s = 360 } ]
  in
  let reg = Obs.Registry.create () in
  let config =
    S.Engine.make_config ~cycle_s:30 ~duration_s:600 ~seed:3
      ~controller_config:(Ef.Config.make ~max_snapshot_age_s:60 ())
      ()
    |> S.Engine.with_faults plan
  in
  let engine = S.Engine.create ~config ~obs:reg N.Scenario.tiny in
  let overrides_during_stall = ref [] in
  for _ = 1 to 20 do
    let before = S.Engine.now_s engine in
    ignore (S.Engine.step engine);
    match (S.Engine.last_state engine, S.Engine.controller engine) with
    | Some st, Some _ when before >= 210 && before < 360 ->
        (* well into the stall: snapshot age exceeds 60s, controller
           must be holding, not recomputing *)
        overrides_during_stall :=
          st.S.Engine.active_overrides :: !overrides_during_stall
    | _ -> ()
  done;
  let count name =
    int_of_float (Obs.Counter.value (Obs.Registry.counter reg name))
  in
  Alcotest.(check bool) "degraded cycles recorded" true
    (count "controller.degraded.cycles" > 0);
  Alcotest.(check bool) "stale reason recorded" true
    (count "controller.degraded.stale" > 0);
  Alcotest.(check bool) "session failures recorded" true
    (count "collector.session.failures" > 0);
  Alcotest.(check bool) "session recovered" true
    (count "collector.session.reconnects" > 0);
  (* fail-static: the held override set does not change across the
     degraded cycles *)
  (match !overrides_during_stall with
  | [] -> Alcotest.fail "stall window produced no observed cycles"
  | first :: rest ->
      let key set =
        List.sort compare
          (List.map
             (fun (o : Ef.Override.t) -> Bgp.Prefix.to_string o.Ef.Override.prefix)
             set)
      in
      List.iter
        (fun set ->
          Alcotest.(check (list string)) "overrides held" (key first) (key set))
        rest);
  Alcotest.(check bool) "bmp session healthy after window" true
    (C.Retry.healthy (S.Engine.bmp_session engine))

let test_cycle_skip_holds_overrides () =
  let plan =
    F.Plan.make ~seed:2 [ F.Plan.Cycle_skip { from_s = 90; until_s = 240 } ]
  in
  let config =
    S.Engine.make_config ~cycle_s:30 ~duration_s:300 ~seed:3 ()
    |> S.Engine.with_faults plan
  in
  let engine = S.Engine.create ~config N.Scenario.tiny in
  ignore (S.Engine.run engine);
  Alcotest.(check int) "five cycles skipped" 5 (S.Engine.cycles_skipped engine)

let suite =
  [
    Alcotest.test_case "plan json roundtrip" `Quick test_plan_json_roundtrip;
    Alcotest.test_case "plan file roundtrip" `Quick test_plan_file_roundtrip;
    Alcotest.test_case "plan validate rejects" `Quick test_plan_validate_rejects;
    Alcotest.test_case "injector deterministic" `Quick test_injector_deterministic;
    Alcotest.test_case "injector seed sensitivity" `Quick
      test_injector_seed_sensitivity;
    Alcotest.test_case "injector windows" `Quick test_injector_windows_within_plan;
    Alcotest.test_case "injector queries" `Quick test_injector_queries;
    Alcotest.test_case "retry backoff" `Quick test_retry_backoff;
    Alcotest.test_case "retry gives up" `Quick test_retry_gives_up;
    Alcotest.test_case "retry counter frozen after give-up" `Quick
      test_retry_counter_frozen_after_give_up;
    Alcotest.test_case "journal deterministic" `Quick test_journal_deterministic;
    Alcotest.test_case "journal seed sensitive" `Quick test_journal_seed_sensitive;
    Alcotest.test_case "bmp stall degrades+recovers" `Quick
      test_bmp_stall_degrades_and_recovers;
    Alcotest.test_case "cycle skip holds overrides" `Quick
      test_cycle_skip_holds_overrides;
  ]
