(* Ef_policy: the compositional policy DSL.

   The central property: the direct interpreter and the route-map
   compiler are the same denotation — byte-identical route decisions on
   hundreds of seeded fuzz worlds, including [>>] sequencing (whose
   compilation goes through weakest-precondition guard rewriting).

   This file also references the deprecated legacy constructors on
   purpose: the DSL's [standard_import] must stay pinned to exactly the
   clauses of the legacy [default_ingest] shim. *)
[@@@alert "-deprecated"]

module Bgp = Ef_bgp
module Pol = Ef_policy
module Rng = Ef_util.Rng
open Helpers

let self_asn = Bgp.Asn.of_int 64500

(* --- fuzz material --------------------------------------------------- *)

let community_pool =
  [|
    Bgp.Community.make 65000 10;
    Bgp.Community.make 65000 13;
    Bgp.Community.make 65010 80;
    Bgp.Community.make 65010 20;
    Bgp.Community.make 64999 1;
  |]

let asn_pool = [| 100; 200; 3356; 64500 |]

let prefix_pool =
  [|
    "10.1.0.0/16";
    "10.2.3.0/24";
    "192.168.7.0/24";
    "172.16.0.0/12";
    "10.9.8.0/25";
    "0.0.0.0/0";
  |]

let regions =
  [
    ("na-east", [ prefix "10.0.0.0/8" ]);
    ("europe", [ prefix "192.168.0.0/16" ]);
  ]

let fuzz_env = Pol.env ~regions ~self_asn ()

let kinds =
  [| Bgp.Peer.Transit; Bgp.Peer.Private_peer; Bgp.Peer.Public_peer;
     Bgp.Peer.Route_server |]

let gen_route rng =
  let communities =
    List.filter (fun _ -> Rng.chance rng 0.3) (Array.to_list community_pool)
  in
  let path =
    List.filter_map
      (fun _ -> if Rng.chance rng 0.6 then Some (Rng.pick rng asn_pool) else None)
      [ (); (); () ]
  in
  let path = if path = [] then [ 7 ] else path in
  route
    ~prefix_str:(Rng.pick rng prefix_pool)
    ~kind:(Rng.pick rng kinds) ~asn:(Rng.pick rng asn_pool)
    ~peer_id:(Rng.int_in rng 1 5)
    ~communities ~path ()

let gen_atom rng =
  match Rng.int rng 11 with
  | 0 -> Pol.any
  | 1 -> Pol.never
  | 2 ->
      Pol.prefix_in
        [ prefix (Rng.pick rng prefix_pool); prefix "10.0.0.0/8" ]
  | 3 -> Pol.prefix_exact (prefix (Rng.pick rng prefix_pool))
  | 4 -> Pol.prefix_len_at_least (Rng.int_in rng 8 25)
  | 5 -> Pol.has_community (Rng.pick rng community_pool)
  | 6 -> Pol.peer_kind (Rng.pick rng kinds)
  | 7 -> Pol.peer_asn (Bgp.Asn.of_int (Rng.pick rng asn_pool))
  | 8 -> Pol.path_contains (Bgp.Asn.of_int (Rng.pick rng asn_pool))
  | 9 -> Pol.in_region (Rng.pick rng [| "na-east"; "europe"; "mars" |])
  | _ -> Pol.shared_port

let rec gen_pred rng depth =
  if depth = 0 then gen_atom rng
  else
    match Rng.int rng 6 with
    | 0 -> Pol.all_of [ gen_pred rng (depth - 1); gen_pred rng (depth - 1) ]
    | 1 -> Pol.any_of [ gen_pred rng (depth - 1); gen_pred rng (depth - 1) ]
    | 2 -> Pol.not_ (gen_pred rng (depth - 1))
    | _ -> gen_atom rng

let gen_action rng =
  match Rng.int rng 9 with
  | 0 -> Pol.Set_local_pref (Rng.int_in rng 0 999)
  | 1 -> Pol.Set_med (if Rng.bool rng then Some (Rng.int_in rng 0 500) else None)
  | 2 -> Pol.Add_community (Rng.pick rng community_pool)
  | 3 -> Pol.Remove_community (Rng.pick rng community_pool)
  | 4 -> Pol.Prepend (Bgp.Asn.of_int (Rng.pick rng asn_pool), Rng.int_in rng 0 2)
  | 5 -> Pol.Set_overload_threshold (0.5 +. Rng.float rng 0.45)
  | 6 -> Pol.Set_detour_budget (Rng.float rng 0.9)
  | 7 -> Pol.Set_max_overrides (Rng.int_in rng 0 500)
  | _ -> Pol.Set_min_improvement_ms (Rng.float rng 50.0)

let gen_rule rng counter =
  incr counter;
  let verdict = if Rng.chance rng 0.25 then Pol.Reject else Pol.Accept in
  let n_actions = if verdict = Pol.Reject then 0 else Rng.int rng 4 in
  Pol.rule ~verdict
    ~name:(Printf.sprintf "r%d" !counter)
    (gen_pred rng 2)
    (List.init n_actions (fun _ -> gen_action rng))

let rec gen_policy rng counter depth =
  if depth = 0 then gen_rule rng counter
  else
    match Rng.int rng 4 with
    | 0 ->
        Pol.( <+> )
          (gen_policy rng counter (depth - 1))
          (gen_policy rng counter (depth - 1))
    | 1 ->
        Pol.( >> )
          (gen_policy rng counter (depth - 1))
          (gen_policy rng counter (depth - 1))
    | _ -> gen_rule rng counter

(* --- the central property: compiled = interpreted --------------------- *)

let n_worlds = 250

let test_compiled_matches_interpreted () =
  for seed = 1 to n_worlds do
    let rng = Rng.create (seed * 7001) in
    let counter = ref 0 in
    let policy = gen_policy rng counter 3 in
    let default = if seed mod 2 = 0 then Pol.Accept else Pol.Reject in
    let map = Pol.Compile.route_map ~default fuzz_env policy in
    for i = 1 to 25 do
      let r = gen_route rng in
      let interpreted = Pol.apply ~default fuzz_env policy r in
      let compiled = Bgp.Policy.apply map r in
      Alcotest.check
        (Alcotest.option route_t)
        (Printf.sprintf "world %d route %d" seed i)
        interpreted compiled
    done
  done

(* the allocator side has two paths too: the per-iface walk
   (iface_threshold) and the extracted parameter block (alloc_params) —
   they must tell the same story for every interface *)
let gen_iface rng id =
  {
    Pol.if_id = id;
    if_name = Printf.sprintf "if%d" id;
    if_shared = Rng.chance rng 0.3;
    if_region = Rng.pick rng [| "na-east"; "europe" |];
    if_peer_kinds =
      List.sort_uniq compare
        (List.filter_map
           (fun _ -> if Rng.chance rng 0.5 then Some (Rng.pick rng kinds) else None)
           [ (); () ]);
    if_peer_asns = [ Bgp.Asn.of_int (Rng.pick rng asn_pool) ];
  }

let test_alloc_params_match_iface_walk () =
  for seed = 1 to n_worlds do
    let rng = Rng.create (seed * 9013) in
    let ifaces = List.init 4 (fun id -> gen_iface rng id) in
    let env = Pol.env ~regions ~ifaces ~self_asn () in
    let counter = ref 0 in
    let policy = gen_policy rng counter 3 in
    let ap = Pol.alloc_params env policy in
    List.iter
      (fun i ->
        let direct = Pol.iface_threshold env policy i in
        let via_params =
          match List.assoc_opt i.Pol.if_id ap.Pol.ap_iface_thresholds with
          | Some v -> Some v
          | None -> (
              (* not listed: either the global value applies or nothing *)
              match direct with
              | Some v when ap.Pol.ap_overload_threshold = Some v -> direct
              | _ -> None)
        in
        Alcotest.(check (option (float 0.0)))
          (Printf.sprintf "world %d iface %d" seed i.Pol.if_id)
          direct via_params)
      ifaces
  done

(* --- sequencing / weakest-precondition hand cases --------------------- *)

let test_seq_community_wp () =
  let open Pol in
  let c = Bgp.Community.make 64999 1 in
  (* first stage tags everything it accepts; second stage matches the tag *)
  let p =
    rule ~name:"tag" (peer_kind Bgp.Peer.Transit) [ Add_community c ]
    >> rule ~name:"on-tag" (has_community c) [ Set_local_pref 42 ]
  in
  let map = Compile.route_map ~default:Reject fuzz_env p in
  let check r = (apply ~default:Reject fuzz_env p r, Bgp.Policy.apply map r) in
  (* a transit route without the tag still hits the second stage, because
     stage one added the tag before stage two looked *)
  let transit = route ~kind:Bgp.Peer.Transit () in
  let interp, compiled = check transit in
  Alcotest.check (Alcotest.option route_t) "transit agrees" interp compiled;
  (match interp with
  | None -> Alcotest.fail "transit route rejected"
  | Some r ->
      Alcotest.(check int) "lp set by stage 2" 42 (Bgp.Route.local_pref r);
      Alcotest.(check bool) "tagged" true (Bgp.Route.has_community c r));
  (* a private route that already carries the tag reaches stage two
     unmodified by stage one *)
  let private_tagged =
    route ~kind:Bgp.Peer.Private_peer ~communities:[ c ] ()
  in
  let interp, compiled = check private_tagged in
  Alcotest.check (Alcotest.option route_t) "pre-tagged agrees" interp compiled;
  (match interp with
  | None -> Alcotest.fail "pre-tagged route rejected"
  | Some r -> Alcotest.(check int) "lp set" 42 (Bgp.Route.local_pref r));
  (* an untagged private route matches neither stage: default applies *)
  let private_plain = route ~kind:Bgp.Peer.Private_peer () in
  let interp, compiled = check private_plain in
  Alcotest.check (Alcotest.option route_t) "unmatched agrees" interp compiled;
  Alcotest.(check bool) "unmatched rejected" true (interp = None)

let test_seq_remove_community_wp () =
  let open Pol in
  let c = Bgp.Community.make 64999 1 in
  let p =
    rule ~name:"strip" any [ Remove_community c ]
    >> rule ~name:"on-tag" (has_community c) [ Set_local_pref 42 ]
  in
  let map = Compile.route_map ~default:Accept fuzz_env p in
  (* the tag is stripped before stage two looks, so lp is never set *)
  let r = route ~communities:[ c ] () in
  let interp = apply ~default:Accept fuzz_env p r in
  let compiled = Bgp.Policy.apply map r in
  Alcotest.check (Alcotest.option route_t) "agree" interp compiled;
  match interp with
  | None -> Alcotest.fail "rejected"
  | Some r' ->
      Alcotest.(check bool) "tag stripped" false (Bgp.Route.has_community c r');
      Alcotest.(check int) "lp untouched" (Bgp.Route.local_pref r)
        (Bgp.Route.local_pref r')

let test_seq_reject_is_final () =
  let open Pol in
  let p =
    deny ~name:"no-transit" (peer_kind Bgp.Peer.Transit)
    >> rule ~name:"accept-all" any [ Set_local_pref 7 ]
  in
  let map = Compile.route_map ~default:Reject fuzz_env p in
  let transit = route ~kind:Bgp.Peer.Transit () in
  Alcotest.(check bool) "interp rejects" true
    (apply ~default:Reject fuzz_env p transit = None);
  Alcotest.(check bool) "compiled rejects" true
    (Bgp.Policy.apply map transit = None)

(* --- first-match and scope semantics ---------------------------------- *)

let test_union_first_match_wins () =
  let open Pol in
  let p =
    rule ~name:"first" (peer_kind Bgp.Peer.Transit) [ Set_local_pref 111 ]
    <+> rule ~name:"second" (peer_kind Bgp.Peer.Transit) [ Set_local_pref 222 ]
  in
  match apply ~default:Reject fuzz_env p (route ~kind:Bgp.Peer.Transit ()) with
  | None -> Alcotest.fail "rejected"
  | Some r -> Alcotest.(check int) "first wins" 111 (Bgp.Route.local_pref r)

let shared_iface =
  {
    Pol.if_id = 9;
    if_name = "ixp";
    if_shared = true;
    if_region = "europe";
    if_peer_kinds = [ Bgp.Peer.Public_peer; Bgp.Peer.Route_server ];
    if_peer_asns = [ Bgp.Asn.of_int 200 ];
  }

let pni_iface =
  {
    Pol.if_id = 3;
    if_name = "pni";
    if_shared = false;
    if_region = "europe";
    if_peer_kinds = [ Bgp.Peer.Private_peer ];
    if_peer_asns = [ Bgp.Asn.of_int 100 ];
  }

let iface_env =
  Pol.env ~regions ~ifaces:[ pni_iface; shared_iface ] ~self_asn ()

let test_iface_threshold_priority () =
  let open Pol in
  (* union: the left (higher-priority) rule's knob wins *)
  let u =
    rule ~name:"a" shared_port [ Set_overload_threshold 0.8 ]
    <+> rule ~name:"b" shared_port [ Set_overload_threshold 0.7 ]
  in
  Alcotest.(check (option (float 0.0)))
    "union left wins" (Some 0.8)
    (iface_threshold iface_env u shared_iface);
  (* seq: the right side runs later, so its knob wins *)
  let s =
    rule ~name:"a" shared_port [ Set_overload_threshold 0.8 ]
    >> rule ~name:"b" shared_port [ Set_overload_threshold 0.7 ]
  in
  Alcotest.(check (option (float 0.0)))
    "seq right wins" (Some 0.7)
    (iface_threshold iface_env s shared_iface);
  (* within a rule, the last action wins *)
  let last =
    rule ~name:"a" shared_port
      [ Set_overload_threshold 0.8; Set_overload_threshold 0.6 ]
  in
  Alcotest.(check (option (float 0.0)))
    "last action wins" (Some 0.6)
    (iface_threshold iface_env last shared_iface);
  (* the non-shared interface is untouched *)
  Alcotest.(check (option (float 0.0)))
    "pni untouched" None
    (iface_threshold iface_env u pni_iface)

let test_global_knobs_need_unconditional_rules () =
  let open Pol in
  (* a route-guarded rule must not leak its budget into the global scope *)
  let p = rule ~name:"g" (peer_kind Bgp.Peer.Transit) [ Set_detour_budget 0.1 ] in
  let ap = alloc_params iface_env p in
  Alcotest.(check (option (float 0.0))) "guarded: no global budget" None
    ap.ap_detour_budget;
  let p = p <+> params [ Set_detour_budget 0.25; Set_max_overrides 40 ] in
  let ap = alloc_params iface_env p in
  Alcotest.(check (option (float 0.0)))
    "params rule sets it" (Some 0.25) ap.ap_detour_budget;
  Alcotest.(check (option int)) "and the count" (Some 40) ap.ap_max_overrides

let test_remote_peering_alloc_side () =
  let ap =
    Pol.alloc_params iface_env
      Ef_netsim.Scenario.remote_peering_policy.Pol.program_policy
  in
  Alcotest.(check (list (pair int (float 0.0))))
    "ixp port tightened"
    [ (shared_iface.Pol.if_id, 0.85) ]
    ap.Pol.ap_iface_thresholds;
  Alcotest.(check (option (float 0.0)))
    "no global threshold" None ap.Pol.ap_overload_threshold;
  Alcotest.(check (option (float 0.0)))
    "detour budget" (Some 0.3) ap.Pol.ap_detour_budget

(* --- standard import = legacy shim ------------------------------------ *)

let test_standard_import_equals_default_ingest () =
  let compiled = Pol.standard_import_map ~self_asn in
  let legacy = Bgp.Policy.default_ingest ~self_asn in
  (* structurally identical clause lists (the printers render every
     clause, guard, action and the default verdict) *)
  Alcotest.(check string)
    "identical clauses"
    (Format.asprintf "%a" Bgp.Policy.pp legacy)
    (Format.asprintf "%a" Bgp.Policy.pp compiled);
  (* and behaviorally identical on fuzzed routes *)
  let rng = Rng.create 4242 in
  for i = 1 to 500 do
    let r = gen_route rng in
    Alcotest.check
      (Alcotest.option route_t)
      (Printf.sprintf "route %d" i)
      (Bgp.Policy.apply legacy r) (Bgp.Policy.apply compiled r)
  done

let test_local_pref_table_is_the_source () =
  List.iter
    (fun kind ->
      Alcotest.(check int)
        (Bgp.Peer.kind_to_string kind)
        (List.assoc kind Bgp.Policy.local_pref_table)
        (Bgp.Policy.local_pref_for_kind kind))
    Bgp.Peer.all_kinds;
  (* the paper's ordering: private > public > route-server > transit *)
  let lp k = Bgp.Policy.local_pref_for_kind k in
  Alcotest.(check bool) "ordering" true
    (lp Bgp.Peer.Private_peer > lp Bgp.Peer.Public_peer
    && lp Bgp.Peer.Public_peer > lp Bgp.Peer.Route_server
    && lp Bgp.Peer.Route_server > lp Bgp.Peer.Transit)

(* --- validation -------------------------------------------------------- *)

let test_validate_rejects_bad_programs () =
  let open Pol in
  let bad p = Alcotest.(check bool) "rejected" true (Result.is_error (validate p)) in
  bad (params [ Set_overload_threshold 0.0 ]);
  bad (params [ Set_overload_threshold 1.5 ]);
  bad (params [ Set_detour_budget 1.2 ]);
  bad (params [ Set_max_overrides (-1) ]);
  bad (rule ~name:"" any []);
  bad (rule ~name:"p" any [ Prepend (self_asn, -1) ]);
  Alcotest.(check bool) "good program passes" true
    (Result.is_ok
       (validate
          Ef_netsim.Scenario.remote_peering_policy.Pol.program_policy))

(* --- codec ------------------------------------------------------------- *)

let test_codec_roundtrip_fuzzed () =
  for seed = 1 to n_worlds do
    let rng = Rng.create (seed * 3307) in
    let counter = ref 0 in
    (* valid knob values only: of_string re-validates *)
    let policy = gen_policy rng counter 3 in
    let prog =
      Pol.program
        ~default:(if seed mod 2 = 0 then Pol.Accept else Pol.Reject)
        ~name:(Printf.sprintf "fuzz-%d" seed)
        policy
    in
    match Pol.validate policy with
    | Error _ -> () (* generator stays in range; skip if not *)
    | Ok () -> (
        let s = Pol.Codec.to_string prog in
        match Pol.Codec.of_string s with
        | Error msg -> Alcotest.failf "world %d: %s" seed msg
        | Ok prog' ->
            Alcotest.(check bool)
              (Printf.sprintf "world %d roundtrips" seed)
              true
              (Pol.equal_program prog prog');
            (* canonical form: save(load(x)) = x *)
            Alcotest.(check string)
              (Printf.sprintf "world %d fixpoint" seed)
              s
              (Pol.Codec.to_string prog'))
  done

let test_codec_load_save_load_fixpoint () =
  List.iter
    (fun (name, prog) ->
      let file = Filename.temp_file ("efpol-" ^ name) ".json" in
      Fun.protect ~finally:(fun () -> Sys.remove file) @@ fun () ->
      Pol.Codec.save file prog;
      match Pol.Codec.load file with
      | Error msg -> Alcotest.failf "%s: %s" name msg
      | Ok prog' ->
          Alcotest.(check bool) (name ^ " equal") true
            (Pol.equal_program prog prog');
          Pol.Codec.save file prog';
          (match Pol.Codec.load file with
          | Error msg -> Alcotest.failf "%s (2nd): %s" name msg
          | Ok prog'' ->
              Alcotest.(check bool) (name ^ " fixpoint") true
                (Pol.equal_program prog' prog'')))
    Ef_netsim.Scenario.policies

let test_codec_rejects_garbage () =
  let bad s =
    Alcotest.(check bool) s true (Result.is_error (Pol.Codec.of_string s))
  in
  bad "not json";
  bad {|{"name":"x"}|};
  bad {|{"name":"x","default":"maybe","policy":{"op":"rule"}}|};
  bad
    {|{"name":"x","default":"accept","policy":{"op":"rule","name":"r","if":{"pred":"peer-kind","kind":"weird"},"then":[],"verdict":"accept"}}|};
  (* valid shape but out-of-range knob: validation runs on load *)
  bad
    {|{"name":"x","default":"accept","policy":{"op":"rule","name":"r","if":{"pred":"any"},"then":[{"act":"overload-threshold","value":2.5}],"verdict":"accept"}}|}

(* --- golden policy JSON ------------------------------------------------ *)

let golden_dir =
  lazy
    (List.find_opt
       (fun d -> Sys.file_exists d && Sys.is_directory d)
       [ "golden"; "test/golden" ])

let golden_path name =
  match Lazy.force golden_dir with
  | Some d -> Filename.concat d (Printf.sprintf "policy_%s.json" name)
  | None -> Alcotest.fail "no golden directory found (golden/ or test/golden/)"

let test_golden_policies () =
  List.iter
    (fun (name, prog) ->
      let path = golden_path name in
      let got = Pol.Codec.to_string prog ^ "\n" in
      if Sys.getenv_opt "GOLDEN_UPDATE" <> None then begin
        let oc = open_out path in
        output_string oc got;
        close_out oc
      end
      else if not (Sys.file_exists path) then
        Alcotest.failf
          "missing golden %s — run GOLDEN_UPDATE=1 dune exec test/main.exe -- \
           test policy"
          path
      else begin
        let ic = open_in path in
        let want = really_input_string ic (in_channel_length ic) in
        close_in ic;
        Alcotest.(check string) (name ^ " golden JSON") want got
      end)
    Ef_netsim.Scenario.policies

(* --- engine integration ------------------------------------------------ *)

let short config =
  config |> Ef_sim.Engine.with_duration_s 600 |> Ef_sim.Engine.with_cycle_s 60

let test_engine_applies_policy_knobs () =
  let engine =
    Ef_sim.Engine.create
      ~config:(short Ef_sim.Engine.default_config)
      Ef_netsim.Scenario.remote_ixp
  in
  let ctl = (Ef_sim.Engine.config engine).Ef_sim.Engine.controller_config in
  (* the shared IXP port got the tightened threshold; nothing else did *)
  (match ctl.Edge_fabric.Config.iface_thresholds with
  | [ (id, th) ] ->
      let world = Ef_sim.Engine.world engine in
      let iface =
        List.find
          (fun i -> Ef_netsim.Iface.id i = id)
          (Ef_netsim.Pop.interfaces world.Ef_netsim.Topo_gen.pop)
      in
      Alcotest.(check bool) "it is the shared port" true
        (Ef_netsim.Iface.shared iface);
      check_float "threshold" 0.85 th
  | l -> Alcotest.failf "expected one per-iface threshold, got %d" (List.length l));
  check_float "global untouched" 0.95 ctl.Edge_fabric.Config.overload_threshold;
  match ctl.Edge_fabric.Config.guard.Edge_fabric.Guard.max_detour_fraction with
  | Some b -> check_float "detour budget" 0.3 b
  | None -> Alcotest.fail "detour budget not applied"

let test_engine_policy_config_equals_scenario_path () =
  (* running tiny under an explicit standard-import program is the same
     pipeline as the default path (which compiles the same program) *)
  let prog =
    Pol.program ~name:"std"
      (Pol.standard_import ~self_asn:Ef_netsim.Topo_gen.small_config.Ef_netsim.Topo_gen.self_asn)
  in
  let base = short Ef_sim.Engine.default_config in
  let with_policy = Ef_sim.Engine.with_policy prog base in
  let e1 = Ef_sim.Engine.create ~config:base Ef_netsim.Scenario.tiny in
  let e2 = Ef_sim.Engine.create ~config:with_policy Ef_netsim.Scenario.tiny in
  let m1 = Ef_sim.Engine.run e1 and m2 = Ef_sim.Engine.run e2 in
  Alcotest.(check bool) "identical metrics rows" true
    (Ef_sim.Metrics.rows m1 = Ef_sim.Metrics.rows m2)

let test_community_led_world_honors_signals () =
  (* in the community-led world, some public-peer route carrying the
     prefer signal ends up with LOCAL_PREF above the private tier *)
  let world =
    Ef_netsim.Topo_gen.generate Ef_netsim.Scenario.community_led.Ef_netsim.Scenario.topo
  in
  let rib = Ef_netsim.Pop.rib world.Ef_netsim.Topo_gen.pop in
  let preferred =
    List.exists
      (fun prefix ->
        List.exists
          (fun r ->
            Bgp.Route.has_community Ef_netsim.Topo_gen.signal_prefer r
            && Bgp.Route.local_pref r
               > Bgp.Policy.local_pref_for_kind Bgp.Peer.Private_peer)
          (Bgp.Rib.candidates rib prefix))
      world.Ef_netsim.Topo_gen.all_prefixes
  in
  Alcotest.(check bool) "a prefer-tagged route outranks private" true preferred

let suite =
  [
    Alcotest.test_case "compiled = interpreted (250 worlds)" `Quick
      test_compiled_matches_interpreted;
    Alcotest.test_case "alloc params = iface walk (250 worlds)" `Quick
      test_alloc_params_match_iface_walk;
    Alcotest.test_case "seq: community wp" `Quick test_seq_community_wp;
    Alcotest.test_case "seq: remove-community wp" `Quick
      test_seq_remove_community_wp;
    Alcotest.test_case "seq: reject is final" `Quick test_seq_reject_is_final;
    Alcotest.test_case "union: first match wins" `Quick
      test_union_first_match_wins;
    Alcotest.test_case "iface threshold priority" `Quick
      test_iface_threshold_priority;
    Alcotest.test_case "global knobs are unconditional" `Quick
      test_global_knobs_need_unconditional_rules;
    Alcotest.test_case "remote-peering alloc side" `Quick
      test_remote_peering_alloc_side;
    Alcotest.test_case "standard import = default ingest" `Quick
      test_standard_import_equals_default_ingest;
    Alcotest.test_case "one local-pref table" `Quick
      test_local_pref_table_is_the_source;
    Alcotest.test_case "validate rejects bad programs" `Quick
      test_validate_rejects_bad_programs;
    Alcotest.test_case "codec roundtrip (250 worlds)" `Quick
      test_codec_roundtrip_fuzzed;
    Alcotest.test_case "codec load-save-load fixpoint" `Quick
      test_codec_load_save_load_fixpoint;
    Alcotest.test_case "codec rejects garbage" `Quick test_codec_rejects_garbage;
    Alcotest.test_case "golden policy JSON" `Quick test_golden_policies;
    Alcotest.test_case "engine applies policy knobs" `Quick
      test_engine_applies_policy_knobs;
    Alcotest.test_case "engine --policy path = scenario path" `Quick
      test_engine_policy_config_equals_scenario_path;
    Alcotest.test_case "community-led honors signals" `Quick
      test_community_led_world_honors_signals;
  ]
