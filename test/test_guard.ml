(* edge_fabric: Guard (blast-radius budgets) *)

module Bgp = Ef_bgp
module N = Ef_netsim
module C = Ef_collector
module Ef = Edge_fabric
open Helpers

let fixture = Test_core.fixture
let snapshot = Test_core.snapshot
let pfx_a = Test_core.pfx_a
let pfx_b = Test_core.pfx_b
let pfx_c = Test_core.pfx_c

let route_via snap p kind =
  List.find (fun r -> Bgp.Route.peer_kind r = kind) (C.Snapshot.routes snap p)

let override_to fx snap ?(rate = 1e9) p kind =
  let target = route_via snap p kind in
  let to_iface =
    N.Iface.id (Option.get (C.Snapshot.iface_of_route snap target))
  in
  Ef.Override.make ~prefix:p ~target
    ~from_iface:(N.Iface.id fx.Test_core.iface_private)
    ~to_iface ~preference_level:1 ~rate_bps:rate

let test_audit_clean () =
  let fx = fixture () in
  let snap = snapshot fx [ (pfx_a, 2e9); (pfx_b, 1e9) ] in
  let o = override_to fx snap pfx_a Bgp.Peer.Transit in
  Alcotest.(check int) "no violations" 0
    (List.length (Ef.Guard.audit Ef.Guard.default snap [ o ]))

let test_audit_fraction () =
  let fx = fixture () in
  let snap = snapshot fx [ (pfx_a, 8e9); (pfx_b, 2e9) ] in
  let o = override_to fx snap pfx_a Bgp.Peer.Transit in
  let config =
    { Ef.Guard.default with Ef.Guard.max_detour_fraction = Some 0.5 }
  in
  (* pfx_a is 80% of traffic: over the 50% budget *)
  match Ef.Guard.audit config snap [ o ] with
  | [ Ef.Guard.Detour_fraction_exceeded { limit; actual } ] ->
      Helpers.check_float "limit" 0.5 limit;
      Helpers.check_float "actual" 0.8 actual
  | l -> Alcotest.failf "expected fraction violation, got %d" (List.length l)

let test_audit_count () =
  let fx = fixture () in
  let snap = snapshot fx [ (pfx_a, 1e9); (pfx_b, 1e9) ] in
  let os =
    [
      override_to fx snap pfx_a Bgp.Peer.Transit;
      override_to fx snap pfx_b Bgp.Peer.Transit;
    ]
  in
  let config = { Ef.Guard.default with Ef.Guard.max_overrides = Some 1 } in
  Alcotest.(check bool) "count violation" true
    (List.exists
       (function Ef.Guard.Override_count_exceeded _ -> true | _ -> false)
       (Ef.Guard.audit config snap os))

let test_audit_stale_target () =
  let fx = fixture () in
  let snap = snapshot fx [ (pfx_a, 1e9); (pfx_c, 1e9) ] in
  (* build an override whose target peer does not announce pfx_c (the
     private peer never announces it) *)
  let bogus_target = route_via snap pfx_a Bgp.Peer.Private_peer in
  let o =
    Ef.Override.make ~prefix:pfx_c ~target:bogus_target ~from_iface:2 ~to_iface:0
      ~preference_level:1 ~rate_bps:1e9
  in
  match Ef.Guard.audit Ef.Guard.default snap [ o ] with
  | [ Ef.Guard.Stale_target p ] -> Alcotest.check prefix_t "prefix" pfx_c p
  | l -> Alcotest.failf "expected stale target, got %d violations" (List.length l)

let test_audit_target_overloaded () =
  let fx = fixture () in
  (* detour 11G onto the 10G public port: target overload *)
  let snap = snapshot fx [ (pfx_a, 11e9) ] in
  let o = override_to fx snap ~rate:11e9 pfx_a Bgp.Peer.Public_peer in
  Alcotest.(check bool) "target overload reported" true
    (List.exists
       (function
         | Ef.Guard.Target_overloaded { utilization; _ } -> utilization > 1.0
         | _ -> false)
       (Ef.Guard.audit Ef.Guard.default snap [ o ]))

let test_clamp_sheds_smallest_first () =
  let fx = fixture () in
  let snap = snapshot fx [ (pfx_a, 6e9); (pfx_b, 2e9) ] in
  let big = override_to fx snap ~rate:6e9 pfx_a Bgp.Peer.Transit in
  let small = override_to fx snap ~rate:2e9 pfx_b Bgp.Peer.Transit in
  let config = { Ef.Guard.default with Ef.Guard.max_overrides = Some 1 } in
  let kept, dropped = Ef.Guard.clamp config snap [ big; small ] in
  Alcotest.(check int) "one kept" 1 (List.length kept);
  Alcotest.check prefix_t "kept the big one" pfx_a
    (List.hd kept).Ef.Override.prefix;
  Alcotest.(check int) "one dropped" 1 (List.length dropped);
  Alcotest.check prefix_t "dropped the small one" pfx_b
    (List.hd dropped).Ef.Override.prefix

let test_clamp_fraction_budget () =
  let fx = fixture () in
  let snap = snapshot fx [ (pfx_a, 6e9); (pfx_b, 4e9) ] in
  let oa = override_to fx snap ~rate:6e9 pfx_a Bgp.Peer.Transit in
  let ob = override_to fx snap ~rate:4e9 pfx_b Bgp.Peer.Transit in
  let config =
    { Ef.Guard.default with Ef.Guard.max_detour_fraction = Some 0.7 }
  in
  let kept, dropped = Ef.Guard.clamp config snap [ oa; ob ] in
  (* both would detour 100%; shedding the 4G one brings it to 60% <= 70% *)
  Alcotest.(check int) "kept one" 1 (List.length kept);
  Alcotest.check prefix_t "kept big" pfx_a (List.hd kept).Ef.Override.prefix;
  Alcotest.(check int) "dropped one" 1 (List.length dropped);
  Helpers.check_float_eps 1e-9 "within budget" 0.6
    (let total = C.Snapshot.total_rate_bps snap in
     List.fold_left (fun acc o -> acc +. o.Ef.Override.rate_bps) 0.0 kept /. total)

let test_clamp_always_drops_stale () =
  let fx = fixture () in
  let snap = snapshot fx [ (pfx_a, 1e9); (pfx_c, 1e9) ] in
  let good = override_to fx snap pfx_a Bgp.Peer.Transit in
  let bogus_target = route_via snap pfx_a Bgp.Peer.Private_peer in
  let stale =
    Ef.Override.make ~prefix:pfx_c ~target:bogus_target ~from_iface:2 ~to_iface:0
      ~preference_level:1 ~rate_bps:1e9
  in
  let kept, dropped = Ef.Guard.clamp Ef.Guard.default snap [ good; stale ] in
  Alcotest.(check int) "kept the live one" 1 (List.length kept);
  Alcotest.(check int) "dropped the stale one" 1 (List.length dropped);
  Alcotest.check prefix_t "stale prefix" pfx_c (List.hd dropped).Ef.Override.prefix

let test_clamp_noop_within_budget () =
  let fx = fixture () in
  (* plenty of background traffic: the two detours are 10% of the PoP *)
  let snap = snapshot fx [ (pfx_a, 1e9); (pfx_b, 1e9); (pfx_c, 18e9) ] in
  let os =
    [
      override_to fx snap pfx_a Bgp.Peer.Transit;
      override_to fx snap pfx_b Bgp.Peer.Transit;
    ]
  in
  let kept, dropped = Ef.Guard.clamp Ef.Guard.conservative snap os in
  Alcotest.(check int) "all kept" 2 (List.length kept);
  Alcotest.(check int) "none dropped" 0 (List.length dropped)

let test_controller_respects_guard () =
  let fx = fixture () in
  (* overload needing ~2.5G of relief, but a guard that allows none *)
  let config =
    Ef.Config.make
      ~guard:{ Ef.Guard.default with Ef.Guard.max_overrides = Some 0 }
      ()
  in
  let ctrl = Ef.Controller.create ~config ~name:"guarded" () in
  let snap = snapshot fx [ (pfx_a, 8e9); (pfx_b, 4e9) ] in
  let stats = Ef.Controller.cycle ctrl snap in
  Alcotest.(check bool) "proposals were made" true
    (stats.Ef.Controller.allocator.Ef.Allocator.overrides <> []);
  Alcotest.(check bool) "guard dropped them" true
    (stats.Ef.Controller.guard_dropped <> []);
  Alcotest.(check int) "nothing enforced" 0
    (List.length stats.Ef.Controller.reconcile.Ef.Hysteresis.active);
  (* the overload persists, visibly *)
  Alcotest.(check bool) "overload remains" true
    (stats.Ef.Controller.overloaded_after <> [])

let suite =
  [
    Alcotest.test_case "audit clean" `Quick test_audit_clean;
    Alcotest.test_case "audit fraction" `Quick test_audit_fraction;
    Alcotest.test_case "audit count" `Quick test_audit_count;
    Alcotest.test_case "audit stale target" `Quick test_audit_stale_target;
    Alcotest.test_case "audit target overload" `Quick test_audit_target_overloaded;
    Alcotest.test_case "clamp sheds smallest" `Quick test_clamp_sheds_smallest_first;
    Alcotest.test_case "clamp fraction budget" `Quick test_clamp_fraction_budget;
    Alcotest.test_case "clamp drops stale" `Quick test_clamp_always_drops_stale;
    Alcotest.test_case "clamp noop within budget" `Quick
      test_clamp_noop_within_budget;
    Alcotest.test_case "controller respects guard" `Quick
      test_controller_respects_guard;
  ]
