(* ef_bgp: prefix-set normalization and aggregation *)

module Bgp = Ef_bgp
open Helpers

let ps l = List.map prefix l
let check_set name expected actual =
  Alcotest.(check (list prefix_t)) name (ps expected) actual

let test_normalize_dedup () =
  check_set "dedup" [ "10.0.0.0/24" ]
    (Bgp.Prefix_set.normalize (ps [ "10.0.0.0/24"; "10.0.0.0/24" ]))

let test_normalize_covered () =
  check_set "covered dropped" [ "10.0.0.0/16" ]
    (Bgp.Prefix_set.normalize
       (ps [ "10.0.1.0/24"; "10.0.0.0/16"; "10.0.200.0/24" ]))

let test_normalize_disjoint_kept () =
  check_set "disjoint kept"
    [ "10.0.0.0/24"; "10.0.1.0/24"; "11.0.0.0/8" ]
    (Bgp.Prefix_set.normalize (ps [ "11.0.0.0/8"; "10.0.1.0/24"; "10.0.0.0/24" ]))

let test_aggregate_siblings () =
  check_set "pair merges" [ "10.0.0.0/23" ]
    (Bgp.Prefix_set.aggregate (ps [ "10.0.0.0/24"; "10.0.1.0/24" ]))

let test_aggregate_cascades () =
  (* four consecutive /24s collapse all the way to a /22 *)
  check_set "cascade" [ "10.0.0.0/22" ]
    (Bgp.Prefix_set.aggregate
       (ps [ "10.0.0.0/24"; "10.0.1.0/24"; "10.0.2.0/24"; "10.0.3.0/24" ]))

let test_aggregate_non_siblings_kept () =
  (* 10.0.1.0/24 and 10.0.2.0/24 are adjacent but NOT siblings: no merge *)
  check_set "non-siblings" [ "10.0.1.0/24"; "10.0.2.0/24" ]
    (Bgp.Prefix_set.aggregate (ps [ "10.0.1.0/24"; "10.0.2.0/24" ]))

let test_aggregate_hole_blocks_merge () =
  check_set "hole blocks"
    [ "10.0.0.0/24"; "10.0.2.0/23" ]
    (Bgp.Prefix_set.aggregate (ps [ "10.0.0.0/24"; "10.0.2.0/24"; "10.0.3.0/24" ]))

let test_same_space () =
  Alcotest.(check bool) "equivalent" true
    (Bgp.Prefix_set.same_space
       (ps [ "10.0.0.0/24"; "10.0.1.0/24" ])
       (ps [ "10.0.0.0/23" ]));
  Alcotest.(check bool) "different" false
    (Bgp.Prefix_set.same_space (ps [ "10.0.0.0/24" ]) (ps [ "10.0.1.0/24" ]))

(* property: aggregation preserves covered address space exactly *)
let gen_24s =
  QCheck.Gen.(
    map
      (fun idxs ->
        List.map
          (fun i -> Bgp.Prefix.make (Bgp.Ipv4.of_octets 10 0 (i land 0xFF) 0) 24)
          idxs)
      (list_size (int_range 1 30) (int_bound 40)))

let qcheck_aggregate_preserves_space =
  QCheck.Test.make ~name:"aggregate preserves space" ~count:300
    (QCheck.make ~print:(fun l -> String.concat ";" (List.map Bgp.Prefix.to_string l)) gen_24s)
    (fun prefixes ->
      let agg = Bgp.Prefix_set.aggregate prefixes in
      (* sample addresses across the universe and compare membership *)
      List.for_all
        (fun i ->
          let addr = Bgp.Ipv4.of_octets 10 0 i 7 in
          Bgp.Prefix_set.covers prefixes addr = Bgp.Prefix_set.covers agg addr)
        (List.init 48 Fun.id)
      && List.length agg <= List.length (List.sort_uniq Bgp.Prefix.compare prefixes))

let qcheck_aggregate_no_remaining_siblings =
  QCheck.Test.make ~name:"aggregate leaves no sibling pairs" ~count:300
    (QCheck.make gen_24s)
    (fun prefixes ->
      let agg = Bgp.Prefix_set.aggregate prefixes in
      let rec no_siblings = function
        | a :: (b :: _ as rest) ->
            let siblings =
              Bgp.Prefix.length a = Bgp.Prefix.length b
              && Bgp.Prefix.length a > 0
              && Bgp.Prefix.equal
                   (Bgp.Prefix.make (Bgp.Prefix.network a) (Bgp.Prefix.length a - 1))
                   (Bgp.Prefix.make (Bgp.Prefix.network b) (Bgp.Prefix.length b - 1))
            in
            (not siblings) && no_siblings rest
        | [ _ ] | [] -> true
      in
      no_siblings agg)

(* the allocator's split-then-aggregate round trip *)
let test_allocator_aggregates_children () =
  let fx = Test_core.fixture () in
  let rib = Ef_netsim.Pop.rib fx.Test_core.pop in
  let bg = prefix "10.8.0.0/16" in
  ignore
    (Bgp.Rib.announce rib ~peer_id:2 bg
       (attrs ~path:[ 10; 800 ] ~next_hop:"172.16.0.2" ()));
  let snap =
    Test_core.snapshot fx [ (Test_core.pfx_a, 11e9); (bg, 91e9) ]
  in
  let config =
    Edge_fabric.Config.make ~granularity:Edge_fabric.Config.Split_24 ()
  in
  let result = Edge_fabric.Allocator.run ~config snap in
  Alcotest.(check bool) "splits happened" true
    (result.Edge_fabric.Allocator.splits > 0);
  (* children were aggregated: far fewer overrides than the ~38 /24 moves
     needed to shed 1.5G in ~43M slices *)
  let n = List.length result.Edge_fabric.Allocator.overrides in
  Alcotest.(check bool) "aggregated" true (n > 0 && n < 20);
  (* every override prefix is still inside the parent *)
  List.iter
    (fun (o : Edge_fabric.Override.t) ->
      Alcotest.(check bool) "inside parent" true
        (Bgp.Prefix.subsumes Test_core.pfx_a o.Edge_fabric.Override.prefix))
    result.Edge_fabric.Allocator.overrides

let suite =
  [
    Alcotest.test_case "normalize dedup" `Quick test_normalize_dedup;
    Alcotest.test_case "normalize covered" `Quick test_normalize_covered;
    Alcotest.test_case "normalize disjoint" `Quick test_normalize_disjoint_kept;
    Alcotest.test_case "aggregate siblings" `Quick test_aggregate_siblings;
    Alcotest.test_case "aggregate cascades" `Quick test_aggregate_cascades;
    Alcotest.test_case "aggregate non-siblings" `Quick
      test_aggregate_non_siblings_kept;
    Alcotest.test_case "aggregate hole blocks" `Quick test_aggregate_hole_blocks_merge;
    Alcotest.test_case "same space" `Quick test_same_space;
    Alcotest.test_case "allocator aggregates children" `Quick
      test_allocator_aggregates_children;
    QCheck_alcotest.to_alcotest qcheck_aggregate_preserves_space;
    QCheck_alcotest.to_alcotest qcheck_aggregate_no_remaining_siblings;
  ]
