(* ef_sim: Fleet aggregation *)

module N = Ef_netsim
module S = Ef_sim

let quick_config =
  S.Engine.default_config
  |> S.Engine.with_cycle_s 300
  |> S.Engine.with_duration_s 3600
  |> S.Engine.with_start_s (19 * 3600)
  |> S.Engine.with_seed 5

let test_fleet_runs_all () =
  let fleet = S.Fleet.create ~config:quick_config [ N.Scenario.tiny; N.Scenario.pop_d ] in
  let results = S.Fleet.run fleet in
  Alcotest.(check (list string)) "both pops" [ "tiny"; "pop-d" ]
    (List.map fst results);
  List.iter
    (fun (_, m) -> Alcotest.(check int) "cycles" 12 (S.Metrics.cycle_count m))
    results

let test_fleet_summary () =
  let fleet = S.Fleet.create ~config:quick_config [ N.Scenario.tiny; N.Scenario.pop_d ] in
  let results = S.Fleet.run fleet in
  let s = S.Fleet.summarize results in
  Alcotest.(check int) "pops" 2 s.S.Fleet.pops;
  Alcotest.(check bool) "offered positive" true (s.S.Fleet.offered_peak_bps > 0.0);
  Alcotest.(check bool) "detour fraction sane" true
    (s.S.Fleet.mean_detour_fraction >= 0.0 && s.S.Fleet.mean_detour_fraction < 1.0);
  Alcotest.(check int) "no overloads with controller" 0 s.S.Fleet.overloaded_ifaces

let test_fleet_table_has_totals_row () =
  let fleet = S.Fleet.create ~config:quick_config [ N.Scenario.tiny ] in
  let table = S.Fleet.summary_table (S.Fleet.run fleet) in
  Alcotest.(check int) "pop + FLEET rows" 2 (Ef_stats.Table.row_count table)

let suite =
  [
    Alcotest.test_case "fleet runs all" `Slow test_fleet_runs_all;
    Alcotest.test_case "fleet summary" `Slow test_fleet_summary;
    Alcotest.test_case "fleet table" `Slow test_fleet_table_has_totals_row;
  ]
