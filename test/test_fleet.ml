(* ef_sim: Fleet aggregation *)

module N = Ef_netsim
module S = Ef_sim

let quick_config =
  S.Engine.default_config
  |> S.Engine.with_cycle_s 300
  |> S.Engine.with_duration_s 3600
  |> S.Engine.with_start_s (19 * 3600)
  |> S.Engine.with_seed 5

let test_fleet_runs_all () =
  let fleet = S.Fleet.create ~config:quick_config [ N.Scenario.tiny; N.Scenario.pop_d ] in
  let results = S.Fleet.run fleet in
  Alcotest.(check (list string)) "both pops" [ "tiny"; "pop-d" ]
    (List.map fst results);
  List.iter
    (fun (_, m) -> Alcotest.(check int) "cycles" 12 (S.Metrics.cycle_count m))
    results

let test_fleet_summary () =
  let fleet = S.Fleet.create ~config:quick_config [ N.Scenario.tiny; N.Scenario.pop_d ] in
  let results = S.Fleet.run fleet in
  let s = S.Fleet.summarize results in
  Alcotest.(check int) "pops" 2 s.S.Fleet.pops;
  Alcotest.(check bool) "offered positive" true (s.S.Fleet.offered_peak_bps > 0.0);
  Alcotest.(check bool) "detour fraction sane" true
    (s.S.Fleet.mean_detour_fraction >= 0.0 && s.S.Fleet.mean_detour_fraction < 1.0);
  Alcotest.(check int) "no overloads with controller" 0 s.S.Fleet.overloaded_ifaces

let test_fleet_table_has_totals_row () =
  let fleet = S.Fleet.create ~config:quick_config [ N.Scenario.tiny ] in
  let table = S.Fleet.summary_table (S.Fleet.run fleet) in
  Alcotest.(check int) "pop + FLEET rows" 2 (Ef_stats.Table.row_count table)

(* --- determinism across --jobs: the PR's hard requirement --------------- *)

let det_scenarios =
  [ N.Scenario.tiny; N.Scenario.pop_d ] @ N.Scenario.generated_fleet ~n:2 ()

(* one full fleet pass: returns every observable surface as strings.
   Journal events carry wall-clock stamps, so [ev_time_ns] is zeroed
   before comparison (the PR3 golden-test convention). *)
let fleet_outputs ~jobs () =
  let traces =
    List.map
      (fun s -> (s.N.Scenario.scenario_name, Ef_trace.Recorder.create ()))
      det_scenarios
  in
  let config_of s =
    quick_config
    |> S.Engine.with_trace (List.assoc s.N.Scenario.scenario_name traces)
  in
  let obs = Ef_obs.Registry.create () in
  let sink, flush = Ef_obs.Registry.memory_sink () in
  Ef_obs.Registry.add_sink obs sink;
  let fleet = S.Fleet.create ~config:quick_config ~config_of ~obs det_scenarios in
  let results = S.Fleet.run ~jobs fleet in
  let table = Ef_stats.Table.render (S.Fleet.summary_table results) in
  let rows =
    String.concat "\n"
      (List.map
         (fun (pop, m) ->
           Printf.sprintf "%s:%d:%d" pop (S.Metrics.cycle_count m)
             (List.length (S.Metrics.rows m)))
         results)
  in
  let journal =
    String.concat "\n"
      (List.map
         (fun ev ->
           Ef_obs.Json.to_string
             (Ef_obs.Registry.Event.to_json
                { ev with Ef_obs.Registry.Event.ev_time_ns = 0L }))
         (flush ()))
  in
  let trace_json =
    String.concat "\n"
      (List.map
         (fun (pop, tr) ->
           pop ^ ":" ^ Ef_obs.Json.to_string (Ef_trace.Recorder.to_json tr))
         traces)
  in
  (table, rows, journal, trace_json)

let test_fleet_jobs_invariant () =
  let t1, r1, j1, tr1 = fleet_outputs ~jobs:1 () in
  let t4, r4, j4, tr4 = fleet_outputs ~jobs:4 () in
  Alcotest.(check string) "summary table byte-identical" t1 t4;
  Alcotest.(check string) "metrics rows identical" r1 r4;
  Alcotest.(check bool) "journal non-empty" true (String.length j1 > 0);
  Alcotest.(check string) "journal byte-identical (t_ns stripped)" j1 j4;
  Alcotest.(check bool) "traces non-trivial" true (String.length tr1 > 10);
  Alcotest.(check string) "trace JSON byte-identical" tr1 tr4

let test_fleet_parallel_merges_registries () =
  (* private fleet registry: the default one accumulates across tests *)
  let reg = Ef_obs.Registry.create () in
  let fleet = S.Fleet.create ~config:quick_config ~obs:reg det_scenarios in
  let results = S.Fleet.run ~jobs:3 fleet in
  Alcotest.(check int) "all pops ran" (List.length det_scenarios)
    (List.length results);
  Alcotest.(check (float 1e-9)) "pops_run counter merged"
    (float_of_int (List.length det_scenarios))
    (Ef_obs.Counter.value (Ef_obs.Registry.counter reg "fleet.pops_run"));
  match Ef_obs.Registry.find reg "fleet.pop_run" with
  | Some (Ef_obs.Registry.Span_m h) ->
      Alcotest.(check int) "one span sample per pop"
        (List.length det_scenarios) (Ef_obs.Histogram.count h)
  | _ -> Alcotest.fail "fleet.pop_run span missing after merge"

let suite =
  [
    Alcotest.test_case "fleet runs all" `Slow test_fleet_runs_all;
    Alcotest.test_case "fleet summary" `Slow test_fleet_summary;
    Alcotest.test_case "fleet table" `Slow test_fleet_table_has_totals_row;
    Alcotest.test_case "fleet jobs-invariant outputs" `Slow
      test_fleet_jobs_invariant;
    Alcotest.test_case "fleet parallel registry merge" `Slow
      test_fleet_parallel_merges_registries;
  ]
